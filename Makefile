# Convenience targets for the QuEST reproduction.
#
# Observability / CI targets:
#   make bench-json   regenerate BENCH_PR6.json, the committed benchmark
#                     baseline tools/benchdiff compares CI runs against
#   make benchdiff    compare a fresh suite run against the committed baseline
#   make trace-smoke  run a tiny traced sim and validate the Perfetto JSON
#   make ledger-smoke run a small ledgered+heatmapped sweep and validate the
#                     JSONL with ledgercheck
#   make shard-smoke  prove process-count independence: a 2-process sharded
#                     sweep merged with ledgermerge and a run resumed from a
#                     truncated ledger must both be byte-identical (cmp) to
#                     the 1-process run
#   make events-smoke run a 2-shard sweep streaming live quest-events/1
#                     telemetry, validate both streams with questtop -check,
#                     render the fleet view, and prove events are a pure
#                     side-band (ledger bytes identical with events on/off)
#   make bw-smoke     run profiled sweeps and sims, validate the quest-bw/1
#                     artifacts with bwreport -check, prove the waveform is
#                     worker-count independent (cmp across -workers 1 and 8)
#                     and a pure side-band (ledger bytes identical with -bw
#                     on/off), and render the ram/fifo/unitcell comparison
#   make lint         gofmt + vet + questvet (CI additionally runs staticcheck)
#   make questvet     run only the custom analyzer suite (tools/questvet),
#                     diffed against the committed questvet-baseline.json
#   make questvet-baseline
#                     regenerate questvet-baseline.json after a deliberate
#                     change (new //quest:allow, accepted finding)

GO ?= go

# GO_TOOLCHAIN mirrors go.mod's `toolchain` directive; TestToolchainVersionsAgree
# fails if the two (or CI's version matrix) drift apart.
GO_TOOLCHAIN := go1.24.0

.PHONY: all build test test-short race bench bench-json benchdiff trace-smoke ledger-smoke shard-smoke events-smoke bw-smoke lint vet fmt questvet questvet-baseline experiments examples fuzz clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

lint: vet questvet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Custom analyzer suite (internal/lint): detrange, nogate, seedsrc, schemaver,
# plus the interprocedural hotalloc/gateflow/errsink analyzers over the
# whole-module call graph. The run is diffed against the committed baseline:
# only new findings, stale baseline entries, or //quest:allow count drift
# fail. The summary line counts the suppressions in force.
questvet:
	$(GO) run ./tools/questvet -baseline questvet-baseline.json ./...

# Regenerate the committed questvet baseline after a *deliberate* change
# (a new reasoned //quest:allow, an accepted finding). Explain the bump in
# the PR; TestModuleCleanAgainstBaseline keeps the file honest.
questvet-baseline:
	$(GO) run ./tools/questvet -write-baseline questvet-baseline.json ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over everything, including the Monte-Carlo worker pool
# and its per-worker metrics shards (see internal/mc and internal/metrics).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed benchmark baseline (schema quest-bench/1; see
# internal/benchsuite). Run on a quiet machine; CI compares against this file.
bench-json:
	$(GO) run ./cmd/questbench -bench-json BENCH_PR6.json

# Compare a fresh suite run against the committed baseline (>30% ns/op fails).
benchdiff:
	$(GO) run ./cmd/questbench -bench-json /tmp/quest_bench_current.json
	$(GO) run ./tools/benchdiff BENCH_PR6.json /tmp/quest_bench_current.json

# Run a tiny traced simulation and validate the emitted Perfetto JSON —
# the same check CI's trace-smoke job runs.
trace-smoke:
	$(GO) run ./cmd/questsim -program distill -replays 5 -trace /tmp/quest_trace_smoke.json
	$(GO) run ./tools/tracecheck -min-procs 4 /tmp/quest_trace_smoke.json

# Run a small traced + ledgered threshold sweep with CI early-stop and
# heatmaps, then validate the ledger — the same check CI's trace-smoke job
# runs. The experiment ledger and heatmap are worker-count independent.
ledger-smoke:
	$(GO) run ./cmd/questbench -trials 40 -workers 4 -ci-stop 0.2 \
		-ledger /tmp/quest_ledger_smoke.jsonl -heatmap /tmp/quest_heatmap_smoke.json \
		-trace /tmp/quest_sweep_trace.json threshold
	$(GO) run ./tools/ledgercheck -min-cells 6 -min-trials 60 /tmp/quest_ledger_smoke.jsonl

# Prove process-count independence end to end — the same checks CI's
# shard-smoke job runs. A 2-process sharded threshold sweep (deliberately
# run with different -workers per shard) is merged by tools/ledgermerge and
# cmp(1)'d byte-for-byte against the 1-process ledger; then the 1-process
# ledger is truncated mid-cell with a torn final line (what a crash leaves)
# and a -resume run must reconverge to the same bytes. All artifacts match
# the ledger-shard-*.jsonl pattern covered by .gitignore and `make clean`.
shard-smoke:
	$(GO) run ./cmd/questbench -trials 16 -workers 4 -ledger ledger-shard-full.jsonl threshold
	$(GO) run ./cmd/questbench -trials 16 -workers 2 -shard 0/2 -ledger ledger-shard-0.jsonl threshold
	$(GO) run ./cmd/questbench -trials 16 -workers 3 -shard 1/2 -ledger ledger-shard-1.jsonl threshold
	$(GO) run ./tools/ledgermerge -o ledger-shard-merged.jsonl ledger-shard-0.jsonl ledger-shard-1.jsonl
	cmp ledger-shard-merged.jsonl ledger-shard-full.jsonl
	$(GO) run ./tools/ledgercheck -min-cells 6 -min-trials 96 ledger-shard-merged.jsonl
	head -n 40 ledger-shard-full.jsonl > ledger-shard-crash.jsonl
	printf '{"record":"trial","cell":"thr' >> ledger-shard-crash.jsonl
	$(GO) run ./cmd/questbench -trials 16 -workers 3 -resume ledger-shard-crash.jsonl \
		-ledger ledger-shard-resumed.jsonl threshold
	cmp ledger-shard-resumed.jsonl ledger-shard-full.jsonl
	$(GO) run ./tools/ledgercheck -min-cells 6 -min-trials 96 ledger-shard-resumed.jsonl

# Live-telemetry smoke — the same checks CI's events-smoke job runs. A
# 2-shard ledgered sweep streams quest-events/1 snapshots; questtop -check
# validates each stream's schema and monotonicity plus the fleet's coherence
# (one experiment, distinct shard indices), then renders the aggregate view.
# Finally the telemetry-is-a-pure-side-band claim is checked end to end: the
# shard-0 sweep rerun without -events must produce byte-identical ledger
# bytes (cmp). Artifacts match events-shard-*.jsonl, covered by .gitignore
# and `make clean`.
events-smoke:
	$(GO) run ./cmd/questbench -trials 16 -workers 2 -shard 0/2 \
		-ledger events-shard-ledger-0.jsonl -events events-shard-0.jsonl threshold
	$(GO) run ./cmd/questbench -trials 16 -workers 3 -shard 1/2 \
		-ledger events-shard-ledger-1.jsonl -events events-shard-1.jsonl threshold
	$(GO) run ./tools/questtop -check events-shard-0.jsonl events-shard-1.jsonl
	$(GO) run ./tools/questtop events-shard-0.jsonl events-shard-1.jsonl
	$(GO) run ./cmd/questbench -trials 16 -workers 2 -shard 0/2 \
		-ledger events-shard-ledger-off.jsonl threshold
	cmp events-shard-ledger-off.jsonl events-shard-ledger-0.jsonl

# Bandwidth-profiler smoke — the same checks CI's bw-smoke job runs. The
# memory experiment drives the full machine decode path (threshold cells
# bypass the machine, so they put no traffic on the buses): the same
# profiled sweep at -workers 1 and 8 must produce byte-identical quest-bw/1
# waveforms (cmp), and the -workers 1 ledger must be byte-identical with -bw
# on and off (profiling is a pure side-band). bwreport -check validates each
# artifact, then three questsim runs — one per microcode design — feed the
# ram/fifo/unitcell comparison table. Artifacts match bw-smoke-*.jsonl,
# covered by .gitignore and `make clean`.
bw-smoke:
	$(GO) run ./cmd/questbench -trials 8 -workers 1 \
		-ledger bw-smoke-ledger-on.jsonl -bw bw-smoke-w1.jsonl memory
	$(GO) run ./cmd/questbench -trials 8 -workers 8 \
		-bw bw-smoke-w8.jsonl memory
	cmp bw-smoke-w1.jsonl bw-smoke-w8.jsonl
	$(GO) run ./cmd/questbench -trials 8 -workers 1 \
		-ledger bw-smoke-ledger-off.jsonl memory
	cmp bw-smoke-ledger-off.jsonl bw-smoke-ledger-on.jsonl
	$(GO) run ./tools/bwreport -check bw-smoke-w1.jsonl
	$(GO) run ./cmd/questsim -program distill -replays 8 -design ram \
		-bw bw-smoke-ram.jsonl
	$(GO) run ./cmd/questsim -program distill -replays 8 -design fifo \
		-bw bw-smoke-fifo.jsonl
	$(GO) run ./cmd/questsim -program distill -replays 8 -design unitcell \
		-bw bw-smoke-unitcell.jsonl
	$(GO) run ./tools/bwreport bw-smoke-ram.jsonl bw-smoke-fifo.jsonl \
		bw-smoke-unitcell.jsonl

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/questbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shor_scaling
	$(GO) run ./examples/logical_cnot
	$(GO) run ./examples/tfactory
	$(GO) run ./examples/threshold
	$(GO) run ./examples/workload_report
	$(GO) run ./examples/host_pipeline
	$(GO) run ./examples/algorithms

# Brief fuzzing sessions over the wire formats.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/qasm/
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/qexe/

# Remove only *untracked* files under the fuzz corpora directories (fuzzing
# drops new inputs there) plus build artifacts. An earlier version ran
# `rm -rf` on the whole testdata trees, which deleted the committed seed
# corpora; TestCleanTargetPreservesTrackedTestdata pins the fix.
clean:
	git clean -fdx internal/qasm/testdata internal/qexe/testdata
	rm -f ledger-shard-*.jsonl events-shard-*.jsonl bw-smoke-*.jsonl
	$(GO) clean ./...
