# Convenience targets for the QuEST reproduction.

GO ?= go

.PHONY: all build test test-short race bench vet fmt experiments examples fuzz clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over everything, including the Monte-Carlo worker pool
# and its shared bandwidth.Counter use (see internal/mc).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/questbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shor_scaling
	$(GO) run ./examples/logical_cnot
	$(GO) run ./examples/tfactory
	$(GO) run ./examples/threshold
	$(GO) run ./examples/workload_report
	$(GO) run ./examples/host_pipeline
	$(GO) run ./examples/algorithms

# Brief fuzzing sessions over the wire formats.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/qasm/
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/qexe/

clean:
	rm -rf internal/qasm/testdata internal/qexe/testdata
	$(GO) clean ./...
