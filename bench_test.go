// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark regenerates its experiment's data and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation section (see EXPERIMENTS.md for the
// paper-vs-measured record).
package quest_test

import (
	"math"
	"testing"

	"fmt"
	"math/rand"
	"runtime"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/compiler"
	"quest/internal/concat"
	"quest/internal/core"
	"quest/internal/decoder"
	"quest/internal/isa"
	"quest/internal/jj"
	"quest/internal/master"
	"quest/internal/mce"
	"quest/internal/microcode"
	"quest/internal/noc"
	"quest/internal/noise"
	"quest/internal/place"
	"quest/internal/surface"
	"quest/internal/workload"
)

// BenchmarkFig2ShorBandwidthScaling regenerates Figure 2: baseline
// instruction bandwidth versus machine size for Shor-128..1024.
func BenchmarkFig2ShorBandwidthScaling(b *testing.B) {
	var last []core.Fig2Row
	for i := 0; i < b.N; i++ {
		last = core.Fig2()
	}
	b.ReportMetric(float64(last[len(last)-1].Bandwidth)/1e12, "TBps@1024bit")
	b.ReportMetric(float64(last[len(last)-1].PhysQubits)/1e6, "Mqubits@1024bit")
}

// BenchmarkFig6QECCOverhead regenerates Figure 6: the QECC:regular
// instruction ratio across the seven workloads.
func BenchmarkFig6QECCOverhead(b *testing.B) {
	var rows []core.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig6()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.Orders)
		hi = math.Max(hi, r.Orders)
	}
	b.ReportMetric(lo, "min-orders")
	b.ReportMetric(hi, "max-orders")
}

// BenchmarkFig10CapacityScaling regenerates Figure 10: microcode capacity
// versus serviced qubits for the three organizations.
func BenchmarkFig10CapacityScaling(b *testing.B) {
	var rows []core.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig10()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.RAMBits)/float64(last.FIFOBits), "ram/fifo@4096q")
	b.ReportMetric(float64(last.CellBits), "unitcell-bits")
}

// BenchmarkFig11QubitsPerMCE regenerates Figure 11: qubits serviced per MCE
// at a fixed 4 Kb budget across channel configurations.
func BenchmarkFig11QubitsPerMCE(b *testing.B) {
	var rows []core.Fig11Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig11()
	}
	b.ReportMetric(float64(rows[0].RAM), "ram-qubits")
	b.ReportMetric(float64(rows[0].FIFO), "fifo-qubits")
	b.ReportMetric(float64(rows[2].UnitCell), "unitcell-qubits@4ch")
	b.ReportMetric(float64(rows[2].UnitCell)/float64(rows[0].RAM), "improvement-x")
}

// BenchmarkFig13TFactoryOverhead regenerates Figure 13: distillation
// instruction overhead across the workloads.
func BenchmarkFig13TFactoryOverhead(b *testing.B) {
	var rows []core.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig13()
	}
	hi := 0.0
	for _, r := range rows {
		hi = math.Max(hi, r.Orders)
	}
	b.ReportMetric(hi, "max-orders")
}

// BenchmarkFig14GlobalSavings regenerates Figure 14: QuEST and QuEST+cache
// bandwidth savings across the workloads.
func BenchmarkFig14GlobalSavings(b *testing.B) {
	var rows []core.Fig14Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig14()
	}
	minQ, maxC := math.Inf(1), 0.0
	for _, r := range rows {
		minQ = math.Min(minQ, r.OrdersQuEST)
		maxC = math.Max(maxC, r.OrdersCache)
	}
	b.ReportMetric(minQ, "min-quest-orders")
	b.ReportMetric(maxC, "max-cache-orders")
}

// BenchmarkFig15ErrorRateSensitivity regenerates Figure 15: savings across
// physical error rates 1e-3..1e-5.
func BenchmarkFig15ErrorRateSensitivity(b *testing.B) {
	var rows []core.Fig15Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig15()
	}
	var at3, at5 float64
	for _, r := range rows {
		if r.Workload == "GSE" {
			switch r.ErrorRate {
			case 1e-3:
				at3 = r.SavingsQuEST
			case 1e-5:
				at5 = r.SavingsQuEST
			}
		}
	}
	b.ReportMetric(at3/at5, "gse-savings-spread")
}

// BenchmarkFig16MCEThroughput regenerates Figure 16: qubits per MCE across
// technologies and syndrome designs.
func BenchmarkFig16MCEThroughput(b *testing.B) {
	var rows []core.Fig16Row
	for i := 0; i < b.N; i++ {
		rows = core.Fig16()
	}
	for _, r := range rows {
		if r.Tech == "Projected_D" && r.Schedule == "Steane" {
			b.ReportMetric(float64(r.Qubits), "steane-projD-qubits")
		}
	}
}

// BenchmarkTable2MicrocodeDesign regenerates Table 2: the per-syndrome
// optimal microcode configuration, JJ count and power.
func BenchmarkTable2MicrocodeDesign(b *testing.B) {
	var rows []core.Table2Row
	for i := 0; i < b.N; i++ {
		rows = core.Table2()
	}
	for _, r := range rows {
		if r.Schedule == "Steane" {
			b.ReportMetric(float64(r.JJs), "steane-jjs")
			b.ReportMetric(r.PowerUW, "steane-uW")
		}
	}
}

// BenchmarkMachineEndToEnd runs the cycle-level machine (the executable
// grounding of the analytical figures): a cached distillation loop on a
// simulated substrate, reporting measured savings.
func BenchmarkMachineEndToEnd(b *testing.B) {
	var res core.MachineDemoResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.MachineDemo(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeasuredSavings, "measured-savings-x")
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationMaskCoalescing compares raw per-qubit mask storage
// against the d²-coalesced mask table.
func BenchmarkAblationMaskCoalescing(b *testing.B) {
	lat := surface.NewLattice(99, 99)
	m := surface.NewMask(lat)
	var raw, coalesced int
	for i := 0; i < b.N; i++ {
		raw = m.RawBits()
		coalesced = m.CoalescedBits(9)
	}
	b.ReportMetric(float64(raw)/float64(coalesced), "mask-reduction-x")
}

// BenchmarkAblationLocalDecoder measures how much global-decoder load the
// MCE's lookup table strips off under noise.
func BenchmarkAblationLocalDecoder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nm := noise.Uniform(1e-3)
		eng := mce.New(mce.Config{
			Design:   microcode.DesignUnitCell,
			Schedule: surface.Steane,
			Layout:   compiler.NewLayout(3, 2),
			Noise:    &nm,
			Seed:     int64(i + 1),
		})
		local, escalated := 0, 0
		for c := 0; c < 100; c++ {
			rep := eng.StepCycle()
			local += rep.DefectsLocal
			escalated += len(rep.DefectsEscalated)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(local), "lut-resolved")
			b.ReportMetric(float64(escalated), "escalated")
		}
	}
}

// BenchmarkAblationMicrocodeDesigns compares replay cost of the three
// organizations on the same tile (RAM pays address decode, FIFO streams
// flat, unit cell regenerates from the pattern table).
func BenchmarkAblationMicrocodeDesigns(b *testing.B) {
	lat := surface.NewLattice(9, 19)
	mask := surface.NewMask(lat)
	for _, d := range microcode.Designs() {
		b.Run(d.String(), func(b *testing.B) {
			st := microcode.NewStore(d, surface.Steane, lat)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st.ReplayCycle(mask)
			}
			b.ReportMetric(float64(st.CapacityBits()), "capacity-bits")
		})
	}
}

// BenchmarkAblationSyndromeSchedules compares the four syndrome designs'
// per-cycle instruction volume on one tile.
func BenchmarkAblationSyndromeSchedules(b *testing.B) {
	lat := surface.NewPlanar(5)
	for _, sched := range surface.Schedules() {
		b.Run(sched.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				surface.CompileCycle(lat, sched, nil)
			}
			b.ReportMetric(float64(sched.Depth*lat.NumQubits()), "uops-per-cycle")
		})
	}
}

// BenchmarkAblationCacheOnOff measures the measured bus traffic of the
// distillation loop with and without the logical instruction cache.
func BenchmarkAblationCacheOnOff(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		var bytes uint64
		for i := 0; i < b.N; i++ {
			m := core.NewMachine(core.DefaultMachineConfig())
			rep, err := m.RunDistillationCached(5, 0)
			if err != nil {
				b.Fatal(err)
			}
			bytes = rep.QuESTBusBytes
		}
		b.ReportMetric(float64(bytes), "bus-bytes")
	})
	b.Run("uncached", func(b *testing.B) {
		var bytes uint64
		for i := 0; i < b.N; i++ {
			// Ship the loop body instruction by instruction instead.
			m := core.NewMachine(core.DefaultMachineConfig())
			mm := m.Master()
			mm.StepCycle()
			for rep := 0; rep < 5; rep++ {
				for j := 0; j < 106; j++ {
					if err := mm.Dispatch(0, pauliInstr(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, ok := mm.RunUntilDrained(100000); !ok {
				b.Fatal("did not drain")
			}
			bytes = mm.InstructionBusBytes()
		}
		b.ReportMetric(float64(bytes), "bus-bytes")
	})
}

// BenchmarkAblationWindowedDecode compares per-round and windowed global
// decoding on the same noisy trace.
func BenchmarkAblationWindowedDecode(b *testing.B) {
	lat := surface.NewPlanar(5)
	g := decoder.NewGlobalDecoder(lat)
	zs := lat.Qubits(surface.RoleAncillaZ)
	mk := func(q, round int) decoder.Defect {
		r, c := lat.Coord(q)
		return decoder.Defect{Round: round, Qubit: q, R: r, C: c}
	}
	// A synthetic trace of measurement-error pairs plus real errors.
	var trace [][]decoder.Defect
	for round := 0; round < 8; round++ {
		trace = append(trace, []decoder.Defect{
			mk(zs[round%len(zs)], round), mk(zs[round%len(zs)], round+1),
		})
	}
	b.Run("per-round", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame := decoder.NewPauliFrame()
			for _, defects := range trace {
				decoder.DecodeRound(nil, g, frame, defects)
			}
		}
	})
	b.Run("windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame := decoder.NewPauliFrame()
			w := decoder.NewWindowDecoder(g, 5)
			for _, defects := range trace {
				w.Absorb(defects, frame)
			}
			w.Flush(frame)
		}
	})
}

// BenchmarkThresholdSweepWorkers measures the parallel Monte-Carlo engine
// on the threshold sweep: the same (rates × distances × trials) cell grid
// at 1 worker versus all cores. The rows are bit-identical across the two
// runs (per-trial seeding, trial-order reduction); only wall-clock changes.
// On a 4+-core box the workers-N variant should run ≥2× faster.
func BenchmarkThresholdSweepWorkers(b *testing.B) {
	rates := []float64{1e-3}
	distances := []int{3, 5}
	const trials = 48
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			var rows []core.ThresholdRow
			for i := 0; i < b.N; i++ {
				rows = core.Threshold(rates, distances, trials, w)
			}
			b.ReportMetric(rows[0].FailRate, "d3-fail-rate")
			b.ReportMetric(float64(w), "workers")
		})
	}
}

// BenchmarkEstimatorFullSuite times a complete workload-suite estimation.
func BenchmarkEstimatorFullSuite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est := workload.NewEstimator()
		for _, p := range workload.Suite() {
			est.Estimate(p)
		}
	}
}

// BenchmarkJJConfigSweep times the Table 2 configuration search.
func BenchmarkJJConfigSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sched := range surface.Schedules() {
			if _, err := microcode.OptimalConfig(sched); err != nil {
				b.Fatal(err)
			}
			for _, cfg := range jj.Configs4Kb() {
				_ = cfg.JJCount()
				_ = cfg.PowerMicroWatts()
			}
		}
	}
}

// pauliInstr mimics one instruction of the uncached distillation stream:
// frame-level Paulis alternating over the tile's two patches, matching the
// cadence the cached variant replays.
func pauliInstr(j int) isa.LogicalInstr {
	op := isa.LX
	if j%2 == 1 {
		op = isa.LZ
	}
	return isa.LogicalInstr{Op: op, Target: uint8(j % 2)}
}

// BenchmarkAblationUnionFindVsMWPM compares the exact matcher against the
// near-linear union-find decoder on identical defect batches: decode time
// versus matching-weight optimality.
func BenchmarkAblationUnionFindVsMWPM(b *testing.B) {
	lat := surface.NewPlanar(9)
	g := decoder.NewGlobalDecoder(lat)
	uf := decoder.NewUnionFindDecoder(lat)
	zs := lat.Qubits(surface.RoleAncillaZ)
	var defects []decoder.Defect
	for i := 0; i < 12; i++ {
		q := zs[(i*7)%len(zs)]
		r, c := lat.Coord(q)
		defects = append(defects, decoder.Defect{Round: i % 3, Qubit: q, R: r, C: c})
	}
	b.Run("mwpm-exact", func(b *testing.B) {
		var w int
		for i := 0; i < b.N; i++ {
			w = g.Match(defects).Weight
		}
		b.ReportMetric(float64(w), "match-weight")
	})
	b.Run("union-find", func(b *testing.B) {
		var w int
		for i := 0; i < b.N; i++ {
			w = uf.Match(defects).Weight
		}
		b.ReportMetric(float64(w), "match-weight")
	})
}

// BenchmarkExtensionConcatenatedCodes evaluates the §9 extension: hybrid
// microcode-inner/software-outer concatenation versus full software
// management, across outer levels.
func BenchmarkExtensionConcatenatedCodes(b *testing.B) {
	innerPhys := 2112 // 12.5·d² at d=13
	for levels := 0; levels <= 3; levels++ {
		s := concat.Scheme{Levels: levels, InnerErrorRate: 1e-9}
		b.Run(fmt.Sprintf("levels-%d", levels), func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				savings = s.Savings(innerPhys, 9, 13)
			}
			b.ReportMetric(savings, "hybrid-savings-x")
			b.ReportMetric(s.LogicalErrorRate(), "logical-error")
		})
	}
}

// BenchmarkStabilizerSubstrate measures the raw substrate: full QECC cycles
// on a distance-7 patch (609 qubits), the simulator workload behind every
// machine experiment.
func BenchmarkStabilizerSubstrate(b *testing.B) {
	lat := surface.NewPlanar(7)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(1)))
	u := awg.New(tb, nil)
	u.MeasSink = func(int, int) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			u.ExecuteWord(w)
		}
	}
	b.ReportMetric(float64(lat.NumQubits()), "qubits")
}

// BenchmarkDecoderScaling sweeps defect-batch sizes across the three global
// matchers (exact DP is exponential, greedy quadratic, union-find
// near-linear) — the latency trade that picks the master's decoder at scale.
func BenchmarkDecoderScaling(b *testing.B) {
	lat := surface.NewPlanar(11)
	g := decoder.NewGlobalDecoder(lat)
	uf := decoder.NewUnionFindDecoder(lat)
	zs := lat.Qubits(surface.RoleAncillaZ)
	mk := func(k int) []decoder.Defect {
		var out []decoder.Defect
		for i := 0; i < k; i++ {
			q := zs[(i*13)%len(zs)]
			r, c := lat.Coord(q)
			out = append(out, decoder.Defect{Round: i % 4, Qubit: q, R: r, C: c})
		}
		return out
	}
	for _, k := range []int{4, 8, 12} {
		defects := mk(k)
		b.Run(fmt.Sprintf("exact-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Match(defects)
			}
		})
		b.Run(fmt.Sprintf("unionfind-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				uf.Match(defects)
			}
		})
	}
}

// BenchmarkNoCDelivery measures the mesh under contention: all packets to
// the far corner of a 4x4 mesh.
func BenchmarkNoCDelivery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := noc.NewMesh(4, 4)
		for p := 0; p < 32; p++ {
			if err := m.Inject(noc.Packet{Dst: 15}); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := m.Drain(500); !ok {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkPlacement times the interaction-graph placement pass on a dense
// random program.
func BenchmarkPlacement(b *testing.B) {
	prog := compiler.NewProgram(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		q := rng.Intn(16)
		prog.CNOT(q, (q+1+rng.Intn(15))%16)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(prog, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBufferCapacity sweeps the MCE instruction-buffer size
// under a flood of frame-level Paulis: tiny buffers throttle issue through
// the master's flow control, large ones let the network run ahead.
func BenchmarkAblationBufferCapacity(b *testing.B) {
	for _, capSlots := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("slots-%d", capSlots), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				eng := mce.New(mce.Config{
					Design:         microcode.DesignUnitCell,
					Schedule:       surface.Steane,
					Layout:         compiler.NewLayout(3, 2),
					Seed:           1,
					BufferCapacity: capSlots,
				})
				mm := master.New(master.Config{PacketsPerCycle: 16}, []*mce.MCE{eng})
				mm.StepCycle()
				for j := 0; j < 64; j++ {
					if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LX, Target: uint8(j % 2)}); err != nil {
						b.Fatal(err)
					}
				}
				reps, ok := mm.RunUntilDrained(500)
				if !ok {
					b.Fatal("did not drain")
				}
				cycles = len(reps)
			}
			b.ReportMetric(float64(cycles), "cycles-to-drain")
		})
	}
}
