// Command questasm assembles, disassembles, inspects and runs quantum
// executables — the §2.2 offload artifacts.
//
// Usage:
//
//	questasm asm  -n QUBITS [-cache distill] <in.qasm >out.qx
//	questasm dis  <in.qx >out.qasm
//	questasm info <in.qx
//	questasm run  [-tiles N] [-patches N] [-noise P] <in.qx
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"quest"
	"quest/internal/core"
	"quest/internal/distill"
	"quest/internal/qasm"
	"quest/internal/qexe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("questasm: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "asm":
		asm(args)
	case "dis":
		dis(args)
	case "info":
		info(args)
	case "run":
		run(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  questasm asm  -n QUBITS [-cache distill] <in.qasm >out.qx
  questasm dis  <in.qx >out.qasm
  questasm info <in.qx
  questasm run  [-tiles N] [-patches N] [-noise P] <in.qx`)
	os.Exit(2)
}

func asm(args []string) {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	n := fs.Int("n", 2, "logical register size")
	cache := fs.String("cache", "", "bundle a cache section: 'distill' for the 15-to-1 round body")
	fs.Parse(args)
	p, err := qasm.Parse(os.Stdin, *n)
	if err != nil {
		log.Fatal(err)
	}
	exe := qexe.FromProgram(p)
	switch *cache {
	case "":
	case "distill":
		exe.AddCache(0, distill.RoundCircuit())
	default:
		log.Fatalf("unknown cache bundle %q", *cache)
	}
	if err := exe.Encode(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func dis(args []string) {
	if len(args) != 0 {
		usage()
	}
	exe, err := qexe.Decode(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	p, err := exe.ToProgram()
	if err != nil {
		log.Fatal(err)
	}
	if err := qasm.Write(os.Stdout, p); err != nil {
		log.Fatal(err)
	}
}

func info(args []string) {
	if len(args) != 0 {
		usage()
	}
	exe, err := qexe.Decode(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exe.Summary())
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	tiles := fs.Int("tiles", 1, "MCE tiles")
	patches := fs.Int("patches", 2, "patches per tile")
	noiseP := fs.Float64("noise", 0, "uniform physical error rate")
	fs.Parse(args)
	exe, err := qexe.Decode(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	cfg := quest.DefaultMachineConfig()
	cfg.Tiles = *tiles
	cfg.PatchesPerTile = *patches
	if *noiseP > 0 {
		nm := quest.UniformNoise(*noiseP)
		cfg.Noise = &nm
	}
	m := core.NewMachine(cfg)
	rep, err := m.RunExecutable(exe, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d instructions in %d cycles (drained=%v)\n",
		rep.LogicalRetired, rep.Cycles, rep.Drained)
	for _, r := range rep.Results {
		fmt.Printf("  logical measurement: patch %d -> %d\n", r.Patch, r.Bit)
	}
	fmt.Printf("bus: baseline %d bytes, QuEST %d bytes (%.0fx)\n",
		rep.BaselineBusBytes, rep.QuESTBusBytes, rep.Savings())
}
