// Command questbench regenerates every table and figure of the paper's
// evaluation section as text tables. Run with no arguments for everything,
// or name experiments: fig2 fig6 fig10 fig11 fig13 fig14 fig15 fig16 table1
// table2 machine.
//
// The statistical paths (threshold, memory, and the -md report's validation
// section) accept -trials and -workers. Trials fan out across a worker pool
// with per-trial seeds mixed from a fixed experiment seed, so the printed
// rates are bit-identical for every -workers value — crank workers for
// wall-clock, crank trials for confidence.
//
// Observability (shared with questsim via internal/obsflags): -metrics,
// -pprof, -trace, -trace-buf, plus the experiment-ledger bundle — -ledger
// FILE streams a JSONL run ledger (validate with tools/ledgercheck),
// -progress renders live per-cell Wilson intervals on stderr, -ci-stop W
// stops each cell once its 95% interval is narrower than W, and -heatmap
// FILE writes spatial defect/matching heatmaps as JSON (ASCII renders go to
// stderr). All of it is worker-count independent.
//
// Live telemetry: -events FILE streams quest-events/1 JSONL snapshots
// (per-cell progress, trial rates, ETA, metrics deltas, runtime stats) while
// the run is in flight; with -pprof the same stream is served live over SSE
// on /events (plus a /healthz probe). Watch one or many shard streams with
// tools/questtop. Telemetry is a pure side-band: ledger, heatmap and table
// bytes are identical with events on or off.
//
// Bandwidth profiling: -bw FILE records per-bus traffic in fixed windows of
// the machine cycle clock and writes a quest-bw/1 profile at exit
// (-bw-window N sets the window width; validate and compare runs with
// tools/bwreport). Like the ledger, the profile is worker-count independent
// and a pure side-band of the sweep.
//
// Distributed sweeps: -shard i/N runs only the statistical sweep cells owned
// by shard i of N (round-robin in sweep order), each shard writing a
// complete ledger that tools/ledgermerge recombines into bytes identical to
// the 1-process run. -resume FILE restarts from a partial ledger left by an
// interrupted run, replaying recorded cells and trials instead of
// re-executing them; the finished ledger is byte-identical to an
// uninterrupted run's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"quest/internal/benchsuite"
	"quest/internal/chart"
	"quest/internal/core"
	"quest/internal/metrics"
	"quest/internal/obsflags"
	"quest/internal/workload"
)

var (
	flagMD      = flag.Bool("md", false, "emit the full evaluation as a Markdown report")
	flagTrials  = flag.Int("trials", 0, "Monte-Carlo trials per statistical cell (0 = per-experiment default)")
	flagWorkers = flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS)")
	flagBench   = flag.String("bench-json", "", "run the performance benchmark suite and write the JSON report to this path ('-' for stdout), then exit")
	flagBenchT  = flag.String("benchtime", "", "per-case benchtime for -bench-json ('1s', '100x'; default 1s)")
	// obs wires the shared observability flags (-metrics, -pprof, -trace,
	// -trace-buf, -ledger, -progress, -ci-stop, -heatmap) identically to
	// cmd/questsim.
	obs = obsflags.Register(flag.CommandLine)
	// sweep carries the observation bundle into the statistical experiment
	// drivers; assembled in main after obs.Start.
	sweep core.SweepObs
)

// trialsOr returns the -trials override, or the path's default.
func trialsOr(def int) int {
	if *flagTrials > 0 {
		return *flagTrials
	}
	return def
}

var experiments = []struct {
	name string
	desc string
	run  func()
}{
	{"fig2", "Baseline instruction bandwidth vs qubit count (Shor 128-1024 bits)", fig2},
	{"fig6", "QECC:regular instruction ratio per workload", fig6},
	{"fig10", "Required microcode capacity vs qubits serviced per design", fig10},
	{"fig11", "Qubits serviced per MCE at a fixed 4Kb budget", fig11},
	{"fig13", "T-factory instruction overhead per workload", fig13},
	{"fig14", "Global bandwidth savings with QuEST", fig14},
	{"fig15", "Savings sensitivity to qubit error rate", fig15},
	{"fig16", "MCE throughput per technology and syndrome design", fig16},
	{"table1", "Technology parameters", table1},
	{"table2", "QECC microcode design points", table2},
	{"machine", "Cycle-level machine demo: measured (not modelled) savings", machine},
	{"concat", "Extension (§9): concatenated codes, microcode inner + software outer", concatExt},
	{"dram", "Extension: cryo-DRAM feed analysis of the instruction stream", dramExt},
	{"threshold", "Validation: logical failure rate vs physical rate and distance", threshold},
	{"memory", "Validation: logical memory through the full machine decode path", memory},
	{"syndrome", "Extension: syndrome vs instruction traffic on the global bus", syndrome},
}

func main() {
	flag.Parse()
	args := flag.Args()
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *flagBench != "" {
		runBenchJSON(*flagBench, *flagBenchT)
		return
	}
	defer obs.Finish()
	// Deliberately no -workers here: the ledger is byte-identical for any
	// worker count, and recording the pool size would break that.
	lw, err := obs.OpenLedger("questbench", map[string]string{
		"args":    strings.Join(args, " "),
		"trials":  strconv.Itoa(*flagTrials),
		"ci-stop": strconv.FormatFloat(obs.CIStop(), 'g', -1, 64),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The telemetry stream shares the ledger's provenance: same experiment
	// name, same config (and the same deliberate -workers omission — events
	// are operational, but the pairing with the ledger should be obvious).
	if err := obs.OpenEvents("questbench", map[string]string{
		"args":    strings.Join(args, " "),
		"trials":  strconv.Itoa(*flagTrials),
		"ci-stop": strconv.FormatFloat(obs.CIStop(), 'g', -1, 64),
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Same provenance for the bandwidth profile: the artifact must identify
	// the run it measured, and -workers stays out so the waveform bytes keep
	// their worker-count independence.
	if err := obs.OpenBW("questbench", map[string]string{
		"args":    strings.Join(args, " "),
		"trials":  strconv.Itoa(*flagTrials),
		"ci-stop": strconv.FormatFloat(obs.CIStop(), 'g', -1, 64),
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The shard cursor is shared by every statistical experiment this
	// invocation runs, so cell ownership counts in global sweep order across
	// threshold and memory alike — exactly how ledgermerge re-interleaves.
	shard, err := core.NewShard(obs.Shard().Index, obs.Shard().Count)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sweep = core.SweepObs{
		Ledger:   lw,
		Heat:     obs.HeatSet(),
		BW:       obs.BW(),
		CIWidth:  obs.CIStop(),
		Progress: obs.SweepProgress(),
		Shard:    shard,
		Resume:   obs.Resume(),
	}
	if *flagMD {
		// Full evaluation as a self-contained Markdown report.
		fmt.Print(core.MarkdownReport(trialsOr(150), *flagWorkers))
		return
	}
	if len(args) == 0 {
		for _, e := range experiments {
			runOne(e.name, e.desc, e.run)
		}
		return
	}
	byName := map[string]int{}
	for i, e := range experiments {
		byName[e.name] = i
	}
	for _, a := range args {
		i, ok := byName[strings.ToLower(a)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", a)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
			}
			os.Exit(2)
		}
		runOne(experiments[i].name, experiments[i].desc, experiments[i].run)
	}
}

// runBenchJSON runs the benchsuite and writes the report to path ('-' =
// stdout).
func runBenchJSON(path, benchtime string) {
	rep := benchsuite.Run(benchsuite.Options{Benchtime: benchtime})
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench-json:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench-json: %d cases written to %s\n", len(rep.Results), path)
}

func runOne(name, desc string, f func()) {
	fmt.Printf("== %s: %s ==\n", name, desc)
	f()
	fmt.Println()
}

func fig2() {
	var rows [][]string
	for _, r := range core.Fig2() {
		rows = append(rows, []string{
			strconv.Itoa(r.Bits), strconv.Itoa(r.LogicalQubits), strconv.Itoa(r.Distance),
			fmt.Sprintf("%.3g", float64(r.PhysQubits)), r.Bandwidth.String(),
		})
	}
	fmt.Print(core.FormatTable(
		[]string{"shor-bits", "logical-qubits", "distance", "phys-qubits", "baseline-BW"}, rows))
}

func fig6() {
	var rows [][]string
	var bars []chart.Bar
	for _, r := range core.Fig6() {
		rows = append(rows, []string{
			r.Workload, fmt.Sprintf("%.3g", r.Ratio), fmt.Sprintf("10^%.1f", r.Orders),
			fmt.Sprintf("%.5f%%", 100*r.QECCFrac),
		})
		bars = append(bars, chart.Bar{Label: r.Workload, Value: r.Ratio})
	}
	fmt.Print(core.FormatTable([]string{"workload", "qecc:logical", "orders", "qecc-share"}, rows))
	fmt.Println()
	fmt.Print(chart.MustRender(bars, chart.Options{Log: true, Unit: "x", Width: 44}))
}

func fig10() {
	var rows [][]string
	for _, r := range core.Fig10() {
		rows = append(rows, []string{
			strconv.Itoa(r.Qubits), strconv.Itoa(r.RAMBits), strconv.Itoa(r.FIFOBits),
			strconv.Itoa(r.CellBits),
		})
	}
	fmt.Print(core.FormatTable([]string{"qubits", "RAM-bits", "FIFO-bits", "unitcell-bits"}, rows))
}

func fig11() {
	var rows [][]string
	for _, r := range core.Fig11() {
		rows = append(rows, []string{
			r.Config.String(), strconv.Itoa(r.RAM), strconv.Itoa(r.FIFO), strconv.Itoa(r.UnitCell),
		})
	}
	fmt.Print(core.FormatTable([]string{"memory config", "RAM", "FIFO", "unit-cell"}, rows))
}

func fig13() {
	var rows [][]string
	for _, r := range core.Fig13() {
		rows = append(rows, []string{
			r.Workload, strconv.Itoa(r.DistillRounds), strconv.Itoa(r.Factories),
			fmt.Sprintf("%.3g", r.Ratio), fmt.Sprintf("10^%.1f", r.Orders),
		})
	}
	fmt.Print(core.FormatTable([]string{"workload", "distill-rounds", "t-factories", "tfactory:logical", "orders"}, rows))
}

func fig14() {
	var rows [][]string
	for _, r := range core.Fig14() {
		rows = append(rows, []string{
			r.Workload, r.BaselineBW.String(), r.QuESTBW.String(), r.QuESTCacheBW.String(),
			fmt.Sprintf("10^%.1f", r.OrdersQuEST), fmt.Sprintf("10^%.1f", r.OrdersCache),
		})
	}
	fmt.Print(core.FormatTable(
		[]string{"workload", "baseline", "quest", "quest+cache", "savings", "savings+cache"}, rows))
	fmt.Println()
	var bars []chart.Bar
	for _, r := range core.Fig14() {
		bars = append(bars, chart.Bar{Label: r.Workload + " quest", Value: r.SavingsQuEST})
		bars = append(bars, chart.Bar{Label: r.Workload + " +cache", Value: r.SavingsCache})
	}
	fmt.Print(chart.MustRender(bars, chart.Options{Log: true, Unit: "x", Width: 44}))
	fmt.Printf("coefficient of variation across tech/syndrome configs: %.5f%%\n",
		100*core.Fig14CoefficientOfVariation())
}

func fig15() {
	var rows [][]string
	for _, r := range core.Fig15() {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", r.ErrorRate), r.Workload, strconv.Itoa(r.Distance),
			fmt.Sprintf("%.3g", r.SavingsQuEST), fmt.Sprintf("%.3g", r.SavingsCache),
			fmt.Sprintf("%.3g", r.DistillOv),
		})
	}
	fmt.Print(core.FormatTable(
		[]string{"error-rate", "workload", "distance", "savings", "savings+cache", "distill-ov"}, rows))
}

func fig16() {
	var rows [][]string
	for _, r := range core.Fig16() {
		rows = append(rows, []string{r.Tech, r.Schedule, r.Config.String(), strconv.Itoa(r.Qubits)})
	}
	fmt.Print(core.FormatTable([]string{"technology", "syndrome", "memory config", "qubits/MCE"}, rows))
}

func table1() {
	var rows [][]string
	for _, t := range workload.Techs() {
		rows = append(rows, []string{
			t.Name,
			fmt.Sprintf("%.0fns", t.TPrep), fmt.Sprintf("%.0fns", t.T1),
			fmt.Sprintf("%.0fns", t.TMeas), fmt.Sprintf("%.0fns", t.TCNOT),
			fmt.Sprintf("%.0fns", t.TEcc),
		})
	}
	fmt.Print(core.FormatTable([]string{"parameter set", "t_prep", "t_1", "t_meas", "t_CNOT", "T_ecc"}, rows))
}

func table2() {
	var rows [][]string
	for _, r := range core.Table2() {
		rows = append(rows, []string{
			r.Schedule, strconv.Itoa(r.Instructions), r.Config.String(),
			strconv.Itoa(r.JJs), fmt.Sprintf("%.1f µW", r.PowerUW),
		})
	}
	fmt.Print(core.FormatTable([]string{"syndrome", "no. instructions", "optimal µcode config", "no. JJs", "power"}, rows))
}

func concatExt() {
	var rows [][]string
	for _, r := range core.ExtConcat() {
		rows = append(rows, []string{
			strconv.Itoa(r.Levels), strconv.Itoa(r.InnerQubits),
			fmt.Sprintf("%.3g", r.LogicalError), strconv.Itoa(r.OuterInstrs),
			fmt.Sprintf("%.3g", r.Savings),
		})
	}
	fmt.Print(core.FormatTable(
		[]string{"outer-levels", "inner-qubits", "logical-error", "outer-instrs/round", "hybrid-savings"}, rows))
}

func dramExt() {
	var rows [][]string
	for _, r := range core.ExtDRAM() {
		rows = append(rows, []string{
			r.Workload, strconv.Itoa(r.BaselineChannels), fmt.Sprintf("%.2e", r.QuESTUtilization),
		})
	}
	fmt.Print(core.FormatTable(
		[]string{"workload", "baseline DDR channels needed", "QuEST channel utilization"}, rows))
}

// shardReg returns the registry Monte-Carlo drivers aggregate their
// per-worker shards into: Default when -metrics or -pprof is requested, nil
// (no aggregation) otherwise.
func shardReg() *metrics.Registry {
	return obs.ShardReg()
}

func threshold() {
	trows, err := core.ThresholdObserved(shardReg(), obs.Tracer(),
		[]float64{2e-3, 1e-3, 5e-4}, []int{3, 5}, trialsOr(200), *flagWorkers, sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "threshold experiment failed:", err)
		obs.Finish()
		os.Exit(1)
	}
	var rows [][]string
	for _, r := range trows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", r.PhysRate), strconv.Itoa(r.Distance),
			fmt.Sprintf("%.4f", r.FailRate),
			fmt.Sprintf("[%.4f, %.4f]", r.WilsonLo, r.WilsonHi), strconv.Itoa(r.Trials),
		})
	}
	fmt.Print(core.FormatTable([]string{"phys-rate", "distance", "logical-fail", "95% CI", "trials"}, rows))
}

func memory() {
	var rows [][]string
	for _, p := range []float64{0, 1e-4, 5e-4} {
		r, ran, err := core.MachineMemoryObserved(shardReg(), obs.Tracer(), p, 8, trialsOr(40), *flagWorkers, sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memory experiment failed:", err)
			obs.Finish()
			os.Exit(1)
		}
		if !ran {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", r.PhysRate), strconv.Itoa(r.Rounds),
			fmt.Sprintf("%.3f", r.FailRate()),
			fmt.Sprintf("[%.3f, %.3f]", r.WilsonLo, r.WilsonHi), strconv.Itoa(r.Trials),
		})
	}
	fmt.Print(core.FormatTable([]string{"phys-rate", "rounds", "logical-fail", "95% CI", "trials"}, rows))
}

func syndrome() {
	var rows [][]string
	for _, r := range core.ExtSyndromeTraffic([]float64{0, 1e-4, 1e-3}, 200) {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", r.PhysRate), strconv.Itoa(r.Cycles),
			strconv.FormatUint(r.InstructionBytes, 10), strconv.FormatUint(r.SyndromeBytes, 10),
		})
	}
	fmt.Print(core.FormatTable([]string{"phys-rate", "cycles", "instr-bytes (down)", "syndrome-bytes (up)"}, rows))
}

func machine() {
	res, err := core.MachineDemo(50)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine demo failed:", err)
		os.Exit(1)
	}
	fmt.Printf("distillation body: %d logical instructions, replayed 50x from the MCE cache\n", core.RoundInstrs())
	fmt.Printf("cycles: %d   logical retired: %d\n", res.Cycles, res.LogicalRetired)
	fmt.Printf("baseline bus: %d bytes   QuEST bus: %d bytes\n", res.BaselineBusBytes, res.QuESTBusBytes)
	fmt.Printf("measured savings: %.0fx\n", res.MeasuredSavings)
}
