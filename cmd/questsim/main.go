// Command questsim runs a cycle-level simulation of a QuEST machine: an MCE
// array replaying QECC microcode over a noisy stabilizer-simulated surface
// code, executing a logical workload dispatched by the master controller,
// with two-level decoding and full instruction-bus accounting.
//
// Usage:
//
//	questsim [flags]
//
//	-tiles N        MCE tiles (default 1)
//	-patches N      logical patches per tile (default 2)
//	-d N            code distance (default 3)
//	-design NAME    microcode design: ram, fifo, unitcell (default unitcell)
//	-noise P        uniform physical error rate (default 0: noiseless)
//	-cycles N       extra idle QECC cycles to run after the program (default 50)
//	-seed N         reproducibility seed (default 1)
//	-program NAME   workload: bell, ghz, distill, paulis (default bell)
//	-replays N      cache replays for -program distill (default 20)
//
// Observability (shared with questbench via internal/obsflags):
//
//	-metrics text|json   dump the metrics registry to stderr at exit
//	-pprof ADDR          serve net/http/pprof and Prometheus /metrics on ADDR
//	-trace FILE          write a cycle-correlated Perfetto trace (Chrome
//	                     trace-event JSON) of the run
//	-trace-buf N         trace ring capacity in events
//	-ledger FILE         write a provenance header plus a one-cell run
//	                     summary as a JSONL ledger (tools/ledgercheck)
//	-heatmap FILE        collect machine-wide defect/matching heatmaps and
//	                     write them as JSON (ASCII render on stderr)
//	-progress            tick idle-cycle progress on stderr
//	-ci-stop W           accepted for flag parity, but questsim runs a single
//	                     simulation — adaptive stopping applies to questbench
//	                     sweeps
//	-events FILE         stream live quest-events/1 telemetry snapshots
//	                     (idle-cycle progress, metrics deltas, runtime stats)
//	                     as JSONL; with -pprof the stream is also served over
//	                     SSE on /events (watch with tools/questtop)
//	-bw FILE             record per-bus instruction-bandwidth waveforms keyed
//	                     to the machine cycle clock and write a quest-bw/1
//	                     profile (validate and compare with tools/bwreport)
//	-bw-window N         profile window width in cycles (default 8)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"quest"
	"quest/internal/awg"
	"quest/internal/core"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/microcode"
	"quest/internal/obsflags"
	"quest/internal/workload"
)

func main() {
	var (
		tiles   = flag.Int("tiles", 1, "MCE tiles")
		patches = flag.Int("patches", 2, "logical patches per tile")
		dist    = flag.Int("d", 3, "code distance")
		design  = flag.String("design", "unitcell", "microcode design: ram, fifo, unitcell")
		noiseP  = flag.Float64("noise", 0, "uniform physical error rate")
		cycles  = flag.Int("cycles", 50, "idle QECC cycles appended after the program")
		seed    = flag.Int64("seed", 1, "simulation seed")
		program = flag.String("program", "bell", "workload: bell, ghz, distill, paulis")
		replays = flag.Int("replays", 20, "cache replays for -program distill")
		tech    = flag.String("tech", "projd", "timing model: exps, projf, projd, none")
	)
	obs := obsflags.Register(flag.CommandLine)
	flag.Parse()
	// Start before the machine is built: components resolve tracing.Default
	// at construction time.
	if err := obs.Start(); err != nil {
		log.Fatal(err)
	}
	defer obs.Finish()
	if obs.CIStop() > 0 {
		fmt.Fprintln(obs.Log, "ci-stop: questsim runs a single simulation; adaptive stopping applies to questbench sweeps")
	}
	if err := obs.OpenEvents("questsim", map[string]string{
		"program": *program,
		"design":  strings.ToLower(*design),
	}); err != nil {
		log.Fatal(err)
	}
	// The bandwidth artifact carries the design so bwreport can key its
	// comparison table on it (ram vs fifo vs unitcell microcode stores).
	if err := obs.OpenBW("questsim", map[string]string{
		"program": *program,
		"design":  strings.ToLower(*design),
	}); err != nil {
		log.Fatal(err)
	}

	cfg := quest.DefaultMachineConfig()
	cfg.Tiles = *tiles
	cfg.PatchesPerTile = *patches
	cfg.Distance = *dist
	cfg.Seed = *seed
	switch strings.ToLower(*design) {
	case "ram":
		cfg.Design = microcode.DesignRAM
	case "fifo":
		cfg.Design = microcode.DesignFIFO
	case "unitcell":
		cfg.Design = microcode.DesignUnitCell
	default:
		log.Fatalf("unknown design %q", *design)
	}
	if *noiseP > 0 {
		nm := quest.UniformNoise(*noiseP)
		cfg.Noise = &nm
	}
	switch strings.ToLower(*tech) {
	case "none":
	case "exps", "projf", "projd":
		t := map[string]workload.Tech{
			"exps": workload.ExperimentalS, "projf": workload.ProjectedF, "projd": workload.ProjectedD,
		}[strings.ToLower(*tech)]
		cfg.Timing = &awg.Timing{
			PrepNs: t.TPrep, Gate1Ns: t.T1, MeasNs: t.TMeas, CNOTNs: t.TCNOT, IdleNs: t.T1,
		}
	default:
		log.Fatalf("unknown tech %q", *tech)
	}
	cfg.Heat = obs.HeatSet()
	cfg.BW = obs.BW()
	m := quest.NewMachine(cfg)

	var rep quest.RunReport
	var err error
	if *program == "distill" {
		rep, err = m.RunDistillationCached(*replays, 0)
	} else {
		p := buildProgram(*program, *patches)
		rep, err = m.RunProgram(p, 0)
	}
	if err != nil {
		log.Fatal(err)
	}
	tick := *cycles / 10
	if tick < 1 {
		tick = 1
	}
	for c := 0; c < *cycles; c++ {
		m.Master().StepCycle()
		if (c+1)%tick == 0 || c+1 == *cycles {
			// Feed the idle-cycle phase to the telemetry sampler as one
			// pseudo-cell (nil-gated: free when events are off).
			obs.Events().ObserveCell("idle-cycles", mc.Progress{
				Completed: c + 1, Budget: *cycles, Done: c+1 == *cycles,
			})
			if obs.ProgressEnabled() {
				fmt.Fprintf(obs.Log, "\ridle qecc cycles: %d/%d", c+1, *cycles)
			}
		}
	}
	if obs.ProgressEnabled() && *cycles > 0 {
		fmt.Fprintln(obs.Log)
	}
	if err := writeRunLedger(obs, rep, cfg, *noiseP, *cycles, *program); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("questsim: %d tile(s) × %d patch(es), d=%d, %s microcode, noise=%g, program=%s\n",
		*tiles, *patches, *dist, cfg.Design, *noiseP, *program)
	fmt.Printf("  program cycles:        %d (+%d idle)\n", rep.Cycles, *cycles)
	fmt.Printf("  logical retired:       %d\n", rep.LogicalRetired)
	for _, r := range rep.Results {
		fmt.Printf("  logical measurement:   patch %d -> %d\n", r.Patch, r.Bit)
	}
	fmt.Printf("  baseline bus bytes:    %d\n", rep.BaselineBusBytes)
	fmt.Printf("  QuEST bus bytes:       %d\n", rep.QuESTBusBytes)
	fmt.Printf("  syndrome bytes (up):   %d\n", rep.SyndromeBytes)
	if rep.QuESTBusBytes > 0 {
		fmt.Printf("  measured savings:      %.0fx\n", rep.Savings())
	}
	escalated, decodes := m.Master().Stats()
	fmt.Printf("  defects escalated:     %d (global decodes: %d)\n", escalated, decodes)
	for i, t := range m.Master().Tiles() {
		micro, logical, hits, loads, stalls := t.Stats()
		fmt.Printf("  tile %d: %d µops, %d logical, cache %d hits/%d loads, %d T stalls, %d µcode bits streamed\n",
			i, micro, logical, hits, loads, stalls, t.Store().BitsStreamed())
		if ns := t.ElapsedNs(); ns > 0 {
			fmt.Printf("  tile %d wall clock:    %.3f µs (%s gate latencies)\n", i, ns/1e3, *tech)
		}
	}
	_ = core.RoundInstrs
}

// writeRunLedger records the single simulation as a one-cell ledger (when
// -ledger is on): a provenance header, one trial record carrying the run
// seed, and a summary cell whose Wilson bracket covers the (single,
// successfully drained) trial.
func writeRunLedger(obs *obsflags.Obs, rep quest.RunReport, cfg quest.MachineConfig, noiseP float64, cycles int, program string) error {
	lw, err := obs.OpenLedger("questsim", map[string]string{
		"program": program,
		"design":  cfg.Design.String(),
	})
	if err != nil || lw == nil {
		return err
	}
	cell := fmt.Sprintf("run program=%s", program)
	if err := lw.WriteTrial(ledger.Trial{
		Cell: cell, Trial: 0, Seed: ledger.SeedString(uint64(cfg.Seed)), Fail: !rep.Drained,
	}); err != nil {
		return err
	}
	failures := 0
	if !rep.Drained {
		failures = 1
	}
	lo, hi := mc.Wilson(failures, 1, 1.96)
	return lw.WriteCell(ledger.Cell{
		Cell: cell,
		Params: map[string]float64{
			"noise": noiseP, "d": float64(cfg.Distance), "tiles": float64(cfg.Tiles),
			"patches": float64(cfg.PatchesPerTile), "cycles": float64(cycles),
		},
		Seed: ledger.SeedString(uint64(cfg.Seed)), Budget: 1, Trials: 1,
		Failures: failures, Rate: float64(failures), WilsonLo: lo, WilsonHi: hi,
	})
}

func buildProgram(name string, patches int) *quest.Program {
	p := quest.NewProgram(max(2, patches))
	switch strings.ToLower(name) {
	case "bell":
		p.Prep0(0).Prep0(1).H(0).CNOT(0, 1).MeasZ(0).MeasZ(1)
	case "ghz":
		for q := 0; q < patches; q++ {
			p.Prep0(q)
		}
		p.H(0)
		for q := 1; q < patches; q++ {
			p.CNOT(0, q)
		}
		for q := 0; q < patches; q++ {
			p.MeasZ(q)
		}
	case "paulis":
		for i := 0; i < 20; i++ {
			p.X(i % patches)
			p.Z((i + 1) % patches)
		}
		p.MeasZ(0)
	default:
		log.Fatalf("unknown program %q (want bell, ghz, distill, paulis)", name)
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
