package quest_test

import (
	"fmt"

	"quest"
)

// ExampleNewMachine runs a tiny logical program end to end and reports the
// measured instruction-bus savings class.
func ExampleNewMachine() {
	m := quest.NewMachine(quest.DefaultMachineConfig())
	p := quest.NewProgram(2)
	p.Prep0(0).X(0).MeasZ(0)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("retired:", rep.LogicalRetired)
	fmt.Println("measured bit:", rep.Results[0].Bit)
	fmt.Println("baseline > 100x QuEST traffic:", rep.Savings() > 100)
	// Output:
	// retired: 3
	// measured bit: 1
	// baseline > 100x QuEST traffic: true
}

// ExampleNewEstimator derives the paper's headline quantities for Shor-1024.
func ExampleNewEstimator() {
	est := quest.NewEstimator()
	e := est.Estimate(quest.ShorProfile(1024))
	fmt.Println("code distance:", e.Distance)
	fmt.Println("millions of physical qubits:", e.TotalPhysical > 1_000_000)
	fmt.Println("QuEST saves at least 10^5:", e.SavingsQuEST() >= 1e5)
	fmt.Println("caching reaches ~10^8:", e.SavingsQuESTCache() >= 1e7)
	// Output:
	// code distance: 13
	// millions of physical qubits: true
	// QuEST saves at least 10^5: true
	// caching reaches ~10^8: true
}

// ExampleProgram shows the fluent circuit builder.
func ExampleProgram() {
	p := quest.NewProgram(3)
	p.Prep0(0).Prep0(1).H(0).CNOT(0, 1).T(2).MeasZ(0)
	fmt.Println("instructions:", len(p.Instrs))
	fmt.Println("T gates:", p.TCount())
	fmt.Println("last:", p.Instrs[len(p.Instrs)-1])
	// Output:
	// instructions: 6
	// T gates: 1
	// last: LMEASZ L0
}
