// Algorithms: canonical quantum kernels at both levels of the stack.
// Physical level — Bernstein–Vazirani, teleportation and GHZ run to
// completion on the stabilizer substrate and their answers are checked.
// Logical level — the same kernels compile to fault-tolerant programs whose
// instruction-stream costs the QuEST machine meters.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"math/rand"

	"quest"
	"quest/internal/circuits"
	"quest/internal/clifford"
	"quest/internal/sched"
)

func main() {
	fmt.Println("Physical level (stabilizer substrate, verified answers)")
	fmt.Println("--------------------------------------------------------")
	secret := []bool{true, false, true, true, false, true}
	tb := clifford.New(len(secret)+1, rand.New(rand.NewSource(7)))
	got := circuits.RunBernsteinVaziraniPhysical(tb, secret)
	fmt.Printf("Bernstein-Vazirani: secret %v recovered %v (one query)\n", bits(secret), bits(got))

	tele0 := circuits.RunTeleportationPhysical(clifford.New(3, rand.New(rand.NewSource(1))), false)
	tele1 := circuits.RunTeleportationPhysical(clifford.New(3, rand.New(rand.NewSource(2))), true)
	fmt.Printf("Teleportation: |0> -> %d, |1> -> %d\n", tele0, tele1)

	ghz := circuits.RunGHZPhysical(clifford.New(5, rand.New(rand.NewSource(3))), 5)
	fmt.Printf("GHZ(5): measured %v (all correlated)\n", ghz)

	fmt.Println()
	fmt.Println("Logical level (fault-tolerant programs on the QuEST machine)")
	fmt.Println("-------------------------------------------------------------")
	bv := circuits.BernsteinVazirani(secret)
	res, err := sched.Schedule(bv, sched.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("BV program: %d instructions, ILP %.2f, critical path %d slots\n",
		len(bv.Instrs), res.ILP, res.CriticalPath)

	qft := quest.NewProgram(6)
	circuits.QFT(qft, 6, 1e-4)
	s := qft.Stats()
	fmt.Printf("QFT(6) @1e-4: %d instructions, %d T gates (%.0f%% — the §5.2 story)\n",
		s.Total, s.TCount, 100*s.TFraction)

	cfg := quest.DefaultMachineConfig()
	cfg.PatchesPerTile = 4
	m := quest.NewMachine(cfg)
	rep, err := m.RunProgram(circuits.GHZ(4), 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("GHZ(4) on the machine: %d instructions in %d cycles, baseline %d B vs QuEST %d B (%.0fx)\n",
		rep.LogicalRetired, rep.Cycles, rep.BaselineBusBytes, rep.QuESTBusBytes, rep.Savings())
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		out[i] = '0'
		if b {
			out[i] = '1'
		}
	}
	return string(out)
}
