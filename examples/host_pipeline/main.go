// Host pipeline: the full offload path of §2.2 — assemble a textual
// program, lint it, compile it on the classical host (scheduling, ILP
// analysis, distillation bundling), serialize the quantum executable, stage
// it in cryo-DRAM, and run it on the simulated machine.
//
//	go run ./examples/host_pipeline
package main

import (
	"bytes"
	"fmt"
	"log"

	"quest"
	"quest/internal/core"
	"quest/internal/dram"
	"quest/internal/host"
	"quest/internal/qasm"
	"quest/internal/qexe"
)

const source = `
; teleport-flavoured demo: entangle, twist, measure
prep0 q0
prep0 q1
h q0
t q0
cnot q0, q1
x q1
measz q0
measz q1
`

func main() {
	// 1. Assemble.
	prog, err := qasm.ParseString(source, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d logical instructions over %d qubits\n", len(prog.Instrs), prog.NumLogical)

	// 2. Lint.
	if warnings := host.Lint(prog); len(warnings) > 0 {
		for _, w := range warnings {
			fmt.Println("  lint:", w)
		}
	} else {
		fmt.Println("lint: clean")
	}

	// 3. Compile: schedule + bundle the distillation loop for the T gate.
	art, err := host.Compile(prog, host.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: makespan %d slots, critical path %d, ILP %.2f\n",
		art.Schedule.Makespan, art.Schedule.CriticalPath, art.ILP)
	fmt.Printf("magic states needed: %d (suggested factories: %d)\n", art.TCount, art.FactoriesSuggested)
	fmt.Printf("cache sections bundled: %d\n", len(art.Exe.Caches))

	// 4. Serialize the executable and stage it in 77K DRAM.
	var wire bytes.Buffer
	if err := art.Exe.Encode(&wire); err != nil {
		log.Fatal(err)
	}
	store, err := dram.New(dram.Default77K())
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Load(uint64(wire.Len())); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executable: %d bytes staged in cryo-DRAM (%.6f%% of capacity)\n",
		wire.Len(), 100*float64(wire.Len())/float64(16<<30))

	// 5. Offload and run on the simulated machine.
	exe, err := qexe.Decode(&wire)
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMachine(quest.DefaultMachineConfig())
	rep, err := m.RunExecutable(exe, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: retired %d instructions in %d QECC cycles\n", rep.LogicalRetired, rep.Cycles)
	for _, r := range rep.Results {
		fmt.Printf("  logical measurement: q%d -> %d\n", r.Patch, r.Bit)
	}
	fmt.Printf("bus: baseline %d B vs QuEST %d B — %.0fx saved\n",
		rep.BaselineBusBytes, rep.QuESTBusBytes, rep.Savings())
}
