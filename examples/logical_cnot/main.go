// Logical CNOT: watch the mask table drive a braided CNOT (the paper's
// Figure 12) on a three-patch tile, with an ASCII rendering of the lattice
// and the mask at each braid step, while the QECC cadence never misses a
// beat.
//
//	go run ./examples/logical_cnot
package main

import (
	"fmt"
	"log"

	"quest"
	"quest/internal/surface"
)

func main() {
	layout := quest.NewLayout(3, 3)
	fmt.Println("Tile: three distance-3 planar patches (D=data, X/Z=ancilla)")
	fmt.Println(layout.Lat)

	steps := braidSteps(layout)
	fmt.Printf("Logical CNOT L0→L2 braids the control boundary through the gap: %d mask steps\n\n", len(steps))

	mask := surface.NewMask(layout.Lat)
	render(layout.Lat, mask, "rest state")
	for i, s := range steps[:len(steps)/2] {
		if err := surface.ApplyBraidStep(mask, s); err != nil {
			log.Fatal(err)
		}
		if i == len(steps)/2-1 {
			render(layout.Lat, mask, "braid fully extended")
		}
	}
	for _, s := range steps[len(steps)/2:] {
		if err := surface.ApplyBraidStep(mask, s); err != nil {
			log.Fatal(err)
		}
	}
	render(layout.Lat, mask, "braid retracted (mask restored)")

	// Now run it for real on the machine: the CNOT occupies both patches
	// for one cycle per braid step while QECC replays everywhere else.
	cfg := quest.DefaultMachineConfig()
	cfg.PatchesPerTile = 3
	m := quest.NewMachine(cfg)
	p := quest.NewProgram(3)
	p.Prep0(0).Prep0(2).X(0).CNOT(0, 2).MeasZ(0)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine run: %d logical instructions retired in %d cycles\n",
		rep.LogicalRetired, rep.Cycles)
	fmt.Printf("control qubit measured: %d (braid cost %d cycles, QECC uninterrupted)\n",
		rep.Results[0].Bit, len(steps))
	fmt.Printf("bus traffic: baseline %d bytes vs QuEST %d bytes (%.0fx)\n",
		rep.BaselineBusBytes, rep.QuESTBusBytes, rep.Savings())
}

// braidSteps rebuilds the same walk the MCE executes for CNOT(0,2).
func braidSteps(layout quest.Layout) []surface.BraidStep {
	// The compiler's braid path: middle row, from patch 0's east edge to
	// patch 2's west edge and back.
	row := layout.Lat.Rows / 2
	from, to := 5, 11 // gap columns between patch 0 (cols 0-4) and patch 2 (cols 12-16)
	var out []surface.BraidStep
	for c := from; c <= to; c++ {
		out = append(out, surface.BraidStep{Grow: true, R: row, C: c})
	}
	for i := len(out) - 1; i >= 0; i-- {
		out = append(out, surface.BraidStep{Grow: false, R: out[i].R, C: out[i].C})
	}
	return out
}

func render(lat surface.Lattice, mask *surface.Mask, label string) {
	fmt.Printf("-- %s --\n%s\n", label, surface.RenderMask(lat, mask))
}
