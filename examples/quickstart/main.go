// Quickstart: build a small QuEST machine, run a logical program on the
// simulated substrate, and compare the instruction-bus traffic against the
// software-managed baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quest"
)

func main() {
	// A single MCE tile holding two distance-3 surface-code patches over a
	// stabilizer-simulated substrate, with two T-factories feeding it.
	cfg := quest.DefaultMachineConfig()
	m := quest.NewMachine(cfg)

	// A logical program: prepare both qubits, flip one, entangle via a
	// braided CNOT, and measure.
	p := quest.NewProgram(2)
	p.Prep0(0).Prep0(1)
	p.X(0)
	p.CNOT(0, 1)
	p.MeasZ(0)
	p.MeasZ(1)

	rep, err := m.RunProgram(p, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("QuEST quickstart")
	fmt.Println("----------------")
	fmt.Printf("logical instructions retired: %d over %d QECC cycles\n",
		rep.LogicalRetired, rep.Cycles)
	for _, r := range rep.Results {
		fmt.Printf("  logical qubit %d measured: %d\n", r.Patch, r.Bit)
	}
	fmt.Printf("baseline bus traffic (software-managed QECC): %d bytes\n", rep.BaselineBusBytes)
	fmt.Printf("QuEST bus traffic (hardware-managed QECC):    %d bytes\n", rep.QuESTBusBytes)
	fmt.Printf("measured savings on this toy tile:            %.0fx\n", rep.Savings())
	fmt.Println()
	fmt.Println("At workload scale the estimator derives the paper's headline numbers:")
	est := quest.NewEstimator()
	for _, w := range quest.Workloads()[:3] {
		e := est.Estimate(w)
		fmt.Printf("  %-8s distance %2d, %9d physical qubits, QuEST saves %8.0fx (%.0e with caching)\n",
			w.Name, e.Distance, e.TotalPhysical, e.SavingsQuEST(), e.SavingsQuESTCache())
	}
}
