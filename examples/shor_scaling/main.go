// Shor scaling: reproduce the paper's Figure 2 motivation — baseline
// instruction bandwidth grows linearly with the machine and reaches the
// ~100 TB/s regime for 1024-bit factoring — then show what the same sweep
// looks like under QuEST.
//
//	go run ./examples/shor_scaling
package main

import (
	"fmt"
	"math"

	"quest"
	"quest/internal/bandwidth"
	"quest/internal/workload"
)

func main() {
	fmt.Println("Shor's algorithm: instruction bandwidth vs problem size")
	fmt.Println("========================================================")
	fmt.Printf("%-6s %-9s %-9s %-12s %-14s %-14s %s\n",
		"bits", "logical", "distance", "physical", "baseline", "quest", "savings")
	est := quest.NewEstimator()
	for bits := 128; bits <= 1024; bits *= 2 {
		p := quest.ShorProfile(bits)
		e := est.Estimate(p)
		naive := bandwidth.BytesPerSec(workload.NaiveBandwidth(e.TotalPhysical))
		fmt.Printf("%-6d %-9d %-9d %-12.3g %-14s %-14s 10^%.1f\n",
			bits, p.LogicalQubits, e.Distance, float64(e.TotalPhysical),
			naive.String(),
			bandwidth.BytesPerSec(e.QuESTCacheBandwidth()).String(),
			math.Log10(e.SavingsQuESTCache()))
	}
	fmt.Println()
	fmt.Println("The baseline column is the §3.3 model: every physical qubit consumes")
	fmt.Println("byte-sized instructions at its 100 MHz operating rate, so bandwidth")
	fmt.Println("scales linearly with machine size and passes 100 TB/s before 1024 bits —")
	fmt.Println("impractical inside a cryostat's power budget. QuEST's traffic scales with")
	fmt.Println("the *active* logical instructions instead.")
}
