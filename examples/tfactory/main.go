// T-factory: the §5.2/§5.3 story in executable form. Magic-state
// distillation dominates logical traffic; its loop bodies are deterministic,
// so the MCE's software-managed instruction cache replays them from a
// one-time load and the global bus carries only batched run tokens.
//
//	go run ./examples/tfactory
package main

import (
	"fmt"
	"log"

	"quest"
	"quest/internal/core"
	"quest/internal/distill"
)

func main() {
	fmt.Println("Magic-state distillation and the logical instruction cache")
	fmt.Println("===========================================================")

	// The 15-to-1 protocol's error suppression.
	fmt.Println("\n15-to-1 distillation (p_out = 35·p_in³):")
	pin := distill.RawStateError(1e-4)
	fmt.Printf("  raw injected state error: %.1e\n", pin)
	for r := 1; r <= 3; r++ {
		fmt.Printf("  after %d round(s): %.2e  (cost: %.0f logical instructions/state)\n",
			r, distill.OutputErrorAfter(pin, r), distill.InstructionsPerState(r))
	}

	// The deterministic loop body that makes caching work.
	body := distill.RoundCircuit()
	fmt.Printf("\none distillation round = %d logical instructions, deterministic control flow\n", len(body))
	fmt.Printf("first instructions: %v %v %v ... last: %v\n", body[0], body[1], body[2], body[len(body)-1])

	// Workload-level impact (Figure 13).
	fmt.Println("\nT-factory overhead per workload (Figure 13):")
	est := quest.NewEstimator()
	for _, w := range quest.Workloads() {
		e := est.Estimate(w)
		fmt.Printf("  %-10s %d rounds, %2d factories, distill:logical = %8.3g\n",
			w.Name, e.DistillRounds, e.Factories, e.TFactoryOverhead())
	}

	// Cycle-level: replay the loop from the cache and measure the bus.
	fmt.Println("\ncycle-level cache replay on the simulated machine:")
	res, err := core.MachineDemo(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions retired from %d bus bytes (one load + run tokens)\n",
		res.LogicalRetired, res.QuESTBusBytes)
	fmt.Printf("  software-managed equivalent: %d bytes — measured savings %.0fx\n",
		res.BaselineBusBytes, res.MeasuredSavings)
}
