// Threshold: exercise the full error-correction path — noisy stabilizer
// substrate, syndrome extraction compiled by the surface-code layer,
// space-time windowed decoding (Appendix A.2), Pauli frame — and sweep the
// physical error rate to show logical failures are suppressed below
// threshold and suppressed harder at higher code distance.
//
//	go run ./examples/threshold
package main

import (
	"fmt"

	"quest/internal/core"
)

func main() {
	fmt.Println("Logical failure rate vs physical error rate (full decode path)")
	fmt.Println("================================================================")
	rates := []float64{2e-3, 1e-3, 5e-4, 2e-4}
	distances := []int{3, 5}
	rows := core.Threshold(rates, distances, 300, 0) // workers=0: use all cores
	fmt.Printf("%-10s", "p_phys")
	for _, d := range distances {
		fmt.Printf("  d=%d logical-fail", d)
	}
	fmt.Println()
	byRate := map[float64][]core.ThresholdRow{}
	for _, r := range rows {
		byRate[r.PhysRate] = append(byRate[r.PhysRate], r)
	}
	for _, p := range rates {
		fmt.Printf("%-10.0e", p)
		for _, r := range byRate[p] {
			fmt.Printf("  %-17.4f", r.FailRate)
		}
		fmt.Println()
	}
	fmt.Println("\nEach trial: project the lattice, run 4 noisy QECC rounds, batch the")
	fmt.Println("defects in a d-round space-time window, match them with the global")
	fmt.Println("decoder, flush, and check the frame-corrected logical Z against the")
	fmt.Println("injected ground truth. Below threshold the d=5 column is suppressed")
	fmt.Println("relative to d=3 — the property that makes surface-code QECC (and hence")
	fmt.Println("its instruction stream) worth spending 99.999% of the machine on.")
}
