// Workload report: the full QuRE-style resource derivation for every
// benchmark in the paper's suite — code distances, physical qubit budgets,
// T-factory provisioning, runtimes, and the three architectures' bus
// traffic — at each of the Table 1 technology operating points.
//
//	go run ./examples/workload_report
package main

import (
	"fmt"
	"math"

	"quest"
	"quest/internal/bandwidth"
	"quest/internal/workload"
)

func main() {
	for _, tech := range workload.Techs() {
		fmt.Printf("=== %s (T_ecc %.0fns) ===\n", tech.Name, tech.TEcc)
		fmt.Printf("%-10s %4s %12s %10s %11s %11s %9s %9s\n",
			"workload", "d", "phys-qubits", "factories", "runtime", "baseline", "quest", "cached")
		est := quest.NewEstimator()
		est.Tech = tech
		for _, w := range quest.Workloads() {
			e := est.Estimate(w)
			fmt.Printf("%-10s %4d %12.3g %10d %11s %11s %9s %9s\n",
				w.Name, e.Distance, float64(e.TotalPhysical), e.Factories,
				duration(e.RuntimeSec),
				bandwidth.BytesPerSec(e.BaselineBandwidth()).String(),
				bandwidth.BytesPerSec(e.QuESTBandwidth()).String(),
				bandwidth.BytesPerSec(e.QuESTCacheBandwidth()).String())
		}
		fmt.Println()
	}
	fmt.Println("Reading the table: baseline bandwidth is dominated by QECC µops on every")
	fmt.Println("physical qubit; QuEST ships only logical+distillation instructions; the")
	fmt.Println("cached column ships the distillation loop body once and replays it from")
	fmt.Println("the MCE instruction cache. The savings columns of Figure 14 are the")
	fmt.Println("ratios between these columns; note how technology choice moves absolute")
	fmt.Println("bandwidths but barely moves the ratios (§7).")
}

func duration(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.3gµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.3gms", sec*1e3)
	case sec < 60:
		return fmt.Sprintf("%.3gs", sec)
	case sec < 3600:
		return fmt.Sprintf("%.3gmin", sec/60)
	case sec < 86400:
		return fmt.Sprintf("%.3gh", sec/3600)
	default:
		return fmt.Sprintf("%.3gd", math.Round(sec/8640)/10)
	}
}
