package quest_test

import (
	"testing"

	"quest"
)

// TestFacadeSurface exercises every re-export of the public package so the
// facade cannot silently drift from the internal packages.
func TestFacadeSurface(t *testing.T) {
	if got := quest.NewLayout(3, 4).NumPatches(); got != 4 {
		t.Errorf("NewLayout patches = %d", got)
	}
	nm := quest.UniformNoise(1e-3)
	if nm.Idle != 1e-3 || nm.Gate2 != 1e-3 {
		t.Errorf("UniformNoise = %+v", nm)
	}
	if got := len(quest.Workloads()); got != 7 {
		t.Errorf("Workloads = %d", got)
	}
	if quest.ShorProfile(256).LogicalQubits != 515 {
		t.Error("ShorProfile wrong")
	}
	if quest.Steane.Depth != 9 || quest.Shor.Depth != 14 ||
		quest.SC17.Name != "SC-17" || quest.SC13.Name != "SC-13" {
		t.Error("schedule re-exports wrong")
	}
	designs := []quest.Design{quest.DesignRAM, quest.DesignFIFO, quest.DesignUnitCell}
	if designs[0].String() != "RAM" || designs[2].String() != "Unit-cell" {
		t.Error("design re-exports wrong")
	}
	cfg := quest.DefaultMachineConfig()
	cfg.Design = quest.DesignFIFO
	m := quest.NewMachine(cfg)
	p := quest.NewProgram(2)
	p.PrepPlus(0).S(0).Z(1).MeasX(0)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != 4 {
		t.Fatalf("facade machine run: %+v", rep)
	}
	est := quest.NewEstimator()
	var e quest.Estimate = est.Estimate(quest.Workloads()[0])
	if e.Distance < 3 {
		t.Error("estimate via facade broken")
	}
}
