module quest

go 1.22
