package quest_test

import (
	"bytes"
	"testing"

	"quest/internal/awg"
	"quest/internal/compiler"
	"quest/internal/core"
	"quest/internal/host"
	"quest/internal/noise"
	"quest/internal/qasm"
	"quest/internal/qexe"
	"quest/internal/workload"
)

// TestFullPipelineEverythingOn is the grand integration test: textual source
// through the complete host pipeline (lint, schedule, placement,
// distillation bundling, binary serialization) onto a machine with every
// architectural feature enabled at once — multi-tile NoC delivery, bounded
// instruction buffers, noisy substrate, windowed union-find decoding,
// Table 1 timing — asserting correct results, full drain, and the bandwidth
// ordering the whole repository exists to demonstrate.
func TestFullPipelineEverythingOn(t *testing.T) {
	src := `
; two independent pairs that naive striping would split across tiles
prep0 q0
prep0 q3
prep0 q1
prep0 q2
x q0
cnot q0, q3
cnot q1, q2
t q1
measz q0
measz q3
measz q1
measz q2
`
	prog, err := qasm.Parse(bytes.NewBufferString(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	if warnings := host.Lint(prog); len(warnings) != 0 {
		t.Fatalf("lint: %v", warnings)
	}
	opts := host.DefaultOptions()
	opts.MachineTiles = 2
	opts.PatchesPerTile = 2
	art, err := host.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement.CutCNOTs != 0 {
		t.Fatalf("placement left %d cuts", art.Placement.CutCNOTs)
	}
	if len(art.Exe.Caches) != 1 {
		t.Fatal("distillation body not bundled")
	}

	// Over the wire.
	var wire bytes.Buffer
	if err := art.Exe.Encode(&wire); err != nil {
		t.Fatal(err)
	}
	exe, err := qexe.Decode(&wire)
	if err != nil {
		t.Fatal(err)
	}

	// Machine with every feature on.
	nm := noise.Uniform(1e-4)
	tech := workload.ProjectedD
	cfg := core.MachineConfig{
		Tiles:           2,
		PatchesPerTile:  2,
		Distance:        3,
		Schedule:        core.DefaultMachineConfig().Schedule,
		Design:          core.DefaultMachineConfig().Design,
		Noise:           &nm,
		Seed:            12,
		PacketsPerCycle: 4,
		Factories:       3,
		FactoryLatency:  3,
		CacheSlots:      4,
		UseNoC:          true,
		DecodeWindow:    3,
		UseUnionFind:    true,
		Timing: &awg.Timing{
			PrepNs: tech.TPrep, Gate1Ns: tech.T1, MeasNs: tech.TMeas,
			CNOTNs: tech.TCNOT, IdleNs: tech.T1,
		},
	}
	m := core.NewMachine(cfg)
	rep, err := m.RunExecutable(exe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatal("machine did not drain")
	}
	if rep.LogicalRetired != len(exe.Program) {
		t.Fatalf("retired %d of %d", rep.LogicalRetired, len(exe.Program))
	}
	if len(rep.Results) != 4 {
		t.Fatalf("measurements = %d, want 4", len(rep.Results))
	}
	// q0 was X'd: its placed patch must read 1; the other three read 0.
	ones := 0
	for _, r := range rep.Results {
		ones += r.Bit
	}
	if ones != 1 {
		t.Errorf("measured %d ones across 4 qubits, want exactly 1 (the X'd qubit)", ones)
	}
	// Bandwidth ordering, wall clock, and timing all live.
	if rep.BaselineBusBytes <= rep.QuESTBusBytes {
		t.Error("bandwidth ordering violated")
	}
	// The one-shot distillation cache load (212 B) dominates this
	// 12-instruction program's bus bill, so absolute savings are modest
	// here; amortization is covered by the cache benchmarks.
	if rep.Savings() < 10 {
		t.Errorf("measured savings %.0f implausibly low", rep.Savings())
	}
	for i, tile := range m.Master().Tiles() {
		if tile.ElapsedNs() <= 0 {
			t.Errorf("tile %d: no wall-clock accounting", i)
		}
	}
}

// TestPlacedBlockProgramOnMachine ties compiler → placement → machine on a
// program whose interaction structure is clusterable but whose qubit
// numbering defeats naive striping: pairs (0,4),(1,5),(2,6),(3,7) braid
// repeatedly. Striping splits every pair across tiles; placement restores
// locality and the machine runs the whole thing.
func TestPlacedBlockProgramOnMachine(t *testing.T) {
	prog := compiler.NewProgram(8)
	for q := 0; q < 8; q++ {
		prog.Prep0(q)
	}
	for rep := 0; rep < 3; rep++ {
		for q := 0; q < 4; q++ {
			prog.CNOT(q, q+4)
		}
	}
	for q := 0; q < 8; q++ {
		prog.MeasZ(q)
	}
	opts := host.DefaultOptions()
	opts.MachineTiles = 4
	opts.PatchesPerTile = 2
	art, err := host.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement.CutCNOTs != 0 {
		t.Fatalf("clusterable program left %d cuts", art.Placement.CutCNOTs)
	}
	cfg := core.DefaultMachineConfig()
	cfg.Tiles = 4
	cfg.PatchesPerTile = 2
	m := core.NewMachine(cfg)
	rep, err := m.RunExecutable(art.Exe, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != len(art.Exe.Program) {
		t.Fatalf("drained=%v retired=%d/%d", rep.Drained, rep.LogicalRetired, len(art.Exe.Program))
	}
	if len(rep.Results) != 8 {
		t.Fatalf("measurements = %d, want 8", len(rep.Results))
	}
	// A dense synthetic workload slice, by contrast, is NOT fully
	// clusterable onto 2-patch tiles — the placer must report the cuts
	// rather than hide them.
	dense := workload.SyntheticProgram(workload.TFP, 120)
	denseArt, err := host.Compile(dense, opts)
	if err != nil {
		t.Fatal(err)
	}
	if denseArt.Placement.CutCNOTs == 0 {
		t.Error("dense interaction graph reported zero cuts — placer over-promising")
	}
}
