// Package awg models the quantum execution unit of the paper's §2.3: the
// primeline multiplexing architecture of Hornibrook et al., in which a small
// set of arbitrary waveform generators (AWGs) continuously drive an analog
// prime-line bus, and a matrix of microwave switches — one per qubit —
// selects which waveform reaches which qubit. A physical instruction is
// nothing more than the select bits latched onto the switches; when the
// master clock fires, every latched switch passes its waveform and the whole
// tile executes one lock-step sub-cycle.
//
// The model is behavioural: latching fills a per-qubit select register (in
// any order, since order does not matter — the property the FIFO microcode
// optimization rests on), and Fire applies the selected gates to the
// stabilizer substrate, injecting noise at each location. The unit also
// counts latch and fire events so microarchitecture experiments can audit
// that every qubit is serviced every sub-cycle.
package awg

import (
	"fmt"

	"quest/internal/clifford"
	"quest/internal/isa"
	"quest/internal/noise"
)

// Waveform identifies one of the analog control pulses an AWG produces. Each
// opcode maps to a waveform; the switch matrix routes it.
type Waveform uint8

// NumWaveforms is the number of distinct pulses the AWG bank produces — one
// per physical opcode class.
const NumWaveforms = isa.NumOpcodes

// ExecutionUnit is one tile's AWG bank plus switch matrix plus the
// measurement return path.
type ExecutionUnit struct {
	n       int
	tableau *clifford.Tableau
	inj     *noise.Injector

	selects []isa.Opcode // latched select register per switch
	pairs   []int
	latched []bool

	latchCount uint64
	fireCount  uint64
	measCount  uint64

	timing    *Timing
	elapsedNs float64

	// MeasSink receives every measurement produced by Fire; the MCE points
	// it at its error-decoder pipeline.
	MeasSink func(qubit int, bit int)
}

// New returns an execution unit driving n qubits of the given substrate with
// the given noise injector (nil means noiseless).
func New(tableau *clifford.Tableau, inj *noise.Injector) *ExecutionUnit {
	n := tableau.N()
	return &ExecutionUnit{
		n:       n,
		tableau: tableau,
		inj:     inj,
		selects: make([]isa.Opcode, n),
		pairs:   make([]int, n),
		latched: make([]bool, n),
	}
}

// N returns the number of switches (qubits) in the matrix.
func (u *ExecutionUnit) N() int { return u.n }

// Tableau exposes the underlying substrate (used by tests and verification).
func (u *ExecutionUnit) Tableau() *clifford.Tableau { return u.tableau }

// Latch loads one µop's select bits onto its qubit's switch. Latching twice
// without an intervening Fire indicates a microcode pipeline bug and panics.
func (u *ExecutionUnit) Latch(m isa.MicroOp) {
	if m.Qubit < 0 || m.Qubit >= u.n {
		panic(fmt.Sprintf("awg: latch for qubit %d outside %d-switch matrix", m.Qubit, u.n))
	}
	if u.latched[m.Qubit] {
		panic(fmt.Sprintf("awg: double latch on qubit %d before fire", m.Qubit))
	}
	u.selects[m.Qubit] = m.Op
	u.pairs[m.Qubit] = m.Pair
	u.latched[m.Qubit] = true
	u.latchCount++
}

// LatchWord latches a whole VLIW word (convenience for lock-step callers).
func (u *ExecutionUnit) LatchWord(w isa.VLIW) {
	for _, m := range w.MicroOps() {
		u.Latch(m)
	}
}

// Ready reports whether every switch has been latched since the last Fire —
// the determinism invariant: the master clock may only fire when no qubit
// would be left uncontrolled.
func (u *ExecutionUnit) Ready() bool {
	for _, l := range u.latched {
		if !l {
			return false
		}
	}
	return true
}

// Fire applies the master clock: every latched waveform executes
// simultaneously on the substrate, measurements are routed to MeasSink, and
// all latches clear. Fire panics if any switch is unlatched (a violated
// lock-step guarantee) or if paired two-qubit µops are inconsistent.
func (u *ExecutionUnit) Fire() {
	if !u.Ready() {
		panic("awg: fire with unlatched switches (lock-step violation)")
	}
	u.fireCount++
	if u.timing != nil {
		max := u.timing.IdleNs
		for _, op := range u.selects {
			if l := u.timing.opLatencyNs(op); l > max {
				max = l
			}
		}
		u.elapsedNs += max
	}
	// Two-qubit gates execute once per pair: act on the control side.
	for q := 0; q < u.n; q++ {
		op := u.selects[q]
		switch op {
		case isa.OpIdle:
			if u.inj != nil {
				u.inj.Idle(u.tableau, q)
			}
		case isa.OpPrep0:
			u.tableau.Prep0(q)
			if u.inj != nil {
				u.inj.AfterPrep(u.tableau, q, false)
			}
		case isa.OpPrep1:
			u.tableau.Prep1(q)
			if u.inj != nil {
				u.inj.AfterPrep(u.tableau, q, false)
			}
		case isa.OpPrepPlus:
			u.tableau.PrepPlus(q)
			if u.inj != nil {
				u.inj.AfterPrep(u.tableau, q, true)
			}
		case isa.OpX:
			u.tableau.X(q)
			u.afterGate1(q)
		case isa.OpY:
			u.tableau.Y(q)
			u.afterGate1(q)
		case isa.OpZ:
			u.tableau.Z(q)
			u.afterGate1(q)
		case isa.OpH:
			u.tableau.H(q)
			u.afterGate1(q)
		case isa.OpS:
			u.tableau.S(q)
			u.afterGate1(q)
		case isa.OpSDagger:
			u.tableau.SDagger(q)
			u.afterGate1(q)
		case isa.OpT:
			// T is non-Clifford; at the physical level it is realized by
			// magic-state injection. The substrate simulator treats it as a
			// placement marker: the gate-count and timing effects are what
			// the architecture experiments measure. Noise still applies.
			u.afterGate1(q)
		case isa.OpCNOTControl:
			p := u.pairs[q]
			u.checkPair(q, p, isa.OpCNOTTarget)
			u.tableau.CNOT(q, p)
			if u.inj != nil {
				u.inj.AfterGate2(u.tableau, q, p)
			}
		case isa.OpCNOTTarget:
			// executed from the control side
			u.checkPair(q, u.pairs[q], isa.OpCNOTControl)
		case isa.OpCZ:
			p := u.pairs[q]
			u.checkPair(q, p, isa.OpCZ)
			if q < p { // execute each CZ pair once
				u.tableau.CZ(q, p)
				if u.inj != nil {
					u.inj.AfterGate2(u.tableau, q, p)
				}
			}
		case isa.OpMeasZ:
			bit := u.tableau.MeasureZ(q)
			u.deliverMeasurement(q, bit)
		case isa.OpMeasX:
			bit := u.tableau.MeasureX(q)
			u.deliverMeasurement(q, bit)
		default:
			panic(fmt.Sprintf("awg: unhandled opcode %s on qubit %d", op, q))
		}
	}
	for q := range u.latched {
		u.latched[q] = false
	}
}

func (u *ExecutionUnit) afterGate1(q int) {
	if u.inj != nil {
		u.inj.AfterGate1(u.tableau, q)
	}
}

func (u *ExecutionUnit) deliverMeasurement(q, bit int) {
	u.measCount++
	if u.inj != nil && u.inj.FlipMeasurement(q) {
		bit ^= 1
	}
	if u.MeasSink != nil {
		u.MeasSink(q, bit)
	}
}

func (u *ExecutionUnit) checkPair(q, p int, want isa.Opcode) {
	if p < 0 || p >= u.n {
		panic(fmt.Sprintf("awg: qubit %d paired with out-of-range %d", q, p))
	}
	if u.selects[p] != want {
		panic(fmt.Sprintf("awg: qubit %d (%s) paired with qubit %d latched as %s, want %s",
			q, u.selects[q], p, u.selects[p], want))
	}
	if u.pairs[p] != q {
		panic(fmt.Sprintf("awg: asymmetric pairing %d->%d but %d->%d", q, p, p, u.pairs[p]))
	}
}

// Stats returns cumulative (latches, fires, measurements).
func (u *ExecutionUnit) Stats() (latches, fires, measurements uint64) {
	return u.latchCount, u.fireCount, u.measCount
}

// ExecuteWord latches and fires a complete VLIW word — one lock-step
// sub-cycle. Measurements flow to MeasSink.
func (u *ExecutionUnit) ExecuteWord(w isa.VLIW) {
	if w.Len() != u.n {
		panic(fmt.Sprintf("awg: word width %d != matrix width %d", w.Len(), u.n))
	}
	u.LatchWord(w)
	u.Fire()
}
