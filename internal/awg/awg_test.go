package awg

import (
	"math/rand"
	"testing"

	"quest/internal/clifford"
	"quest/internal/isa"
	"quest/internal/noise"
)

func newUnit(n int, seed int64, m *noise.Model) *ExecutionUnit {
	tb := clifford.New(n, rand.New(rand.NewSource(seed)))
	var inj *noise.Injector
	if m != nil {
		inj = noise.NewInjector(*m, seed)
	}
	return New(tb, inj)
}

func TestLatchFireBasics(t *testing.T) {
	u := newUnit(3, 1, nil)
	if u.N() != 3 {
		t.Fatalf("N = %d", u.N())
	}
	w := isa.NewVLIW(3)
	w.Set(0, isa.OpX)
	u.LatchWord(w)
	if !u.Ready() {
		t.Fatal("fully latched unit not Ready")
	}
	u.Fire()
	if out := u.Tableau().MeasureZ(0); out != 1 {
		t.Errorf("X µop not applied: measured %d", out)
	}
	latches, fires, meas := u.Stats()
	if latches != 3 || fires != 1 || meas != 0 {
		t.Errorf("stats = (%d,%d,%d), want (3,1,0)", latches, fires, meas)
	}
}

func TestLatchOrderIndependence(t *testing.T) {
	// The FIFO microcode optimization rests on latch order not mattering:
	// executing the same word latched in different orders must produce the
	// same state.
	mkWord := func() isa.VLIW {
		w := isa.NewVLIW(4)
		w.Set(0, isa.OpH)
		w.SetPair(1, isa.OpCNOTControl, 2)
		w.SetPair(2, isa.OpCNOTTarget, 1)
		w.Set(3, isa.OpX)
		return w
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	var states []*clifford.Tableau
	for _, ord := range orders {
		u := newUnit(4, 9, nil)
		u.Tableau().X(1) // make the CNOT act
		ops := mkWord().MicroOps()
		for _, i := range ord {
			u.Latch(ops[i])
		}
		u.Fire()
		states = append(states, u.Tableau())
	}
	for i := 1; i < len(states); i++ {
		for q := 0; q < 4; q++ {
			if states[0].ExpectationZ(q) != states[i].ExpectationZ(q) {
				t.Fatalf("order %d: qubit %d expectation differs", i, q)
			}
		}
	}
}

func TestFireRequiresFullLatch(t *testing.T) {
	u := newUnit(2, 1, nil)
	u.Latch(isa.MicroOp{Op: isa.OpX, Qubit: 0})
	if u.Ready() {
		t.Error("half-latched unit Ready")
	}
	defer func() {
		if recover() == nil {
			t.Error("Fire with unlatched switch did not panic")
		}
	}()
	u.Fire()
}

func TestDoubleLatchPanics(t *testing.T) {
	u := newUnit(2, 1, nil)
	u.Latch(isa.MicroOp{Op: isa.OpX, Qubit: 0})
	defer func() {
		if recover() == nil {
			t.Error("double latch did not panic")
		}
	}()
	u.Latch(isa.MicroOp{Op: isa.OpZ, Qubit: 0})
}

func TestMeasurementsReachSink(t *testing.T) {
	u := newUnit(2, 1, nil)
	var got []int
	u.MeasSink = func(q, bit int) { got = append(got, q, bit) }
	w := isa.NewVLIW(2)
	w.Set(0, isa.OpPrep1)
	u.ExecuteWord(w)
	w2 := isa.NewVLIW(2)
	w2.Set(0, isa.OpMeasZ)
	u.ExecuteWord(w2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("sink received %v, want [0 1]", got)
	}
	_, _, meas := u.Stats()
	if meas != 1 {
		t.Errorf("measurement count = %d", meas)
	}
}

func TestAllOpcodesExecute(t *testing.T) {
	u := newUnit(4, 1, nil)
	u.MeasSink = func(int, int) {}
	for op := isa.Opcode(0); op.Valid(); op++ {
		w := isa.NewVLIW(4)
		switch {
		case op.IsTwoQubit():
			switch op {
			case isa.OpCNOTControl:
				w.SetPair(0, isa.OpCNOTControl, 1)
				w.SetPair(1, isa.OpCNOTTarget, 0)
			case isa.OpCNOTTarget:
				w.SetPair(0, isa.OpCNOTTarget, 1)
				w.SetPair(1, isa.OpCNOTControl, 0)
			case isa.OpCZ:
				w.SetPair(0, isa.OpCZ, 1)
				w.SetPair(1, isa.OpCZ, 0)
			}
		default:
			w.Set(0, op)
		}
		u.ExecuteWord(w) // must not panic
	}
}

func TestCZExecutesOncePerPair(t *testing.T) {
	// CZ applied twice is identity; if the unit executed the pair from both
	// sides the phase kickback would cancel. |+>|1> -> CZ -> |->|1>.
	u := newUnit(2, 1, nil)
	u.Tableau().H(0)
	u.Tableau().X(1)
	w := isa.NewVLIW(2)
	w.SetPair(0, isa.OpCZ, 1)
	w.SetPair(1, isa.OpCZ, 0)
	u.ExecuteWord(w)
	if out := u.Tableau().MeasureX(0); out != 1 {
		t.Errorf("CZ executed an even number of times (measured %d, want 1)", out)
	}
}

func TestMismatchedPairPanics(t *testing.T) {
	u := newUnit(3, 1, nil)
	w := isa.VLIW{
		Ops:   []isa.Opcode{isa.OpCNOTControl, isa.OpIdle, isa.OpIdle},
		Pairs: []int{1, -1, -1},
	}
	defer func() {
		if recover() == nil {
			t.Error("dangling CNOT control did not panic at fire")
		}
	}()
	u.LatchWord(w)
	u.Fire()
}

func TestWrongWidthWordPanics(t *testing.T) {
	u := newUnit(3, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("wrong-width word accepted")
		}
	}()
	u.ExecuteWord(isa.NewVLIW(5))
}

func TestNoiseInjectionOnIdle(t *testing.T) {
	m := noise.Uniform(1)
	u := newUnit(1, 1, &m)
	w := isa.NewVLIW(1) // idle
	u.ExecuteWord(w)
	// With p=1 idle noise a Pauli was applied; state may or may not flip in
	// Z, but the injector log must have exactly one fault.
	// (Access via the noise injector isn't exposed; assert indirectly: run
	// many idles and check the state was disturbed at least once.)
	disturbed := false
	for i := 0; i < 20; i++ {
		u.ExecuteWord(isa.NewVLIW(1))
		if u.Tableau().ExpectationZ(0) != 1 {
			disturbed = true
			break
		}
	}
	if !disturbed {
		t.Error("certain idle noise never disturbed the qubit")
	}
}

func TestMeasurementNoiseFlipsReportedBit(t *testing.T) {
	m := noise.Model{Meas: 1}
	u := newUnit(1, 1, &m)
	var bits []int
	u.MeasSink = func(_, b int) { bits = append(bits, b) }
	w := isa.NewVLIW(1)
	w.Set(0, isa.OpMeasZ)
	u.ExecuteWord(w)
	// Qubit is |0>, certain measurement error flips the report to 1.
	if len(bits) != 1 || bits[0] != 1 {
		t.Errorf("reported bits %v, want [1]", bits)
	}
	// The projected state is still |0>: a second (also flipped) report is 1.
	u.ExecuteWord(w)
	if bits[1] != 1 {
		t.Errorf("second report %d, want 1", bits[1])
	}
}

func TestTGateIsCountedNotSimulated(t *testing.T) {
	u := newUnit(1, 1, nil)
	w := isa.NewVLIW(1)
	w.Set(0, isa.OpT)
	u.ExecuteWord(w) // must not panic and must not flip Z expectation
	if u.Tableau().ExpectationZ(0) != 1 {
		t.Error("T placeholder disturbed Z eigenstate")
	}
}
