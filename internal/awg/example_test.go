package awg_test

import (
	"fmt"
	"math/rand"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
)

// ExampleExecutionUnit shows the primeline model: µops latch onto the
// switch matrix in any order, then the master clock fires them in lock-step.
func ExampleExecutionUnit() {
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	u := awg.New(tb, nil)
	u.MeasSink = func(q, bit int) { fmt.Printf("qubit %d measured %d\n", q, bit) }

	w := isa.NewVLIW(2)
	w.Set(0, isa.OpPrep1)
	u.ExecuteWord(w) // latch + fire

	w2 := isa.NewVLIW(2)
	w2.Set(0, isa.OpMeasZ)
	u.ExecuteWord(w2)

	latches, fires, meas := u.Stats()
	fmt.Printf("latches %d, fires %d, measurements %d\n", latches, fires, meas)
	// Output:
	// qubit 0 measured 1
	// latches 4, fires 2, measurements 1
}
