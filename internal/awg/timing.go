package awg

import (
	"fmt"

	"quest/internal/isa"
)

// Timing holds per-operation latencies in nanoseconds (the paper's Table 1
// technology parameters). A lock-step sub-cycle lasts as long as its slowest
// latched operation — everything fires on the same master clock edge and the
// next latch wave cannot complete until the slowest waveform has played out.
type Timing struct {
	PrepNs  float64
	Gate1Ns float64
	MeasNs  float64
	CNOTNs  float64
	// IdleNs floors the sub-cycle length (an all-idle word still takes one
	// single-qubit slot: the clock runs unconditionally).
	IdleNs float64
}

// Validate checks all latencies are positive.
func (tm Timing) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"PrepNs", tm.PrepNs}, {"Gate1Ns", tm.Gate1Ns}, {"MeasNs", tm.MeasNs}, {"CNOTNs", tm.CNOTNs}, {"IdleNs", tm.IdleNs}} {
		if f.v <= 0 {
			return fmt.Errorf("awg: %s = %v not positive", f.name, f.v)
		}
	}
	return nil
}

// opLatencyNs returns the waveform duration of one opcode under the timing.
func (tm Timing) opLatencyNs(op isa.Opcode) float64 {
	switch {
	case op == isa.OpIdle:
		return tm.IdleNs
	case op.IsPrep():
		return tm.PrepNs
	case op.IsMeasurement():
		return tm.MeasNs
	case op.IsTwoQubit():
		return tm.CNOTNs
	default:
		return tm.Gate1Ns
	}
}

// WordLatencyNs returns the lock-step duration of one VLIW word: the maximum
// over its µops, floored at IdleNs.
func (tm Timing) WordLatencyNs(w isa.VLIW) float64 {
	max := tm.IdleNs
	for _, op := range w.Ops {
		if l := tm.opLatencyNs(op); l > max {
			max = l
		}
	}
	return max
}

// SetTiming enables wall-clock accounting on the unit (nil-safe default is
// no accounting). Must be called before the first Fire that should count.
func (u *ExecutionUnit) SetTiming(tm Timing) {
	if err := tm.Validate(); err != nil {
		panic(err)
	}
	u.timing = &tm
}

// ElapsedNs returns the accumulated wall-clock time of all fired sub-cycles
// (zero when no timing was set).
func (u *ExecutionUnit) ElapsedNs() float64 { return u.elapsedNs }
