package awg

import (
	"math"
	"math/rand"
	"testing"

	"quest/internal/clifford"
	"quest/internal/isa"
)

// projectedD mirrors Table 1's Projected_D column.
var projectedD = Timing{PrepNs: 40, Gate1Ns: 5, MeasNs: 35, CNOTNs: 20, IdleNs: 5}

func TestTimingValidate(t *testing.T) {
	if err := projectedD.Validate(); err != nil {
		t.Errorf("valid timing rejected: %v", err)
	}
	bad := projectedD
	bad.MeasNs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestWordLatencyIsMax(t *testing.T) {
	w := isa.NewVLIW(4)
	w.Set(0, isa.OpH)         // 5ns
	w.SetPair(1, isa.OpCZ, 2) // 20ns
	w.SetPair(2, isa.OpCZ, 1)
	// qubit 3 idle: 5ns
	if got := projectedD.WordLatencyNs(w); got != 20 {
		t.Errorf("word latency = %v, want 20 (slowest op)", got)
	}
	w.Set(3, isa.OpMeasZ)
	if got := projectedD.WordLatencyNs(w); got != 35 {
		t.Errorf("with measurement = %v, want 35", got)
	}
	if got := projectedD.WordLatencyNs(isa.NewVLIW(2)); got != 5 {
		t.Errorf("all-idle word = %v, want idle floor 5", got)
	}
}

func TestElapsedAccumulates(t *testing.T) {
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	u := New(tb, nil)
	u.MeasSink = func(int, int) {}
	u.SetTiming(projectedD)
	// Sub-cycle 1: prep (40ns). Sub-cycle 2: CNOT (20ns). Sub-cycle 3:
	// measure (35ns). Total 95ns.
	w1 := isa.NewVLIW(2)
	w1.Set(0, isa.OpPrep0)
	u.ExecuteWord(w1)
	w2 := isa.NewVLIW(2)
	w2.SetPair(0, isa.OpCNOTControl, 1)
	w2.SetPair(1, isa.OpCNOTTarget, 0)
	u.ExecuteWord(w2)
	w3 := isa.NewVLIW(2)
	w3.Set(1, isa.OpMeasZ)
	u.ExecuteWord(w3)
	if got := u.ElapsedNs(); math.Abs(got-95) > 1e-9 {
		t.Errorf("elapsed = %v ns, want 95", got)
	}
}

func TestNoTimingMeansNoAccounting(t *testing.T) {
	tb := clifford.New(1, rand.New(rand.NewSource(1)))
	u := New(tb, nil)
	u.ExecuteWord(isa.NewVLIW(1))
	if u.ElapsedNs() != 0 {
		t.Error("elapsed nonzero without timing")
	}
}

func TestSetTimingRejectsInvalid(t *testing.T) {
	tb := clifford.New(1, rand.New(rand.NewSource(1)))
	u := New(tb, nil)
	defer func() {
		if recover() == nil {
			t.Error("invalid timing accepted")
		}
	}()
	u.SetTiming(Timing{})
}
