// Package bandwidth provides the units, counters and formatting used across
// the instruction-bandwidth experiments: byte rates spanning the paper's
// eight orders of magnitude, instruction counters for the machine
// simulations, and orders-of-magnitude helpers for reporting savings.
package bandwidth

import (
	"fmt"
	"math"
	"sync/atomic"

	"quest/internal/metrics"
)

// BytesPerSec is an instruction bandwidth.
type BytesPerSec float64

// Rate units.
const (
	KBs BytesPerSec = 1e3
	MBs BytesPerSec = 1e6
	GBs BytesPerSec = 1e9
	TBs BytesPerSec = 1e12
	PBs BytesPerSec = 1e15
)

// String renders the rate with an SI prefix, e.g. "3.2 TB/s". A value is
// promoted to a unit not only when it reaches the unit's threshold but also
// when %.3g would round its mantissa in the next unit down to 1000 —
// otherwise 999,600 B/s prints as "1e+03 KB/s" instead of "1 MB/s" (the
// threshold check and the 3-significant-digit rounding disagree in
// [999.5, 1000) at every unit boundary).
func (b BytesPerSec) String() string {
	abs := math.Abs(float64(b))
	units := []struct {
		scale float64
		name  string
	}{
		{float64(PBs), "PB/s"}, {float64(TBs), "TB/s"}, {float64(GBs), "GB/s"},
		{float64(MBs), "MB/s"}, {float64(KBs), "KB/s"}, {1, "B/s"},
	}
	for i, u := range units {
		promoted := i < len(units)-1 && abs >= units[i+1].scale*999.5
		if abs >= u.scale || promoted {
			return fmt.Sprintf("%.3g %s", float64(b)/u.scale, u.name)
		}
	}
	return fmt.Sprintf("%.3g B/s", float64(b))
}

// OrdersOfMagnitude returns log10 of the ratio a/b — the paper's preferred
// way of reporting savings ("five orders of magnitude"). Both must be
// positive.
func OrdersOfMagnitude(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("bandwidth: non-positive ratio operands %v/%v", a, b))
	}
	return math.Log10(a / b)
}

// Counter is a thread-safe instruction/byte counter used by the machine
// simulations to meter traffic on each bus. Bridge mirrors its traffic into
// the metrics registry so bus meters show up in the observability layer
// without a second accounting path.
type Counter struct {
	instructions atomic.Uint64
	bytes        atomic.Uint64

	mirrorInstr atomic.Pointer[metrics.Counter]
	mirrorBytes atomic.Pointer[metrics.Counter]
}

// Bridge mirrors every future Add into the two registry counters. The mirror
// is cumulative across the Counter's lifetime: Reset zeroes the local meter
// (per-run accounting) but never the registry totals, so the registry
// aggregates traffic across every machine built in the process.
func (c *Counter) Bridge(instr, bytes *metrics.Counter) {
	c.mirrorInstr.Store(instr)
	c.mirrorBytes.Store(bytes)
}

// Add records n instructions totalling b bytes.
func (c *Counter) Add(n, b uint64) {
	c.instructions.Add(n)
	c.bytes.Add(b)
	if m := c.mirrorInstr.Load(); m != nil {
		m.Add(n)
	}
	if m := c.mirrorBytes.Load(); m != nil {
		m.Add(b)
	}
}

// Instructions returns the instruction count.
func (c *Counter) Instructions() uint64 { return c.instructions.Load() }

// Bytes returns the byte count.
func (c *Counter) Bytes() uint64 { return c.bytes.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.instructions.Store(0)
	c.bytes.Store(0)
}

// Rate converts the byte count into a bandwidth over the given duration.
// A non-positive duration returns 0 rather than Inf/NaN: callers derive
// seconds from cycle counts or wall-clock deltas, and a zero-length run has
// no meaningful rate — it must not leak non-finite values into reports or
// telemetry streams.
func (c *Counter) Rate(seconds float64) BytesPerSec {
	if seconds <= 0 {
		return 0
	}
	return BytesPerSec(float64(c.Bytes()) / seconds)
}

// Breakdown is a labelled set of traffic components that sums to a total,
// used by the evaluation tables (QECC vs distillation vs logical traffic).
type Breakdown struct {
	labels []string
	bytes  []float64
}

// Add appends a component.
func (b *Breakdown) Add(label string, bytes float64) {
	b.labels = append(b.labels, label)
	b.bytes = append(b.bytes, bytes)
}

// Total returns the summed bytes.
func (b *Breakdown) Total() float64 {
	t := 0.0
	for _, v := range b.bytes {
		t += v
	}
	return t
}

// Fraction returns the share of the labelled component, or 0 if unknown.
func (b *Breakdown) Fraction(label string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	for i, l := range b.labels {
		if l == label {
			return b.bytes[i] / t
		}
	}
	return 0
}

// Components returns the labels in insertion order.
func (b *Breakdown) Components() []string { return append([]string(nil), b.labels...) }

// Bytes returns the byte count of the labelled component.
func (b *Breakdown) Bytes(label string) float64 {
	for i, l := range b.labels {
		if l == label {
			return b.bytes[i]
		}
	}
	return 0
}
