package bandwidth

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRateFormatting(t *testing.T) {
	cases := []struct {
		in   BytesPerSec
		want string
	}{
		{100 * TBs, "100 TB/s"},
		{3.2 * GBs, "3.2 GB/s"},
		{1.5 * MBs, "1.5 MB/s"},
		{2 * KBs, "2 KB/s"},
		{512, "512 B/s"},
		{2.5 * PBs, "2.5 PB/s"},
		{0, "0 B/s"},
		{-512, "-512 B/s"},
		{KBs, "1 KB/s"}, // exactly at each unit threshold
		{MBs, "1 MB/s"},
		{GBs, "1 GB/s"},
		{0.999 * KBs, "999 B/s"}, // just under a threshold stays down a unit
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v String = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestOrdersOfMagnitude(t *testing.T) {
	if got := OrdersOfMagnitude(1e13, 1e5); math.Abs(got-8) > 1e-9 {
		t.Errorf("OOM(1e13,1e5) = %v, want 8", got)
	}
	if got := OrdersOfMagnitude(5, 5); got != 0 {
		t.Errorf("equal operands OOM = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive operand accepted")
		}
	}()
	OrdersOfMagnitude(0, 1)
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(10, 20)
	c.Add(5, 10)
	if c.Instructions() != 15 || c.Bytes() != 30 {
		t.Errorf("counter = (%d,%d)", c.Instructions(), c.Bytes())
	}
	if got := c.Rate(2); got != 15 {
		t.Errorf("rate = %v", got)
	}
	c.Reset()
	if c.Instructions() != 0 || c.Bytes() != 0 {
		t.Error("reset failed")
	}
}

// TestRateDegenerateDurations pins the Rate edge cases: zero, negative and
// denormal-tiny durations must return a finite rate (0 for non-positive),
// never Inf or NaN — these values flow straight into reports and the
// telemetry stream.
func TestRateDegenerateDurations(t *testing.T) {
	var c Counter
	c.Add(3, 30)
	for _, seconds := range []float64{0, -1, math.Inf(-1)} {
		if got := c.Rate(seconds); got != 0 {
			t.Errorf("Rate(%v) = %v, want 0", seconds, got)
		}
	}
	if got := c.Rate(5e-324); math.IsNaN(float64(got)) {
		t.Errorf("Rate(denormal) = %v, want non-NaN", got)
	}
	var empty Counter
	if got := empty.Rate(0); got != 0 {
		t.Errorf("empty Rate(0) = %v, want 0", got)
	}
	if s := empty.Rate(0).String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("degenerate rate renders %q", s)
	}
}

func TestCounterConcurrency(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1, 2)
			}
		}()
	}
	wg.Wait()
	if c.Instructions() != 8000 || c.Bytes() != 16000 {
		t.Errorf("concurrent counter = (%d,%d), want (8000,16000)", c.Instructions(), c.Bytes())
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add("qecc", 999000)
	b.Add("logical", 1000)
	if b.Total() != 1e6 {
		t.Errorf("total = %v", b.Total())
	}
	if got := b.Fraction("qecc"); math.Abs(got-0.999) > 1e-12 {
		t.Errorf("qecc fraction = %v", got)
	}
	if got := b.Fraction("missing"); got != 0 {
		t.Errorf("missing fraction = %v", got)
	}
	if got := b.Bytes("logical"); got != 1000 {
		t.Errorf("logical bytes = %v", got)
	}
	if got := strings.Join(b.Components(), ","); got != "qecc,logical" {
		t.Errorf("components = %q", got)
	}
	var empty Breakdown
	if empty.Fraction("x") != 0 {
		t.Error("empty breakdown fraction nonzero")
	}
}

// TestRateFormattingUnitBoundary is the regression test for the SI boundary
// bug: values whose %.3g mantissa rounds to 1000 must promote to the next
// unit instead of printing "1e+03 KB/s".
func TestRateFormattingUnitBoundary(t *testing.T) {
	cases := []struct {
		in   BytesPerSec
		want string
	}{
		{999600, "1 MB/s"},          // the reported bug
		{999.6, "1 KB/s"},           // B/s -> KB/s boundary
		{999.6 * GBs, "1 TB/s"},     // GB/s -> TB/s boundary
		{999.6 * TBs, "1 PB/s"},     // TB/s -> PB/s boundary
		{-999600, "-1 MB/s"},        // sign preserved through promotion
		{999.4 * KBs, "999 KB/s"},   // just below the rounding cliff
		{1001 * KBs, "1 MB/s"},      // normal promotion unaffected
		{999.6 * PBs, "1e+03 PB/s"}, // no unit above PB/s to promote into
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v String = %q, want %q", float64(c.in), got, c.want)
		}
	}
}
