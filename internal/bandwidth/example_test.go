package bandwidth_test

import (
	"fmt"

	"quest/internal/bandwidth"
)

// ExampleBytesPerSec formats rates across the paper's eight orders of
// magnitude.
func ExampleBytesPerSec() {
	fmt.Println(bandwidth.BytesPerSec(100e12)) // the Figure 2 wall
	fmt.Println(bandwidth.BytesPerSec(3.4e6))  // a QuEST+cache stream
	fmt.Printf("%.1f orders apart\n", bandwidth.OrdersOfMagnitude(100e12, 3.4e6))
	// Output:
	// 100 TB/s
	// 3.4 MB/s
	// 7.5 orders apart
}
