// Package benchsuite runs the repository's performance-tracking benchmarks
// from inside a normal binary (cmd/questbench -bench-json) and renders the
// results as a stable, schema-versioned JSON report. CI runs the suite on
// every push and tools/benchdiff compares the report against the committed
// baseline (BENCH_PR2.json at the repo root), so a decoder or machine-loop
// regression shows up as a failed check instead of a surprise in the next
// paper-scale sweep.
//
// The cases cover the hot paths the observability layer instruments: exact
// and greedy global matching, the per-round local decode, the windowed flush,
// Pauli-frame updates, syndrome differencing, one Monte-Carlo threshold cell
// and the cycle-level machine loop. Each case is a standard func(*testing.B)
// driven by testing.Benchmark, so `go test -bench` and the JSON report
// exercise identical code.
package benchsuite

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"testing"

	"quest/internal/bwprofile"
	"quest/internal/core"
	"quest/internal/decoder"
	"quest/internal/events"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/noise"
	"quest/internal/surface"
)

// Schema identifies the report layout; bump on incompatible change so
// tools/benchdiff can refuse to compare across layouts.
const Schema = "quest-bench/1"

// Result is one benchmark case's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full suite output: measurements plus enough provenance to
// judge whether two reports are comparable (same host class, same
// parallelism) and a metrics snapshot of everything the instrumented paths
// recorded while the suite ran.
type Report struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Host       string           `json:"host"`
	Benchtime  string           `json:"benchtime"`
	Results    []Result         `json:"results"`
	Metrics    metrics.Snapshot `json:"metrics"`
}

// Case is one named benchmark.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// mkDefect builds a defect at ancilla q with denormalized coordinates, the
// same construction the decoder tests use.
func mkDefect(lat surface.Lattice, q, round int) decoder.Defect {
	r, c := lat.Coord(q)
	return decoder.Defect{
		Round: round, Qubit: q, R: r, C: c,
		IsX: lat.RoleOf(q) == surface.RoleAncillaX,
	}
}

// zDefects picks n distinct Z-ancilla defects deterministically (every other
// ancilla, wrapping) — no RNG so every run benchmarks the same matching
// problem.
func zDefects(lat surface.Lattice, n int) []decoder.Defect {
	zs := lat.Qubits(surface.RoleAncillaZ)
	defects := make([]decoder.Defect, 0, n)
	for i := 0; len(defects) < n; i += 2 {
		q := zs[i%len(zs)]
		round := i / len(zs)
		defects = append(defects, mkDefect(lat, q, round))
	}
	return defects
}

// Cases returns the suite. Every case records into reg (so the report's
// metrics section reflects exactly the suite's work, not whatever else the
// process did); reg must be non-nil.
func Cases(reg *metrics.Registry) []Case {
	in := decoder.NewInstr(reg)
	return []Case{
		{"decoder-exact-match-10", func(b *testing.B) {
			lat := surface.NewPlanar(9)
			g := decoder.NewGlobalDecoder(lat)
			g.SetInstr(in)
			defects := zDefects(lat, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Match(defects)
			}
		}},
		{"decoder-greedy-match-24", func(b *testing.B) {
			lat := surface.NewPlanar(11)
			g := decoder.NewGlobalDecoder(lat)
			g.SetInstr(in)
			defects := zDefects(lat, 24) // above MaxExact: greedy path
			if len(defects) <= g.MaxExact {
				b.Fatalf("case misconfigured: %d defects within exact range %d",
					len(defects), g.MaxExact)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Match(defects)
			}
		}},
		{"decoder-local-round", func(b *testing.B) {
			lat := surface.NewPlanar(5)
			ld := decoder.NewLocalDecoder(lat)
			gd := decoder.NewGlobalDecoder(lat)
			gd.SetInstr(in)
			frame := decoder.NewPauliFrame()
			defects := zDefects(lat, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				decoder.DecodeRound(ld, gd, frame, defects)
			}
		}},
		{"decoder-window-flush", func(b *testing.B) {
			lat := surface.NewPlanar(7)
			win := decoder.NewWindowDecoder(decoder.NewGlobalDecoder(lat), 7)
			win.SetInstr(in)
			frame := decoder.NewPauliFrame()
			round := zDefects(lat, 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < 6; r++ {
					win.Absorb(round, frame)
				}
				win.Flush(frame)
			}
		}},
		{"frame-toggle", func(b *testing.B) {
			frame := decoder.NewPauliFrame()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := i & 1023
				frame.Apply(decoder.Correction{Qubit: q, FlipX: i&1 == 0})
			}
		}},
		{"history-absorb", func(b *testing.B) {
			lat := surface.NewPlanar(7)
			hist := decoder.NewHistory(lat)
			synd := make(map[int]int)
			for i, q := range lat.Qubits(surface.RoleAncillaZ) {
				synd[q] = i & 1
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hist.Absorb(synd)
			}
		}},
		{"threshold-cell-d3", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ThresholdIn(reg, []float64{1e-3}, []int{3}, 4, 1)
			}
		}},
		{"threshold-cell-d3-batched", func(b *testing.B) {
			// The same cell as threshold-cell-d3 through the lane-batched
			// Pauli-frame engine; the two cases side by side track the
			// batching speedup on every run.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ThresholdBatched(reg, nil, []float64{1e-3}, []int{3}, 4, 1, core.SweepObs{})
			}
		}},
		{"threshold-cell-d5-batched", func(b *testing.B) {
			// A d=5 cell: scaling headroom the scalar engine's tableau cost
			// made too slow to track per-push.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ThresholdBatched(reg, nil, []float64{1e-3}, []int{5}, 4, 1, core.SweepObs{})
			}
		}},
		{"events-off-observe", func(b *testing.B) {
			// With -events off the telemetry sampler is a nil pointer and
			// every sweep progress emit hits its nil gate. This pins that
			// disabled path at 0 allocs/op — the live telemetry analogue of
			// the observers-off budgets the decoder cases pin.
			var smp *events.Sampler
			p := mc.Progress{Budget: 1 << 20, Failures: 3, WilsonLo: 0.1, WilsonHi: 0.2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Completed = i
				smp.ObserveCell("cell", p)
			}
		}},
		{"bw-off-observe", func(b *testing.B) {
			// With -bw off the bandwidth recorder is a nil pointer and every
			// dispatch-site observe hits its nil gate. This pins that
			// disabled path at 0 allocs/op, mirroring events-off-observe.
			var rec *bwprofile.Recorder
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.Observe(i, bwprofile.BusLogical, bwprofile.ClassPauli, 1, 2)
			}
		}},
		{"machine-step-cycle", func(b *testing.B) {
			cfg := core.DefaultMachineConfig()
			nm := noise.Uniform(1e-4)
			cfg.Noise = &nm
			cfg.Metrics = reg
			m := core.NewMachine(cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Master().StepCycle()
			}
		}},
	}
}

// Options configures a suite run.
type Options struct {
	// Benchtime is the per-case measuring target in testing's -benchtime
	// syntax ("1s", "100x"). Empty keeps testing's default (1s). CI smoke
	// runs use "1x" to bound wall-clock.
	Benchtime string
}

// Run executes every case and assembles the report.
func Run(opts Options) Report {
	if opts.Benchtime == "" {
		opts.Benchtime = "1s"
	}
	// testing.Benchmark reads the -test.benchtime flag; register testing's
	// flags if the host binary has not, then set it explicitly.
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	_ = flag.Set("test.benchtime", opts.Benchtime)

	host, _ := os.Hostname()
	rep := Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       host,
		Benchtime:  opts.Benchtime,
	}
	reg := metrics.New()
	for _, c := range Cases(reg) {
		r := testing.Benchmark(c.Fn)
		rep.Results = append(rep.Results, Result{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	rep.Metrics = reg.Snapshot()
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report and checks its schema.
func ReadReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, err
	}
	return r, nil
}
