package benchsuite

import (
	"bytes"
	"testing"

	"quest/internal/metrics"
)

// TestRunProducesWellFormedReport runs the whole suite at one iteration per
// case — a smoke test that every case executes and the report round-trips
// through its JSON encoding with the schema intact.
func TestRunProducesWellFormedReport(t *testing.T) {
	rep := Run(Options{Benchtime: "1x"})
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	if want := len(Cases(metrics.New())); len(rep.Results) != want {
		t.Errorf("got %d cases, want %d", len(rep.Results), want)
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		if seen[r.Name] {
			t.Errorf("duplicate case name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("case %q has implausible measurement %+v", r.Name, r)
		}
	}
	// The decode cases record into the report's registry.
	found := false
	for _, h := range rep.Metrics.Histograms {
		if h.Name == "decoder.match.ns" && h.Summary.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("report metrics missing a populated decoder.match.ns histogram")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadReport(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Results) != len(rep.Results) {
		t.Errorf("round-trip mismatch: %+v vs %+v", back.Schema, rep.Schema)
	}
}

// TestEventsOffObserveZeroAllocs pins the suite's events-off-observe case at
// zero allocations per op: when -events is off the sampler is nil and the
// progress hook must cost one branch, nothing more.
func TestEventsOffObserveZeroAllocs(t *testing.T) {
	for _, c := range Cases(metrics.New()) {
		if c.Name != "events-off-observe" {
			continue
		}
		if r := testing.Benchmark(c.Fn); r.AllocsPerOp() != 0 {
			t.Errorf("events-off-observe: %d allocs/op, want 0", r.AllocsPerOp())
		}
		return
	}
	t.Fatal("suite is missing the events-off-observe case")
}

// TestBWOffObserveZeroAllocs pins the suite's bw-off-observe case at zero
// allocations per op: when -bw is off the recorder is nil and every
// dispatch-site observe must cost one branch, nothing more.
func TestBWOffObserveZeroAllocs(t *testing.T) {
	for _, c := range Cases(metrics.New()) {
		if c.Name != "bw-off-observe" {
			continue
		}
		if r := testing.Benchmark(c.Fn); r.AllocsPerOp() != 0 {
			t.Errorf("bw-off-observe: %d allocs/op, want 0", r.AllocsPerOp())
		}
		return
	}
	t.Fatal("suite is missing the bw-off-observe case")
}
