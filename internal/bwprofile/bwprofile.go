// Package bwprofile is the cycle-resolved instruction-bandwidth profiler:
// a deterministic, nil-gated recorder that buckets every byte and every
// instruction crossing a master/MCE bus into fixed N-cycle windows keyed to
// the machine's cycle clock — never the wall clock — and attributes the
// traffic to µop/instruction classes at the dispatch and cache-replay sites.
//
// Where internal/bandwidth answers "how many bytes total" (run-cumulative
// counters, so only an average rate), this package answers the questions the
// paper's figures actually compare across µcode designs: what was the *peak*
// window, how bursty is the stream (peak/mean), and which instruction
// classes carry the bytes. Peak — not average — bandwidth is the binding
// constraint on the host→control-processor link.
//
// Determinism follows the same discipline as the ledger, heatmap and event
// layers: windows are indexed by machine cycle, per-trial shards are created
// with NewShard and merged in trial order by the Monte-Carlo engine, and the
// quest-bw/1 artifact (jsonl.go) carries no wall-clock or worker-count
// fields, so its bytes are identical for any worker count (pinned by
// core's TestMachineMemoryBWWorkerCountInvariant and CI's bw-smoke cmp).
//
// Profiling is a pure side-band. A nil *Recorder is the -bw-off mode: every
// method is a nil-gated no-op, so call sites stay unconditional and the off
// path adds zero allocations (pinned by TestObserveNilAllocs and the
// benchsuite bw-off-observe case; enforced structurally by the nogate
// analyzer, which lists Recorder as a gated observability type).
package bwprofile

import (
	"sync"

	"quest/internal/isa"
)

// Schema identifies the quest-bw/1 JSONL layout; bump on incompatible change
// so tools/bwreport can refuse to compare across layouts.
const Schema = "quest-bw/1"

// DefaultWindow is the window width in machine cycles when the caller does
// not choose one: fine enough to resolve the per-round dispatch bursts the
// paper's waveforms show, coarse enough that a long run stays a few hundred
// windows.
const DefaultWindow = 8

// Bus identifies one metered link in the master/MCE fabric. The first four
// mirror the bandwidth.Counter quartet in internal/master; BusReplay is the
// MCE-local cache replay path, whose instructions never cross the global bus
// (it is metered with zero bytes — the traffic the cache *saved*).
type Bus uint8

const (
	BusLogical Bus = iota
	BusSync
	BusCache
	BusSyndrome
	BusReplay
	NumBuses
)

var busNames = [NumBuses]string{"logical", "sync", "cache", "syndrome", "replay"}

// String returns the bus's wire name as used in quest-bw/1 records and
// quest-events/1 snapshots.
func (b Bus) String() string {
	if b >= NumBuses {
		return "invalid"
	}
	return busNames[b]
}

// Class is the µop/instruction class a bus observation is attributed to.
type Class uint8

const (
	ClassPrep     Class = iota // LPREP0, LPREP+
	ClassMeas                  // LMEASZ, LMEASX
	ClassPauli                 // LX, LZ
	ClassClifford              // LH, LS
	ClassT                     // LT
	ClassBraid                 // LCNOT and the mask instructions it expands to
	ClassSync                  // LSYNC tokens on the sync bus
	ClassCache                 // LCLOAD bodies and LCRUN trigger tokens
	ClassSyndrome              // escalated defects on the syndrome bus
	ClassReplay                // cache-replayed body instructions (zero bus bytes)
	NumClasses
)

var classNames = [NumClasses]string{
	"prep", "meas", "pauli", "clifford", "t", "braid", "sync", "cache", "syndrome", "replay",
}

// String returns the class's wire name as used in quest-bw/1 summaries.
func (c Class) String() string {
	if c >= NumClasses {
		return "invalid"
	}
	return classNames[c]
}

// ClassOf maps a logical opcode to its bandwidth class — the attribution the
// master's dispatch site applies to every instruction it puts on a bus.
func ClassOf(op isa.LogicalOpcode) Class {
	switch op {
	case isa.LPrep0, isa.LPrepPlus:
		return ClassPrep
	case isa.LMeasZ, isa.LMeasX:
		return ClassMeas
	case isa.LX, isa.LZ:
		return ClassPauli
	case isa.LH, isa.LS:
		return ClassClifford
	case isa.LT:
		return ClassT
	case isa.LCNOT, isa.LMaskGrow, isa.LMaskShrink, isa.LMaskMove:
		return ClassBraid
	case isa.LSyncToken:
		return ClassSync
	case isa.LCacheLoad, isa.LCacheRun:
		return ClassCache
	}
	// Opcodes outside the known set still occupy bus bytes; braid is the
	// catch-all mask/control class.
	return ClassBraid
}

// winAcc is one window's per-bus accumulation.
type winAcc struct {
	instr [NumBuses]uint64
	bytes [NumBuses]uint64
}

// total returns the window's bus bytes (replay contributes zero by
// construction, so this is exactly the traffic that crossed a wire).
func (w *winAcc) total() uint64 {
	var t uint64
	for _, b := range w.bytes {
		t += b
	}
	return t
}

// Recorder accumulates windowed per-bus traffic and per-class totals. The
// zero-value is not usable; build one with New (or NewShard from a parent).
//
// Concurrency: Observe/Merge/Totals/Summary/WriteJSONL are mutex-guarded so
// a live telemetry sampler may read totals while a single-machine run (e.g.
// questsim) records into the same recorder. The Monte-Carlo engine avoids
// the contention entirely: each trial records into its own shard, merged in
// trial order after the pool drains.
type Recorder struct {
	mu         sync.Mutex
	window     int
	wins       []winAcc
	classInstr [NumClasses]uint64
	classBytes [NumClasses]uint64
	cycles     int // highest observed cycle + 1
}

// New builds a recorder bucketing cycles into windowCycles-wide windows
// (DefaultWindow when windowCycles <= 0).
func New(windowCycles int) *Recorder {
	if windowCycles <= 0 {
		windowCycles = DefaultWindow
	}
	return &Recorder{window: windowCycles}
}

// WindowCycles returns the recorder's window width in machine cycles
// (0 on a nil recorder).
func (r *Recorder) WindowCycles() int {
	if r == nil {
		return 0
	}
	return r.window
}

// Observe folds one bus event into the recorder: instrs instructions and
// byteCount bytes seen on bus at the given machine cycle, attributed to
// class. Negative cycles and out-of-range buses/classes are ignored rather
// than panicking — instrumentation must never take down the machine it
// watches. No-op on a nil recorder.
func (r *Recorder) Observe(cycle int, bus Bus, class Class, instrs, byteCount uint64) {
	if r == nil {
		return
	}
	if cycle < 0 || bus >= NumBuses || class >= NumClasses {
		return
	}
	r.mu.Lock()
	idx := cycle / r.window
	for len(r.wins) <= idx {
		r.wins = append(r.wins, winAcc{})
	}
	w := &r.wins[idx]
	w.instr[bus] += instrs
	w.bytes[bus] += byteCount
	r.classInstr[class] += instrs
	r.classBytes[class] += byteCount
	if cycle+1 > r.cycles {
		r.cycles = cycle + 1
	}
	r.mu.Unlock()
}

// NewShard returns a fresh recorder with the same window width, for one
// trial's private accumulation; merge it back with Merge. Returns nil on a
// nil recorder so the off path propagates without branches.
func (r *Recorder) NewShard() *Recorder {
	if r == nil {
		return nil
	}
	return New(r.window)
}

// Merge folds a shard's windows and class totals into r. Merging is
// addition, so the result is independent of merge order — but the engine
// still merges in trial order, matching the heat/ledger reduction
// discipline. No-op when either side is nil.
func (r *Recorder) Merge(shard *Recorder) {
	if r == nil || shard == nil {
		return
	}
	if shard.window != r.window {
		panic("bwprofile: merging recorders with different window widths")
	}
	r.mu.Lock()
	for len(r.wins) < len(shard.wins) {
		r.wins = append(r.wins, winAcc{})
	}
	for i := range shard.wins {
		for b := Bus(0); b < NumBuses; b++ {
			r.wins[i].instr[b] += shard.wins[i].instr[b]
			r.wins[i].bytes[b] += shard.wins[i].bytes[b]
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		r.classInstr[c] += shard.classInstr[c]
		r.classBytes[c] += shard.classBytes[c]
	}
	if shard.cycles > r.cycles {
		r.cycles = shard.cycles
	}
	r.mu.Unlock()
}

// BusTotal is one bus's run-cumulative traffic.
type BusTotal struct {
	Bus    Bus
	Instrs uint64
	Bytes  uint64
}

// Totals returns the run-cumulative per-bus traffic in bus order — what the
// events sampler surfaces as live per-bus rates. Zero on a nil recorder.
func (r *Recorder) Totals() [NumBuses]BusTotal {
	var out [NumBuses]BusTotal
	for b := Bus(0); b < NumBuses; b++ {
		out[b].Bus = b
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for _, w := range r.wins {
		for b := Bus(0); b < NumBuses; b++ {
			out[b].Instrs += w.instr[b]
			out[b].Bytes += w.bytes[b]
		}
	}
	r.mu.Unlock()
	return out
}

// WindowBytes returns each window's total bus bytes in window order — the
// waveform the chart renderer draws. Nil on a nil or empty recorder.
func (r *Recorder) WindowBytes() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.wins) == 0 {
		return nil
	}
	out := make([]uint64, len(r.wins))
	for i := range r.wins {
		out[i] = r.wins[i].total()
	}
	return out
}

// ClassTotal is one instruction class's run-cumulative traffic.
type ClassTotal struct {
	Instrs uint64 `json:"instrs"`
	Bytes  uint64 `json:"bytes"`
}

// Summary is the reduced view of a profile: the peak window, the sustained
// (mean) window load, tail percentiles, burstiness = peak/mean, and the
// per-class totals. All fields derive deterministically from the windows.
type Summary struct {
	WindowCycles int `json:"window_cycles"`
	Windows      int `json:"windows"`
	Cycles       int `json:"cycles"`
	// TotalInstrs counts instructions observed on any bus, including the
	// zero-byte cache replays; TotalBytes is the traffic that actually
	// crossed a wire.
	TotalInstrs uint64 `json:"total_instrs"`
	TotalBytes  uint64 `json:"total_bytes"`
	// PeakWindow is the index of the heaviest window (first on ties);
	// PeakBytes its bus-byte load.
	PeakWindow int    `json:"peak_window"`
	PeakBytes  uint64 `json:"peak_bytes"`
	// SustainedBytes is the mean window load; Burstiness is peak/mean
	// (0 when nothing was observed).
	SustainedBytes float64 `json:"sustained_bytes"`
	P50Bytes       uint64  `json:"p50_bytes"`
	P99Bytes       uint64  `json:"p99_bytes"`
	Burstiness     float64 `json:"burstiness"`
	// Classes holds the non-zero instruction classes by wire name.
	Classes map[string]ClassTotal `json:"classes,omitempty"`
}

// Summary reduces the recorder's windows. Zero value on a nil recorder.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byteTotals := make([]uint64, len(r.wins))
	var instrs uint64
	for i := range r.wins {
		byteTotals[i] = r.wins[i].total()
		for _, n := range r.wins[i].instr {
			instrs += n
		}
	}
	s := summarize(r.window, r.cycles, instrs, byteTotals)
	s.Classes = make(map[string]ClassTotal)
	for c := Class(0); c < NumClasses; c++ {
		if r.classInstr[c] == 0 && r.classBytes[c] == 0 {
			continue
		}
		s.Classes[c.String()] = ClassTotal{Instrs: r.classInstr[c], Bytes: r.classBytes[c]}
	}
	if len(s.Classes) == 0 {
		s.Classes = nil
	}
	return s
}

// summarize computes the window statistics shared by Summary and Validate —
// one code path, so a validator recomputing a summary from the window
// records reproduces the writer's floats exactly.
func summarize(window, cycles int, instrs uint64, byteTotals []uint64) Summary {
	s := Summary{
		WindowCycles: window,
		Windows:      len(byteTotals),
		Cycles:       cycles,
		TotalInstrs:  instrs,
	}
	for i, b := range byteTotals {
		s.TotalBytes += b
		if b > s.PeakBytes {
			s.PeakBytes, s.PeakWindow = b, i
		}
	}
	if len(byteTotals) == 0 {
		return s
	}
	s.SustainedBytes = float64(s.TotalBytes) / float64(len(byteTotals))
	s.P50Bytes = percentile(byteTotals, 50)
	s.P99Bytes = percentile(byteTotals, 99)
	if s.SustainedBytes > 0 {
		s.Burstiness = float64(s.PeakBytes) / s.SustainedBytes
	}
	return s
}

// percentile is the nearest-rank percentile of vals (q in (0, 100]); it
// copies and sorts, leaving vals untouched.
func percentile(vals []uint64, q int) uint64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), vals...)
	// Insertion sort: window counts are small and this avoids pulling the
	// sort package's interface machinery into the hot-summary path.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	rank := (q*len(sorted) + 99) / 100 // ceil(q/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
