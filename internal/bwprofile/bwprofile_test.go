package bwprofile

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"quest/internal/isa"
)

// TestObserveNilAllocs pins the -bw-off contract: a nil recorder's Observe
// is a zero-allocation no-op, so the dispatch and replay hot paths cost
// nothing when profiling is off (the benchsuite bw-off-observe case tracks
// the same path in ns/op).
func TestObserveNilAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe(42, BusLogical, ClassPauli, 1, 2)
	})
	if allocs != 0 {
		t.Errorf("nil Observe allocates %.1f per call, want 0", allocs)
	}
}

// TestNilGatedMethods pins that every method is safe on a nil recorder.
func TestNilGatedMethods(t *testing.T) {
	var r *Recorder
	r.Observe(0, BusLogical, ClassPauli, 1, 2)
	if got := r.NewShard(); got != nil {
		t.Errorf("nil NewShard = %v, want nil", got)
	}
	r.Merge(New(8))
	New(8).Merge(r)
	if got := r.WindowCycles(); got != 0 {
		t.Errorf("nil WindowCycles = %d, want 0", got)
	}
	if got := r.WindowBytes(); got != nil {
		t.Errorf("nil WindowBytes = %v, want nil", got)
	}
	if got := r.Summary(); !reflect.DeepEqual(got, Summary{}) {
		t.Errorf("nil Summary = %+v, want zero", got)
	}
	totals := r.Totals()
	for b := Bus(0); b < NumBuses; b++ {
		if totals[b].Instrs != 0 || totals[b].Bytes != 0 {
			t.Errorf("nil Totals[%s] = %+v, want zero", b, totals[b])
		}
	}
}

// TestObserveWindowing pins that observations land in the window their
// cycle falls in and that out-of-range inputs are dropped, not panicking.
func TestObserveWindowing(t *testing.T) {
	r := New(10)
	r.Observe(0, BusLogical, ClassPrep, 1, 2)
	r.Observe(9, BusLogical, ClassPauli, 1, 2)      // still window 0
	r.Observe(10, BusSync, ClassSync, 1, 2)         // window 1
	r.Observe(25, BusSyndrome, ClassSyndrome, 3, 3) // window 2
	r.Observe(-1, BusLogical, ClassPauli, 9, 9)     // dropped
	r.Observe(5, NumBuses, ClassPauli, 9, 9)        // dropped
	r.Observe(5, BusLogical, NumClasses, 9, 9)      // dropped

	want := []uint64{4, 2, 3}
	if got := r.WindowBytes(); !reflect.DeepEqual(got, want) {
		t.Errorf("WindowBytes = %v, want %v", got, want)
	}
	s := r.Summary()
	if s.Cycles != 26 {
		t.Errorf("Cycles = %d, want 26", s.Cycles)
	}
	if s.TotalInstrs != 6 || s.TotalBytes != 9 {
		t.Errorf("totals = (%d, %d), want (6, 9)", s.TotalInstrs, s.TotalBytes)
	}
}

// TestMergeOrderIndependent pins the reduction law shard merging relies on:
// merging is addition, so any merge order yields the same recorder state.
func TestMergeOrderIndependent(t *testing.T) {
	mk := func() (*Recorder, *Recorder, *Recorder) {
		parent := New(4)
		a, b := parent.NewShard(), parent.NewShard()
		a.Observe(0, BusLogical, ClassPrep, 1, 2)
		a.Observe(7, BusCache, ClassCache, 5, 10)
		b.Observe(3, BusSync, ClassSync, 1, 2)
		b.Observe(12, BusReplay, ClassReplay, 8, 0)
		return parent, a, b
	}
	p1, a1, b1 := mk()
	p1.Merge(a1)
	p1.Merge(b1)
	p2, a2, b2 := mk()
	p2.Merge(b2)
	p2.Merge(a2)

	var buf1, buf2 bytes.Buffer
	if err := p1.WriteJSONL(&buf1, "t", nil); err != nil {
		t.Fatal(err)
	}
	if err := p2.WriteJSONL(&buf2, "t", nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("merge order changed the artifact bytes:\n a,b: %s\n b,a: %s", buf1.Bytes(), buf2.Bytes())
	}
}

// TestMergeWindowMismatchPanics pins that mismatched window widths are a
// programming error, not silent misaligned addition.
func TestMergeWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging different window widths did not panic")
		}
	}()
	New(4).Merge(New(8))
}

// TestClassOfCoversISA walks every logical opcode through ClassOf and pins
// the attribution table.
func TestClassOfCoversISA(t *testing.T) {
	want := map[isa.LogicalOpcode]Class{
		isa.LPrep0: ClassPrep, isa.LPrepPlus: ClassPrep,
		isa.LMeasZ: ClassMeas, isa.LMeasX: ClassMeas,
		isa.LX: ClassPauli, isa.LZ: ClassPauli,
		isa.LH: ClassClifford, isa.LS: ClassClifford,
		isa.LT:    ClassT,
		isa.LCNOT: ClassBraid, isa.LMaskGrow: ClassBraid, isa.LMaskShrink: ClassBraid, isa.LMaskMove: ClassBraid,
		isa.LSyncToken: ClassSync,
		isa.LCacheLoad: ClassCache, isa.LCacheRun: ClassCache,
	}
	for op, cls := range want {
		if got := ClassOf(op); got != cls {
			t.Errorf("ClassOf(%v) = %s, want %s", op, got, cls)
		}
	}
}

// TestSummaryStatistics pins the reduction math on a hand-computable
// profile: peak, sustained mean, nearest-rank percentiles, burstiness.
func TestSummaryStatistics(t *testing.T) {
	r := New(1)
	// Window byte loads: 10, 0, 30, 20 → sorted 0, 10, 20, 30.
	r.Observe(0, BusLogical, ClassPauli, 5, 10)
	r.Observe(2, BusLogical, ClassPauli, 15, 30)
	r.Observe(3, BusCache, ClassCache, 10, 20)
	s := r.Summary()
	if s.PeakWindow != 2 || s.PeakBytes != 30 {
		t.Errorf("peak = (%d, %d), want (2, 30)", s.PeakWindow, s.PeakBytes)
	}
	if s.SustainedBytes != 15 {
		t.Errorf("sustained = %v, want 15", s.SustainedBytes)
	}
	if s.P50Bytes != 10 { // nearest-rank: ceil(0.50*4)=2nd of {0,10,20,30}
		t.Errorf("p50 = %d, want 10", s.P50Bytes)
	}
	if s.P99Bytes != 30 { // ceil(0.99*4)=4th
		t.Errorf("p99 = %d, want 30", s.P99Bytes)
	}
	if s.Burstiness != 2 {
		t.Errorf("burstiness = %v, want 2", s.Burstiness)
	}
	wantClasses := map[string]ClassTotal{
		"pauli": {Instrs: 20, Bytes: 40},
		"cache": {Instrs: 10, Bytes: 20},
	}
	if !reflect.DeepEqual(s.Classes, wantClasses) {
		t.Errorf("classes = %+v, want %+v", s.Classes, wantClasses)
	}
}

// TestPercentileNearestRank pins the percentile definition on known inputs.
func TestPercentileNearestRank(t *testing.T) {
	vals := []uint64{50, 10, 40, 20, 30}
	cases := []struct {
		q    int
		want uint64
	}{{50, 30}, {99, 50}, {100, 50}, {1, 10}}
	for _, tc := range cases {
		if got := percentile(vals, tc.q); got != tc.want {
			t.Errorf("percentile(%v, %d) = %d, want %d", vals, tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %d, want 0", got)
	}
	// The input slice must not be reordered by the sort.
	if !reflect.DeepEqual(vals, []uint64{50, 10, 40, 20, 30}) {
		t.Errorf("percentile mutated its input: %v", vals)
	}
}

// TestWriteParseValidateRoundTrip pins the artifact contract end to end:
// a written profile parses back to the same data and validates cleanly.
func TestWriteParseValidateRoundTrip(t *testing.T) {
	r := New(8)
	r.Observe(0, BusLogical, ClassPrep, 1, 2)
	r.Observe(3, BusCache, ClassCache, 4, 8)
	r.Observe(17, BusSync, ClassSync, 1, 2)
	r.Observe(17, BusReplay, ClassReplay, 12, 0)
	r.Observe(20, BusSyndrome, ClassSyndrome, 2, 2)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, "roundtrip", map[string]string{"design": "ram"}); err != nil {
		t.Fatal(err)
	}
	st, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Header.Schema != Schema || st.Header.Experiment != "roundtrip" || st.Header.WindowCycles != 8 {
		t.Errorf("header = %+v", st.Header)
	}
	if len(st.Windows) != 3 {
		t.Fatalf("parsed %d windows, want 3", len(st.Windows))
	}
	if st.Windows[2].SyncBytes != 2 || st.Windows[2].ReplayInstrs != 12 || st.Windows[2].TotalBytes != 4 {
		t.Errorf("window 2 = %+v", st.Windows[2])
	}
	rep, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.Experiment != "roundtrip" || rep.Design != "ram" {
		t.Errorf("report = %+v", rep)
	}
	if !reflect.DeepEqual(rep.Summary, r.Summary()) {
		t.Errorf("report summary %+v != recorder summary %+v", rep.Summary, r.Summary())
	}
}

// TestValidateRejectsCorruption walks the validator through the corruption
// classes bwreport -check must catch.
func TestValidateRejectsCorruption(t *testing.T) {
	r := New(8)
	r.Observe(0, BusLogical, ClassPauli, 1, 2)
	r.Observe(9, BusCache, ClassCache, 2, 4)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, "corrupt", nil); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")

	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", "", "empty"},
		{"no header", lines[1] + "\n", "before header"},
		{"truncated (no summary)", lines[0] + "\n" + lines[1] + "\n", "truncated"},
		{"duplicate header", lines[0] + "\n" + good, "duplicate header"},
		{"window gap", lines[0] + "\n" + lines[2] + "\n" + lines[3] + "\n", "contiguous"},
		{"bad schema", strings.Replace(good, Schema, "quest-bw/999", 1), "schema"},
		{"inconsistent total", strings.Replace(good, `"total_bytes":2`, `"total_bytes":3`, 1), "buses sum"},
		{"summary drift", strings.Replace(good, `"peak_bytes":4`, `"peak_bytes":5`, 1), "does not reproduce"},
		{"unknown class", strings.Replace(good, `"pauli"`, `"warp"`, 1), "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate([]byte(tc.data))
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := Validate([]byte(good)); err != nil {
		t.Fatalf("control: pristine file rejected: %v", err)
	}
}

// TestBusAndClassNames pins the wire vocabulary other layers (events
// snapshots, bwreport tables) key on.
func TestBusAndClassNames(t *testing.T) {
	if got := fmt.Sprint(BusLogical, BusSync, BusCache, BusSyndrome, BusReplay); got != "logical sync cache syndrome replay" {
		t.Errorf("bus names = %q", got)
	}
	if NumBuses.String() != "invalid" || NumClasses.String() != "invalid" {
		t.Error("out-of-range names must render as invalid")
	}
	for c := Class(0); c < NumClasses; c++ {
		if !knownClass(c.String()) {
			t.Errorf("class %d name %q not in knownClass", c, c)
		}
	}
}
