package bwprofile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// Record kinds, carried in every quest-bw/1 line's "record" field.
const (
	KindHeader  = "header"
	KindWindow  = "window"
	KindSummary = "summary"
)

// Header is the first line of a quest-bw/1 file: schema plus run provenance.
// Like the ledger header — and unlike the events header — it deliberately
// carries no wall-clock, PID, or worker-count fields: the same run at any
// worker count must produce byte-identical profiles (CI's bw-smoke cmp).
type Header struct {
	Record       string            `json:"record"`
	Schema       string            `json:"schema"`
	Experiment   string            `json:"experiment"`
	GoVersion    string            `json:"go_version"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	Host         string            `json:"host"`
	WindowCycles int               `json:"window_cycles"`
	Config       map[string]string `json:"config,omitempty"`
}

// WindowRecord is one N-cycle window's per-bus traffic. Windows are emitted
// contiguously from index 0, quiet windows included, so the records *are*
// the waveform. TotalBytes sums the four global buses; replay instructions
// never cross a wire and so contribute no byte field.
type WindowRecord struct {
	Record         string `json:"record"`
	Index          int    `json:"index"`
	LogicalInstrs  uint64 `json:"logical_instrs,omitempty"`
	LogicalBytes   uint64 `json:"logical_bytes,omitempty"`
	SyncInstrs     uint64 `json:"sync_instrs,omitempty"`
	SyncBytes      uint64 `json:"sync_bytes,omitempty"`
	CacheInstrs    uint64 `json:"cache_instrs,omitempty"`
	CacheBytes     uint64 `json:"cache_bytes,omitempty"`
	SyndromeInstrs uint64 `json:"syndrome_instrs,omitempty"`
	SyndromeBytes  uint64 `json:"syndrome_bytes,omitempty"`
	ReplayInstrs   uint64 `json:"replay_instrs,omitempty"`
	TotalBytes     uint64 `json:"total_bytes"`
}

// busBytes returns the record's per-bus byte counts in Bus order.
func (w WindowRecord) busBytes() [NumBuses]uint64 {
	return [NumBuses]uint64{w.LogicalBytes, w.SyncBytes, w.CacheBytes, w.SyndromeBytes, 0}
}

// busInstrs returns the record's per-bus instruction counts in Bus order.
func (w WindowRecord) busInstrs() [NumBuses]uint64 {
	return [NumBuses]uint64{w.LogicalInstrs, w.SyncInstrs, w.CacheInstrs, w.SyndromeInstrs, w.ReplayInstrs}
}

// SummaryRecord is the final line: the Summary reduction stamped with its
// record kind.
type SummaryRecord struct {
	Record string `json:"record"`
	Summary
}

// WriteJSONL writes the complete quest-bw/1 artifact: provenance header,
// one record per window (contiguous from 0), and the summary reduction.
// Everything is marshalled with encoding/json (map keys sorted), so the
// bytes are a pure function of the recorded traffic and provenance.
func (r *Recorder) WriteJSONL(w io.Writer, experiment string, config map[string]string) error {
	if r == nil {
		return fmt.Errorf("bwprofile: WriteJSONL on a nil recorder")
	}
	host, _ := os.Hostname()
	h := Header{
		Record:       KindHeader,
		Schema:       Schema,
		Experiment:   experiment,
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		Host:         host,
		WindowCycles: r.WindowCycles(),
		Config:       config,
	}
	if err := writeLine(w, h); err != nil {
		return err
	}
	r.mu.Lock()
	wins := append([]winAcc(nil), r.wins...)
	r.mu.Unlock()
	for i := range wins {
		rec := WindowRecord{
			Record:         KindWindow,
			Index:          i,
			LogicalInstrs:  wins[i].instr[BusLogical],
			LogicalBytes:   wins[i].bytes[BusLogical],
			SyncInstrs:     wins[i].instr[BusSync],
			SyncBytes:      wins[i].bytes[BusSync],
			CacheInstrs:    wins[i].instr[BusCache],
			CacheBytes:     wins[i].bytes[BusCache],
			SyndromeInstrs: wins[i].instr[BusSyndrome],
			SyndromeBytes:  wins[i].bytes[BusSyndrome],
			ReplayInstrs:   wins[i].instr[BusReplay],
			TotalBytes:     wins[i].total(),
		}
		if err := writeLine(w, rec); err != nil {
			return err
		}
	}
	return writeLine(w, SummaryRecord{Record: KindSummary, Summary: r.Summary()})
}

func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("bwprofile: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("bwprofile: %w", err)
	}
	return nil
}

// Stream is a parsed quest-bw/1 file.
type Stream struct {
	Header  Header
	Windows []WindowRecord
	Summary SummaryRecord
	// HasSummary reports whether the summary line was present — a file
	// without one is truncated.
	HasSummary bool
}

// ParseStream decodes a quest-bw/1 JSONL file: one header line first, then
// window lines, then exactly one summary line. Unlike the live event stream
// there is no torn-line tolerance: the profile is written once at run end,
// so a malformed line is corruption, not a mid-write tail.
func ParseStream(data []byte) (Stream, error) {
	var st Stream
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return st, fmt.Errorf("bwprofile: line %d: %w", lineNo, err)
		}
		switch kind.Record {
		case KindHeader:
			if st.Header.Record != "" {
				return st, fmt.Errorf("bwprofile: line %d: duplicate header", lineNo)
			}
			if len(st.Windows) > 0 || st.HasSummary {
				return st, fmt.Errorf("bwprofile: line %d: header after records", lineNo)
			}
			if err := json.Unmarshal(line, &st.Header); err != nil {
				return st, fmt.Errorf("bwprofile: line %d: header: %w", lineNo, err)
			}
		case KindWindow:
			if st.Header.Record == "" {
				return st, fmt.Errorf("bwprofile: line %d: window before header", lineNo)
			}
			if st.HasSummary {
				return st, fmt.Errorf("bwprofile: line %d: window after summary", lineNo)
			}
			var w WindowRecord
			if err := json.Unmarshal(line, &w); err != nil {
				return st, fmt.Errorf("bwprofile: line %d: window: %w", lineNo, err)
			}
			st.Windows = append(st.Windows, w)
		case KindSummary:
			if st.Header.Record == "" {
				return st, fmt.Errorf("bwprofile: line %d: summary before header", lineNo)
			}
			if st.HasSummary {
				return st, fmt.Errorf("bwprofile: line %d: duplicate summary", lineNo)
			}
			if err := json.Unmarshal(line, &st.Summary); err != nil {
				return st, fmt.Errorf("bwprofile: line %d: summary: %w", lineNo, err)
			}
			st.HasSummary = true
		default:
			return st, fmt.Errorf("bwprofile: line %d: unknown record kind %q", lineNo, kind.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Header.Record == "" {
		return st, fmt.Errorf("bwprofile: file is empty")
	}
	return st, nil
}

// ValidateReport summarizes a validated quest-bw/1 file for tools/bwreport.
type ValidateReport struct {
	Experiment string
	// Design is the µcode design from the header config ("" when the run
	// was not design-labelled) — the comparison key bwreport tables use.
	Design  string
	Summary Summary
}

// Validate parses and checks a quest-bw/1 file: correct schema, one header
// first, windows contiguous from index 0 with self-consistent byte totals,
// and a summary whose every statistic reproduces from the window records —
// recomputed through the same summarize code path the writer used, so even
// the float fields must match exactly. CI's bw-smoke job runs it (via
// bwreport -check) over freshly profiled runs.
func Validate(data []byte) (ValidateReport, error) {
	var rep ValidateReport
	st, err := ParseStream(data)
	if err != nil {
		return rep, err
	}
	if st.Header.Schema != Schema {
		return rep, fmt.Errorf("bwprofile: schema %q, want %q", st.Header.Schema, Schema)
	}
	if st.Header.Experiment == "" {
		return rep, fmt.Errorf("bwprofile: header missing experiment name")
	}
	if st.Header.WindowCycles < 1 {
		return rep, fmt.Errorf("bwprofile: header window_cycles %d, want >= 1", st.Header.WindowCycles)
	}
	if !st.HasSummary {
		return rep, fmt.Errorf("bwprofile: missing summary record — file is truncated")
	}
	byteTotals := make([]uint64, len(st.Windows))
	var instrs uint64
	var classBytes, classInstrs uint64
	for i, w := range st.Windows {
		if w.Index != i {
			return rep, fmt.Errorf("bwprofile: window %d has index %d — windows must be contiguous from 0", i, w.Index)
		}
		var sum uint64
		for _, b := range w.busBytes() {
			sum += b
		}
		if sum != w.TotalBytes {
			return rep, fmt.Errorf("bwprofile: window %d total_bytes %d, but buses sum to %d", i, w.TotalBytes, sum)
		}
		byteTotals[i] = w.TotalBytes
		for _, n := range w.busInstrs() {
			instrs += n
		}
	}
	s := st.Summary.Summary
	want := summarize(st.Header.WindowCycles, s.Cycles, instrs, byteTotals)
	if s.WindowCycles != want.WindowCycles || s.Windows != want.Windows ||
		s.TotalInstrs != want.TotalInstrs || s.TotalBytes != want.TotalBytes ||
		s.PeakWindow != want.PeakWindow || s.PeakBytes != want.PeakBytes ||
		s.SustainedBytes != want.SustainedBytes || s.P50Bytes != want.P50Bytes ||
		s.P99Bytes != want.P99Bytes || s.Burstiness != want.Burstiness {
		return rep, fmt.Errorf("bwprofile: summary does not reproduce from the window records:\n  file:       %+v\n  recomputed: %+v", withoutClasses(s), withoutClasses(want))
	}
	if s.Cycles < 0 || (s.Windows == 0 && s.Cycles != 0) ||
		(s.Windows > 0 && (s.Cycles < (s.Windows-1)*s.WindowCycles+1 || s.Cycles > s.Windows*s.WindowCycles)) {
		return rep, fmt.Errorf("bwprofile: summary cycles %d inconsistent with %d window(s) of %d cycle(s)", s.Cycles, s.Windows, s.WindowCycles)
	}
	for name, ct := range s.Classes { //quest:allow(detrange) accumulation over a set is order-independent
		if !knownClass(name) {
			return rep, fmt.Errorf("bwprofile: summary names unknown class %q", name)
		}
		classInstrs += ct.Instrs
		classBytes += ct.Bytes
	}
	if classInstrs != s.TotalInstrs || classBytes != s.TotalBytes {
		return rep, fmt.Errorf("bwprofile: class totals (%d instrs, %d bytes) do not sum to the run totals (%d instrs, %d bytes)",
			classInstrs, classBytes, s.TotalInstrs, s.TotalBytes)
	}
	rep.Experiment = st.Header.Experiment
	rep.Design = st.Header.Config["design"]
	rep.Summary = s
	return rep, nil
}

// withoutClasses strips the class map so mismatch diagnostics stay on one
// comparable line per side.
func withoutClasses(s Summary) Summary {
	s.Classes = nil
	return s
}

func knownClass(name string) bool {
	for _, n := range classNames {
		if n == name {
			return true
		}
	}
	return false
}
