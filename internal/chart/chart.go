// Package chart renders horizontal bar charts in plain text, with optional
// log₁₀ scaling — the figure-shaped view of the evaluation data. The paper's
// evaluation figures are log-scale bar charts; questbench uses this package
// to print them next to the raw tables.
package chart

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Options controls rendering.
type Options struct {
	// Width is the maximum bar width in runes (default 50).
	Width int
	// Log scales bars by log₁₀ (all values must be ≥ 1).
	Log bool
	// Unit is appended to the printed values (e.g. "x", " B/s").
	Unit string
}

// Render draws the chart. Bars are drawn with '█' and annotated with their
// numeric value (log annotations as 10^k).
func Render(bars []Bar, opts Options) (string, error) {
	if len(bars) == 0 {
		return "", fmt.Errorf("chart: no bars")
	}
	width := opts.Width
	if width <= 0 {
		width = 50
	}
	// Label width counts runes, not bytes: the evaluation's own labels use
	// multi-byte spellings ("µop", "log₁₀"), and byte-width padding would
	// misalign every bar after them.
	labelW := 0
	maxV := math.Inf(-1)
	for _, b := range bars {
		if n := utf8.RuneCountInString(b.Label); n > labelW {
			labelW = n
		}
		v := b.Value
		if opts.Log {
			if v < 1 {
				return "", fmt.Errorf("chart: log scale requires values ≥ 1, got %v (%s)", v, b.Label)
			}
			v = math.Log10(v)
		} else if v < 0 {
			return "", fmt.Errorf("chart: negative value %v (%s)", b.Value, b.Label)
		}
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		v := b.Value
		if opts.Log {
			v = math.Log10(v)
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if n == 0 && v > 0 {
			n = 1
		}
		annot := fmt.Sprintf("%.3g%s", b.Value, opts.Unit)
		if opts.Log {
			annot = fmt.Sprintf("10^%.1f%s", v, opts.Unit)
		}
		pad := strings.Repeat(" ", labelW-utf8.RuneCountInString(b.Label))
		fmt.Fprintf(&sb, "%s%s |%s%s %s\n",
			b.Label, pad, strings.Repeat("█", n), strings.Repeat(" ", width-n), annot)
	}
	return sb.String(), nil
}

// MustRender panics on error (for callers with statically valid data).
func MustRender(bars []Bar, opts Options) string {
	s, err := Render(bars, opts)
	if err != nil {
		panic(err)
	}
	return s
}
