package chart

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderLinear(t *testing.T) {
	out, err := Render([]Bar{{"a", 10}, {"bb", 5}, {"c", 0}}, Options{Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 10)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 5)) {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Errorf("zero bar drew blocks: %q", lines[2])
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[0], "a  |") || !strings.HasPrefix(lines[1], "bb |") {
		t.Errorf("labels misaligned:\n%s", out)
	}
}

func TestRenderLog(t *testing.T) {
	out, err := Render([]Bar{{"small", 1e2}, {"big", 1e8}}, Options{Width: 40, Log: true, Unit: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10^2.0x") || !strings.Contains(out, "10^8.0x") {
		t.Errorf("log annotations missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	smallBlocks := strings.Count(lines[0], "█")
	bigBlocks := strings.Count(lines[1], "█")
	if bigBlocks != 40 || smallBlocks != 10 {
		t.Errorf("log proportions: small=%d big=%d, want 10/40", smallBlocks, bigBlocks)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(nil, Options{}); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := Render([]Bar{{"x", 0.5}}, Options{Log: true}); err == nil {
		t.Error("sub-1 log value accepted")
	}
	if _, err := Render([]Bar{{"x", -3}}, Options{}); err == nil {
		t.Error("negative value accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRender did not panic")
		}
	}()
	MustRender(nil, Options{})
}

func TestPropertyRenderNeverOverflows(t *testing.T) {
	f := func(vals []uint32, widthRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		width := 1 + int(widthRaw)%120
		bars := make([]Bar, len(vals))
		for i, v := range vals {
			bars[i] = Bar{Label: "b", Value: float64(v)}
		}
		out, err := Render(bars, Options{Width: width})
		if err != nil {
			return false
		}
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			if n := strings.Count(line, "█"); n > width {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRenderAlignsMultibyteLabels is the regression test for the rune-width
// bug: labels like "µop" and "log₁₀" are longer in bytes than runes, and
// byte-based padding pushed their bars out of column.
func TestRenderAlignsMultibyteLabels(t *testing.T) {
	out, err := Render([]Bar{
		{"µop", 4}, {"log₁₀", 8}, {"ascii", 2},
	}, Options{Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	col := -1
	for _, line := range lines {
		at := strings.IndexRune(line, '|')
		if at < 0 {
			t.Fatalf("no bar in %q", line)
		}
		// Column position in runes, so the check matches what a terminal shows.
		runeAt := len([]rune(line[:at]))
		if col == -1 {
			col = runeAt
		} else if runeAt != col {
			t.Errorf("bar column %d != %d:\n%s", runeAt, col, out)
		}
	}
}
