package chart

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// heatRamp is the shading ramp for Heatmap cells, darkest last. Index 0 is
// reserved for exact zero so "never happened" is visually distinct from
// "rarely happened".
var heatRamp = []rune{'·', '░', '▒', '▓', '█'}

// HeatmapOptions controls grid rendering.
type HeatmapOptions struct {
	// Title is printed above the grid when non-empty.
	Title string
	// RowLabel / ColLabel name the axes (default "r" / "c").
	RowLabel, ColLabel string
	// Legend appends the ramp → count-range key below the grid (default on
	// via Heatmap; set by value here).
	Legend bool
}

// Heatmap renders a rows×cols count grid as an ASCII shading grid: zero
// cells print '·', non-zero cells print a ramp rune proportional to
// count/max. Output is a pure function of the grid values, so it is as
// deterministic as the counts themselves.
func Heatmap(grid [][]int64, opts HeatmapOptions) (string, error) {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return "", fmt.Errorf("chart: empty heatmap grid")
	}
	cols := len(grid[0])
	var max int64
	for r, row := range grid {
		if len(row) != cols {
			return "", fmt.Errorf("chart: ragged heatmap grid (row %d has %d cols, want %d)", r, len(row), cols)
		}
		for _, v := range row {
			if v < 0 {
				return "", fmt.Errorf("chart: negative heatmap count %d", v)
			}
			if v > max {
				max = v
			}
		}
	}
	rowLabel := opts.RowLabel
	if rowLabel == "" {
		rowLabel = "r"
	}
	colLabel := opts.ColLabel
	if colLabel == "" {
		colLabel = "c"
	}
	// Row labels are right-aligned in a gutter sized for the largest index.
	gutter := len(fmt.Sprintf("%s%d", rowLabel, len(grid)-1))
	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	// Column header marks every 5th column.
	fmt.Fprintf(&sb, "%s  ", strings.Repeat(" ", gutter))
	for c := 0; c < cols; c++ {
		if c%5 == 0 {
			mark := fmt.Sprintf("%d", c)
			sb.WriteString(mark)
			c += utf8.RuneCountInString(mark) - 1
		} else {
			sb.WriteByte(' ')
		}
	}
	fmt.Fprintf(&sb, "  %s\n", colLabel)
	for r, row := range grid {
		label := fmt.Sprintf("%s%d", rowLabel, r)
		fmt.Fprintf(&sb, "%s%s |", strings.Repeat(" ", gutter-len(label)), label)
		for _, v := range row {
			sb.WriteRune(heatCell(v, max))
		}
		sb.WriteString("|\n")
	}
	if opts.Legend {
		fmt.Fprintf(&sb, "%s  %c=0", strings.Repeat(" ", gutter), heatRamp[0])
		steps := len(heatRamp) - 1
		for i := 1; i <= steps; i++ {
			lo := (max*int64(i-1))/int64(steps) + 1
			hi := (max * int64(i)) / int64(steps)
			if hi < lo {
				hi = lo
			}
			fmt.Fprintf(&sb, "  %c=%d–%d", heatRamp[i], lo, hi)
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// heatCell picks the ramp rune for count v against the grid maximum.
func heatCell(v, max int64) rune {
	if v == 0 || max == 0 {
		return heatRamp[0]
	}
	steps := int64(len(heatRamp) - 1)
	idx := (v*steps + max - 1) / max // ceil(v/max * steps), so any v>0 shades
	if idx < 1 {
		idx = 1
	}
	if idx > steps {
		idx = steps
	}
	return heatRamp[idx]
}

// MustHeatmap panics on error (for callers with statically valid grids).
func MustHeatmap(grid [][]int64, opts HeatmapOptions) string {
	s, err := Heatmap(grid, opts)
	if err != nil {
		panic(err)
	}
	return s
}
