package chart

import (
	"strings"
	"testing"
)

func TestHeatmapRendersRampAndZeros(t *testing.T) {
	grid := [][]int64{
		{0, 1, 25},
		{50, 100, 0},
	}
	out, err := Heatmap(grid, HeatmapOptions{Title: "defects", Legend: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "defects\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, 2 rows, legend
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	row0, row1 := lines[2], lines[3]
	if !strings.Contains(row0, "r0 |·") {
		t.Errorf("zero cell not rendered as '·': %q", row0)
	}
	if !strings.Contains(row1, "█") {
		t.Errorf("max cell not rendered as '█': %q", row1)
	}
	// Any non-zero count must shade, even 1/100.
	if strings.Count(row0, "·") != 1 {
		t.Errorf("non-zero cells rendered as zero: %q", row0)
	}
	if !strings.Contains(lines[4], "·=0") {
		t.Errorf("legend missing zero key: %q", lines[4])
	}
}

func TestHeatmapDeterministic(t *testing.T) {
	grid := [][]int64{{3, 0, 9}, {1, 7, 2}, {0, 0, 4}}
	a := MustHeatmap(grid, HeatmapOptions{})
	b := MustHeatmap(grid, HeatmapOptions{})
	if a != b {
		t.Error("identical grids rendered differently")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	out, err := Heatmap([][]int64{{0, 0}, {0, 0}}, HeatmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(out, "░▒▓█") {
		t.Errorf("all-zero grid produced shading:\n%s", out)
	}
}

func TestHeatmapErrors(t *testing.T) {
	if _, err := Heatmap(nil, HeatmapOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Heatmap([][]int64{{}}, HeatmapOptions{}); err == nil {
		t.Error("zero-column grid accepted")
	}
	if _, err := Heatmap([][]int64{{1, 2}, {3}}, HeatmapOptions{}); err == nil {
		t.Error("ragged grid accepted")
	}
	if _, err := Heatmap([][]int64{{1, -2}}, HeatmapOptions{}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestHeatmapRowAlignment(t *testing.T) {
	// 11 rows: r9 and r10 must stay column-aligned despite differing label
	// widths.
	grid := make([][]int64, 11)
	for i := range grid {
		grid[i] = []int64{int64(i)}
	}
	out := MustHeatmap(grid, HeatmapOptions{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var bars []int
	for _, ln := range lines[1:] {
		bars = append(bars, strings.IndexByte(ln, '|'))
	}
	for i := 1; i < len(bars); i++ {
		if bars[i] != bars[0] {
			t.Fatalf("row %d misaligned:\n%s", i, out)
		}
	}
}
