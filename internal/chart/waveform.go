package chart

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// waveRamp is the eighth-block ramp for Waveform columns: index k fills k/8
// of a character cell, bottom-up.
var waveRamp = []rune{' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// WaveformOptions controls time-series rendering.
type WaveformOptions struct {
	// Width is the maximum number of columns (default 72). A longer series
	// is downsampled by taking the maximum of each bucket, so peaks survive
	// compression — a bandwidth waveform that smoothed its bursts away
	// would defeat its purpose.
	Width int
	// Height is the number of character rows (default 6); each row resolves
	// eight sub-levels via partial blocks.
	Height int
	// Title is printed above the plot when non-empty.
	Title string
	// Unit is appended to the axis annotations (e.g. " B").
	Unit string
}

// Waveform renders a non-negative time series as a block-character plot:
// columns are samples (left to right), column height is value/max. Output is
// a pure function of the values, so it is as deterministic as the series
// itself.
func Waveform(values []float64, opts WaveformOptions) (string, error) {
	if len(values) == 0 {
		return "", fmt.Errorf("chart: empty waveform")
	}
	width := opts.Width
	if width <= 0 {
		width = 72
	}
	height := opts.Height
	if height <= 0 {
		height = 6
	}
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("chart: waveform value %v at index %d (want finite and ≥ 0)", v, i)
		}
	}
	// Downsample by bucket maximum when the series is wider than the plot.
	cols := values
	if len(values) > width {
		bucketed := make([]float64, width)
		for i, v := range values {
			if b := i * width / len(values); v > bucketed[b] {
				bucketed[b] = v
			}
		}
		cols = bucketed
	}
	var max float64
	for _, v := range cols {
		if v > max {
			max = v
		}
	}
	// Column levels in eighths of a cell; a non-zero value always shows at
	// least one eighth so isolated small windows don't vanish.
	levels := make([]int, len(cols))
	for i, v := range cols {
		if max > 0 {
			levels[i] = int(math.Round(v / max * float64(height*8)))
		}
		if levels[i] == 0 && v > 0 {
			levels[i] = 1
		}
	}
	topLabel := fmt.Sprintf("%.3g%s", max, opts.Unit)
	gutter := utf8.RuneCountInString(topLabel)
	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	for r := height - 1; r >= 0; r-- {
		label := ""
		if r == height-1 {
			label = topLabel
		}
		fmt.Fprintf(&sb, "%*s ┤", gutter, label)
		for _, lv := range levels {
			filled := lv - r*8
			switch {
			case filled >= 8:
				sb.WriteRune('█')
			case filled <= 0:
				sb.WriteRune(' ')
			default:
				sb.WriteRune(waveRamp[filled])
			}
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%*s └%s\n", gutter, "0", strings.Repeat("─", len(cols)))
	fmt.Fprintf(&sb, "%*s  %d sample(s), peak %.3g%s\n", gutter, "", len(values), max, opts.Unit)
	return sb.String(), nil
}
