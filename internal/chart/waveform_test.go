package chart

import (
	"strings"
	"testing"
)

func TestWaveformBasic(t *testing.T) {
	out, err := Waveform([]float64{0, 4, 8, 2}, WaveformOptions{Height: 2, Title: "bw", Unit: " B"})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	if !strings.HasPrefix(out, "bw\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "8 B") {
		t.Errorf("missing max annotation:\n%s", out)
	}
	if !strings.Contains(out, "4 sample(s), peak 8 B") {
		t.Errorf("missing footer:\n%s", out)
	}
	// The peak column must reach the top row as a full block.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "█") {
		t.Errorf("top row has no full block for the peak:\n%s", out)
	}
}

func TestWaveformDeterministic(t *testing.T) {
	vals := []float64{1, 5, 3, 9, 2, 2, 7}
	a, err := Waveform(vals, WaveformOptions{})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	b, err := Waveform(vals, WaveformOptions{})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	if a != b {
		t.Error("same values rendered differently")
	}
}

func TestWaveformDownsampleKeepsPeak(t *testing.T) {
	// 100 samples squeezed into 10 columns: the single spike must survive
	// bucketing (bucket max, not mean).
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 1
	}
	vals[57] = 1000
	out, err := Waveform(vals, WaveformOptions{Width: 10, Height: 3})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	if !strings.Contains(out, "peak 1e+03") {
		t.Errorf("spike lost in downsampling:\n%s", out)
	}
	if !strings.Contains(out, "100 sample(s)") {
		t.Errorf("footer should count original samples:\n%s", out)
	}
}

func TestWaveformNonZeroShowsInk(t *testing.T) {
	// A tiny value next to a huge one still gets at least one eighth-block.
	out, err := Waveform([]float64{1, 1e9}, WaveformOptions{Height: 2})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	lines := strings.Split(out, "\n")
	bottom := lines[1] // height 2, no title: lines[0] top row, lines[1] bottom row
	if !strings.Contains(bottom, "▁") {
		t.Errorf("small value invisible:\n%s", out)
	}
}

func TestWaveformAllZero(t *testing.T) {
	out, err := Waveform([]float64{0, 0, 0}, WaveformOptions{Height: 2})
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	if strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("zero series should draw nothing:\n%s", out)
	}
}

func TestWaveformRejectsBadInput(t *testing.T) {
	if _, err := Waveform(nil, WaveformOptions{}); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Waveform([]float64{1, -2}, WaveformOptions{}); err == nil {
		t.Error("negative value accepted")
	}
}
