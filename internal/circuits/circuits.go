// Package circuits provides canonical quantum algorithm builders at both
// levels the stack speaks:
//
//   - Logical programs (compiler.Program) for instruction-stream and
//     bandwidth accounting on the QuEST machine — Bernstein–Vazirani,
//     Grover iterations, QFT (via host-side rotation synthesis) and GHZ
//     preparation, sized like the kernels inside the paper's workloads.
//   - Physical Clifford circuits executed directly on the stabilizer
//     substrate, where algorithm *correctness* is verifiable: the package's
//     tests run Bernstein–Vazirani, teleportation and GHZ end to end on the
//     tableau and check the answers.
//
// The split mirrors the repository's modelling scope: logical Clifford
// semantics beyond Paulis/prep/measure are instruction-level (DESIGN.md),
// so functional verification happens on the physical simulator.
package circuits

import (
	"fmt"

	"quest/internal/clifford"
	"quest/internal/compiler"
)

// BernsteinVazirani returns the logical program for recovering an n-bit
// secret with one oracle query: H on all, oracle CNOTs from secret bits into
// the target, H on all, measure.
func BernsteinVazirani(secret []bool) *compiler.Program {
	n := len(secret)
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("circuits: secret length %d outside [1,62]", n))
	}
	p := compiler.NewProgram(n + 1)
	target := n
	for q := 0; q < n; q++ {
		p.Prep0(q)
	}
	p.Prep0(target)
	p.X(target)
	p.H(target)
	for q := 0; q < n; q++ {
		p.H(q)
	}
	for q, bit := range secret {
		if bit {
			p.CNOT(q, target)
		}
	}
	for q := 0; q < n; q++ {
		p.H(q)
		p.MeasZ(q)
	}
	return p
}

// GroverIteration appends one Grover iteration (oracle marking the all-ones
// state + diffusion) over the first n qubits; T-heavy because the multi-
// controlled phase decomposes into Clifford+T.
func GroverIteration(p *compiler.Program, n int) *compiler.Program {
	if n < 2 || n > p.NumLogical {
		panic(fmt.Sprintf("circuits: grover width %d invalid", n))
	}
	// Multi-controlled Z via a T-ladder (the standard decomposition costs a
	// handful of T gates per control pair; we emit the Clifford+T skeleton).
	for q := 0; q < n-1; q++ {
		p.T(q)
		p.CNOT(q, n-1)
		p.T(n - 1)
	}
	// Diffusion: H, X, multi-controlled Z, X, H.
	for q := 0; q < n; q++ {
		p.H(q)
		p.X(q)
	}
	for q := 0; q < n-1; q++ {
		p.T(q)
		p.CNOT(q, n-1)
	}
	for q := 0; q < n; q++ {
		p.X(q)
		p.H(q)
	}
	return p
}

// QFT appends the quantum Fourier transform over the first n qubits, with
// controlled rotations synthesized host-side to tolerance eps.
func QFT(p *compiler.Program, n int, eps float64) *compiler.Program {
	if n < 1 || n > p.NumLogical {
		panic(fmt.Sprintf("circuits: qft width %d invalid", n))
	}
	for i := 0; i < n; i++ {
		p.H(i)
		for j := i + 1; j < n; j++ {
			// Controlled-R_k decomposes as two CNOTs and three rotations.
			angle := 3.14159265358979 / float64(int(1)<<(j-i))
			p.CNOT(j, i)
			p.DecomposeRz(i, -angle/2, eps)
			p.CNOT(j, i)
			p.DecomposeRz(i, angle/2, eps)
		}
	}
	return p
}

// GHZ returns the logical program preparing an n-qubit GHZ state.
func GHZ(n int) *compiler.Program {
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("circuits: GHZ width %d outside [2,64]", n))
	}
	p := compiler.NewProgram(n)
	for q := 0; q < n; q++ {
		p.Prep0(q)
	}
	p.H(0)
	for q := 1; q < n; q++ {
		p.CNOT(0, q)
	}
	for q := 0; q < n; q++ {
		p.MeasZ(q)
	}
	return p
}

// ---- physical-level executions on the stabilizer substrate ----

// RunBernsteinVaziraniPhysical executes BV directly on a tableau and returns
// the recovered secret. Single-query exactness is the algorithm's whole
// point; the test asserts recovered == secret for every secret.
func RunBernsteinVaziraniPhysical(t *clifford.Tableau, secret []bool) []bool {
	n := len(secret)
	if t.N() < n+1 {
		panic(fmt.Sprintf("circuits: tableau too small: %d < %d", t.N(), n+1))
	}
	target := n
	for q := 0; q <= n; q++ {
		t.Prep0(q)
	}
	t.X(target)
	t.H(target)
	for q := 0; q < n; q++ {
		t.H(q)
	}
	for q, bit := range secret {
		if bit {
			t.CNOT(q, target)
		}
	}
	out := make([]bool, n)
	for q := 0; q < n; q++ {
		t.H(q)
		out[q] = t.MeasureZ(q) == 1
	}
	return out
}

// RunTeleportationPhysical teleports qubit 0's state to qubit 2 through a
// Bell pair on (1,2) with classically-controlled corrections, returning the
// Z-basis measurement of the teleported qubit. prepareX selects whether the
// input is |1> (true) or |0>.
func RunTeleportationPhysical(t *clifford.Tableau, prepareX bool) int {
	if t.N() < 3 {
		panic("circuits: teleportation needs 3 qubits")
	}
	for q := 0; q < 3; q++ {
		t.Prep0(q)
	}
	if prepareX {
		t.X(0)
	}
	// Bell pair on (1,2).
	t.H(1)
	t.CNOT(1, 2)
	// Bell measurement of (0,1).
	t.CNOT(0, 1)
	t.H(0)
	m0 := t.MeasureZ(0)
	m1 := t.MeasureZ(1)
	// Corrections on qubit 2.
	if m1 == 1 {
		t.X(2)
	}
	if m0 == 1 {
		t.Z(2)
	}
	return t.MeasureZ(2)
}

// RunGHZPhysical prepares an n-qubit GHZ state on the tableau and returns
// the measured bits (all equal by construction).
func RunGHZPhysical(t *clifford.Tableau, n int) []int {
	if t.N() < n || n < 2 {
		panic("circuits: bad GHZ width")
	}
	for q := 0; q < n; q++ {
		t.Prep0(q)
	}
	t.H(0)
	for q := 1; q < n; q++ {
		t.CNOT(0, q)
	}
	out := make([]int, n)
	for q := 0; q < n; q++ {
		out[q] = t.MeasureZ(q)
	}
	return out
}
