package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/clifford"
	"quest/internal/compiler"
	"quest/internal/core"
	"quest/internal/isa"
	"quest/internal/sched"
)

func TestBernsteinVaziraniProgramShape(t *testing.T) {
	secret := []bool{true, false, true, true}
	p := BernsteinVazirani(secret)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.CNOTs != 3 {
		t.Errorf("oracle CNOTs = %d, want 3 (secret weight)", s.CNOTs)
	}
	if s.ByOpcode[isa.LMeasZ] != 4 {
		t.Errorf("measurements = %d", s.ByOpcode[isa.LMeasZ])
	}
	defer func() {
		if recover() == nil {
			t.Error("oversize secret accepted")
		}
	}()
	BernsteinVazirani(make([]bool, 99))
}

// TestBernsteinVaziraniPhysicalExact: the single-query algorithm recovers
// every secret exactly on the simulated substrate.
func TestBernsteinVaziraniPhysicalExact(t *testing.T) {
	f := func(bits []bool, seed int64) bool {
		if len(bits) == 0 || len(bits) > 20 {
			return true
		}
		tb := clifford.New(len(bits)+1, rand.New(rand.NewSource(seed)))
		got := RunBernsteinVaziraniPhysical(tb, bits)
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTeleportationPhysical: the teleported qubit always reproduces the
// input state, across random measurement branches.
func TestTeleportationPhysical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tb := clifford.New(3, rand.New(rand.NewSource(seed)))
		if got := RunTeleportationPhysical(tb, false); got != 0 {
			t.Fatalf("seed %d: teleported |0> measured %d", seed, got)
		}
		tb2 := clifford.New(3, rand.New(rand.NewSource(seed+1000)))
		if got := RunTeleportationPhysical(tb2, true); got != 1 {
			t.Fatalf("seed %d: teleported |1> measured %d", seed, got)
		}
	}
}

func TestGHZPhysicalCorrelations(t *testing.T) {
	ones := 0
	for seed := int64(0); seed < 40; seed++ {
		tb := clifford.New(6, rand.New(rand.NewSource(seed)))
		bits := RunGHZPhysical(tb, 6)
		for _, b := range bits[1:] {
			if b != bits[0] {
				t.Fatalf("seed %d: GHZ decorrelated: %v", seed, bits)
			}
		}
		ones += bits[0]
	}
	if ones == 0 || ones == 40 {
		t.Errorf("GHZ outcomes not random across seeds: %d/40 ones", ones)
	}
}

func TestGroverIterationIsTHeavy(t *testing.T) {
	p := compiler.NewProgram(6)
	GroverIteration(p, 6)
	s := p.Stats()
	if s.TCount < 8 {
		t.Errorf("Grover iteration T count = %d, implausibly low", s.TCount)
	}
	if s.CNOTs < 8 {
		t.Errorf("Grover iteration CNOTs = %d", s.CNOTs)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQFTTCountScalesQuadratically(t *testing.T) {
	count := func(n int) int {
		p := compiler.NewProgram(n)
		QFT(p, n, 1e-3)
		return p.TCount()
	}
	c4, c8 := count(4), count(8)
	// Controlled rotations: n(n-1)/2 pairs × 2 synthesized rotations.
	if ratio := float64(c8) / float64(c4); ratio < 3.5 || ratio > 6 {
		t.Errorf("QFT T-count scaling 4→8 qubits = %.1fx, want ≈28/6≈4.7x", ratio)
	}
	// The QFT of the paper's workloads is where the T dominance comes from:
	// T fraction in the 20-40% band.
	p := compiler.NewProgram(8)
	QFT(p, 8, 1e-3)
	if f := p.Stats().TFraction; f < 0.2 || f > 0.6 {
		t.Errorf("QFT T fraction = %.2f", f)
	}
}

func TestGHZProgramRunsOnMachine(t *testing.T) {
	// The logical GHZ program streams through the full machine (instruction
	// accounting level) and drains.
	cfg := core.DefaultMachineConfig()
	cfg.PatchesPerTile = 4
	m := core.NewMachine(cfg)
	p := GHZ(4)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != len(p.Instrs) {
		t.Fatalf("drained=%v retired=%d/%d", rep.Drained, rep.LogicalRetired, len(p.Instrs))
	}
	if len(rep.Results) != 4 {
		t.Errorf("measurements = %d", len(rep.Results))
	}
}

func TestBVProgramSchedulesSerially(t *testing.T) {
	// BV's oracle funnels every secret bit through one target qubit: the
	// schedule must show the serialization (ILP near 1 on the oracle span).
	secret := make([]bool, 8)
	for i := range secret {
		secret[i] = true
	}
	p := BernsteinVazirani(secret)
	res, err := sched.Schedule(p, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 8 serialized 3-slot CNOTs dominate the critical path.
	if res.CriticalPath < 24 {
		t.Errorf("critical path %d, want ≥ 24 (8 serialized braids)", res.CriticalPath)
	}
}

func TestPanicsOnBadWidths(t *testing.T) {
	expect := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	p := compiler.NewProgram(4)
	expect("grover width", func() { GroverIteration(p, 9) })
	expect("qft width", func() { QFT(p, 9, 1e-3) })
	expect("ghz width", func() { GHZ(1) })
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	expect("bv tableau", func() { RunBernsteinVaziraniPhysical(tb, []bool{true, true, true}) })
	expect("teleport tableau", func() { RunTeleportationPhysical(tb, false) })
	expect("ghz tableau", func() { RunGHZPhysical(tb, 5) })
}
