package clifford_test

import (
	"fmt"
	"math/rand"

	"quest/internal/clifford"
)

// ExampleNew builds a Bell pair and shows measurement correlation — the
// substrate every QECC cycle in this repository executes on.
func ExampleNew() {
	t := clifford.New(2, rand.New(rand.NewSource(42)))
	t.H(0)
	t.CNOT(0, 1)
	a := t.MeasureZ(0)
	b := t.MeasureZ(1)
	fmt.Println("correlated:", a == b)
	// Output:
	// correlated: true
}

// ExampleTableau_MeasureObservable checks a GHZ state's stabilizers without
// disturbing it.
func ExampleTableau_MeasureObservable() {
	t := clifford.New(3, rand.New(rand.NewSource(1)))
	t.H(0)
	t.CNOT(0, 1)
	t.CNOT(0, 2)
	fmt.Println("X0X1X2 =", t.MeasureObservable([]int{0, 1, 2}, nil))
	fmt.Println("Z0Z1   =", t.MeasureObservable(nil, []int{0, 1}))
	fmt.Println("Z0     =", t.MeasureObservable(nil, []int{0}), "(0 means random)")
	// Output:
	// X0X1X2 = 1
	// Z0Z1   = 1
	// Z0     = 0 (0 means random)
}
