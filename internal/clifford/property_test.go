package clifford

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// gateRecord captures one applied gate so the circuit can be inverted.
type gateRecord struct {
	kind   int // 0=H 1=S 2=X 3=Z 4=CNOT 5=CZ
	q1, q2 int
}

func applyGate(t *Tableau, g gateRecord) {
	switch g.kind {
	case 0:
		t.H(g.q1)
	case 1:
		t.S(g.q1)
	case 2:
		t.X(g.q1)
	case 3:
		t.Z(g.q1)
	case 4:
		t.CNOT(g.q1, g.q2)
	case 5:
		t.CZ(g.q1, g.q2)
	}
}

func applyInverse(t *Tableau, g gateRecord) {
	switch g.kind {
	case 0:
		t.H(g.q1)
	case 1:
		t.SDagger(g.q1)
	case 2:
		t.X(g.q1)
	case 3:
		t.Z(g.q1)
	case 4:
		t.CNOT(g.q1, g.q2)
	case 5:
		t.CZ(g.q1, g.q2)
	}
}

// TestPropertyCircuitInversion: any random Clifford circuit followed by its
// reversed inverse restores |0...0> exactly. This exercises every gate's
// phase bookkeeping against every other's.
func TestPropertyCircuitInversion(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		n := 2 + int(nRaw)%10
		circLen := 1 + int(lenRaw)%60
		rng := rand.New(rand.NewSource(seed))
		tb := New(n, rand.New(rand.NewSource(seed+1)))
		var circuit []gateRecord
		for i := 0; i < circLen; i++ {
			g := gateRecord{kind: rng.Intn(6), q1: rng.Intn(n)}
			if g.kind >= 4 {
				for {
					g.q2 = rng.Intn(n)
					if g.q2 != g.q1 {
						break
					}
				}
			}
			circuit = append(circuit, g)
			applyGate(tb, g)
		}
		for i := len(circuit) - 1; i >= 0; i-- {
			applyInverse(tb, circuit[i])
		}
		for q := 0; q < n; q++ {
			if tb.ExpectationZ(q) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMeasurementIdempotent: measuring any qubit twice (after an
// arbitrary circuit) yields the same bit, and the state stays consistent.
func TestPropertyMeasurementIdempotent(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw, qRaw uint8) bool {
		n := 2 + int(nRaw)%8
		rng := rand.New(rand.NewSource(seed))
		tb := New(n, rand.New(rand.NewSource(seed+2)))
		for i := 0; i < int(lenRaw)%40; i++ {
			g := gateRecord{kind: rng.Intn(6), q1: rng.Intn(n)}
			if g.kind >= 4 {
				g.q2 = (g.q1 + 1 + rng.Intn(n-1)) % n
			}
			applyGate(tb, g)
		}
		q := int(qRaw) % n
		first := tb.MeasureZ(q)
		for k := 0; k < 3; k++ {
			if tb.MeasureZ(q) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPauliErrorsCommuteWithFrame: injecting the same Pauli twice is
// the identity on all observables — the toggle property the Pauli frame
// relies on.
func TestPropertyPauliErrorsAreInvolutions(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, qRaw uint8) bool {
		n := 1 + int(nRaw)%8
		q := int(qRaw) % n
		p := Pauli(1 + pRaw%3)
		tb := New(n, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			applyGate(tb, gateRecord{kind: rng.Intn(4), q1: rng.Intn(n)})
		}
		ref := tb.Clone()
		tb.ApplyPauli(q, p)
		tb.ApplyPauli(q, p)
		for i := 0; i < n; i++ {
			if tb.ExpectationZ(i) != ref.ExpectationZ(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEntanglementMonogamyParity: for random graph-state-like
// circuits, deterministic multi-qubit Z-parities predicted by
// MeasureObservable must match actual sequential measurement parities.
func TestPropertyObservableMatchesMeasurement(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%6
		rng := rand.New(rand.NewSource(seed))
		tb := New(n, rand.New(rand.NewSource(seed+9)))
		// GHZ-ish: H then a chain of CNOTs over a random permutation.
		tb.H(0)
		perm := rng.Perm(n)
		prev := -1
		for _, q := range perm {
			if prev >= 0 && prev != q {
				tb.CNOT(prev, q)
			}
			prev = q
		}
		support := make([]int, n)
		for i := range support {
			support[i] = i
		}
		pred := tb.MeasureObservable(nil, support)
		parity := 0
		for q := 0; q < n; q++ {
			parity ^= tb.MeasureZ(q)
		}
		got := 1 - 2*parity
		if pred == 0 {
			return true // observable was genuinely random; nothing to check
		}
		return got == pred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
