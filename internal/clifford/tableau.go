// Package clifford implements an Aaronson–Gottesman (CHP) stabilizer tableau
// simulator. It is the quantum substrate of this repository: surface-code
// syndrome-extraction circuits are pure Clifford circuits, so a stabilizer
// simulator executes exactly the instruction streams the control processor
// issues, at polynomial cost, while modelling genuine quantum behaviour
// (entanglement, measurement back-action, random outcomes).
//
// The tableau stores n destabilizer and n stabilizer generators as rows of
// bit-packed X and Z Pauli indicators plus a sign bit. All gate updates are
// O(n) and measurements are O(n²) worst case, which comfortably covers the
// code distances exercised here (hundreds to a few thousand qubits).
package clifford

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Tableau is the stabilizer state of n qubits. The zero value is not usable;
// create one with New. Rows 0..n-1 are destabilizers, rows n..2n-1 are
// stabilizers; row 2n is scratch space for deterministic measurements.
type Tableau struct {
	n     int
	words int // uint64 words per row half
	// x[r] and z[r] are the X/Z indicator bit vectors of row r.
	x [][]uint64
	z [][]uint64
	r []uint8 // sign bit per row (0 => +1, 1 => -1)

	rng *rand.Rand
}

// New returns a fresh n-qubit tableau initialized to |0...0>, using rng as
// the source of measurement randomness. A nil rng gets a fixed-seed source so
// that zero-config uses are reproducible.
func New(n int, rng *rand.Rand) *Tableau {
	if n <= 0 {
		panic(fmt.Sprintf("clifford: non-positive qubit count %d", n))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	t := &Tableau{
		n:     n,
		words: (n + 63) / 64,
		rng:   rng,
	}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, t.words)
		t.z[i] = make([]uint64, t.words)
	}
	t.Reset()
	return t
}

// N returns the number of qubits.
func (t *Tableau) N() int { return t.n }

// SetRNG rebinds the source of measurement randomness. Together with Reset
// this lets a pooled tableau reproduce exactly the state of a fresh
// New(n, rng): the row storage is trial-independent, only the state bits and
// the random stream have to be rewound. A nil rng restores the fixed-seed
// default of New.
func (t *Tableau) SetRNG(rng *rand.Rand) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	t.rng = rng
}

// Reset returns the state to |0...0>: destabilizer i = X_i, stabilizer i = Z_i.
func (t *Tableau) Reset() {
	for i := range t.x {
		clear(t.x[i])
		clear(t.z[i])
		t.r[i] = 0
	}
	for i := 0; i < t.n; i++ {
		t.setX(i, i, true)     // destabilizer row i is X_i
		t.setZ(i+t.n, i, true) // stabilizer row i is Z_i
	}
}

func (t *Tableau) setX(row, q int, v bool) {
	if v {
		t.x[row][q>>6] |= 1 << (uint(q) & 63)
	} else {
		t.x[row][q>>6] &^= 1 << (uint(q) & 63)
	}
}

func (t *Tableau) setZ(row, q int, v bool) {
	if v {
		t.z[row][q>>6] |= 1 << (uint(q) & 63)
	} else {
		t.z[row][q>>6] &^= 1 << (uint(q) & 63)
	}
}

func (t *Tableau) checkQubit(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("clifford: qubit %d out of range [0,%d)", q, t.n))
	}
}

// H applies a Hadamard gate to qubit q.
func (t *Tableau) H(q int) {
	t.checkQubit(q)
	w, b := q>>6, uint(q)&63
	mask := uint64(1) << b
	for i := 0; i < 2*t.n; i++ {
		xi := t.x[i][w] & mask
		zi := t.z[i][w] & mask
		// r ^= x*z
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		// swap x and z bits
		t.x[i][w] = t.x[i][w]&^mask | zi
		t.z[i][w] = t.z[i][w]&^mask | xi
	}
}

// S applies the phase gate S to qubit q.
func (t *Tableau) S(q int) {
	t.checkQubit(q)
	w, b := q>>6, uint(q)&63
	mask := uint64(1) << b
	for i := 0; i < 2*t.n; i++ {
		xi := t.x[i][w] & mask
		zi := t.z[i][w] & mask
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		t.z[i][w] ^= xi
	}
}

// SDagger applies the inverse phase gate. S† = S·Z up to global phase, and on
// the tableau S† = S applied three times; we implement it directly: S†: X→-Y,
// which equals applying Z then S.
func (t *Tableau) SDagger(q int) {
	t.Z(q)
	t.S(q)
}

// X applies Pauli-X to qubit q (bit flip). Stabilizer rows anticommuting with
// X_q (those with a Z component on q) flip sign.
func (t *Tableau) X(q int) {
	t.checkQubit(q)
	w := q >> 6
	mask := uint64(1) << (uint(q) & 63)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i][w]&mask != 0 {
			t.r[i] ^= 1
		}
	}
}

// Z applies Pauli-Z to qubit q (phase flip).
func (t *Tableau) Z(q int) {
	t.checkQubit(q)
	w := q >> 6
	mask := uint64(1) << (uint(q) & 63)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&mask != 0 {
			t.r[i] ^= 1
		}
	}
}

// Y applies Pauli-Y to qubit q.
func (t *Tableau) Y(q int) {
	t.checkQubit(q)
	w := q >> 6
	mask := uint64(1) << (uint(q) & 63)
	for i := 0; i < 2*t.n; i++ {
		// Y anticommutes with both pure-X and pure-Z rows.
		if (t.x[i][w]&mask != 0) != (t.z[i][w]&mask != 0) {
			t.r[i] ^= 1
		}
	}
}

// CNOT applies a controlled-NOT with control c and target tq.
func (t *Tableau) CNOT(c, tq int) {
	t.checkQubit(c)
	t.checkQubit(tq)
	if c == tq {
		panic("clifford: CNOT control equals target")
	}
	cw, cb := c>>6, uint(c)&63
	tw, tb := tq>>6, uint(tq)&63
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw] >> cb & 1
		zc := t.z[i][cw] >> cb & 1
		xt := t.x[i][tw] >> tb & 1
		zt := t.z[i][tw] >> tb & 1
		// r ^= xc*zt*(xt ^ zc ^ 1)
		if xc&zt == 1 && xt^zc^1 == 1 {
			t.r[i] ^= 1
		}
		// xt ^= xc ; zc ^= zt
		t.x[i][tw] ^= xc << tb
		t.z[i][cw] ^= zt << cb
	}
}

// CZ applies a controlled-Z between qubits a and b (H on b, CNOT a→b, H on b).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// rowsum multiplies row h by row i (h ← i·h), tracking the sign via the
// standard CHP phase function g.
func (t *Tableau) rowsum(h, i int) {
	// Sum of g over all qubits, computed word-wise. g counts the exponent of
	// i in the product of two Pauli operators; we only need the result mod 4
	// where the row phases contribute 2*r.
	var sum int
	for w := 0; w < t.words; w++ {
		x1, z1 := t.x[i][w], t.z[i][w]
		x2, z2 := t.x[h][w], t.z[h][w]
		// g per bit:
		//  (x1,z1)=(0,0): 0
		//  (1,1): z2 - x2
		//  (1,0): z2*(2*x2-1)
		//  (0,1): x2*(1-2*z2)
		// We count +1 and -1 contributions separately.
		// case (1,1): +1 when z2=1,x2=0 ; -1 when x2=1,z2=0
		c11p := x1 & z1 & z2 &^ x2
		c11m := x1 & z1 & x2 &^ z2
		// case (1,0): +1 when x2=1,z2=1 ; -1 when z2=1,x2=0... wait:
		// z2*(2*x2-1): z2=1,x2=1 => +1 ; z2=1,x2=0 => -1 ; z2=0 => 0
		c10p := x1 &^ z1 & z2 & x2
		c10m := x1 &^ z1 & z2 &^ x2
		// case (0,1): x2*(1-2*z2): x2=1,z2=0 => +1 ; x2=1,z2=1 => -1
		c01p := z1 &^ x1 & x2 &^ z2
		c01m := z1 &^ x1 & x2 & z2
		sum += bits.OnesCount64(c11p) + bits.OnesCount64(c10p) + bits.OnesCount64(c01p)
		sum -= bits.OnesCount64(c11m) + bits.OnesCount64(c10m) + bits.OnesCount64(c01m)
	}
	tot := sum + 2*int(t.r[h]) + 2*int(t.r[i])
	// tot mod 4 is always 0 or 2 for valid stabilizer products.
	if m := ((tot % 4) + 4) % 4; m == 2 {
		t.r[h] = 1
	} else {
		t.r[h] = 0
	}
	for w := 0; w < t.words; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

// MeasureZ measures qubit q in the computational basis and returns the
// outcome bit. Random outcomes consume one bit from the tableau's rng.
func (t *Tableau) MeasureZ(q int) int {
	t.checkQubit(q)
	w := q >> 6
	mask := uint64(1) << (uint(q) & 63)
	// Look for a stabilizer row with an X component on q: outcome is random.
	p := -1
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&mask != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome. All other rows with x bit set get multiplied by p.
		for i := 0; i < 2*t.n; i++ {
			if i != p && t.x[i][w]&mask != 0 {
				t.rowsum(i, p)
			}
		}
		// Destabilizer p-n becomes old stabilizer p; stabilizer p becomes ±Z_q.
		copy(t.x[p-t.n], t.x[p])
		copy(t.z[p-t.n], t.z[p])
		t.r[p-t.n] = t.r[p]
		clear(t.x[p])
		clear(t.z[p])
		t.setZ(p, q, true)
		out := uint8(t.rng.Intn(2))
		t.r[p] = out
		return int(out)
	}
	// Deterministic outcome: accumulate into scratch row 2n.
	s := 2 * t.n
	clear(t.x[s])
	clear(t.z[s])
	t.r[s] = 0
	for i := 0; i < t.n; i++ {
		if t.x[i][w]&mask != 0 { // destabilizer i anticommutes with Z_q
			t.rowsum(s, i+t.n)
		}
	}
	return int(t.r[s])
}

// MeasureX measures qubit q in the X basis (H, MeasureZ, H).
func (t *Tableau) MeasureX(q int) int {
	t.H(q)
	out := t.MeasureZ(q)
	t.H(q)
	return out
}

// Prep0 projects qubit q to |0>: measure and flip on a 1 outcome.
func (t *Tableau) Prep0(q int) {
	if t.MeasureZ(q) == 1 {
		t.X(q)
	}
}

// Prep1 projects qubit q to |1>.
func (t *Tableau) Prep1(q int) {
	if t.MeasureZ(q) == 0 {
		t.X(q)
	}
}

// PrepPlus projects qubit q to |+>.
func (t *Tableau) PrepPlus(q int) {
	Prep := t.MeasureX(q)
	if Prep == 1 {
		t.Z(q)
	}
}

// ExpectationZ returns +1/-1 if Z_q is deterministic in the current state and
// 0 if the outcome would be random. It does not disturb the state.
func (t *Tableau) ExpectationZ(q int) int {
	t.checkQubit(q)
	w := q >> 6
	mask := uint64(1) << (uint(q) & 63)
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&mask != 0 {
			return 0
		}
	}
	s := 2 * t.n
	clear(t.x[s])
	clear(t.z[s])
	t.r[s] = 0
	for i := 0; i < t.n; i++ {
		if t.x[i][w]&mask != 0 {
			t.rowsum(s, i+t.n)
		}
	}
	if t.r[s] == 1 {
		return -1
	}
	return +1
}

// Pauli is a single-qubit Pauli error used for noise injection.
type Pauli uint8

// Pauli error kinds. PauliI is the identity (no error).
const (
	PauliI Pauli = iota
	PauliX
	PauliY
	PauliZ
)

// String returns I, X, Y or Z.
func (p Pauli) String() string {
	switch p {
	case PauliI:
		return "I"
	case PauliX:
		return "X"
	case PauliY:
		return "Y"
	case PauliZ:
		return "Z"
	}
	return fmt.Sprintf("Pauli(%d)", uint8(p))
}

// ApplyPauli injects a Pauli error on qubit q.
func (t *Tableau) ApplyPauli(q int, p Pauli) {
	switch p {
	case PauliI:
	case PauliX:
		t.X(q)
	case PauliY:
		t.Y(q)
	case PauliZ:
		t.Z(q)
	default:
		panic(fmt.Sprintf("clifford: undefined pauli %d", p))
	}
}

// StabilizerSign returns the sign bit of stabilizer generator i (0 => +1).
func (t *Tableau) StabilizerSign(i int) uint8 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("clifford: stabilizer index %d out of range", i))
	}
	return t.r[i+t.n]
}

// MeasureObservable measures the expectation of a multi-qubit Pauli product
// without disturbing the state, returning +1/-1 if deterministic, 0 if
// random. xs and zs list qubits carrying X and Z factors respectively (a
// qubit in both lists carries Y up to phase). It is used by tests to check
// logical operators of encoded states.
func (t *Tableau) MeasureObservable(xs, zs []int) int {
	// Build the observable as bit vectors.
	ox := make([]uint64, t.words)
	oz := make([]uint64, t.words)
	for _, q := range xs {
		t.checkQubit(q)
		ox[q>>6] |= 1 << (uint(q) & 63)
	}
	for _, q := range zs {
		t.checkQubit(q)
		oz[q>>6] |= 1 << (uint(q) & 63)
	}
	// The observable is deterministic iff it commutes with every stabilizer.
	// Symplectic product: x1·z2 + z1·x2 mod 2.
	anticommutes := func(row int) bool {
		c := 0
		for w := 0; w < t.words; w++ {
			c += bits.OnesCount64(t.x[row][w]&oz[w]) + bits.OnesCount64(t.z[row][w]&ox[w])
		}
		return c%2 == 1
	}
	for i := t.n; i < 2*t.n; i++ {
		if anticommutes(i) {
			return 0
		}
	}
	// Deterministic: express the observable as a product of stabilizers using
	// the destabilizer pairing, accumulating in the scratch row.
	s := 2 * t.n
	clear(t.x[s])
	clear(t.z[s])
	t.r[s] = 0
	for i := 0; i < t.n; i++ {
		if anticommutes(i) { // destabilizer i pairs with stabilizer i
			t.rowsum(s, i+t.n)
		}
	}
	// The scratch row should now equal the observable up to sign.
	for w := 0; w < t.words; w++ {
		if t.x[s][w] != ox[w] || t.z[s][w] != oz[w] {
			return 0 // observable not in the stabilizer group
		}
	}
	if t.r[s] == 1 {
		return -1
	}
	return +1
}

// Clone returns an independent deep copy sharing the rng source.
func (t *Tableau) Clone() *Tableau {
	c := &Tableau{n: t.n, words: t.words, rng: t.rng}
	c.x = make([][]uint64, len(t.x))
	c.z = make([][]uint64, len(t.z))
	c.r = make([]uint8, len(t.r))
	copy(c.r, t.r)
	for i := range t.x {
		c.x[i] = append([]uint64(nil), t.x[i]...)
		c.z[i] = append([]uint64(nil), t.z[i]...)
	}
	return c
}
