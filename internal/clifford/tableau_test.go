package clifford

import (
	"math/rand"
	"testing"
)

func newT(n int, seed int64) *Tableau {
	return New(n, rand.New(rand.NewSource(seed)))
}

func TestInitialStateIsAllZeros(t *testing.T) {
	tb := newT(5, 1)
	for q := 0; q < 5; q++ {
		if got := tb.ExpectationZ(q); got != 1 {
			t.Errorf("qubit %d: ExpectationZ = %d, want +1", q, got)
		}
		if out := tb.MeasureZ(q); out != 0 {
			t.Errorf("qubit %d: measured %d in |0...0>", q, out)
		}
	}
}

func TestXFlipsMeasurement(t *testing.T) {
	tb := newT(3, 1)
	tb.X(1)
	if out := tb.MeasureZ(1); out != 1 {
		t.Fatalf("X|0> measured %d, want 1", out)
	}
	if out := tb.MeasureZ(0); out != 0 {
		t.Fatalf("untouched qubit measured %d", out)
	}
	tb.X(1)
	if out := tb.MeasureZ(1); out != 0 {
		t.Fatalf("XX|0> measured %d, want 0", out)
	}
}

func TestZAndYPhases(t *testing.T) {
	// Z|0> = |0>; Y|0> = i|1> so MeasureZ gives 1.
	tb := newT(2, 1)
	tb.Z(0)
	if out := tb.MeasureZ(0); out != 0 {
		t.Errorf("Z|0> measured %d", out)
	}
	tb.Y(1)
	if out := tb.MeasureZ(1); out != 1 {
		t.Errorf("Y|0> measured %d, want 1", out)
	}
}

func TestHadamardCreatesRandomness(t *testing.T) {
	// H|0> then MeasureZ should yield both outcomes over many trials.
	counts := [2]int{}
	for seed := int64(0); seed < 64; seed++ {
		tb := newT(1, seed)
		tb.H(0)
		counts[tb.MeasureZ(0)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("H|0> outcomes not random: %v", counts)
	}
}

func TestHadamardRoundTrip(t *testing.T) {
	tb := newT(1, 1)
	tb.H(0)
	tb.H(0)
	if out := tb.MeasureZ(0); out != 0 {
		t.Fatalf("HH|0> measured %d", out)
	}
	tb.X(0)
	tb.H(0)
	tb.H(0)
	if out := tb.MeasureZ(0); out != 1 {
		t.Fatalf("HHX|0> measured %d", out)
	}
}

func TestMeasurementCollapseIsSticky(t *testing.T) {
	// After measuring H|0>, remeasuring must repeat the same outcome.
	for seed := int64(0); seed < 32; seed++ {
		tb := newT(1, seed)
		tb.H(0)
		first := tb.MeasureZ(0)
		for k := 0; k < 5; k++ {
			if got := tb.MeasureZ(0); got != first {
				t.Fatalf("seed %d: collapse not sticky: %d then %d", seed, first, got)
			}
		}
	}
}

func TestBellPairCorrelations(t *testing.T) {
	oneSeen := false
	for seed := int64(0); seed < 64; seed++ {
		tb := newT(2, seed)
		tb.H(0)
		tb.CNOT(0, 1)
		a := tb.MeasureZ(0)
		b := tb.MeasureZ(1)
		if a != b {
			t.Fatalf("seed %d: Bell pair outcomes differ: %d %d", seed, a, b)
		}
		if a == 1 {
			oneSeen = true
		}
	}
	if !oneSeen {
		t.Fatal("Bell measurement never produced 1")
	}
}

func TestGHZParity(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		tb := newT(5, seed)
		tb.H(0)
		for q := 1; q < 5; q++ {
			tb.CNOT(0, q)
		}
		first := tb.MeasureZ(0)
		for q := 1; q < 5; q++ {
			if got := tb.MeasureZ(q); got != first {
				t.Fatalf("seed %d: GHZ qubit %d = %d, want %d", seed, q, got, first)
			}
		}
	}
}

func TestCNOTTruthTable(t *testing.T) {
	cases := []struct{ c, tq, wc, wt int }{
		{0, 0, 0, 0}, {0, 1, 0, 1}, {1, 0, 1, 1}, {1, 1, 1, 0},
	}
	for _, cse := range cases {
		tb := newT(2, 1)
		if cse.c == 1 {
			tb.X(0)
		}
		if cse.tq == 1 {
			tb.X(1)
		}
		tb.CNOT(0, 1)
		if got := tb.MeasureZ(0); got != cse.wc {
			t.Errorf("CNOT(%d,%d): control = %d, want %d", cse.c, cse.tq, got, cse.wc)
		}
		if got := tb.MeasureZ(1); got != cse.wt {
			t.Errorf("CNOT(%d,%d): target = %d, want %d", cse.c, cse.tq, got, cse.wt)
		}
	}
}

func TestCZPhaseKickback(t *testing.T) {
	// CZ between |+> and |1> flips the |+> to |-> : H then measure gives 1.
	tb := newT(2, 1)
	tb.H(0)
	tb.X(1)
	tb.CZ(0, 1)
	tb.H(0)
	if out := tb.MeasureZ(0); out != 1 {
		t.Fatalf("CZ phase kickback: measured %d, want 1", out)
	}
	// CZ with |0> control does nothing.
	tb2 := newT(2, 1)
	tb2.H(0)
	tb2.CZ(0, 1)
	tb2.H(0)
	if out := tb2.MeasureZ(0); out != 0 {
		t.Fatalf("CZ on |0> target disturbed |+>: measured %d", out)
	}
}

func TestSGateViaConjugation(t *testing.T) {
	// HSSH = HZH = X: so applying H,S,S,H to |0> must give |1>.
	tb := newT(1, 1)
	tb.H(0)
	tb.S(0)
	tb.S(0)
	tb.H(0)
	if out := tb.MeasureZ(0); out != 1 {
		t.Fatalf("HSSH|0> measured %d, want 1", out)
	}
}

func TestSDaggerInvertsS(t *testing.T) {
	// S† S = I on a state where phases matter: |+>.
	tb := newT(1, 1)
	tb.H(0)
	tb.S(0)
	tb.SDagger(0)
	if out := tb.MeasureX(0); out != 0 {
		t.Fatalf("S†S|+> measured %d in X basis, want 0 (|+>)", out)
	}
	// S|+> = |i>; S·S|+> = |->.
	tb2 := newT(1, 1)
	tb2.H(0)
	tb2.S(0)
	tb2.S(0)
	if out := tb2.MeasureX(0); out != 1 {
		t.Fatalf("SS|+> measured %d in X basis, want 1 (|->)", out)
	}
}

func TestPrepStates(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		tb := newT(3, seed)
		tb.H(0)
		tb.H(1)
		tb.H(2)
		tb.Prep0(0)
		tb.Prep1(1)
		tb.PrepPlus(2)
		if out := tb.MeasureZ(0); out != 0 {
			t.Fatalf("Prep0 gave %d", out)
		}
		if out := tb.MeasureZ(1); out != 1 {
			t.Fatalf("Prep1 gave %d", out)
		}
		if out := tb.MeasureX(2); out != 0 {
			t.Fatalf("PrepPlus: X-basis measurement gave %d", out)
		}
	}
}

func TestMeasureXBases(t *testing.T) {
	tb := newT(1, 1)
	tb.H(0) // |+>
	if out := tb.MeasureX(0); out != 0 {
		t.Fatalf("MeasureX|+> = %d, want 0", out)
	}
	tb.Z(0) // |->
	if out := tb.MeasureX(0); out != 1 {
		t.Fatalf("MeasureX|-> = %d, want 1", out)
	}
}

func TestExpectationZ(t *testing.T) {
	tb := newT(2, 1)
	if tb.ExpectationZ(0) != 1 {
		t.Error("fresh qubit expectation != +1")
	}
	tb.X(0)
	if tb.ExpectationZ(0) != -1 {
		t.Error("flipped qubit expectation != -1")
	}
	tb.H(1)
	if tb.ExpectationZ(1) != 0 {
		t.Error("|+> expectation != 0 (random)")
	}
	// ExpectationZ must not disturb the state.
	tb.CNOT(1, 0)
	before := tb.Clone()
	_ = tb.ExpectationZ(0)
	_ = tb.ExpectationZ(1)
	_ = before.MeasureZ(0) // clone still measurable
	// q0 was |1> before CNOT(1,0), so q0 = 1 XOR q1: outcomes anti-correlate.
	a := tb.MeasureZ(0)
	if got := tb.MeasureZ(1); got != 1-a {
		t.Error("entangled qubits lost anti-correlation after ExpectationZ")
	}
}

func TestMeasureObservable(t *testing.T) {
	tb := newT(3, 1)
	// |000>: Z0Z1 deterministic +1, X0 random, Z0 +1.
	if got := tb.MeasureObservable(nil, []int{0, 1}); got != 1 {
		t.Errorf("Z0Z1 on |000> = %d, want +1", got)
	}
	if got := tb.MeasureObservable([]int{0}, nil); got != 0 {
		t.Errorf("X0 on |000> = %d, want 0 (random)", got)
	}
	tb.X(0)
	if got := tb.MeasureObservable(nil, []int{0, 1}); got != -1 {
		t.Errorf("Z0Z1 on |100> = %d, want -1", got)
	}
	// GHZ: X0X1X2 deterministic +1, Z0Z1 deterministic +1.
	g := newT(3, 2)
	g.H(0)
	g.CNOT(0, 1)
	g.CNOT(0, 2)
	if got := g.MeasureObservable([]int{0, 1, 2}, nil); got != 1 {
		t.Errorf("X0X1X2 on GHZ = %d, want +1", got)
	}
	if got := g.MeasureObservable(nil, []int{0, 1}); got != 1 {
		t.Errorf("Z0Z1 on GHZ = %d, want +1", got)
	}
	if got := g.MeasureObservable(nil, []int{0}); got != 0 {
		t.Errorf("Z0 on GHZ = %d, want 0", got)
	}
}

func TestApplyPauli(t *testing.T) {
	tb := newT(2, 1)
	tb.ApplyPauli(0, PauliX)
	if out := tb.MeasureZ(0); out != 1 {
		t.Error("ApplyPauli X had no effect")
	}
	tb.ApplyPauli(0, PauliI)
	if out := tb.MeasureZ(0); out != 1 {
		t.Error("identity Pauli changed state")
	}
	tb.ApplyPauli(1, PauliY)
	if out := tb.MeasureZ(1); out != 1 {
		t.Error("ApplyPauli Y had no effect on Z basis")
	}
	for p, want := range map[Pauli]string{PauliI: "I", PauliX: "X", PauliY: "Y", PauliZ: "Z"} {
		if p.String() != want {
			t.Errorf("Pauli %d String = %q", p, p.String())
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := newT(4, 1)
	tb.H(0)
	tb.CNOT(0, 1)
	c := tb.Clone()
	c.X(2)
	if tb.ExpectationZ(2) != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.ExpectationZ(2) != -1 {
		t.Error("clone mutation lost")
	}
}

func TestResetRestoresZeroState(t *testing.T) {
	tb := newT(3, 1)
	tb.H(0)
	tb.CNOT(0, 1)
	tb.X(2)
	tb.Reset()
	for q := 0; q < 3; q++ {
		if tb.ExpectationZ(q) != 1 {
			t.Errorf("qubit %d not |0> after Reset", q)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	tb := newT(2, 1)
	expectPanic("qubit out of range", func() { tb.H(5) })
	expectPanic("negative qubit", func() { tb.MeasureZ(-1) })
	expectPanic("cnot self", func() { tb.CNOT(1, 1) })
	expectPanic("zero qubits", func() { New(0, nil) })
	expectPanic("bad pauli", func() { tb.ApplyPauli(0, Pauli(9)) })
}

func TestStabilizerSignTracksErrors(t *testing.T) {
	tb := newT(2, 1)
	if tb.StabilizerSign(0) != 0 {
		t.Error("fresh stabilizer sign nonzero")
	}
	tb.X(0)
	if tb.StabilizerSign(0) != 1 {
		t.Error("X error did not flip Z0 stabilizer sign")
	}
	expectPanic := func() {
		defer func() {
			if recover() == nil {
				t.Error("StabilizerSign out of range: no panic")
			}
		}()
		tb.StabilizerSign(5)
	}
	expectPanic()
}

// TestRepetitionCodeSyndrome encodes one logical bit across three qubits and
// verifies syndrome extraction detects single flips without disturbing data —
// a miniature version of the surface-code loop the rest of the repo builds.
func TestRepetitionCodeSyndrome(t *testing.T) {
	for errQ := -1; errQ < 3; errQ++ {
		tb := newT(5, int64(errQ)+10) // 3 data + 2 ancilla
		// Encode |+++>-ish GHZ: H then fan out.
		tb.H(0)
		tb.CNOT(0, 1)
		tb.CNOT(0, 2)
		if errQ >= 0 {
			tb.X(errQ)
		}
		// Syndrome: ancilla 3 = Z0Z1 parity, ancilla 4 = Z1Z2 parity.
		tb.Prep0(3)
		tb.Prep0(4)
		tb.CNOT(0, 3)
		tb.CNOT(1, 3)
		tb.CNOT(1, 4)
		tb.CNOT(2, 4)
		s1 := tb.MeasureZ(3)
		s2 := tb.MeasureZ(4)
		var want [2]int
		switch errQ {
		case 0:
			want = [2]int{1, 0}
		case 1:
			want = [2]int{1, 1}
		case 2:
			want = [2]int{0, 1}
		default:
			want = [2]int{0, 0}
		}
		if s1 != want[0] || s2 != want[1] {
			t.Errorf("error on %d: syndrome (%d,%d), want %v", errQ, s1, s2, want)
		}
		// Data parity must be intact after decode+correct.
		if errQ >= 0 {
			tb.X(errQ)
		}
		a := tb.MeasureZ(0)
		if tb.MeasureZ(1) != a || tb.MeasureZ(2) != a {
			t.Errorf("error on %d: data decorrelated after correction", errQ)
		}
	}
}

// TestManyQubitWordBoundaries exercises qubit indices spanning multiple
// uint64 words (q=63,64,65...) to catch masking bugs.
func TestManyQubitWordBoundaries(t *testing.T) {
	tb := newT(130, 1)
	for _, q := range []int{0, 62, 63, 64, 65, 127, 128, 129} {
		tb.X(q)
		if out := tb.MeasureZ(q); out != 1 {
			t.Errorf("qubit %d: X lost across word boundary", q)
		}
	}
	tb.Reset()
	tb.H(63)
	tb.CNOT(63, 64)
	a := tb.MeasureZ(63)
	if b := tb.MeasureZ(64); b != a {
		t.Error("Bell pair across word boundary decorrelated")
	}
}

func BenchmarkSyndromeCycle100Qubits(b *testing.B) {
	tb := newT(100, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One syndrome-like cycle: prep, 4 CNOTs, measure, on 20 ancillas.
		for a := 80; a < 100; a++ {
			tb.Prep0(a)
			tb.CNOT((a-80)*4, a)
			tb.CNOT((a-80)*4+1, a)
			tb.CNOT((a-80)*4+2, a)
			tb.CNOT((a-80)*4+3, a)
			tb.MeasureZ(a)
		}
	}
}
