// Package compiler implements the software side of the paper's programming
// model (§3.2, §5): a logical circuit IR composed of fault-tolerant
// instructions, the placement of logical qubits as surface-code patches on
// an MCE tile, the expansion of transverse logical instructions into
// per-qubit physical µops, the decomposition of arbitrary rotations into
// Clifford+T sequences (done at the host, never at the MCE — footnote 7),
// and the two compilation targets the evaluation compares: the baseline
// software-managed stream (everything physical, QECC included) and the
// QuEST stream (2-byte logical instructions plus sync tokens).
package compiler

import (
	"fmt"
	"math"

	"quest/internal/isa"
	"quest/internal/surface"
)

// Program is a logical circuit: a sequence of logical instructions over a
// register of logical qubits.
type Program struct {
	NumLogical int
	Instrs     []isa.LogicalInstr
}

// NewProgram returns an empty program over n logical qubits (n ≤ 64 to fit
// the 6-bit target fields of the wire format).
func NewProgram(n int) *Program {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("compiler: logical register size %d outside [1,64]", n))
	}
	return &Program{NumLogical: n}
}

func (p *Program) emit(op isa.LogicalOpcode, target, arg uint8) *Program {
	p.Instrs = append(p.Instrs, isa.LogicalInstr{Op: op, Target: target, Arg: arg})
	return p
}

// Prep0 appends a logical |0> preparation.
func (p *Program) Prep0(q int) *Program { return p.emit(isa.LPrep0, p.check(q), 0) }

// PrepPlus appends a logical |+> preparation.
func (p *Program) PrepPlus(q int) *Program { return p.emit(isa.LPrepPlus, p.check(q), 0) }

// H appends a logical Hadamard.
func (p *Program) H(q int) *Program { return p.emit(isa.LH, p.check(q), 0) }

// X appends a logical Pauli-X.
func (p *Program) X(q int) *Program { return p.emit(isa.LX, p.check(q), 0) }

// Z appends a logical Pauli-Z.
func (p *Program) Z(q int) *Program { return p.emit(isa.LZ, p.check(q), 0) }

// S appends a logical phase gate.
func (p *Program) S(q int) *Program { return p.emit(isa.LS, p.check(q), 0) }

// T appends a logical T gate (consumes a magic state at run time).
func (p *Program) T(q int) *Program { return p.emit(isa.LT, p.check(q), 0) }

// CNOT appends a logical CNOT, realized by braiding at run time.
func (p *Program) CNOT(ctrl, tgt int) *Program {
	if ctrl == tgt {
		panic("compiler: CNOT control equals target")
	}
	return p.emit(isa.LCNOT, p.check(ctrl), p.check(tgt))
}

// MeasZ appends a logical Z-basis measurement.
func (p *Program) MeasZ(q int) *Program { return p.emit(isa.LMeasZ, p.check(q), 0) }

// MeasX appends a logical X-basis measurement.
func (p *Program) MeasX(q int) *Program { return p.emit(isa.LMeasX, p.check(q), 0) }

func (p *Program) check(q int) uint8 {
	if q < 0 || q >= p.NumLogical {
		panic(fmt.Sprintf("compiler: logical qubit %d outside register of %d", q, p.NumLogical))
	}
	return uint8(q)
}

// Validate checks every instruction addresses the register.
func (p *Program) Validate() error {
	for i, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("compiler: instruction %d has invalid opcode", i)
		}
		if int(in.Target) >= p.NumLogical {
			return fmt.Errorf("compiler: instruction %d targets qubit %d outside register", i, in.Target)
		}
		if in.Op == isa.LCNOT && int(in.Arg) >= p.NumLogical {
			return fmt.Errorf("compiler: instruction %d CNOT arg %d outside register", i, in.Arg)
		}
	}
	return nil
}

// TCount returns the number of T gates (magic-state consumers).
func (p *Program) TCount() int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == isa.LT {
			n++
		}
	}
	return n
}

// DecomposeRz appends a Clifford+T approximation of Rz(theta) on qubit q to
// the program, accurate to eps. The sequence length follows the standard
// ~3·log₂(1/eps) T-count of ancilla-free synthesis; the H/T pattern is a
// deterministic function of the angle bits, so recompilation is
// reproducible. Rotations are decomposed at the host or master controller
// (footnote 7), never at the MCE.
func (p *Program) DecomposeRz(q int, theta, eps float64) *Program {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("compiler: rotation tolerance %v outside (0,1)", eps))
	}
	tCount := int(math.Ceil(3 * math.Log2(1/eps)))
	// Derive a deterministic bit stream from the angle's binary expansion.
	frac := math.Mod(math.Abs(theta)/(2*math.Pi), 1)
	bits := uint64(frac * float64(1<<62))
	p.H(q)
	for i := 0; i < tCount; i++ {
		p.T(q)
		if bits>>(uint(i)%62)&1 == 1 {
			p.H(q)
		} else {
			p.S(q)
		}
	}
	p.H(q)
	return p
}

// RzTCount returns the T-count DecomposeRz will emit for a tolerance.
func RzTCount(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("compiler: rotation tolerance %v outside (0,1)", eps))
	}
	return int(math.Ceil(3 * math.Log2(1/eps)))
}

// Layout places logical qubits as planar surface-code patches side by side
// on one MCE tile, one data-qubit column apart so role parity is preserved
// across the whole lattice.
type Layout struct {
	Lat      surface.Lattice
	Distance int
	patches  int
}

// NewLayout builds a tile lattice holding n distance-d patches.
func NewLayout(d, n int) Layout {
	if d < 2 {
		panic(fmt.Sprintf("compiler: distance %d < 2", d))
	}
	if n < 1 {
		panic(fmt.Sprintf("compiler: patch count %d < 1", n))
	}
	// Patch width 2d-1 plus a 1-column gap: stride 2d keeps (r+c) parity.
	cols := n*2*d - 1
	return Layout{Lat: surface.NewLattice(2*d-1, cols), Distance: d, patches: n}
}

// NumPatches returns the logical capacity of the tile.
func (l Layout) NumPatches() int { return l.patches }

// PatchRegion returns the inclusive site rectangle of patch i.
func (l Layout) PatchRegion(i int) (r0, c0, r1, c1 int) {
	if i < 0 || i >= l.patches {
		panic(fmt.Sprintf("compiler: patch %d outside layout of %d", i, l.patches))
	}
	c0 = i * 2 * l.Distance
	return 0, c0, l.Lat.Rows - 1, c0 + 2*l.Distance - 2
}

// PatchQubits returns all physical qubits of patch i.
func (l Layout) PatchQubits(i int) []int {
	r0, c0, r1, c1 := l.PatchRegion(i)
	var out []int
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			out = append(out, l.Lat.Index(r, c))
		}
	}
	return out
}

// PatchDataQubits returns the data qubits of patch i — the support of
// transverse logical instructions.
func (l Layout) PatchDataQubits(i int) []int {
	var out []int
	for _, q := range l.PatchQubits(i) {
		if l.Lat.RoleOf(q) == surface.RoleData {
			out = append(out, q)
		}
	}
	return out
}

// PatchLogicalZ returns the logical-Z support of patch i (top data row).
func (l Layout) PatchLogicalZ(i int) []int {
	_, c0, _, c1 := l.PatchRegion(i)
	var out []int
	for c := c0; c <= c1; c += 2 {
		out = append(out, l.Lat.Index(0, c))
	}
	return out
}

// PatchLogicalX returns the logical-X support of patch i (left data column).
func (l Layout) PatchLogicalX(i int) []int {
	r0, c0, r1, _ := l.PatchRegion(i)
	var out []int
	for r := r0; r <= r1; r += 2 {
		out = append(out, l.Lat.Index(r, c0))
	}
	return out
}

// TransverseOp maps a transverse logical opcode to the physical µop applied
// across the patch's data qubits.
func TransverseOp(op isa.LogicalOpcode) (isa.Opcode, error) {
	switch op {
	case isa.LPrep0:
		return isa.OpPrep0, nil
	case isa.LPrepPlus:
		return isa.OpPrepPlus, nil
	case isa.LMeasZ:
		return isa.OpMeasZ, nil
	case isa.LMeasX:
		return isa.OpMeasX, nil
	case isa.LX:
		return isa.OpX, nil
	case isa.LZ:
		return isa.OpZ, nil
	case isa.LH:
		return isa.OpH, nil
	case isa.LS:
		return isa.OpS, nil
	case isa.LT:
		return isa.OpT, nil
	}
	return 0, fmt.Errorf("compiler: %s is not a transverse instruction", op)
}

// ExpandTransverse returns the physical µop overlay of one transverse
// logical instruction on the layout: the µop applied to every data qubit of
// the target patch.
func ExpandTransverse(l Layout, in isa.LogicalInstr) ([]isa.MicroOp, error) {
	op, err := TransverseOp(in.Op)
	if err != nil {
		return nil, err
	}
	if int(in.Target) >= l.NumPatches() {
		return nil, fmt.Errorf("compiler: instruction targets patch %d outside tile of %d", in.Target, l.NumPatches())
	}
	data := l.PatchDataQubits(int(in.Target))
	out := make([]isa.MicroOp, len(data))
	for i, q := range data {
		out[i] = isa.MicroOp{Op: op, Qubit: q, Pair: -1}
	}
	return out, nil
}

// BraidForCNOT returns the mask-instruction walk realizing a logical CNOT
// between two patches: the control patch's boundary extends along the gap
// column toward the target patch and retracts (Figure 12c). The path stays
// on the gap columns so it never collides with either patch.
func BraidForCNOT(l Layout, ctrl, tgt int) []surface.BraidStep {
	if ctrl == tgt || ctrl < 0 || tgt < 0 || ctrl >= l.patches || tgt >= l.patches {
		panic(fmt.Sprintf("compiler: invalid CNOT patches %d,%d", ctrl, tgt))
	}
	_, cc0, _, cc1 := l.PatchRegion(ctrl)
	_, tc0, _, tc1 := l.PatchRegion(tgt)
	row := l.Lat.Rows / 2
	// Walk along the middle row from the control patch's edge to the target
	// patch's near edge, then back.
	var from, to int
	if ctrl < tgt {
		from, to = cc1+1, tc0-1
	} else {
		from, to = cc0-1, tc1+1
	}
	var out []surface.BraidStep
	step := 1
	if to < from {
		step = -1
	}
	for c := from; c != to+step; c += step {
		out = append(out, surface.BraidStep{Grow: true, R: row, C: c})
	}
	for i := len(out) - 1; i >= 0; i-- {
		out = append(out, surface.BraidStep{Grow: false, R: out[i].R, C: out[i].C})
	}
	return out
}

// StreamCosts tallies the global-bus cost of a program under the two
// compilation targets for one tile: baseline bytes ship every physical µop
// (QECC rounds plus expanded logical overlays) at one byte each; QuEST bytes
// ship the 2-byte logical instructions plus one sync token per instruction
// group.
type StreamCosts struct {
	BaselineBytes uint64
	QuESTBytes    uint64
	Cycles        int
}

// CostProgram computes stream costs for running the program on the layout
// with the given schedule: one QECC cycle per logical instruction (each
// instruction occupies its patch for a cycle; braids take one cycle per
// step).
func CostProgram(l Layout, sched surface.Schedule, p *Program) (StreamCosts, error) {
	if err := p.Validate(); err != nil {
		return StreamCosts{}, err
	}
	n := l.Lat.NumQubits()
	var c StreamCosts
	for _, in := range p.Instrs {
		cycles := 1
		overlay := 0
		switch {
		case in.Op == isa.LCNOT:
			cycles = len(BraidForCNOT(l, int(in.Target), int(in.Arg)))
			if cycles == 0 {
				cycles = 1
			}
		case in.Op.IsTransverse():
			overlay = len(l.PatchDataQubits(int(in.Target)))
		}
		// Baseline: every sub-cycle µop for every qubit crosses the bus.
		c.BaselineBytes += uint64(cycles * n * sched.Depth)
		c.BaselineBytes += uint64(overlay)
		// QuEST: the logical instruction plus a sync token.
		c.QuESTBytes += 2 * isa.LogicalInstrBytes
		c.Cycles += cycles
	}
	return c, nil
}

// Append concatenates another program over the same register, returning the
// receiver for chaining.
func (p *Program) Append(other *Program) *Program {
	if other.NumLogical > p.NumLogical {
		panic(fmt.Sprintf("compiler: appending %d-qubit program onto %d-qubit register",
			other.NumLogical, p.NumLogical))
	}
	p.Instrs = append(p.Instrs, other.Instrs...)
	return p
}

// Repeat appends n-1 additional copies of the current instruction sequence
// (so the program runs n times total). n must be positive.
func (p *Program) Repeat(n int) *Program {
	if n < 1 {
		panic(fmt.Sprintf("compiler: repeat count %d < 1", n))
	}
	body := append([]isa.LogicalInstr(nil), p.Instrs...)
	for i := 1; i < n; i++ {
		p.Instrs = append(p.Instrs, body...)
	}
	return p
}

// Stats is a program's opcode histogram plus headline counts.
type Stats struct {
	ByOpcode map[isa.LogicalOpcode]int
	Total    int
	TCount   int
	CNOTs    int
	// TFraction is the share of T gates — the workload-profile quantity.
	TFraction float64
}

// Stats computes the histogram.
func (p *Program) Stats() Stats {
	s := Stats{ByOpcode: make(map[isa.LogicalOpcode]int)}
	for _, in := range p.Instrs {
		s.ByOpcode[in.Op]++
		s.Total++
	}
	s.TCount = s.ByOpcode[isa.LT]
	s.CNOTs = s.ByOpcode[isa.LCNOT]
	if s.Total > 0 {
		s.TFraction = float64(s.TCount) / float64(s.Total)
	}
	return s
}
