package compiler

import (
	"testing"

	"quest/internal/isa"
	"quest/internal/surface"
)

func TestProgramBuilder(t *testing.T) {
	p := NewProgram(4)
	p.Prep0(0).PrepPlus(1).H(0).CNOT(0, 1).T(2).S(3).X(0).Z(1).MeasZ(0).MeasX(1)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if len(p.Instrs) != 10 {
		t.Errorf("program length = %d", len(p.Instrs))
	}
	if p.TCount() != 1 {
		t.Errorf("T count = %d", p.TCount())
	}
}

func TestProgramPanics(t *testing.T) {
	expect := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expect("register too big", func() { NewProgram(100) })
	expect("register empty", func() { NewProgram(0) })
	p := NewProgram(2)
	expect("qubit out of range", func() { p.H(5) })
	expect("self CNOT", func() { p.CNOT(1, 1) })
	expect("bad eps", func() { p.DecomposeRz(0, 1.0, 0) })
	expect("bad eps count", func() { RzTCount(2) })
}

func TestValidateCatchesCorruptPrograms(t *testing.T) {
	p := NewProgram(2)
	p.H(0)
	p.Instrs = append(p.Instrs, isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 9})
	if err := p.Validate(); err == nil {
		t.Error("CNOT arg outside register accepted")
	}
	p2 := NewProgram(2)
	p2.Instrs = append(p2.Instrs, isa.LogicalInstr{Op: isa.LogicalOpcode(60), Target: 0})
	if err := p2.Validate(); err == nil {
		t.Error("invalid opcode accepted")
	}
	p3 := NewProgram(2)
	p3.Instrs = append(p3.Instrs, isa.LogicalInstr{Op: isa.LH, Target: 7})
	if err := p3.Validate(); err == nil {
		t.Error("target outside register accepted")
	}
}

func TestDecomposeRzShape(t *testing.T) {
	p := NewProgram(1)
	eps := 1e-6
	p.DecomposeRz(0, 1.234, eps)
	want := RzTCount(eps)
	if p.TCount() != want {
		t.Errorf("T count = %d, want %d (≈3·log2(1/eps))", p.TCount(), want)
	}
	if want < 55 || want > 65 {
		t.Errorf("RzTCount(1e-6) = %d, want ≈60", want)
	}
	// Deterministic: same angle, same sequence.
	q := NewProgram(1)
	q.DecomposeRz(0, 1.234, eps)
	if len(p.Instrs) != len(q.Instrs) {
		t.Fatal("recompilation changed length")
	}
	for i := range p.Instrs {
		if p.Instrs[i] != q.Instrs[i] {
			t.Fatalf("instruction %d differs between compilations", i)
		}
	}
	// Different angles give different sequences.
	r := NewProgram(1)
	r.DecomposeRz(0, 2.468, eps)
	same := true
	for i := range p.Instrs {
		if p.Instrs[i] != r.Instrs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different angles produced identical sequences")
	}
}

func TestLayoutGeometry(t *testing.T) {
	l := NewLayout(3, 4)
	if l.NumPatches() != 4 {
		t.Fatalf("patches = %d", l.NumPatches())
	}
	if l.Lat.Rows != 5 || l.Lat.Cols != 23 {
		t.Errorf("lattice = %dx%d, want 5x23", l.Lat.Rows, l.Lat.Cols)
	}
	// Patches must not overlap and must preserve the role pattern.
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		for _, q := range l.PatchQubits(i) {
			if prev, ok := seen[q]; ok {
				t.Fatalf("qubit %d in patches %d and %d", q, prev, i)
			}
			seen[q] = i
		}
		data := l.PatchDataQubits(i)
		if len(data) != 13 {
			t.Errorf("patch %d: %d data qubits, want 13 (d=3)", i, len(data))
		}
		if got := len(l.PatchLogicalZ(i)); got != 3 {
			t.Errorf("patch %d: logical Z weight %d, want 3", i, got)
		}
	}
	// Each patch is a translated copy: role at same offset must match.
	r00, c00, _, _ := l.PatchRegion(0)
	r10, c10, _, _ := l.PatchRegion(1)
	for dr := 0; dr < 5; dr++ {
		for dc := 0; dc < 5; dc++ {
			if l.Lat.RoleAt(r00+dr, c00+dc) != l.Lat.RoleAt(r10+dr, c10+dc) {
				t.Fatalf("role pattern broken at offset (%d,%d)", dr, dc)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("patch index out of range accepted")
		}
	}()
	l.PatchRegion(9)
}

func TestTransverseExpansion(t *testing.T) {
	l := NewLayout(3, 2)
	ops, err := ExpandTransverse(l, isa.LogicalInstr{Op: isa.LH, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 13 {
		t.Fatalf("overlay size = %d, want 13", len(ops))
	}
	dataSet := map[int]bool{}
	for _, q := range l.PatchDataQubits(1) {
		dataSet[q] = true
	}
	for _, m := range ops {
		if m.Op != isa.OpH {
			t.Errorf("overlay op = %s", m.Op)
		}
		if !dataSet[m.Qubit] {
			t.Errorf("overlay hit qubit %d outside patch 1 data", m.Qubit)
		}
	}
	if _, err := ExpandTransverse(l, isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 1}); err == nil {
		t.Error("CNOT expanded transversally")
	}
	if _, err := ExpandTransverse(l, isa.LogicalInstr{Op: isa.LH, Target: 9}); err == nil {
		t.Error("patch out of range accepted")
	}
}

func TestTransverseOpCoverage(t *testing.T) {
	for op := isa.LogicalOpcode(0); op.Valid(); op++ {
		phys, err := TransverseOp(op)
		if op.IsTransverse() {
			if err != nil {
				t.Errorf("%s: transverse op unmapped: %v", op, err)
			}
			if !phys.Valid() {
				t.Errorf("%s maps to invalid opcode", op)
			}
		} else if err == nil {
			t.Errorf("%s: non-transverse op mapped", op)
		}
	}
}

func TestBraidForCNOT(t *testing.T) {
	l := NewLayout(3, 3)
	steps := BraidForCNOT(l, 0, 2)
	if len(steps) == 0 || len(steps)%2 != 0 {
		t.Fatalf("braid length %d", len(steps))
	}
	// Apply to a mask: path must not collide with patches, and must restore.
	m := surface.NewMask(l.Lat)
	for _, s := range steps {
		if err := surface.ApplyBraidStep(m, s); err != nil {
			t.Fatalf("braid step: %v", err)
		}
	}
	if m.DisabledCount() != 0 {
		t.Error("braid did not restore mask")
	}
	// Reverse direction works too.
	rev := BraidForCNOT(l, 2, 0)
	if len(rev) != len(steps) {
		t.Errorf("reverse braid length %d != %d", len(rev), len(steps))
	}
	m2 := surface.NewMask(l.Lat)
	for _, s := range rev {
		if err := surface.ApplyBraidStep(m2, s); err != nil {
			t.Fatalf("reverse braid step: %v", err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("self braid accepted")
		}
	}()
	BraidForCNOT(l, 1, 1)
}

func TestCostProgramOrdersOfMagnitude(t *testing.T) {
	l := NewLayout(3, 4)
	p := NewProgram(4)
	for i := 0; i < 50; i++ {
		p.H(i % 4)
		p.T(i % 4)
		p.CNOT(i%4, (i+1)%4)
	}
	c, err := CostProgram(l, surface.Steane, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.BaselineBytes <= c.QuESTBytes {
		t.Fatalf("baseline %d not above QuEST %d", c.BaselineBytes, c.QuESTBytes)
	}
	// Even a tiny 4-patch tile should show ≥100× stream inflation.
	if ratio := float64(c.BaselineBytes) / float64(c.QuESTBytes); ratio < 100 {
		t.Errorf("baseline/QuEST = %.0f, want ≥100 on a 4-patch tile", ratio)
	}
	if c.Cycles <= 150 {
		t.Errorf("cycles = %d, want > instruction count (braids are multi-cycle)", c.Cycles)
	}
	// Invalid program surfaces an error, not a panic.
	bad := NewProgram(4)
	bad.Instrs = append(bad.Instrs, isa.LogicalInstr{Op: isa.LH, Target: 20})
	if _, err := CostProgram(l, surface.Steane, bad); err == nil {
		t.Error("invalid program costed")
	}
}

func TestAppendAndRepeat(t *testing.T) {
	a := NewProgram(3)
	a.Prep0(0).H(0)
	b := NewProgram(2)
	b.X(1)
	a.Append(b)
	if len(a.Instrs) != 3 || a.Instrs[2].Op != isa.LX {
		t.Fatalf("append failed: %v", a.Instrs)
	}
	a.Repeat(3)
	if len(a.Instrs) != 9 {
		t.Fatalf("repeat length = %d, want 9", len(a.Instrs))
	}
	if a.Instrs[3] != a.Instrs[0] || a.Instrs[8] != a.Instrs[2] {
		t.Error("repeat did not copy the body")
	}
	expect := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expect("append larger register", func() { NewProgram(2).Append(NewProgram(5)) })
	expect("repeat zero", func() { NewProgram(2).Repeat(0) })
}

func TestStatsHistogram(t *testing.T) {
	p := NewProgram(4)
	p.Prep0(0).T(1).T(2).CNOT(0, 1).H(3).MeasZ(0)
	s := p.Stats()
	if s.Total != 6 || s.TCount != 2 || s.CNOTs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TFraction != 2.0/6 {
		t.Errorf("T fraction = %v", s.TFraction)
	}
	if s.ByOpcode[isa.LH] != 1 || s.ByOpcode[isa.LPrep0] != 1 {
		t.Error("histogram wrong")
	}
	empty := NewProgram(1).Stats()
	if empty.TFraction != 0 || empty.Total != 0 {
		t.Error("empty stats wrong")
	}
}
