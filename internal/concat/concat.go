// Package concat implements the paper's §9 extension: QuEST with
// concatenated codes, where the first level (inner code) is handled by the
// MCE microcode and the higher-level (outer code) concatenations are handled
// by software. The inner code here is the surface code the rest of the
// repository implements; the outer code is the [[7,1,3]] Steane code applied
// recursively.
//
// The package models the instruction economics of that split: outer-code
// syndrome extraction is an ordinary *logical* circuit over inner logical
// qubits, so it rides the master→MCE bus as 2-byte logical instructions
// (and, having deterministic control flow, it is cacheable exactly like the
// distillation loops) — while the inner code's physical QECC never leaves
// the MCE.
package concat

import (
	"fmt"
	"math"

	"quest/internal/isa"
)

// Steane [[7,1,3]] code parameters.
const (
	// BlockSize is the number of inner logical qubits per outer level.
	BlockSize = 7
	// stabilizers per block: 3 X-type and 3 Z-type, weight 4 each.
	numStabilizers   = 6
	stabilizerWeight = 4
)

// steaneStabilizers lists the qubit supports of the six [[7,1,3]]
// generators (the Hamming-code parity checks), reused for both X and Z type.
var steaneStabilizers = [3][stabilizerWeight]int{
	{0, 2, 4, 6},
	{1, 2, 5, 6},
	{3, 4, 5, 6},
}

// Scheme is a concatenation scheme: Levels outer Steane levels over the
// microcode-managed inner surface code.
type Scheme struct {
	// Levels is the number of outer concatenation levels (0 = plain QuEST).
	Levels int
	// InnerErrorRate is the logical error rate per round the inner surface
	// code delivers (the input to the outer recursion).
	InnerErrorRate float64
}

// Validate checks the scheme is usable.
func (s Scheme) Validate() error {
	if s.Levels < 0 || s.Levels > 8 {
		return fmt.Errorf("concat: levels %d outside [0,8]", s.Levels)
	}
	if s.InnerErrorRate <= 0 || s.InnerErrorRate >= 1 {
		return fmt.Errorf("concat: inner error rate %v outside (0,1)", s.InnerErrorRate)
	}
	return nil
}

// InnerQubitsPerLogical returns how many inner (surface-code) logical qubits
// one top-level logical qubit consumes: 7^Levels.
func (s Scheme) InnerQubitsPerLogical() int {
	n := 1
	for i := 0; i < s.Levels; i++ {
		n *= BlockSize
	}
	return n
}

// steaneThreshold is the concatenation threshold constant: one level maps
// p → C·p², so error suppression is doubly exponential below 1/C.
const steaneThreshold = 1.0 / 2.5e-2 // C = 40

// LogicalErrorRate returns the top-level logical error rate after the outer
// recursion.
func (s Scheme) LogicalErrorRate() float64 {
	p := s.InnerErrorRate
	for i := 0; i < s.Levels; i++ {
		p = p * p * steaneThreshold
		if p > 1 {
			p = 1
		}
	}
	return p
}

// ECGadget generates the deterministic logical instruction sequence of one
// outer-level Steane error-correction round on one block: for each of the
// six stabilizers, prepare an ancilla block qubit, four CNOTs into/out of
// the support, and measure. Qubits 0..6 are the data block; qubit 7 is the
// ancilla. Like the distillation loops, this sequence has deterministic
// control flow and lives happily in the MCE's logical instruction cache.
func ECGadget() []isa.LogicalInstr {
	const ancilla = BlockSize
	var prog []isa.LogicalInstr
	emit := func(op isa.LogicalOpcode, target, arg uint8) {
		prog = append(prog, isa.LogicalInstr{Op: op, Target: target, Arg: arg})
	}
	// Z-type checks: ancilla |0>, data-controlled CNOTs, measure Z.
	for _, stab := range steaneStabilizers {
		emit(isa.LPrep0, ancilla, 0)
		for _, q := range stab {
			emit(isa.LCNOT, uint8(q), ancilla)
		}
		emit(isa.LMeasZ, ancilla, 0)
	}
	// X-type checks: ancilla |+>, ancilla-controlled CNOTs, measure X.
	for _, stab := range steaneStabilizers {
		emit(isa.LPrepPlus, ancilla, 0)
		for _, q := range stab {
			emit(isa.LCNOT, ancilla, uint8(q))
		}
		emit(isa.LMeasX, ancilla, 0)
	}
	return prog
}

// ECGadgetInstrs is the length of one outer EC round's instruction sequence.
var ECGadgetInstrs = len(ECGadget())

// OuterInstrsPerRound returns the logical instructions one top-level qubit's
// outer correction costs per outer round: every level-k block of its tree
// runs the EC gadget, and a level-k gadget instruction is itself expanded
// into level-(k-1) blocks' worth of instructions... but only the *bottom*
// outer level issues instructions over the bus — higher levels' transversal
// gates fan out within software before dispatch. The bus traffic per round
// is therefore gadget length × number of bottom-level blocks.
func (s Scheme) OuterInstrsPerRound() int {
	if s.Levels == 0 {
		return 0
	}
	blocks := 1
	for i := 0; i < s.Levels-1; i++ {
		blocks *= BlockSize
	}
	// Each level contributes its own gadget sweep over its blocks: level k
	// has 7^(k-1) blocks.
	total := 0
	b := blocks
	for lvl := s.Levels; lvl >= 1; lvl-- {
		total += b * ECGadgetInstrs
		b /= BlockSize
	}
	return total
}

// BusBytesPerRound returns the master→MCE bytes per outer round per
// top-level logical qubit, uncached and with the EC gadget cached (one
// LCacheRun token per block replay).
func (s Scheme) BusBytesPerRound() (uncached, cached int) {
	instrs := s.OuterInstrsPerRound()
	uncached = instrs * isa.LogicalInstrBytes
	if instrs == 0 {
		return 0, 0
	}
	replays := instrs / ECGadgetInstrs
	cached = replays * isa.LogicalInstrBytes
	return uncached, cached
}

// SoftwareInnerBytesPerRound returns what the same round would cost if the
// *inner* code were also software-managed: every inner logical qubit's
// physical QECC µops cross the bus. innerPhysPerLogical is the physical
// qubit count per inner logical qubit (12.5·d²) and depth the QECC schedule
// depth; roundsPerOuter is how many inner rounds one outer round spans.
func (s Scheme) SoftwareInnerBytesPerRound(innerPhysPerLogical, depth, roundsPerOuter int) float64 {
	inner := float64(s.InnerQubitsPerLogical())
	return inner * float64(innerPhysPerLogical) * float64(depth) * float64(roundsPerOuter)
}

// Savings returns the bus-traffic reduction of the paper's split (inner in
// microcode, outer in software, cached) against full software management.
func (s Scheme) Savings(innerPhysPerLogical, depth, roundsPerOuter int) float64 {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	sw := s.SoftwareInnerBytesPerRound(innerPhysPerLogical, depth, roundsPerOuter)
	uncached, cached := s.BusBytesPerRound()
	hw := float64(cached)
	if s.Levels == 0 {
		// Plain QuEST: only sync-level traffic remains; normalize to one
		// token per round so the ratio stays finite.
		hw = float64(isa.LogicalInstrBytes)
	}
	_ = uncached
	return (sw + float64(uncached)) / (hw + math.SmallestNonzeroFloat64)
}
