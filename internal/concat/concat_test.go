package concat

import (
	"testing"

	"quest/internal/isa"
)

func TestSchemeValidate(t *testing.T) {
	if err := (Scheme{Levels: 2, InnerErrorRate: 1e-6}).Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	bad := []Scheme{
		{Levels: -1, InnerErrorRate: 1e-6},
		{Levels: 9, InnerErrorRate: 1e-6},
		{Levels: 1, InnerErrorRate: 0},
		{Levels: 1, InnerErrorRate: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestInnerQubitGrowth(t *testing.T) {
	for levels, want := range map[int]int{0: 1, 1: 7, 2: 49, 3: 343} {
		s := Scheme{Levels: levels, InnerErrorRate: 1e-6}
		if got := s.InnerQubitsPerLogical(); got != want {
			t.Errorf("levels %d: inner qubits = %d, want %d", levels, got, want)
		}
	}
}

func TestErrorSuppressionDoublyExponential(t *testing.T) {
	p := 1e-6
	prev := p
	for levels := 1; levels <= 3; levels++ {
		s := Scheme{Levels: levels, InnerErrorRate: p}
		got := s.LogicalErrorRate()
		if got >= prev {
			t.Fatalf("level %d: rate %v not below previous %v", levels, got, prev)
		}
		// Each level squares the error (times the constant).
		want := prev * prev * steaneThreshold
		if got != want {
			t.Errorf("level %d: rate %v, want %v", levels, got, want)
		}
		prev = got
	}
	// Above threshold the recursion saturates instead of exploding.
	hot := Scheme{Levels: 4, InnerErrorRate: 0.5}
	if got := hot.LogicalErrorRate(); got != 1 {
		t.Errorf("above-threshold rate = %v, want saturation at 1", got)
	}
}

func TestECGadgetShape(t *testing.T) {
	prog := ECGadget()
	if len(prog) != ECGadgetInstrs {
		t.Fatal("ECGadgetInstrs stale")
	}
	// 6 stabilizers × (prep + 4 CNOTs + measure) = 36 instructions.
	if len(prog) != numStabilizers*(2+stabilizerWeight) {
		t.Fatalf("gadget length = %d", len(prog))
	}
	counts := map[isa.LogicalOpcode]int{}
	for _, in := range prog {
		counts[in.Op]++
		if int(in.Target) > BlockSize || int(in.Arg) > BlockSize {
			t.Fatalf("instruction %v outside block", in)
		}
	}
	if counts[isa.LCNOT] != numStabilizers*stabilizerWeight {
		t.Errorf("CNOTs = %d", counts[isa.LCNOT])
	}
	if counts[isa.LMeasZ] != 3 || counts[isa.LMeasX] != 3 {
		t.Errorf("measurements = %d/%d", counts[isa.LMeasZ], counts[isa.LMeasX])
	}
	// Deterministic (cacheable).
	again := ECGadget()
	for i := range prog {
		if prog[i] != again[i] {
			t.Fatal("gadget not deterministic")
		}
	}
	// Every stabilizer weight is 4 and supports overlap pairwise evenly
	// (CSS commutation).
	for i, a := range steaneStabilizers {
		for j, b := range steaneStabilizers {
			if i == j {
				continue
			}
			overlap := 0
			for _, qa := range a {
				for _, qb := range b {
					if qa == qb {
						overlap++
					}
				}
			}
			if overlap%2 != 0 {
				t.Errorf("stabilizers %d,%d overlap %d (odd)", i, j, overlap)
			}
		}
	}
}

func TestOuterInstrScaling(t *testing.T) {
	p := 1e-6
	if got := (Scheme{Levels: 0, InnerErrorRate: p}).OuterInstrsPerRound(); got != 0 {
		t.Errorf("level 0 outer instrs = %d", got)
	}
	l1 := (Scheme{Levels: 1, InnerErrorRate: p}).OuterInstrsPerRound()
	if l1 != ECGadgetInstrs {
		t.Errorf("level 1 = %d, want one gadget (%d)", l1, ECGadgetInstrs)
	}
	l2 := (Scheme{Levels: 2, InnerErrorRate: p}).OuterInstrsPerRound()
	// Level 2: 7 level-1 blocks + 1 level-2 block = 8 gadgets.
	if l2 != 8*ECGadgetInstrs {
		t.Errorf("level 2 = %d, want %d", l2, 8*ECGadgetInstrs)
	}
}

func TestCachingCollapsesOuterTraffic(t *testing.T) {
	s := Scheme{Levels: 2, InnerErrorRate: 1e-6}
	uncached, cached := s.BusBytesPerRound()
	if uncached <= cached {
		t.Fatalf("caching did not help: %d vs %d", uncached, cached)
	}
	if ratio := float64(uncached) / float64(cached); ratio < float64(ECGadgetInstrs)-1 {
		t.Errorf("cache compression %.1fx, want ≈ gadget length %d", ratio, ECGadgetInstrs)
	}
	z0, z0c := (Scheme{Levels: 0, InnerErrorRate: 1e-6}).BusBytesPerRound()
	if z0 != 0 || z0c != 0 {
		t.Errorf("level 0 traffic = %d/%d", z0, z0c)
	}
}

func TestHybridSavingsStayLarge(t *testing.T) {
	// Even with two outer levels of software-managed correction, keeping
	// the inner code in microcode preserves multiple orders of magnitude:
	// the inner physical stream dwarfs the outer logical stream.
	innerPhys := 2112 // 12.5·d² at d=13
	for levels := 0; levels <= 3; levels++ {
		s := Scheme{Levels: levels, InnerErrorRate: 1e-9}
		savings := s.Savings(innerPhys, 9, 13)
		if savings < 1e3 {
			t.Errorf("levels %d: hybrid savings %.0f below 10³", levels, savings)
		}
	}
	// More levels cost more outer traffic: savings must decline.
	s1 := Scheme{Levels: 1, InnerErrorRate: 1e-9}.Savings(innerPhys, 9, 13)
	s3 := Scheme{Levels: 3, InnerErrorRate: 1e-9}.Savings(innerPhys, 9, 13)
	if s3 >= s1 {
		t.Errorf("savings did not decline with levels: %v vs %v", s1, s3)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid scheme accepted")
		}
	}()
	Scheme{Levels: -1, InnerErrorRate: 1e-9}.Savings(100, 9, 13)
}
