package concat_test

import (
	"fmt"

	"quest/internal/concat"
)

// ExampleScheme evaluates the §9 hybrid: microcode-managed inner surface
// code under two software-managed outer Steane levels.
func ExampleScheme() {
	s := concat.Scheme{Levels: 2, InnerErrorRate: 1e-9}
	fmt.Println("inner logical qubits per top-level qubit:", s.InnerQubitsPerLogical())
	fmt.Printf("top-level error rate: %.1e\n", s.LogicalErrorRate())
	uncached, cached := s.BusBytesPerRound()
	fmt.Println("outer EC bus bytes/round:", uncached, "uncached,", cached, "cached")
	// Output:
	// inner logical qubits per top-level qubit: 49
	// top-level error rate: 6.4e-32
	// outer EC bus bytes/round: 576 uncached, 16 cached
}
