package core

import (
	"fmt"
	"sync"

	"quest/internal/clifford"
	"quest/internal/decoder"
	"quest/internal/heatmap"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/tracing"
)

// This file is the batched counterpart of logicalFailRateObserved: the same
// windowed-decode memory experiment, restructured so that per-trial setup is
// compiled once per cell and the per-trial fault state is bit-sliced across a
// 64-trial lane.
//
// The scalar engine re-simulates the full stabilizer tableau every trial.
// But after the first (discarded) clean extraction cycle projects the state,
// every subsequent ancilla measurement outcome is deterministic: Pauli faults
// flip outcomes without introducing randomness, the clean-syndrome reference
// is identical every trial, and the logical-Z readout of the zero-fault state
// is always +1. The trial outcome is therefore a pure function of the
// injector's fault stream: Fail iff the X-fault parity on the logical-Z
// support disagrees with the decoder frame's X-parity there. That lets the
// batched engine replace the tableau with Pauli-frame fault propagation
// through the precompiled extraction program — replaying the scalar
// injector's RNG draws site by site (noise.Replayer) so the fault pattern,
// defect stream, decode, ledger bytes and heat JSON stay byte-identical to
// the scalar oracle (pinned by TestThresholdBatchedMatchesScalar).

// thresholdProgram is the once-per-distance precompute of a threshold cell:
// the lattice, the extraction program, the logical-Z support and the ancilla
// scan order. It is independent of the physical error rate, so cells of one
// distance share it across the whole sweep.
type thresholdProgram struct {
	lat  surface.Lattice
	d    int
	prog *surface.ExtractionProgram
	logZ []int
	anc  []batchAncilla
	pool sync.Pool // *batchScratch
}

// batchAncilla caches an ancilla's coordinates and type for defect emission
// in qubit-index order — the order SyndromeHistory.Absorb scans, which the
// ledger/heat byte-equality with the scalar engine depends on.
type batchAncilla struct {
	q, r, c int
	isX     bool
}

// thresholdPrograms caches compiled cells by distance.
var thresholdPrograms sync.Map // int -> *thresholdProgram

func thresholdProgramFor(d int) *thresholdProgram {
	if v, ok := thresholdPrograms.Load(d); ok {
		return v.(*thresholdProgram)
	}
	lat := surface.NewPlanar(d)
	tp := &thresholdProgram{
		lat:  lat,
		d:    d,
		prog: surface.BuildProgram(lat, surface.CompileCycle(lat, surface.Steane, nil)),
		logZ: lat.LogicalZ(),
	}
	for q := 0; q < lat.NumQubits(); q++ {
		role := lat.RoleOf(q)
		if role == surface.RoleData {
			continue
		}
		r, c := lat.Coord(q)
		tp.anc = append(tp.anc, batchAncilla{q: q, r: r, c: c, isX: role == surface.RoleAncillaX})
	}
	tp.pool.New = func() any { return newBatchScratch(tp) }
	v, _ := thresholdPrograms.LoadOrStore(d, tp)
	return v.(*thresholdProgram)
}

// batchScratch is the pooled lane state: dense fault lanes indexed by
// (cycle, word, qubit), the live Pauli-frame lanes, the per-round ancilla
// outcome-flip lanes, and the per-trial decoder scratch (window + matcher +
// frame) that the scalar engine reallocated every trial. One scratch serves
// one lane at a time; the pool hands it back to whichever worker claims the
// next lane.
type batchScratch struct {
	faultX, faultZ []uint64 // (cycle*depth+word)*n + q: faults injected in that word
	measFlip       []uint64 // cycle*n + q: classical measurement flips
	dirty          []bool   // cycle*depth + word: any fault lane set there
	fx, fz         []uint64 // live fault frame, one lane per qubit
	flips          []uint64 // round*n + q: ancilla outcome-flip lanes, rounds 0..d+1
	defects        []decoder.Defect
	frame          *decoder.PauliFrame
	win            *decoder.WindowDecoder
	rep            *noise.Replayer
}

func newBatchScratch(tp *thresholdProgram) *batchScratch {
	depth := len(tp.prog.Words)
	n := tp.prog.NumQubits
	d := tp.d
	return &batchScratch{
		faultX:   make([]uint64, d*depth*n),
		faultZ:   make([]uint64, d*depth*n),
		measFlip: make([]uint64, d*n),
		dirty:    make([]bool, d*depth),
		fx:       make([]uint64, n),
		fz:       make([]uint64, n),
		flips:    make([]uint64, (d+2)*n),
		frame:    decoder.NewPauliFrame(),
		win:      decoder.NewWindowDecoder(decoder.NewGlobalDecoder(tp.lat), d),
		rep:      noise.NewReplayer(noise.Model{}, 1),
	}
}

// addFault XORs a sampled Pauli into trial bit's fault lanes at (base, q).
func (s *batchScratch) addFault(base, q int, p clifford.Pauli, bit uint64) {
	if p == clifford.PauliX || p == clifford.PauliY {
		s.faultX[base+q] ^= bit
	}
	if p == clifford.PauliZ || p == clifford.PauliY {
		s.faultZ[base+q] ^= bit
	}
}

// runLane executes one lane of trials: sample every trial's fault stream by
// exact injector-RNG replay, propagate all lanes through the extraction
// program with word ops, then decode each trial against the pooled window
// decoder. out[i] receives trial seeds[i]'s outcome.
func (tp *thresholdProgram) runLane(p float64, seeds []uint64, ctx mc.BatchCtx, out []mc.Outcome) {
	s := tp.pool.Get().(*batchScratch)
	defer tp.pool.Put(s)
	depth := len(tp.prog.Words)
	n := tp.prog.NumQubits
	d := tp.d
	model := noise.Uniform(p)

	for i := range s.faultX {
		s.faultX[i] = 0
		s.faultZ[i] = 0
	}
	for i := range s.measFlip {
		s.measFlip[i] = 0
	}
	for i := range s.dirty {
		s.dirty[i] = false
	}

	// Phase 1: per-trial fault sampling. The RNG replay is inherently
	// sequential per trial (each draw's position depends on the previous
	// draws), but it touches no tableau: every site is one Float64 compare,
	// and a fault is a single XOR into the trial's bit lane. The scalar
	// engine's injector draws only during the d noisy cycles — the clean
	// reference and final readout cycles draw nothing — so the replay
	// walks exactly those cycles.
	for i, seed := range seeds {
		s.rep.Reset(model, int64(mc.Derive(seed, 1)))
		bit := uint64(1) << uint(i)
		for c := 0; c < d; c++ {
			for w := range tp.prog.Words {
				base := (c*depth + w) * n
				for _, site := range tp.prog.Words[w].Sites {
					switch site.Kind {
					case surface.SiteIdle:
						if pl, ok := s.rep.Idle(); ok {
							s.addFault(base, site.Qubit, pl, bit)
							s.dirty[c*depth+w] = true
						}
					case surface.SitePrep:
						if pl, ok := s.rep.AfterPrep(site.BasisX); ok {
							s.addFault(base, site.Qubit, pl, bit)
							s.dirty[c*depth+w] = true
						}
					case surface.SiteGate2:
						if pa, pb, ok := s.rep.AfterGate2(); ok {
							s.addFault(base, site.Qubit, pa, bit)
							s.addFault(base, site.Pair, pb, bit)
							s.dirty[c*depth+w] = true
						}
					case surface.SiteMeas:
						if s.rep.FlipMeasurement() {
							s.measFlip[c*n+site.Qubit] ^= bit
						}
					}
				}
			}
		}
	}

	// Phase 2: bit-sliced propagation, all trials at once. Rounds 1..d are
	// the noisy cycles, round d+1 the final clean cycle that flushes
	// late data faults into the syndrome. Within a word the phase order
	// (measure, prep, propagate, inject) is equivalent to the AWG unit's
	// interleaved per-qubit execution because each qubit carries exactly
	// one µop per word — see ProgramWord.
	for i := range s.flips {
		s.flips[i] = 0
	}
	for i := range s.fx {
		s.fx[i] = 0
		s.fz[i] = 0
	}
	for r := 1; r <= d+1; r++ {
		noisy := r <= d
		cbase := (r - 1) * depth
		for w := range tp.prog.Words {
			word := &tp.prog.Words[w]
			for _, m := range word.Meas {
				flip := s.fx[m.Qubit]
				if m.IsX {
					flip = s.fz[m.Qubit]
				}
				if noisy {
					flip ^= s.measFlip[(r-1)*n+m.Qubit]
				}
				s.flips[r*n+m.Qubit] = flip
			}
			for _, pr := range word.Preps {
				s.fx[pr.Qubit] = 0
				s.fz[pr.Qubit] = 0
			}
			for _, g := range word.CNOTs {
				s.fx[g.Target] ^= s.fx[g.Control]
				s.fz[g.Control] ^= s.fz[g.Target]
			}
			if noisy && s.dirty[cbase+w] {
				base := (cbase + w) * n
				for q := 0; q < n; q++ {
					s.fx[q] ^= s.faultX[base+q]
					s.fz[q] ^= s.faultZ[base+q]
				}
			}
		}
	}

	// xp lane: X-fault parity over the logical-Z support at readout time.
	var xp uint64
	for _, q := range tp.logZ {
		xp ^= s.fx[q]
	}

	// Phase 3: per-trial windowed decode over the defect lanes, driving the
	// same WindowDecoder the scalar engine uses — Absorb per round, Flush at
	// the end — so matchings, corrections, instrument counts, tracer spans
	// and heat records replicate the scalar path exactly.
	var instr *decoder.Instr
	if ctx.Shard != nil {
		instr = decoder.NewInstr(ctx.Shard)
	}
	for i := range seeds {
		bit := uint64(1) << uint(i)
		var heat *heatmap.Collector
		if ctx.Heat != nil {
			heat = ctx.Heat[i]
		}
		s.win.Reset()
		s.frame.Reset()
		s.win.SetInstr(instr) // nil restores the default, like the scalar unwired path
		s.win.SetTracer(ctx.Trace, 0)
		s.win.SetHeat(heat)
		for r := 1; r <= d+1; r++ {
			defs := s.defects[:0]
			row, prev := r*n, (r-1)*n
			for _, a := range tp.anc {
				if (s.flips[row+a.q]^s.flips[prev+a.q])&bit != 0 {
					defs = append(defs, decoder.Defect{Round: r, Qubit: a.q, R: a.r, C: a.c, IsX: a.isX})
					if heat != nil {
						heat.Defect(a.r, a.c)
					}
				}
			}
			s.win.Absorb(defs, s.frame) // copies; defs backing store is reused
			s.defects = defs[:0]
		}
		s.win.Flush(s.frame)
		fail := (xp>>uint(i))&1 != uint64(s.frame.ParityOn(tp.logZ, true))
		out[i] = mc.Outcome{Fail: fail}
	}
}

// ThresholdBatched is ThresholdObserved on the batched engine: identical
// cells, seeds, observers, sharding and rows, ≥10× the trial throughput.
// The scalar ThresholdObserved stays in-tree as the cross-check oracle; the
// equivalence tests run both and compare Results, ledger bytes and heat
// JSON. The error reports a sharding or resume mismatch, as in the scalar
// entry point.
func ThresholdBatched(reg *metrics.Registry, tr *tracing.Tracer, rates []float64, distances []int,
	trials, workers int, obs SweepObs) ([]ThresholdRow, error) {
	var rows []ThresholdRow
	for _, p := range rates {
		for _, d := range distances {
			res, ran, err := logicalFailRateBatched(reg, tr, d, p, trials, workers, obs)
			if err != nil {
				return rows, err
			}
			if !ran {
				continue
			}
			rows = append(rows, ThresholdRow{
				PhysRate: p,
				Distance: d,
				FailRate: res.Rate,
				WilsonLo: res.WilsonLo,
				WilsonHi: res.WilsonHi,
				Trials:   res.Trials,
			})
		}
	}
	return rows, nil
}

// logicalFailRateBatched mirrors logicalFailRateObserved cell for cell: same
// cell seed, same cell name, same observer wiring — only the trial engine
// differs. Resume replays completed cells verbatim like the scalar path; a
// partially-recorded cell is re-executed from scratch (RunBatch claims
// whole 64-trial lanes, so a ragged prior prefix would split one), which
// costs time but not bytes — outcomes are pure functions of the seeds.
func logicalFailRateBatched(reg *metrics.Registry, tr *tracing.Tracer, d int, p float64,
	trials, workers int, obs SweepObs) (mc.Result, bool, error) {
	cell := mc.Seed(ExperimentSeed, mc.F64(p), uint64(d))
	name := fmt.Sprintf("threshold p=%g d=%d", p, d)
	plan, err := obs.beginCell(name, cell, trials)
	if err != nil {
		return mc.Result{}, true, err
	}
	if plan.skip {
		return mc.Result{}, false, nil
	}
	if plan.replayed != nil {
		return *plan.replayed, true, nil
	}
	tp := thresholdProgramFor(d)
	heat := obs.collector(tp.lat.Rows, tp.lat.Cols)
	mobs := obs.observers(name, heat)
	res := mc.RunBatch(trials, workers, cell, reg, tr, mobs,
		func(_ int, seeds []uint64, ctx mc.BatchCtx, out []mc.Outcome) {
			tp.runLane(p, seeds, ctx, out)
		})
	if err := obs.closeCell(name, map[string]float64{"p": p, "d": float64(d)}, cell, trials, res); err != nil {
		return res, true, err
	}
	return res, true, nil
}
