package core

import (
	"bytes"
	"reflect"
	"testing"

	"quest/internal/heatmap"
	"quest/internal/ledger"
	"quest/internal/metrics"
)

// thresholdSweep runs one sweep through either engine and returns the rows,
// the raw ledger bytes and the heatmap JSON.
func thresholdSweep(t *testing.T, batched bool, workers, trials int, ciWidth float64,
	rates []float64, distances []int) ([]ThresholdRow, []byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	lw, err := ledger.NewWriter(&buf, "threshold-batch-test", map[string]string{"suite": "batch_test"}, 1)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	heat := heatmap.NewSet()
	obs := SweepObs{Ledger: lw, Heat: heat, CIWidth: ciWidth}
	var rows []ThresholdRow
	var serr error
	if batched {
		rows, serr = ThresholdBatched(nil, nil, rates, distances, trials, workers, obs)
	} else {
		rows, serr = ThresholdObserved(nil, nil, rates, distances, trials, workers, obs)
	}
	if serr != nil {
		t.Fatalf("sweep: %v", serr)
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var hj bytes.Buffer
	if err := heat.WriteJSON(&hj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return rows, buf.Bytes(), hj.Bytes()
}

// TestThresholdBatchedMatchesScalar pins the batched engine's whole contract:
// for every cell, Result rows, ledger bytes and heat JSON are byte-identical
// to the scalar tableau oracle, across worker counts (including lane-count
// mismatches), trial counts that leave a ragged final 64-trial lane, and CI
// early stop. The scalar engine runs at workers=1 as the reference.
func TestThresholdBatchedMatchesScalar(t *testing.T) {
	rates := []float64{2e-3, 4e-3}
	for _, tc := range []struct {
		name     string
		trials   int
		ciWidth  float64
		distance int
	}{
		{"single-trial", 1, 0, 3},
		{"sub-lane", 7, 0, 3},
		{"full-lane", 64, 0, 3},
		{"ragged", 100, 0, 3},
		{"two-lanes-ragged", 130, 0, 3},
		{"ci-stop", 120, 0.15, 3},
		{"d5-ragged", 30, 0, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dists := []int{tc.distance}
			wantRows, wantLed, wantHeat := thresholdSweep(t, false, 1, tc.trials, tc.ciWidth, rates, dists)
			for _, workers := range []int{1, 8} {
				rows, led, heat := thresholdSweep(t, true, workers, tc.trials, tc.ciWidth, rates, dists)
				if !reflect.DeepEqual(rows, wantRows) {
					t.Errorf("workers=%d: batched rows differ from scalar oracle:\nbatched: %+v\nscalar:  %+v",
						workers, rows, wantRows)
				}
				if !bytes.Equal(led, wantLed) {
					t.Errorf("workers=%d: batched ledger bytes differ from scalar oracle", workers)
				}
				if !bytes.Equal(heat, wantHeat) {
					t.Errorf("workers=%d: batched heat JSON differs from scalar oracle", workers)
				}
			}
			if _, err := ledger.Validate(wantLed); err != nil {
				t.Fatalf("ledgercheck rejects the sweep ledger: %v", err)
			}
		})
	}
}

// TestThresholdRoundsTrackDistance is the regression test for the
// hardcoded-4-rounds bug: every trial must absorb d noisy rounds plus the
// final clean round, so the per-trial decoder.window.rounds count tracks the
// code distance (the decode window is d rounds deep and must fill exactly
// once before the final flush). Both engines are checked.
func TestThresholdRoundsTrackDistance(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, batched := range []bool{false, true} {
			reg := metrics.New()
			if batched {
				_, _ = ThresholdBatched(reg, nil, []float64{2e-3}, []int{d}, 1, 1, SweepObs{})
			} else {
				_, _ = ThresholdObserved(reg, nil, []float64{2e-3}, []int{d}, 1, 1, SweepObs{})
			}
			got := reg.Counter("decoder.window.rounds").Value()
			want := uint64(d + 1) // d noisy rounds + the final clean round
			if got != want {
				t.Errorf("d=%d batched=%v: %d window rounds absorbed per trial, want %d",
					d, batched, got, want)
			}
		}
	}
}
