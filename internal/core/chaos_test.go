package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
	"quest/internal/noise"
)

// TestPropertyMachineAlwaysDrains: arbitrary valid programs on arbitrary
// small machine shapes, with and without noise, never panic, always drain,
// and retire exactly the dispatched instruction count.
func TestPropertyMachineAlwaysDrains(t *testing.T) {
	f := func(seed int64, ops []uint8, shape uint8, noisy bool) bool {
		cfg := DefaultMachineConfig()
		cfg.Tiles = 1 + int(shape)%2
		cfg.PatchesPerTile = 2 + int(shape/2)%2
		cfg.Seed = seed
		if noisy {
			nm := noise.Uniform(5e-4)
			cfg.Noise = &nm
		}
		nLogical := cfg.Tiles * cfg.PatchesPerTile
		m := NewMachine(cfg)
		p := compiler.NewProgram(nLogical)
		rng := rand.New(rand.NewSource(seed))
		if len(ops) > 40 {
			ops = ops[:40]
		}
		for _, b := range ops {
			q := int(b) % nLogical
			switch b % 7 {
			case 0:
				p.Prep0(q)
			case 1:
				p.PrepPlus(q)
			case 2:
				p.H(q)
			case 3:
				p.X(q)
			case 4:
				p.T(q)
			case 5:
				p.MeasZ(q)
			default:
				// Same-tile CNOT partner.
				tile := q / cfg.PatchesPerTile
				part := tile*cfg.PatchesPerTile + (q+1)%cfg.PatchesPerTile
				if part != q {
					p.CNOT(q, part)
				} else {
					p.Z(q)
				}
			}
		}
		_ = rng
		rep, err := m.RunProgram(p, 50_000)
		if err != nil {
			return false
		}
		if !rep.Drained {
			return false
		}
		return rep.LogicalRetired == len(p.Instrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMachineDeterminism: identical seeds give byte-identical traffic and
// results; different seeds may differ in measurement outcomes but never in
// traffic (the instruction stream is data-independent — the determinism
// property of §3.4).
func TestMachineDeterminism(t *testing.T) {
	run := func(seed int64) RunReport {
		cfg := DefaultMachineConfig()
		cfg.Seed = seed
		nm := noise.Uniform(1e-3)
		cfg.Noise = &nm
		m := NewMachine(cfg)
		p := compiler.NewProgram(2)
		p.Prep0(0).PrepPlus(1).H(0).CNOT(0, 1).MeasZ(0).MeasX(1)
		rep, err := m.RunProgram(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a1, a2 := run(7), run(7)
	if a1.BaselineBusBytes != a2.BaselineBusBytes || a1.QuESTBusBytes != a2.QuESTBusBytes {
		t.Error("identical seeds gave different traffic")
	}
	if len(a1.Results) != len(a2.Results) {
		t.Fatal("identical seeds gave different result counts")
	}
	for i := range a1.Results {
		if a1.Results[i] != a2.Results[i] {
			t.Error("identical seeds gave different measurement outcomes")
		}
	}
	b := run(99)
	if a1.QuESTBusBytes != b.QuESTBusBytes {
		t.Error("instruction traffic depended on the noise seed")
	}
	if a1.BaselineBusBytes != b.BaselineBusBytes {
		t.Error("µop cadence depended on the noise seed")
	}
}
