package core

// Integration between the §9 concatenation extension and the live machine:
// the outer Steane EC gadget is exactly the kind of deterministic loop the
// MCE instruction cache exists for, so staging it once and replaying it must
// work end to end — with bus traffic collapsing to run tokens.

import (
	"testing"

	"quest/internal/concat"
	"quest/internal/isa"
)

// tileLocalECBody folds the 8-qubit Steane EC gadget onto a machine tile the
// way tileLocalBody folds the distillation round: cadence preserved,
// operations made self-contained (frame Paulis) so the toy tile retires them
// without an 8-patch block.
func tileLocalECBody(patches int) []isa.LogicalInstr {
	var body []isa.LogicalInstr
	for _, in := range concat.ECGadget() {
		mapped := isa.LogicalInstr{Op: isa.LX, Target: in.Target % uint8(patches)}
		if in.Op == isa.LCNOT {
			mapped = isa.LogicalInstr{Op: isa.LZ, Target: in.Arg % uint8(patches)}
		}
		body = append(body, mapped)
	}
	return body
}

func TestOuterECGadgetReplaysFromCache(t *testing.T) {
	m := NewMachine(DefaultMachineConfig())
	mm := m.Master()
	mm.StepCycle()
	body := tileLocalECBody(2)
	if len(body) != concat.ECGadgetInstrs {
		t.Fatalf("folded body length %d != gadget %d", len(body), concat.ECGadgetInstrs)
	}
	if err := mm.LoadCache(0, 1, body); err != nil {
		t.Fatal(err)
	}
	const replays = 30
	if err := mm.RunCached(0, 1, replays); err != nil {
		t.Fatal(err)
	}
	_, drained := mm.RunUntilDrained(20_000)
	if !drained {
		t.Fatal("outer EC replay did not drain")
	}
	_, retired, hits, loads, _ := mm.Tiles()[0].Stats()
	if retired != uint64(replays*len(body)) {
		t.Fatalf("retired %d, want %d", retired, replays*len(body))
	}
	if hits != replays || loads != 1 {
		t.Errorf("cache stats: hits=%d loads=%d", hits, loads)
	}
	// Bus bill: one body load + one run token, exactly as the concat
	// package's cached model prices it.
	wantBus := uint64(len(body)*isa.LogicalInstrBytes + isa.LogicalInstrBytes)
	if got := mm.InstructionBusBytes(); got != wantBus {
		t.Errorf("bus bytes = %d, want %d", got, wantBus)
	}
	// And the analytic model agrees on the per-replay cost.
	s := concat.Scheme{Levels: 1, InnerErrorRate: 1e-9}
	_, cachedPerRound := s.BusBytesPerRound()
	if cachedPerRound != isa.LogicalInstrBytes {
		t.Errorf("concat model prices a cached round at %d bytes, machine pays %d per replay",
			cachedPerRound, isa.LogicalInstrBytes)
	}
}

func TestOuterECGadgetUncachedCostsFullStream(t *testing.T) {
	m := NewMachine(DefaultMachineConfig())
	mm := m.Master()
	mm.StepCycle()
	body := tileLocalECBody(2)
	for _, in := range body {
		if err := mm.Dispatch(0, in); err != nil {
			t.Fatal(err)
		}
	}
	if _, drained := mm.RunUntilDrained(5000); !drained {
		t.Fatal("uncached gadget did not drain")
	}
	want := uint64(len(body) * isa.LogicalInstrBytes)
	if got := mm.InstructionBusBytes(); got != want {
		t.Errorf("uncached bus bytes = %d, want %d", got, want)
	}
}
