package core

import (
	"math"
	"strings"
	"testing"

	"quest/internal/compiler"
	"quest/internal/microcode"
	"quest/internal/noise"
)

func TestMachineRunsSimpleProgram(t *testing.T) {
	m := NewMachine(DefaultMachineConfig())
	p := compiler.NewProgram(2)
	p.Prep0(0).X(0).MeasZ(0).Prep0(1).MeasZ(1)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatal("program did not drain")
	}
	if rep.LogicalRetired != 5 {
		t.Errorf("retired %d, want 5", rep.LogicalRetired)
	}
	bits := map[int]int{}
	for _, r := range rep.Results {
		bits[r.Patch] = r.Bit
	}
	if bits[0] != 1 || bits[1] != 0 {
		t.Errorf("measured %v, want patch0=1 patch1=0", bits)
	}
	if rep.BaselineBusBytes <= rep.QuESTBusBytes {
		t.Error("baseline traffic not above QuEST traffic")
	}
	if rep.Savings() < 100 {
		t.Errorf("measured savings %.0f, want ≥100 even on a toy tile", rep.Savings())
	}
}

func TestMachineMultiTile(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Tiles = 2
	m := NewMachine(cfg)
	p := compiler.NewProgram(4) // qubits 0,1 on tile 0; 2,3 on tile 1
	p.Prep0(0).Prep0(2).X(2).MeasZ(0).MeasZ(2)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits := map[int]int{}
	for _, r := range rep.Results {
		bits[r.Patch] = r.Bit
	}
	// Patch indices are tile-local; both tiles report patch 0.
	if len(rep.Results) != 2 {
		t.Fatalf("results = %+v", rep.Results)
	}
	// Cross-tile CNOT is rejected.
	bad := compiler.NewProgram(4)
	bad.CNOT(0, 2)
	if _, err := m.RunProgram(bad, 0); err == nil {
		t.Error("cross-tile CNOT accepted")
	}
	// Capacity overflow is rejected.
	big := compiler.NewProgram(10)
	big.H(9)
	if _, err := m.RunProgram(big, 0); err == nil {
		t.Error("over-capacity program accepted")
	}
}

func TestMachineCNOTAndNoise(t *testing.T) {
	cfg := DefaultMachineConfig()
	nm := noise.Uniform(1e-4)
	cfg.Noise = &nm
	m := NewMachine(cfg)
	p := compiler.NewProgram(2)
	p.Prep0(0).Prep0(1).CNOT(0, 1).MeasZ(0).MeasZ(1)
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != 5 {
		t.Fatalf("drain=%v retired=%d", rep.Drained, rep.LogicalRetired)
	}
	if len(rep.Results) != 2 {
		t.Errorf("results = %+v", rep.Results)
	}
}

func TestMachineDemoMeasuredSavings(t *testing.T) {
	res, err := MachineDemo(20)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalRetired == 0 || res.Cycles == 0 {
		t.Fatalf("demo did nothing: %+v", res)
	}
	// The cache demo replays ~155-instruction bodies from a one-time load:
	// measured savings on even a toy tile should clear 10³.
	if res.MeasuredSavings < 1e3 {
		t.Errorf("measured savings %.0f, want ≥1000", res.MeasuredSavings)
	}
	if _, err := MachineDemo(0); err == nil {
		t.Error("zero replays accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	rows := Fig2()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PhysQubits <= rows[i-1].PhysQubits {
			t.Error("physical qubits not increasing")
		}
		if rows[i].Bandwidth <= rows[i-1].Bandwidth {
			t.Error("bandwidth not increasing")
		}
	}
	last := rows[len(rows)-1]
	if last.Bits != 1024 || float64(last.Bandwidth) < 1e13 {
		t.Errorf("Shor-1024 bandwidth %v below the 100 TB/s regime", last.Bandwidth)
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Orders < 4 || r.Orders > 10 {
			t.Errorf("%s: overhead 10^%.1f outside band", r.Workload, r.Orders)
		}
		if r.QECCFrac < 0.9999 {
			t.Errorf("%s: QECC fraction %v", r.Workload, r.QECCFrac)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10()
	for i, r := range rows {
		if r.RAMBits <= r.FIFOBits {
			t.Errorf("row %d: RAM not above FIFO", i)
		}
		if i > 0 {
			if rows[i].CellBits != rows[0].CellBits {
				t.Error("unit cell capacity not constant")
			}
			if rows[i].RAMBits <= rows[i-1].RAMBits || rows[i].FIFOBits <= rows[i-1].FIFOBits {
				t.Error("capacities not increasing")
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows := Fig11()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.UnitCell <= r.FIFO || r.FIFO <= r.RAM {
			t.Errorf("%v: ordering broken RAM=%d FIFO=%d UC=%d", r.Config, r.RAM, r.FIFO, r.UnitCell)
		}
		if i > 0 && r.UnitCell <= rows[i-1].UnitCell {
			t.Error("unit cell not scaling with channels")
		}
		if i > 0 && r.RAM != rows[0].RAM {
			t.Error("RAM should be flat across channels")
		}
	}
}

func TestFig13Shape(t *testing.T) {
	for _, r := range Fig13() {
		if r.Orders < 1 || r.Orders > 5 {
			t.Errorf("%s: T-factory overhead 10^%.1f outside band", r.Workload, r.Orders)
		}
		if r.Factories < 1 {
			t.Errorf("%s: no factories", r.Workload)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	rows := Fig14()
	for _, r := range rows {
		if r.OrdersQuEST < 4.6 {
			t.Errorf("%s: QuEST savings 10^%.1f", r.Workload, r.OrdersQuEST)
		}
		if r.OrdersCache <= r.OrdersQuEST {
			t.Errorf("%s: cache did not add savings", r.Workload)
		}
		if float64(r.BaselineBW) <= float64(r.QuESTBW) {
			t.Errorf("%s: bandwidth ordering broken", r.Workload)
		}
	}
	cv := Fig14CoefficientOfVariation()
	if cv > 0.02 {
		t.Errorf("savings coefficient of variation %v — configs should barely matter", cv)
	}
}

func TestFig15Shape(t *testing.T) {
	rows := Fig15()
	if len(rows) != 21 {
		t.Fatalf("rows = %d", len(rows))
	}
	// For each workload: savings at 1e-3 must exceed savings at 1e-5, and
	// distillation overhead must stay within a factor ~20 across rates.
	byWl := map[string]map[float64]Fig15Row{}
	for _, r := range rows {
		if byWl[r.Workload] == nil {
			byWl[r.Workload] = map[float64]Fig15Row{}
		}
		byWl[r.Workload][r.ErrorRate] = r
	}
	for wl, m := range byWl {
		if m[1e-3].SavingsQuEST <= m[1e-5].SavingsQuEST {
			t.Errorf("%s: savings not decreasing with better qubits", wl)
		}
		if m[1e-3].Distance <= m[1e-5].Distance {
			t.Errorf("%s: distance not shrinking with better qubits", wl)
		}
		spread := m[1e-3].DistillOv / m[1e-5].DistillOv
		if spread > 20 || spread < 1.0/20 {
			t.Errorf("%s: distillation overhead moved %vx across rates, want ~flat", wl, spread)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	rows := Fig16()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]int{}
	for _, r := range rows {
		byKey[r.Tech+"/"+r.Schedule] = r.Qubits
		if r.Qubits <= 0 {
			t.Errorf("%s/%s: no qubits serviced", r.Tech, r.Schedule)
		}
	}
	// Slower technology (longer T_ecc) services more qubits; the deeper
	// Shor schedule services fewer than Steane at the same tech.
	if byKey["Experimental_S/Steane"] <= byKey["Projected_D/Steane"] {
		t.Error("tech ordering broken")
	}
	if byKey["Projected_D/Shor"] >= byKey["Projected_D/Steane"]*2 {
		t.Error("Shor implausibly fast")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	want := map[string]struct {
		instrs, channels, jjs int
		power                 float64
	}{
		"Steane": {148, 4, 170048, 2.1},
		"Shor":   {300, 2, 168264, 1.1},
		"SC-13":  {147, 4, 170048, 2.1},
	}
	for _, r := range rows {
		w, ok := want[r.Schedule]
		if !ok {
			continue // SC-17 diverges from the paper; see EXPERIMENTS.md
		}
		if r.Instructions != w.instrs || r.Config.Channels != w.channels ||
			r.JJs != w.jjs || math.Abs(r.PowerUW-w.power) > 1e-9 {
			t.Errorf("%s: got (%d instrs, %d ch, %d JJs, %.1f µW), want %+v",
				r.Schedule, r.Instructions, r.Config.Channels, r.JJs, r.PowerUW, w)
		}
	}
	if len(rows) != 4 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"xx", "y"}, {"1", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Error("no separator line")
	}
	if len(lines[0]) != len(lines[2]) && !strings.Contains(lines[0], "long-header") {
		t.Error("misaligned table")
	}
}

func TestNewMachinePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewMachine(MachineConfig{Tiles: 0})
}

func TestRunReportSavingsZeroTraffic(t *testing.T) {
	if (RunReport{BaselineBusBytes: 10}).Savings() != 0 {
		t.Error("zero QuEST traffic should report zero savings, not infinity")
	}
}

func TestMachineDesignsAgree(t *testing.T) {
	// The same program on RAM vs unit-cell microcode machines produces the
	// same logical results — the global stream-equivalence property at
	// machine scale.
	run := func(d microcode.Design) []int {
		cfg := DefaultMachineConfig()
		cfg.Design = d
		m := NewMachine(cfg)
		p := compiler.NewProgram(2)
		p.Prep0(0).X(0).X(1 - 1).MeasZ(0)
		rep, err := m.RunProgram(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		var bits []int
		for _, r := range rep.Results {
			bits = append(bits, r.Bit)
		}
		return bits
	}
	a := run(microcode.DesignRAM)
	b := run(microcode.DesignUnitCell)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("designs disagree: %v vs %v", a, b)
	}
}

func TestMachineWithNoCAndUnionFindWindow(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Tiles = 4
	cfg.UseNoC = true
	cfg.UseUnionFind = true
	cfg.DecodeWindow = 3
	nm := noise.Uniform(5e-4)
	cfg.Noise = &nm
	m := NewMachine(cfg)
	p := compiler.NewProgram(8)
	for q := 0; q < 8; q++ {
		p.Prep0(q)
	}
	for q := 0; q < 8; q++ {
		p.MeasZ(q)
	}
	rep, err := m.RunProgram(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != 16 {
		t.Fatalf("drained=%v retired=%d", rep.Drained, rep.LogicalRetired)
	}
	if len(rep.Results) != 8 {
		t.Errorf("results = %d, want 8", len(rep.Results))
	}
}

func TestThresholdExperiment(t *testing.T) {
	rows := Threshold([]float64{1e-3}, []int{3, 5}, 120, 0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	d3, d5 := rows[0], rows[1]
	if d3.Distance != 3 || d5.Distance != 5 {
		t.Fatal("row order wrong")
	}
	if d5.FailRate > d3.FailRate {
		t.Errorf("d=5 fail %.4f above d=3 fail %.4f below threshold", d5.FailRate, d3.FailRate)
	}
	if d3.FailRate > 0.15 {
		t.Errorf("d=3 fail rate %.4f implausible", d3.FailRate)
	}
}

func TestMachineMemoryExperiment(t *testing.T) {
	// Noiseless: zero failures, ever.
	clean, err := MachineMemory(0, 6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failures != 0 {
		t.Fatalf("noiseless memory failed %d/10 trials", clean.Failures)
	}
	// Low noise through the full machine decode path: failures stay rare.
	noisy, err := MachineMemory(2e-4, 6, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.FailRate() > 0.2 {
		t.Errorf("machine memory fail rate %.2f at p=2e-4 — decode path broken", noisy.FailRate())
	}
}

func TestSyndromeTrafficScalesWithNoise(t *testing.T) {
	rows := ExtSyndromeTraffic([]float64{0, 1e-3, 5e-3}, 150)
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// Idle machine: zero instruction traffic at every rate.
	for _, r := range rows {
		if r.InstructionBytes != 0 {
			t.Errorf("rate %v: instruction traffic %d on an idle machine", r.PhysRate, r.InstructionBytes)
		}
	}
	if rows[0].SyndromeBytes != 0 {
		t.Errorf("noiseless syndrome traffic = %d", rows[0].SyndromeBytes)
	}
	if !(rows[1].SyndromeBytes < rows[2].SyndromeBytes) {
		t.Errorf("syndrome traffic not increasing with noise: %d vs %d",
			rows[1].SyndromeBytes, rows[2].SyndromeBytes)
	}
}

func TestMarkdownReport(t *testing.T) {
	md := MarkdownReport(0, 0)
	for _, frag := range []string{
		"## Figure 2", "## Figure 6", "## Figure 10", "## Figure 11",
		"## Figure 13", "## Figure 14", "## Figure 15", "## Figure 16",
		"## Table 1", "## Table 2", "## Extensions", "measured savings",
		"| SHOR-1024 |", "4 Channel = 1Kb x 4", "2420ns",
	} {
		if !strings.Contains(md, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if strings.Contains(md, "Validation — logical failure") {
		t.Error("statistical section present at statTrials=0")
	}
	withStats := MarkdownReport(20, 0)
	if !strings.Contains(withStats, "Validation — logical failure") {
		t.Error("statistical section missing at statTrials=20")
	}
}
