package core

import (
	"reflect"
	"testing"
)

// TestThresholdWorkerCountInvariant is the engine's core guarantee: the
// sweep's statistics come from seeds, not scheduling, so any worker count
// produces bit-identical rows.
func TestThresholdWorkerCountInvariant(t *testing.T) {
	rates := []float64{2e-3, 1e-3}
	distances := []int{3}
	serial := Threshold(rates, distances, 60, 1)
	parallel := Threshold(rates, distances, 60, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("threshold rows differ across worker counts:\n workers=1: %+v\n workers=8: %+v",
			serial, parallel)
	}
}

// TestMachineMemoryWorkerCountInvariant: same guarantee through the whole
// machine — master dispatch, MCE replay, local + windowed global decode.
func TestMachineMemoryWorkerCountInvariant(t *testing.T) {
	serial, err := MachineMemory(5e-4, 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MachineMemory(5e-4, 4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("memory rows differ across worker counts:\n workers=1: %+v\n workers=8: %+v",
			serial, parallel)
	}
}

// TestThresholdCellsDecorrelated guards the seed-reuse bugfix: two sweep
// cells at the same distance but different rates must not replay the same
// fault pattern. With the old per-trial seeds (int64(trial)+1 and
// trial*13+7 for every cell) the trial outcome vectors were correlated;
// with per-cell mixing the failure *sets* should differ whenever failures
// occur at all.
func TestThresholdCellsDecorrelated(t *testing.T) {
	rows := Threshold([]float64{5e-3, 4e-3}, []int{3}, 80, 0)
	if rows[0].FailRate == 0 || rows[1].FailRate == 0 {
		t.Skip("no failures at these rates; cannot compare patterns")
	}
	// Identical fail rates can happen by chance, but identical Wilson rows
	// at both rates alongside equal counts would mean the exact same
	// failure count — possible but worth flagging only if seeds collide.
	// The direct check: the cells' seeds differ.
	a := rows[0]
	b := rows[1]
	if a.PhysRate == b.PhysRate {
		t.Fatal("test setup: cells share a rate")
	}
	// Higher physical rate must not fail less often by a wide margin (the
	// qualitative check that each cell is sampling its own rate).
	if a.FailRate+0.25 < b.FailRate {
		t.Errorf("p=%.0e fails at %.3f but p=%.0e at %.3f — cells look mis-seeded",
			a.PhysRate, a.FailRate, b.PhysRate, b.FailRate)
	}
}
