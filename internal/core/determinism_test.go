package core

import (
	"reflect"
	"testing"

	"quest/internal/metrics"
)

// TestThresholdWorkerCountInvariant is the engine's core guarantee: the
// sweep's statistics come from seeds, not scheduling, so any worker count
// produces bit-identical rows.
func TestThresholdWorkerCountInvariant(t *testing.T) {
	rates := []float64{2e-3, 1e-3}
	distances := []int{3}
	serial := Threshold(rates, distances, 60, 1)
	parallel := Threshold(rates, distances, 60, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("threshold rows differ across worker counts:\n workers=1: %+v\n workers=8: %+v",
			serial, parallel)
	}
}

// TestMachineMemoryWorkerCountInvariant: same guarantee through the whole
// machine — master dispatch, MCE replay, local + windowed global decode.
func TestMachineMemoryWorkerCountInvariant(t *testing.T) {
	serial, err := MachineMemory(5e-4, 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MachineMemory(5e-4, 4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("memory rows differ across worker counts:\n workers=1: %+v\n workers=8: %+v",
			serial, parallel)
	}
}

// TestThresholdCellsDecorrelated guards the seed-reuse bugfix: two sweep
// cells at the same distance but different rates must not replay the same
// fault pattern. With the old per-trial seeds (int64(trial)+1 and
// trial*13+7 for every cell) the trial outcome vectors were correlated;
// with per-cell mixing the failure *sets* should differ whenever failures
// occur at all.
func TestThresholdCellsDecorrelated(t *testing.T) {
	rows := Threshold([]float64{5e-3, 4e-3}, []int{3}, 80, 0)
	if rows[0].FailRate == 0 || rows[1].FailRate == 0 {
		t.Skip("no failures at these rates; cannot compare patterns")
	}
	// Identical fail rates can happen by chance, but identical Wilson rows
	// at both rates alongside equal counts would mean the exact same
	// failure count — possible but worth flagging only if seeds collide.
	// The direct check: the cells' seeds differ.
	a := rows[0]
	b := rows[1]
	if a.PhysRate == b.PhysRate {
		t.Fatal("test setup: cells share a rate")
	}
	// Higher physical rate must not fail less often by a wide margin (the
	// qualitative check that each cell is sampling its own rate).
	if a.FailRate+0.25 < b.FailRate {
		t.Errorf("p=%.0e fails at %.3f but p=%.0e at %.3f — cells look mis-seeded",
			a.PhysRate, a.FailRate, b.PhysRate, b.FailRate)
	}
}

// TestMetricsObservationDoesNotPerturbResults pins the observability layer's
// contract: instrumentation observes the computation but never feeds back
// into it, so running the same sweep with no registry, with a registry, and
// with a registry under a different worker count yields bit-identical rows.
func TestMetricsObservationDoesNotPerturbResults(t *testing.T) {
	rates := []float64{2e-3}
	distances := []int{3}
	off := ThresholdIn(nil, rates, distances, 60, 2)
	reg := metrics.New()
	on := ThresholdIn(reg, rates, distances, 60, 2)
	if !reflect.DeepEqual(off, on) {
		t.Errorf("threshold rows differ with metrics on:\n off: %+v\n on:  %+v", off, on)
	}
	reg2 := metrics.New()
	onPar := ThresholdIn(reg2, rates, distances, 60, 8)
	if !reflect.DeepEqual(off, onPar) {
		t.Errorf("threshold rows differ with metrics on at workers=8:\n off: %+v\n on:  %+v", off, onPar)
	}
	// The registry must actually have observed the sweep.
	if got := reg.Counter("mc.trials").Value(); got != 60 {
		t.Errorf("mc.trials = %d, want 60", got)
	}
	if reg.Histogram("decoder.match.ns", nil).Count() == 0 {
		t.Error("decoder.match.ns histogram empty — decode path not instrumented")
	}
	// Shard totals are scheduling-independent even though the shards
	// themselves partition trials differently at each worker count.
	if a, b := reg.Counter("mc.trials").Value(), reg2.Counter("mc.trials").Value(); a != b {
		t.Errorf("merged trial counts differ across worker counts: %d vs %d", a, b)
	}
	if a, b := reg.Counter("decoder.match.calls").Value(), reg2.Counter("decoder.match.calls").Value(); a != b {
		t.Errorf("merged decoder.match.calls differ across worker counts: %d vs %d", a, b)
	}
}

// TestMachineMemoryMetricsInvariant: the same feedback-free contract through
// the full machine path, where every trial machine records into a shard.
func TestMachineMemoryMetricsInvariant(t *testing.T) {
	off, err := MachineMemoryIn(nil, 5e-4, 4, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	on, err := MachineMemoryIn(reg, 5e-4, 4, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if off != on {
		t.Errorf("memory rows differ with metrics on:\n off: %+v\n on:  %+v", off, on)
	}
	if reg.Counter("mce.cycles").Value() == 0 {
		t.Error("mce.cycles = 0 — machine path not recording into shards")
	}
	if reg.Counter("master.dispatched").Value() == 0 {
		t.Error("master.dispatched = 0 — master path not recording into shards")
	}
}
