package core

import (
	"fmt"
	"math"
	"strings"

	"quest/internal/bandwidth"
	"quest/internal/concat"
	"quest/internal/distill"
	"quest/internal/dram"
	"quest/internal/jj"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation.
// Each ExpNN function returns structured rows; Format renders them as the
// text tables cmd/questbench prints and EXPERIMENTS.md records.

// Fig2Row is one point of Figure 2: baseline instruction bandwidth versus
// machine size for Shor's algorithm.
type Fig2Row struct {
	Bits          int
	LogicalQubits int
	Distance      int
	PhysQubits    int
	Bandwidth     bandwidth.BytesPerSec
}

// Fig2 sweeps Shor moduli from 128 to 1024 bits.
func Fig2() []Fig2Row {
	var rows []Fig2Row
	est := workload.NewEstimator()
	for _, bits := range []int{128, 256, 512, 1024} {
		p := workload.ShorProfile(bits)
		e := est.Estimate(p)
		rows = append(rows, Fig2Row{
			Bits:          bits,
			LogicalQubits: p.LogicalQubits,
			Distance:      e.Distance,
			PhysQubits:    e.TotalPhysical,
			Bandwidth:     bandwidth.BytesPerSec(workload.NaiveBandwidth(e.TotalPhysical)),
		})
	}
	return rows
}

// Fig6Row is one bar of Figure 6: the QECC:regular instruction ratio.
type Fig6Row struct {
	Workload string
	Ratio    float64
	Orders   float64
	QECCFrac float64
}

// Fig6 computes the QECC overhead for the seven workloads.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	est := workload.NewEstimator()
	for _, p := range workload.Suite() {
		e := est.Estimate(p)
		r := e.QECCOverhead()
		rows = append(rows, Fig6Row{
			Workload: p.Name,
			Ratio:    r,
			Orders:   math.Log10(r),
			QECCFrac: e.QECCInstrs / (e.QECCInstrs + e.LogicalInstrs),
		})
	}
	return rows
}

// Fig10Row is one point of Figure 10: required microcode capacity versus
// serviced qubits per design.
type Fig10Row struct {
	Qubits   int
	RAMBits  int
	FIFOBits int
	CellBits int
}

// Fig10 sweeps qubit counts over the capacity scaling laws.
func Fig10() []Fig10Row {
	var rows []Fig10Row
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		rows = append(rows, Fig10Row{
			Qubits:   n,
			RAMBits:  microcode.CapacityBits(microcode.DesignRAM, surface.Steane, n),
			FIFOBits: microcode.CapacityBits(microcode.DesignFIFO, surface.Steane, n),
			CellBits: microcode.CapacityBits(microcode.DesignUnitCell, surface.Steane, n),
		})
	}
	return rows
}

// Fig11Row is one cluster of Figure 11: qubits serviced per MCE at a fixed
// 4 Kb budget.
type Fig11Row struct {
	Config   jj.MemoryConfig
	RAM      int
	FIFO     int
	UnitCell int
}

// Fig11 evaluates the three designs over the 1/2/4-channel configurations
// (plus the 8-channel point used by Table 2).
func Fig11() []Fig11Row {
	var rows []Fig11Row
	for _, cfg := range jj.Configs4Kb() {
		rows = append(rows, Fig11Row{
			Config:   cfg,
			RAM:      microcode.QubitsServiced(microcode.DesignRAM, surface.Steane, cfg, microcode.InstructionWindowNs),
			FIFO:     microcode.QubitsServiced(microcode.DesignFIFO, surface.Steane, cfg, microcode.InstructionWindowNs),
			UnitCell: microcode.QubitsServiced(microcode.DesignUnitCell, surface.Steane, cfg, microcode.InstructionWindowNs),
		})
	}
	return rows
}

// Fig13Row is one bar of Figure 13: T-factory instruction overhead.
type Fig13Row struct {
	Workload      string
	DistillRounds int
	Factories     int
	Ratio         float64
	Orders        float64
}

// Fig13 computes the distillation overhead for the seven workloads.
func Fig13() []Fig13Row {
	var rows []Fig13Row
	est := workload.NewEstimator()
	for _, p := range workload.Suite() {
		e := est.Estimate(p)
		rows = append(rows, Fig13Row{
			Workload:      p.Name,
			DistillRounds: e.DistillRounds,
			Factories:     e.Factories,
			Ratio:         e.TFactoryOverhead(),
			Orders:        math.Log10(e.TFactoryOverhead()),
		})
	}
	return rows
}

// Fig14Row is one workload of Figure 14: bandwidth savings of QuEST and
// QuEST+cache over the software-managed baseline.
type Fig14Row struct {
	Workload     string
	BaselineBW   bandwidth.BytesPerSec
	QuESTBW      bandwidth.BytesPerSec
	QuESTCacheBW bandwidth.BytesPerSec
	SavingsQuEST float64
	SavingsCache float64
	OrdersQuEST  float64
	OrdersCache  float64
}

// Fig14 computes global bandwidth savings at the paper's default operating
// point (Projected_D, Steane, p=1e-4).
func Fig14() []Fig14Row {
	return fig14At(workload.NewEstimator())
}

func fig14At(est *workload.Estimator) []Fig14Row {
	var rows []Fig14Row
	for _, p := range workload.Suite() {
		e := est.Estimate(p)
		rows = append(rows, Fig14Row{
			Workload:     p.Name,
			BaselineBW:   bandwidth.BytesPerSec(e.BaselineBandwidth()),
			QuESTBW:      bandwidth.BytesPerSec(e.QuESTBandwidth()),
			QuESTCacheBW: bandwidth.BytesPerSec(e.QuESTCacheBandwidth()),
			SavingsQuEST: e.SavingsQuEST(),
			SavingsCache: e.SavingsQuESTCache(),
			OrdersQuEST:  math.Log10(e.SavingsQuEST()),
			OrdersCache:  math.Log10(e.SavingsQuESTCache()),
		})
	}
	return rows
}

// Fig14CoefficientOfVariation reports how little the savings move across
// syndrome designs and technologies (the paper quotes a coefficient of
// variation of 0.0002% between configurations).
func Fig14CoefficientOfVariation() float64 {
	var vals []float64
	for _, sched := range []surface.Schedule{surface.Steane, surface.Shor} {
		for _, tech := range workload.Techs() {
			est := workload.NewEstimator()
			est.Schedule = sched
			est.Tech = tech
			sum := 0.0
			for _, r := range fig14At(est) {
				sum += r.OrdersCache
			}
			vals = append(vals, sum/7)
		}
	}
	mean, sd := meanStd(vals)
	return sd / mean
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

// Fig15Row is one (error rate, workload) cell of Figure 15.
type Fig15Row struct {
	ErrorRate    float64
	Workload     string
	Distance     int
	SavingsQuEST float64
	SavingsCache float64
	DistillOv    float64
}

// Fig15 sweeps the physical error rate across the suite.
func Fig15() []Fig15Row {
	var rows []Fig15Row
	for _, rate := range []float64{1e-3, 1e-4, 1e-5} {
		est := workload.NewEstimator()
		est.PhysRate = rate
		for _, p := range workload.Suite() {
			e := est.Estimate(p)
			rows = append(rows, Fig15Row{
				ErrorRate:    rate,
				Workload:     p.Name,
				Distance:     e.Distance,
				SavingsQuEST: e.SavingsQuEST(),
				SavingsCache: e.SavingsQuESTCache(),
				DistillOv:    e.TFactoryOverhead(),
			})
		}
	}
	return rows
}

// Fig16Row is one bar of Figure 16: MCE throughput per technology and
// syndrome design, at that design's Table 2 memory configuration.
type Fig16Row struct {
	Tech     string
	Schedule string
	Config   jj.MemoryConfig
	Qubits   int
}

// Fig16 evaluates qubits serviced per MCE for the 3×4 operating points.
func Fig16() []Fig16Row {
	var rows []Fig16Row
	for _, tech := range workload.Techs() {
		for _, sched := range surface.Schedules() {
			cfg, err := microcode.OptimalConfig(sched)
			if err != nil {
				panic(err)
			}
			rows = append(rows, Fig16Row{
				Tech:     tech.Name,
				Schedule: sched.Name,
				Config:   cfg,
				Qubits:   microcode.QubitsPerMCEInWindow(sched, cfg, tech.TEcc),
			})
		}
	}
	return rows
}

// Table2Row reproduces one row of Table 2: the microcode design point per
// syndrome.
type Table2Row struct {
	Schedule     string
	Instructions int
	Config       jj.MemoryConfig
	JJs          int
	PowerUW      float64
}

// Table2 derives the optimal microcode configuration per syndrome design.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, sched := range surface.Schedules() {
		cfg, err := microcode.OptimalConfig(sched)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table2Row{
			Schedule:     sched.Name,
			Instructions: sched.UnitCellInstrs,
			Config:       cfg,
			JJs:          cfg.JJCount(),
			PowerUW:      cfg.PowerMicroWatts(),
		})
	}
	return rows
}

// MachineDemo runs the cycle-level machine end to end — a distillation loop
// replayed from the logical instruction cache on a real simulated substrate
// — and reports the measured (not modelled) bus savings. It grounds the
// analytical experiments in the executable machine.
type MachineDemoResult struct {
	Cycles           int
	LogicalRetired   int
	BaselineBusBytes uint64
	QuESTBusBytes    uint64
	MeasuredSavings  float64
}

// MachineDemo executes the cached distillation loop `times` times.
func MachineDemo(times int) (MachineDemoResult, error) {
	m := NewMachine(DefaultMachineConfig())
	rep, err := m.RunDistillationCached(times, 0)
	if err != nil {
		return MachineDemoResult{}, err
	}
	if !rep.Drained {
		return MachineDemoResult{}, fmt.Errorf("core: machine demo did not drain")
	}
	return MachineDemoResult{
		Cycles:           rep.Cycles,
		LogicalRetired:   rep.LogicalRetired,
		BaselineBusBytes: rep.BaselineBusBytes,
		QuESTBusBytes:    rep.QuESTBusBytes,
		MeasuredSavings:  rep.Savings(),
	}, nil
}

// ---- formatting ----

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// RoundInstrs re-exports the distillation round length for reporting.
func RoundInstrs() int { return distill.RoundInstructionCount }

// ExtConcatRow is one row of the §9 concatenation extension study.
type ExtConcatRow struct {
	Levels       int
	InnerQubits  int
	LogicalError float64
	OuterInstrs  int
	Savings      float64
}

// ExtConcat evaluates the hybrid microcode-inner/software-outer split across
// outer Steane levels at a d=13 inner code.
func ExtConcat() []ExtConcatRow {
	const innerPhys = 2112 // 12.5·d² at d=13
	var rows []ExtConcatRow
	for levels := 0; levels <= 3; levels++ {
		s := concat.Scheme{Levels: levels, InnerErrorRate: 1e-9}
		rows = append(rows, ExtConcatRow{
			Levels:       levels,
			InnerQubits:  s.InnerQubitsPerLogical(),
			LogicalError: s.LogicalErrorRate(),
			OuterInstrs:  s.OuterInstrsPerRound(),
			Savings:      s.Savings(innerPhys, 9, 13),
		})
	}
	return rows
}

// DRAMRow is one row of the cryo-DRAM feed analysis (§2.2): whether a
// DDR-class 77K channel can feed each architecture's instruction stream.
type DRAMRow struct {
	Workload         string
	BaselineChannels int
	QuESTUtilization float64
}

// ExtDRAM evaluates the feed analysis across the workload suite.
func ExtDRAM() []DRAMRow {
	store, err := dram.New(dram.Default77K())
	if err != nil {
		panic(err)
	}
	est := workload.NewEstimator()
	var rows []DRAMRow
	for _, p := range workload.Suite() {
		e := est.Estimate(p)
		rows = append(rows, DRAMRow{
			Workload:         p.Name,
			BaselineChannels: store.Feed(e.BaselineBandwidth()).ChannelsNeeded,
			QuESTUtilization: store.Feed(e.QuESTCacheBandwidth()).Utilization,
		})
	}
	return rows
}

// ExperimentSeed is the fixed experiment-level seed all statistical sweeps
// mix their cell parameters into. One constant, published here, so results
// are reproducible run to run; per-cell and per-trial seeds are derived
// from it with mc.Seed, never reused across sweep cells.
const ExperimentSeed uint64 = 0x5eed_c0de_2017

// ThresholdRow is one cell of the logical-failure-rate sweep: the functional
// validation that the QECC substrate actually corrects (not a paper figure,
// but the property the whole instruction stream pays for). WilsonLo/Hi
// bound FailRate at 95% confidence.
type ThresholdRow struct {
	PhysRate           float64
	Distance           int
	FailRate           float64
	WilsonLo, WilsonHi float64
	Trials             int
}

// Threshold sweeps physical error rates and code distances through the full
// decode path: noisy syndrome extraction, d-round space-time windowed
// matching, Pauli-frame verification against ground truth. Trials fan out
// over `workers` goroutines (<=0 means GOMAXPROCS); rows are bit-identical
// for any worker count because every trial is seeded from
// (ExperimentSeed, p, d, trial) alone.
func Threshold(rates []float64, distances []int, trials, workers int) []ThresholdRow {
	return ThresholdIn(nil, rates, distances, trials, workers)
}

// ThresholdIn is Threshold with trial instrumentation aggregated into reg via
// per-worker metrics shards (nil reg skips instrumentation entirely). Rows
// are bit-identical with and without a registry: instruments only observe the
// decode path, they never feed back into trial outcomes.
func ThresholdIn(reg *metrics.Registry, rates []float64, distances []int, trials, workers int) []ThresholdRow {
	// An empty SweepObs never shards or resumes, so no error is possible.
	rows, _ := ThresholdObserved(reg, nil, rates, distances, trials, workers, SweepObs{})
	return rows
}

// logicalFailRate runs `trials` independent noisy memory experiments at
// distance d and physical rate p, decoding with a d-round window. The noise
// model is noise.Uniform(p) — every location including preparation fails at
// p, the paper's single-rate convention (an earlier version dropped the
// Prep channel and under-reported failure rates; see CHANGES.md). The body
// lives in logicalFailRateObserved (observe.go) with all hooks nil-gated.
func logicalFailRate(reg *metrics.Registry, d int, p float64, trials, workers int) mc.Result {
	// An empty SweepObs never shards or resumes: the cell always runs.
	res, _, _ := logicalFailRateObserved(reg, nil, d, p, trials, workers, SweepObs{})
	return res
}

// MemoryRow is one operating point of the machine-level logical memory
// experiment: unlike Threshold (which drives the decoder directly), this one
// goes through the whole machine — master dispatch, MCE issue, microcode
// replay, local LUT decode, windowed global decode — and measures how often
// a logical |0> held for `rounds` noisy QECC cycles reads back wrong.
type MemoryRow struct {
	PhysRate           float64
	Rounds             int
	Failures           int
	WilsonLo, WilsonHi float64
	Trials             int
}

// FailRate returns the measured logical failure fraction.
func (r MemoryRow) FailRate() float64 { return float64(r.Failures) / float64(r.Trials) }

// MachineMemory runs the end-to-end memory experiment, fanning trials over
// `workers` goroutines (<=0 means GOMAXPROCS). Each trial builds its own
// machine seeded from (ExperimentSeed, physRate, rounds, trial), so the row
// is bit-identical for any worker count and uncorrelated with the
// Threshold sweep's fault patterns.
func MachineMemory(physRate float64, rounds, trials, workers int) (MemoryRow, error) {
	return MachineMemoryIn(nil, physRate, rounds, trials, workers)
}

// MachineMemoryIn is MachineMemory with every trial machine recording into a
// per-worker metrics shard, all merged into reg after the pool drains (nil reg
// skips instrumentation). The row is bit-identical with and without a
// registry.
func MachineMemoryIn(reg *metrics.Registry, physRate float64, rounds, trials, workers int) (MemoryRow, error) {
	// An empty SweepObs never shards or resumes: the cell always runs.
	row, _, err := MachineMemoryObserved(reg, nil, physRate, rounds, trials, workers, SweepObs{})
	return row, err
}

// SyndromeRow compares upstream decode traffic against downstream
// instruction traffic on the running machine — the two classes sharing the
// global bus (§4.2). Instruction traffic is error-rate independent;
// syndrome traffic grows with the error rate.
type SyndromeRow struct {
	PhysRate         float64
	Cycles           int
	InstructionBytes uint64
	SyndromeBytes    uint64
}

// ExtSyndromeTraffic runs an idle noisy machine (QECC only) at several
// rates and meters both traffic classes.
func ExtSyndromeTraffic(rates []float64, cycles int) []SyndromeRow {
	var rows []SyndromeRow
	for _, rate := range rates {
		cfg := DefaultMachineConfig()
		cfg.Seed = 99
		if rate > 0 {
			nm := noise.Uniform(rate)
			cfg.Noise = &nm
		}
		m := NewMachine(cfg)
		for c := 0; c < cycles; c++ {
			m.Master().StepCycle()
		}
		rows = append(rows, SyndromeRow{
			PhysRate:         rate,
			Cycles:           cycles,
			InstructionBytes: m.Master().InstructionBusBytes(),
			SyndromeBytes:    m.Master().Syndrome.Bytes(),
		})
	}
	return rows
}
