package core

// Cross-cutting invariant tests: the architectural guarantees of DESIGN.md
// §3, checked at machine scale rather than per package.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
)

// TestInvariantCadenceNeverStalls: across random programs, noise, designs
// and schedules, every machine cycle issues exactly one µop per qubit per
// sub-cycle. This is DESIGN.md invariant 2 — the deterministic QECC supply
// the paper's correctness argument requires.
func TestInvariantCadenceNeverStalls(t *testing.T) {
	f := func(seed int64, ops []uint8, designRaw, schedRaw uint8, noisy bool) bool {
		cfg := DefaultMachineConfig()
		cfg.Seed = seed
		cfg.Design = microcode.Designs()[int(designRaw)%3]
		if schedRaw%2 == 0 {
			cfg.Schedule = surface.Shor
		}
		if noisy {
			nm := noise.Uniform(1e-3)
			cfg.Noise = &nm
		}
		m := NewMachine(cfg)
		tile := m.Master().Tiles()[0]
		perCycle := tile.Layout().Lat.NumQubits() * cfg.Schedule.Depth
		if len(ops) > 12 {
			ops = ops[:12]
		}
		p := compiler.NewProgram(2)
		for _, b := range ops {
			switch b % 4 {
			case 0:
				p.Prep0(int(b) % 2)
			case 1:
				p.H(int(b) % 2)
			case 2:
				p.X(int(b) % 2)
			default:
				p.CNOT(int(b)%2, (int(b)+1)%2)
			}
		}
		for _, in := range p.Instrs {
			if err := m.Master().Dispatch(0, in); err != nil {
				return false
			}
		}
		for c := 0; c < 25; c++ {
			rep := m.Master().StepCycle()
			if rep.MicroOps != perCycle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInvariantTrafficIsProgramDeterministic: instruction-bus bytes depend
// only on the program, never on the noise realization, decoder choice, or
// microcode organization — DESIGN.md invariant 5's precondition.
func TestInvariantTrafficIsProgramDeterministic(t *testing.T) {
	build := func(seed int64, design microcode.Design, unionFind bool, noisy float64) (uint64, uint64) {
		cfg := DefaultMachineConfig()
		cfg.Seed = seed
		cfg.Design = design
		cfg.UseUnionFind = unionFind
		cfg.DecodeWindow = 2
		if noisy > 0 {
			nm := noise.Uniform(noisy)
			cfg.Noise = &nm
		}
		m := NewMachine(cfg)
		p := compiler.NewProgram(2)
		p.Prep0(0).Prep0(1).X(0).CNOT(0, 1).T(1).MeasZ(0).MeasZ(1)
		rep, err := m.RunProgram(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.QuESTBusBytes, rep.BaselineBusBytes
	}
	q0, b0 := build(1, microcode.DesignUnitCell, false, 0)
	variants := [][2]uint64{}
	variants = append(variants, [2]uint64{q0, b0})
	q, b := build(99, microcode.DesignRAM, true, 1e-3)
	variants = append(variants, [2]uint64{q, b})
	q, b = build(7, microcode.DesignFIFO, false, 1e-4)
	variants = append(variants, [2]uint64{q, b})
	for i, v := range variants[1:] {
		if v[0] != q0 {
			t.Errorf("variant %d: QuEST traffic %d != %d", i, v[0], q0)
		}
		if v[1] != b0 {
			t.Errorf("variant %d: baseline traffic %d != %d", i, v[1], b0)
		}
	}
}

// TestInvariantMicrocodeBitsScaleWithDesign: across a run, the internal
// microcode traffic of RAM exceeds FIFO (address bits), while FIFO and
// unit-cell match exactly — invariant 4 measured on the live machine.
func TestInvariantMicrocodeBitsScaleWithDesign(t *testing.T) {
	stream := func(d microcode.Design) uint64 {
		cfg := DefaultMachineConfig()
		cfg.Design = d
		m := NewMachine(cfg)
		for c := 0; c < 10; c++ {
			m.Master().StepCycle()
		}
		return m.Master().Tiles()[0].Store().BitsStreamed()
	}
	ram := stream(microcode.DesignRAM)
	fifo := stream(microcode.DesignFIFO)
	uc := stream(microcode.DesignUnitCell)
	if fifo != uc {
		t.Errorf("FIFO (%d) and unit-cell (%d) stream different bit counts", fifo, uc)
	}
	if ram <= fifo {
		t.Errorf("RAM (%d) does not exceed FIFO (%d)", ram, fifo)
	}
	// The ratio is the µop width ratio: (4+addr)/4.
	n := NewMachine(DefaultMachineConfig()).Master().Tiles()[0].Layout().Lat.NumQubits()
	wantRatio := float64(4+bitsFor(n)) / 4
	if got := float64(ram) / float64(fifo); got != wantRatio {
		t.Errorf("RAM/FIFO stream ratio %.3f, want %.3f", got, wantRatio)
	}
}

func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// TestInvariantSeedsReproduceEverything: two machines with identical
// configs produce identical cycle reports under noise, cycle by cycle.
func TestInvariantSeedsReproduceEverything(t *testing.T) {
	mk := func() *Machine {
		cfg := DefaultMachineConfig()
		cfg.Seed = 1234
		nm := noise.Uniform(2e-3)
		cfg.Noise = &nm
		cfg.DecodeWindow = 3
		return NewMachine(cfg)
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 40; c++ {
		if rng.Intn(4) == 0 {
			in := compiler.NewProgram(2).X(rng.Intn(2)).Instrs[0]
			if err := a.Master().Dispatch(0, in); err != nil {
				t.Fatal(err)
			}
			if err := b.Master().Dispatch(0, in); err != nil {
				t.Fatal(err)
			}
		}
		ra := a.Master().StepCycle()
		rb := b.Master().StepCycle()
		if ra.MicroOps != rb.MicroOps || ra.LogicalRetired != rb.LogicalRetired ||
			ra.Escalated != rb.Escalated || ra.GlobalMatches != rb.GlobalMatches {
			t.Fatalf("cycle %d: twin machines diverged: %+v vs %+v", c, ra, rb)
		}
	}
	ea, _ := a.Master().Stats()
	eb, _ := b.Master().Stats()
	if ea != eb {
		t.Errorf("escalation totals diverged: %d vs %d", ea, eb)
	}
}
