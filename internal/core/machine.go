// Package core assembles the complete QuEST machine — master controller,
// MCE array, microcode stores, execution units and the stabilizer substrate
// — and measures the quantity the paper is about: global instruction-bus
// traffic under the three architectures (software-managed baseline, QuEST
// with hardware QECC, QuEST with the logical instruction cache).
//
// A single execution serves all three measurements: by the stream-equivalence
// invariant (tested throughout this repository), the baseline design
// executes the same physical µop sequence the MCEs replay from microcode, so
// its bus cost equals the µops issued at one byte each, while QuEST's bus
// cost is what actually crossed the master→MCE network. The package also
// hosts the experiment drivers that regenerate every figure and table of the
// paper's evaluation (see experiments.go).
package core

import (
	"fmt"

	"quest/internal/awg"
	"quest/internal/bwprofile"
	"quest/internal/compiler"
	"quest/internal/distill"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/master"
	"quest/internal/mce"
	"quest/internal/metrics"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/qexe"
	"quest/internal/surface"
	"quest/internal/tracing"
)

// MachineConfig sizes a cycle-level machine.
type MachineConfig struct {
	Tiles           int
	PatchesPerTile  int
	Distance        int
	Design          microcode.Design
	Schedule        surface.Schedule
	Noise           *noise.Model
	Seed            int64
	PacketsPerCycle int
	Factories       int
	FactoryLatency  int
	CacheSlots      int
	// Timing, when non-nil, enables wall-clock accounting on every tile.
	Timing *awg.Timing
	// UseNoC routes master→MCE packets through the 2-D mesh model.
	UseNoC bool
	// DecodeWindow batches global decoding over this many rounds (≤1 =
	// per-round).
	DecodeWindow int
	// UseUnionFind selects the union-find global matcher.
	UseUnionFind bool
	// Metrics selects the registry every component of this machine records
	// into (nil = metrics.Default). Monte-Carlo trials pass per-worker
	// shards so parallel machines never contend on shared instruments.
	Metrics *metrics.Registry
	// Tracer records cycle-correlated pipeline events across the master, the
	// MCE tiles, the decoders and the network for Perfetto export (nil =
	// tracing.Default, which is nil — tracing off — unless -trace set it).
	Tracer *tracing.Tracer
	// Heat, when non-nil, collects spatial decode statistics machine-wide:
	// defect births (MCE syndrome histories) and matched-chain footprints
	// (master global decoders), one collector per lattice shape. Nil — the
	// default — keeps every decode path allocation-free.
	Heat *heatmap.Set
	// BW, when non-nil, profiles the instruction bandwidth cycle-by-cycle:
	// the master meters every bus dispatch and the MCEs meter cache replays
	// into windowed per-class counts for the quest-bw/1 artifact. Nil — the
	// default — keeps the dispatch paths allocation-free.
	BW *bwprofile.Recorder
}

// DefaultMachineConfig returns a small but fully functional machine: one
// tile of two distance-3 patches on a unit-cell microcode with two
// T-factories.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		Tiles:           1,
		PatchesPerTile:  2,
		Distance:        3,
		Design:          microcode.DesignUnitCell,
		Schedule:        surface.Steane,
		Seed:            1,
		PacketsPerCycle: 8,
		Factories:       2,
		FactoryLatency:  4,
		CacheSlots:      8,
	}
}

// Machine is the end-to-end cycle simulator.
type Machine struct {
	cfg MachineConfig
	m   *master.Master
}

// NewMachine builds the machine.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.Tiles < 1 || cfg.PatchesPerTile < 1 {
		panic(fmt.Sprintf("core: invalid machine shape %d tiles × %d patches", cfg.Tiles, cfg.PatchesPerTile))
	}
	var tiles []*mce.MCE
	for i := 0; i < cfg.Tiles; i++ {
		tiles = append(tiles, mce.New(mce.Config{
			Design:     cfg.Design,
			Schedule:   cfg.Schedule,
			Layout:     compiler.NewLayout(cfg.Distance, cfg.PatchesPerTile),
			Noise:      cfg.Noise,
			Seed:       cfg.Seed + int64(i),
			CacheSlots: cfg.CacheSlots,
			Timing:     cfg.Timing,
			Metrics:    cfg.Metrics,
			Tracer:     cfg.Tracer,
			TileID:     i,
			Heat:       cfg.Heat,
			BW:         cfg.BW,
		}))
	}
	return &Machine{
		cfg: cfg,
		m: master.New(master.Config{
			PacketsPerCycle: cfg.PacketsPerCycle,
			Factories:       cfg.Factories,
			FactoryLatency:  cfg.FactoryLatency,
			UseNoC:          cfg.UseNoC,
			DecodeWindow:    cfg.DecodeWindow,
			UseUnionFind:    cfg.UseUnionFind,
			Metrics:         cfg.Metrics,
			Tracer:          cfg.Tracer,
			Heat:            cfg.Heat,
			BW:              cfg.BW,
		}, tiles),
	}
}

// Master exposes the controller for direct driving.
func (ma *Machine) Master() *master.Master { return ma.m }

// Reset rewinds the machine to the state NewMachine built, with a new base
// seed and freshly bound observation hooks. All trial-independent structure
// (microcode stores, decoder lookup tables, tableau storage, layouts) is
// kept; every piece of mutable state — substrate, masks, frames, queues,
// factories, counters — is restored, so a Reset machine is observationally
// identical to NewMachine with the same config (pinned by
// TestMachineResetMatchesFresh). Monte-Carlo trial bodies pool machines on
// this: per-trial cost drops from full machine construction to a reset.
// Panics for NoC-routed machines, whose mesh has no drain guarantee.
func (ma *Machine) Reset(seed int64, reg *metrics.Registry, tr *tracing.Tracer, heat *heatmap.Set, bw *bwprofile.Recorder) {
	ma.cfg.Seed = seed
	ma.cfg.Metrics = reg
	ma.cfg.Tracer = tr
	ma.cfg.Heat = heat
	ma.cfg.BW = bw
	for i, t := range ma.m.Tiles() {
		t.Reset(seed+int64(i), reg, tr, heat, bw)
	}
	ma.m.Reset(reg, tr, heat, bw)
}

// tileFor maps a program's logical qubit to (tile, patch-within-tile).
func (ma *Machine) tileFor(q int) (tile, patch int, err error) {
	tile = q / ma.cfg.PatchesPerTile
	patch = q % ma.cfg.PatchesPerTile
	if tile >= ma.cfg.Tiles {
		return 0, 0, fmt.Errorf("core: logical qubit %d exceeds machine capacity %d",
			q, ma.cfg.Tiles*ma.cfg.PatchesPerTile)
	}
	return tile, patch, nil
}

// RunReport summarizes a program execution under all three bus-accounting
// models.
type RunReport struct {
	Cycles         int
	LogicalRetired int
	// BaselineBusBytes is what the software-managed design would have
	// shipped: every physical µop at one byte.
	BaselineBusBytes uint64
	// QuESTBusBytes is the metered master→MCE instruction traffic.
	QuESTBusBytes uint64
	// SyndromeBytes is the upstream decode traffic (common to all designs).
	SyndromeBytes uint64
	Results       []mce.LogicalResult
	Drained       bool
}

// Savings returns the measured bandwidth-reduction factor.
func (r RunReport) Savings() float64 {
	if r.QuESTBusBytes == 0 {
		return 0
	}
	return float64(r.BaselineBusBytes) / float64(r.QuESTBusBytes)
}

// RunProgram dispatches a logical program (CNOTs must pair qubits on the
// same tile) and runs the machine until it drains.
func (ma *Machine) RunProgram(p *compiler.Program, maxCycles int) (RunReport, error) {
	if err := p.Validate(); err != nil {
		return RunReport{}, err
	}
	if maxCycles <= 0 {
		maxCycles = 10_000
	}
	// A settle cycle projects the lattices before work arrives.
	ma.m.StepCycle()
	for _, in := range p.Instrs {
		tile, patch, err := ma.tileFor(int(in.Target))
		if err != nil {
			return RunReport{}, err
		}
		mapped := in
		mapped.Target = uint8(patch)
		if in.Op == isa.LCNOT {
			tile2, patch2, err := ma.tileFor(int(in.Arg))
			if err != nil {
				return RunReport{}, err
			}
			if tile2 != tile {
				return RunReport{}, fmt.Errorf("core: cross-tile CNOT %d,%d not supported", in.Target, in.Arg)
			}
			mapped.Arg = uint8(patch2)
		}
		if err := ma.m.Dispatch(tile, mapped); err != nil {
			return RunReport{}, err
		}
	}
	reps, drained := ma.m.RunUntilDrained(maxCycles)
	var rep RunReport
	rep.Drained = drained
	for _, r := range reps {
		rep.Cycles++
		rep.LogicalRetired += r.LogicalRetired
		rep.BaselineBusBytes += uint64(r.MicroOps) // 1 byte per physical µop
		rep.Results = append(rep.Results, r.Results...)
	}
	rep.QuESTBusBytes = ma.m.InstructionBusBytes()
	rep.SyndromeBytes = ma.m.Syndrome.Bytes()
	return rep, nil
}

// RunExecutable loads a quantum executable (the §2.2 offload format): cache
// sections are staged into every tile's instruction cache (their bus cost
// metered once), then the program section is dispatched and run to drain.
func (ma *Machine) RunExecutable(exe *qexe.Executable, maxCycles int) (RunReport, error) {
	if err := exe.Validate(); err != nil {
		return RunReport{}, err
	}
	ma.m.StepCycle()
	for _, cb := range exe.Caches {
		for tile := range ma.m.Tiles() {
			if err := ma.m.LoadCache(tile, cb.Slot, cb.Body); err != nil {
				return RunReport{}, fmt.Errorf("core: staging cache slot %d: %w", cb.Slot, err)
			}
		}
	}
	p, err := exe.ToProgram()
	if err != nil {
		return RunReport{}, err
	}
	return ma.RunProgram(p, maxCycles)
}

// RunDistillationCached stages one distillation round body in every tile's
// cache and replays it `times` per tile — the §5.3 experiment in executable
// form. The returned report's QuEST bytes include the one-time load plus the
// batched run tokens; its baseline bytes are the full per-µop cost.
func (ma *Machine) RunDistillationCached(times, maxCycles int) (RunReport, error) {
	if times < 1 {
		return RunReport{}, fmt.Errorf("core: non-positive replay count %d", times)
	}
	body := tileLocalBody(ma.cfg.PatchesPerTile)
	ma.m.StepCycle()
	for tile := range ma.m.Tiles() {
		if err := ma.m.LoadCache(tile, 0, body); err != nil {
			return RunReport{}, err
		}
		remaining := times
		for remaining > 0 {
			batch := remaining
			if batch > 63 {
				batch = 63
			}
			if err := ma.m.RunCached(tile, 0, batch); err != nil {
				return RunReport{}, err
			}
			remaining -= batch
		}
	}
	if maxCycles <= 0 {
		maxCycles = 200_000
	}
	reps, drained := ma.m.RunUntilDrained(maxCycles)
	var rep RunReport
	rep.Drained = drained
	for _, r := range reps {
		rep.Cycles++
		rep.LogicalRetired += r.LogicalRetired
		rep.BaselineBusBytes += uint64(r.MicroOps)
	}
	rep.QuESTBusBytes = ma.m.InstructionBusBytes()
	rep.SyndromeBytes = ma.m.Syndrome.Bytes()
	return rep, nil
}

// tileLocalBody projects the distillation round circuit onto a tile with
// few patches: targets fold onto the available patches and magic-state
// consumers (T) become frame-level Paulis so the demo machine can retire the
// loop without a full 16-patch factory tile. The instruction count and
// cadence — what the cache experiment measures — are preserved.
func tileLocalBody(patches int) []isa.LogicalInstr {
	var body []isa.LogicalInstr
	for _, in := range distill.RoundCircuit() {
		mapped := isa.LogicalInstr{Op: in.Op, Target: in.Target % uint8(patches), Arg: in.Arg % uint8(patches)}
		switch in.Op {
		case isa.LT, isa.LH, isa.LS, isa.LPrepPlus, isa.LPrep0, isa.LMeasX, isa.LMeasZ:
			// Keep single-patch cadence but use frame-level Paulis so the
			// loop is self-contained.
			mapped = isa.LogicalInstr{Op: isa.LX, Target: mapped.Target}
		case isa.LCNOT:
			if mapped.Target == mapped.Arg {
				mapped = isa.LogicalInstr{Op: isa.LZ, Target: mapped.Target}
			}
		}
		body = append(body, mapped)
	}
	return body
}
