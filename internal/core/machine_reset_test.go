package core

import (
	"bytes"
	"reflect"
	"testing"

	"quest/internal/bandwidth"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/metrics"
	"quest/internal/noise"
)

// memoryTrialFor drives one machine through the memory-experiment trial
// sequence (the MachineMemoryObserved body) and returns the measured logical
// bit.
func memoryTrialFor(t *testing.T, m *Machine, rounds int) int {
	t.Helper()
	mm := m.Master()
	mm.StepCycle()
	if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LPrep0, Target: 0}); err != nil {
		t.Fatalf("Dispatch prep: %v", err)
	}
	for c := 0; c < rounds; c++ {
		mm.StepCycle()
	}
	if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LMeasZ, Target: 0}); err != nil {
		t.Fatalf("Dispatch meas: %v", err)
	}
	reps, ok := mm.RunUntilDrained(rounds + 50)
	if !ok {
		t.Fatal("machine did not drain")
	}
	got := -1
	for _, r := range reps {
		for _, res := range r.Results {
			got = res.Bit
		}
	}
	return got
}

// memoryMachineConfig is the machine shape the pooled memory trials use.
func memoryMachineConfig(seed int64, reg *metrics.Registry, heat *heatmap.Set, p float64) MachineConfig {
	cfg := DefaultMachineConfig()
	cfg.PatchesPerTile = 1
	cfg.Seed = seed
	cfg.DecodeWindow = cfg.Distance
	cfg.Metrics = reg
	cfg.Heat = heat
	nm := noise.Uniform(p)
	cfg.Noise = &nm
	return cfg
}

// TestMachineResetMatchesFresh pins the pooled-machine contract behind
// MachineMemoryObserved: a machine that has already run a full trial and is
// then Reset to a new seed must be observationally identical to a machine
// freshly built with that seed — same logical outcome, same deterministic
// instruments (counters, gauges, histogram observation counts; sums are wall
// clock), same heatmaps, same bus accounting. A reset gap anywhere in the
// MCE/master/decoder/substrate chain shows up here as a diverging trial.
func TestMachineResetMatchesFresh(t *testing.T) {
	const (
		p      = 2e-3
		rounds = 6
		warm   = int64(12345)
		seed   = int64(67890)
	)

	regFresh := metrics.New()
	heatFresh := heatmap.NewSet()
	fresh := NewMachine(memoryMachineConfig(seed, regFresh, heatFresh, p))
	bitFresh := memoryTrialFor(t, fresh, rounds)

	// The pooled machine first runs a whole trial at a different seed into
	// throwaway observers, accumulating the mutable state Reset must rewind.
	pooled := NewMachine(memoryMachineConfig(warm, metrics.New(), heatmap.NewSet(), p))
	memoryTrialFor(t, pooled, rounds)

	regReset := metrics.New()
	heatReset := heatmap.NewSet()
	pooled.Reset(seed, regReset, nil, heatReset, nil)
	bitReset := memoryTrialFor(t, pooled, rounds)

	if bitFresh != bitReset {
		t.Errorf("logical outcome: fresh = %d, reset = %d", bitFresh, bitReset)
	}

	sf, sr := regFresh.Snapshot(), regReset.Snapshot()
	if !reflect.DeepEqual(sf.Counters, sr.Counters) {
		t.Errorf("counters diverge:\nfresh: %+v\nreset: %+v", sf.Counters, sr.Counters)
	}
	if !reflect.DeepEqual(sf.Gauges, sr.Gauges) {
		t.Errorf("gauges diverge:\nfresh: %+v\nreset: %+v", sf.Gauges, sr.Gauges)
	}
	if len(sf.Histograms) != len(sr.Histograms) {
		t.Fatalf("histogram sets diverge: %d vs %d", len(sf.Histograms), len(sr.Histograms))
	}
	for i := range sf.Histograms {
		hf, hr := sf.Histograms[i], sr.Histograms[i]
		if hf.Name != hr.Name || hf.Summary.Count != hr.Summary.Count {
			t.Errorf("histogram %s: fresh count %d, reset (%s) count %d",
				hf.Name, hf.Summary.Count, hr.Name, hr.Summary.Count)
		}
	}

	var jf, jr bytes.Buffer
	if err := heatFresh.WriteJSON(&jf); err != nil {
		t.Fatalf("fresh heat: %v", err)
	}
	if err := heatReset.WriteJSON(&jr); err != nil {
		t.Fatalf("reset heat: %v", err)
	}
	if !bytes.Equal(jf.Bytes(), jr.Bytes()) {
		t.Errorf("heat JSON diverges:\nfresh: %s\nreset: %s", jf.Bytes(), jr.Bytes())
	}

	if a, b := fresh.Master().InstructionBusBytes(), pooled.Master().InstructionBusBytes(); a != b {
		t.Errorf("instruction bus bytes: fresh %d, reset %d", a, b)
	}
	ef, gf := fresh.Master().Stats()
	er, gr := pooled.Master().Stats()
	if ef != er || gf != gr {
		t.Errorf("master stats: fresh (%d,%d), reset (%d,%d)", ef, gf, er, gr)
	}
	tf, tr := fresh.Master().Tiles()[0], pooled.Master().Tiles()[0]
	if a, b := tf.Store().BitsStreamed(), tr.Store().BitsStreamed(); a != b {
		t.Errorf("microcode bits streamed: fresh %d, reset %d", a, b)
	}
}

// TestMachineResetBusMetricsMatchFresh is the bus-accounting slice of the
// pooling contract (satellite of the bandwidth profiler): every master bus
// counter — the local bandwidth.Counter meters AND the registry counters
// they Bridge into — must read identically whether a trial ran on a fresh
// machine or on a pooled machine Reset after a previous trial. A Reset that
// forgot Counter.Reset would carry the warm trial's traffic forward; a
// Reset that re-Bridged without zeroing (or double-bridged) would double
// the registry's view.
func TestMachineResetBusMetricsMatchFresh(t *testing.T) {
	const (
		p      = 2e-3
		rounds = 6
		warm   = int64(424242)
		seed   = int64(97531)
	)

	regFresh := metrics.New()
	fresh := NewMachine(memoryMachineConfig(seed, regFresh, nil, p))
	memoryTrialFor(t, fresh, rounds)

	pooled := NewMachine(memoryMachineConfig(warm, metrics.New(), nil, p))
	memoryTrialFor(t, pooled, rounds)
	regReset := metrics.New()
	pooled.Reset(seed, regReset, nil, nil, nil)
	memoryTrialFor(t, pooled, rounds)

	fm, pm := fresh.Master(), pooled.Master()
	buses := []struct {
		name        string
		fresh, pool *bandwidth.Counter
	}{
		{"logical", &fm.Logical, &pm.Logical},
		{"sync", &fm.Sync, &pm.Sync},
		{"cache", &fm.Cache, &pm.Cache},
		{"syndrome", &fm.Syndrome, &pm.Syndrome},
	}
	for _, b := range buses {
		if fi, pi := b.fresh.Instructions(), b.pool.Instructions(); fi != pi {
			t.Errorf("%s bus instructions: fresh %d, pooled-reset %d", b.name, fi, pi)
		}
		if fb, pb := b.fresh.Bytes(), b.pool.Bytes(); fb != pb {
			t.Errorf("%s bus bytes: fresh %d, pooled-reset %d", b.name, fb, pb)
		}
	}

	counterValue := func(s metrics.Snapshot, name string) (uint64, bool) {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value, true
			}
		}
		return 0, false
	}
	sf, sr := regFresh.Snapshot(), regReset.Snapshot()
	for _, name := range []string{
		"master.bus.logical.instr", "master.bus.logical.bytes",
		"master.bus.sync.instr", "master.bus.sync.bytes",
		"master.bus.cache.instr", "master.bus.cache.bytes",
		"master.bus.syndrome.records", "master.bus.syndrome.bytes",
	} {
		fv, fok := counterValue(sf, name)
		rv, rok := counterValue(sr, name)
		if fok != rok {
			t.Errorf("bridged counter %s: present fresh=%v reset=%v", name, fok, rok)
			continue
		}
		if fv != rv {
			t.Errorf("bridged counter %s: fresh %d, pooled-reset %d", name, fv, rv)
		}
	}
}
