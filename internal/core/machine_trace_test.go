package core

import (
	"bytes"
	"testing"

	"quest/internal/tracing"
)

// TestMachineTraceCoversComponentTracks is the acceptance check for the
// tracing tentpole at the machine level: a traced distillation run must
// produce a valid Chrome trace with at least the master, MCE, decoder and
// network tracks, all cycle-aligned.
func TestMachineTraceCoversComponentTracks(t *testing.T) {
	tr := tracing.New(1 << 16)
	cfg := DefaultMachineConfig()
	cfg.Tracer = tr
	m := NewMachine(cfg)
	rep, err := m.RunDistillationCached(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatal("machine did not drain")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	vrep, err := tracing.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("machine trace invalid: %v", err)
	}
	if vrep.Procs < 4 {
		t.Errorf("trace has %d processes, want >= 4 (master, mce, decoder, noc)", vrep.Procs)
	}
	procs := map[string]bool{}
	var maxTs int64
	for _, ev := range tr.Events() {
		procs[ev.Proc] = true
		if ev.Ts+ev.Dur > maxTs {
			maxTs = ev.Ts + ev.Dur
		}
	}
	for _, want := range []string{"master", "mce", "decoder", "noc"} {
		if !procs[want] {
			t.Errorf("trace missing %q track; has %v", want, procs)
		}
	}
	// Cycle alignment: no event may extend past the cycles the machine ran
	// (RunDistillationCached steps one settle cycle before the report).
	if limit := int64(rep.Cycles) + 1; maxTs > limit {
		t.Errorf("trace extends to cycle %d, but machine ran %d cycles", maxTs, limit)
	}
}

// TestMachineTraceDeterministic pins that two identically configured machines
// produce byte-identical traces — the property that makes traces diffable
// artifacts of (config, seed).
func TestMachineTraceDeterministic(t *testing.T) {
	run := func() []byte {
		tr := tracing.New(1 << 16)
		cfg := DefaultMachineConfig()
		cfg.Tracer = tr
		m := NewMachine(cfg)
		if _, err := m.RunDistillationCached(2, 0); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical runs produced different traces")
	}
}

// TestMachineUntracedRecordsNothing pins the off switch at machine level: a
// nil Tracer (and nil tracing.Default) must leave no trace state behind.
func TestMachineUntracedRecordsNothing(t *testing.T) {
	if tracing.Default != nil {
		t.Fatal("test requires tracing.Default to be nil")
	}
	cfg := DefaultMachineConfig()
	m := NewMachine(cfg)
	if _, err := m.RunDistillationCached(2, 0); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert beyond "no panic": recording methods are nil no-ops.
	// The zero-alloc property is pinned by tracing.TestNilTracerIsFreeAndSafe
	// and the benchdiff gate on BenchmarkExactMatch10.
}
