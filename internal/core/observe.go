package core

import (
	"fmt"
	"math/rand"
	"sync"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/compiler"
	"quest/internal/decoder"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/tracing"
)

// SweepObs bundles the experiment-observability hooks a sweep driver wires
// through the Monte-Carlo engine: a run ledger, spatial heat collection,
// adaptive CI early stop, and a live progress sink. The zero value observes
// nothing — Threshold/MachineMemory delegate here with it, so there is
// exactly one sweep implementation.
//
// Everything written through these hooks is worker-count independent: the
// ledger and the CI-stop decision are pure functions of trial-ordered
// outcomes, and heat shards are per-trial and merged in trial order (pinned
// by TestThresholdObservedLedgerDeterminism and friends). Only the Progress
// stream reflects live completion order — it is display, not data.
type SweepObs struct {
	// Ledger receives one sampled record per trial and one summary per
	// sweep cell. Nil disables the ledger.
	Ledger *ledger.Writer
	// Heat accumulates defect-birth and matched-chain statistics, one
	// collector per lattice shape. Nil disables collection (and keeps the
	// decode paths allocation-free).
	Heat *heatmap.Set
	// CIWidth > 0 stops each cell at the first trial-ordered prefix whose
	// 95% Wilson interval is narrower than this (see mc.Observers.CIWidth);
	// MinTrials floors the rule (0 = the engine default).
	CIWidth   float64
	MinTrials int
	// Progress receives throttled per-cell progress snapshots. Nil
	// disables the stream.
	Progress func(cell string, p mc.Progress)
}

// observers assembles the engine-level hooks for one named sweep cell.
func (s SweepObs) observers(cell string, heat *heatmap.Collector) mc.Observers {
	obs := mc.Observers{CIWidth: s.CIWidth, MinTrials: s.MinTrials, Heat: heat}
	if s.Progress != nil {
		progress := s.Progress
		obs.Progress = func(p mc.Progress) { progress(cell, p) }
	}
	if s.Ledger != nil {
		lw := s.Ledger
		obs.Sink = func(trial int, seed uint64, out mc.Outcome) {
			lw.WriteTrial(ledger.Trial{
				Cell: cell, Trial: trial, Seed: ledger.SeedString(seed),
				Fail: out.Fail, Err: errString(out.Err),
			})
		}
	}
	return obs
}

// closeCell writes the cell's ledger summary after its pool drained.
func (s SweepObs) closeCell(cell string, params map[string]float64, cellSeed uint64, budget int, res mc.Result) {
	if s.Ledger == nil {
		return
	}
	s.Ledger.WriteCell(ledger.Cell{
		Cell:   cell,
		Params: params,
		Seed:   ledger.SeedString(cellSeed),
		Budget: budget, Trials: res.Trials, Failures: res.Failures,
		Rate: res.Rate, WilsonLo: res.WilsonLo, WilsonHi: res.WilsonHi,
		CIStop:       s.CIWidth,
		StoppedEarly: res.Trials < budget,
		Err:          errString(res.Err),
	})
}

// collector resolves the heat collector for a lattice shape, nil when heat
// collection is off.
func (s SweepObs) collector(rows, cols int) *heatmap.Collector {
	if s.Heat == nil {
		return nil
	}
	return s.Heat.Collector(heatmap.GridName(rows, cols), rows, cols)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// ThresholdObserved is ThresholdIn with tracing and the SweepObs hooks:
// per-cell ledger records, defect/matched-chain heatmaps, optional CI early
// stop (rows then report the effective trial count) and live progress.
// Rows remain bit-identical for any worker count, with or without
// observation.
func ThresholdObserved(reg *metrics.Registry, tr *tracing.Tracer, rates []float64, distances []int,
	trials, workers int, obs SweepObs) []ThresholdRow {
	var rows []ThresholdRow
	for _, p := range rates {
		for _, d := range distances {
			res := logicalFailRateObserved(reg, tr, d, p, trials, workers, obs)
			rows = append(rows, ThresholdRow{
				PhysRate: p,
				Distance: d,
				FailRate: res.Rate,
				WilsonLo: res.WilsonLo,
				WilsonHi: res.WilsonHi,
				Trials:   res.Trials,
			})
		}
	}
	return rows
}

// MachineMemoryObserved is MachineMemoryIn with tracing and the SweepObs
// hooks wired through the full machine: each trial machine records defect
// births (MCE histories) and matched chains (master decoders) into a
// trial-private heat set, merged in trial order.
func MachineMemoryObserved(reg *metrics.Registry, tr *tracing.Tracer, physRate float64,
	rounds, trials, workers int, obs SweepObs) (MemoryRow, error) {
	cell := mc.Seed(ExperimentSeed, mc.F64(physRate), uint64(rounds), 0x3e3)
	name := fmt.Sprintf("memory p=%g rounds=%d", physRate, rounds)
	// Every trial machine is shaped by DefaultMachineConfig with one patch
	// per tile (see the trial body); resolve the shared parent collector
	// for exactly that lattice.
	base := DefaultMachineConfig()
	lat := compiler.NewLayout(base.Distance, 1).Lat
	heat := obs.collector(lat.Rows, lat.Cols)
	mobs := obs.observers(name, heat)
	// Trials pool machines: every trial of this cell uses the identical
	// machine shape (only the seed and the observation hooks vary), so the
	// expensive trial-independent construction — microcode stores, decoder
	// lookup tables, tableau storage — is paid roughly once per worker and
	// Reset rewinds the rest. Reset-vs-fresh equality is pinned by
	// TestMachineResetMatchesFresh; worker-count independence of the pooled
	// results by TestMachineMemoryObservedDeterminism.
	var pool sync.Pool
	res := mc.RunObserved(trials, workers, cell, reg, tr, mobs,
		func(trial int, seed uint64, ctx mc.TrialCtx) mc.Outcome {
			// The machine records into a trial-private set; its (single)
			// grid is folded into the trial's engine shard at the end, so
			// the merged heatmap stays worker-count independent.
			var hs *heatmap.Set
			if ctx.Heat != nil {
				hs = heatmap.NewSet()
			}
			var m *Machine
			if v := pool.Get(); v != nil {
				m = v.(*Machine)
				m.Reset(int64(seed), ctx.Shard, ctx.Trace, hs)
			} else {
				cfg := DefaultMachineConfig()
				cfg.PatchesPerTile = 1
				cfg.Seed = int64(seed)
				cfg.DecodeWindow = cfg.Distance
				cfg.Metrics = ctx.Shard
				cfg.Tracer = ctx.Trace
				cfg.Heat = hs
				if physRate > 0 {
					nm := noise.Uniform(physRate)
					cfg.Noise = &nm
				}
				m = NewMachine(cfg)
			}
			defer pool.Put(m)
			mm := m.Master()
			mm.StepCycle()
			if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LPrep0, Target: 0}); err != nil {
				return mc.Outcome{Err: err}
			}
			for c := 0; c < rounds; c++ {
				mm.StepCycle()
			}
			if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LMeasZ, Target: 0}); err != nil {
				return mc.Outcome{Err: err}
			}
			reps, ok := mm.RunUntilDrained(rounds + 50)
			if !ok {
				return mc.Outcome{Err: fmt.Errorf("core: memory trial %d did not drain", trial)}
			}
			got := -1
			for _, r := range reps {
				for _, res := range r.Results {
					got = res.Bit
				}
			}
			if hs != nil {
				ctx.Heat.Merge(hs.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols))
			}
			return mc.Outcome{Fail: got != 0}
		})
	obs.closeCell(name, map[string]float64{"p": physRate, "rounds": float64(rounds)}, cell, trials, res)
	row := MemoryRow{
		PhysRate: physRate,
		Rounds:   rounds,
		Failures: res.Failures,
		WilsonLo: res.WilsonLo,
		WilsonHi: res.WilsonHi,
		Trials:   res.Trials,
	}
	return row, res.Err
}

// logicalFailRateObserved is the single implementation behind
// logicalFailRate and ThresholdObserved: the windowed-decode memory
// experiment with every observation hook nil-gated.
func logicalFailRateObserved(reg *metrics.Registry, tr *tracing.Tracer, d int, p float64,
	trials, workers int, obs SweepObs) mc.Result {
	lat := surface.NewPlanar(d)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	cell := mc.Seed(ExperimentSeed, mc.F64(p), uint64(d))
	name := fmt.Sprintf("threshold p=%g d=%d", p, d)
	heat := obs.collector(lat.Rows, lat.Cols)
	mobs := obs.observers(name, heat)
	res := mc.RunObserved(trials, workers, cell, reg, tr, mobs,
		func(trial int, seed uint64, ctx mc.TrialCtx) mc.Outcome {
			tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(mc.Derive(seed, 0)))))
			inj := noise.NewInjector(noise.Uniform(p), int64(mc.Derive(seed, 1)))
			noisy := awg.New(tb, inj)
			clean := awg.New(tb, nil)
			run := func(u *awg.ExecutionUnit) map[int]int {
				synd := make(map[int]int)
				u.MeasSink = func(q, bit int) { synd[q] = bit }
				for _, w := range words {
					u.ExecuteWord(w)
				}
				return synd
			}
			hist := decoder.NewHistory(lat)
			frame := decoder.NewPauliFrame()
			win := decoder.NewWindowDecoder(decoder.NewGlobalDecoder(lat), d)
			if ctx.Shard != nil {
				win.SetInstr(decoder.NewInstr(ctx.Shard))
			}
			if ctx.Trace != nil {
				win.SetTracer(ctx.Trace, 0)
			}
			if ctx.Heat != nil {
				hist.SetHeat(ctx.Heat)
				win.SetHeat(ctx.Heat)
			}
			run(clean)
			hist.Absorb(run(clean))
			// The noisy-round count tracks the code distance: the window
			// decoder is d rounds deep, so fewer rounds would never fill —
			// let alone exercise — a d=5 or d=7 cell's own decode window.
			for round := 0; round < d; round++ {
				inj.SetLocation(round, 0)
				win.Absorb(hist.Absorb(run(noisy)), frame)
			}
			win.Absorb(hist.Absorb(run(clean)), frame)
			win.Flush(frame)
			logZ := lat.LogicalZ()
			raw := tb.MeasureObservable(nil, logZ)
			want := 1 - 2*frame.ParityOn(logZ, true)
			return mc.Outcome{Fail: raw != 0 && raw != want}
		})
	obs.closeCell(name, map[string]float64{"p": p, "d": float64(d)}, cell, trials, res)
	return res
}
