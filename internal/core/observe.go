package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"quest/internal/awg"
	"quest/internal/bwprofile"
	"quest/internal/clifford"
	"quest/internal/compiler"
	"quest/internal/decoder"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/tracing"
)

// Shard deterministically partitions a sweep's cells across Count
// cooperating processes: the k-th cell the sweep reaches (counting in sweep
// order, across every entry point sharing this Shard) belongs to shard
// Index iff k ≡ Index (mod Count). The claim cursor advances on every cell
// — owned or not — so N processes running the same binary with the same
// arguments agree on the assignment with no coordination, and
// tools/ledgermerge can splice their ledgers back together round-robin.
type Shard struct {
	index, count int
	next         int
}

// NewShard builds the claim cursor for shard index of count. count < 2
// returns nil — the unsharded cursor that claims every cell — so callers
// can pass the parsed -shard flag through unconditionally.
func NewShard(index, count int) (*Shard, error) {
	if count < 2 {
		return nil, nil
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("core: shard index %d outside [0, %d)", index, count)
	}
	return &Shard{index: index, count: count}, nil
}

// claim advances the cell cursor and reports whether this process owns the
// cell. A nil Shard owns everything.
func (s *Shard) claim() bool {
	if s == nil {
		return true
	}
	k := s.next
	s.next++
	return k%s.count == s.index
}

// SweepObs bundles the experiment-observability hooks a sweep driver wires
// through the Monte-Carlo engine: a run ledger, spatial heat collection,
// adaptive CI early stop, and a live progress sink. The zero value observes
// nothing — Threshold/MachineMemory delegate here with it, so there is
// exactly one sweep implementation.
//
// Everything written through these hooks is worker-count independent: the
// ledger and the CI-stop decision are pure functions of trial-ordered
// outcomes, and heat shards are per-trial and merged in trial order (pinned
// by TestThresholdObservedLedgerDeterminism and friends). Only the Progress
// stream reflects live completion order — it is display, not data.
type SweepObs struct {
	// Ledger receives one sampled record per trial and one summary per
	// sweep cell. Nil disables the ledger.
	Ledger *ledger.Writer
	// Heat accumulates defect-birth and matched-chain statistics, one
	// collector per lattice shape. Nil disables collection (and keeps the
	// decode paths allocation-free).
	Heat *heatmap.Set
	// BW accumulates cycle-windowed instruction-bandwidth samples from every
	// trial machine's master/MCE buses. Nil disables profiling (and keeps
	// the dispatch paths allocation-free). Shards are per-trial and merged
	// in trial order, so the quest-bw/1 waveform is worker-count
	// independent like the ledger and heatmaps.
	BW *bwprofile.Recorder
	// CIWidth > 0 stops each cell at the first trial-ordered prefix whose
	// 95% Wilson interval is narrower than this (see mc.Observers.CIWidth);
	// MinTrials floors the rule (0 = the engine default).
	CIWidth   float64
	MinTrials int
	// Progress receives throttled per-cell progress snapshots. Nil
	// disables the stream.
	Progress func(cell string, p mc.Progress)
	// Shard restricts the sweep to the cells this process owns (nil = all
	// cells); see Shard and cmd/questbench -shard i/N. Skipped cells emit
	// nothing — no ledger records, no rows — leaving each shard's ledger a
	// complete, self-describing file tools/ledgermerge can recombine into
	// the single-process bytes.
	Shard *Shard
	// Resume replays a partial ledger checkpoint from a crashed or
	// interrupted run: cells it records completely are emitted verbatim
	// without executing a trial, and a partially-recorded cell's leading
	// trials feed the engine as prior outcomes (mc.Observers.Prior). Nil
	// runs everything. The resumed ledger converges to the uninterrupted
	// run's exact bytes; recorded seeds are checked against the sweep's
	// own derivations so a checkpoint from a different config is refused,
	// not spliced in.
	Resume *ledger.Resume
}

// cellPlan is beginCell's verdict for one sweep cell.
type cellPlan struct {
	// skip: another shard owns the cell; emit nothing.
	skip bool
	// replayed: the resume checkpoint recorded the whole cell; its records
	// are already re-emitted and this is its Result — do not execute.
	replayed *mc.Result
	// prior: leading trial outcomes replayed from a partial record, to run
	// through mc.Observers.Prior. Empty means run the cell from scratch.
	prior []mc.Outcome
}

// beginCell resolves sharding and resume for the named cell. It must be
// called exactly once per cell, in sweep order, by every sweep entry point
// — the shard cursor and the resume bookkeeping both count on it.
func (s SweepObs) beginCell(name string, cellSeed uint64, budget int) (cellPlan, error) {
	if !s.Shard.claim() {
		return cellPlan{skip: true}, nil
	}
	if s.Resume == nil {
		return cellPlan{}, nil
	}
	cc, partial, err := s.Resume.Take(name)
	if err != nil {
		return cellPlan{}, err
	}
	if cc != nil {
		if got, want := cc.Summary.Seed, ledger.SeedString(cellSeed); got != want {
			return cellPlan{}, fmt.Errorf("core: resume cell %q was recorded with seed %s but this sweep derives %s — refusing to splice a different experiment", name, got, want)
		}
		if cc.Summary.Budget != budget {
			return cellPlan{}, fmt.Errorf("core: resume cell %q was recorded with a %d-trial budget but this sweep runs %d — rerun with the original flags", name, cc.Summary.Budget, budget)
		}
		for i, tr := range cc.Trials {
			if got, want := tr.Seed, ledger.SeedString(mc.TrialSeed(cellSeed, i)); got != want {
				return cellPlan{}, fmt.Errorf("core: resume cell %q trial %d seed %s, want %s — checkpoint does not match this configuration", name, i, got, want)
			}
		}
		if s.Ledger != nil {
			for _, tr := range cc.Trials {
				if err := s.Ledger.WriteTrial(tr); err != nil {
					return cellPlan{}, err
				}
			}
			if err := s.Ledger.WriteCell(cc.Summary); err != nil {
				return cellPlan{}, err
			}
		}
		res := mc.Result{
			Trials: cc.Summary.Trials, Failures: cc.Summary.Failures,
			Rate: cc.Summary.Rate, WilsonLo: cc.Summary.WilsonLo, WilsonHi: cc.Summary.WilsonHi,
		}
		if cc.Summary.Err != "" {
			res.Err = errors.New(cc.Summary.Err)
		}
		// A replayed cell never reaches the engine, so emit its terminal
		// progress snapshot here — a live display (or events stream) should
		// show resumed cells as done, not absent. Display-only, like every
		// Progress emission.
		if s.Progress != nil {
			s.Progress(name, mc.Progress{
				Completed: res.Trials, Failures: res.Failures, Budget: budget,
				WilsonLo: res.WilsonLo, WilsonHi: res.WilsonHi, Done: true,
			})
		}
		return cellPlan{replayed: &res}, nil
	}
	if len(partial) == 0 {
		return cellPlan{}, nil
	}
	if len(partial) > budget {
		return cellPlan{}, fmt.Errorf("core: resume cell %q records %d trials, beyond this sweep's %d-trial budget — rerun with the original flags", name, len(partial), budget)
	}
	prior := make([]mc.Outcome, len(partial))
	for i, tr := range partial {
		if got, want := tr.Seed, ledger.SeedString(mc.TrialSeed(cellSeed, i)); got != want {
			return cellPlan{}, fmt.Errorf("core: resume cell %q trial %d seed %s, want %s — checkpoint does not match this configuration", name, i, got, want)
		}
		prior[i] = mc.Outcome{Fail: tr.Fail}
		if tr.Err != "" {
			prior[i].Err = errors.New(tr.Err)
		}
	}
	return cellPlan{prior: prior}, nil
}

// observers assembles the engine-level hooks for one named sweep cell.
func (s SweepObs) observers(cell string, heat *heatmap.Collector) mc.Observers {
	obs := mc.Observers{CIWidth: s.CIWidth, MinTrials: s.MinTrials, Heat: heat, BW: s.BW}
	if s.Progress != nil {
		progress := s.Progress
		obs.Progress = func(p mc.Progress) { progress(cell, p) }
	}
	if s.Ledger != nil {
		lw := s.Ledger
		obs.Sink = func(trial int, seed uint64, out mc.Outcome) {
			// The Sink contract is void (the engine cannot abort a drained
			// trial on an I/O error); the Writer latches the first error and
			// closeCell surfaces it when the cell finishes.
			//quest:allow(errsink) Sink is void by contract; Writer.Err latches the failure and closeCell returns it
			lw.WriteTrial(ledger.Trial{
				Cell: cell, Trial: trial, Seed: ledger.SeedString(seed),
				Fail: out.Fail, Err: errString(out.Err),
			})
		}
	}
	return obs
}

// closeCell writes the cell's ledger summary after its pool drained. It
// also surfaces any trial-write error the void Sink hook latched into the
// Writer, so a failed write mid-cell fails the sweep rather than
// truncating the ledger silently.
func (s SweepObs) closeCell(cell string, params map[string]float64, cellSeed uint64, budget int, res mc.Result) error {
	if s.Ledger == nil {
		return nil
	}
	if err := s.Ledger.WriteCell(ledger.Cell{
		Cell:   cell,
		Params: params,
		Seed:   ledger.SeedString(cellSeed),
		Budget: budget, Trials: res.Trials, Failures: res.Failures,
		Rate: res.Rate, WilsonLo: res.WilsonLo, WilsonHi: res.WilsonHi,
		CIStop:       s.CIWidth,
		StoppedEarly: res.Trials < budget,
		Err:          errString(res.Err),
	}); err != nil {
		return err
	}
	return s.Ledger.Err()
}

// collector resolves the heat collector for a lattice shape, nil when heat
// collection is off.
func (s SweepObs) collector(rows, cols int) *heatmap.Collector {
	if s.Heat == nil {
		return nil
	}
	return s.Heat.Collector(heatmap.GridName(rows, cols), rows, cols)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// ThresholdObserved is ThresholdIn with tracing and the SweepObs hooks:
// per-cell ledger records, defect/matched-chain heatmaps, optional CI early
// stop (rows then report the effective trial count), live progress, cell
// sharding and checkpoint resume. Rows remain bit-identical for any worker
// count, with or without observation; under a Shard only the owned cells
// produce rows (in sweep order). The error reports a sharding or resume
// mismatch — never a trial-level failure, which stays in its row as before.
func ThresholdObserved(reg *metrics.Registry, tr *tracing.Tracer, rates []float64, distances []int,
	trials, workers int, obs SweepObs) ([]ThresholdRow, error) {
	var rows []ThresholdRow
	for _, p := range rates {
		for _, d := range distances {
			res, ran, err := logicalFailRateObserved(reg, tr, d, p, trials, workers, obs)
			if err != nil {
				return rows, err
			}
			if !ran {
				continue
			}
			rows = append(rows, ThresholdRow{
				PhysRate: p,
				Distance: d,
				FailRate: res.Rate,
				WilsonLo: res.WilsonLo,
				WilsonHi: res.WilsonHi,
				Trials:   res.Trials,
			})
		}
	}
	return rows, nil
}

// MachineMemoryObserved is MachineMemoryIn with tracing and the SweepObs
// hooks wired through the full machine: each trial machine records defect
// births (MCE histories) and matched chains (master decoders) into a
// trial-private heat set, merged in trial order. ran=false means the cell
// belongs to another shard and nothing was emitted.
func MachineMemoryObserved(reg *metrics.Registry, tr *tracing.Tracer, physRate float64,
	rounds, trials, workers int, obs SweepObs) (row MemoryRow, ran bool, err error) {
	cell := mc.Seed(ExperimentSeed, mc.F64(physRate), uint64(rounds), 0x3e3)
	name := fmt.Sprintf("memory p=%g rounds=%d", physRate, rounds)
	plan, err := obs.beginCell(name, cell, trials)
	if err != nil {
		return MemoryRow{}, true, err
	}
	if plan.skip {
		return MemoryRow{}, false, nil
	}
	if r := plan.replayed; r != nil {
		return MemoryRow{
			PhysRate: physRate, Rounds: rounds,
			Failures: r.Failures, WilsonLo: r.WilsonLo, WilsonHi: r.WilsonHi,
			Trials: r.Trials,
		}, true, r.Err
	}
	// Every trial machine is shaped by DefaultMachineConfig with one patch
	// per tile (see the trial body); resolve the shared parent collector
	// for exactly that lattice.
	base := DefaultMachineConfig()
	lat := compiler.NewLayout(base.Distance, 1).Lat
	heat := obs.collector(lat.Rows, lat.Cols)
	mobs := obs.observers(name, heat)
	mobs.Prior = plan.prior
	// Trials pool machines: every trial of this cell uses the identical
	// machine shape (only the seed and the observation hooks vary), so the
	// expensive trial-independent construction — microcode stores, decoder
	// lookup tables, tableau storage — is paid roughly once per worker and
	// Reset rewinds the rest. Reset-vs-fresh equality is pinned by
	// TestMachineResetMatchesFresh; worker-count independence of the pooled
	// results by TestMachineMemoryObservedDeterminism.
	var pool sync.Pool
	res := mc.RunObserved(trials, workers, cell, reg, tr, mobs,
		func(trial int, seed uint64, ctx mc.TrialCtx) mc.Outcome {
			// The machine records into a trial-private set; its (single)
			// grid is folded into the trial's engine shard at the end, so
			// the merged heatmap stays worker-count independent.
			var hs *heatmap.Set
			if ctx.Heat != nil {
				hs = heatmap.NewSet()
			}
			var m *Machine
			if v := pool.Get(); v != nil {
				m = v.(*Machine)
				m.Reset(int64(seed), ctx.Shard, ctx.Trace, hs, ctx.BW)
			} else {
				cfg := DefaultMachineConfig()
				cfg.PatchesPerTile = 1
				cfg.Seed = int64(seed)
				cfg.DecodeWindow = cfg.Distance
				cfg.Metrics = ctx.Shard
				cfg.Tracer = ctx.Trace
				cfg.Heat = hs
				cfg.BW = ctx.BW
				if physRate > 0 {
					nm := noise.Uniform(physRate)
					cfg.Noise = &nm
				}
				m = NewMachine(cfg)
			}
			defer pool.Put(m)
			mm := m.Master()
			mm.StepCycle()
			if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LPrep0, Target: 0}); err != nil {
				return mc.Outcome{Err: err}
			}
			for c := 0; c < rounds; c++ {
				mm.StepCycle()
			}
			if err := mm.Dispatch(0, isa.LogicalInstr{Op: isa.LMeasZ, Target: 0}); err != nil {
				return mc.Outcome{Err: err}
			}
			reps, ok := mm.RunUntilDrained(rounds + 50)
			if !ok {
				return mc.Outcome{Err: fmt.Errorf("core: memory trial %d did not drain", trial)}
			}
			got := -1
			for _, r := range reps {
				for _, res := range r.Results {
					got = res.Bit
				}
			}
			// hs and ctx.Heat are non-nil together; the conjunction names
			// both receivers, which is the form the nil-gating contract
			// (gateflow) can prove.
			if hs != nil && ctx.Heat != nil {
				ctx.Heat.Merge(hs.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols))
			}
			return mc.Outcome{Fail: got != 0}
		})
	if err := obs.closeCell(name, map[string]float64{"p": physRate, "rounds": float64(rounds)}, cell, trials, res); err != nil {
		return MemoryRow{}, true, err
	}
	row = MemoryRow{
		PhysRate: physRate,
		Rounds:   rounds,
		Failures: res.Failures,
		WilsonLo: res.WilsonLo,
		WilsonHi: res.WilsonHi,
		Trials:   res.Trials,
	}
	return row, true, res.Err
}

// logicalFailRateObserved is the single implementation behind
// logicalFailRate and ThresholdObserved: the windowed-decode memory
// experiment with every observation hook nil-gated. ran=false means the
// cell belongs to another shard; err reports a resume/shard mismatch
// (trial-level failures stay inside the Result as before).
func logicalFailRateObserved(reg *metrics.Registry, tr *tracing.Tracer, d int, p float64,
	trials, workers int, obs SweepObs) (mc.Result, bool, error) {
	cell := mc.Seed(ExperimentSeed, mc.F64(p), uint64(d))
	name := fmt.Sprintf("threshold p=%g d=%d", p, d)
	plan, err := obs.beginCell(name, cell, trials)
	if err != nil {
		return mc.Result{}, true, err
	}
	if plan.skip {
		return mc.Result{}, false, nil
	}
	if plan.replayed != nil {
		return *plan.replayed, true, nil
	}
	lat := surface.NewPlanar(d)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	heat := obs.collector(lat.Rows, lat.Cols)
	mobs := obs.observers(name, heat)
	mobs.Prior = plan.prior
	res := mc.RunObserved(trials, workers, cell, reg, tr, mobs,
		func(trial int, seed uint64, ctx mc.TrialCtx) mc.Outcome {
			tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(mc.Derive(seed, 0)))))
			inj := noise.NewInjector(noise.Uniform(p), int64(mc.Derive(seed, 1)))
			noisy := awg.New(tb, inj)
			clean := awg.New(tb, nil)
			run := func(u *awg.ExecutionUnit) map[int]int {
				synd := make(map[int]int)
				u.MeasSink = func(q, bit int) { synd[q] = bit }
				for _, w := range words {
					u.ExecuteWord(w)
				}
				return synd
			}
			hist := decoder.NewHistory(lat)
			frame := decoder.NewPauliFrame()
			win := decoder.NewWindowDecoder(decoder.NewGlobalDecoder(lat), d)
			if ctx.Shard != nil {
				win.SetInstr(decoder.NewInstr(ctx.Shard))
			}
			if ctx.Trace != nil {
				win.SetTracer(ctx.Trace, 0)
			}
			if ctx.Heat != nil {
				hist.SetHeat(ctx.Heat)
				win.SetHeat(ctx.Heat)
			}
			run(clean)
			hist.Absorb(run(clean))
			// The noisy-round count tracks the code distance: the window
			// decoder is d rounds deep, so fewer rounds would never fill —
			// let alone exercise — a d=5 or d=7 cell's own decode window.
			for round := 0; round < d; round++ {
				inj.SetLocation(round, 0)
				win.Absorb(hist.Absorb(run(noisy)), frame)
			}
			win.Absorb(hist.Absorb(run(clean)), frame)
			win.Flush(frame)
			logZ := lat.LogicalZ()
			raw := tb.MeasureObservable(nil, logZ)
			want := 1 - 2*frame.ParityOn(logZ, true)
			return mc.Outcome{Fail: raw != 0 && raw != want}
		})
	if err := obs.closeCell(name, map[string]float64{"p": p, "d": float64(d)}, cell, trials, res); err != nil {
		return res, true, err
	}
	return res, true, nil
}
