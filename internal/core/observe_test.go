package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"quest/internal/bwprofile"
	"quest/internal/events"
	"quest/internal/heatmap"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
)

// observedThreshold runs a small observed threshold sweep and returns the
// rows, the raw ledger bytes and the heatmap JSON, all produced with the
// given worker count.
func observedThreshold(t *testing.T, workers int, ciWidth float64, trials int) ([]ThresholdRow, []byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	lw, err := ledger.NewWriter(&buf, "threshold-test", map[string]string{"suite": "observe_test"}, 1)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	heat := heatmap.NewSet()
	rows, err := ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, trials, workers,
		SweepObs{Ledger: lw, Heat: heat, CIWidth: ciWidth})
	if err != nil {
		t.Fatalf("ThresholdObserved: %v", err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var hj bytes.Buffer
	if err := heat.WriteJSON(&hj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return rows, buf.Bytes(), hj.Bytes()
}

// TestThresholdObservedLedgerDeterminism pins the headline acceptance
// criterion: the ledger (and the heatmaps, and the rows) are byte-identical
// for workers=1 and workers=8, with and without CI early stop.
func TestThresholdObservedLedgerDeterminism(t *testing.T) {
	for _, ciWidth := range []float64{0, 0.15} {
		rows1, led1, heat1 := observedThreshold(t, 1, ciWidth, 120)
		rows8, led8, heat8 := observedThreshold(t, 8, ciWidth, 120)
		if !reflect.DeepEqual(rows1, rows8) {
			t.Errorf("ciWidth=%v: rows differ across worker counts:\n1: %+v\n8: %+v", ciWidth, rows1, rows8)
		}
		if !bytes.Equal(led1, led8) {
			t.Errorf("ciWidth=%v: ledger bytes differ across worker counts", ciWidth)
		}
		if !bytes.Equal(heat1, heat8) {
			t.Errorf("ciWidth=%v: heatmap JSON differs across worker counts", ciWidth)
		}
		rep, err := ledger.Validate(led1)
		if err != nil {
			t.Fatalf("ciWidth=%v: ledgercheck rejects the sweep ledger: %v", ciWidth, err)
		}
		if rep.Cells != 2 {
			t.Errorf("ciWidth=%v: ledger has %d cells, want 2", ciWidth, rep.Cells)
		}
	}
}

// TestThresholdObservedCIStopSavesTrials pins the point of adaptive stopping:
// with a loose width at least one cell converges well before the budget, the
// reported interval meets the requested width, and the estimate agrees with
// the fixed-budget run on the trials both executed (they share per-trial
// seeds, so the early-stop row is a strict prefix of the fixed run).
func TestThresholdObservedCIStopSavesTrials(t *testing.T) {
	const budget = 400
	const width = 0.15
	fixed, _ := ThresholdObserved(nil, nil, []float64{2e-3}, []int{3}, budget, 4, SweepObs{})
	stopped, _ := ThresholdObserved(nil, nil, []float64{2e-3}, []int{3}, budget, 4, SweepObs{CIWidth: width})
	f, s := fixed[0], stopped[0]
	if s.Trials >= budget {
		t.Fatalf("ci-stop ran the whole budget (%d trials); widen the test margin", s.Trials)
	}
	if got := s.WilsonHi - s.WilsonLo; got > width {
		t.Errorf("stopped cell interval width %.4f exceeds requested %.4f", got, width)
	}
	if s.FailRate < f.WilsonLo-width || s.FailRate > f.WilsonHi+width {
		t.Errorf("early-stop estimate %.4f far from fixed-budget %.4f [%.4f, %.4f]",
			s.FailRate, f.FailRate, f.WilsonLo, f.WilsonHi)
	}
	if f.Trials != budget {
		t.Errorf("fixed run reports %d trials, want the full budget %d", f.Trials, budget)
	}
}

// TestThresholdObservedHeatContent sanity-checks what the heatmaps say for a
// d=5 cell: defects were born, matching recorded endpoints, and the grid has
// the lattice's shape.
func TestThresholdObservedHeatContent(t *testing.T) {
	heat := heatmap.NewSet()
	_, _ = ThresholdObserved(nil, nil, []float64{4e-3}, []int{5}, 40, 4, SweepObs{Heat: heat})
	names := heat.Names()
	if len(names) != 1 {
		t.Fatalf("heat set has grids %v, want exactly one", names)
	}
	c := heat.Collector(names[0], 9, 9) // d=5 planar lattice is 9×9
	if c.TotalDefects() == 0 {
		t.Error("no defect births recorded at p=4e-3")
	}
	if c.Pairs()+c.Boundary() == 0 {
		t.Error("no matches recorded at p=4e-3")
	}
}

// TestThresholdObservedProgressStream pins the progress plumbing end to end:
// cell-labelled snapshots arrive for every sweep cell and each cell ends
// with a Done snapshot matching its row.
func TestThresholdObservedProgressStream(t *testing.T) {
	finals := map[string]mc.Progress{}
	rows, err := ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, 60, 4,
		SweepObs{Progress: func(cell string, p mc.Progress) {
			if p.Done {
				finals[cell] = p
			}
		}})
	if err != nil {
		t.Fatalf("ThresholdObserved: %v", err)
	}
	if len(finals) != len(rows) {
		t.Fatalf("Done snapshots for %d cells, want %d", len(finals), len(rows))
	}
	for cell, p := range finals {
		if p.Completed != 60 {
			t.Errorf("%s: final Completed = %d, want 60", cell, p.Completed)
		}
	}
}

// TestMachineMemoryObservedDeterminism runs the machine-level experiment with
// the full observer bundle and pins worker-count independence of the row,
// ledger and heat.
func TestMachineMemoryObservedDeterminism(t *testing.T) {
	runAt := func(workers int) (MemoryRow, []byte, []byte) {
		var buf bytes.Buffer
		lw, err := ledger.NewWriter(&buf, "memory-test", nil, 1)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		heat := heatmap.NewSet()
		row, ran, err := MachineMemoryObserved(nil, nil, 2e-3, 6, 10, workers,
			SweepObs{Ledger: lw, Heat: heat})
		if err != nil {
			t.Fatalf("MachineMemoryObserved: %v", err)
		}
		if !ran {
			t.Fatal("MachineMemoryObserved skipped its cell without a Shard")
		}
		if err := lw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		var hj bytes.Buffer
		if err := heat.WriteJSON(&hj); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return row, buf.Bytes(), hj.Bytes()
	}
	row1, led1, heat1 := runAt(1)
	row4, led4, heat4 := runAt(4)
	if row1 != row4 {
		t.Errorf("rows differ across worker counts:\n1: %+v\n4: %+v", row1, row4)
	}
	if !bytes.Equal(led1, led4) {
		t.Errorf("ledger bytes differ across worker counts")
	}
	if !bytes.Equal(heat1, heat4) {
		t.Errorf("heatmap JSON differs across worker counts")
	}
	if _, err := ledger.Validate(led1); err != nil {
		t.Errorf("ledgercheck rejects the memory ledger: %v", err)
	}
}

// TestThresholdObservedEventsPureSideband pins the telemetry acceptance
// criterion: with a live events sampler wired into the progress stream, the
// rows, ledger bytes and heatmap JSON are byte-identical to the events-off
// run, for 1 and 8 workers alike — the sampler observes, it never perturbs.
func TestThresholdObservedEventsPureSideband(t *testing.T) {
	run := func(workers int, withEvents bool) ([]ThresholdRow, []byte, []byte, []byte) {
		t.Helper()
		var buf bytes.Buffer
		lw, err := ledger.NewWriter(&buf, "threshold-test", map[string]string{"suite": "observe_test"}, 1)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		heat := heatmap.NewSet()
		obs := SweepObs{Ledger: lw, Heat: heat, CIWidth: 0.15}
		var evbuf bytes.Buffer
		var smp *events.Sampler
		if withEvents {
			smp = events.NewSampler(events.NewWriter(&evbuf, nil), metrics.New())
			if err := smp.Start(events.Header{Experiment: "threshold-test"}, time.Hour); err != nil {
				t.Fatalf("sampler Start: %v", err)
			}
			obs.Progress = func(cell string, p mc.Progress) { smp.ObserveCell(cell, p) }
		}
		rows, err := ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, 120, workers, obs)
		if err != nil {
			t.Fatalf("ThresholdObserved: %v", err)
		}
		if err := smp.Stop(); err != nil {
			t.Fatalf("sampler Stop: %v", err)
		}
		if err := lw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		var hj bytes.Buffer
		if err := heat.WriteJSON(&hj); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rows, buf.Bytes(), hj.Bytes(), evbuf.Bytes()
	}

	offRows, offLed, offHeat, _ := run(1, false)
	for _, workers := range []int{1, 8} {
		rows, led, heat, ev := run(workers, true)
		if !reflect.DeepEqual(rows, offRows) {
			t.Errorf("workers=%d: rows differ with events on:\noff: %+v\non:  %+v", workers, offRows, rows)
		}
		if !bytes.Equal(led, offLed) {
			t.Errorf("workers=%d: ledger bytes differ with events on", workers)
		}
		if !bytes.Equal(heat, offHeat) {
			t.Errorf("workers=%d: heatmap JSON differs with events on", workers)
		}
		// The side-band itself must be a valid stream with both cells done.
		rep, err := events.Validate(ev)
		if err != nil {
			t.Fatalf("workers=%d: event stream invalid: %v", workers, err)
		}
		if rep.Cells != 2 || rep.DoneCells != 2 {
			t.Errorf("workers=%d: event report = %+v, want 2 done cells", workers, rep)
		}
	}
}

// TestBeginCellReplayEmitsDoneProgress pins that a resume-replayed cell
// still surfaces on the progress stream (and thus in a live events view) as
// a terminal Done snapshot carrying the recorded counts.
func TestBeginCellReplayEmitsDoneProgress(t *testing.T) {
	// Record a complete 2-cell sweep, then resume from it with a progress
	// sink attached: both cells replay without executing a trial, and both
	// must emit exactly one Done snapshot.
	var buf bytes.Buffer
	lw, err := ledger.NewWriter(&buf, "threshold-test", map[string]string{"suite": "observe_test"}, 1)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, 30, 4,
		SweepObs{Ledger: lw}); err != nil {
		t.Fatalf("ThresholdObserved: %v", err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	res, err := ledger.NewResume(buf.Bytes())
	if err != nil {
		t.Fatalf("NewResume: %v", err)
	}
	type snap struct {
		cell string
		p    mc.Progress
	}
	var got []snap
	rows, err := ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, 30, 4, SweepObs{
		Resume:   res,
		Progress: func(cell string, p mc.Progress) { got = append(got, snap{cell, p}) },
	})
	if err != nil {
		t.Fatalf("resumed ThresholdObserved: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d progress snapshots, want 2 (one per replayed cell): %+v", len(got), got)
	}
	for i, s := range got {
		r := rows[i]
		if !s.p.Done || s.p.Completed != r.Trials || s.p.Budget != 30 {
			t.Errorf("snapshot %d = %+v, want Done with trials=%d budget=30", i, s.p, r.Trials)
		}
		lo, hi := mc.Wilson(s.p.Failures, s.p.Completed, 1.96)
		if s.p.WilsonLo != lo || s.p.WilsonHi != hi || s.p.WilsonLo != r.WilsonLo {
			t.Errorf("snapshot %d interval [%v, %v] inconsistent with recorded cell [%v, %v]",
				i, s.p.WilsonLo, s.p.WilsonHi, r.WilsonLo, r.WilsonHi)
		}
	}
}

// TestMachineMemoryBWPureSideband pins the bandwidth profiler's acceptance
// criteria in one sweep: with a recorder wired through the machine, the row,
// ledger bytes and heatmap JSON are byte-identical to the profiler-off run
// (the recorder observes, it never perturbs), and the quest-bw/1 artifact's
// own bytes are identical for 1 and 8 workers (per-trial shards merged in
// trial order, like the ledger).
func TestMachineMemoryBWPureSideband(t *testing.T) {
	run := func(workers int, withBW bool) (MemoryRow, []byte, []byte, []byte) {
		t.Helper()
		var buf bytes.Buffer
		lw, err := ledger.NewWriter(&buf, "memory-test", nil, 1)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		heat := heatmap.NewSet()
		obs := SweepObs{Ledger: lw, Heat: heat}
		var bw *bwprofile.Recorder
		if withBW {
			bw = bwprofile.New(8)
			obs.BW = bw
		}
		row, ran, err := MachineMemoryObserved(nil, nil, 2e-3, 6, 10, workers, obs)
		if err != nil {
			t.Fatalf("MachineMemoryObserved: %v", err)
		}
		if !ran {
			t.Fatal("MachineMemoryObserved skipped its cell without a Shard")
		}
		if err := lw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		var hj bytes.Buffer
		if err := heat.WriteJSON(&hj); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var bwb bytes.Buffer
		if bw != nil {
			if err := bw.WriteJSONL(&bwb, "memory-test", nil); err != nil {
				t.Fatalf("WriteJSONL: %v", err)
			}
		}
		return row, buf.Bytes(), hj.Bytes(), bwb.Bytes()
	}

	offRow, offLed, offHeat, _ := run(1, false)
	var wave []byte
	for _, workers := range []int{1, 8} {
		row, led, heat, bwBytes := run(workers, true)
		if row != offRow {
			t.Errorf("workers=%d: row differs with bw on:\noff: %+v\non:  %+v", workers, offRow, row)
		}
		if !bytes.Equal(led, offLed) {
			t.Errorf("workers=%d: ledger bytes differ with bw on", workers)
		}
		if !bytes.Equal(heat, offHeat) {
			t.Errorf("workers=%d: heatmap JSON differs with bw on", workers)
		}
		rep, err := bwprofile.Validate(bwBytes)
		if err != nil {
			t.Fatalf("workers=%d: bw artifact invalid: %v", workers, err)
		}
		if rep.Summary.TotalInstrs == 0 || rep.Summary.TotalBytes == 0 {
			t.Errorf("workers=%d: bw artifact recorded nothing: %+v", workers, rep.Summary)
		}
		if wave == nil {
			wave = bwBytes
		} else if !bytes.Equal(wave, bwBytes) {
			t.Errorf("bw artifact bytes differ between 1 and %d workers", workers)
		}
	}
}
