package core

import (
	"fmt"
	"math"
	"strings"

	"quest/internal/workload"
)

// MarkdownReport regenerates the entire evaluation as a self-contained
// Markdown document — the live counterpart of EXPERIMENTS.md, produced from
// the current code rather than a past run (`questbench -md > REPORT.md`).
// Slow statistical sections (threshold, machine memory) run with the given
// trial count (zero skips them) fanned over `workers` goroutines (<=0 means
// GOMAXPROCS); the statistical numbers do not depend on the worker count.
func MarkdownReport(statTrials, workers int) string {
	var b strings.Builder
	b.WriteString("# QuEST evaluation report (regenerated)\n\n")
	b.WriteString("Operating point: Projected_D technology, Steane syndrome, physical error rate 1e-4.\n")

	section := func(title string) { fmt.Fprintf(&b, "\n## %s\n\n", title) }
	row := func(cells ...string) {
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	header := func(cells ...string) {
		row(cells...)
		seps := make([]string, len(cells))
		for i := range seps {
			seps[i] = "---"
		}
		row(seps...)
	}

	section("Figure 2 — baseline bandwidth vs machine size (Shor)")
	header("bits", "logical qubits", "distance", "physical qubits", "baseline BW")
	for _, r := range Fig2() {
		row(itoa(r.Bits), itoa(r.LogicalQubits), itoa(r.Distance),
			fmt.Sprintf("%.3g", float64(r.PhysQubits)), r.Bandwidth.String())
	}

	section("Figure 6 — QECC:regular instruction ratio")
	header("workload", "ratio", "orders")
	for _, r := range Fig6() {
		row(r.Workload, fmt.Sprintf("%.3g", r.Ratio), fmt.Sprintf("10^%.1f", r.Orders))
	}

	section("Figure 10 — microcode capacity scaling")
	header("qubits", "RAM bits", "FIFO bits", "unit-cell bits")
	for _, r := range Fig10() {
		row(itoa(r.Qubits), itoa(r.RAMBits), itoa(r.FIFOBits), itoa(r.CellBits))
	}

	section("Figure 11 — qubits serviced per MCE at 4 Kb")
	header("memory config", "RAM", "FIFO", "unit cell")
	for _, r := range Fig11() {
		row(r.Config.String(), itoa(r.RAM), itoa(r.FIFO), itoa(r.UnitCell))
	}

	section("Figure 13 — T-factory instruction overhead")
	header("workload", "rounds", "factories", "ratio")
	for _, r := range Fig13() {
		row(r.Workload, itoa(r.DistillRounds), itoa(r.Factories), fmt.Sprintf("%.3g", r.Ratio))
	}

	section("Figure 14 — global bandwidth savings")
	header("workload", "baseline", "QuEST", "QuEST+cache", "savings", "+cache")
	for _, r := range Fig14() {
		row(r.Workload, r.BaselineBW.String(), r.QuESTBW.String(), r.QuESTCacheBW.String(),
			fmt.Sprintf("10^%.1f", r.OrdersQuEST), fmt.Sprintf("10^%.1f", r.OrdersCache))
	}
	fmt.Fprintf(&b, "\nCoefficient of variation across tech/syndrome configs: %.5f%%.\n",
		100*Fig14CoefficientOfVariation())

	section("Figure 15 — sensitivity to physical error rate")
	header("rate", "workload", "distance", "savings", "+cache", "distill ov")
	for _, r := range Fig15() {
		row(fmt.Sprintf("%.0e", r.ErrorRate), r.Workload, itoa(r.Distance),
			fmt.Sprintf("%.3g", r.SavingsQuEST), fmt.Sprintf("%.3g", r.SavingsCache),
			fmt.Sprintf("%.3g", r.DistillOv))
	}

	section("Figure 16 — MCE throughput by technology × syndrome")
	header("technology", "syndrome", "config", "qubits/MCE")
	for _, r := range Fig16() {
		row(r.Tech, r.Schedule, r.Config.String(), itoa(r.Qubits))
	}

	section("Table 1 — technology parameters")
	header("set", "t_prep", "t_1", "t_meas", "t_CNOT", "T_ecc")
	for _, t := range workload.Techs() {
		row(t.Name, ns(t.TPrep), ns(t.T1), ns(t.TMeas), ns(t.TCNOT), ns(t.TEcc))
	}

	section("Table 2 — QECC microcode design points")
	header("syndrome", "instructions", "optimal config", "JJs", "power")
	for _, r := range Table2() {
		row(r.Schedule, itoa(r.Instructions), r.Config.String(), itoa(r.JJs),
			fmt.Sprintf("%.1f µW", r.PowerUW))
	}

	section("Extensions")
	header("outer levels", "inner qubits", "logical error", "hybrid savings")
	for _, r := range ExtConcat() {
		row(itoa(r.Levels), itoa(r.InnerQubits), fmt.Sprintf("%.3g", r.LogicalError),
			fmt.Sprintf("%.3g", r.Savings))
	}
	b.WriteString("\n")
	header("workload", "baseline DDR channels", "QuEST utilization")
	for _, r := range ExtDRAM() {
		row(r.Workload, itoa(r.BaselineChannels), fmt.Sprintf("%.2e", r.QuESTUtilization))
	}

	if statTrials > 0 {
		section("Validation — logical failure rates (statistical)")
		header("phys rate", "distance", "fail rate", "95% CI", "trials")
		for _, r := range Threshold([]float64{1e-3, 5e-4}, []int{3, 5}, statTrials, workers) {
			row(fmt.Sprintf("%.0e", r.PhysRate), itoa(r.Distance),
				fmt.Sprintf("%.4f", r.FailRate),
				fmt.Sprintf("[%.4f, %.4f]", r.WilsonLo, r.WilsonHi), itoa(r.Trials))
		}
		if mem, err := MachineMemory(1e-4, 6, statTrials, workers); err == nil {
			fmt.Fprintf(&b, "\nMachine-level memory at p=1e-4 over %d rounds: %.3f failure rate "+
				"(95%% CI [%.3f, %.3f], %d trials).\n",
				mem.Rounds, mem.FailRate(), mem.WilsonLo, mem.WilsonHi, mem.Trials)
		}
	}

	section("Cycle-level machine demo")
	if res, err := MachineDemo(20); err == nil {
		fmt.Fprintf(&b, "Cached distillation loop replayed 20×: %d instructions retired over %d cycles; "+
			"baseline bus %d B vs QuEST bus %d B — **measured savings %.0f×**.\n",
			res.LogicalRetired, res.Cycles, res.BaselineBusBytes, res.QuESTBusBytes, res.MeasuredSavings)
	}
	return b.String()
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ns(v float64) string {
	if v >= 1000 && math.Mod(v, 1000) == 0 {
		return fmt.Sprintf("%.0fµs", v/1000)
	}
	return fmt.Sprintf("%.0fns", v)
}
