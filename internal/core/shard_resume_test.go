package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"quest/internal/ledger"
	"quest/internal/metrics"
)

// shardedSweep runs the combined threshold+memory sweep (2 threshold cells
// then 1 memory cell, sharing one shard cursor like questbench does) as
// shard index/count, returning the ledger bytes and the emitted row counts.
func shardedSweep(t *testing.T, index, count, trials int, batched bool) ([]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	info := ledger.ShardInfo{Index: index, Count: count}
	lw, err := ledger.NewShardWriter(&buf, "shard-test", map[string]string{"suite": "shard_resume_test"}, 1, info)
	if err != nil {
		t.Fatalf("NewShardWriter: %v", err)
	}
	shard, err := NewShard(index, count)
	if err != nil {
		t.Fatalf("NewShard: %v", err)
	}
	obs := SweepObs{Ledger: lw, Shard: shard}
	var rows []ThresholdRow
	if batched {
		rows, err = ThresholdBatched(nil, nil, []float64{2e-3, 4e-3}, []int{3}, trials, 4, obs)
	} else {
		rows, err = ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, trials, 4, obs)
	}
	if err != nil {
		t.Fatalf("threshold sweep: %v", err)
	}
	emitted := len(rows)
	_, ran, err := MachineMemoryObserved(nil, nil, 2e-3, 4, 6, 4, obs)
	if err != nil {
		t.Fatalf("memory sweep: %v", err)
	}
	if ran {
		emitted++
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), emitted
}

// TestShardedSweepMergesByteIdentical is the tentpole invariant: N sharded
// processes produce N complete ledgers that merge into bytes identical to
// the 1-process run, for both trial engines, with the shard cursor spanning
// the threshold and memory entry points exactly as questbench wires it.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		batched bool
	}{{"scalar", false}, {"batched", true}} {
		t.Run(tc.name, func(t *testing.T) {
			const trials = 12
			full, fullRows := shardedSweep(t, 0, 1, trials, tc.batched)
			if fullRows != 3 {
				t.Fatalf("unsharded sweep emitted %d cells, want 3", fullRows)
			}
			for _, n := range []int{2, 3} {
				var shards []*ledger.ShardLedger
				rowSum := 0
				for i := 0; i < n; i++ {
					data, rows := shardedSweep(t, i, n, trials, tc.batched)
					rowSum += rows
					sh, err := ledger.ParseShard(data)
					if err != nil {
						t.Fatalf("ParseShard(%d/%d): %v", i, n, err)
					}
					shards = append(shards, sh)
				}
				if rowSum != fullRows {
					t.Errorf("N=%d: shards emitted %d cells total, want %d", n, rowSum, fullRows)
				}
				merged, err := ledger.Merge(shards)
				if err != nil {
					t.Fatalf("N=%d: Merge: %v", n, err)
				}
				if !bytes.Equal(merged, full) {
					t.Errorf("N=%d: merged ledger differs from the 1-process bytes", n)
				}
			}
		})
	}
}

// thresholdResumeRun runs the 2-cell threshold sweep with a ledger, an
// optional resume checkpoint, and an executed-trial counter.
func thresholdResumeRun(t *testing.T, trials int, ciWidth float64, res *ledger.Resume) ([]ThresholdRow, []byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	lw, err := ledger.NewWriter(&buf, "resume-test", nil, 1)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	reg := metrics.New()
	rows, err := ThresholdObserved(reg, nil, []float64{2e-3, 4e-3}, []int{3}, trials, 4,
		SweepObs{Ledger: lw, CIWidth: ciWidth, Resume: res})
	if err != nil {
		t.Fatalf("ThresholdObserved: %v", err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return rows, buf.Bytes(), reg.Counter("mc.trials").Value()
}

// TestResumeSkipsCompletedTrials pins both halves of the resume contract:
// the resumed run's rows and ledger bytes equal the uninterrupted run's, and
// recorded trials are not re-executed (completed cells run zero trials, the
// partial cell only its remainder).
func TestResumeSkipsCompletedTrials(t *testing.T) {
	const trials = 30
	wantRows, full, executed := thresholdResumeRun(t, trials, 0, nil)
	if executed != 2*trials {
		t.Fatalf("uninterrupted run executed %d trials, want %d", executed, 2*trials)
	}
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	// Cut mid-second-cell: header + cell 0's 31 lines + 10 of cell 1's
	// trials, plus a torn fragment like a real crash leaves.
	cut := append(bytes.Join(lines[:1+trials+1+10], []byte("\n")), '\n')
	cut = append(cut, []byte(`{"record":"trial","cell":"thresh`)...)
	res, err := ledger.NewResume(cut)
	if err != nil {
		t.Fatalf("NewResume: %v", err)
	}
	if !res.Truncated() {
		t.Error("torn final line not flagged")
	}
	rows, resumed, executed := thresholdResumeRun(t, trials, 0, res)
	if executed != trials-10 {
		t.Errorf("resumed run executed %d trials, want %d (cell 0 replayed, cell 1 resumed at trial 10)", executed, trials-10)
	}
	if len(rows) != len(wantRows) {
		t.Fatalf("resumed run emitted %d rows, want %d", len(rows), len(wantRows))
	}
	for i := range rows {
		if rows[i] != wantRows[i] {
			t.Errorf("row %d differs after resume: %+v vs %+v", i, rows[i], wantRows[i])
		}
	}
	if !bytes.Equal(resumed, full) {
		t.Errorf("resumed ledger differs from the uninterrupted bytes")
	}
}

// TestResumeConvergesUnderCIStop pins the interaction between resume and
// adaptive stopping: prior outcomes feed the Wilson-width frontier before
// any worker starts, so the stop decision — and the bytes — converge to the
// uninterrupted run's.
func TestResumeConvergesUnderCIStop(t *testing.T) {
	const budget, width = 120, 0.15
	_, full, _ := thresholdResumeRun(t, budget, width, nil)
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	for _, cutAt := range []int{3, len(lines) / 2, len(lines) - 1} {
		res, err := ledger.NewResume(append(bytes.Join(lines[:cutAt], []byte("\n")), '\n'))
		if err != nil {
			t.Fatalf("NewResume(cut at %d): %v", cutAt, err)
		}
		_, resumed, _ := thresholdResumeRun(t, budget, width, res)
		if !bytes.Equal(resumed, full) {
			t.Errorf("cut at line %d: resumed ledger differs from the uninterrupted bytes", cutAt)
		}
	}
}

// TestResumeRefusesForeignCheckpoint pins the overlap/mismatch detection: a
// checkpoint whose recorded budget or seeds disagree with the sweep is
// refused with an error, never silently spliced in.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	const trials = 10
	_, full, _ := thresholdResumeRun(t, trials, 0, nil)

	t.Run("budget mismatch", func(t *testing.T) {
		res, err := ledger.NewResume(full)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, trials*2, 4,
			SweepObs{Resume: res})
		if err == nil || !strings.Contains(err.Error(), "budget") {
			t.Errorf("budget mismatch not refused: %v", err)
		}
	})
	t.Run("seed mismatch", func(t *testing.T) {
		// Tamper with a recorded trial seed and leave the cell partial.
		lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
		var tr ledger.Trial
		if err := json.Unmarshal(lines[1], &tr); err != nil {
			t.Fatal(err)
		}
		tr.Seed = ledger.SeedString(0xdeadbeef)
		tampered, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		cut := append(bytes.Join([][]byte{lines[0], tampered}, []byte("\n")), '\n')
		res, err := ledger.NewResume(cut)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ThresholdObserved(nil, nil, []float64{2e-3, 4e-3}, []int{3}, trials, 4,
			SweepObs{Resume: res})
		if err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Errorf("seed mismatch not refused: %v", err)
		}
	})
}
