// Package decoder implements the paper's two-level error decoding scheme
// (§4.2, Appendix A.2). Syndrome measurements from each QECC cycle are
// differenced in time to produce *defects* (syndrome changes). A local,
// lookup-table decoder inside each MCE resolves the common case — an
// isolated single-qubit error, which produces one or two adjacent defects in
// a single round — and only unresolved defect patterns escalate to the
// global decoder in the master controller, which runs minimum-weight
// matching over the space-time defect graph.
//
// Because X and Z errors are unitary, corrections are not applied as
// physical gates: they accumulate in a Pauli frame (a classical log) that is
// consulted when qubits are finally measured, exactly as the paper describes.
package decoder

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"quest/internal/heatmap"
	"quest/internal/surface"
)

// Defect is a syndrome change at a lattice ancilla in a specific round.
type Defect struct {
	Round int
	Qubit int // flat ancilla index
	R, C  int // lattice coordinates (denormalized for distance math)
	IsX   bool
}

// SyndromeHistory differencess consecutive syndrome rounds into defects. The
// zero value is not usable; construct with NewHistory.
//
// The reference frame is a flat slice indexed by qubit (-1 = no reference)
// rather than a map: rounds arrive every cycle, and the slice turns the
// per-round map churn into index stores. A side benefit is that Absorb scans
// qubits in index order, so the returned defect slice has a deterministic
// order regardless of the iteration order of the caller's syndrome map.
type SyndromeHistory struct {
	lat   surface.Lattice
	prev  []int8 // -1 = unknown, else last observed bit
	round int
	heat  *heatmap.Collector // nil unless SetHeat bound one
}

// NewHistory returns an empty history for the lattice.
func NewHistory(lat surface.Lattice) *SyndromeHistory {
	h := &SyndromeHistory{lat: lat, prev: make([]int8, lat.NumQubits())}
	for i := range h.prev {
		h.prev[i] = -1
	}
	return h
}

// Round returns the number of rounds absorbed so far.
func (h *SyndromeHistory) Round() int { return h.round }

// Absorb ingests one round of syndrome bits (ancilla flat index → bit) and
// returns the defects: ancillas whose bit changed since the previous round.
// The first round establishes the reference frame and yields no defects for
// ancillas whose initial random value is first observed (X-syndromes start
// random; treating round 0 as reference is the standard convention).
func (h *SyndromeHistory) Absorb(synd map[int]int) []Defect {
	var defects []Defect
	for q := range h.prev {
		bit, ok := synd[q]
		if !ok {
			continue
		}
		if prev := h.prev[q]; prev >= 0 && int(prev) != bit && h.round > 0 {
			r, c := h.lat.Coord(q)
			defects = append(defects, Defect{
				Round: h.round,
				Qubit: q,
				R:     r,
				C:     c,
				IsX:   h.lat.RoleOf(q) == surface.RoleAncillaX,
			})
			if h.heat != nil {
				h.heat.Defect(r, c)
			}
		}
		h.prev[q] = int8(bit)
	}
	h.round++
	return defects
}

// Reset clears the history.
func (h *SyndromeHistory) Reset() {
	for i := range h.prev {
		h.prev[i] = -1
	}
	h.round = 0
}

// Forget drops the reference values of the given ancillas, so their next
// observation re-establishes the frame instead of producing defects. Used
// when a patch is (re)initialized or measured out: the old syndrome record
// no longer describes the state.
func (h *SyndromeHistory) Forget(qubits []int) {
	for _, q := range qubits {
		h.prev[q] = -1
	}
}

// Correction is a Pauli correction on a data qubit recorded in the frame.
type Correction struct {
	Qubit int
	// FlipX true corrects an X (bit-flip) error; otherwise a Z error.
	FlipX bool
}

// bitset is a lazily grown bit vector keyed by qubit index.
type bitset []uint64

func (b *bitset) toggle(i int) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] ^= 1 << (uint(i) & 63)
}

func (b bitset) get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b bitset) unset(i int) {
	w := i >> 6
	if w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// PauliFrame is the classical correction log. Corrections toggle: applying
// the same correction twice cancels it.
//
// The frame is consulted and updated every decode round, so pending flips
// live in bitsets rather than maps: Apply is one XOR instead of a map
// insert/delete pair, and ParityOn is a bit probe per support qubit. The
// BenchmarkFrameToggle benchmark quantifies the difference.
type PauliFrame struct {
	x bitset
	z bitset
}

// NewPauliFrame returns an empty frame.
func NewPauliFrame() *PauliFrame {
	return &PauliFrame{}
}

// Apply toggles a correction in the frame.
func (f *PauliFrame) Apply(c Correction) {
	if c.FlipX {
		f.x.toggle(c.Qubit)
	} else {
		f.z.toggle(c.Qubit)
	}
}

// Reset drops every pending flip, returning the frame to its freshly
// constructed state while keeping the bitset storage — the batched trial
// engine pools frames across trials instead of reallocating per trial.
func (f *PauliFrame) Reset() {
	for i := range f.x {
		f.x[i] = 0
	}
	for i := range f.z {
		f.z[i] = 0
	}
}

// Clear drops all pending flips on the given qubits (used when a patch is
// re-prepared: the fresh state owes nothing to past corrections).
func (f *PauliFrame) Clear(qubits []int) {
	for _, q := range qubits {
		f.x.unset(q)
		f.z.unset(q)
	}
}

// XFlips returns the set of qubits with pending X corrections.
func (f *PauliFrame) XFlips() map[int]bool { return f.x.asMap() }

// ZFlips returns the set of qubits with pending Z corrections.
func (f *PauliFrame) ZFlips() map[int]bool { return f.z.asMap() }

// asMap materializes the set bits as the map the reporting API exposes.
func (b bitset) asMap() map[int]bool {
	m := make(map[int]bool)
	for w, word := range b {
		for word != 0 {
			m[w*64+bits.TrailingZeros64(word)] = true
			word &= word - 1
		}
	}
	return m
}

// ParityOn returns the parity (0/1) of pending flips of the given kind over
// the support set — used to adjust logical measurement outcomes.
func (f *PauliFrame) ParityOn(support []int, flipX bool) int {
	b := f.z
	if flipX {
		b = f.x
	}
	p := 0
	for _, q := range support {
		if b.get(q) {
			p ^= 1
		}
	}
	return p
}

// LocalDecoder is the MCE-resident lookup-table decoder. It handles the
// frequent case the paper assigns to it: isolated single-qubit errors, which
// appear as one defect (boundary-adjacent error) or a pair of defects of the
// same type in the same round whose ancillas share exactly one data qubit.
// Anything else is left for the global decoder.
type LocalDecoder struct {
	lat surface.Lattice
	// lut maps a sorted ancilla pair (a<<32|b) to the shared data qubit.
	lut map[uint64]int
	// boundaryLUT maps a single boundary-row ancilla to the data qubit
	// between it and the boundary.
	boundaryLUT map[int]int
}

// NewLocalDecoder builds the lookup tables for a lattice. Table construction
// is the "programming" of the MCE's decode pipeline.
func NewLocalDecoder(lat surface.Lattice) *LocalDecoder {
	d := &LocalDecoder{lat: lat, lut: make(map[uint64]int), boundaryLUT: make(map[int]int)}
	ancillas := append(lat.Qubits(surface.RoleAncillaX), lat.Qubits(surface.RoleAncillaZ)...)
	// Pairs sharing one data qubit.
	owner := make(map[int][]int) // data qubit -> adjacent same-type ancillas
	for _, a := range ancillas {
		for _, dq := range lat.StabilizerSupport(a) {
			owner[dq] = append(owner[dq], a)
		}
	}
	// Visit data qubits in index order, not map order: the boundaryLUT
	// entries below are first-writer-wins, so randomized iteration let two
	// runs of the same binary claim a boundary ancilla for different data
	// qubits and decode the same syndrome to different (if homologically
	// equivalent) corrections. TestLocalDecoderConstructionDeterministic
	// pins this.
	dqs := make([]int, 0, len(owner))
	for dq := range owner {
		dqs = append(dqs, dq)
	}
	sort.Ints(dqs)
	for _, dq := range dqs {
		as := owner[dq]
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				if lat.RoleOf(as[i]) != lat.RoleOf(as[j]) {
					continue
				}
				k := pairKey(as[i], as[j])
				d.lut[k] = dq
			}
		}
		// A data qubit adjacent to exactly one ancilla of a type is a
		// boundary qubit for that type: a single defect there is decodable.
		byType := map[surface.Role][]int{}
		for _, a := range as {
			byType[lat.RoleOf(a)] = append(byType[lat.RoleOf(a)], a)
		}
		for _, role := range []surface.Role{surface.RoleAncillaX, surface.RoleAncillaZ} {
			if group := byType[role]; len(group) == 1 {
				a := group[0]
				if _, dup := d.boundaryLUT[a]; !dup {
					d.boundaryLUT[a] = dq
				}
			}
		}
	}
	return d
}

func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Decode attempts to resolve the round's defects locally. It returns the
// corrections it resolved and the residual defects it could not handle
// (escalated to the global decoder). Defects of different types (X vs Z) are
// decoded independently.
func (d *LocalDecoder) Decode(defects []Defect) (resolved []Correction, residual []Defect) {
	xs, zs := SplitByType(defects)
	for _, group := range [2][]Defect{xs, zs} {
		if len(group) == 0 {
			continue
		}
		isX := group[0].IsX
		switch len(group) {
		case 1:
			a := group[0].Qubit
			if dq, ok := d.boundaryLUT[a]; ok {
				resolved = append(resolved, Correction{Qubit: dq, FlipX: !isX})
				continue
			}
			residual = append(residual, group...)
		case 2:
			if dq, ok := d.lut[pairKey(group[0].Qubit, group[1].Qubit)]; ok {
				resolved = append(resolved, Correction{Qubit: dq, FlipX: !isX})
				continue
			}
			residual = append(residual, group...)
		default:
			residual = append(residual, group...)
		}
	}
	return resolved, residual
}

// LUTSize returns the number of entries across both lookup tables, the
// quantity that sizes the MCE decode-pipeline memory.
func (d *LocalDecoder) LUTSize() int { return len(d.lut) + len(d.boundaryLUT) }

// SplitByType partitions defects into X-type and Z-type groups, preserving
// input order within each group (the map grouping it replaced iterated in
// random order, which made tie-broken matchings nondeterministic).
func SplitByType(defects []Defect) (xs, zs []Defect) {
	for _, d := range defects {
		if d.IsX {
			xs = append(xs, d)
		} else {
			zs = append(zs, d)
		}
	}
	return xs, zs
}

// spaceTimeDistance is the matching weight between two defects: Manhattan
// lattice distance (halved, since ancillas of one type sit two sites apart)
// plus the round gap.
func spaceTimeDistance(a, b Defect) int {
	dr := abs(a.R - b.R)
	dc := abs(a.C - b.C)
	dt := abs(a.Round - b.Round)
	return (dr+dc)/2 + dt
}

// boundaryDistance is a defect's matching weight to its nearest code
// boundary. X-syndrome chains terminate on west/east boundaries, Z-syndrome
// chains on north/south (matching the planar code's logical operator
// orientation).
func boundaryDistance(lat surface.Lattice, d Defect) int {
	if d.IsX {
		west := (d.C + 1) / 2
		east := (lat.Cols - d.C) / 2
		return minInt(west, east)
	}
	north := (d.R + 1) / 2
	south := (lat.Rows - d.R) / 2
	return minInt(north, south)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Matching pairs defects with each other or with the boundary.
type Matching struct {
	// Pairs lists matched defect index pairs (into the input slice).
	Pairs [][2]int
	// ToBoundary lists defect indices matched to the boundary.
	ToBoundary []int
	// Weight is the total matching weight.
	Weight int
}

// GlobalDecoder is the master-controller decoder: minimum-weight matching on
// the space-time defect graph. Exact (dynamic programming over subsets) for
// up to MaxExact defects per type, greedy-with-boundary beyond that.
//
// A GlobalDecoder reuses its DP and marker scratch buffers across Match
// calls (the per-call allocations dominated the exact matcher's profile), so
// a single instance must not run Match concurrently from multiple
// goroutines. Every use site — one decoder per master tile, one per
// Monte-Carlo trial — already owns its instance exclusively.
type GlobalDecoder struct {
	lat surface.Lattice
	// MaxExact bounds the exact matcher; beyond it the greedy matcher runs.
	MaxExact int
	// TimeWeight and SpaceWeight scale the time-like and space-like edge
	// costs (both default to 1). When measurement errors are rarer than
	// data errors, time-like edges should cost more — SetWeights derives
	// the ratio from the noise model.
	TimeWeight, SpaceWeight int

	instr *Instr
	heat  *heatmap.Collector // nil unless SetHeat bound one

	// Scratch buffers reused across calls (see type comment).
	dpBuf, choiceBuf []int32
	usedBuf          []bool
}

// NewGlobalDecoder returns a decoder for the lattice with unit weights.
func NewGlobalDecoder(lat surface.Lattice) *GlobalDecoder {
	return &GlobalDecoder{lat: lat, MaxExact: 14, TimeWeight: 1, SpaceWeight: 1, instr: defaultInstr}
}

// SetInstr rebinds the decoder's instruments (e.g. to a per-worker metrics
// shard). A nil value restores the default registry.
func (g *GlobalDecoder) SetInstr(in *Instr) {
	if in == nil {
		in = defaultInstr
	}
	g.instr = in
}

// SetWeights derives integer edge weights from the two error processes: an
// edge's cost is proportional to -log(p) of the fault it represents, so a
// 10× rarer measurement error makes time-like edges ~2× more expensive at
// base weight 2. Weights are clamped to [1, 8].
func (g *GlobalDecoder) SetWeights(dataErr, measErr float64) {
	if dataErr <= 0 || measErr <= 0 || dataErr >= 1 || measErr >= 1 {
		panic(fmt.Sprintf("decoder: invalid error rates %v/%v", dataErr, measErr))
	}
	ratio := math.Log(measErr) / math.Log(dataErr) // >1 when meas rarer
	g.SpaceWeight = 2
	g.TimeWeight = clampInt(int(math.Round(2*ratio)), 1, 8)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (g *GlobalDecoder) weights() (tw, sw int) {
	tw, sw = g.TimeWeight, g.SpaceWeight
	if tw <= 0 {
		tw = 1
	}
	if sw <= 0 {
		sw = 1
	}
	return tw, sw
}

// weightedDistance is the matching cost between two defects under the
// decoder's edge weights.
func (g *GlobalDecoder) weightedDistance(a, b Defect) int {
	tw, sw := g.weights()
	dr := abs(a.R-b.R) / 2
	dc := abs(a.C-b.C) / 2
	dt := abs(a.Round - b.Round)
	return sw*(dr+dc) + tw*dt
}

func (g *GlobalDecoder) weightedBoundary(d Defect) int {
	_, sw := g.weights()
	return sw * boundaryDistance(g.lat, d)
}

// Match computes a minimum-weight matching of same-type defects, allowing
// boundary matches. All input defects must share a type.
func (g *GlobalDecoder) Match(defects []Defect) Matching {
	for i := 1; i < len(defects); i++ {
		if defects[i].IsX != defects[0].IsX {
			panic("decoder: Match requires same-type defects")
		}
	}
	start := time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
	var m Matching
	if len(defects) <= g.MaxExact {
		m = g.exactMatch(defects)
		g.instr.matchExact.Inc()
	} else {
		m = g.greedyMatch(defects)
		g.instr.matchGreedy.Inc()
	}
	g.instr.matchCalls.Inc()
	g.instr.matchDefects.Add(uint64(len(defects)))
	g.instr.matchNs.Observe(float64(time.Since(start)))
	if g.heat != nil {
		recordMatching(g.heat, g.lat, defects, m)
	}
	return m
}

// exactMatch solves MWPM-with-boundary exactly by DP over defect subsets:
// O(2^n · n) time, fine for n ≤ ~16. The DP tables live in per-decoder
// scratch buffers: at n=10 the two per-call allocations were 8KB of the
// matcher's footprint, and windowed decoding calls Match every d rounds.
func (g *GlobalDecoder) exactMatch(defects []Defect) Matching {
	n := len(defects)
	if n == 0 {
		return Matching{}
	}
	const inf = math.MaxInt32
	full := 1 << n
	if cap(g.dpBuf) < full {
		g.dpBuf = make([]int32, full)
		g.choiceBuf = make([]int32, full)
	}
	dp := g.dpBuf[:full]
	choice := g.choiceBuf[:full] // encodes the decision taken at each state
	dp[0] = 0
	for s := 1; s < full; s++ {
		dp[s] = inf
	}
	for s := 1; s < full; s++ {
		// Lowest set bit must be resolved now: either to boundary or paired.
		i := 0
		for s&(1<<i) == 0 {
			i++
		}
		rest := s &^ (1 << i)
		// Boundary.
		if w := int32(g.weightedBoundary(defects[i])) + dp[rest]; w < dp[s] {
			dp[s] = w
			choice[s] = -1
		}
		// Pair with each other set defect.
		for j := i + 1; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			r2 := rest &^ (1 << j)
			if w := int32(g.weightedDistance(defects[i], defects[j])) + dp[r2]; w < dp[s] {
				dp[s] = w
				choice[s] = int32(j)
			}
		}
	}
	// Reconstruct.
	var m Matching
	s := full - 1
	for s != 0 {
		i := 0
		for s&(1<<i) == 0 {
			i++
		}
		if choice[s] < 0 {
			m.ToBoundary = append(m.ToBoundary, i)
			s &^= 1 << i
		} else {
			j := int(choice[s])
			m.Pairs = append(m.Pairs, [2]int{i, j})
			s &^= 1<<i | 1<<j
		}
	}
	m.Weight = int(dp[full-1])
	return m
}

// greedyMatch repeatedly takes the globally cheapest available edge
// (defect-defect or defect-boundary). Not optimal but O(n² log n) and
// adequate above the exact matcher's range.
func (g *GlobalDecoder) greedyMatch(defects []Defect) Matching {
	n := len(defects)
	if cap(g.usedBuf) < n {
		g.usedBuf = make([]bool, n)
	}
	used := g.usedBuf[:n]
	for i := range used {
		used[i] = false
	}
	var m Matching
	for {
		bestW := math.MaxInt32
		bestI, bestJ := -1, -1 // j == -1 means boundary
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if w := g.weightedBoundary(defects[i]); w < bestW {
				bestW, bestI, bestJ = w, i, -1
			}
			for j := i + 1; j < n; j++ {
				if used[j] {
					continue
				}
				if w := g.weightedDistance(defects[i], defects[j]); w < bestW {
					bestW, bestI, bestJ = w, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		used[bestI] = true
		if bestJ >= 0 {
			used[bestJ] = true
			m.Pairs = append(m.Pairs, [2]int{bestI, bestJ})
		} else {
			m.ToBoundary = append(m.ToBoundary, bestI)
		}
		m.Weight += bestW
	}
	return m
}

// Corrections converts a matching into Pauli-frame corrections by walking
// the correction chain between matched defects (or defect and boundary) and
// toggling the data qubits along it.
func (g *GlobalDecoder) Corrections(defects []Defect, m Matching) []Correction {
	var out []Correction
	emitChain := func(d Defect, r1, c1 int) {
		// Walk rows then columns in steps of 2 (ancilla spacing), toggling
		// the data qubit between consecutive ancilla positions.
		r, c := d.R, d.C
		for r != r1 {
			step := sign(r1 - r)
			mid := g.lat.Index(r+step, c)
			out = append(out, Correction{Qubit: mid, FlipX: !d.IsX})
			r += 2 * step
		}
		for c != c1 {
			step := sign(c1 - c)
			mid := g.lat.Index(r, c+step)
			out = append(out, Correction{Qubit: mid, FlipX: !d.IsX})
			c += 2 * step
		}
	}
	for _, p := range m.Pairs {
		a, b := defects[p[0]], defects[p[1]]
		emitChain(a, b.R, b.C)
	}
	for _, i := range m.ToBoundary {
		d := defects[i]
		if d.IsX {
			// Terminate on the nearer of west/east boundaries.
			if (d.C+1)/2 <= (g.lat.Cols-d.C)/2 {
				emitChain(d, d.R, -1)
			} else {
				emitChain(d, d.R, g.lat.Cols)
			}
		} else {
			if (d.R+1)/2 <= (g.lat.Rows-d.R)/2 {
				emitChain(d, -1, d.C)
			} else {
				emitChain(d, g.lat.Rows, d.C)
			}
		}
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// DecodeRound runs the full two-level pipeline for one round's defects:
// local LUT first (if non-nil), then the global matcher per defect type.
// Corrections toggle into the frame.
func DecodeRound(local *LocalDecoder, global *GlobalDecoder, frame *PauliFrame, defects []Defect) (localResolved, escalated int) {
	residual := defects
	if local != nil {
		var corr []Correction
		corr, residual = local.Decode(defects)
		for _, c := range corr {
			frame.Apply(c)
		}
		localResolved = len(corr)
	}
	global.instr.localResolved.Add(uint64(localResolved))
	global.instr.localEscalated.Add(uint64(len(residual)))
	if len(residual) == 0 {
		return localResolved, 0
	}
	xs, zs := SplitByType(residual)
	for _, group := range [2][]Defect{xs, zs} {
		if len(group) == 0 {
			continue
		}
		m := global.Match(group)
		for _, c := range global.Corrections(group, m) {
			frame.Apply(c)
		}
	}
	return localResolved, len(residual)
}

// ChainIsValid reports whether the emitted correction chain endpoints are
// inside the lattice (diagnostic helper for tests).
func ChainIsValid(lat surface.Lattice, corr []Correction) error {
	for _, c := range corr {
		if c.Qubit < 0 || c.Qubit >= lat.NumQubits() {
			return fmt.Errorf("decoder: correction on out-of-range qubit %d", c.Qubit)
		}
		if lat.RoleOf(c.Qubit) != surface.RoleData {
			return fmt.Errorf("decoder: correction on non-data qubit %d", c.Qubit)
		}
	}
	return nil
}
