package decoder

import (
	"math/rand"
	"reflect"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
	"quest/internal/noise"
	"quest/internal/surface"
)

func TestHistoryDifferencing(t *testing.T) {
	lat := surface.NewPlanar(3)
	h := NewHistory(lat)
	a1 := lat.Qubits(surface.RoleAncillaZ)[0]
	a2 := lat.Qubits(surface.RoleAncillaX)[0]
	if d := h.Absorb(map[int]int{a1: 0, a2: 1}); len(d) != 0 {
		t.Errorf("first round produced %d defects", len(d))
	}
	if d := h.Absorb(map[int]int{a1: 0, a2: 1}); len(d) != 0 {
		t.Errorf("unchanged round produced %d defects", len(d))
	}
	d := h.Absorb(map[int]int{a1: 1, a2: 1})
	if len(d) != 1 || d[0].Qubit != a1 || d[0].IsX {
		t.Errorf("changed Z ancilla: defects = %+v", d)
	}
	if d[0].Round != 2 {
		t.Errorf("defect round = %d, want 2", d[0].Round)
	}
	h.Reset()
	if h.Round() != 0 {
		t.Error("Reset did not clear round counter")
	}
}

func TestPauliFrameToggles(t *testing.T) {
	f := NewPauliFrame()
	f.Apply(Correction{Qubit: 4, FlipX: true})
	if !f.XFlips()[4] {
		t.Error("X flip not recorded")
	}
	f.Apply(Correction{Qubit: 4, FlipX: true})
	if len(f.XFlips()) != 0 {
		t.Error("double correction did not cancel")
	}
	f.Apply(Correction{Qubit: 1, FlipX: false})
	f.Apply(Correction{Qubit: 3, FlipX: false})
	if got := f.ParityOn([]int{1, 2, 3}, false); got != 0 {
		t.Errorf("even parity = %d", got)
	}
	if got := f.ParityOn([]int{1, 2}, false); got != 1 {
		t.Errorf("odd parity = %d", got)
	}
	if got := f.ParityOn([]int{1, 2, 3}, true); got != 0 {
		t.Errorf("X parity = %d, want 0", got)
	}
}

func TestLocalDecoderPairLUT(t *testing.T) {
	lat := surface.NewPlanar(5)
	ld := NewLocalDecoder(lat)
	if ld.LUTSize() == 0 {
		t.Fatal("empty LUT")
	}
	// An interior data qubit sits between two Z ancillas (north/south) and
	// two X ancillas (west/east): its X error produces a Z-defect pair the
	// LUT must resolve to exactly that qubit.
	dq := lat.Index(4, 4)
	r, c := lat.Coord(dq)
	var zPair []int
	for _, dir := range []int{0, 3} {
		zPair = append(zPair, lat.Neighbor(r, c, dir))
	}
	defects := []Defect{
		mkDefect(lat, zPair[0], 1),
		mkDefect(lat, zPair[1], 1),
	}
	corr, residual := ld.Decode(defects)
	if len(residual) != 0 {
		t.Fatalf("LUT escalated a single-error pair: %+v", residual)
	}
	if len(corr) != 1 || corr[0].Qubit != dq || !corr[0].FlipX {
		t.Fatalf("correction = %+v, want X flip on %d", corr, dq)
	}
}

func mkDefect(lat surface.Lattice, q, round int) Defect {
	r, c := lat.Coord(q)
	return Defect{Round: round, Qubit: q, R: r, C: c, IsX: lat.RoleOf(q) == surface.RoleAncillaX}
}

func TestLocalDecoderBoundarySingle(t *testing.T) {
	lat := surface.NewPlanar(3)
	ld := NewLocalDecoder(lat)
	// Data qubit (0,0): an X error there flips only Z ancilla (1,0).
	a := lat.Index(1, 0)
	corr, residual := ld.Decode([]Defect{mkDefect(lat, a, 1)})
	if len(residual) != 0 || len(corr) != 1 {
		t.Fatalf("boundary single not resolved: corr=%v residual=%v", corr, residual)
	}
	if !corr[0].FlipX {
		t.Error("Z defect should yield an X correction")
	}
}

func TestLocalDecoderEscalatesComplexPatterns(t *testing.T) {
	lat := surface.NewPlanar(5)
	ld := NewLocalDecoder(lat)
	// Three same-type defects must escalate.
	zs := lat.Qubits(surface.RoleAncillaZ)
	defects := []Defect{mkDefect(lat, zs[0], 1), mkDefect(lat, zs[3], 1), mkDefect(lat, zs[5], 1)}
	corr, residual := ld.Decode(defects)
	if len(corr) != 0 || len(residual) != 3 {
		t.Errorf("3-defect group: corr=%d residual=%d, want 0/3", len(corr), len(residual))
	}
	// A far-apart pair (no shared data qubit) must escalate.
	far := []Defect{mkDefect(lat, zs[0], 1), mkDefect(lat, zs[len(zs)-1], 1)}
	corr, residual = ld.Decode(far)
	if len(corr) != 0 || len(residual) != 2 {
		t.Errorf("far pair: corr=%d residual=%d, want 0/2", len(corr), len(residual))
	}
	// Mixed X and Z singles decode independently.
	xs := lat.Qubits(surface.RoleAncillaX)
	mixed := []Defect{mkDefect(lat, lat.Index(1, 0), 1), mkDefect(lat, xs[0], 1)}
	corr, _ = ld.Decode(mixed)
	if len(corr) == 0 {
		t.Error("mixed-type singles: nothing resolved")
	}
}

func TestExactMatchOptimality(t *testing.T) {
	lat := surface.NewPlanar(5) // 9x9
	g := NewGlobalDecoder(lat)
	// Two adjacent Z-ancilla defects: pairing (weight 1) beats two boundary
	// matches (weight 1+1).
	d1 := mkDefect(lat, lat.Index(3, 4), 1)
	d2 := mkDefect(lat, lat.Index(5, 4), 1)
	m := g.Match([]Defect{d1, d2})
	if len(m.Pairs) != 1 || m.Weight != 1 {
		t.Errorf("adjacent pair: %+v", m)
	}
	// Two defects each hugging opposite boundaries: boundary matching wins.
	b1 := mkDefect(lat, lat.Index(1, 0), 1)
	b2 := mkDefect(lat, lat.Index(7, 8), 1)
	m = g.Match([]Defect{b1, b2})
	if len(m.ToBoundary) != 2 {
		t.Errorf("boundary-hugging defects paired: %+v", m)
	}
	// Empty input.
	if m := g.Match(nil); m.Weight != 0 || len(m.Pairs) != 0 {
		t.Errorf("empty match: %+v", m)
	}
}

func TestExactVsGreedyAgreeOnEasyCases(t *testing.T) {
	lat := surface.NewPlanar(7)
	g := NewGlobalDecoder(lat)
	rng := rand.New(rand.NewSource(5))
	zs := lat.Qubits(surface.RoleAncillaZ)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)*2
		var defects []Defect
		seen := map[int]bool{}
		for len(defects) < n {
			q := zs[rng.Intn(len(zs))]
			if seen[q] {
				continue
			}
			seen[q] = true
			defects = append(defects, mkDefect(lat, q, 1))
		}
		exact := g.exactMatch(defects)
		greedy := g.greedyMatch(defects)
		if greedy.Weight < exact.Weight {
			t.Fatalf("greedy (%d) beat exact (%d): impossible", greedy.Weight, exact.Weight)
		}
	}
}

func TestMatchRejectsMixedTypes(t *testing.T) {
	lat := surface.NewPlanar(3)
	g := NewGlobalDecoder(lat)
	defer func() {
		if recover() == nil {
			t.Error("mixed-type Match did not panic")
		}
	}()
	g.Match([]Defect{
		mkDefect(lat, lat.Qubits(surface.RoleAncillaZ)[0], 1),
		mkDefect(lat, lat.Qubits(surface.RoleAncillaX)[0], 1),
	})
}

func TestCorrectionChainsLandOnDataQubits(t *testing.T) {
	lat := surface.NewPlanar(5)
	g := NewGlobalDecoder(lat)
	rng := rand.New(rand.NewSource(9))
	for _, role := range []surface.Role{surface.RoleAncillaZ, surface.RoleAncillaX} {
		as := lat.Qubits(role)
		for trial := 0; trial < 40; trial++ {
			var defects []Defect
			seen := map[int]bool{}
			for len(defects) < 4 {
				q := as[rng.Intn(len(as))]
				if seen[q] {
					continue
				}
				seen[q] = true
				defects = append(defects, mkDefect(lat, q, trial))
			}
			m := g.Match(defects)
			corr := g.Corrections(defects, m)
			if err := ChainIsValid(lat, corr); err != nil {
				t.Fatalf("%s trial %d: %v", role, trial, err)
			}
		}
	}
}

func TestMeasurementErrorPairNeedsNoDataCorrection(t *testing.T) {
	// A flipped measurement shows as two defects on the SAME ancilla in
	// consecutive rounds; matching them costs 1 (time) and must emit no data
	// corrections.
	lat := surface.NewPlanar(5)
	g := NewGlobalDecoder(lat)
	a := lat.Index(3, 4)
	d1 := mkDefect(lat, a, 3)
	d2 := mkDefect(lat, a, 4)
	m := g.Match([]Defect{d1, d2})
	if len(m.Pairs) != 1 || m.Weight != 1 {
		t.Fatalf("time pair: %+v", m)
	}
	if corr := g.Corrections([]Defect{d1, d2}, m); len(corr) != 0 {
		t.Errorf("time-like pair emitted %d data corrections", len(corr))
	}
}

// runFullCycle executes one compiled QECC cycle and returns syndromes.
func runFullCycle(u *awg.ExecutionUnit, words []isa.VLIW) map[int]int {
	synd := make(map[int]int)
	u.MeasSink = func(q, bit int) { synd[q] = bit }
	for _, w := range words {
		u.ExecuteWord(w)
	}
	return synd
}

// TestEndToEndSingleErrorRecovery injects one Pauli error on every data
// qubit in turn, runs the QECC cycle, decodes, and verifies the Pauli frame
// plus the substrate state restores the logical Z/X observables exactly.
func TestEndToEndSingleErrorRecovery(t *testing.T) {
	lat := surface.NewPlanar(3)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	ld := NewLocalDecoder(lat)
	gd := NewGlobalDecoder(lat)
	for _, dq := range lat.Qubits(surface.RoleData) {
		for _, p := range []clifford.Pauli{clifford.PauliX, clifford.PauliZ} {
			tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(dq*3)+int64(p))))
			u := awg.New(tb, nil)
			h := NewHistory(lat)
			frame := NewPauliFrame()
			// Two clean rounds to establish the reference.
			h.Absorb(runFullCycle(u, words))
			h.Absorb(runFullCycle(u, words))
			tb.ApplyPauli(dq, p)
			defects := h.Absorb(runFullCycle(u, words))
			if len(defects) == 0 {
				t.Fatalf("qubit %d %s: error produced no defects", dq, p)
			}
			DecodeRound(ld, gd, frame, defects)
			// Check: frame-corrected logical Z expectation must be +1.
			logZ := lat.LogicalZ()
			logX := lat.LogicalX()
			rawZ := tb.MeasureObservable(nil, logZ)
			rawX := tb.MeasureObservable(logX, nil)
			wantZ := 1 - 2*frame.ParityOn(logZ, true)  // X flips affect Z parity
			wantX := 1 - 2*frame.ParityOn(logX, false) // Z flips affect X parity
			if rawZ != 0 && rawZ != wantZ {
				t.Errorf("qubit %d %s: logical Z %d, frame predicts %d", dq, p, rawZ, wantZ)
			}
			if rawX != 0 && rawX != wantX {
				t.Errorf("qubit %d %s: logical X %d, frame predicts %d", dq, p, rawX, wantX)
			}
		}
	}
}

// TestLogicalErrorRateBelowThreshold runs many noisy QECC cycles at a low
// physical error rate and verifies the decoder keeps the logical failure
// rate well below the raw physical rate — the qualitative correctness of the
// whole QECC substrate.
func TestLogicalErrorRateBelowThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	lat := surface.NewPlanar(3)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	const trials = 60
	const rounds = 6
	const p = 2e-3
	failures := 0
	for trial := 0; trial < trials; trial++ {
		tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(trial))))
		inj := noise.NewInjector(noise.Model{Gate1: p, Gate2: p, Idle: p}, int64(trial)*7+1)
		u := awg.New(tb, inj)
		// Project into the codespace noiselessly first.
		clean := awg.New(tb, nil)
		runFullCycle(clean, words)
		h := NewHistory(lat)
		h.Absorb(runFullCycle(clean, words))
		ld := NewLocalDecoder(lat)
		gd := NewGlobalDecoder(lat)
		frame := NewPauliFrame()
		for round := 0; round < rounds; round++ {
			inj.SetLocation(round, 0)
			defects := h.Absorb(runFullCycle(u, words))
			DecodeRound(ld, gd, frame, defects)
		}
		// Final noiseless round to flush.
		defects := h.Absorb(runFullCycle(clean, words))
		DecodeRound(ld, gd, frame, defects)
		logZ := lat.LogicalZ()
		raw := tb.MeasureObservable(nil, logZ)
		want := 1 - 2*frame.ParityOn(logZ, true)
		if raw != 0 && raw != want {
			failures++
		}
	}
	// ~40 noisy locations/round × 6 rounds × p=2e-3 ≈ 0.5 faults/trial;
	// an uncorrected substrate would fail a large fraction of trials. Demand
	// better than 25%.
	if frac := float64(failures) / trials; frac > 0.25 {
		t.Errorf("logical failure fraction %.2f too high — decoder ineffective", frac)
	}
}

func BenchmarkExactMatch10(b *testing.B) {
	lat := surface.NewPlanar(9)
	g := NewGlobalDecoder(lat)
	rng := rand.New(rand.NewSource(1))
	zs := lat.Qubits(surface.RoleAncillaZ)
	var defects []Defect
	seen := map[int]bool{}
	for len(defects) < 10 {
		q := zs[rng.Intn(len(zs))]
		if seen[q] {
			continue
		}
		seen[q] = true
		defects = append(defects, mkDefect(lat, q, len(defects)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.exactMatch(defects)
	}
}

func BenchmarkFrameToggle(b *testing.B) {
	frame := NewPauliFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := i & 1023
		frame.Apply(Correction{Qubit: q, FlipX: i&1 == 0})
	}
}

func TestWeightedMatchingPrefersMeasurementErrorExplanation(t *testing.T) {
	lat := surface.NewPlanar(5)
	g := NewGlobalDecoder(lat)
	// Same ancilla, consecutive rounds, far from the boundary: a time-like
	// pair. At unit weights it matches as one edge of weight 1; with
	// expensive time edges the matcher should still pair them (boundary is
	// farther) but at the weighted cost.
	a := lat.Index(5, 4)
	ds := []Defect{mkDefect(lat, a, 1), mkDefect(lat, a, 2)}
	m := g.Match(ds)
	if m.Weight != 1 || len(m.Pairs) != 1 {
		t.Fatalf("unit weights: %+v", m)
	}
	g.SetWeights(1e-3, 1e-6) // measurement errors 1000x rarer
	if g.TimeWeight <= g.SpaceWeight {
		t.Fatalf("weights not skewed: time=%d space=%d", g.TimeWeight, g.SpaceWeight)
	}
	m = g.Match(ds)
	if len(m.Pairs) != 1 {
		t.Fatalf("weighted: %+v", m)
	}
	if m.Weight != g.TimeWeight {
		t.Errorf("weighted time pair cost %d, want %d", m.Weight, g.TimeWeight)
	}
	// Geometry check: two boundary-hugging defects 2 space-steps apart tie
	// between pairing (weight 2) and two boundary matches (1+1); either
	// resolution must carry the optimal weight and valid chains.
	b1 := mkDefect(lat, lat.Index(1, 0), 1)
	b2 := mkDefect(lat, lat.Index(1, 4), 1)
	g2 := NewGlobalDecoder(lat)
	m2 := g2.Match([]Defect{b1, b2})
	if m2.Weight != 2 {
		t.Fatalf("unit-weight geometry: weight %d, want 2: %+v", m2.Weight, m2)
	}
	if err := ChainIsValid(lat, g2.Corrections([]Defect{b1, b2}, m2)); err != nil {
		t.Fatal(err)
	}
	// A mixed space/time choice: defect at round 1 and a defect one space
	// step + three rounds away. Cheap time pairs them; expensive time sends
	// both to their boundaries instead.
	c1 := mkDefect(lat, lat.Index(1, 2), 1)
	c2 := Defect{Round: 4, Qubit: lat.Index(1, 4), R: 1, C: 4}
	cheapTime := NewGlobalDecoder(lat)
	cheapTime.TimeWeight, cheapTime.SpaceWeight = 1, 4
	if m := cheapTime.Match([]Defect{c1, c2}); len(m.Pairs) != 1 {
		t.Fatalf("cheap time should pair: %+v", m)
	}
	dearTime := NewGlobalDecoder(lat)
	dearTime.TimeWeight, dearTime.SpaceWeight = 8, 1
	if m := dearTime.Match([]Defect{c1, c2}); len(m.ToBoundary) != 2 {
		t.Fatalf("dear time should split to boundaries: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid rates accepted")
		}
	}()
	g.SetWeights(0, 0.5)
}

// TestLocalDecoderConstructionDeterministic pins the sorted-iteration fix in
// NewLocalDecoder: table construction used to range Go maps (data qubit →
// adjacent ancillas, ancilla role groups), so when more than one data qubit
// could claim a LUT slot, which one won was decided by map iteration order —
// different decoders for the same lattice could disagree. Build many and
// require the tables identical. (reflect.DeepEqual on maps is content-based,
// so this catches divergent contents, not merely divergent ordering.)
func TestLocalDecoderConstructionDeterministic(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		lat := surface.NewPlanar(d)
		first := NewLocalDecoder(lat)
		for i := 1; i < 25; i++ {
			ld := NewLocalDecoder(lat)
			if !reflect.DeepEqual(ld.lut, first.lut) {
				t.Fatalf("d=%d build %d: pair LUT differs from first build", d, i)
			}
			if !reflect.DeepEqual(ld.boundaryLUT, first.boundaryLUT) {
				t.Fatalf("d=%d build %d: boundary LUT differs from first build", d, i)
			}
		}
	}
}
