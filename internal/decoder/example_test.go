package decoder_test

import (
	"fmt"

	"quest/internal/decoder"
	"quest/internal/surface"
)

// ExampleLocalDecoder resolves the common case in the MCE: a single-qubit
// error's adjacent defect pair maps straight to its correction through the
// lookup table.
func ExampleLocalDecoder() {
	lat := surface.NewPlanar(5)
	ld := decoder.NewLocalDecoder(lat)
	// An X error on data qubit (4,4) flips its north and south Z-checks.
	mk := func(r, c int) decoder.Defect {
		return decoder.Defect{Round: 1, Qubit: lat.Index(r, c), R: r, C: c}
	}
	corr, residual := ld.Decode([]decoder.Defect{mk(3, 4), mk(5, 4)})
	fmt.Println("resolved locally:", len(corr), "correction(s)")
	fmt.Println("escalated:", len(residual))
	fmt.Println("corrects the right qubit:", corr[0].Qubit == lat.Index(4, 4))
	// Output:
	// resolved locally: 1 correction(s)
	// escalated: 0
	// corrects the right qubit: true
}

// ExampleWindowDecoder pairs a measurement error's time-like defects with
// zero data corrections — the case per-round decoding gets wrong.
func ExampleWindowDecoder() {
	lat := surface.NewPlanar(5)
	w := decoder.NewWindowDecoder(decoder.NewGlobalDecoder(lat), 3)
	frame := decoder.NewPauliFrame()
	a := lat.Index(5, 4)
	mk := func(round int) []decoder.Defect {
		return []decoder.Defect{{Round: round, Qubit: a, R: 5, C: 4}}
	}
	w.Absorb(mk(1), frame) // flipped measurement, round 1
	w.Absorb(mk(2), frame) // re-flips back, round 2
	applied := w.Absorb(nil, frame)
	fmt.Println("corrections applied:", applied)
	fmt.Println("frame untouched:", len(frame.XFlips())+len(frame.ZFlips()) == 0)
	// Output:
	// corrections applied: 0
	// frame untouched: true
}
