package decoder

import (
	"quest/internal/heatmap"
	"quest/internal/surface"
)

// heatSetter is the optional capability a Matcher can implement to receive
// a spatial heat collector; WindowDecoder.SetHeat forwards through it.
type heatSetter interface {
	SetHeat(h *heatmap.Collector)
}

// SetHeat binds a spatial heat collector to the history: every defect
// Absorb births is recorded at its lattice site. Nil disables recording
// (the default) — the Absorb hot path then pays one nil check, no
// allocations.
func (h *SyndromeHistory) SetHeat(heat *heatmap.Collector) { h.heat = heat }

// SetHeat binds a spatial heat collector to the decoder: every Match
// records its pairs' endpoints and space-time chain lengths and its
// boundary matches. Nil disables recording (the default).
func (g *GlobalDecoder) SetHeat(heat *heatmap.Collector) { g.heat = heat }

// SetHeat binds a spatial heat collector to the union-find decoder,
// recording the same per-matching footprint as the MWPM decoder so ablation
// runs stay comparable. Nil disables recording (the default).
func (d *UnionFindDecoder) SetHeat(heat *heatmap.Collector) { d.heat = heat }

// SetHeat forwards a heat collector to the wrapped matcher when it supports
// one. The window itself stays untouched: defect births are recorded by the
// SyndromeHistory, chain statistics by the matcher.
func (w *WindowDecoder) SetHeat(heat *heatmap.Collector) {
	if hs, ok := w.global.(heatSetter); ok {
		hs.SetHeat(heat)
	}
}

// recordMatching reports a matching's spatial footprint into heat: both
// endpoints of every defect pair with the pair's (unweighted) space-time
// chain length, and every boundary match with its boundary distance. The
// unweighted distances are recorded — they are the physical chain lengths
// the decoder micro-architecture literature sizes hardware against, while
// weighted costs are a tuning artifact. Callers gate on heat != nil, but the
// function guards again itself: the collector comes in as a parameter, so a
// future un-gated caller must not turn the heat-off path allocating
// (TestMatchHeatOffAllocs pins the ≤6 allocs/op budget this protects).
func recordMatching(heat *heatmap.Collector, lat surface.Lattice, defects []Defect, m Matching) {
	if heat == nil {
		return
	}
	for _, p := range m.Pairs {
		a, b := defects[p[0]], defects[p[1]]
		heat.MatchedPair(a.R, a.C, b.R, b.C, spaceTimeDistance(a, b))
	}
	for _, i := range m.ToBoundary {
		d := defects[i]
		heat.MatchedBoundary(d.R, d.C, boundaryDistance(lat, d))
	}
}
