package decoder

import (
	"testing"

	"quest/internal/heatmap"
	"quest/internal/surface"
)

// TestHeatRecordsDefectBirths pins the history hook: every defect Absorb
// births lands in the collector at the defect's own lattice coordinates,
// and reference-frame rounds record nothing.
func TestHeatRecordsDefectBirths(t *testing.T) {
	lat := surface.NewPlanar(3)
	h := NewHistory(lat)
	heat := heatmap.New(lat.Rows, lat.Cols)
	h.SetHeat(heat)
	anc := lat.Qubits(surface.RoleAncillaZ)[0]
	h.Absorb(map[int]int{anc: 0}) // round 0: reference, no defect
	if heat.TotalDefects() != 0 {
		t.Fatal("reference round recorded a defect")
	}
	h.Absorb(map[int]int{anc: 1}) // flip → defect
	if heat.TotalDefects() != 1 {
		t.Fatalf("defect count = %d, want 1", heat.TotalDefects())
	}
	r, c := lat.Coord(anc)
	if heat.Defects()[r][c] != 1 {
		t.Errorf("defect not recorded at its site (%d,%d): %v", r, c, heat.Defects())
	}
}

// TestHeatRecordsMatching pins the matcher hook: a two-defect match records
// both endpoints, the unweighted space-time chain length, and boundary
// matches go to the boundary counter — for both the exact and union-find
// matchers.
func TestHeatRecordsMatching(t *testing.T) {
	lat := surface.NewPlanar(5)
	zs := lat.Qubits(surface.RoleAncillaZ)
	mk := func(q, round int) Defect {
		r, c := lat.Coord(q)
		return Defect{Round: round, Qubit: q, R: r, C: c, IsX: false}
	}
	defects := []Defect{mk(zs[0], 0), mk(zs[1], 0)}
	matchers := map[string]interface {
		Matcher
		SetHeat(*heatmap.Collector)
	}{
		"exact":     NewGlobalDecoder(lat),
		"unionfind": NewUnionFindDecoder(lat),
	}
	for name, m := range matchers {
		t.Run(name, func(t *testing.T) {
			heat := heatmap.New(lat.Rows, lat.Cols)
			m.SetHeat(heat)
			match := m.Match(defects)
			if got := heat.Pairs() + heat.Boundary(); got < 1 {
				t.Fatalf("matching %+v recorded nothing", match)
			}
			// Endpoint count must equal 2 per pair + 1 per boundary match.
			var endpoints int64
			for _, row := range heat.Matched() {
				for _, v := range row {
					endpoints += v
				}
			}
			if want := 2*heat.Pairs() + heat.Boundary(); endpoints != want {
				t.Errorf("%d matched endpoints, want %d", endpoints, want)
			}
			// Chain-length histogram counts one entry per match.
			var chains int64
			for _, v := range heat.ChainLengths() {
				chains += v
			}
			if want := heat.Pairs() + heat.Boundary(); chains != want {
				t.Errorf("%d chain lengths recorded, want %d", chains, want)
			}
			if match.Weight < 0 {
				t.Errorf("negative matching weight %d", match.Weight)
			}
		})
	}
}

// TestWindowForwardsHeat pins the forwarding: SetHeat on a window reaches
// the wrapped matcher, so windowed decoding records chain statistics.
func TestWindowForwardsHeat(t *testing.T) {
	lat := surface.NewPlanar(3)
	g := NewGlobalDecoder(lat)
	w := NewWindowDecoder(g, 2)
	heat := heatmap.New(lat.Rows, lat.Cols)
	w.SetHeat(heat)
	if g.heat != heat {
		t.Fatal("window did not forward the collector to its matcher")
	}
	zs := lat.Qubits(surface.RoleAncillaZ)
	r0, c0 := lat.Coord(zs[0])
	frame := NewPauliFrame()
	w.Absorb([]Defect{{Round: 0, Qubit: zs[0], R: r0, C: c0}}, frame)
	w.Absorb(nil, frame) // fills the window → flush → match
	if heat.Pairs()+heat.Boundary() == 0 {
		t.Error("windowed flush recorded no matches")
	}
}

// TestMatchHeatOffAllocs pins that the heat-off Match path allocates no
// more than the committed benchmark budget (decoder-exact-match-10 ≤ 6
// allocs/op; currently 5). The heat hook must be a single nil check.
func TestMatchHeatOffAllocs(t *testing.T) {
	lat := surface.NewPlanar(9)
	g := NewGlobalDecoder(lat)
	zs := lat.Qubits(surface.RoleAncillaZ)
	defects := make([]Defect, 0, 10)
	for i := 0; len(defects) < 10; i += 2 {
		q := zs[i%len(zs)]
		r, c := lat.Coord(q)
		defects = append(defects, Defect{Round: i / len(zs), Qubit: q, R: r, C: c})
	}
	g.Match(defects) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		g.Match(defects)
	})
	if allocs > 6 {
		t.Errorf("heat-off Match allocs/op = %v, budget 6", allocs)
	}
}
