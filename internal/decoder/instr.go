package decoder

import (
	"quest/internal/metrics"
)

// Instr bundles the decoder package's instruments, resolved once against a
// registry so the hot paths (Match inside a Monte-Carlo trial) never touch
// the registry's lock. Decoders record against the process-wide default
// registry unless rebound with SetInstr — worker pools hand each trial an
// instrument bound to a per-worker shard (see mc.RunWith) so instrumentation
// adds no cross-worker cache-line contention.
type Instr struct {
	matchCalls   *metrics.Counter
	matchExact   *metrics.Counter
	matchGreedy  *metrics.Counter
	matchUF      *metrics.Counter
	matchDefects *metrics.Counter
	matchNs      *metrics.Histogram

	localResolved  *metrics.Counter
	localEscalated *metrics.Counter

	windowRounds  *metrics.Counter
	windowFlushNs *metrics.Histogram
}

// NewInstr resolves the decoder instruments against r.
func NewInstr(r *metrics.Registry) *Instr {
	return &Instr{
		matchCalls:   r.Counter("decoder.match.calls"),
		matchExact:   r.Counter("decoder.match.exact"),
		matchGreedy:  r.Counter("decoder.match.greedy"),
		matchUF:      r.Counter("decoder.match.unionfind"),
		matchDefects: r.Counter("decoder.match.defects"),
		matchNs:      r.Histogram("decoder.match.ns", nil),

		localResolved:  r.Counter("decoder.local.resolved"),
		localEscalated: r.Counter("decoder.local.escalated"),

		windowRounds:  r.Counter("decoder.window.rounds"),
		windowFlushNs: r.Histogram("decoder.window.flush.ns", nil),
	}
}

// defaultInstr records into metrics.Default.
var defaultInstr = NewInstr(metrics.Default)
