package decoder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/surface"
)

// randomDefects draws k distinct same-type defects on the lattice.
func randomDefects(lat surface.Lattice, rng *rand.Rand, k int) []Defect {
	zs := lat.Qubits(surface.RoleAncillaZ)
	seen := map[int]bool{}
	var out []Defect
	for len(out) < k && len(seen) < len(zs) {
		q := zs[rng.Intn(len(zs))]
		if seen[q] {
			continue
		}
		seen[q] = true
		out = append(out, mkDefect(lat, q, rng.Intn(3)))
	}
	return out
}

// enumerate all perfect matchings (with boundary options) of the defect set
// and return the minimum weight — brute force ground truth for small n.
func bruteForceMin(lat surface.Lattice, defects []Defect) int {
	n := len(defects)
	best := 1 << 30
	var rec func(used uint, weight int)
	rec = func(used uint, weight int) {
		if weight >= best {
			return
		}
		i := -1
		for k := 0; k < n; k++ {
			if used&(1<<k) == 0 {
				i = k
				break
			}
		}
		if i < 0 {
			if weight < best {
				best = weight
			}
			return
		}
		rec(used|1<<i, weight+boundaryDistance(lat, defects[i]))
		for j := i + 1; j < n; j++ {
			if used&(1<<j) != 0 {
				continue
			}
			rec(used|1<<i|1<<j, weight+spaceTimeDistance(defects[i], defects[j]))
		}
	}
	rec(0, 0)
	return best
}

// TestPropertyExactMatcherIsOptimal: the DP matcher's weight equals the
// brute-force optimum on random instances.
func TestPropertyExactMatcherIsOptimal(t *testing.T) {
	lat := surface.NewPlanar(7)
	g := NewGlobalDecoder(lat)
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%7
		defects := randomDefects(lat, rng, k)
		if len(defects) == 0 {
			return true
		}
		return g.exactMatch(defects).Weight == bruteForceMin(lat, defects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMatchersOrdering: exact ≤ union-find and exact ≤ greedy on the
// same instance, always.
func TestPropertyMatchersOrdering(t *testing.T) {
	lat := surface.NewPlanar(9)
	g := NewGlobalDecoder(lat)
	uf := NewUnionFindDecoder(lat)
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw)%8
		defects := randomDefects(lat, rng, k)
		if len(defects) < 2 {
			return true
		}
		exact := g.exactMatch(defects).Weight
		if g.greedyMatch(defects).Weight < exact {
			return false
		}
		if uf.Match(defects).Weight < exact {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFrameParityLinearity: applying two correction sets to a frame
// yields the XOR of their individual parities on any support.
func TestPropertyFrameParityLinearity(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []Correction {
			out := make([]Correction, n)
			for i := range out {
				out[i] = Correction{Qubit: rng.Intn(20), FlipX: rng.Intn(2) == 0}
			}
			return out
		}
		setA := mk(int(aRaw) % 12)
		setB := mk(int(bRaw) % 12)
		support := rng.Perm(20)[:10]
		fa := NewPauliFrame()
		for _, c := range setA {
			fa.Apply(c)
		}
		fb := NewPauliFrame()
		for _, c := range setB {
			fb.Apply(c)
		}
		fab := NewPauliFrame()
		for _, c := range append(append([]Correction{}, setA...), setB...) {
			fab.Apply(c)
		}
		for _, flipX := range []bool{false, true} {
			if fab.ParityOn(support, flipX) != fa.ParityOn(support, flipX)^fb.ParityOn(support, flipX) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHistoryDefectParity: over any syndrome sequence, the number of
// defects an ancilla emits has the same parity as (first bit) XOR (last
// bit) — defects are differences, so they telescope.
func TestPropertyHistoryDefectParity(t *testing.T) {
	lat := surface.NewPlanar(3)
	a := lat.Qubits(surface.RoleAncillaZ)[2]
	f := func(bitsRaw []bool) bool {
		if len(bitsRaw) < 2 {
			return true
		}
		h := NewHistory(lat)
		count := 0
		for _, b := range bitsRaw {
			bit := 0
			if b {
				bit = 1
			}
			count += len(h.Absorb(map[int]int{a: bit}))
		}
		first, last := 0, 0
		if bitsRaw[0] {
			first = 1
		}
		if bitsRaw[len(bitsRaw)-1] {
			last = 1
		}
		return count%2 == first^last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
