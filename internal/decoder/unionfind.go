package decoder

import (
	"sort"
	"time"

	"quest/internal/heatmap"
	"quest/internal/surface"
)

// UnionFindDecoder is an alternative global decoder in the style of
// Delfosse–Nickerson: clusters grow outward from each defect half an edge at
// a time; clusters with even defect parity (or touching a boundary) freeze;
// merging clusters union their parity. Once every cluster is neutral, each
// cluster's defects are matched internally. Union-find trades a little
// accuracy for near-linear decode time, which matters for the
// master-controller budget the paper allots to global decoding — the
// BenchmarkAblationUnionFind bench quantifies the trade.
type UnionFindDecoder struct {
	lat  surface.Lattice
	heat *heatmap.Collector // nil unless SetHeat bound one
}

// NewUnionFindDecoder returns a decoder for the lattice.
func NewUnionFindDecoder(lat surface.Lattice) *UnionFindDecoder {
	return &UnionFindDecoder{lat: lat}
}

// ufNode is one defect's cluster bookkeeping.
type ufNode struct {
	parent   int
	rank     int
	parity   int  // defects mod 2 in the cluster (root only)
	boundary bool // cluster touches a boundary (root only)
	radius   int  // growth radius (root only)
}

type unionFind struct {
	nodes []ufNode
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{nodes: make([]ufNode, n)}
	for i := range u.nodes {
		u.nodes[i] = ufNode{parent: i, parity: 1}
	}
	return u
}

func (u *unionFind) find(i int) int {
	for u.nodes[i].parent != i {
		u.nodes[i].parent = u.nodes[u.nodes[i].parent].parent
		i = u.nodes[i].parent
	}
	return i
}

func (u *unionFind) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.nodes[ra].rank < u.nodes[rb].rank {
		ra, rb = rb, ra
	}
	u.nodes[rb].parent = ra
	if u.nodes[ra].rank == u.nodes[rb].rank {
		u.nodes[ra].rank++
	}
	u.nodes[ra].parity = (u.nodes[ra].parity + u.nodes[rb].parity) % 2
	u.nodes[ra].boundary = u.nodes[ra].boundary || u.nodes[rb].boundary
	if u.nodes[rb].radius > u.nodes[ra].radius {
		u.nodes[ra].radius = u.nodes[rb].radius
	}
	return ra
}

// Match clusters same-type defects by synchronized growth and returns a
// Matching in the same format the exact/greedy matchers produce, so the
// correction-chain generation is shared.
func (d *UnionFindDecoder) Match(defects []Defect) Matching {
	n := len(defects)
	if n == 0 {
		return Matching{}
	}
	for i := 1; i < n; i++ {
		if defects[i].IsX != defects[0].IsX {
			panic("decoder: union-find Match requires same-type defects")
		}
	}
	start := time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
	defer func() {
		defaultInstr.matchUF.Inc()
		defaultInstr.matchCalls.Inc()
		defaultInstr.matchDefects.Add(uint64(n))
		defaultInstr.matchNs.Observe(float64(time.Since(start)))
	}()
	uf := newUnionFind(n)
	active := func(root int) bool {
		return uf.nodes[root].parity == 1 && !uf.nodes[root].boundary
	}
	// Grow until no active (odd, boundary-free) clusters remain. Growth is
	// radius-synchronized: the smallest active cluster grows first.
	for {
		roots := map[int]bool{}
		for i := 0; i < n; i++ {
			r := uf.find(i)
			if active(r) {
				roots[r] = true
			}
		}
		if len(roots) == 0 {
			break
		}
		// Pick the active root with the smallest radius (deterministically).
		var order []int
		for r := range roots {
			order = append(order, r)
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := uf.nodes[order[a]].radius, uf.nodes[order[b]].radius
			if ra != rb {
				return ra < rb
			}
			return order[a] < order[b]
		})
		r := order[0]
		uf.nodes[r].radius++
		rad := uf.nodes[r].radius
		// Does the grown cluster reach a boundary?
		for i := 0; i < n; i++ {
			if uf.find(i) != r {
				continue
			}
			if boundaryDistance(d.lat, defects[i]) <= rad {
				uf.nodes[r].boundary = true
			}
		}
		// Does it touch another cluster? Merge when the summed radii cover
		// the inter-defect distance.
		for i := 0; i < n; i++ {
			if uf.find(i) != r {
				continue
			}
			for j := 0; j < n; j++ {
				rj := uf.find(j)
				if rj == r {
					continue
				}
				if spaceTimeDistance(defects[i], defects[j]) <= rad+uf.nodes[rj].radius {
					uf.union(i, j)
				}
			}
		}
	}
	// Peel each cluster: match its defects pairwise (nearest-first), odd
	// leftovers to the boundary.
	var m Matching
	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		r := uf.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var rootOrder []int
	for r := range byRoot {
		rootOrder = append(rootOrder, r)
	}
	sort.Ints(rootOrder)
	for _, r := range rootOrder {
		members := byRoot[r]
		used := make([]bool, len(members))
		for {
			bi, bj, bw := -1, -1, int(^uint(0)>>1)
			for a := 0; a < len(members); a++ {
				if used[a] {
					continue
				}
				for b := a + 1; b < len(members); b++ {
					if used[b] {
						continue
					}
					if w := spaceTimeDistance(defects[members[a]], defects[members[b]]); w < bw {
						bi, bj, bw = a, b, w
					}
				}
			}
			if bi < 0 {
				break
			}
			// An odd boundary cluster may prefer sending its last defect to
			// the boundary; pair the rest.
			used[bi], used[bj] = true, true
			m.Pairs = append(m.Pairs, [2]int{members[bi], members[bj]})
			m.Weight += bw
		}
		for a, u := range used {
			if !u {
				m.ToBoundary = append(m.ToBoundary, members[a])
				m.Weight += boundaryDistance(d.lat, defects[members[a]])
			}
		}
	}
	if d.heat != nil {
		recordMatching(d.heat, d.lat, defects, m)
	}
	return m
}

// Corrections delegates to the shared chain generator.
func (d *UnionFindDecoder) Corrections(defects []Defect, m Matching) []Correction {
	g := GlobalDecoder{lat: d.lat}
	return g.Corrections(defects, m)
}
