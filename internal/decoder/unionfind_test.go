package decoder

import (
	"math/rand"
	"testing"

	"quest/internal/surface"
)

func TestUnionFindEmptyAndSingle(t *testing.T) {
	lat := surface.NewPlanar(5)
	uf := NewUnionFindDecoder(lat)
	if m := uf.Match(nil); len(m.Pairs)+len(m.ToBoundary) != 0 {
		t.Errorf("empty input matched: %+v", m)
	}
	// A lone defect must end at the boundary.
	d := mkDefect(lat, lat.Index(1, 0), 1)
	m := uf.Match([]Defect{d})
	if len(m.ToBoundary) != 1 || len(m.Pairs) != 0 {
		t.Errorf("single defect: %+v", m)
	}
}

func TestUnionFindPairsAdjacentDefects(t *testing.T) {
	lat := surface.NewPlanar(5)
	uf := NewUnionFindDecoder(lat)
	d1 := mkDefect(lat, lat.Index(3, 4), 1)
	d2 := mkDefect(lat, lat.Index(5, 4), 1)
	m := uf.Match([]Defect{d1, d2})
	if len(m.Pairs) != 1 || len(m.ToBoundary) != 0 {
		t.Fatalf("adjacent pair: %+v", m)
	}
	if m.Weight != 1 {
		t.Errorf("weight = %d, want 1", m.Weight)
	}
}

func TestUnionFindTimePairNoCorrections(t *testing.T) {
	lat := surface.NewPlanar(5)
	uf := NewUnionFindDecoder(lat)
	a := lat.Index(3, 4)
	ds := []Defect{mkDefect(lat, a, 2), mkDefect(lat, a, 3)}
	m := uf.Match(ds)
	if len(m.Pairs) != 1 {
		t.Fatalf("time pair: %+v", m)
	}
	if corr := uf.Corrections(ds, m); len(corr) != 0 {
		t.Errorf("measurement-error pair produced %d corrections", len(corr))
	}
}

func TestUnionFindMatchesEverything(t *testing.T) {
	// Every defect must end up either paired or at the boundary, for random
	// defect sets of both types.
	lat := surface.NewPlanar(7)
	uf := NewUnionFindDecoder(lat)
	rng := rand.New(rand.NewSource(3))
	for _, role := range []surface.Role{surface.RoleAncillaZ, surface.RoleAncillaX} {
		as := lat.Qubits(role)
		for trial := 0; trial < 60; trial++ {
			nd := 1 + rng.Intn(9)
			seen := map[int]bool{}
			var ds []Defect
			for len(ds) < nd {
				q := as[rng.Intn(len(as))]
				if seen[q] {
					continue
				}
				seen[q] = true
				ds = append(ds, mkDefect(lat, q, rng.Intn(4)))
			}
			m := uf.Match(ds)
			covered := map[int]int{}
			for _, p := range m.Pairs {
				covered[p[0]]++
				covered[p[1]]++
			}
			for _, i := range m.ToBoundary {
				covered[i]++
			}
			for i := range ds {
				if covered[i] != 1 {
					t.Fatalf("%s trial %d: defect %d covered %d times", role, trial, i, covered[i])
				}
			}
			if err := ChainIsValid(lat, uf.Corrections(ds, m)); err != nil {
				t.Fatalf("%s trial %d: %v", role, trial, err)
			}
		}
	}
}

func TestUnionFindNeverBeatsExact(t *testing.T) {
	// Union-find is approximate: its weight must be ≥ the exact matcher's,
	// and within a small constant factor on random instances.
	lat := surface.NewPlanar(7)
	uf := NewUnionFindDecoder(lat)
	g := NewGlobalDecoder(lat)
	rng := rand.New(rand.NewSource(11))
	zs := lat.Qubits(surface.RoleAncillaZ)
	worst := 1.0
	for trial := 0; trial < 80; trial++ {
		nd := 2 + rng.Intn(6)
		seen := map[int]bool{}
		var ds []Defect
		for len(ds) < nd {
			q := zs[rng.Intn(len(zs))]
			if seen[q] {
				continue
			}
			seen[q] = true
			ds = append(ds, mkDefect(lat, q, 0))
		}
		exact := g.exactMatch(ds)
		approx := uf.Match(ds)
		if approx.Weight < exact.Weight {
			t.Fatalf("trial %d: union-find weight %d beats exact %d", trial, approx.Weight, exact.Weight)
		}
		if exact.Weight > 0 {
			if ratio := float64(approx.Weight) / float64(exact.Weight); ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > 2.5 {
		t.Errorf("union-find up to %.2fx worse than exact — clustering broken", worst)
	}
}

func TestUnionFindRejectsMixedTypes(t *testing.T) {
	lat := surface.NewPlanar(3)
	uf := NewUnionFindDecoder(lat)
	defer func() {
		if recover() == nil {
			t.Error("mixed types accepted")
		}
	}()
	uf.Match([]Defect{
		mkDefect(lat, lat.Qubits(surface.RoleAncillaZ)[0], 0),
		mkDefect(lat, lat.Qubits(surface.RoleAncillaX)[0], 0),
	})
}

// TestUnionFindEndToEndRecovery mirrors the exact-matcher end-to-end test:
// single injected errors must be fully corrected through the union-find
// path too.
func TestUnionFindEndToEndRecovery(t *testing.T) {
	lat := surface.NewPlanar(3)
	uf := NewUnionFindDecoder(lat)
	for _, dq := range lat.Qubits(surface.RoleData) {
		r, c := lat.Coord(dq)
		// Construct the Z-defect pattern an X error on dq produces.
		var ds []Defect
		for dir := 0; dir < 4; dir++ {
			n := lat.Neighbor(r, c, dir)
			if n >= 0 && lat.RoleOf(n) == surface.RoleAncillaZ {
				ds = append(ds, mkDefect(lat, n, 1))
			}
		}
		m := uf.Match(ds)
		corr := uf.Corrections(ds, m)
		frame := NewPauliFrame()
		frame.Apply(Correction{Qubit: dq, FlipX: true}) // the injected error
		for _, cr := range corr {
			frame.Apply(cr)
		}
		// Error plus correction must act trivially on the logical Z parity.
		if p := frame.ParityOn(lat.LogicalZ(), true); p != 0 {
			t.Errorf("data %d: union-find correction leaves logical parity %d", dq, p)
		}
	}
}
