package decoder

import (
	"time"

	"quest/internal/tracing"
)

// WindowDecoder implements the space-time decoding the paper describes in
// Appendix A.2: syndrome changes are accumulated over a window of rounds and
// matched jointly, so that measurement errors (time-like defect pairs) and
// multi-round error chains are paired correctly instead of being forced to a
// boundary round by round. The two-level split is preserved: a LocalDecoder
// may still strip isolated single-error patterns per round before defects
// enter the window.
type WindowDecoder struct {
	global Matcher
	// WindowRounds is the number of rounds batched per decode; the usual
	// choice is the code distance.
	WindowRounds int

	buf        []Defect
	sinceFlush int
	instr      *Instr

	tr  *tracing.Tracer
	tid int
	// round counts Absorb calls — the window's clock. The master calls Absorb
	// exactly once per tile per machine cycle, so rounds align with cycles.
	round, openRound int64
}

// Matcher is the matching stage both global decoders implement, letting the
// window (and the master controller) swap MWPM for union-find.
type Matcher interface {
	Match(defects []Defect) Matching
	Corrections(defects []Defect, m Matching) []Correction
}

var (
	_ Matcher = (*GlobalDecoder)(nil)
	_ Matcher = (*UnionFindDecoder)(nil)
)

// NewWindowDecoder wraps a matcher with a window of the given number
// of rounds (values below 1 are clamped to 1, which degenerates to per-round
// decoding).
func NewWindowDecoder(global Matcher, windowRounds int) *WindowDecoder {
	if windowRounds < 1 {
		windowRounds = 1
	}
	return &WindowDecoder{global: global, WindowRounds: windowRounds, instr: defaultInstr}
}

// SetInstr rebinds the window's instruments (e.g. to a per-worker metrics
// shard); it also rebinds the wrapped matcher when that is a GlobalDecoder.
// A nil value restores the default registry.
func (w *WindowDecoder) SetInstr(in *Instr) {
	if in == nil {
		in = defaultInstr
	}
	w.instr = in
	if g, ok := w.global.(*GlobalDecoder); ok {
		g.SetInstr(in)
	}
}

// SetTracer binds a tracer and track id (the tile index) so flushes emit
// decoder-track "window" spans covering open→flush. Nil disables emission.
func (w *WindowDecoder) SetTracer(tr *tracing.Tracer, tid int) {
	w.tr = tr
	w.tid = tid
}

// Pending returns the number of buffered defects.
func (w *WindowDecoder) Pending() int { return len(w.buf) }

// Reset returns the window to its freshly constructed state — empty buffer,
// round clock at zero — while keeping the buffer storage and the wrapped
// matcher (whose LUTs and scratch are trial-independent). The batched trial
// engine pools window decoders across trials; resetting the round clock
// keeps the per-trial tracer spans identical to a fresh decoder's.
func (w *WindowDecoder) Reset() {
	w.buf = w.buf[:0]
	w.sinceFlush = 0
	w.round = 0
	w.openRound = 0
}

// Absorb buffers one round's defects and decodes into the frame when the
// window fills. It returns the number of corrections applied (zero while the
// window is still open).
func (w *WindowDecoder) Absorb(defects []Defect, frame *PauliFrame) int {
	if w.sinceFlush == 0 {
		w.openRound = w.round
	}
	w.round++
	w.buf = append(w.buf, defects...)
	w.sinceFlush++
	w.instr.windowRounds.Inc()
	if w.sinceFlush < w.WindowRounds {
		return 0
	}
	return w.Flush(frame)
}

// Flush decodes everything buffered regardless of window occupancy (used at
// the end of a computation or before a logical measurement that must see a
// settled frame).
func (w *WindowDecoder) Flush(frame *PauliFrame) int {
	w.sinceFlush = 0
	if len(w.buf) == 0 {
		return 0
	}
	start := time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
	applied := 0
	xs, zs := SplitByType(w.buf)
	w.buf = w.buf[:0]
	for _, group := range [2][]Defect{xs, zs} {
		if len(group) == 0 {
			continue
		}
		m := w.global.Match(group)
		for _, c := range w.global.Corrections(group, m) {
			frame.Apply(c)
			applied++
		}
	}
	w.instr.windowFlushNs.Observe(float64(time.Since(start)))
	if w.tr != nil {
		dur := w.round - w.openRound
		if dur < 1 {
			dur = 1
		}
		w.tr.SpanArg("decoder", w.tid, "window", w.openRound, dur, "applied", int64(applied))
	}
	w.openRound = w.round
	return applied
}
