package decoder

import (
	"math/rand"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
	"quest/internal/mc"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/tracing"
)

func TestWindowBuffersUntilFull(t *testing.T) {
	lat := surface.NewPlanar(5)
	w := NewWindowDecoder(NewGlobalDecoder(lat), 3)
	frame := NewPauliFrame()
	a := lat.Index(3, 4)
	d1 := mkDefect(lat, a, 1)
	if n := w.Absorb([]Defect{d1}, frame); n != 0 {
		t.Fatalf("window decoded early: %d", n)
	}
	if w.Pending() != 1 {
		t.Fatalf("pending = %d", w.Pending())
	}
	// Same ancilla next round: the measurement-error pair must cancel with
	// zero corrections once the window closes.
	d2 := mkDefect(lat, a, 2)
	w.Absorb([]Defect{d2}, frame)
	n := w.Absorb(nil, frame) // third round closes the window
	if n != 0 {
		t.Errorf("time-like pair produced %d corrections, want 0", n)
	}
	if len(frame.XFlips())+len(frame.ZFlips()) != 0 {
		t.Error("frame disturbed by measurement error")
	}
	if w.Pending() != 0 {
		t.Error("window not drained")
	}
}

func TestWindowFlushAndClamp(t *testing.T) {
	lat := surface.NewPlanar(3)
	w := NewWindowDecoder(NewGlobalDecoder(lat), 0) // clamps to 1
	if w.WindowRounds != 1 {
		t.Errorf("window = %d, want clamped 1", w.WindowRounds)
	}
	frame := NewPauliFrame()
	if n := w.Flush(frame); n != 0 {
		t.Errorf("empty flush produced %d corrections", n)
	}
	// Window 1 behaves like per-round decoding.
	d := mkDefect(lat, lat.Index(1, 0), 1)
	if n := w.Absorb([]Defect{d}, frame); n == 0 {
		t.Error("window-1 did not decode immediately")
	}
}

// windowedFailRate runs the full path with window = distance rounds,
// fanning trials over the mc pool (workers <= 0 uses GOMAXPROCS). The
// noise model is noise.Uniform(p) — including the Prep channel — and each
// trial is seeded from (cell, trial) via the mc mixer, so distinct (d, p)
// cells never replay correlated fault patterns.
func windowedFailRate(t *testing.T, d int, p float64, trials int) float64 {
	t.Helper()
	lat := surface.NewPlanar(d)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	cell := mc.Seed(0xdec0de, mc.F64(p), uint64(d))
	res := mc.Run(trials, 0, cell, func(trial int, seed uint64) mc.Outcome {
		tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(mc.Derive(seed, 0)))))
		inj := noise.NewInjector(noise.Uniform(p), int64(mc.Derive(seed, 1)))
		noisy := awg.New(tb, inj)
		clean := awg.New(tb, nil)
		run := func(u *awg.ExecutionUnit) map[int]int {
			synd := make(map[int]int)
			u.MeasSink = func(q, bit int) { synd[q] = bit }
			for _, w := range words {
				u.ExecuteWord(w)
			}
			return synd
		}
		hist := NewHistory(lat)
		frame := NewPauliFrame()
		win := NewWindowDecoder(NewGlobalDecoder(lat), d)
		run(clean)
		hist.Absorb(run(clean))
		for round := 0; round < 4; round++ {
			inj.SetLocation(round, 0)
			win.Absorb(hist.Absorb(run(noisy)), frame)
		}
		win.Absorb(hist.Absorb(run(clean)), frame)
		win.Flush(frame)
		logZ := lat.LogicalZ()
		raw := tb.MeasureObservable(nil, logZ)
		want := 1 - 2*frame.ParityOn(logZ, true)
		return mc.Outcome{Fail: raw != 0 && raw != want}
	})
	_ = isa.OpIdle
	return res.Rate
}

// TestDistanceSuppressionWithWindowedDecode is the qualitative threshold
// result: below threshold, distance 5 must not fail more than distance 3.
func TestDistanceSuppressionWithWindowedDecode(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const p = 1e-3
	const trials = 250
	f3 := windowedFailRate(t, 3, p, trials)
	f5 := windowedFailRate(t, 5, p, trials)
	if f5 > f3 {
		t.Errorf("d=5 fail rate %.4f exceeds d=3 rate %.4f below threshold", f5, f3)
	}
	if f3 > 0.1 {
		t.Errorf("d=3 fail rate %.4f implausibly high at p=%.0e", f3, p)
	}
}

// TestWindowTracerEmitsWindowSpans pins the decoder-track "window" span: one
// span per flush, covering [open round, flush round) on the window's clock.
func TestWindowTracerEmitsWindowSpans(t *testing.T) {
	lat := surface.NewPlanar(5)
	w := NewWindowDecoder(NewGlobalDecoder(lat), 3)
	tr := tracing.New(64)
	w.SetTracer(tr, 2)
	frame := NewPauliFrame()
	a := lat.Index(3, 4)
	w.Absorb([]Defect{mkDefect(lat, a, 1)}, frame)
	w.Absorb([]Defect{mkDefect(lat, a, 2)}, frame)
	w.Absorb(nil, frame) // closes window 1: rounds [0,3)
	w.Absorb([]Defect{mkDefect(lat, a, 4)}, frame)
	w.Flush(frame) // force-closes window 2 early: rounds [3,4)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 window spans: %+v", len(evs), evs)
	}
	for i, want := range []struct{ ts, dur int64 }{{0, 3}, {3, 1}} {
		ev := evs[i]
		if ev.Proc != "decoder" || ev.Tid != 2 || ev.Name != "window" {
			t.Errorf("span %d track = %s/%d %q, want decoder/2 \"window\"", i, ev.Proc, ev.Tid, ev.Name)
		}
		if ev.Ts != want.ts || ev.Dur != want.dur {
			t.Errorf("span %d covers [%d,%d), want [%d,%d)", i, ev.Ts, ev.Ts+ev.Dur, want.ts, want.ts+want.dur)
		}
	}
	// An empty flush emits nothing.
	w.Flush(frame)
	if tr.Len() != 2 {
		t.Errorf("empty flush emitted an event")
	}
}
