// Package distill models magic-state distillation and T-factories (§5.2):
// the 15-to-1 Bravyi–Kitaev protocol's error suppression, the recursive
// multi-round cost of producing one magic state good enough for the
// application, the demand-driven factory count, and the deterministic
// logical instruction stream of one distillation round — the loop body the
// QuEST logical-instruction cache replays (§5.3).
package distill

import (
	"fmt"
	"math"

	"quest/internal/isa"
)

// The 15-to-1 protocol consumes 15 noisy T states and emits one state with
// cubically suppressed error: p_out = 35·p_in³.
const (
	InputsPerRound = 15
	suppressionC   = 35.0
)

// RoundOutputError returns the output error of one 15-to-1 round for a given
// input error rate.
func RoundOutputError(pin float64) float64 {
	if pin < 0 || pin > 1 {
		panic(fmt.Sprintf("distill: input error %v outside [0,1]", pin))
	}
	out := suppressionC * pin * pin * pin
	if out > 1 {
		return 1
	}
	return out
}

// RawStateError returns the error of an undistilled injected magic state for
// a physical error rate: injection is a short non-fault-tolerant circuit, so
// the raw state inherits roughly an order of magnitude over the physical
// rate.
func RawStateError(physRate float64) float64 {
	e := 10 * physRate
	if e > 0.5 {
		return 0.5
	}
	return e
}

// RoundsNeeded returns how many recursive 15-to-1 rounds bring a raw state
// of error pin down to at most target. It errors if the protocol cannot
// converge (pin above the distillation threshold ≈ 1/√35).
func RoundsNeeded(pin, target float64) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("distill: non-positive target %v", target)
	}
	if pin <= target {
		return 0, nil
	}
	p := pin
	for r := 1; r <= 16; r++ {
		next := RoundOutputError(p)
		if next >= p {
			return 0, fmt.Errorf("distill: input error %v above distillation threshold", pin)
		}
		p = next
		if p <= target {
			return r, nil
		}
	}
	return 0, fmt.Errorf("distill: no convergence from %v to %v within 16 rounds", pin, target)
}

// OutputErrorAfter returns the state error after r rounds from pin.
func OutputErrorAfter(pin float64, r int) float64 {
	p := pin
	for i := 0; i < r; i++ {
		p = RoundOutputError(p)
	}
	return p
}

// RoundCircuit generates the deterministic logical instruction sequence of
// one 15-to-1 distillation round: prepare 15 + 1 qubits, encode with the
// [[15,1,3]] Reed–Muller CNOT network, apply transversal T, decode and
// measure. The sequence length (~155 instructions) matches the paper's
// "typical distillation algorithm has 100 to 200 logical instructions", and
// its deterministic control flow is exactly what makes it cacheable.
func RoundCircuit() []isa.LogicalInstr {
	var prog []isa.LogicalInstr
	emit := func(op isa.LogicalOpcode, target, arg uint8) {
		prog = append(prog, isa.LogicalInstr{Op: op, Target: target, Arg: arg})
	}
	// Initialize 15 code qubits and the output qubit.
	for q := uint8(0); q < InputsPerRound; q++ {
		emit(isa.LPrepPlus, q, 0)
	}
	emit(isa.LPrep0, InputsPerRound, 0)
	// Reed–Muller encoding network: each of the 4 generator qubits fans out
	// CNOTs to the qubits whose 4-bit index has the matching bit set.
	for g := 0; g < 4; g++ {
		ctrl := uint8(1<<g) - 1 // qubits 0,1,3,7 act as generators
		for q := uint8(0); q < InputsPerRound; q++ {
			idx := int(q) + 1 // RM(1,4) punctured: indices 1..15
			if q == ctrl || idx&(1<<g) == 0 {
				continue
			}
			emit(isa.LCNOT, ctrl, q)
		}
	}
	// Transversal T across the block.
	for q := uint8(0); q < InputsPerRound; q++ {
		emit(isa.LT, q, 0)
	}
	// Decode: Hadamards plus syndrome CNOTs onto the output qubit.
	for q := uint8(0); q < InputsPerRound; q++ {
		emit(isa.LH, q, 0)
	}
	for q := uint8(0); q < InputsPerRound; q++ {
		emit(isa.LCNOT, q, InputsPerRound)
	}
	// Measure the block to detect faults; measure-out completes the round.
	for q := uint8(0); q < InputsPerRound; q++ {
		emit(isa.LMeasX, q, 0)
	}
	emit(isa.LS, InputsPerRound, 0)
	emit(isa.LMeasZ, InputsPerRound, 0)
	return prog
}

// RoundInstructionCount is the length of RoundCircuit (computed once).
var RoundInstructionCount = len(RoundCircuit())

// InstructionsPerState returns the total logical instruction cost of one
// fully distilled magic state after r recursive rounds: each round's 15
// inputs are themselves products of the previous round, so
// cost(r) = 15·cost(r-1) + RoundInstructionCount.
func InstructionsPerState(r int) float64 {
	cost := 0.0
	for i := 0; i < r; i++ {
		cost = InputsPerRound*cost + float64(RoundInstructionCount)
	}
	return cost
}

// LogicalQubitsPerFactory is the working set of one pipelined factory: the
// 16-qubit round block times a pipeline stage per round.
func LogicalQubitsPerFactory(rounds int) int {
	if rounds < 1 {
		rounds = 1
	}
	return rounds * (InputsPerRound + 1)
}

// Factory models one pipelined T-factory: it emits one magic state every
// LatencyRounds QECC rounds once the pipeline is full.
type Factory struct {
	Rounds int
	// LatencyRounds is the QECC rounds one distillation round occupies; the
	// round circuit's instructions issue at the logical-op cadence (~d
	// rounds each), so latency ≈ RoundInstructionCount · d / ILP; callers
	// set it from their technology parameters.
	LatencyRounds int

	pipelineFill int
	produced     uint64
}

// Tick advances the factory by one QECC round, returning the number of
// magic states emitted (0 or 1).
func (f *Factory) Tick() int {
	if f.LatencyRounds <= 0 {
		panic("distill: factory with non-positive latency")
	}
	f.pipelineFill++
	if f.pipelineFill >= f.LatencyRounds {
		f.pipelineFill = 0
		f.produced++
		return 1
	}
	return 0
}

// Produced returns the cumulative output.
func (f *Factory) Produced() uint64 { return f.produced }

// Reset drains the pipeline and zeroes the cumulative output, returning the
// factory to its freshly constructed state (the configured latency is kept).
// Pooled machines call this between Monte-Carlo trials.
func (f *Factory) Reset() {
	f.pipelineFill = 0
	f.produced = 0
}

// FactoriesNeeded returns the factory count that sustains a demand of
// tPerRound magic states per QECC round, each factory emitting one state
// per latencyRounds.
func FactoriesNeeded(tPerRound float64, latencyRounds int) int {
	if tPerRound < 0 || latencyRounds <= 0 {
		panic(fmt.Sprintf("distill: invalid demand %v / latency %d", tPerRound, latencyRounds))
	}
	return int(math.Ceil(tPerRound * float64(latencyRounds)))
}

// FactoryScalingExponent evaluates the paper's sub-linear factory scaling
// C^log|log(e)|: the factory count's dependence on the physical error rate
// (§7, Figure 15 discussion). Used for reporting the scaling trend.
func FactoryScalingExponent(errRate float64) float64 {
	if errRate <= 0 || errRate >= 1 {
		panic(fmt.Sprintf("distill: error rate %v outside (0,1)", errRate))
	}
	return math.Log(math.Abs(math.Log10(errRate)))
}
