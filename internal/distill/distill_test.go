package distill

import (
	"math"
	"testing"

	"quest/internal/isa"
)

func TestRoundOutputError(t *testing.T) {
	if got := RoundOutputError(1e-3); math.Abs(got-3.5e-8) > 1e-12 {
		t.Errorf("35p³ at 1e-3 = %v", got)
	}
	if got := RoundOutputError(0.9); got != 1 {
		t.Errorf("saturated output = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative pin accepted")
		}
	}()
	RoundOutputError(-0.1)
}

func TestRoundsNeeded(t *testing.T) {
	// Raw error 1e-3, target 1e-15: round 1 → 3.5e-8, round 2 → 1.5e-21.
	r, err := RoundsNeeded(1e-3, 1e-15)
	if err != nil || r != 2 {
		t.Errorf("rounds = %d (%v), want 2", r, err)
	}
	r, err = RoundsNeeded(1e-3, 1e-6)
	if err != nil || r != 1 {
		t.Errorf("rounds = %d (%v), want 1", r, err)
	}
	r, err = RoundsNeeded(1e-9, 1e-6)
	if err != nil || r != 0 {
		t.Errorf("already-good input: rounds = %d (%v)", r, err)
	}
	// Above threshold (p ≥ 1/√35 ≈ 0.169): cannot converge.
	if _, err := RoundsNeeded(0.3, 1e-6); err == nil {
		t.Error("above-threshold input accepted")
	}
	if _, err := RoundsNeeded(0.1, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestOutputErrorAfterMatchesRoundsNeeded(t *testing.T) {
	for _, pin := range []float64{1e-2, 1e-3, 1e-4} {
		for _, target := range []float64{1e-8, 1e-12, 1e-20} {
			r, err := RoundsNeeded(pin, target)
			if err != nil {
				t.Fatalf("pin=%v target=%v: %v", pin, target, err)
			}
			if got := OutputErrorAfter(pin, r); got > target {
				t.Errorf("pin=%v: after %d rounds error %v > target %v", pin, r, got, target)
			}
			if r > 0 {
				if got := OutputErrorAfter(pin, r-1); got <= target {
					t.Errorf("pin=%v: %d rounds already sufficed", pin, r-1)
				}
			}
		}
	}
}

func TestRawStateError(t *testing.T) {
	if got := RawStateError(1e-4); got != 1e-3 {
		t.Errorf("raw error = %v", got)
	}
	if got := RawStateError(0.2); got != 0.5 {
		t.Errorf("saturated raw error = %v", got)
	}
}

func TestRoundCircuitShape(t *testing.T) {
	prog := RoundCircuit()
	// Paper: "A typical distillation algorithm has 100 to 200 logical
	// instructions."
	if len(prog) < 100 || len(prog) > 200 {
		t.Fatalf("round circuit = %d instructions, want 100..200", len(prog))
	}
	if RoundInstructionCount != len(prog) {
		t.Error("RoundInstructionCount stale")
	}
	counts := map[isa.LogicalOpcode]int{}
	for _, in := range prog {
		counts[in.Op]++
	}
	if counts[isa.LT] != InputsPerRound {
		t.Errorf("T gates = %d, want %d (transversal)", counts[isa.LT], InputsPerRound)
	}
	if counts[isa.LPrepPlus] != InputsPerRound {
		t.Errorf("preps = %d", counts[isa.LPrepPlus])
	}
	if counts[isa.LMeasX] != InputsPerRound {
		t.Errorf("X measurements = %d", counts[isa.LMeasX])
	}
	if counts[isa.LCNOT] == 0 {
		t.Error("no encoding CNOTs")
	}
	// Deterministic: two generations identical.
	again := RoundCircuit()
	for i := range prog {
		if prog[i] != again[i] {
			t.Fatalf("instruction %d differs between generations", i)
		}
	}
	// Every instruction encodes and round-trips (cacheable as raw bytes).
	for i, in := range prog {
		got, err := isa.DecodeLogical(in.Encode())
		if err != nil || got != in {
			t.Fatalf("instruction %d does not round-trip: %v", i, err)
		}
	}
}

func TestInstructionsPerStateRecursion(t *testing.T) {
	c0 := InstructionsPerState(0)
	c1 := InstructionsPerState(1)
	c2 := InstructionsPerState(2)
	if c0 != 0 {
		t.Errorf("cost(0) = %v", c0)
	}
	if c1 != float64(RoundInstructionCount) {
		t.Errorf("cost(1) = %v", c1)
	}
	if c2 != 15*c1+float64(RoundInstructionCount) {
		t.Errorf("cost(2) = %v", c2)
	}
}

func TestFactoryPipeline(t *testing.T) {
	f := &Factory{Rounds: 2, LatencyRounds: 5}
	total := 0
	for i := 0; i < 50; i++ {
		total += f.Tick()
	}
	if total != 10 || f.Produced() != 10 {
		t.Errorf("factory produced %d states over 50 rounds, want 10", total)
	}
	bad := &Factory{}
	defer func() {
		if recover() == nil {
			t.Error("zero-latency factory ticked")
		}
	}()
	bad.Tick()
}

func TestFactoriesNeeded(t *testing.T) {
	// Demand 0.5 states/round, latency 10 → 5 factories.
	if got := FactoriesNeeded(0.5, 10); got != 5 {
		t.Errorf("factories = %d, want 5", got)
	}
	if got := FactoriesNeeded(0, 10); got != 0 {
		t.Errorf("zero demand = %d factories", got)
	}
	// The provisioned fleet must actually sustain the demand.
	n := FactoriesNeeded(0.7, 13)
	fleet := make([]*Factory, n)
	for i := range fleet {
		fleet[i] = &Factory{LatencyRounds: 13}
	}
	produced := 0
	const rounds = 1300
	for r := 0; r < rounds; r++ {
		for _, f := range fleet {
			produced += f.Tick()
		}
	}
	if float64(produced) < 0.7*rounds {
		t.Errorf("fleet of %d produced %d over %d rounds, demand %v", n, produced, rounds, 0.7*rounds)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative demand accepted")
		}
	}()
	FactoriesNeeded(-1, 10)
}

func TestFactoryScalingIsSubLinear(t *testing.T) {
	// C^log|log e|: the exponent grows very slowly as the error rate drops.
	e3 := FactoryScalingExponent(1e-3)
	e4 := FactoryScalingExponent(1e-4)
	e6 := FactoryScalingExponent(1e-6)
	if !(e3 < e4 && e4 < e6) {
		t.Errorf("exponent not increasing: %v %v %v", e3, e4, e6)
	}
	if e6/e3 > 2 {
		t.Errorf("scaling not sub-linear: %v vs %v", e6, e3)
	}
	defer func() {
		if recover() == nil {
			t.Error("error rate 1 accepted")
		}
	}()
	FactoryScalingExponent(1)
}

func TestLogicalQubitsPerFactory(t *testing.T) {
	if got := LogicalQubitsPerFactory(2); got != 32 {
		t.Errorf("2-round factory qubits = %d, want 32", got)
	}
	if got := LogicalQubitsPerFactory(0); got != 16 {
		t.Errorf("clamped factory qubits = %d, want 16", got)
	}
}
