package distill_test

import (
	"fmt"

	"quest/internal/distill"
)

// ExampleRoundsNeeded shows the 15-to-1 recursion planning: raw injected
// states at 1e-3 error reach 1e-15 in two rounds.
func ExampleRoundsNeeded() {
	raw := distill.RawStateError(1e-4)
	rounds, err := distill.RoundsNeeded(raw, 1e-15)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("raw error:", raw)
	fmt.Println("rounds:", rounds)
	fmt.Printf("cost per state: %.0f logical instructions\n", distill.InstructionsPerState(rounds))
	// Output:
	// raw error: 0.001
	// rounds: 2
	// cost per state: 1696 logical instructions
}

// ExampleRoundCircuit shows the cacheable loop body.
func ExampleRoundCircuit() {
	body := distill.RoundCircuit()
	fmt.Println("instructions:", len(body))
	fmt.Println("first:", body[0])
	fmt.Println("deterministic: the MCE cache replays this from one load")
	// Output:
	// instructions: 106
	// first: LPREP+ L0
	// deterministic: the MCE cache replays this from one load
}
