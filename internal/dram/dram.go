// Package dram models the cryogenic DRAM of the paper's 77K thermal domain
// (§2.2): the memory that holds a quantum application's instruction working
// set. Quantum executables are large — the paper cites instruction footprints
// of tens of gigabytes — and in the software-managed baseline the *entire
// physical* instruction stream must be generated into and streamed out of
// this memory, so DRAM bandwidth becomes a second wall on top of the
// control-processor bus. Under QuEST, DRAM holds only the logical executable
// (qexe format) and the stream rate drops by the same orders of magnitude as
// the bus traffic.
//
// The model is intentionally simple and calibrated: a capacity, a sustained
// bandwidth (cold DRAM is ordinary DRAM — the paper cites Henkels et al.'s
// 12ns low-temperature DRAM; we default to a DDR-class channel), and a
// streaming reader with meters.
package dram

import (
	"fmt"

	"quest/internal/tracing"
)

// Config describes one cryo-DRAM channel.
type Config struct {
	// CapacityBytes is the module capacity.
	CapacityBytes uint64
	// BandwidthBytesPerSec is the sustained stream rate.
	BandwidthBytesPerSec float64
}

// Default77K returns a single DDR-class channel: 16 GiB at 12.8 GB/s.
func Default77K() Config {
	return Config{CapacityBytes: 16 << 30, BandwidthBytesPerSec: 12.8e9}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityBytes == 0 {
		return fmt.Errorf("dram: zero capacity")
	}
	if c.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("dram: non-positive bandwidth %v", c.BandwidthBytesPerSec)
	}
	return nil
}

// Store is a loaded instruction working set plus stream accounting.
type Store struct {
	cfg      Config
	resident uint64
	streamed uint64

	tr *tracing.Tracer
	// ops orders trace events: the store has no cycle clock, so each
	// Load/Stream advances a logical timestamp of its own.
	ops int64
}

// New returns an empty store.
func New(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg}, nil
}

// SetTracer binds a tracer; Load and Stream then emit dram-track events
// ordered by a per-store operation counter. Nil disables emission.
func (s *Store) SetTracer(tr *tracing.Tracer) { s.tr = tr }

// Load places an executable image of the given size, failing if it exceeds
// capacity.
func (s *Store) Load(bytes uint64) error {
	if s.resident+bytes > s.cfg.CapacityBytes {
		return fmt.Errorf("dram: working set %d + %d bytes exceeds capacity %d",
			s.resident, bytes, s.cfg.CapacityBytes)
	}
	s.resident += bytes
	if s.tr != nil {
		s.tr.InstantArg("dram", 0, "load", s.ops, "bytes", int64(bytes))
		s.ops++
	}
	return nil
}

// Resident returns the loaded working-set size.
func (s *Store) Resident() uint64 { return s.resident }

// Stream records reading n bytes out toward the control processor and
// returns the seconds the channel needs for it.
func (s *Store) Stream(n uint64) float64 {
	s.streamed += n
	if s.tr != nil {
		s.tr.SpanArg("dram", 0, "stream", s.ops, 1, "bytes", int64(n))
		s.ops++
	}
	return float64(n) / s.cfg.BandwidthBytesPerSec
}

// Streamed returns total bytes streamed.
func (s *Store) Streamed() uint64 { return s.streamed }

// SustainableInstructionRate returns the instructions/second the channel can
// feed at a given instruction size.
func (s *Store) SustainableInstructionRate(instrBytes int) float64 {
	if instrBytes <= 0 {
		panic(fmt.Sprintf("dram: non-positive instruction size %d", instrBytes))
	}
	return s.cfg.BandwidthBytesPerSec / float64(instrBytes)
}

// FeedReport compares a demand stream against the channel.
type FeedReport struct {
	// DemandBytesPerSec is what the consumer needs.
	DemandBytesPerSec float64
	// Utilization is demand over channel bandwidth (>1 = underrun: the
	// baseline design misses QECC deadlines).
	Utilization float64
	// ChannelsNeeded is the number of parallel channels to sustain demand.
	ChannelsNeeded int
}

// Feed evaluates whether the channel sustains a demand of demandBps.
func (s *Store) Feed(demandBps float64) FeedReport {
	if demandBps < 0 {
		panic(fmt.Sprintf("dram: negative demand %v", demandBps))
	}
	u := demandBps / s.cfg.BandwidthBytesPerSec
	ch := int(u)
	if float64(ch) < u {
		ch++
	}
	if ch == 0 {
		ch = 1
	}
	return FeedReport{DemandBytesPerSec: demandBps, Utilization: u, ChannelsNeeded: ch}
}
