package dram

import (
	"math"
	"testing"

	"quest/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := Default77K().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
	for _, c := range []Config{{}, {CapacityBytes: 1}, {BandwidthBytesPerSec: 1}} {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestLoadCapacity(t *testing.T) {
	s, err := New(Config{CapacityBytes: 100, BandwidthBytesPerSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(60); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(60); err == nil {
		t.Error("over-capacity load accepted")
	}
	if s.Resident() != 60 {
		t.Errorf("resident = %d", s.Resident())
	}
}

func TestStreamAccounting(t *testing.T) {
	s, _ := New(Config{CapacityBytes: 1 << 30, BandwidthBytesPerSec: 100})
	secs := s.Stream(250)
	if secs != 2.5 {
		t.Errorf("stream time = %v", secs)
	}
	if s.Streamed() != 250 {
		t.Errorf("streamed = %d", s.Streamed())
	}
	if got := s.SustainableInstructionRate(2); got != 50 {
		t.Errorf("instruction rate = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero instr size accepted")
		}
	}()
	s.SustainableInstructionRate(0)
}

func TestFeedChannelsNeeded(t *testing.T) {
	s, _ := New(Config{CapacityBytes: 1 << 30, BandwidthBytesPerSec: 1e9})
	r := s.Feed(2.5e9)
	if r.ChannelsNeeded != 3 || math.Abs(r.Utilization-2.5) > 1e-12 {
		t.Errorf("feed = %+v", r)
	}
	r = s.Feed(1e6)
	if r.ChannelsNeeded != 1 || r.Utilization > 1 {
		t.Errorf("light feed = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative demand accepted")
		}
	}()
	s.Feed(-1)
}

// TestBaselineOverwhelmsDRAMQuESTDoesNot is the §2.2 argument in numbers:
// the software-managed baseline's instruction stream cannot be fed from a
// realistic cryo-DRAM channel at workload scale, while QuEST's logical
// stream fits with orders of magnitude to spare.
func TestBaselineOverwhelmsDRAMQuESTDoesNot(t *testing.T) {
	s, _ := New(Default77K())
	est := workload.NewEstimator()
	for _, w := range []workload.Profile{workload.GSE, workload.Shor1024} {
		e := est.Estimate(w)
		base := s.Feed(e.BaselineBandwidth())
		quest := s.Feed(e.QuESTCacheBandwidth())
		if base.ChannelsNeeded < 1000 {
			t.Errorf("%s: baseline needs only %d channels — model inconsistent with 100s of TB/s",
				w.Name, base.ChannelsNeeded)
		}
		if quest.ChannelsNeeded != 1 || quest.Utilization > 0.01 {
			t.Errorf("%s: QuEST should idle one channel, got %+v", w.Name, quest)
		}
	}
}

// TestWorkingSetFitsAfterQuEST: the paper cites 10s-of-GB instruction
// footprints for the *logical* executable; those fit the 16 GiB module only
// because QECC never materializes as instructions. The baseline's physical
// stream for even one second does not fit.
func TestWorkingSetFitsAfterQuEST(t *testing.T) {
	s, _ := New(Default77K())
	est := workload.NewEstimator()
	e := est.Estimate(workload.QLS)
	oneSecondBaseline := uint64(e.BaselineBandwidth())
	if err := s.Load(oneSecondBaseline); err == nil {
		t.Errorf("one second of baseline stream (%d bytes) fit in DRAM", oneSecondBaseline)
	}
	oneSecondQuEST := uint64(e.QuESTCacheBandwidth())
	if err := s.Load(oneSecondQuEST); err != nil {
		t.Errorf("one second of QuEST stream rejected: %v", err)
	}
}
