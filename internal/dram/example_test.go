package dram_test

import (
	"fmt"

	"quest/internal/dram"
)

// ExampleStore runs the §2.2 feed analysis: can one cryo-DRAM channel feed
// an instruction stream?
func ExampleStore() {
	store, err := dram.New(dram.Default77K())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	baseline := store.Feed(100e12) // 100 TB/s of physical µops
	quest := store.Feed(5e6)       // ~5 MB/s of logical instructions
	fmt.Println("baseline channels needed:", baseline.ChannelsNeeded)
	fmt.Printf("QuEST utilization of one channel: %.4f%%\n", 100*quest.Utilization)
	// Output:
	// baseline channels needed: 7813
	// QuEST utilization of one channel: 0.0391%
}
