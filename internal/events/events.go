// Package events is the live telemetry side-band of the repository's
// experiment binaries: a schema-versioned JSONL stream (quest-events/1) of
// periodic run snapshots — per-cell sweep progress with trial rates and
// ETAs, metrics-registry deltas, and Go runtime health — emitted on a
// wall-clock ticker while a run is in flight. Where the ledger (quest-
// ledger/1) is the post-mortem record of *what was computed*, the event
// stream is the live record of *how the computation is going*: it is what
// lets an operator watch a fleet of sharded sweep processes (tools/questtop)
// or a future serving daemon surface per-job progress over SSE.
//
// Telemetry is a pure side-band. Nothing in this package feeds back into
// simulation state: the sampler observes the engine's display-only
// mc.Progress stream and concurrency-safe metrics registry, both of which
// are defined to never influence outcomes, so ledger bytes, heat JSON and
// sweep Results are identical with events on or off (pinned by
// core's TestThresholdObservedEventsPureSideband). This package is also the
// only place the telemetry path reads the wall clock — it is in the seedsrc
// analyzer's scope precisely so every read stays visibly policed.
package events

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"quest/internal/metrics"
)

// Schema identifies the JSONL layout; bump on incompatible change so
// tools/questtop can refuse to aggregate across layouts.
const Schema = "quest-events/1"

// Record kinds, carried in every line's "record" field.
const (
	KindHeader   = "header"
	KindSnapshot = "snapshot"
)

// Header is the first line of every event stream: schema plus the run and
// shard provenance a fleet aggregator needs to group streams belonging to
// one logical run. Unlike the ledger header it may carry wall-clock and
// process identity — the stream is operational telemetry, not a
// reproducibility artifact, and two runs of the same config are *supposed*
// to produce different event streams.
type Header struct {
	Record     string `json:"record"`
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	GoVersion  string `json:"go_version"`
	Host       string `json:"host"`
	PID        int    `json:"pid"`
	// ShardIndex and ShardCount stamp which shard of a sharded sweep this
	// stream watches (both omitted for single-process runs), mirroring the
	// ledger's shard provenance so questtop can pair event streams with the
	// shard ledgers they narrate.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// StartMs is the run start as Unix milliseconds; every snapshot's Ms is
	// relative to it.
	StartMs int64             `json:"start_ms"`
	Config  map[string]string `json:"config,omitempty"`
}

// CellProgress is the live state of one sweep cell inside a snapshot.
// Counts and the Wilson interval mirror the engine's mc.Progress stream
// (display-only completion-order numbers until the final Done snapshot);
// RatePerSec and EtaMs are derived by the sampler from consecutive
// snapshots' wall-clock spacing.
type CellProgress struct {
	Cell      string  `json:"cell"`
	Completed int     `json:"completed"`
	Budget    int     `json:"budget,omitempty"`
	Failures  int     `json:"failures"`
	WilsonLo  float64 `json:"wilson_lo"`
	WilsonHi  float64 `json:"wilson_hi"`
	// RatePerSec is the cell's trial completion rate over the sampling
	// interval that produced this snapshot (0 when the cell made no
	// progress, e.g. after it finished).
	RatePerSec float64 `json:"rate_per_sec"`
	// EtaMs projects the remaining wall-clock milliseconds to the cell's
	// budget at the current rate (omitted when done, rate is zero, or the
	// budget is unknown). Under CI early stop it is an upper bound.
	EtaMs int64 `json:"eta_ms,omitempty"`
	Done  bool  `json:"done,omitempty"`
}

// BusRate is the live instruction-bandwidth state of one machine bus inside
// a snapshot: cumulative instruction and byte totals since the run started
// (mirroring the -bw recorder's totals) plus the mean byte rate over the
// run so far. Cumulative rather than per-interval so a subscriber that
// drops frames still reads correct totals.
type BusRate struct {
	Bus        string  `json:"bus"`
	Instrs     uint64  `json:"instrs"`
	Bytes      uint64  `json:"bytes"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// RuntimeStats is the Go runtime health section of a snapshot.
type RuntimeStats struct {
	HeapBytes  uint64 `json:"heap_bytes"`
	Goroutines int    `json:"goroutines"`
	NumGC      uint32 `json:"num_gc"`
}

// Snapshot is one periodic telemetry record. Seq is strictly increasing
// from 1 and Ms (milliseconds since the header's StartMs) is non-decreasing
// — the two monotonicity invariants Validate enforces and questtop -check
// pins in CI. Cells are sorted by name so a snapshot's bytes do not depend
// on map-iteration order.
type Snapshot struct {
	Record string         `json:"record"`
	Seq    int            `json:"seq"`
	Ms     int64          `json:"ms"`
	Cells  []CellProgress `json:"cells,omitempty"`
	// BW carries per-bus cumulative bandwidth (sorted by bus name) when the
	// run profiles with -bw; questtop renders it as a fleet B/s column.
	BW []BusRate `json:"bw,omitempty"`
	// Deltas carries the change in the run's metrics registry since the
	// previous snapshot (counters and histogram counts subtract; gauges are
	// instantaneous) — trial throughput, worker busy time, decoder counters.
	// Nil when the run has no live registry.
	Deltas  *metrics.Snapshot `json:"deltas,omitempty"`
	Runtime RuntimeStats      `json:"runtime"`
}

// Writer streams event records as JSONL, one marshal per line, teeing every
// line to an optional SSE broadcaster. Safe for concurrent use (the sampler
// ticker and a final Stop flush may race). The underlying writer is not
// buffered here on purpose: telemetry lines must reach a tail -f or an SSE
// subscriber when written, not when a buffer happens to fill.
type Writer struct {
	mu        sync.Mutex
	w         io.Writer    // nil = broadcast-only stream
	bcast     *Broadcaster // nil = file-only stream
	snapshots int
	wroteHdr  bool
}

// NewWriter builds a writer over w (nil for an SSE-only stream) and bcast
// (nil when no SSE endpoint is serving).
func NewWriter(w io.Writer, bcast *Broadcaster) *Writer {
	return &Writer{w: w, bcast: bcast}
}

// WriteHeader emits the header line; call exactly once, first. The Record
// and Schema fields are filled in here so callers cannot mis-stamp them.
func (w *Writer) WriteHeader(h Header) error {
	h.Record = KindHeader
	h.Schema = Schema
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.wroteHdr {
		return fmt.Errorf("events: WriteHeader called twice")
	}
	line, err := w.line(h)
	if err != nil {
		return err
	}
	w.wroteHdr = true
	if w.bcast != nil {
		w.bcast.setHeader(line)
	}
	return nil
}

// WriteSnapshot emits one snapshot line.
func (w *Writer) WriteSnapshot(s Snapshot) error {
	s.Record = KindSnapshot
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.wroteHdr {
		return fmt.Errorf("events: snapshot before header")
	}
	line, err := w.line(s)
	if err != nil {
		return err
	}
	w.snapshots++
	if w.bcast != nil {
		w.bcast.publish(line)
	}
	return nil
}

// Snapshots reports how many snapshot records were written.
func (w *Writer) Snapshots() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.snapshots
}

// line marshals v, writes it to the underlying writer (when present), and
// returns the marshalled bytes without the trailing newline for the
// broadcaster.
func (w *Writer) line(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	if w.w != nil {
		if _, err := w.w.Write(append(b, '\n')); err != nil {
			return nil, fmt.Errorf("events: %w", err)
		}
	}
	return b, nil
}

// Stream is a parsed event stream.
type Stream struct {
	Header    Header
	Snapshots []Snapshot
}

// ParseStream decodes a quest-events/1 JSONL stream: one header line first,
// then snapshot lines. It tolerates a torn final line (what tailing a live
// stream mid-write yields) by ignoring a trailing line that fails to decode,
// but any earlier malformed line is an error.
func ParseStream(data []byte) (Stream, error) {
	var st Stream
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			if !sc.Scan() { // torn final line: a crash or a live tail mid-write
				return st, nil
			}
			return st, fmt.Errorf("events: line %d: %w", lineNo, err)
		}
		switch kind.Record {
		case KindHeader:
			if sawHeader {
				return st, fmt.Errorf("events: line %d: duplicate header", lineNo)
			}
			if err := json.Unmarshal(line, &st.Header); err != nil {
				return st, fmt.Errorf("events: line %d: header: %w", lineNo, err)
			}
			sawHeader = true
		case KindSnapshot:
			if !sawHeader {
				return st, fmt.Errorf("events: line %d: snapshot before header", lineNo)
			}
			var s Snapshot
			if err := json.Unmarshal(line, &s); err != nil {
				return st, fmt.Errorf("events: line %d: snapshot: %w", lineNo, err)
			}
			st.Snapshots = append(st.Snapshots, s)
		default:
			return st, fmt.Errorf("events: line %d: unknown record kind %q", lineNo, kind.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if !sawHeader {
		return st, fmt.Errorf("events: stream is empty")
	}
	return st, nil
}

// ValidateReport summarizes a validated event stream.
type ValidateReport struct {
	Experiment string
	ShardIndex int
	ShardCount int
	Snapshots  int
	// Cells counts distinct cell names seen across all snapshots; DoneCells
	// counts those whose latest appearance is Done.
	Cells     int
	DoneCells int
	// LastMs is the final snapshot's relative timestamp (0 when the stream
	// holds no snapshots yet).
	LastMs int64
}

// Validate parses and checks a quest-events/1 stream: correct schema, one
// header first, seq gap-free from 1, ms non-decreasing, cells sorted by
// name with self-consistent counts and Wilson brackets. CI's events-smoke
// job runs it (via questtop -check) over freshly generated shard streams
// so a telemetry regression fails the build.
func Validate(data []byte) (ValidateReport, error) {
	return validate(data, false)
}

// ValidateTail checks a stream captured mid-run — an SSE subscriber that
// joins late gets the header replayed but snapshots only from the current
// seq, and a slow subscriber may drop frames — so seq must be strictly
// increasing but need not start at 1 or be gap-free. Every other Validate
// invariant holds unchanged. tools/questtop applies it to http sources.
func ValidateTail(data []byte) (ValidateReport, error) {
	return validate(data, true)
}

func validate(data []byte, tail bool) (ValidateReport, error) {
	var rep ValidateReport
	st, err := ParseStream(data)
	if err != nil {
		return rep, err
	}
	if st.Header.Schema != Schema {
		return rep, fmt.Errorf("events: schema %q, want %q", st.Header.Schema, Schema)
	}
	if st.Header.Experiment == "" {
		return rep, fmt.Errorf("events: header missing experiment name")
	}
	if st.Header.ShardCount > 0 && (st.Header.ShardIndex < 0 || st.Header.ShardIndex >= st.Header.ShardCount) {
		return rep, fmt.Errorf("events: header shard index %d outside [0, %d)", st.Header.ShardIndex, st.Header.ShardCount)
	}
	rep.Experiment = st.Header.Experiment
	rep.ShardIndex, rep.ShardCount = st.Header.ShardIndex, st.Header.ShardCount
	lastSeq, lastMs := 0, int64(0)
	doneByCell := map[string]bool{}
	bytesByBus := map[string]uint64{}
	for i, s := range st.Snapshots {
		if tail {
			if s.Seq <= lastSeq {
				return rep, fmt.Errorf("events: snapshot %d: seq %d not increasing (previous %d)", i+1, s.Seq, lastSeq)
			}
		} else if s.Seq != lastSeq+1 {
			return rep, fmt.Errorf("events: snapshot %d: seq %d, want %d (gap-free from 1)", i+1, s.Seq, lastSeq+1)
		}
		if s.Ms < lastMs {
			return rep, fmt.Errorf("events: snapshot %d: ms %d ran backwards (previous %d)", i+1, s.Ms, lastMs)
		}
		lastSeq, lastMs = s.Seq, s.Ms
		for j, c := range s.Cells {
			if c.Cell == "" {
				return rep, fmt.Errorf("events: snapshot %d: cell %d has no name", i+1, j)
			}
			if j > 0 && !(s.Cells[j-1].Cell < c.Cell) {
				return rep, fmt.Errorf("events: snapshot %d: cells not sorted by name (%q before %q)", i+1, s.Cells[j-1].Cell, c.Cell)
			}
			if c.Failures < 0 || c.Failures > c.Completed {
				return rep, fmt.Errorf("events: snapshot %d: cell %q failures %d outside [0, %d]", i+1, c.Cell, c.Failures, c.Completed)
			}
			if c.Budget > 0 && c.Completed > c.Budget {
				return rep, fmt.Errorf("events: snapshot %d: cell %q completed %d exceeds budget %d", i+1, c.Cell, c.Completed, c.Budget)
			}
			if c.WilsonLo > c.WilsonHi {
				return rep, fmt.Errorf("events: snapshot %d: cell %q Wilson interval [%v, %v] inverted", i+1, c.Cell, c.WilsonLo, c.WilsonHi)
			}
			if c.RatePerSec < 0 {
				return rep, fmt.Errorf("events: snapshot %d: cell %q negative rate %v", i+1, c.Cell, c.RatePerSec)
			}
			doneByCell[c.Cell] = c.Done
		}
		for j, b := range s.BW {
			if b.Bus == "" {
				return rep, fmt.Errorf("events: snapshot %d: bw entry %d has no bus name", i+1, j)
			}
			if j > 0 && !(s.BW[j-1].Bus < b.Bus) {
				return rep, fmt.Errorf("events: snapshot %d: bw buses not sorted by name (%q before %q)", i+1, s.BW[j-1].Bus, b.Bus)
			}
			if b.RatePerSec < 0 {
				return rep, fmt.Errorf("events: snapshot %d: bus %q negative rate %v", i+1, b.Bus, b.RatePerSec)
			}
			if prev, ok := bytesByBus[b.Bus]; ok && b.Bytes < prev {
				return rep, fmt.Errorf("events: snapshot %d: bus %q cumulative bytes %d ran backwards (previous %d)", i+1, b.Bus, b.Bytes, prev)
			}
			bytesByBus[b.Bus] = b.Bytes
		}
	}
	rep.Snapshots = len(st.Snapshots)
	rep.LastMs = lastMs
	rep.Cells = len(doneByCell)
	for _, done := range doneByCell { //quest:allow(detrange) counting set members is order-independent
		if done {
			rep.DoneCells++
		}
	}
	return rep, nil
}
