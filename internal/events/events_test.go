package events

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quest/internal/bwprofile"
	"quest/internal/mc"
	"quest/internal/metrics"
)

// fakeClock is the injectable clock for deterministic rate/ETA tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testSampler builds a file-only sampler on a fake clock, with the ticker
// goroutine suppressed (interval does not matter; tests call Sample
// directly and Stop emits the final snapshot).
func testSampler(t *testing.T, reg *metrics.Registry) (*Sampler, *bytes.Buffer, *fakeClock) {
	t.Helper()
	var buf bytes.Buffer
	clk := newFakeClock()
	s := NewSampler(NewWriter(&buf, nil), reg)
	s.now = clk.now
	if err := s.Start(Header{Experiment: "test"}, time.Hour); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s, &buf, clk
}

func TestSamplerStreamRoundTrip(t *testing.T) {
	reg := metrics.New()
	s, buf, clk := testSampler(t, reg)

	reg.Counter("mc.trials").Add(100)
	s.ObserveCell("p=0.0100", mc.Progress{Completed: 100, Failures: 3, Budget: 400, WilsonLo: 0.01, WilsonHi: 0.08})
	clk.advance(time.Second)
	if err := s.Sample(); err != nil {
		t.Fatalf("Sample: %v", err)
	}

	reg.Counter("mc.trials").Add(50)
	s.ObserveCell("p=0.0100", mc.Progress{Completed: 150, Failures: 4, Budget: 400, WilsonLo: 0.01, WilsonHi: 0.06})
	s.ObserveCell("p=0.0050", mc.Progress{Completed: 20, Failures: 0, Budget: 400, WilsonLo: 0, WilsonHi: 0.16})
	clk.advance(time.Second)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	st, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseStream: %v", err)
	}
	if st.Header.Schema != Schema || st.Header.Experiment != "test" {
		t.Fatalf("header = %+v", st.Header)
	}
	if len(st.Snapshots) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(st.Snapshots))
	}

	first := st.Snapshots[0]
	if first.Seq != 1 || first.Ms != 1000 {
		t.Fatalf("first snapshot seq/ms = %d/%d, want 1/1000", first.Seq, first.Ms)
	}
	if len(first.Cells) != 1 {
		t.Fatalf("first snapshot has %d cells, want 1", len(first.Cells))
	}
	c := first.Cells[0]
	// 100 trials in the 1s since the cell appeared: 100 trials/sec, and
	// (400-100)/100 = 3s to budget.
	if c.RatePerSec != 100 {
		t.Errorf("rate = %v, want 100", c.RatePerSec)
	}
	if c.EtaMs != 3000 {
		t.Errorf("eta = %dms, want 3000", c.EtaMs)
	}
	if first.Deltas == nil || len(first.Deltas.Counters) != 1 || first.Deltas.Counters[0].Value != 100 {
		t.Errorf("first deltas = %+v, want mc.trials=100", first.Deltas)
	}
	if first.Runtime.HeapBytes == 0 || first.Runtime.Goroutines == 0 {
		t.Errorf("runtime stats not populated: %+v", first.Runtime)
	}

	final := st.Snapshots[1]
	if len(final.Cells) != 2 {
		t.Fatalf("final snapshot has %d cells, want 2", len(final.Cells))
	}
	// Sorted by cell name: p=0.0050 before p=0.0100.
	if final.Cells[0].Cell != "p=0.0050" || final.Cells[1].Cell != "p=0.0100" {
		t.Errorf("cells not sorted: %q, %q", final.Cells[0].Cell, final.Cells[1].Cell)
	}
	// 50 more trials over the second interval.
	if got := final.Cells[1].RatePerSec; got != 50 {
		t.Errorf("second-interval rate = %v, want 50", got)
	}
	// Deltas carry only the change: 50 more mc.trials.
	if final.Deltas == nil || final.Deltas.Counters[0].Value != 50 {
		t.Errorf("final deltas = %+v, want mc.trials=50", final.Deltas)
	}

	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("Validate rejects a sampler-produced stream: %v", err)
	}
}

func TestSamplerIdleIntervalOmitsDeltas(t *testing.T) {
	reg := metrics.New()
	s, buf, clk := testSampler(t, reg)
	clk.advance(time.Second)
	if err := s.Sample(); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseStream: %v", err)
	}
	for i, snap := range st.Snapshots {
		if snap.Deltas != nil {
			t.Errorf("snapshot %d: idle interval has deltas %+v", i, snap.Deltas)
		}
	}
}

func TestSamplerDoneCellHasNoEta(t *testing.T) {
	s, buf, clk := testSampler(t, nil)
	s.ObserveCell("cell", mc.Progress{Completed: 400, Failures: 9, Budget: 400, Done: true})
	clk.advance(time.Second)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseStream: %v", err)
	}
	c := st.Snapshots[0].Cells[0]
	if !c.Done || c.EtaMs != 0 {
		t.Errorf("done cell = %+v, want Done with no ETA", c)
	}
}

// TestObserveCellNilAllocs pins the events-off contract: a nil sampler's
// ObserveCell is free — no allocation, so the progress plumbing can call it
// unconditionally. The benchsuite events-off-observe case pins the same
// number against the committed baseline.
func TestObserveCellNilAllocs(t *testing.T) {
	var s *Sampler
	p := mc.Progress{Completed: 10, Failures: 1, Budget: 100}
	allocs := testing.AllocsPerRun(100, func() {
		s.ObserveCell("cell", p)
	})
	if allocs != 0 {
		t.Fatalf("nil sampler ObserveCell allocates %.1f/op, want 0", allocs)
	}
}

func TestNilSamplerLifecycleNoOps(t *testing.T) {
	var s *Sampler
	if err := s.Start(Header{Experiment: "x"}, time.Second); err != nil {
		t.Fatalf("nil Start: %v", err)
	}
	if err := s.Sample(); err != nil {
		t.Fatalf("nil Sample: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
	if n := s.Snapshots(); n != 0 {
		t.Fatalf("nil Snapshots = %d", n)
	}
}

func TestWriterOrderingErrors(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, nil)
	if err := w.WriteSnapshot(Snapshot{Seq: 1}); err == nil {
		t.Error("snapshot before header accepted")
	}
	if err := w.WriteHeader(Header{Experiment: "x"}); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	if err := w.WriteHeader(Header{Experiment: "x"}); err == nil {
		t.Error("second header accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	header := `{"record":"header","schema":"quest-events/1","experiment":"e","start_ms":1}`
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", "", "empty"},
		{"wrong schema", `{"record":"header","schema":"quest-events/2","experiment":"e"}`, "schema"},
		{"missing experiment", `{"record":"header","schema":"quest-events/1"}`, "experiment"},
		{"unknown kind", header + "\n" + `{"record":"mystery"}`, "unknown record kind"},
		{"snapshot first", `{"record":"snapshot","seq":1}`, "before header"},
		{"duplicate header", header + "\n" + header, "duplicate header"},
		{"seq gap", header + "\n" + `{"record":"snapshot","seq":2,"ms":1,"runtime":{}}`, "seq"},
		{"ms backwards", header + "\n" +
			`{"record":"snapshot","seq":1,"ms":10,"runtime":{}}` + "\n" +
			`{"record":"snapshot","seq":2,"ms":5,"runtime":{}}`, "backwards"},
		{"cells unsorted", header + "\n" +
			`{"record":"snapshot","seq":1,"ms":1,"cells":[{"cell":"b"},{"cell":"a"}],"runtime":{}}`, "sorted"},
		{"failures exceed completed", header + "\n" +
			`{"record":"snapshot","seq":1,"ms":1,"cells":[{"cell":"a","completed":5,"failures":6}],"runtime":{}}`, "failures"},
		{"completed exceeds budget", header + "\n" +
			`{"record":"snapshot","seq":1,"ms":1,"cells":[{"cell":"a","completed":9,"budget":5}],"runtime":{}}`, "budget"},
		{"wilson inverted", header + "\n" +
			`{"record":"snapshot","seq":1,"ms":1,"cells":[{"cell":"a","wilson_lo":0.5,"wilson_hi":0.1}],"runtime":{}}`, "Wilson"},
		{"bad shard index", `{"record":"header","schema":"quest-events/1","experiment":"e","shard_index":3,"shard_count":2}`, "shard index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateReportCounts(t *testing.T) {
	in := `{"record":"header","schema":"quest-events/1","experiment":"e","shard_index":1,"shard_count":2,"start_ms":1}
{"record":"snapshot","seq":1,"ms":100,"cells":[{"cell":"a","completed":10},{"cell":"b","completed":5}],"runtime":{}}
{"record":"snapshot","seq":2,"ms":200,"cells":[{"cell":"a","completed":20,"done":true},{"cell":"b","completed":9}],"runtime":{}}
`
	rep, err := Validate([]byte(in))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := ValidateReport{Experiment: "e", ShardIndex: 1, ShardCount: 2, Snapshots: 2, Cells: 2, DoneCells: 1, LastMs: 200}
	if rep != want {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
}

func TestValidateTailAcceptsMidRunCaptures(t *testing.T) {
	header := `{"record":"header","schema":"quest-events/1","experiment":"e","start_ms":1}`
	// A late SSE subscriber: first seq far from 1, then a dropped-frame gap.
	in := header + "\n" +
		`{"record":"snapshot","seq":35,"ms":100,"runtime":{}}` + "\n" +
		`{"record":"snapshot","seq":37,"ms":200,"runtime":{}}` + "\n"
	rep, err := ValidateTail([]byte(in))
	if err != nil {
		t.Fatalf("ValidateTail rejected a mid-run capture: %v", err)
	}
	if rep.Snapshots != 2 || rep.LastMs != 200 {
		t.Errorf("report = %+v, want 2 snapshots to ms 200", rep)
	}
	// The same stream is NOT a valid file: Validate demands gap-free from 1.
	if _, err := Validate([]byte(in)); err == nil {
		t.Error("Validate accepted a stream starting at seq 35")
	}
	// Non-increasing seq fails both.
	dup := header + "\n" +
		`{"record":"snapshot","seq":5,"ms":100,"runtime":{}}` + "\n" +
		`{"record":"snapshot","seq":5,"ms":200,"runtime":{}}` + "\n"
	if _, err := ValidateTail([]byte(dup)); err == nil {
		t.Error("ValidateTail accepted a repeated seq")
	}
}

func TestParseStreamToleratesTornFinalLine(t *testing.T) {
	in := `{"record":"header","schema":"quest-events/1","experiment":"e","start_ms":1}
{"record":"snapshot","seq":1,"ms":100,"runtime":{}}
{"record":"snapsh`
	st, err := ParseStream([]byte(in))
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if len(st.Snapshots) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(st.Snapshots))
	}
	// The same garbage mid-stream is an error.
	bad := `{"record":"header","schema":"quest-events/1","experiment":"e","start_ms":1}
{"record":"snapsh
{"record":"snapshot","seq":1,"ms":100,"runtime":{}}
`
	if _, err := ParseStream([]byte(bad)); err == nil {
		t.Fatal("mid-stream garbage accepted")
	}
}

func TestSSEBroadcast(t *testing.T) {
	b := NewBroadcaster()
	w := NewWriter(nil, b) // broadcast-only stream
	if err := w.WriteHeader(Header{Experiment: "sse"}); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}

	srv := httptest.NewServer(b)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	readFrame := func() string {
		t.Helper()
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				return strings.TrimPrefix(line, "data: ")
			}
		}
		t.Fatalf("stream ended: %v", sc.Err())
		return ""
	}

	// Late subscriber still gets the header first.
	hdr := readFrame()
	if !strings.Contains(hdr, `"record":"header"`) || !strings.Contains(hdr, `"sse"`) {
		t.Fatalf("first frame = %q, want replayed header", hdr)
	}

	if err := w.WriteSnapshot(Snapshot{Seq: 1, Ms: 5}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap := readFrame()
	if !strings.Contains(snap, `"record":"snapshot"`) || !strings.Contains(snap, `"seq":1`) {
		t.Fatalf("second frame = %q, want snapshot seq 1", snap)
	}
}

func TestSSESlowSubscriberDrops(t *testing.T) {
	b := NewBroadcaster()
	ch := b.subscribe()
	line := []byte(`{"record":"snapshot"}`)
	for i := 0; i < subBuffer+5; i++ {
		b.publish(line)
	}
	if got := b.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	if len(ch) != subBuffer {
		t.Fatalf("buffered = %d, want %d", len(ch), subBuffer)
	}
	b.unsubscribe(ch)
	b.publish(line) // must not panic or block after unsubscribe
}

func TestHealthz(t *testing.T) {
	rr := httptest.NewRecorder()
	Healthz(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if got := rr.Body.String(); !strings.Contains(got, `"events":false`) {
		t.Fatalf("nil-sampler healthz = %q", got)
	}

	s, _, clk := testSampler(t, nil)
	clk.advance(time.Second)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	rr = httptest.NewRecorder()
	Healthz(s).ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	got := rr.Body.String()
	if !strings.Contains(got, `"events":true`) || !strings.Contains(got, `"snapshots":1`) {
		t.Fatalf("healthz = %q", got)
	}
}

// TestSamplerTicker exercises the real ticker path end to end (real clock,
// no injected time): snapshots accumulate and the stream stays valid.
func TestSamplerTicker(t *testing.T) {
	var buf bytes.Buffer
	s := NewSampler(NewWriter(&buf, nil), nil)
	if err := s.Start(Header{Experiment: "tick"}, time.Millisecond); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.ObserveCell("cell", mc.Progress{Completed: 1, Budget: 10})
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshots() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if n := s.Snapshots(); n < 4 {
		t.Fatalf("snapshots = %d, want >= 4 (3 ticks + final)", n)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("ticker stream invalid: %v", err)
	}
}

// TestSamplerConcurrentObserve drives ObserveCell from many goroutines
// while the ticker samples — the -race configuration this plumbing runs
// under in a real sweep.
func TestSamplerConcurrentObserve(t *testing.T) {
	var buf bytes.Buffer
	s := NewSampler(NewWriter(&buf, nil), metrics.New())
	if err := s.Start(Header{Experiment: "race"}, time.Millisecond); err != nil {
		t.Fatalf("Start: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := fmt.Sprintf("cell-%d", g)
			for i := 1; i <= 200; i++ {
				s.ObserveCell(cell, mc.Progress{Completed: i, Budget: 200})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	rep, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.Cells != 8 {
		t.Fatalf("cells = %d, want 8", rep.Cells)
	}
}

func TestSamplerBWSection(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	s := NewSampler(NewWriter(&buf, nil), nil)
	s.now = clk.now
	rec := bwprofile.New(8)
	s.SetBW(rec)
	if err := s.Start(Header{Experiment: "test"}, time.Hour); err != nil {
		t.Fatalf("Start: %v", err)
	}
	rec.Observe(0, bwprofile.BusLogical, bwprofile.ClassPrep, 3, 6)
	rec.Observe(1, bwprofile.BusSync, bwprofile.ClassSync, 1, 2)
	clk.advance(2 * time.Second)
	if err := s.Sample(); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseStream: %v", err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bw := st.Snapshots[0].BW
	if len(bw) != 2 {
		t.Fatalf("BW = %+v, want 2 buses", bw)
	}
	// Sorted by bus name: logical before sync.
	if bw[0].Bus != "logical" || bw[0].Instrs != 3 || bw[0].Bytes != 6 || bw[0].RatePerSec != 3 {
		t.Errorf("logical = %+v, want 3 instrs, 6 B, 3 B/s over 2s", bw[0])
	}
	if bw[1].Bus != "sync" || bw[1].Bytes != 2 || bw[1].RatePerSec != 1 {
		t.Errorf("sync = %+v, want 2 B at 1 B/s", bw[1])
	}
}

func TestValidateRejectsBadBW(t *testing.T) {
	header := `{"record":"header","schema":"quest-events/1","experiment":"e","go_version":"go","host":"h","pid":1,"start_ms":5}`
	for name, lines := range map[string][]string{
		"unsorted buses": {
			header,
			`{"record":"snapshot","seq":1,"ms":0,"bw":[{"bus":"sync","bytes":1},{"bus":"logical","bytes":1}],"runtime":{}}`,
		},
		"unnamed bus": {
			header,
			`{"record":"snapshot","seq":1,"ms":0,"bw":[{"bus":"","bytes":1}],"runtime":{}}`,
		},
		"negative rate": {
			header,
			`{"record":"snapshot","seq":1,"ms":0,"bw":[{"bus":"logical","rate_per_sec":-1}],"runtime":{}}`,
		},
		"cumulative bytes backwards": {
			header,
			`{"record":"snapshot","seq":1,"ms":0,"bw":[{"bus":"logical","bytes":9}],"runtime":{}}`,
			`{"record":"snapshot","seq":2,"ms":1,"bw":[{"bus":"logical","bytes":4}],"runtime":{}}`,
		},
	} {
		if _, err := Validate([]byte(strings.Join(lines, "\n") + "\n")); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
