package events

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"quest/internal/bwprofile"
	"quest/internal/mc"
	"quest/internal/metrics"
)

// DefaultInterval is the sampling period when the caller does not choose
// one: fast enough that questtop feels live, slow enough that a snapshot's
// cost (one ReadMemStats + one registry walk + one JSON marshal) is noise
// next to the trial loop it watches.
const DefaultInterval = 250 * time.Millisecond

// wallClock is the telemetry side-band's single real-clock source; the
// sampler's injectable now() defaults to it. Timestamps, rates and ETAs
// derive from here and land only in the event stream — never in seeds,
// simulated time, or any deterministic artifact.
func wallClock() time.Time {
	return time.Now() //quest:allow(seedsrc) telemetry timestamps only; the value never reaches simulation state
}

// cellState is the sampler's view of one sweep cell: the latest progress
// plus the completion count and timestamp of the previous emitted snapshot,
// from which the per-interval trial rate derives.
type cellState struct {
	p             mc.Progress
	lastCompleted int
	lastAt        time.Time
	rate          float64 // trials/sec over the last sampling interval
}

// Sampler turns the engine's push-style progress stream into periodic
// telemetry snapshots. A nil *Sampler is the events-off mode: every method
// is a nil-gated no-op, so call sites stay unconditional and the off path
// adds zero allocations (pinned by TestObserveCellNilAllocs and the
// benchsuite events-off-observe case; enforced structurally by the nogate
// analyzer, which lists Sampler as a gated observability type).
type Sampler struct {
	w   *Writer
	reg *metrics.Registry // nil when the run has no live registry

	// now is the clock; tests inject a fake to pin exact rates and ETAs.
	now func() time.Time

	mu    sync.Mutex
	cells map[string]*cellState
	names []string // sorted cell names, maintained incrementally
	seq   int
	prev  metrics.Snapshot
	start time.Time
	bw    *bwprofile.Recorder // nil when the run is not profiling bandwidth

	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}
	// tickErr latches the first write error from the ticker goroutine
	// (which has no caller to return it to); Stop surfaces it.
	tickErr error
}

// NewSampler builds a sampler writing snapshots through w, with metrics
// deltas from reg (nil for none). Call Start to write the header and begin
// ticking, then Stop to flush the final snapshot.
func NewSampler(w *Writer, reg *metrics.Registry) *Sampler {
	return &Sampler{
		w:     w,
		reg:   reg,
		now:   wallClock,
		cells: make(map[string]*cellState),
	}
}

// SetBW attaches the run's bandwidth recorder: every snapshot then carries
// the recorder's cumulative per-bus totals and mean byte rates (Snapshot.BW)
// so questtop can show fleet bandwidth live. Call before Start; nil detaches.
// No-op on a nil sampler.
func (s *Sampler) SetBW(r *bwprofile.Recorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bw = r
	s.mu.Unlock()
}

// Start writes the stream header (stamping StartMs from the sampler's
// clock) and launches the ticker goroutine that emits a snapshot every
// interval (DefaultInterval when interval <= 0). No-op on a nil sampler.
func (s *Sampler) Start(h Header, interval time.Duration) error {
	if s == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	s.mu.Lock()
	s.start = s.now()
	h.StartMs = s.start.UnixMilli()
	if s.reg != nil {
		s.prev = s.reg.Snapshot()
	}
	s.mu.Unlock()
	if err := s.w.WriteHeader(h); err != nil {
		return err
	}
	s.ticker = time.NewTicker(interval)
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.ticker.C:
				if err := s.Sample(); err != nil {
					s.mu.Lock()
					if s.tickErr == nil {
						s.tickErr = err
					}
					s.mu.Unlock()
				}
			case <-s.stop:
				return
			}
		}
	}()
	return nil
}

// ObserveCell folds one progress update into the sampler's live cell table.
// It is the per-cell adapter for mc.Observers.Progress and questsim's cycle
// loop; calls are cheap (one mutex, no allocation after a cell's first
// update) and safe from worker goroutines. No-op on a nil sampler.
func (s *Sampler) ObserveCell(cell string, p mc.Progress) {
	if s == nil {
		return
	}
	s.mu.Lock()
	cs := s.cells[cell]
	if cs == nil {
		cs = &cellState{lastAt: s.now()}
		s.cells[cell] = cs
		s.insertName(cell)
	}
	cs.p = p
	s.mu.Unlock()
}

// insertName keeps names sorted as cells appear (called with mu held).
// Sweeps touch cells mostly in name order, so the common insert is an
// append; the sorted order is what makes snapshot bytes independent of
// map iteration.
func (s *Sampler) insertName(cell string) {
	i := len(s.names)
	for i > 0 && s.names[i-1] > cell {
		i--
	}
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = cell
}

// Sample emits one snapshot now: per-cell progress with rates and ETAs in
// sorted cell order, metrics deltas since the previous snapshot, and
// runtime stats. Exported so Stop and tests can force a final/deterministic
// emission; the ticker calls it on every tick. No-op on a nil sampler.
func (s *Sampler) Sample() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	now := s.now()
	s.seq++
	snap := Snapshot{
		Seq:   s.seq,
		Ms:    now.Sub(s.start).Milliseconds(),
		Cells: make([]CellProgress, 0, len(s.names)),
	}
	for _, name := range s.names {
		cs := s.cells[name]
		dt := now.Sub(cs.lastAt).Seconds()
		if dt > 0 {
			cs.rate = float64(cs.p.Completed-cs.lastCompleted) / dt
			cs.lastCompleted = cs.p.Completed
			cs.lastAt = now
		}
		cp := CellProgress{
			Cell:       name,
			Completed:  cs.p.Completed,
			Budget:     cs.p.Budget,
			Failures:   cs.p.Failures,
			WilsonLo:   cs.p.WilsonLo,
			WilsonHi:   cs.p.WilsonHi,
			RatePerSec: cs.rate,
			Done:       cs.p.Done,
		}
		if !cp.Done && cp.Budget > cp.Completed && cs.rate > 0 {
			cp.EtaMs = int64(float64(cp.Budget-cp.Completed) / cs.rate * 1000)
		}
		snap.Cells = append(snap.Cells, cp)
	}
	if s.bw != nil {
		elapsed := now.Sub(s.start).Seconds()
		for _, bt := range s.bw.Totals() {
			if bt.Instrs == 0 && bt.Bytes == 0 {
				continue
			}
			br := BusRate{Bus: bt.Bus.String(), Instrs: bt.Instrs, Bytes: bt.Bytes}
			if elapsed > 0 {
				br.RatePerSec = float64(bt.Bytes) / elapsed
			}
			snap.BW = append(snap.BW, br)
		}
		// Totals come back in bus enum order; the stream invariant (and what
		// keeps snapshot bytes stable if the enum is ever reordered) is name
		// order.
		sort.Slice(snap.BW, func(i, j int) bool { return snap.BW[i].Bus < snap.BW[j].Bus })
	}
	if s.reg != nil {
		cur := s.reg.Snapshot()
		d := cur.Delta(s.prev)
		s.prev = cur
		if len(d.Counters)+len(d.Gauges)+len(d.Histograms) > 0 {
			snap.Deltas = &d
		}
	}
	s.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.Runtime = RuntimeStats{
		HeapBytes:  ms.HeapAlloc,
		Goroutines: runtime.NumGoroutine(),
		NumGC:      ms.NumGC,
	}
	return s.w.WriteSnapshot(snap)
}

// Stop halts the ticker and emits one final snapshot so the stream always
// ends with the cells' terminal state. Safe to call once after Start (or
// on a sampler never started, or nil — both no-ops).
func (s *Sampler) Stop() error {
	if s == nil {
		return nil
	}
	if s.ticker == nil {
		return nil
	}
	s.ticker.Stop()
	close(s.stop)
	<-s.done
	s.ticker = nil
	if err := s.Sample(); err != nil {
		return err
	}
	// Surface any write error the ticker goroutine latched: a truncated
	// stream must fail the run, not validate downstream.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tickErr
}

// Snapshots reports how many snapshot records the sampler has written
// (0 on a nil sampler).
func (s *Sampler) Snapshots() int {
	if s == nil {
		return 0
	}
	return s.w.Snapshots()
}
