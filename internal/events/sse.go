package events

import (
	"fmt"
	"net/http"
	"sync"
)

// subBuffer is each SSE subscriber's channel depth. A subscriber that falls
// more than a buffer behind starts losing intermediate snapshots (counted,
// never blocking the writer): telemetry favors the producer — a slow
// monitoring client must not be able to stall the run it is watching.
const subBuffer = 64

// Broadcaster fans event-stream lines out to live SSE subscribers. It keeps
// the header line so late subscribers still receive the stream provenance
// first, exactly as a file reader would.
type Broadcaster struct {
	mu      sync.Mutex
	header  []byte
	subs    map[chan []byte]struct{}
	dropped int
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[chan []byte]struct{})}
}

// setHeader records the header line for replay to future subscribers and
// publishes it to current ones.
func (b *Broadcaster) setHeader(line []byte) {
	b.mu.Lock()
	b.header = line
	b.mu.Unlock()
	b.publish(line)
}

// publish delivers line to every subscriber, dropping (and counting) sends
// that would block on a full buffer.
func (b *Broadcaster) publish(line []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs { //quest:allow(detrange) independent per-subscriber sends; delivery order across subscribers is inherently unordered
		select {
		case ch <- line:
		default:
			b.dropped++
		}
	}
}

// Dropped reports how many lines were discarded on slow subscribers.
func (b *Broadcaster) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// subscribe registers a new subscriber, delivering the header (if already
// written) as its first line.
func (b *Broadcaster) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	b.mu.Lock()
	if b.header != nil {
		ch <- b.header
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *Broadcaster) unsubscribe(ch chan []byte) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// ServeHTTP streams the event feed as Server-Sent Events: each JSONL record
// becomes one `data: {...}` frame, flushed immediately. The handler runs
// until the client disconnects. `curl -N http://host/events` or questtop
// pointed at the URL both read it directly.
func (b *Broadcaster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "events: streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch := b.subscribe()
	defer b.unsubscribe(ch)
	for {
		select {
		case line := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", line); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Healthz returns a liveness handler reporting the sampler's state as JSON.
// It answers even when events are off (nil sampler) so a supervisor can
// always probe the process; with events on it additionally reports how many
// snapshots have streamed.
func Healthz(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s == nil {
			fmt.Fprintf(w, "{\"status\":\"ok\",\"events\":false}\n")
			return
		}
		fmt.Fprintf(w, "{\"status\":\"ok\",\"events\":true,\"snapshots\":%d}\n", s.Snapshots())
	})
}
