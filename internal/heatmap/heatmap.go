// Package heatmap accumulates the spatial view of the decode pipeline: where
// on the lattice defects appear, which sites participate in matched
// correction chains, and how long those chains are. The decoder
// micro-architecture literature (Das et al.) sizes hardware around exactly
// these distributions — defect locality bounds the local LUT's hit rate, and
// the matched-pair length distribution bounds the matching unit's search
// radius — so the reproduction records them instead of asserting them.
//
// A Collector is deliberately dumb: fixed-size integer grids plus a
// fixed-bucket chain-length histogram, all merged by addition, so merging
// per-trial shards in trial order yields exactly the same totals as any
// other order (the worker-count-independence invariant every observer in
// this repository obeys). Collection follows the nil-gated pattern of
// internal/tracing: every recording method on a nil *Collector is a no-op
// and allocation-free, which is the state the decode hot paths run in when
// -heatmap is off (pinned by TestNilCollectorIsFreeAndSafe and the
// committed benchmark baseline's alloc counts).
package heatmap

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the JSON export layout; bump on incompatible change.
const Schema = "quest-heatmap/1"

// MaxChainLen is the last resolved bucket of the chain-length histogram;
// longer chains land in the overflow bucket (index MaxChainLen+1). Matching
// weight on a distance-d planar patch is bounded by ~2d, so 32 resolves
// every distance this repository simulates.
const MaxChainLen = 32

// Collector accumulates spatial decode statistics for one lattice shape.
// Methods are not concurrency-safe: each Monte-Carlo trial records into a
// private shard (see mc.Observers.Heat), merged in trial order after the
// pool drains.
type Collector struct {
	rows, cols int
	defects    []int64 // per-site defect occurrences (row-major)
	matched    []int64 // per-site matched-chain-endpoint occurrences
	chainLen   [MaxChainLen + 2]int64
	pairs      int64 // defect-defect matches
	boundary   int64 // defect-boundary matches
}

// New returns an empty collector for a rows×cols lattice.
func New(rows, cols int) *Collector {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("heatmap: invalid shape %dx%d", rows, cols))
	}
	return &Collector{
		rows:    rows,
		cols:    cols,
		defects: make([]int64, rows*cols),
		matched: make([]int64, rows*cols),
	}
}

// NewShard returns an empty collector of the same shape — the per-trial
// shard constructor the Monte-Carlo engine calls. Nil-safe: a nil receiver
// returns nil, so a disabled heatmap propagates as a disabled shard.
func (c *Collector) NewShard() *Collector {
	if c == nil {
		return nil
	}
	return New(c.rows, c.cols)
}

// Shape returns (rows, cols); (0, 0) on a nil collector.
func (c *Collector) Shape() (rows, cols int) {
	if c == nil {
		return 0, 0
	}
	return c.rows, c.cols
}

// Defect records one defect occurrence at lattice site (r, cc). Out-of-range
// sites are ignored (a patch smaller than the tile lattice never indexes
// out, but defensiveness here is cheaper than a panic in a worker).
func (c *Collector) Defect(r, cc int) {
	if c == nil || r < 0 || r >= c.rows || cc < 0 || cc >= c.cols {
		return
	}
	c.defects[r*c.cols+cc]++
}

// MatchedPair records a defect-defect match: both endpoints and the chain
// length (the matcher's space-time distance).
func (c *Collector) MatchedPair(r1, c1, r2, c2, length int) {
	if c == nil {
		return
	}
	c.pairs++
	c.site(r1, c1)
	c.site(r2, c2)
	c.length(length)
}

// MatchedBoundary records a defect matched to the code boundary.
func (c *Collector) MatchedBoundary(r, cc, length int) {
	if c == nil {
		return
	}
	c.boundary++
	c.site(r, cc)
	c.length(length)
}

func (c *Collector) site(r, cc int) {
	if r < 0 || r >= c.rows || cc < 0 || cc >= c.cols {
		return
	}
	c.matched[r*c.cols+cc]++
}

func (c *Collector) length(n int) {
	if n < 0 {
		n = 0
	}
	if n > MaxChainLen {
		n = MaxChainLen + 1
	}
	c.chainLen[n]++
}

// Merge adds src's accumulators into c. Shapes must match; merging a nil or
// empty shard is a no-op. Addition commutes, so any merge order yields the
// same totals.
func (c *Collector) Merge(src *Collector) {
	if c == nil || src == nil {
		return
	}
	if src.rows != c.rows || src.cols != c.cols {
		panic(fmt.Sprintf("heatmap: merging %dx%d into %dx%d", src.rows, src.cols, c.rows, c.cols))
	}
	for i, v := range src.defects {
		c.defects[i] += v
	}
	for i, v := range src.matched {
		c.matched[i] += v
	}
	for i, v := range src.chainLen {
		c.chainLen[i] += v
	}
	c.pairs += src.pairs
	c.boundary += src.boundary
}

// Defects returns the defect-occurrence grid as rows of counts.
func (c *Collector) Defects() [][]int64 {
	if c == nil {
		return nil
	}
	return c.grid(c.defects)
}

// Matched returns the matched-endpoint grid as rows of counts.
func (c *Collector) Matched() [][]int64 {
	if c == nil {
		return nil
	}
	return c.grid(c.matched)
}

func (c *Collector) grid(flat []int64) [][]int64 {
	if c == nil {
		return nil
	}
	out := make([][]int64, c.rows)
	for r := 0; r < c.rows; r++ {
		out[r] = append([]int64(nil), flat[r*c.cols:(r+1)*c.cols]...)
	}
	return out
}

// ChainLengths returns the chain-length histogram: index i counts chains of
// length i for i ≤ MaxChainLen; the final element is the overflow bucket.
func (c *Collector) ChainLengths() []int64 {
	if c == nil {
		return nil
	}
	return append([]int64(nil), c.chainLen[:]...)
}

// Pairs returns the number of defect-defect matches recorded.
func (c *Collector) Pairs() int64 {
	if c == nil {
		return 0
	}
	return c.pairs
}

// Boundary returns the number of defect-boundary matches recorded.
func (c *Collector) Boundary() int64 {
	if c == nil {
		return 0
	}
	return c.boundary
}

// TotalDefects returns the sum over the defect grid.
func (c *Collector) TotalDefects() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, v := range c.defects {
		n += v
	}
	return n
}

// Export is the JSON form of one collector.
type Export struct {
	Name     string    `json:"name"`
	Rows     int       `json:"rows"`
	Cols     int       `json:"cols"`
	Defects  [][]int64 `json:"defects"`
	Matched  [][]int64 `json:"matched"`
	ChainLen []int64   `json:"chain_len"`
	Pairs    int64     `json:"pairs"`
	Boundary int64     `json:"boundary"`
}

// export renders the collector under a name.
func (c *Collector) export(name string) Export {
	return Export{
		Name:     name,
		Rows:     c.rows,
		Cols:     c.cols,
		Defects:  c.Defects(),
		Matched:  c.Matched(),
		ChainLen: c.ChainLengths(),
		Pairs:    c.pairs,
		Boundary: c.boundary,
	}
}

// Set is a collection of named collectors, one per lattice shape a sweep
// visits (a threshold sweep at d=3 and d=5 cannot share one grid). Lookup
// is by name; export is name-sorted, so the JSON is deterministic
// regardless of sweep order. Not concurrency-safe — sweeps run cells
// sequentially and merge shards between cells.
type Set struct {
	byName map[string]*Collector
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{byName: make(map[string]*Collector)} }

// GridName is the conventional collector name for a lattice shape, used by
// the machine layers so same-shape tiles share one grid.
func GridName(rows, cols int) string { return fmt.Sprintf("lat-%dx%d", rows, cols) }

// Collector returns the named collector, creating a rows×cols one on first
// use. Asking for an existing name with a different shape panics. Nil-safe:
// a nil set returns a nil collector (heatmaps off).
func (s *Set) Collector(name string, rows, cols int) *Collector {
	if s == nil {
		return nil
	}
	if c, ok := s.byName[name]; ok {
		if c.rows != rows || c.cols != cols {
			panic(fmt.Sprintf("heatmap: collector %q is %dx%d, requested %dx%d",
				name, c.rows, c.cols, rows, cols))
		}
		return c
	}
	c := New(rows, cols)
	s.byName[name] = c
	return c
}

// Lookup returns the collector registered under name without asserting a
// shape (nil when absent) — for readers that iterate Names.
func (s *Set) Lookup(name string) *Collector {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

// Names returns the registered names in sorted order.
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.byName))
	for name := range s.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered collectors.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byName)
}

// File is the JSON document WriteJSON emits.
type File struct {
	Schema string   `json:"schema"`
	Grids  []Export `json:"grids"`
}

// WriteJSON writes the whole set as one schema-versioned JSON document,
// grids name-sorted for byte-deterministic output.
func (s *Set) WriteJSON(w io.Writer) error {
	f := File{Schema: Schema}
	for _, name := range s.Names() {
		f.Grids = append(f.Grids, s.byName[name].export(name))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFile parses a WriteJSON document and checks its schema.
func ReadFile(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("heatmap: %w", err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("heatmap: schema %q, want %q", f.Schema, Schema)
	}
	return f, nil
}
