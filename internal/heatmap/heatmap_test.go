package heatmap

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestNilCollectorIsFreeAndSafe pins the off-path contract the decode hot
// loops rely on: every recording method on a nil *Collector is a no-op and
// allocates nothing. This is what keeps RunWith at its committed 8
// allocs/call and decoder-exact-match-10 within its alloc budget when
// -heatmap is not given.
func TestNilCollectorIsFreeAndSafe(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		c.Defect(1, 2)
		c.MatchedPair(0, 0, 3, 4, 7)
		c.MatchedBoundary(2, 2, 1)
		c.Merge(nil)
		if c.NewShard() != nil {
			t.Error("nil collector spawned a live shard")
		}
	})
	if allocs != 0 {
		t.Errorf("nil collector allocates %v per run, want 0", allocs)
	}
	if r, cc := c.Shape(); r != 0 || cc != 0 {
		t.Errorf("nil shape = %dx%d, want 0x0", r, cc)
	}
	if c.TotalDefects() != 0 || c.Pairs() != 0 || c.Boundary() != 0 {
		t.Error("nil collector reports non-zero totals")
	}
	if c.Defects() != nil || c.Matched() != nil || c.ChainLengths() != nil {
		t.Error("nil collector returns non-nil grids")
	}
}

func TestCollectorAccumulates(t *testing.T) {
	c := New(3, 4)
	c.Defect(0, 0)
	c.Defect(0, 0)
	c.Defect(2, 3)
	c.Defect(-1, 0) // out of range: ignored
	c.Defect(0, 4)
	c.MatchedPair(0, 0, 2, 3, 5)
	c.MatchedBoundary(1, 1, 2)
	c.MatchedBoundary(1, 1, MaxChainLen+10) // overflow bucket

	if got := c.TotalDefects(); got != 3 {
		t.Errorf("TotalDefects = %d, want 3", got)
	}
	d := c.Defects()
	if d[0][0] != 2 || d[2][3] != 1 {
		t.Errorf("defect grid = %v", d)
	}
	m := c.Matched()
	if m[0][0] != 1 || m[2][3] != 1 || m[1][1] != 2 {
		t.Errorf("matched grid = %v", m)
	}
	if c.Pairs() != 1 || c.Boundary() != 2 {
		t.Errorf("pairs=%d boundary=%d, want 1, 2", c.Pairs(), c.Boundary())
	}
	h := c.ChainLengths()
	if h[5] != 1 || h[2] != 1 || h[MaxChainLen+1] != 1 {
		t.Errorf("chain-length histogram = %v", h)
	}
}

// TestMergeOrderIndependent pins the determinism contract: per-trial shards
// merged in any order produce identical totals, so the exported heatmap is
// worker-count independent.
func TestMergeOrderIndependent(t *testing.T) {
	mkShards := func() []*Collector {
		shards := make([]*Collector, 8)
		for i := range shards {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			s := New(5, 5)
			for k := 0; k < 50; k++ {
				s.Defect(rng.Intn(5), rng.Intn(5))
				if k%3 == 0 {
					s.MatchedPair(rng.Intn(5), rng.Intn(5), rng.Intn(5), rng.Intn(5), rng.Intn(12))
				}
			}
			shards[i] = s
		}
		return shards
	}
	forward, reverse := New(5, 5), New(5, 5)
	a, b := mkShards(), mkShards()
	for i := 0; i < len(a); i++ {
		forward.Merge(a[i])
		reverse.Merge(b[len(b)-1-i])
	}
	var fw, rv bytes.Buffer
	sf, sr := NewSet(), NewSet()
	sf.Collector("x", 5, 5).Merge(forward)
	sr.Collector("x", 5, 5).Merge(reverse)
	if err := sf.WriteJSON(&fw); err != nil {
		t.Fatal(err)
	}
	if err := sr.WriteJSON(&rv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes(), rv.Bytes()) {
		t.Error("merge order changed the exported heatmap bytes")
	}
}

func TestMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched shapes did not panic")
		}
	}()
	New(3, 3).Merge(New(4, 4))
}

func TestSetDeterministicJSON(t *testing.T) {
	s := NewSet()
	// Register out of name order; export must be name-sorted.
	s.Collector("d=5", 9, 9).Defect(4, 4)
	s.Collector("d=3", 5, 5).Defect(2, 2)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema {
		t.Errorf("schema = %q", f.Schema)
	}
	if len(f.Grids) != 2 || f.Grids[0].Name != "d=3" || f.Grids[1].Name != "d=5" {
		t.Errorf("grids not name-sorted: %+v", f.Grids)
	}
	if f.Grids[1].Defects[4][4] != 1 {
		t.Error("round-tripped defect count lost")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "d=3" {
		t.Errorf("Names() = %v", got)
	}
}

func TestSetShapeConflictPanics(t *testing.T) {
	s := NewSet()
	s.Collector("a", 3, 3)
	defer func() {
		if recover() == nil {
			t.Error("reshaping a named collector did not panic")
		}
	}()
	s.Collector("a", 5, 5)
}

func TestNilSet(t *testing.T) {
	var s *Set
	if s.Collector("x", 3, 3) != nil {
		t.Error("nil set returned a live collector")
	}
	if s.Names() != nil || s.Len() != 0 {
		t.Error("nil set reports contents")
	}
}

func TestReadFileRejectsBadSchema(t *testing.T) {
	if _, err := ReadFile([]byte(`{"schema":"quest-heatmap/99","grids":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadFile([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestShardRoundTrip(t *testing.T) {
	parent := New(4, 4)
	shard := parent.NewShard()
	if r, c := shard.Shape(); r != 4 || c != 4 {
		t.Fatalf("shard shape %dx%d", r, c)
	}
	shard.Defect(1, 1)
	if parent.TotalDefects() != 0 {
		t.Error("shard recording leaked into parent")
	}
	parent.Merge(shard)
	if parent.TotalDefects() != 1 {
		t.Error("shard merge lost counts")
	}
}
