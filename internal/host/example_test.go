package host_test

import (
	"fmt"

	"quest/internal/host"
)

// ExampleCompileQASM runs the whole host pipeline on textual source.
func ExampleCompileQASM() {
	art, err := host.CompileQASM(`
		prep0 q0
		prep0 q1
		h q0
		t q0
		cnot q0, q1
		measz q0
		measz q1
	`, 2, host.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instructions:", len(art.Exe.Program))
	fmt.Println("T count:", art.TCount)
	fmt.Println("distillation bundled:", len(art.Exe.Caches) == 1)
	fmt.Println("schedule valid:", art.Schedule.Makespan >= art.Schedule.CriticalPath)
	// Output:
	// instructions: 7
	// T count: 1
	// distillation bundled: true
	// schedule valid: true
}
