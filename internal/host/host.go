// Package host models the classical host of the accelerator model (§2.2):
// the machine that takes a logical program, performs the compile-time work
// the control processor must never see — rotation synthesis (footnote 7),
// dependency scheduling, and bundling the deterministic loop bodies
// (distillation rounds) as cache sections — and emits the quantum executable
// the cryo-DRAM holds and the master controller consumes.
package host

import (
	"fmt"

	"quest/internal/compiler"
	"quest/internal/distill"
	"quest/internal/isa"
	"quest/internal/place"
	"quest/internal/qasm"
	"quest/internal/qexe"
	"quest/internal/sched"
)

// Options configures compilation.
type Options struct {
	// Schedule configures the ILP analysis; zero value uses defaults.
	Schedule sched.Config
	// BundleDistillation attaches the 15-to-1 round body as a cache section
	// when the program consumes magic states.
	BundleDistillation bool
	// DistillSlot is the cache slot for the bundled body.
	DistillSlot int
	// MachineTiles/PatchesPerTile, when both positive, run the placement
	// pass: logical qubits are clustered onto tiles so braids stay local,
	// and the executable's program section is emitted in placed coordinates.
	MachineTiles   int
	PatchesPerTile int
}

// DefaultOptions returns the standard pipeline configuration.
func DefaultOptions() Options {
	return Options{Schedule: sched.DefaultConfig(), BundleDistillation: true}
}

// Artifact is a compilation result: the executable plus the analyses the
// host's run-time system uses to provision the machine.
type Artifact struct {
	Exe      *qexe.Executable
	Schedule sched.Result
	// TCount is the magic-state demand of the program.
	TCount int
	// ILP is the achieved instruction-level parallelism — the quantity the
	// paper's bandwidth model parameterizes at 2-3 (§5.2).
	ILP float64
	// FactoriesSuggested provisions T-factories for the schedule: demand
	// per slot times the factory latency in slots.
	FactoriesSuggested int
	// Placement is the qubit→tile assignment when placement ran (nil
	// otherwise); Placement.CutCNOTs counts braids needing the cross-MCE
	// protocol.
	Placement *place.Assignment
}

// Compile runs the host pipeline over a logical program.
func Compile(p *compiler.Program, opts Options) (*Artifact, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	if opts.Schedule.Width == 0 {
		opts.Schedule = sched.DefaultConfig()
	}
	res, err := sched.Schedule(p, opts.Schedule)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	emitted := p
	var asg *place.Assignment
	if opts.MachineTiles > 0 && opts.PatchesPerTile > 0 {
		asg, err = place.Place(p, opts.MachineTiles, opts.PatchesPerTile)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
		emitted, err = asg.Remap(p)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
	}
	art := &Artifact{
		Exe:       qexe.FromProgram(emitted),
		Schedule:  res,
		TCount:    p.TCount(),
		ILP:       res.ILP,
		Placement: asg,
	}
	if art.TCount > 0 {
		if opts.BundleDistillation {
			art.Exe.AddCache(opts.DistillSlot, distill.RoundCircuit())
		}
		// Demand: T gates per slot; one factory emits one state per
		// round-circuit's worth of slots.
		demand := float64(art.TCount) / float64(maxInt(res.Makespan, 1))
		art.FactoriesSuggested = distill.FactoriesNeeded(demand, distill.RoundInstructionCount)
	}
	if err := art.Exe.Validate(); err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	return art, nil
}

// CompileQASM assembles and compiles textual source in one step.
func CompileQASM(src string, n int, opts Options) (*Artifact, error) {
	p, err := qasm.ParseString(src, n)
	if err != nil {
		return nil, err
	}
	return Compile(p, opts)
}

// Lint reports program hygiene issues the host should surface before
// offload: measuring an unprepared qubit, operating on a measured-out qubit
// without re-preparation, and unterminated qubits (never measured). These
// are warnings, not errors — the hardware executes them, the results are
// just unlikely to mean anything.
func Lint(p *compiler.Program) []string {
	if err := p.Validate(); err != nil {
		return []string{err.Error()}
	}
	var warnings []string
	const (
		stVirgin = iota
		stLive
		stDead
	)
	state := make([]int, p.NumLogical)
	for i, in := range p.Instrs {
		qs := []int{int(in.Target)}
		if in.Op == isa.LCNOT {
			qs = append(qs, int(in.Arg))
		}
		for _, q := range qs {
			switch in.Op {
			case isa.LPrep0, isa.LPrepPlus:
				state[q] = stLive
			case isa.LMeasZ, isa.LMeasX:
				switch state[q] {
				case stVirgin:
					warnings = append(warnings, fmt.Sprintf("instr %d: measuring q%d before any preparation", i, q))
				case stDead:
					warnings = append(warnings, fmt.Sprintf("instr %d: re-measuring q%d after measurement", i, q))
				}
				state[q] = stDead
			default:
				if state[q] == stDead {
					warnings = append(warnings, fmt.Sprintf("instr %d: %s on measured-out q%d", i, in.Op, q))
					state[q] = stLive // report once
				}
				if state[q] == stVirgin {
					state[q] = stLive // implicit |0>; common, not warned
				}
			}
		}
	}
	for q, s := range state {
		if s == stLive {
			warnings = append(warnings, fmt.Sprintf("q%d is never measured", q))
		}
	}
	return warnings
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
