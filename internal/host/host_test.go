package host

import (
	"bytes"
	"strings"
	"testing"

	"quest/internal/compiler"
	"quest/internal/core"
	"quest/internal/qexe"
	"quest/internal/sched"
)

func TestCompileBasics(t *testing.T) {
	p := compiler.NewProgram(3)
	p.Prep0(0).Prep0(1).H(0).T(1).CNOT(0, 1).MeasZ(0).MeasZ(1)
	art, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if art.TCount != 1 {
		t.Errorf("TCount = %d", art.TCount)
	}
	if art.ILP <= 0 {
		t.Errorf("ILP = %v", art.ILP)
	}
	if len(art.Exe.Caches) != 1 {
		t.Errorf("distillation not bundled: %d caches", len(art.Exe.Caches))
	}
	if art.FactoriesSuggested < 1 {
		t.Errorf("factories = %d", art.FactoriesSuggested)
	}
	if err := art.Schedule.Validate(p, sched.DefaultConfig()); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestCompileWithoutTGatesSkipsBundle(t *testing.T) {
	p := compiler.NewProgram(2)
	p.Prep0(0).H(0).MeasZ(0)
	art, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Exe.Caches) != 0 {
		t.Error("cache bundled without T gates")
	}
	if art.FactoriesSuggested != 0 {
		t.Errorf("factories suggested for T-free program: %d", art.FactoriesSuggested)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	bad := compiler.NewProgram(2)
	bad.Instrs = append(bad.Instrs, bad.Instrs...)
	bad.Instrs = append(bad.Instrs, compiler.NewProgram(2).Prep0(0).Instrs[0])
	bad.Instrs[0].Target = 9
	if _, err := Compile(bad, DefaultOptions()); err == nil {
		t.Error("invalid program compiled")
	}
}

func TestCompileQASMEndToEndOnMachine(t *testing.T) {
	src := `
prep0 q0
prep0 q1
x q0
cnot q0, q1
measz q0
measz q1
`
	art, err := CompileQASM(src, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Serialize through the wire format, as the real pipeline would.
	var buf bytes.Buffer
	if err := art.Exe.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	exe, err := qexe.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(core.DefaultMachineConfig())
	rep, err := m.RunExecutable(exe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != 6 {
		t.Fatalf("machine run: drained=%v retired=%d", rep.Drained, rep.LogicalRetired)
	}
	bits := map[int]int{}
	for _, r := range rep.Results {
		bits[r.Patch] = r.Bit
	}
	if bits[0] != 1 || bits[1] != 0 {
		t.Errorf("measured %v, want q0=1 q1=0", bits)
	}
}

func TestLintFindings(t *testing.T) {
	p := compiler.NewProgram(3)
	p.MeasZ(0) // measure before prep
	p.Prep0(1)
	p.MeasZ(1)
	p.X(1)     // op after measurement
	p.Prep0(2) // q2 never measured
	warnings := Lint(p)
	wantFrags := []string{
		"measuring q0 before any preparation",
		"LX on measured-out q1",
		"q2 is never measured",
	}
	for _, frag := range wantFrags {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing warning %q in %v", frag, warnings)
		}
	}
}

func TestLintCleanProgram(t *testing.T) {
	p := compiler.NewProgram(2)
	p.Prep0(0).Prep0(1).H(0).CNOT(0, 1).MeasZ(0).MeasZ(1)
	if w := Lint(p); len(w) != 0 {
		t.Errorf("clean program warned: %v", w)
	}
	// Re-preparation revives a measured qubit.
	p2 := compiler.NewProgram(1)
	p2.Prep0(0).MeasZ(0).Prep0(0).MeasZ(0)
	if w := Lint(p2); len(w) != 0 {
		t.Errorf("re-prepared qubit warned: %v", w)
	}
	// Double measurement warns.
	p3 := compiler.NewProgram(1)
	p3.Prep0(0).MeasZ(0).MeasZ(0)
	if w := Lint(p3); len(w) != 1 {
		t.Errorf("double measurement warnings: %v", w)
	}
}

func TestLintInvalidProgram(t *testing.T) {
	bad := compiler.NewProgram(1)
	bad.Instrs = append(bad.Instrs, compiler.NewProgram(2).H(1).Instrs[0])
	if w := Lint(bad); len(w) == 0 {
		t.Error("invalid program produced no findings")
	}
}

func TestCompileWithPlacement(t *testing.T) {
	// Qubits 0 and 3 braid: naive striping on a 2×2 machine splits them, so
	// placement must co-locate and the compiled executable must run.
	p := compiler.NewProgram(4)
	p.Prep0(0).Prep0(3).CNOT(0, 3).MeasZ(0).MeasZ(3)
	opts := DefaultOptions()
	opts.MachineTiles = 2
	opts.PatchesPerTile = 2
	art, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement == nil || art.Placement.CutCNOTs != 0 {
		t.Fatalf("placement = %+v", art.Placement)
	}
	cfg := core.DefaultMachineConfig()
	cfg.Tiles = 2
	cfg.PatchesPerTile = 2
	m := core.NewMachine(cfg)
	rep, err := m.RunExecutable(art.Exe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.LogicalRetired != 5 {
		t.Fatalf("placed executable: drained=%v retired=%d", rep.Drained, rep.LogicalRetired)
	}
	// Over-capacity placement surfaces an error.
	big := compiler.NewProgram(9)
	big.H(8)
	if _, err := Compile(big, opts); err == nil {
		t.Error("over-capacity placement compiled")
	}
}
