package isa_test

import (
	"fmt"

	"quest/internal/isa"
)

// ExampleVLIW builds one lock-step physical instruction word — the unit the
// microcode pipeline streams every sub-cycle.
func ExampleVLIW() {
	w := isa.NewVLIW(4)
	w.Set(0, isa.OpPrepPlus)
	w.SetPair(1, isa.OpCNOTControl, 2)
	w.SetPair(2, isa.OpCNOTTarget, 1)
	fmt.Println("valid:", w.Validate() == nil)
	for _, m := range w.MicroOps() {
		fmt.Println(m)
	}
	// Output:
	// valid: true
	// PREP+ q0
	// CNOTC q1,q2
	// CNOTT q2,q1
	// IDLE q3
}

// ExampleLogicalInstr_Encode shows the 2-byte wire format of the global bus.
func ExampleLogicalInstr_Encode() {
	in := isa.LogicalInstr{Op: isa.LCNOT, Target: 5, Arg: 9}
	wire := in.Encode()
	back, err := isa.DecodeLogical(wire)
	fmt.Printf("%s -> % x -> %s (err=%v)\n", in, wire, back, err)
	// Output:
	// LCNOT L5,L9 -> 91 49 -> LCNOT L5,L9 (err=<nil>)
}
