// Package isa defines the quantum instruction set architecture used by the
// QuEST control processor: physical micro-operations (µops) delivered to
// individual qubits, VLIW physical instruction words that address a whole
// tile in lock-step, and compact 2-byte logical instructions exchanged
// between the master controller and the MCEs.
//
// The encoding follows the paper's assumptions: physical µops carry a small
// opcode (4 bits) plus, in the conventional (RAM) organization, an address
// field of ceil(log2 N) bits for a tile of N qubits; logical instructions
// are fixed at two bytes, matching the ion-trap ISA of Balensiefer et al.
// that the paper adopts for its cache feasibility study.
package isa

import (
	"fmt"
	"math/bits"
)

// Opcode identifies a physical quantum operation applied to one qubit in one
// sub-cycle. The set covers the universal gates plus the syndrome-extraction
// helpers used by surface-code QECC cycles. Opcodes fit in 4 bits, the width
// the paper assumes when sizing microcode memories.
type Opcode uint8

const (
	// OpIdle leaves the qubit untouched for one sub-cycle. Surface-code
	// schedules pad with Idle so every qubit receives exactly one µop per
	// sub-cycle (the "no qubit remains idle" lock-step rule: idling is an
	// explicit instruction, not an absence of one).
	OpIdle Opcode = iota
	// OpPrep0 initializes the qubit to |0>.
	OpPrep0
	// OpPrep1 initializes the qubit to |1>.
	OpPrep1
	// OpPrepPlus initializes the qubit to |+> (Hadamard basis zero).
	OpPrepPlus
	// OpMeasZ measures the qubit in the Z basis, destroying superposition.
	OpMeasZ
	// OpMeasX measures the qubit in the X basis.
	OpMeasX
	// OpX applies the Pauli-X (bit flip) gate.
	OpX
	// OpY applies the Pauli-Y gate.
	OpY
	// OpZ applies the Pauli-Z (phase flip) gate.
	OpZ
	// OpH applies the Hadamard gate.
	OpH
	// OpS applies the phase gate S = diag(1, i).
	OpS
	// OpSDagger applies the inverse phase gate.
	OpSDagger
	// OpT applies the T gate (π/8 rotation). Non-Clifford: physically it is
	// realized via magic-state injection, but it appears as a primitive in
	// instruction streams and resource accounting.
	OpT
	// OpCNOTControl marks the qubit as the control of a CNOT whose target is
	// carried by the pairing convention of the schedule (see Pair field of
	// PhysInstr). The control/target split keeps µops single-qubit-addressed
	// as required by the switch-matrix execution model.
	OpCNOTControl
	// OpCNOTTarget marks the qubit as the target of a CNOT.
	OpCNOTTarget
	// OpCZ applies a symmetric controlled-Z with the paired qubit.
	OpCZ

	// NumOpcodes is the count of defined opcodes; it must stay ≤ 16 so that
	// opcodes fit the 4-bit field assumed throughout the microcode sizing.
	NumOpcodes = iota
)

// OpcodeBits is the width of the opcode field in a physical µop.
const OpcodeBits = 4

// LogicalInstrBytes is the fixed size of a logical instruction on the global
// bus (Balensiefer-style 2-byte encoding, §5.3 of the paper).
const LogicalInstrBytes = 2

var opcodeNames = [NumOpcodes]string{
	"IDLE", "PREP0", "PREP1", "PREP+", "MEASZ", "MEASX",
	"X", "Y", "Z", "H", "S", "SDG", "T", "CNOTC", "CNOTT", "CZ",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Valid reports whether the opcode is one of the defined operations.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// IsMeasurement reports whether the opcode destroys the qubit state and
// produces a classical bit that must be routed to the decoder pipeline.
func (op Opcode) IsMeasurement() bool { return op == OpMeasZ || op == OpMeasX }

// IsPrep reports whether the opcode initializes the qubit.
func (op Opcode) IsPrep() bool {
	return op == OpPrep0 || op == OpPrep1 || op == OpPrepPlus
}

// IsTwoQubit reports whether the opcode is half of a two-qubit gate and
// therefore requires a pair address.
func (op Opcode) IsTwoQubit() bool {
	return op == OpCNOTControl || op == OpCNOTTarget || op == OpCZ
}

// IsClifford reports whether the operation is in the Clifford group (and thus
// directly executable on the stabilizer substrate simulator).
func (op Opcode) IsClifford() bool { return op != OpT }

// MicroOp is a single physical micro-operation destined for one qubit in one
// sub-cycle. Qubit is the flat index within the MCE's tile; Pair is the flat
// index of the partner qubit for two-qubit opcodes (and ignored otherwise).
type MicroOp struct {
	Op    Opcode
	Qubit int
	Pair  int
}

// String renders the µop in assembly-like form.
func (m MicroOp) String() string {
	if m.Op.IsTwoQubit() {
		return fmt.Sprintf("%s q%d,q%d", m.Op, m.Qubit, m.Pair)
	}
	return fmt.Sprintf("%s q%d", m.Op, m.Qubit)
}

// AddrBits returns the number of address bits needed to name one of n qubits
// in the conventional (RAM) µop encoding. n must be positive.
func AddrBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// RAMOpBits returns the encoded size in bits of one µop under the
// conventional opcode+address organization for a tile of n qubits.
func RAMOpBits(n int) int { return OpcodeBits + AddrBits(n) }

// FIFOOpBits returns the encoded size in bits of one µop under the FIFO
// organization, where lock-step delivery makes the address implicit.
func FIFOOpBits() int { return OpcodeBits }

// VLIW is one physical instruction word: exactly one µop per qubit of a
// tile, executed in lock-step when the master clock fires. Index i holds the
// opcode for qubit i; Pairs[i] holds the partner for two-qubit opcodes.
type VLIW struct {
	Ops   []Opcode
	Pairs []int
}

// NewVLIW returns an all-Idle instruction word for a tile of n qubits.
func NewVLIW(n int) VLIW {
	v := VLIW{Ops: make([]Opcode, n), Pairs: make([]int, n)}
	for i := range v.Pairs {
		v.Pairs[i] = -1
	}
	return v
}

// Len returns the tile width of the word.
func (v VLIW) Len() int { return len(v.Ops) }

// Set assigns a single-qubit µop.
func (v VLIW) Set(qubit int, op Opcode) {
	v.Ops[qubit] = op
	v.Pairs[qubit] = -1
}

// SetPair assigns a two-qubit µop half with its partner index.
func (v VLIW) SetPair(qubit int, op Opcode, pair int) {
	v.Ops[qubit] = op
	v.Pairs[qubit] = pair
}

// Clone returns a deep copy of the word.
func (v VLIW) Clone() VLIW {
	c := VLIW{Ops: make([]Opcode, len(v.Ops)), Pairs: make([]int, len(v.Pairs))}
	copy(c.Ops, v.Ops)
	copy(c.Pairs, v.Pairs)
	return c
}

// Equal reports whether two words encode the identical lock-step operation,
// including two-qubit pairings.
func (v VLIW) Equal(o VLIW) bool {
	if len(v.Ops) != len(o.Ops) {
		return false
	}
	for i := range v.Ops {
		if v.Ops[i] != o.Ops[i] {
			return false
		}
		if v.Ops[i].IsTwoQubit() && v.Pairs[i] != o.Pairs[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: every opcode defined, every
// two-qubit op paired with a partner whose op is the matching half and whose
// Pair points back. It returns a descriptive error for the first violation.
func (v VLIW) Validate() error {
	if len(v.Ops) != len(v.Pairs) {
		return fmt.Errorf("isa: VLIW ops/pairs length mismatch %d != %d", len(v.Ops), len(v.Pairs))
	}
	for q, op := range v.Ops {
		if !op.Valid() {
			return fmt.Errorf("isa: qubit %d has undefined opcode %d", q, uint8(op))
		}
		if !op.IsTwoQubit() {
			continue
		}
		p := v.Pairs[q]
		if p < 0 || p >= len(v.Ops) {
			return fmt.Errorf("isa: qubit %d %s pair %d out of range", q, op, p)
		}
		if p == q {
			return fmt.Errorf("isa: qubit %d %s paired with itself", q, op)
		}
		if v.Pairs[p] != q {
			return fmt.Errorf("isa: qubit %d pairs with %d but %d pairs with %d", q, p, p, v.Pairs[p])
		}
		po := v.Ops[p]
		switch op {
		case OpCNOTControl:
			if po != OpCNOTTarget {
				return fmt.Errorf("isa: qubit %d CNOTC pairs with %s", q, po)
			}
		case OpCNOTTarget:
			if po != OpCNOTControl {
				return fmt.Errorf("isa: qubit %d CNOTT pairs with %s", q, po)
			}
		case OpCZ:
			if po != OpCZ {
				return fmt.Errorf("isa: qubit %d CZ pairs with %s", q, po)
			}
		}
	}
	return nil
}

// MicroOps expands the word into the per-qubit µop list (including explicit
// idles), the exact stream a microcode memory must deliver for one sub-cycle.
func (v VLIW) MicroOps() []MicroOp {
	out := make([]MicroOp, len(v.Ops))
	for q, op := range v.Ops {
		out[q] = MicroOp{Op: op, Qubit: q, Pair: v.Pairs[q]}
	}
	return out
}

// LogicalOpcode identifies a logical (encoded, fault-tolerant) instruction
// dispatched by the master controller to MCEs.
type LogicalOpcode uint8

const (
	// LPrep0 transversally prepares a logical qubit in |0>.
	LPrep0 LogicalOpcode = iota
	// LPrepPlus transversally prepares a logical qubit in |+>.
	LPrepPlus
	// LMeasZ transversally measures a logical qubit in Z.
	LMeasZ
	// LMeasX transversally measures a logical qubit in X.
	LMeasX
	// LX is the logical Pauli-X (a frame update plus transverse X chain).
	LX
	// LZ is the logical Pauli-Z.
	LZ
	// LH is the logical Hadamard.
	LH
	// LS is the logical phase gate.
	LS
	// LT is the logical T gate; consumes one magic state from a T-factory.
	LT
	// LCNOT is the logical CNOT, realized by braiding (a mask-instruction
	// sequence that moves a defect boundary around the partner's).
	LCNOT
	// LMaskGrow expands a logical qubit's masked boundary by one step along a
	// braid path.
	LMaskGrow
	// LMaskShrink contracts the masked boundary by one step.
	LMaskShrink
	// LMaskMove relocates a defect by one lattice step (grow+shrink fused).
	LMaskMove
	// LSyncToken is a master-controller synchronization token: it carries no
	// quantum semantics but sequences cache refills and cross-MCE operations.
	LSyncToken
	// LCacheLoad writes one entry of the MCE's software-managed logical
	// instruction cache (used to stage distillation loops).
	LCacheLoad
	// LCacheRun replays a cached loop body a given number of times.
	LCacheRun

	// NumLogicalOpcodes counts the defined logical opcodes.
	NumLogicalOpcodes = iota
)

var logicalNames = [NumLogicalOpcodes]string{
	"LPREP0", "LPREP+", "LMEASZ", "LMEASX", "LX", "LZ", "LH", "LS", "LT",
	"LCNOT", "LGROW", "LSHRINK", "LMOVE", "LSYNC", "LCLOAD", "LCRUN",
}

// String returns the mnemonic of the logical opcode.
func (op LogicalOpcode) String() string {
	if int(op) < len(logicalNames) {
		return logicalNames[op]
	}
	return fmt.Sprintf("LOP(%d)", uint8(op))
}

// Valid reports whether the logical opcode is defined.
func (op LogicalOpcode) Valid() bool { return int(op) < NumLogicalOpcodes }

// IsMask reports whether the instruction manipulates the QECC mask table
// rather than applying transverse physical operations.
func (op LogicalOpcode) IsMask() bool {
	switch op {
	case LCNOT, LMaskGrow, LMaskShrink, LMaskMove:
		return true
	}
	return false
}

// IsTransverse reports whether the instruction expands to the same physical
// µop applied across every physical qubit of the logical patch.
func (op LogicalOpcode) IsTransverse() bool {
	switch op {
	case LPrep0, LPrepPlus, LMeasZ, LMeasX, LX, LZ, LH, LS, LT:
		return true
	}
	return false
}

// LogicalInstr is one logical instruction. Target and Arg address logical
// qubits (or cache slots / repeat counts for the cache-management opcodes)
// within the receiving MCE's tile.
type LogicalInstr struct {
	Op     LogicalOpcode
	Target uint8
	Arg    uint8
}

// String renders the instruction in assembly-like form.
func (l LogicalInstr) String() string {
	switch l.Op {
	case LCNOT:
		return fmt.Sprintf("%s L%d,L%d", l.Op, l.Target, l.Arg)
	case LCacheLoad, LCacheRun:
		return fmt.Sprintf("%s slot%d,%d", l.Op, l.Target, l.Arg)
	case LSyncToken:
		return fmt.Sprintf("%s #%d", l.Op, uint16(l.Target)<<8|uint16(l.Arg))
	}
	return fmt.Sprintf("%s L%d", l.Op, l.Target)
}

// Encode packs the instruction into the fixed 2-byte wire format:
// byte 0 = opcode (high nibble) | target (low nibble is the high 4 bits of
// Target — see layout below), byte 1 = remaining target/arg bits.
//
// Layout: [4b opcode][6b target][6b arg].
func (l LogicalInstr) Encode() [LogicalInstrBytes]byte {
	v := uint16(l.Op)<<12 | uint16(l.Target&0x3f)<<6 | uint16(l.Arg&0x3f)
	return [LogicalInstrBytes]byte{byte(v >> 8), byte(v)}
}

// DecodeLogical unpacks a 2-byte wire word into a logical instruction. It
// returns an error for undefined opcodes so that corrupted packets are
// rejected at the MCE boundary instead of latching garbage µops.
func DecodeLogical(b [LogicalInstrBytes]byte) (LogicalInstr, error) {
	v := uint16(b[0])<<8 | uint16(b[1])
	op := LogicalOpcode(v >> 12)
	if !op.Valid() {
		return LogicalInstr{}, fmt.Errorf("isa: undefined logical opcode %d", op)
	}
	return LogicalInstr{Op: op, Target: uint8(v >> 6 & 0x3f), Arg: uint8(v & 0x3f)}, nil
}
