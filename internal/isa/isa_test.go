package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeFitsFourBits(t *testing.T) {
	if NumOpcodes > 1<<OpcodeBits {
		t.Fatalf("NumOpcodes = %d exceeds 4-bit opcode space", NumOpcodes)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op.Valid(); op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty mnemonic", op)
		}
	}
	if got := Opcode(200).String(); got != "OP(200)" {
		t.Errorf("invalid opcode string = %q", got)
	}
}

func TestOpcodePredicates(t *testing.T) {
	cases := []struct {
		op                      Opcode
		meas, prep, twoq, cliff bool
	}{
		{OpIdle, false, false, false, true},
		{OpPrep0, false, true, false, true},
		{OpPrep1, false, true, false, true},
		{OpPrepPlus, false, true, false, true},
		{OpMeasZ, true, false, false, true},
		{OpMeasX, true, false, false, true},
		{OpX, false, false, false, true},
		{OpH, false, false, false, true},
		{OpT, false, false, false, false},
		{OpCNOTControl, false, false, true, true},
		{OpCNOTTarget, false, false, true, true},
		{OpCZ, false, false, true, true},
	}
	for _, c := range cases {
		if c.op.IsMeasurement() != c.meas {
			t.Errorf("%s IsMeasurement = %v", c.op, !c.meas)
		}
		if c.op.IsPrep() != c.prep {
			t.Errorf("%s IsPrep = %v", c.op, !c.prep)
		}
		if c.op.IsTwoQubit() != c.twoq {
			t.Errorf("%s IsTwoQubit = %v", c.op, !c.twoq)
		}
		if c.op.IsClifford() != c.cliff {
			t.Errorf("%s IsClifford = %v", c.op, !c.cliff)
		}
	}
}

func TestAddrBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {25, 5}, {48, 6}, {120, 7}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := AddrBits(c.n); got != c.want {
			t.Errorf("AddrBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOpBitsOrdering(t *testing.T) {
	// RAM encoding must always be strictly wider than FIFO encoding: that
	// gap is the entire FIFO optimization.
	for n := 1; n <= 4096; n *= 2 {
		if RAMOpBits(n) <= FIFOOpBits() {
			t.Errorf("RAMOpBits(%d) = %d not > FIFOOpBits %d", n, RAMOpBits(n), FIFOOpBits())
		}
	}
	if FIFOOpBits() != OpcodeBits {
		t.Errorf("FIFOOpBits = %d, want %d", FIFOOpBits(), OpcodeBits)
	}
}

func TestVLIWSetAndValidate(t *testing.T) {
	v := NewVLIW(6)
	if err := v.Validate(); err != nil {
		t.Fatalf("fresh VLIW invalid: %v", err)
	}
	v.Set(0, OpH)
	v.SetPair(1, OpCNOTControl, 2)
	v.SetPair(2, OpCNOTTarget, 1)
	v.SetPair(4, OpCZ, 5)
	v.SetPair(5, OpCZ, 4)
	if err := v.Validate(); err != nil {
		t.Fatalf("valid VLIW rejected: %v", err)
	}
	ops := v.MicroOps()
	if len(ops) != 6 {
		t.Fatalf("MicroOps len = %d, want 6", len(ops))
	}
	if ops[3].Op != OpIdle {
		t.Errorf("unset qubit op = %s, want IDLE", ops[3].Op)
	}
	if ops[1].Pair != 2 || ops[2].Pair != 1 {
		t.Errorf("pair indices wrong: %v %v", ops[1], ops[2])
	}
}

func TestVLIWValidateRejections(t *testing.T) {
	mk := func(f func(v VLIW)) VLIW {
		v := NewVLIW(4)
		f(v)
		return v
	}
	bad := []struct {
		name string
		v    VLIW
	}{
		{"dangling control", mk(func(v VLIW) { v.SetPair(0, OpCNOTControl, 1) })},
		{"self pair", mk(func(v VLIW) { v.SetPair(0, OpCZ, 0) })},
		{"out of range pair", mk(func(v VLIW) { v.SetPair(0, OpCZ, 9) })},
		{"asymmetric pair", mk(func(v VLIW) {
			v.SetPair(0, OpCNOTControl, 1)
			v.SetPair(1, OpCNOTTarget, 2)
			v.SetPair(2, OpCNOTControl, 1)
		})},
		{"control-control", mk(func(v VLIW) {
			v.SetPair(0, OpCNOTControl, 1)
			v.SetPair(1, OpCNOTControl, 0)
		})},
		{"cz-cnot mix", mk(func(v VLIW) {
			v.SetPair(0, OpCZ, 1)
			v.SetPair(1, OpCNOTTarget, 0)
		})},
		{"undefined opcode", mk(func(v VLIW) { v.Ops[0] = Opcode(99) })},
	}
	for _, c := range bad {
		if err := c.v.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid word", c.name)
		}
	}
	lenMismatch := VLIW{Ops: make([]Opcode, 3), Pairs: make([]int, 2)}
	if err := lenMismatch.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestVLIWCloneIsDeep(t *testing.T) {
	v := NewVLIW(3)
	v.SetPair(0, OpCZ, 1)
	v.SetPair(1, OpCZ, 0)
	c := v.Clone()
	c.Set(0, OpX)
	c.Set(1, OpIdle)
	if v.Ops[0] != OpCZ || v.Pairs[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if !v.Equal(v.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestVLIWEqual(t *testing.T) {
	a := NewVLIW(4)
	b := NewVLIW(4)
	if !a.Equal(b) {
		t.Error("fresh words not equal")
	}
	a.Set(2, OpH)
	if a.Equal(b) {
		t.Error("differing words equal")
	}
	b.Set(2, OpH)
	if !a.Equal(b) {
		t.Error("matching words unequal")
	}
	// Pair differences only matter for two-qubit ops.
	a.Pairs[3] = 1
	if !a.Equal(b) {
		t.Error("idle pair index affected equality")
	}
	a.SetPair(0, OpCZ, 1)
	a.SetPair(1, OpCZ, 0)
	b.SetPair(0, OpCZ, 2)
	b.SetPair(2, OpCZ, 0)
	if a.Equal(b) {
		t.Error("different pairings equal")
	}
	if a.Equal(NewVLIW(5)) {
		t.Error("different widths equal")
	}
}

func TestLogicalEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, target, arg uint8) bool {
		l := LogicalInstr{
			Op:     LogicalOpcode(op % NumLogicalOpcodes),
			Target: target & 0x3f,
			Arg:    arg & 0x3f,
		}
		got, err := DecodeLogical(l.Encode())
		return err == nil && got == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeLogicalRejectsUndefined(t *testing.T) {
	for op := NumLogicalOpcodes; op < 16; op++ {
		w := [LogicalInstrBytes]byte{byte(op << 4), 0}
		if _, err := DecodeLogical(w); err == nil {
			t.Errorf("opcode %d: decode accepted undefined opcode", op)
		}
	}
}

func TestLogicalOpcodePartition(t *testing.T) {
	// Every logical opcode is mask, transverse, or control-plane — never two.
	controlPlane := map[LogicalOpcode]bool{
		LSyncToken: true, LCacheLoad: true, LCacheRun: true,
	}
	for op := LogicalOpcode(0); op.Valid(); op++ {
		n := 0
		if op.IsMask() {
			n++
		}
		if op.IsTransverse() {
			n++
		}
		if controlPlane[op] {
			n++
		}
		if n != 1 {
			t.Errorf("%s belongs to %d categories, want exactly 1", op, n)
		}
	}
}

func TestLogicalInstrStrings(t *testing.T) {
	cases := []struct {
		in   LogicalInstr
		want string
	}{
		{LogicalInstr{Op: LCNOT, Target: 1, Arg: 2}, "LCNOT L1,L2"},
		{LogicalInstr{Op: LT, Target: 3}, "LT L3"},
		{LogicalInstr{Op: LCacheLoad, Target: 4, Arg: 9}, "LCLOAD slot4,9"},
		{LogicalInstr{Op: LCacheRun, Target: 0, Arg: 25}, "LCRUN slot0,25"},
		{LogicalInstr{Op: LSyncToken, Target: 1, Arg: 1}, "LSYNC #257"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if LogicalOpcode(99).String() != "LOP(99)" {
		t.Error("invalid logical opcode mnemonic")
	}
}

func TestMicroOpString(t *testing.T) {
	if got := (MicroOp{Op: OpH, Qubit: 7}).String(); got != "H q7" {
		t.Errorf("MicroOp String = %q", got)
	}
	if got := (MicroOp{Op: OpCNOTControl, Qubit: 1, Pair: 4}).String(); got != "CNOTC q1,q4" {
		t.Errorf("two-qubit MicroOp String = %q", got)
	}
}

func TestRandomVLIWMicroOpsMatchWord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		v := NewVLIW(n)
		// Random single-qubit ops plus a few consistent pairs.
		for q := 0; q < n; q++ {
			op := Opcode(rng.Intn(NumOpcodes))
			if op.IsTwoQubit() {
				op = OpIdle
			}
			v.Set(q, op)
		}
		for p := 0; p+1 < n; p += 2 {
			if rng.Intn(2) == 0 {
				v.SetPair(p, OpCNOTControl, p+1)
				v.SetPair(p+1, OpCNOTTarget, p)
			}
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ops := v.MicroOps()
		for q, m := range ops {
			if m.Qubit != q || m.Op != v.Ops[q] {
				t.Fatalf("trial %d qubit %d: µop %v disagrees with word", trial, q, m)
			}
		}
	}
}
