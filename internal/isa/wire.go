package isa

import "fmt"

// This file defines the physical wire formats of the two microcode
// organizations: the conventional RAM encoding (opcode + qubit address,
// §4.4's baseline) and the FIFO encoding (packed 4-bit opcodes in lock-step
// order). The byte-sized physical instruction of §3.3 is the RAM encoding at
// tile widths ≤ 16 qubits; larger tiles widen the address field. These
// codecs materialize the streams the bandwidth meters count, and their
// round-trip tests pin the accounting to real bytes.

// EncodeFIFO packs a VLIW word's opcodes into 4-bit nibbles in qubit order —
// the address-free stream the FIFO and unit-cell microcodes emit. Two-qubit
// pairings are not carried: lock-step order plus the schedule's geometry
// reconstruct them, which is exactly why the encoding is legal (§4.5).
func EncodeFIFO(w VLIW) []byte {
	out := make([]byte, (len(w.Ops)+1)/2)
	for q, op := range w.Ops {
		if q%2 == 0 {
			out[q/2] = byte(op) << 4
		} else {
			out[q/2] |= byte(op)
		}
	}
	return out
}

// DecodeFIFO unpacks n opcodes from a FIFO stream. It rejects undefined
// opcodes and short buffers.
func DecodeFIFO(data []byte, n int) ([]Opcode, error) {
	if n < 0 {
		return nil, fmt.Errorf("isa: negative opcode count %d", n)
	}
	if len(data) < (n+1)/2 {
		return nil, fmt.Errorf("isa: FIFO stream truncated: %d bytes for %d ops", len(data), n)
	}
	out := make([]Opcode, n)
	for q := 0; q < n; q++ {
		var nib byte
		if q%2 == 0 {
			nib = data[q/2] >> 4
		} else {
			nib = data[q/2] & 0x0f
		}
		op := Opcode(nib)
		if !op.Valid() {
			return nil, fmt.Errorf("isa: undefined opcode %d at position %d", nib, q)
		}
		out[q] = op
	}
	return out, nil
}

// RAMWordBytes returns the byte size of one RAM-encoded µop for a tile of n
// qubits: 4 opcode bits + ceil(log2 n) address bits, rounded up to bytes.
// For n ≤ 16 this is the paper's byte-sized instruction.
func RAMWordBytes(n int) int {
	return (RAMOpBits(n) + 7) / 8
}

// EncodeRAM encodes one µop in the conventional organization for a tile of
// n qubits: big-endian, opcode in the top nibble.
func EncodeRAM(m MicroOp, n int) ([]byte, error) {
	if m.Qubit < 0 || m.Qubit >= n {
		return nil, fmt.Errorf("isa: qubit %d outside %d-qubit tile", m.Qubit, n)
	}
	if !m.Op.Valid() {
		return nil, fmt.Errorf("isa: undefined opcode %d", uint8(m.Op))
	}
	sz := RAMWordBytes(n)
	addrBits := AddrBits(n)
	v := uint64(m.Op)<<uint(addrBits) | uint64(m.Qubit)
	out := make([]byte, sz)
	for i := sz - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out, nil
}

// DecodeRAM decodes one RAM-encoded µop for a tile of n qubits.
func DecodeRAM(data []byte, n int) (MicroOp, error) {
	sz := RAMWordBytes(n)
	if len(data) < sz {
		return MicroOp{}, fmt.Errorf("isa: RAM word truncated: %d < %d bytes", len(data), sz)
	}
	var v uint64
	for i := 0; i < sz; i++ {
		v = v<<8 | uint64(data[i])
	}
	addrBits := AddrBits(n)
	op := Opcode(v >> uint(addrBits))
	q := int(v & (1<<uint(addrBits) - 1))
	if !op.Valid() {
		return MicroOp{}, fmt.Errorf("isa: undefined opcode %d", uint8(op))
	}
	if q >= n {
		return MicroOp{}, fmt.Errorf("isa: address %d outside %d-qubit tile", q, n)
	}
	return MicroOp{Op: op, Qubit: q, Pair: -1}, nil
}

// StreamBytes returns the wire cost of shipping one full QECC cycle of
// `depth` words over a tile of n qubits in each organization — the numbers
// behind the capacity/bandwidth figures.
func StreamBytes(n, depth int) (ram, fifo int) {
	return n * depth * RAMWordBytes(n), depth * ((n + 1) / 2)
}

// AddrMask returns the address mask for an n-qubit tile (diagnostics).
func AddrMask(n int) uint64 {
	return 1<<uint(AddrBits(n)) - 1
}
