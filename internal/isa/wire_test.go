package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		w := NewVLIW(n)
		for q := 0; q < n; q++ {
			op := Opcode(rng.Intn(NumOpcodes))
			if op.IsTwoQubit() {
				op = OpIdle
			}
			w.Set(q, op)
		}
		enc := EncodeFIFO(w)
		if len(enc) != (n+1)/2 {
			t.Fatalf("n=%d: encoded %d bytes", n, len(enc))
		}
		ops, err := DecodeFIFO(enc, n)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < n; q++ {
			if ops[q] != w.Ops[q] {
				t.Fatalf("n=%d q=%d: %s != %s", n, q, ops[q], w.Ops[q])
			}
		}
	}
}

func TestFIFODecodeErrors(t *testing.T) {
	if _, err := DecodeFIFO([]byte{0x00}, 5); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := DecodeFIFO([]byte{0xff}, 2); err != nil {
		// 0xf is OpCZ — valid. So this should pass.
		t.Errorf("valid nibble rejected: %v", err)
	}
	if _, err := DecodeFIFO(nil, -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRAMWordByteSizes(t *testing.T) {
	// The §3.3 byte-sized instruction: tiles up to 16 qubits fit one byte.
	if got := RAMWordBytes(16); got != 1 {
		t.Errorf("16-qubit RAM word = %d bytes, want 1", got)
	}
	if got := RAMWordBytes(25); got != 2 {
		t.Errorf("25-qubit RAM word = %d bytes, want 2", got)
	}
	if got := RAMWordBytes(4096); got != 2 {
		t.Errorf("4096-qubit RAM word = %d bytes, want 2", got)
	}
}

func TestRAMRoundTrip(t *testing.T) {
	f := func(opRaw, qRaw uint8, nRaw uint16) bool {
		n := 2 + int(nRaw)%5000
		op := Opcode(opRaw % NumOpcodes)
		q := int(qRaw) % n
		enc, err := EncodeRAM(MicroOp{Op: op, Qubit: q}, n)
		if err != nil {
			return false
		}
		got, err := DecodeRAM(enc, n)
		return err == nil && got.Op == op && got.Qubit == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRAMEncodeErrors(t *testing.T) {
	if _, err := EncodeRAM(MicroOp{Op: OpH, Qubit: 99}, 10); err == nil {
		t.Error("out-of-tile qubit accepted")
	}
	if _, err := EncodeRAM(MicroOp{Op: Opcode(99), Qubit: 0}, 10); err == nil {
		t.Error("bad opcode accepted")
	}
	if _, err := DecodeRAM([]byte{}, 10); err == nil {
		t.Error("empty decode accepted")
	}
	// Address beyond tile is rejected: n=10 → 4 addr bits; addr 12 invalid.
	bad := []byte{byte(OpH)<<4 | 12}
	if _, err := DecodeRAM(bad, 10); err == nil {
		t.Error("out-of-range address accepted")
	}
}

func TestStreamBytesMatchScalingLaws(t *testing.T) {
	// RAM:FIFO wire ratio for one cycle mirrors the capacity figures: at 16
	// qubits 2×, widening as the address field grows.
	ram16, fifo16 := StreamBytes(16, 9)
	if ram16 != 16*9 || fifo16 != 9*8 {
		t.Errorf("16-qubit stream = %d/%d", ram16, fifo16)
	}
	ram1k, fifo1k := StreamBytes(1024, 9)
	if float64(ram1k)/float64(fifo1k) < 3.9 {
		t.Errorf("1024-qubit RAM/FIFO wire ratio %.1f, want ≈4", float64(ram1k)/float64(fifo1k))
	}
	if AddrMask(16) != 0x0f || AddrMask(1024) != 0x3ff {
		t.Error("address masks wrong")
	}
}
