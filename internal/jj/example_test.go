package jj_test

import (
	"fmt"

	"quest/internal/jj"
)

// ExampleMemoryConfig shows the paper's 4 Kb microcode memory options and
// the bandwidth lever behind the unit-cell optimization: four 1 Kb banks
// deliver 6× the read throughput of one 4 Kb bank.
func ExampleMemoryConfig() {
	one := jj.OneChannel4Kb
	four := jj.FourChannel1Kb
	fmt.Println(one, "-> latency", one.ReadLatencyCycles(), "cycles")
	fmt.Println(four, "-> latency", four.ReadLatencyCycles(), "cycles")
	fmt.Printf("bandwidth ratio: %.0fx\n", four.ReadsPerCycle()/one.ReadsPerCycle())
	fmt.Printf("Table 2 anchor: %d JJs, %.1f µW\n", four.JJCount(), four.PowerMicroWatts())
	// Output:
	// 1 Channel = 4Kb x 1 -> latency 3 cycles
	// 4 Channel = 1Kb x 4 -> latency 2 cycles
	// bandwidth ratio: 6x
	// Table 2 anchor: 170048 JJs, 2.1 µW
}
