// Package jj models the Josephson-junction (JJ) superconducting logic
// technology the paper assumes for the 4K control processor: ultra-low-power
// Boolean gates (~1000× more efficient than CMOS at 10 GHz), extreme
// reliability (bit error rate ~1e-30), but very low integration density and
// expensive memory (§2.2, §4.5).
//
// The memory model is calibrated to the data points the paper publishes from
// Dorojevets et al.: a 4 Kb array costs ≈170,000 JJs over 1 cm² and ≈10 µW;
// a one-channel 4 Kb configuration has a 3-cycle read latency while a
// four-channel 1 Kb configuration reads in 2 cycles and delivers 6× the
// bandwidth; and the Table 2 operating points (JJ counts and power) for the
// four syndrome designs. Non-anchor configurations interpolate.
package jj

import (
	"fmt"
	"math"
)

// Technology constants quoted by the paper (§2.2, §4.5).
const (
	// PowerEfficiencyVsCMOS is the JJ:CMOS power advantage at 10 GHz.
	PowerEfficiencyVsCMOS = 1000.0
	// BitErrorRate is the demonstrated JJ logic error rate at 4K.
	BitErrorRate = 1e-30
	// ClockHz is the JJ logic clock.
	ClockHz = 10e9
	// DensityConservativeJJPerCm2 and DensityOptimisticJJPerCm2 bound the
	// fabrication density (10^6..10^8 JJs/cm²).
	DensityConservativeJJPerCm2 = 1e6
	DensityOptimisticJJPerCm2   = 1e8
	// MemoryDensityConservativeBitsPerCm2 is the ~4 Kb/cm² older-process
	// estimate; MemoryDensityOptimisticBitsPerCm2 the ~400 Kb/cm² projection.
	MemoryDensityConservativeBitsPerCm2 = 4 * 1024
	MemoryDensityOptimisticBitsPerCm2   = 400 * 1024
)

// MemoryConfig is a banked JJ microcode memory: Channels independent banks
// of BankBits each, every bank with its own read port.
type MemoryConfig struct {
	BankBits int
	Channels int
}

// Standard configurations evaluated in the paper for a fixed 4 Kb budget.
var (
	OneChannel4Kb   = MemoryConfig{BankBits: 4096, Channels: 1}
	TwoChannel2Kb   = MemoryConfig{BankBits: 2048, Channels: 2}
	FourChannel1Kb  = MemoryConfig{BankBits: 1024, Channels: 4}
	EightChannel512 = MemoryConfig{BankBits: 512, Channels: 8}
)

// Configs4Kb lists the fixed-budget configurations in channel order.
func Configs4Kb() []MemoryConfig {
	return []MemoryConfig{OneChannel4Kb, TwoChannel2Kb, FourChannel1Kb, EightChannel512}
}

// Validate checks the configuration is physically meaningful.
func (c MemoryConfig) Validate() error {
	if c.BankBits <= 0 {
		return fmt.Errorf("jj: non-positive bank capacity %d", c.BankBits)
	}
	if c.Channels <= 0 {
		return fmt.Errorf("jj: non-positive channel count %d", c.Channels)
	}
	return nil
}

// TotalBits returns the aggregate capacity.
func (c MemoryConfig) TotalBits() int { return c.BankBits * c.Channels }

// String renders the paper's "N Channel = size x N" notation.
func (c MemoryConfig) String() string {
	return fmt.Sprintf("%d Channel = %s x %d", c.Channels, bitsLabel(c.BankBits), c.Channels)
}

func bitsLabel(bits int) string {
	if bits >= 1024 && bits%1024 == 0 {
		return fmt.Sprintf("%dKb", bits/1024)
	}
	return fmt.Sprintf("%db", bits)
}

// ReadLatencyCycles returns the per-bank read latency in JJ clock cycles,
// calibrated to the paper's anchors (4 Kb → 3 cycles, 1 Kb → 2 cycles) and
// growing by one cycle per 4× capacity beyond.
func (c MemoryConfig) ReadLatencyCycles() int {
	switch {
	case c.BankBits <= 512:
		return 1
	case c.BankBits <= 2048:
		return 2
	case c.BankBits <= 8192:
		return 3
	default:
		// One extra cycle per additional 4× capacity.
		extra := int(math.Ceil(math.Log2(float64(c.BankBits)/8192) / 2))
		return 3 + extra
	}
}

// ReadsPerCycle returns the aggregate read throughput in accesses per JJ
// clock cycle: each channel completes one access per latency period. The
// paper's 6× bandwidth gain of 4×1Kb over 1×4Kb falls out of this model
// ((4/2)/(1/3) = 6).
func (c MemoryConfig) ReadsPerCycle() float64 {
	return float64(c.Channels) / float64(c.ReadLatencyCycles())
}

// BandwidthBitsPerSec returns the sustained read bandwidth for a given µop
// word width in bits.
func (c MemoryConfig) BandwidthBitsPerSec(wordBits int) float64 {
	return c.ReadsPerCycle() * float64(wordBits) * ClockHz
}

// anchor holds a measured (JJ count, power) pair from the paper.
type anchor struct {
	jjs   int
	power float64 // µW
}

// anchors are the exact Table 2 / footnote-6 operating points.
var anchors = map[MemoryConfig]anchor{
	OneChannel4Kb:   {jjs: 170000, power: 10.0}, // footnote 6 (peak-rate figure)
	TwoChannel2Kb:   {jjs: 168264, power: 1.1},
	FourChannel1Kb:  {jjs: 170048, power: 2.1},
	EightChannel512: {jjs: 163472, power: 5.6},
}

// JJCount returns the junction count of the configuration: the published
// figure for the paper's anchor points, otherwise a per-bit model (≈41 JJs
// per stored bit plus per-channel decoder overhead) consistent with them.
func (c MemoryConfig) JJCount() int {
	if a, ok := anchors[c]; ok {
		return a.jjs
	}
	const jjPerBit = 41.0
	const perChannelOverhead = 640.0
	return int(jjPerBit*float64(c.TotalBits()) + perChannelOverhead*float64(c.Channels))
}

// PowerMicroWatts returns the dissipation of the configuration when streamed
// continuously: published figures at anchor points, otherwise a model in
// which power scales with aggregate read rate (channel count over latency)
// plus a small static term per bank.
func (c MemoryConfig) PowerMicroWatts() float64 {
	if a, ok := anchors[c]; ok {
		return a.power
	}
	return 0.8*c.ReadsPerCycle() + 0.15*float64(c.Channels)
}

// AreaCm2 returns the die area at the conservative memory density.
func (c MemoryConfig) AreaCm2() float64 {
	return float64(c.TotalBits()) / MemoryDensityConservativeBitsPerCm2
}

// CMOSEquivalentPowerMicroWatts returns what the same function would burn in
// CMOS, per the paper's 1000× claim — used by ablation reporting.
func (c MemoryConfig) CMOSEquivalentPowerMicroWatts() float64 {
	return c.PowerMicroWatts() * PowerEfficiencyVsCMOS
}
