package jj

import (
	"testing"
	"testing/quick"
)

func TestAnchorLatencies(t *testing.T) {
	// Paper anchors: 1-channel 4Kb reads in 3 cycles; 4-channel 1Kb in 2.
	if got := OneChannel4Kb.ReadLatencyCycles(); got != 3 {
		t.Errorf("4Kb latency = %d, want 3", got)
	}
	if got := FourChannel1Kb.ReadLatencyCycles(); got != 2 {
		t.Errorf("1Kb latency = %d, want 2", got)
	}
}

func TestSixTimesBandwidthAnchor(t *testing.T) {
	// "For a four-channel 1Kb memory configuration ... bandwidth improves by
	// 6x" relative to one-channel 4Kb.
	ratio := FourChannel1Kb.ReadsPerCycle() / OneChannel4Kb.ReadsPerCycle()
	if ratio != 6 {
		t.Errorf("4x1Kb vs 1x4Kb bandwidth ratio = %v, want 6", ratio)
	}
}

func TestTable2Anchors(t *testing.T) {
	cases := []struct {
		cfg   MemoryConfig
		jjs   int
		power float64
	}{
		{FourChannel1Kb, 170048, 2.1},
		{TwoChannel2Kb, 168264, 1.1},
		{EightChannel512, 163472, 5.6},
	}
	for _, c := range cases {
		if got := c.cfg.JJCount(); got != c.jjs {
			t.Errorf("%v JJCount = %d, want %d", c.cfg, got, c.jjs)
		}
		if got := c.cfg.PowerMicroWatts(); got != c.power {
			t.Errorf("%v power = %v, want %v", c.cfg, got, c.power)
		}
	}
	// Footnote 6: 4Kb ≈ 170,000 JJs, ~10µW, 1 cm².
	if OneChannel4Kb.JJCount() != 170000 {
		t.Errorf("4Kb JJ count = %d", OneChannel4Kb.JJCount())
	}
	if got := OneChannel4Kb.AreaCm2(); got != 1.0 {
		t.Errorf("4Kb area = %v cm², want 1", got)
	}
}

func TestTotalBitsConserved(t *testing.T) {
	for _, c := range Configs4Kb() {
		if c.TotalBits() != 4096 {
			t.Errorf("%v total bits = %d, want 4096", c, c.TotalBits())
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	for _, c := range []MemoryConfig{{BankBits: 0, Channels: 1}, {BankBits: 64, Channels: 0}, {BankBits: -1, Channels: -1}} {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestStringNotation(t *testing.T) {
	cases := map[MemoryConfig]string{
		FourChannel1Kb:  "4 Channel = 1Kb x 4",
		TwoChannel2Kb:   "2 Channel = 2Kb x 2",
		EightChannel512: "8 Channel = 512b x 8",
	}
	for cfg, want := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestLatencyMonotoneInCapacity(t *testing.T) {
	f := func(a, b uint16) bool {
		ba, bb := int(a)+1, int(b)+1
		ca := MemoryConfig{BankBits: ba, Channels: 1}
		cb := MemoryConfig{BankBits: bb, Channels: 1}
		if ba <= bb {
			return ca.ReadLatencyCycles() <= cb.ReadLatencyCycles()
		}
		return ca.ReadLatencyCycles() >= cb.ReadLatencyCycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLargeCapacityLatencyGrows(t *testing.T) {
	big := MemoryConfig{BankBits: 1 << 20, Channels: 1}
	if big.ReadLatencyCycles() <= 3 {
		t.Errorf("1Mb latency = %d, want > 3", big.ReadLatencyCycles())
	}
}

func TestNonAnchorModelsArePlausible(t *testing.T) {
	c := MemoryConfig{BankBits: 256, Channels: 2}
	if c.JJCount() <= 0 {
		t.Error("non-anchor JJ count non-positive")
	}
	// ~41 JJs/bit: 512 bits ≈ 21k JJs + overhead.
	if c.JJCount() < 15000 || c.JJCount() > 40000 {
		t.Errorf("512-bit config JJ count %d implausible", c.JJCount())
	}
	if c.PowerMicroWatts() <= 0 {
		t.Error("non-anchor power non-positive")
	}
}

func TestBandwidthBitsPerSec(t *testing.T) {
	// 4ch 1Kb, 4-bit words: 2 reads/cycle × 4 bits × 10 GHz = 80 Gbit/s.
	got := FourChannel1Kb.BandwidthBitsPerSec(4)
	if got != 80e9 {
		t.Errorf("bandwidth = %v, want 8e10", got)
	}
}

func TestCMOSComparison(t *testing.T) {
	if got := TwoChannel2Kb.CMOSEquivalentPowerMicroWatts(); got != 1100 {
		t.Errorf("CMOS equivalent = %v, want 1100", got)
	}
}
