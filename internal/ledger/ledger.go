// Package ledger is the experiment run ledger: a streaming JSONL record of
// what a statistical experiment actually ran — full provenance up front,
// then one (optionally sampled) record per trial and one summary record per
// sweep cell, each carrying the exact seeds needed to replay it. The paper's
// figures are Monte-Carlo estimates; a figure nobody can re-derive from its
// seeds is a screenshot, not a result, so the ledger makes every cell of a
// sweep independently reproducible (`questbench` docs show the replay
// recipe).
//
// Determinism contract: records carry only quantities that are pure
// functions of trial-ordered outcomes (seeds, params, counts, intervals) —
// never wall-clock, worker count, or scheduling artifacts — and trial
// records are emitted in trial order from the engine's trial-indexed
// outcome store. The same run is therefore byte-identical for any -workers
// value (pinned by core's TestThresholdObservedLedgerDeterminism), the same
// invariant mc.Run guarantees for its Result and tracing guarantees for its
// exported event stream.
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// Schema identifies the JSONL layout; bump on incompatible change.
const Schema = "quest-ledger/1"

// Record kinds, carried in every line's "record" field.
const (
	KindHeader = "header"
	KindTrial  = "trial"
	KindCell   = "cell"
)

// Header is the first line of every ledger: schema plus the provenance
// needed to judge comparability and replay the run. It deliberately omits
// the worker count — parallelism must not change the ledger's bytes.
type Header struct {
	Record     string `json:"record"`
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Host       string `json:"host"`
	GitSHA     string `json:"git_sha"`
	// ShardIndex and ShardCount stamp a sharded sweep's ledger with which
	// shard produced it: shard ShardIndex of ShardCount owns the sweep cells
	// whose global index ≡ ShardIndex (mod ShardCount). Both are omitted for
	// single-process runs, so sharding never perturbs the unsharded
	// quest-ledger/1 layout, and tools/ledgermerge strips them when it
	// reconstructs the single-process ledger from a complete shard set.
	ShardIndex int               `json:"shard_index,omitempty"`
	ShardCount int               `json:"shard_count,omitempty"`
	Config     map[string]string `json:"config,omitempty"`
}

// ShardInfo names one shard of a Count-way sharded sweep. The zero value
// (and any Count < 2) means unsharded.
type ShardInfo struct {
	Index, Count int
}

// Sharded reports whether the info names a real shard (Count ≥ 2).
func (s ShardInfo) Sharded() bool { return s.Count >= 2 }

// String renders the flag/header syntax "i/N" ("" when unsharded).
func (s ShardInfo) String() string {
	if !s.Sharded() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShardSpec parses the -shard flag syntax "i/N" (shard i of N, with
// 0 ≤ i < N). "" and "0/1" both mean unsharded.
func ParseShardSpec(spec string) (ShardInfo, error) {
	if spec == "" {
		return ShardInfo{}, nil
	}
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return ShardInfo{}, fmt.Errorf("shard spec %q: want 'i/N' (e.g. 0/4)", spec)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return ShardInfo{}, fmt.Errorf("shard spec %q: want two integers 'i/N'", spec)
	}
	if n < 1 || i < 0 || i >= n {
		return ShardInfo{}, fmt.Errorf("shard spec %q: want 0 <= i < N", spec)
	}
	if n == 1 {
		return ShardInfo{}, nil
	}
	return ShardInfo{Index: i, Count: n}, nil
}

// Trial is one sampled trial record. Seed is the trial's full derived seed
// in hex — with the cell seed it is everything needed to replay the trial.
type Trial struct {
	Record string `json:"record"`
	Cell   string `json:"cell"`
	Trial  int    `json:"trial"`
	Seed   string `json:"seed"`
	Fail   bool   `json:"fail"`
	Err    string `json:"err,omitempty"`
}

// Cell summarizes one sweep cell after its trials drain. Budget is the
// requested trial count; Trials is what actually ran (fewer under -ci-stop).
type Cell struct {
	Record   string             `json:"record"`
	Cell     string             `json:"cell"`
	Params   map[string]float64 `json:"params,omitempty"`
	Seed     string             `json:"seed"`
	Budget   int                `json:"budget"`
	Trials   int                `json:"trials"`
	Failures int                `json:"failures"`
	Rate     float64            `json:"rate"`
	WilsonLo float64            `json:"wilson_lo"`
	WilsonHi float64            `json:"wilson_hi"`
	// CIStop is the requested Wilson-width stop target (0 = fixed budget);
	// StoppedEarly reports whether the cell converged before its budget.
	CIStop       float64 `json:"ci_stop,omitempty"`
	StoppedEarly bool    `json:"stopped_early,omitempty"`
	Err          string  `json:"err,omitempty"`
}

// SeedString renders a seed the way the ledger stores it.
func SeedString(seed uint64) string { return fmt.Sprintf("0x%016x", seed) }

// Writer streams ledger records as JSONL. Not concurrency-safe: the sweep
// drivers write from the sweep loop, after each cell's worker pool has
// drained.
type Writer struct {
	bw *bufio.Writer
	// SampleEvery keeps every n-th trial record (1 = all, 0 treated as 1);
	// cell and header records are never sampled away.
	sampleEvery int
	cells       int
	trials      int
	// err latches the first write failure for callers whose hook signature
	// cannot return one (the engine's void Sink); Err surfaces it.
	err error
}

// NewWriter writes the header line and returns a streaming writer.
// sampleEvery thins trial records (1 keeps every trial); config is the
// caller's flag/parameter provenance, copied into the header verbatim.
func NewWriter(w io.Writer, experiment string, config map[string]string, sampleEvery int) (*Writer, error) {
	return NewShardWriter(w, experiment, config, sampleEvery, ShardInfo{})
}

// NewShardWriter is NewWriter for one shard of a sharded sweep: the shard
// provenance lands in the header so the resulting ledger is self-describing
// and tools/ledgermerge can verify it merges a complete, consistent shard
// set. An unsharded info (Count < 2) writes the plain NewWriter header.
func NewShardWriter(w io.Writer, experiment string, config map[string]string, sampleEvery int, shard ShardInfo) (*Writer, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if !shard.Sharded() {
		shard = ShardInfo{}
	} else if shard.Index < 0 || shard.Index >= shard.Count {
		return nil, fmt.Errorf("ledger: shard index %d outside [0, %d)", shard.Index, shard.Count)
	}
	lw := &Writer{bw: bufio.NewWriter(w), sampleEvery: sampleEvery}
	host, _ := os.Hostname()
	h := Header{
		Record:     KindHeader,
		Schema:     Schema,
		Experiment: experiment,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       host,
		GitSHA:     gitSHA(),
		ShardIndex: shard.Index,
		ShardCount: shard.Count,
		Config:     config,
	}
	if err := lw.line(h); err != nil {
		return nil, err
	}
	return lw, nil
}

// WriteTrial emits a trial record, honoring the sampling stride (trial
// indices 0, n, 2n, ... are kept, so index 0 is always present).
func (w *Writer) WriteTrial(t Trial) error {
	if t.Trial%w.sampleEvery != 0 {
		return nil
	}
	t.Record = KindTrial
	w.trials++
	return w.line(t)
}

// WriteCell emits a cell summary record.
func (w *Writer) WriteCell(c Cell) error {
	c.Record = KindCell
	w.cells++
	return w.line(c)
}

// Cells and Trials report how many records of each kind were written.
func (w *Writer) Cells() int  { return w.cells }
func (w *Writer) Trials() int { return w.trials }

// Err returns the first write error this writer encountered, including
// errors from call sites that could not check the return value themselves
// (the engine's void Sink hook). A non-nil Err means the ledger is
// truncated and must not be trusted.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return w.latch(fmt.Errorf("ledger: %w", err))
	}
	return w.err
}

func (w *Writer) line(v any) error {
	// json.Marshal (not an Encoder per record) so a line is exactly one
	// record with no trailing spaces; map keys marshal sorted, keeping
	// params byte-deterministic.
	b, err := json.Marshal(v)
	if err != nil {
		return w.latch(fmt.Errorf("ledger: %w", err))
	}
	if _, err := w.bw.Write(b); err != nil {
		return w.latch(fmt.Errorf("ledger: %w", err))
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return w.latch(fmt.Errorf("ledger: %w", err))
	}
	return nil
}

// latch records the first failure and returns err unchanged.
func (w *Writer) latch(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}

// gitSHA extracts the vcs revision stamped into the binary, "unknown" when
// built without VCS metadata (go test, detached builds).
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}
