package ledger

import (
	"bytes"
	"strings"
	"testing"
)

// writeSample builds a small well-formed ledger: header, sampled trials for
// two cells, two cell summaries.
func writeSample(t *testing.T, sampleEvery int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "threshold", map[string]string{"trials": "6", "distances": "3"}, sampleEvery)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"p=1e-3,d=3", "p=5e-4,d=3"} {
		for trial := 0; trial < 6; trial++ {
			if err := w.WriteTrial(Trial{
				Cell: cell, Trial: trial, Seed: SeedString(uint64(trial) + 7),
				Fail: trial%3 == 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteCell(Cell{
			Cell:   cell,
			Params: map[string]float64{"p": 1e-3, "d": 3},
			Seed:   SeedString(0xabc), Budget: 6, Trials: 6, Failures: 2,
			Rate: 2.0 / 6.0, WilsonLo: 0.09, WilsonHi: 0.70,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterRoundTrip(t *testing.T) {
	data := writeSample(t, 1)
	rep, err := Validate(data)
	if err != nil {
		t.Fatalf("Validate: %v\n%s", err, data)
	}
	if rep.Experiment != "threshold" {
		t.Errorf("experiment = %q", rep.Experiment)
	}
	if rep.Cells != 2 || rep.Trials != 12 {
		t.Errorf("cells=%d trials=%d, want 2, 12", rep.Cells, rep.Trials)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	for _, want := range []string{`"record":"header"`, `"schema":"quest-ledger/1"`, `"gomaxprocs"`, `"git_sha"`, `"host"`} {
		if !strings.Contains(first, want) {
			t.Errorf("header line missing %s: %s", want, first)
		}
	}
}

func TestWriterSampling(t *testing.T) {
	data := writeSample(t, 3)
	rep, err := Validate(data)
	if err != nil {
		t.Fatal(err)
	}
	// Trials 0 and 3 of each cell survive a stride of 3.
	if rep.Trials != 4 {
		t.Errorf("sampled trial records = %d, want 4", rep.Trials)
	}
	if !strings.Contains(string(data), `"trial":0`) {
		t.Error("sampling dropped trial 0")
	}
	if strings.Contains(string(data), `"trial":1,`) {
		t.Error("sampling kept an off-stride trial")
	}
}

// TestWriterDeterministicBytes pins that two identical runs produce
// byte-identical ledgers — params maps included (encoding/json sorts keys).
func TestWriterDeterministicBytes(t *testing.T) {
	a, b := writeSample(t, 1), writeSample(t, 1)
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different ledger bytes")
	}
}

func TestValidateRejections(t *testing.T) {
	header := strings.SplitN(string(writeSample(t, 1)), "\n", 2)[0]
	cases := []struct {
		name, data, wantErr string
	}{
		{"empty", "", "empty"},
		{"no header", `{"record":"cell","cell":"x","seed":"0x1","budget":1,"trials":1}`, "first record"},
		{"bad schema", `{"record":"header","schema":"quest-ledger/99","experiment":"x"}`, "schema"},
		{"duplicate header", header + "\n" + header, "duplicate header"},
		{"unknown kind", header + "\n" + `{"record":"mystery"}`, "unknown record kind"},
		{"orphan trial", header + "\n" + `{"record":"trial","cell":"x","trial":0,"seed":"0x1"}`, "no cell summary"},
		{"bad seed", header + "\n" + `{"record":"trial","cell":"x","trial":0,"seed":"12"}` + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":1,"trials":1}`, "hex literal"},
		{"trial after summary", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":1,"trials":1}` + "\n" +
			`{"record":"trial","cell":"x","trial":0,"seed":"0x1"}`, "after its summary"},
		{"failures exceed trials", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":9,"trials":4,"failures":5,"rate":1.25,"wilson_hi":1.3}`, "failures"},
		{"trials exceed budget", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":3,"trials":4,"failures":0,"rate":0}`, "exceed budget"},
		{"rate mismatch", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":4,"trials":4,"failures":2,"rate":0.3,"wilson_lo":0.1,"wilson_hi":0.9}`, "rate"},
		{"rate outside wilson", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":4,"trials":4,"failures":2,"rate":0.5,"wilson_lo":0.6,"wilson_hi":0.9}`, "Wilson"},
		{"duplicate cell", header + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":1,"trials":1,"failures":0,"rate":0}` + "\n" +
			`{"record":"cell","cell":"x","seed":"0x1","budget":1,"trials":1,"failures":0,"rate":0}`, "duplicate cell"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Validate([]byte(c.data))
			if err == nil {
				t.Fatalf("accepted invalid ledger")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateCountsEarlyStops(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "sweep", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCell(Cell{
		Cell: "easy", Seed: SeedString(1), Budget: 100, Trials: 40, Failures: 0,
		Rate: 0, WilsonLo: 0, WilsonHi: 0.1, CIStop: 0.1, StoppedEarly: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCell(Cell{
		Cell: "hard", Seed: SeedString(2), Budget: 100, Trials: 100, Failures: 50,
		Rate: 0.5, WilsonLo: 0.4, WilsonHi: 0.6, CIStop: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoppedEarly != 1 {
		t.Errorf("StoppedEarly = %d, want 1", rep.StoppedEarly)
	}
	if w.Cells() != 2 || w.Trials() != 0 {
		t.Errorf("writer counts cells=%d trials=%d, want 2, 0", w.Cells(), w.Trials())
	}
}

// TestValidateDanglingCellsErrorDeterministic pins that the dangling-cell
// verdict names every unsummarized cell in sorted order. The pre-fix code
// reported whichever cell map iteration surfaced first, so the same broken
// ledger produced different error text run to run.
func TestValidateDanglingCellsErrorDeterministic(t *testing.T) {
	header := strings.SplitN(string(writeSample(t, 1)), "\n", 2)[0]
	data := header
	for _, cell := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		data += "\n" + `{"record":"trial","cell":"` + cell + `","trial":0,"seed":"0x1"}`
	}
	want := `trial records for cell(s) ["alpha" "beta" "mid" "omega" "zeta"] have no cell summary`
	for i := 0; i < 20; i++ {
		_, err := Validate([]byte(data))
		if err == nil {
			t.Fatal("accepted ledger with dangling trials")
		}
		if err.Error() != want {
			t.Fatalf("run %d: error %q, want %q", i, err, want)
		}
	}
}
