package ledger

// This file is the replication-log half of the ledger: a sharded sweep
// (questbench -shard i/N) produces N shard ledgers, each a complete
// quest-ledger/1 file covering the cells with global index ≡ i (mod N), and
// Merge deterministically re-interleaves them into bytes identical to the
// ledger a single process would have written. That byte identity is the
// process-count generalization of the worker-count independence the ledger
// has pinned since PR 4: records are pure functions of trial-ordered
// outcomes, cells are whole units assigned round-robin, so the only work
// left to the merge is reconciling headers and splicing cell blocks back
// into global sweep order. tools/ledgermerge drives this; CI's shard-smoke
// job cmp(1)s the result against a 1-process run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// ErrCorrupt marks shard bytes that cannot be parsed at all — garbled or
// truncated JSON, an unterminated line. tools/ledgermerge maps it to exit 2
// (the check could not run); every other parse or merge failure is a
// finding (exit 1): the input was readable, and what it said was wrong.
var ErrCorrupt = errors.New("corrupt ledger shard")

// CellBlock is one sweep cell's contiguous run of ledger lines: its trial
// records in trial order followed by its summary record, all verbatim so a
// merge is a pure re-interleaving with no re-marshaling drift.
type CellBlock struct {
	// Name is the cell name shared by every line of the block.
	Name string
	// Lines holds the raw JSONL lines without trailing newlines.
	Lines [][]byte
}

// ShardLedger is one parsed shard: its header plus its cell blocks in the
// order the shard emitted them (which is global sweep order restricted to
// the cells the shard owns).
type ShardLedger struct {
	Header Header
	// headerLine is the raw header line, kept for single-shard identity
	// merges.
	headerLine []byte
	Cells      []CellBlock
}

// ParseShard parses one shard ledger into header and cell blocks. JSON-level
// damage wraps ErrCorrupt; structural problems (missing or duplicate
// header, wrong schema, a trial record outside its cell's block, trial
// records with no cell summary) are plain errors — findings, in checker
// terms, because the bytes were readable.
func ParseShard(data []byte) (*ShardLedger, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ledger is empty")
	}
	sh := &ShardLedger{}
	var open *CellBlock // cell whose trial records are being accumulated
	sawHeader := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := append([]byte(nil), sc.Bytes()...)
		if len(bytes.TrimSpace(raw)) == 0 {
			return nil, fmt.Errorf("line %d: empty line", lineNo)
		}
		var kind struct {
			Record string `json:"record"`
			Cell   string `json:"cell"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, err)
		}
		if !sawHeader {
			if kind.Record != KindHeader {
				return nil, fmt.Errorf("line %d: first record is %q, want %q", lineNo, kind.Record, KindHeader)
			}
		}
		switch kind.Record {
		case KindHeader:
			if sawHeader {
				return nil, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			if err := json.Unmarshal(raw, &sh.Header); err != nil {
				return nil, fmt.Errorf("%w: line %d: header: %v", ErrCorrupt, lineNo, err)
			}
			if sh.Header.Schema != Schema {
				return nil, fmt.Errorf("line %d: schema %q, want %q", lineNo, sh.Header.Schema, Schema)
			}
			sh.headerLine = raw
			sawHeader = true
		case KindTrial:
			if kind.Cell == "" {
				return nil, fmt.Errorf("line %d: trial record missing cell name", lineNo)
			}
			if open == nil {
				sh.Cells = append(sh.Cells, CellBlock{Name: kind.Cell})
				open = &sh.Cells[len(sh.Cells)-1]
			} else if open.Name != kind.Cell {
				return nil, fmt.Errorf("line %d: trial for cell %q interleaved into cell %q's block", lineNo, kind.Cell, open.Name)
			}
			open.Lines = append(open.Lines, raw)
		case KindCell:
			if kind.Cell == "" {
				return nil, fmt.Errorf("line %d: cell record missing name", lineNo)
			}
			if open == nil {
				// A cell with zero sampled trial records: a block of its own.
				sh.Cells = append(sh.Cells, CellBlock{Name: kind.Cell, Lines: [][]byte{raw}})
			} else {
				if open.Name != kind.Cell {
					return nil, fmt.Errorf("line %d: summary for cell %q closes cell %q's block", lineNo, kind.Cell, open.Name)
				}
				open.Lines = append(open.Lines, raw)
				open = nil
			}
		default:
			return nil, fmt.Errorf("line %d: unknown record kind %q", lineNo, kind.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("ledger is empty")
	}
	if open != nil {
		return nil, fmt.Errorf("cell %q has trial records but no summary — an incomplete shard cannot merge (resume it first)", open.Name)
	}
	return sh, nil
}

// Merge re-interleaves a complete set of shard ledgers into the bytes the
// single-process sweep would have written: the reconciled header (shard
// provenance stripped) followed by every cell block in global sweep order.
// All failures are findings: an incomplete or duplicated shard set,
// disagreeing headers, a cell owned by two shards, or cell counts
// inconsistent with round-robin assignment.
func Merge(shards []*ShardLedger) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards to merge")
	}
	n := shards[0].Header.ShardCount
	if n < 2 {
		// A single unsharded ledger merges to itself.
		if len(shards) != 1 {
			return nil, fmt.Errorf("%d inputs but the first is unsharded (no shard_count header field)", len(shards))
		}
		return assemble(shards[0].headerLine, shards[0].Cells), nil
	}
	if len(shards) != n {
		return nil, fmt.Errorf("headers declare a %d-way shard set but %d shard(s) were given", n, len(shards))
	}
	byIndex := make([]*ShardLedger, n)
	for _, sh := range shards {
		h := sh.Header
		if h.ShardCount != n {
			return nil, fmt.Errorf("shard counts disagree: %d vs %d", h.ShardCount, n)
		}
		if h.ShardIndex < 0 || h.ShardIndex >= n {
			return nil, fmt.Errorf("shard index %d outside [0, %d)", h.ShardIndex, n)
		}
		if byIndex[h.ShardIndex] != nil {
			return nil, fmt.Errorf("two inputs both claim to be shard %d/%d", h.ShardIndex, n)
		}
		byIndex[h.ShardIndex] = sh
	}
	headerLine, err := reconcileHeaders(byIndex)
	if err != nil {
		return nil, err
	}
	if dups := duplicateCells(byIndex); len(dups) > 0 {
		return nil, fmt.Errorf("cell(s) %q appear in more than one shard — overlapping shard assignments cannot merge", dups)
	}
	// Round-robin reassembly: global cell k came from shard k mod n, so
	// shard i must carry exactly ceil((C-i)/n) of the C total cells —
	// anything else means the shards ran different sweeps.
	total := 0
	for _, sh := range byIndex {
		total += len(sh.Cells)
	}
	for i, sh := range byIndex {
		want := 0
		if total > i {
			want = (total - i + n - 1) / n
		}
		if len(sh.Cells) != want {
			return nil, fmt.Errorf("shard %d/%d carries %d cell(s), want %d of the %d-cell sweep — the shards did not run the same sweep",
				i, n, len(sh.Cells), want, total)
		}
	}
	merged := make([]CellBlock, 0, total)
	for k := 0; k < total; k++ {
		sh := byIndex[k%n]
		merged = append(merged, sh.Cells[k/n])
	}
	return assemble(headerLine, merged), nil
}

// reconcileHeaders checks every shard header is identical once its shard
// provenance is stripped, and returns the stripped header line — which is
// byte-identical to the single-process run's header because both are the
// same struct marshaled by the same encoder.
func reconcileHeaders(shards []*ShardLedger) ([]byte, error) {
	var first []byte
	for i, sh := range shards {
		h := sh.Header
		h.ShardIndex, h.ShardCount = 0, 0
		line, err := json.Marshal(h)
		if err != nil {
			return nil, fmt.Errorf("shard %d header: %v", i, err)
		}
		if first == nil {
			first = line
		} else if !bytes.Equal(first, line) {
			return nil, fmt.Errorf("shard headers disagree (beyond shard provenance): shard 0 %s vs shard %d %s", first, i, line)
		}
	}
	return first, nil
}

// duplicateCells returns the sorted cell names owned by more than one
// shard (or repeated within one).
func duplicateCells(shards []*ShardLedger) []string {
	seen := map[string]int{}
	for _, sh := range shards {
		for _, c := range sh.Cells {
			seen[c.Name]++
		}
	}
	var dups []string
	//quest:allow(detrange) dups is sorted below before anything reads it
	for name, count := range seen {
		if count > 1 {
			dups = append(dups, name)
		}
	}
	sort.Strings(dups)
	return dups
}

// assemble joins the header line and cell blocks back into JSONL bytes.
func assemble(headerLine []byte, cells []CellBlock) []byte {
	var buf bytes.Buffer
	buf.Write(headerLine)
	buf.WriteByte('\n')
	for _, c := range cells {
		for _, line := range c.Lines {
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}
