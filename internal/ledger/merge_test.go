package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fakeCell writes one synthetic but Validate-clean cell (trials trial
// records plus a summary) through w.
func fakeCell(t *testing.T, w *Writer, name string, trials int) {
	t.Helper()
	for i := 0; i < trials; i++ {
		if err := w.WriteTrial(Trial{
			Cell: name, Trial: i, Seed: SeedString(uint64(i)*97 + 13),
			Fail: i%4 == 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	fails := (trials + 3) / 4
	rate := 0.0
	if trials > 0 {
		rate = float64(fails) / float64(trials)
	}
	if err := w.WriteCell(Cell{
		Cell: name, Seed: SeedString(0xce11), Budget: trials, Trials: trials,
		Failures: fails, Rate: rate, WilsonLo: 0, WilsonHi: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

// shardSet builds the single-process ledger for cells named cell-0..cell-C-1
// (with per-cell trial counts) plus the n shard ledgers a -shard i/n run of
// the same sweep would write.
func shardSet(t *testing.T, n int, trialsPerCell []int) (full []byte, shards [][]byte) {
	t.Helper()
	cfg := map[string]string{"trials": "x"}
	var fullBuf bytes.Buffer
	fw, err := NewWriter(&fullBuf, "merge-test", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k, tr := range trialsPerCell {
		fakeCell(t, fw, fmt.Sprintf("cell-%d", k), tr)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		sw, err := NewShardWriter(&buf, "merge-test", cfg, 1, ShardInfo{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		for k, tr := range trialsPerCell {
			if k%n == i {
				fakeCell(t, sw, fmt.Sprintf("cell-%d", k), tr)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, buf.Bytes())
	}
	return fullBuf.Bytes(), shards
}

func parseAll(t *testing.T, shards [][]byte) []*ShardLedger {
	t.Helper()
	out := make([]*ShardLedger, len(shards))
	for i, data := range shards {
		sh, err := ParseShard(data)
		if err != nil {
			t.Fatalf("ParseShard(shard %d): %v", i, err)
		}
		out[i] = sh
	}
	return out
}

// TestMergeByteIdentical pins the tool's whole contract at the library
// level: for 1-, 2- and 3-way shard sets — including ragged cell counts and
// a shard that owns zero cells — Merge reproduces the single-process bytes.
func TestMergeByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		trials []int
	}{
		{"two-way even", 2, []int{3, 2, 5, 1}},
		{"two-way ragged", 2, []int{3, 2, 5}},
		{"three-way ragged", 3, []int{2, 4, 1, 3, 2}},
		{"empty shard", 2, []int{4}}, // shard 1 owns no cells: header only
		{"three-way single cell", 3, []int{6}},
		{"zero-trial cell", 2, []int{0, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, shardBytes := shardSet(t, tc.n, tc.trials)
			merged, err := Merge(parseAll(t, shardBytes))
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if !bytes.Equal(merged, full) {
				t.Errorf("merged bytes differ from the single-process ledger:\nmerged:\n%s\nwant:\n%s", merged, full)
			}
			if _, err := Validate(merged); err != nil {
				t.Errorf("merged ledger fails Validate: %v", err)
			}
		})
	}
}

// TestMergeSingleUnshardedIdentity pins that one unsharded ledger merges to
// itself byte for byte, so scripts can run ledgermerge unconditionally.
func TestMergeSingleUnshardedIdentity(t *testing.T) {
	full, _ := shardSet(t, 1, []int{2, 3})
	sh, err := ParseShard(full)
	if err != nil {
		t.Fatalf("ParseShard: %v", err)
	}
	merged, err := Merge([]*ShardLedger{sh})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !bytes.Equal(merged, full) {
		t.Errorf("identity merge changed bytes")
	}
}

// TestMergeFindings pins that semantically wrong shard sets are reported as
// plain errors (findings, exit 1 in ledgermerge), never ErrCorrupt.
func TestMergeFindings(t *testing.T) {
	_, shards2 := shardSet(t, 2, []int{3, 2, 5})
	_, shards3 := shardSet(t, 3, []int{2, 4, 1})
	cases := []struct {
		name string
		in   [][]byte
		want string
	}{
		{"missing shard", shards2[:1], "2-way shard set but 1"},
		{"duplicate shard index", [][]byte{shards2[0], shards2[0]}, "both claim to be shard 0/2"},
		{"mixed shard counts", [][]byte{shards2[0], shards3[1]}, "shard counts disagree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Merge(parseAll(t, tc.in))
			if err == nil {
				t.Fatal("Merge accepted a bad shard set")
			}
			if errors.Is(err, ErrCorrupt) {
				t.Errorf("finding misclassified as ErrCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMergeOverlappingCellsIsFinding pins the duplicate-cell case by name:
// two shards both carrying cell-0 is a finding with the cell named, not a
// crash and not corruption.
func TestMergeOverlappingCellsIsFinding(t *testing.T) {
	_, shards := shardSet(t, 2, []int{3, 2})
	// Rebuild shard 1 so it (wrongly) carries cell-0, which shard 0 owns.
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, "merge-test", map[string]string{"trials": "x"}, 1, ShardInfo{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	fakeCell(t, sw, "cell-0", 3)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(parseAll(t, [][]byte{shards[0], buf.Bytes()}))
	if err == nil {
		t.Fatal("Merge accepted overlapping shard assignments")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Errorf("overlap misclassified as ErrCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "cell-0") {
		t.Errorf("error %q does not name the duplicated cell", err)
	}
}

// TestMergeHeaderDisagreement pins that shards from different runs (any
// header field beyond shard provenance differing) refuse to merge.
func TestMergeHeaderDisagreement(t *testing.T) {
	_, shards := shardSet(t, 2, []int{2, 2})
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, "merge-test", map[string]string{"trials": "DIFFERENT"}, 1, ShardInfo{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	fakeCell(t, sw, "cell-1", 2)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(parseAll(t, [][]byte{shards[0], buf.Bytes()}))
	if err == nil || !strings.Contains(err.Error(), "headers disagree") {
		t.Fatalf("Merge = %v, want a header-disagreement finding", err)
	}
}

// TestParseShardCorruptVsFinding pins the exit-code split ParseShard feeds
// ledgermerge: unparseable bytes wrap ErrCorrupt (exit 2), while readable
// but structurally wrong ledgers are plain findings (exit 1).
func TestParseShardCorruptVsFinding(t *testing.T) {
	full, _ := shardSet(t, 1, []int{2})
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))

	t.Run("garbled line is ErrCorrupt", func(t *testing.T) {
		bad := append(append([]byte{}, full...), []byte("{torn")...)
		_, err := ParseShard(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ParseShard = %v, want ErrCorrupt", err)
		}
	})
	t.Run("dangling cell is a finding", func(t *testing.T) {
		// Header + trial records but no summary: readable, incomplete.
		partial := bytes.Join(lines[:2], []byte("\n"))
		_, err := ParseShard(append(partial, '\n'))
		if err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("ParseShard = %v, want a plain incomplete-shard finding", err)
		}
		if !strings.Contains(err.Error(), "resume") {
			t.Errorf("error %q should point at -resume for incomplete shards", err)
		}
	})
	t.Run("wrong schema is a finding", func(t *testing.T) {
		bad := bytes.Replace(full, []byte(Schema), []byte("quest-ledger/99"), 1)
		_, err := ParseShard(bad)
		if err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("ParseShard = %v, want a plain schema finding", err)
		}
	})
	t.Run("empty input is a finding", func(t *testing.T) {
		if _, err := ParseShard(nil); err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("ParseShard(nil) = %v, want a plain finding", err)
		}
	})
}

// TestShardHeaderLayoutCompatible pins the schema compatibility promise: an
// unsharded header carries no shard fields at all (omitempty), and a shard
// header round-trips its provenance.
func TestShardHeaderLayoutCompatible(t *testing.T) {
	full, shards := shardSet(t, 2, []int{1, 1})
	if head := bytes.SplitN(full, []byte("\n"), 2)[0]; bytes.Contains(head, []byte("shard_")) {
		t.Errorf("unsharded header mentions shard fields: %s", head)
	}
	sh, err := ParseShard(shards[1])
	if err != nil {
		t.Fatal(err)
	}
	if sh.Header.ShardIndex != 1 || sh.Header.ShardCount != 2 {
		t.Errorf("shard header = %d/%d, want 1/2", sh.Header.ShardIndex, sh.Header.ShardCount)
	}
}
