package ledger

// This file is the checkpoint half of the replication log: because every
// ledger record is a pure function of (seed, config, trial order), a
// partial ledger left behind by a crashed or interrupted sweep is a valid
// checkpoint of it. Resume parses such a file — tolerating the torn final
// line a crash mid-write leaves — into completed cells (replayed verbatim,
// zero trials re-executed) and a partially-recorded cell's leading trial
// outcomes (fed to the engine as mc.Observers.Prior). A resumed run's
// ledger therefore converges to the exact bytes of the uninterrupted run:
// skipping work never changes what the work would have produced.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// CompletedCell is one fully-recorded cell of a partial ledger: its trial
// records in trial order plus its summary.
type CompletedCell struct {
	Summary Cell
	Trials  []Trial
}

// Resume is a parsed partial ledger, consumed cell by cell as the resumed
// sweep re-reaches each cell (core.SweepObs.Resume drives it).
type Resume struct {
	header Header
	// complete and partial are keyed by cell name. At most one cell can be
	// partial per crashed process (the writer is sequential), but the map
	// keeps Take symmetric and catches malformed inputs.
	complete map[string]*CompletedCell
	partial  map[string][]Trial
	consumed map[string]bool
	// truncated reports whether a torn final line was dropped.
	truncated bool
}

// NewResume parses a partial run ledger. Requirements beyond Validate's —
// and relaxations of them: the header must parse (a file torn inside line 1
// is no checkpoint at all); trial records must be unsampled and in order
// (indices 0,1,2,... within each cell), since replay is verbatim; a cell
// summary must agree with its trial-record count; dangling trial records
// (the crash cell) are accepted rather than rejected; and a final line that
// fails to parse is dropped as write-tear, anywhere else it is an error.
func NewResume(data []byte) (*Resume, error) {
	r := &Resume{
		complete: map[string]*CompletedCell{},
		partial:  map[string][]Trial{},
		consumed: map[string]bool{},
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resume ledger: %w", err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("resume ledger: file is empty")
	}
	var openCell string
	var openTrials []Trial
	closeOpen := func() {
		if openCell != "" {
			r.partial[openCell] = openTrials
			openCell, openTrials = "", nil
		}
	}
	for i, raw := range lines {
		last := i == len(lines)-1
		var kind struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			if last && i > 0 {
				r.truncated = true // torn final line from a crash mid-write
				break
			}
			return nil, fmt.Errorf("resume ledger: line %d: %w", i+1, err)
		}
		if i == 0 {
			if kind.Record != KindHeader {
				return nil, fmt.Errorf("resume ledger: first record is %q, want %q", kind.Record, KindHeader)
			}
			if err := json.Unmarshal(raw, &r.header); err != nil {
				return nil, fmt.Errorf("resume ledger: header: %w", err)
			}
			if r.header.Schema != Schema {
				return nil, fmt.Errorf("resume ledger: schema %q, want %q", r.header.Schema, Schema)
			}
			continue
		}
		switch kind.Record {
		case KindHeader:
			return nil, fmt.Errorf("resume ledger: line %d: duplicate header", i+1)
		case KindTrial:
			var t Trial
			if err := json.Unmarshal(raw, &t); err != nil {
				if last {
					r.truncated = true
					break
				}
				return nil, fmt.Errorf("resume ledger: line %d: trial: %w", i+1, err)
			}
			if t.Cell == "" {
				return nil, fmt.Errorf("resume ledger: line %d: trial record missing cell name", i+1)
			}
			if t.Cell != openCell {
				closeOpen()
				if _, dup := r.complete[t.Cell]; dup {
					return nil, fmt.Errorf("resume ledger: line %d: trial for cell %q after its summary", i+1, t.Cell)
				}
				if _, dup := r.partial[t.Cell]; dup {
					return nil, fmt.Errorf("resume ledger: line %d: cell %q recorded twice", i+1, t.Cell)
				}
				openCell = t.Cell
			}
			if t.Trial != len(openTrials) {
				return nil, fmt.Errorf("resume ledger: line %d: cell %q trial index %d, want %d — resume needs an unsampled, in-order ledger",
					i+1, t.Cell, t.Trial, len(openTrials))
			}
			openTrials = append(openTrials, t)
		case KindCell:
			var c Cell
			if err := json.Unmarshal(raw, &c); err != nil {
				if last {
					r.truncated = true
					break
				}
				return nil, fmt.Errorf("resume ledger: line %d: cell: %w", i+1, err)
			}
			if c.Cell == "" {
				return nil, fmt.Errorf("resume ledger: line %d: cell record missing name", i+1)
			}
			trials := openTrials
			if c.Cell != openCell {
				closeOpen()
				trials = nil
			}
			openCell, openTrials = "", nil
			if _, dup := r.complete[c.Cell]; dup {
				return nil, fmt.Errorf("resume ledger: line %d: duplicate cell summary %q", i+1, c.Cell)
			}
			if _, dup := r.partial[c.Cell]; dup {
				return nil, fmt.Errorf("resume ledger: line %d: cell %q recorded twice", i+1, c.Cell)
			}
			if len(trials) != c.Trials {
				return nil, fmt.Errorf("resume ledger: line %d: cell %q has %d trial record(s) but summarizes %d — resume needs an unsampled ledger",
					i+1, c.Cell, len(trials), c.Trials)
			}
			r.complete[c.Cell] = &CompletedCell{Summary: c, Trials: trials}
		default:
			if last {
				r.truncated = true
				break
			}
			return nil, fmt.Errorf("resume ledger: line %d: unknown record kind %q", i+1, kind.Record)
		}
	}
	closeOpen()
	return r, nil
}

// Header returns the partial ledger's provenance header, so callers can
// refuse to resume under a different experiment, config, or shard.
func (r *Resume) Header() Header { return r.header }

// Truncated reports whether a torn final line was dropped during parsing.
func (r *Resume) Truncated() bool { return r.truncated }

// Counts returns how many completed cells and how many partially-recorded
// cells the checkpoint holds.
func (r *Resume) Counts() (complete, partial int) {
	return len(r.complete), len(r.partial)
}

// Take claims the recorded state of one cell as the resumed sweep reaches
// it: a fully-recorded cell (replay verbatim, skip execution), the leading
// trials of a partially-recorded cell (replay as prior outcomes), or
// neither (run normally). Claiming the same cell twice is an error — the
// sweep and the checkpoint disagree about what a cell is, and splicing
// records into two different cells would corrupt both.
func (r *Resume) Take(name string) (*CompletedCell, []Trial, error) {
	if r.consumed[name] {
		return nil, nil, fmt.Errorf("resume ledger: cell %q claimed twice — overlapping sweep cells cannot replay", name)
	}
	r.consumed[name] = true
	if cc, ok := r.complete[name]; ok {
		return cc, nil, nil
	}
	return nil, r.partial[name], nil
}

// Unconsumed returns the sorted recorded cells no sweep cell ever claimed —
// non-empty after a run means the checkpoint came from a different
// invocation (other experiments, other parameters) and its leftover records
// were not carried into the new ledger.
func (r *Resume) Unconsumed() []string {
	var left []string
	//quest:allow(detrange) left is sorted below before anything reads it
	for name := range r.complete {
		if !r.consumed[name] {
			left = append(left, name)
		}
	}
	//quest:allow(detrange) left is sorted below before anything reads it
	for name := range r.partial {
		if !r.consumed[name] {
			left = append(left, name)
		}
	}
	sort.Strings(left)
	return left
}
