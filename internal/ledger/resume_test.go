package ledger

import (
	"bytes"
	"strings"
	"testing"
)

// resumeFixture builds a well-formed unsampled ledger with three cells of 3
// trials each and returns its lines (no trailing empty element).
func resumeFixture(t *testing.T) [][]byte {
	t.Helper()
	full, _ := shardSet(t, 1, []int{3, 3, 3})
	return bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
}

func joinLines(lines [][]byte) []byte {
	return append(bytes.Join(lines, []byte("\n")), '\n')
}

// TestResumeFullLedger pins that a complete ledger parses into all-complete
// cells, each replayable exactly once.
func TestResumeFullLedger(t *testing.T) {
	lines := resumeFixture(t)
	r, err := NewResume(joinLines(lines))
	if err != nil {
		t.Fatalf("NewResume: %v", err)
	}
	if c, p := r.Counts(); c != 3 || p != 0 {
		t.Fatalf("Counts = (%d, %d), want (3, 0)", c, p)
	}
	if r.Truncated() {
		t.Error("complete ledger reported a torn final line")
	}
	cc, partial, err := r.Take("cell-1")
	if err != nil || cc == nil || partial != nil {
		t.Fatalf("Take(cell-1) = (%v, %v, %v), want a completed cell", cc, partial, err)
	}
	if cc.Summary.Trials != 3 || len(cc.Trials) != 3 {
		t.Errorf("cell-1 carries %d trials, summary says %d, want 3/3", len(cc.Trials), cc.Summary.Trials)
	}
	if _, _, err := r.Take("cell-1"); err == nil {
		t.Error("double Take of the same cell did not error")
	}
	if left := r.Unconsumed(); len(left) != 2 || left[0] != "cell-0" || left[1] != "cell-2" {
		t.Errorf("Unconsumed = %q, want [cell-0 cell-2]", left)
	}
}

// TestResumePartialCell pins the crash-mid-cell case: a ledger cut after
// some of a cell's trial records yields that cell as partial, with exactly
// the recorded leading trials.
func TestResumePartialCell(t *testing.T) {
	lines := resumeFixture(t)
	// Lines: header, then 4 lines per cell (3 trials + summary). Cut after
	// cell-1's second trial record: 1 + 4 + 2 = 7 lines.
	r, err := NewResume(joinLines(lines[:7]))
	if err != nil {
		t.Fatalf("NewResume: %v", err)
	}
	if c, p := r.Counts(); c != 1 || p != 1 {
		t.Fatalf("Counts = (%d, %d), want (1, 1)", c, p)
	}
	cc, partial, err := r.Take("cell-1")
	if err != nil || cc != nil {
		t.Fatalf("Take(cell-1) = (%v, _, %v), want partial trials only", cc, err)
	}
	if len(partial) != 2 || partial[0].Trial != 0 || partial[1].Trial != 1 {
		t.Errorf("partial trials = %+v, want indices 0,1", partial)
	}
	// An unrecorded cell yields neither: run it from scratch.
	cc, partial, err = r.Take("cell-2")
	if err != nil || cc != nil || partial != nil {
		t.Errorf("Take(cell-2) = (%v, %v, %v), want (nil, nil, nil)", cc, partial, err)
	}
}

// TestResumeTornFinalLine pins crash-tolerance: a garbled last line (the
// write the crash interrupted) is dropped and flagged, anywhere else it is
// an error.
func TestResumeTornFinalLine(t *testing.T) {
	lines := resumeFixture(t)
	torn := append(joinLines(lines[:6]), []byte(`{"record":"trial","cell":"cell-1","tri`)...)
	r, err := NewResume(torn)
	if err != nil {
		t.Fatalf("NewResume: %v", err)
	}
	if !r.Truncated() {
		t.Error("torn final line not reported")
	}
	if _, partial, _ := r.Take("cell-1"); len(partial) != 1 {
		t.Errorf("cell-1 has %d prior trial(s), want 1 (the torn record dropped)", len(partial))
	}

	garbledMiddle := append([]byte(`{torn}`+"\n"), joinLines(lines[1:])...)
	garbledMiddle = append(joinLines(lines[:1]), garbledMiddle...)
	if _, err := NewResume(garbledMiddle); err == nil {
		t.Error("garbled middle line accepted")
	}
}

// TestResumeRejects pins the malformed checkpoints NewResume must refuse:
// no usable header, sampled or out-of-order trials, count mismatches,
// reappearing cells.
func TestResumeRejects(t *testing.T) {
	lines := resumeFixture(t)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty file", nil, "empty"},
		{"torn header", []byte(`{"record":"hea`), "line 1"},
		{"no header", joinLines(lines[1:]), "first record"},
		{"gap in trial indices", joinLines([][]byte{lines[0], lines[1], lines[3]}), "want 1"},
		{"summary count mismatch", joinLines([][]byte{lines[0], lines[1], lines[4]}), "summarizes 3"},
		{"cell recorded twice", joinLines(append(append([][]byte{}, lines...), lines[1], lines[2], lines[3], lines[4])), "after its summary"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewResume(tc.data)
			if err == nil {
				t.Fatal("malformed checkpoint accepted")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
