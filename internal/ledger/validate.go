package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// ValidateReport summarizes a validated ledger.
type ValidateReport struct {
	Experiment string
	Cells      int
	Trials     int
	// StoppedEarly counts cells that converged before their trial budget.
	StoppedEarly int
}

// Validate checks a JSONL ledger as written by Writer: exactly one header
// line first (correct schema), every line a known record kind, seeds
// parseable, per-cell counts self-consistent (failures ≤ trials ≤ budget,
// rate = failures/trials, Wilson interval brackets the rate), every trial
// record preceding its cell's summary, and no trial referencing a cell that
// never summarizes. CI's ledger-smoke step runs this over a freshly
// generated ledger so a schema regression fails the build.
func Validate(data []byte) (ValidateReport, error) {
	var rep ValidateReport
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	sawHeader := false
	trialsByCell := map[string]int{} // trial records seen, awaiting a cell summary
	closedCells := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			return rep, fmt.Errorf("line %d: empty line", lineNo)
		}
		var kind struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return rep, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !sawHeader {
			if kind.Record != KindHeader {
				return rep, fmt.Errorf("line %d: first record is %q, want %q", lineNo, kind.Record, KindHeader)
			}
		}
		switch kind.Record {
		case KindHeader:
			if sawHeader {
				return rep, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			var h Header
			if err := json.Unmarshal(line, &h); err != nil {
				return rep, fmt.Errorf("line %d: header: %w", lineNo, err)
			}
			if h.Schema != Schema {
				return rep, fmt.Errorf("line %d: schema %q, want %q", lineNo, h.Schema, Schema)
			}
			if h.Experiment == "" {
				return rep, fmt.Errorf("line %d: header missing experiment name", lineNo)
			}
			rep.Experiment = h.Experiment
			sawHeader = true
		case KindTrial:
			var t Trial
			if err := json.Unmarshal(line, &t); err != nil {
				return rep, fmt.Errorf("line %d: trial: %w", lineNo, err)
			}
			if t.Cell == "" {
				return rep, fmt.Errorf("line %d: trial record missing cell name", lineNo)
			}
			if closedCells[t.Cell] {
				return rep, fmt.Errorf("line %d: trial for cell %q after its summary", lineNo, t.Cell)
			}
			if t.Trial < 0 {
				return rep, fmt.Errorf("line %d: negative trial index %d", lineNo, t.Trial)
			}
			if err := checkSeed(t.Seed); err != nil {
				return rep, fmt.Errorf("line %d: %w", lineNo, err)
			}
			trialsByCell[t.Cell]++
			rep.Trials++
		case KindCell:
			var c Cell
			if err := json.Unmarshal(line, &c); err != nil {
				return rep, fmt.Errorf("line %d: cell: %w", lineNo, err)
			}
			if c.Cell == "" {
				return rep, fmt.Errorf("line %d: cell record missing name", lineNo)
			}
			if closedCells[c.Cell] {
				return rep, fmt.Errorf("line %d: duplicate cell summary %q", lineNo, c.Cell)
			}
			if err := checkSeed(c.Seed); err != nil {
				return rep, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if c.Failures < 0 || c.Failures > c.Trials {
				return rep, fmt.Errorf("line %d: cell %q: failures %d outside [0, %d]", lineNo, c.Cell, c.Failures, c.Trials)
			}
			if c.Trials > c.Budget {
				return rep, fmt.Errorf("line %d: cell %q: trials %d exceed budget %d", lineNo, c.Cell, c.Trials, c.Budget)
			}
			if c.Trials > 0 {
				want := float64(c.Failures) / float64(c.Trials)
				if math.Abs(c.Rate-want) > 1e-12 {
					return rep, fmt.Errorf("line %d: cell %q: rate %v != failures/trials %v", lineNo, c.Cell, c.Rate, want)
				}
			}
			// The Wilson bounds are computed in floating point: at zero
			// failures the lower bound lands a few ulps above 0, so the
			// bracket check needs the same kind of tolerance as the rate.
			if !(c.WilsonLo-1e-12 <= c.Rate && c.Rate <= c.WilsonHi+1e-12) {
				return rep, fmt.Errorf("line %d: cell %q: rate %v outside Wilson [%v, %v]",
					lineNo, c.Cell, c.Rate, c.WilsonLo, c.WilsonHi)
			}
			if n := trialsByCell[c.Cell]; n > c.Trials {
				return rep, fmt.Errorf("line %d: cell %q: %d trial records exceed summarized trials %d", lineNo, c.Cell, n, c.Trials)
			}
			delete(trialsByCell, c.Cell)
			closedCells[c.Cell] = true
			if c.StoppedEarly {
				rep.StoppedEarly++
			}
			rep.Cells++
		default:
			return rep, fmt.Errorf("line %d: unknown record kind %q", lineNo, kind.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if !sawHeader {
		return rep, fmt.Errorf("ledger is empty")
	}
	if len(trialsByCell) > 0 {
		// Sort the dangling cells so the validator's verdict is itself a
		// deterministic artifact: the old code returned whichever cell map
		// iteration surfaced first, so the same broken ledger produced
		// different error text run to run.
		cells := make([]string, 0, len(trialsByCell))
		for cell := range trialsByCell {
			cells = append(cells, cell)
		}
		sort.Strings(cells)
		return rep, fmt.Errorf("trial records for cell(s) %q have no cell summary", cells)
	}
	return rep, nil
}

// checkSeed verifies a SeedString round-trips as a 64-bit hex literal.
func checkSeed(s string) error {
	if len(s) < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X') {
		return fmt.Errorf("seed %q is not a hex literal", s)
	}
	if _, err := strconv.ParseUint(s[2:], 16, 64); err != nil {
		return fmt.Errorf("seed %q: %w", s, err)
	}
	return nil
}
