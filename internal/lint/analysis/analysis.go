// Package analysis is the minimal analyzer framework behind questvet
// (tools/questvet): a stdlib-only stand-in for the parts of
// golang.org/x/tools/go/analysis this repository needs. An Analyzer
// inspects one type-checked package through a Pass and reports
// Diagnostics; the driver (Check) matches diagnostics against
// //quest:allow suppression directives and polices the directives
// themselves — a suppression must name a known analyzer, carry a reason,
// and actually suppress something, or it becomes a diagnostic in its own
// right. CI counts the surviving suppressions, so every escape hatch from
// the repo's determinism, nil-gating, and seed-discipline invariants is
// visible and justified in one grep: `//quest:allow`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"quest/internal/lint/callgraph"
	"quest/internal/lint/loader"
)

// An Analyzer is one named check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //quest:allow(<name>) directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. A returned error aborts the whole questvet run
	// (reserved for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *loader.Package
	// Graph is the whole-module call graph, present when the driver ran
	// CheckGraph (questvet always does; analysistest.Run passes nil unless
	// the fixture uses RunTree with a Config). Interprocedural analyzers
	// must tolerate a nil Graph by reporting nothing.
	Graph *callgraph.Graph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Suppressed pairs a finding with the //quest:allow directive that
// silenced it, so drivers can count and list the escape hatches in force.
type Suppressed struct {
	Diagnostic
	Reason string
}

// DirectiveAnalyzer is the pseudo-analyzer name under which problems with
// //quest:allow directives themselves are reported (missing reason, unknown
// analyzer, nothing suppressed). These meta-diagnostics cannot be
// suppressed.
const DirectiveAnalyzer = "quest:allow"

// directiveRe matches the full text of a suppression comment:
// //quest:allow(<analyzer>) <reason>. The reason is everything after the
// closing parenthesis.
var directiveRe = regexp.MustCompile(`^quest:allow\(([a-zA-Z0-9_-]*)\)\s*(.*)$`)

// allow is one parsed //quest:allow directive.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// Result is the outcome of running a set of analyzers over one package.
type Result struct {
	// Active are the findings that must be fixed (or suppressed with a
	// reason): unsuppressed analyzer diagnostics plus directive problems.
	Active []Diagnostic
	// Suppressed are analyzer findings silenced by a well-formed
	// //quest:allow directive, with its reason.
	Suppressed []Suppressed
}

// Check runs the analyzers over pkg and applies //quest:allow suppression:
// a directive on the finding's line, or alone on the line directly above
// it, silences findings of the named analyzer. known lists every analyzer
// name the caller's suite defines (not just those scoped to this package),
// so directives for out-of-scope analyzers are tolerated while misspelled
// ones are flagged.
func Check(pkg *loader.Package, fset *token.FileSet, analyzers []*Analyzer, known []string) (Result, error) {
	return CheckGraph(pkg, fset, nil, analyzers, known)
}

// CheckGraph is Check with a whole-module call graph attached to every
// Pass, enabling the interprocedural analyzers (hotalloc, gateflow).
func CheckGraph(pkg *loader.Package, fset *token.FileSet, g *callgraph.Graph, analyzers []*Analyzer, known []string) (Result, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg, Graph: g, diags: &diags}
		if err := a.Run(pass); err != nil {
			return Result{}, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}

	allows, malformed := collectAllows(pkg, fset)
	res := Result{Active: malformed}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}

	// Index allows by (file, line) for the two recognised placements.
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]*allow)
	for i := range allows {
		al := &allows[i]
		byLine[key{al.pos.Filename, al.pos.Line}] = append(byLine[key{al.pos.Filename, al.pos.Line}], al)
	}
	match := func(d Diagnostic) *allow {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, al := range byLine[key{d.Pos.Filename, line}] {
				if al.analyzer == d.Analyzer && al.reason != "" {
					return al
				}
			}
		}
		return nil
	}

	for _, d := range diags {
		if al := match(d); al != nil {
			al.used = true
			res.Suppressed = append(res.Suppressed, Suppressed{Diagnostic: d, Reason: al.reason})
			continue
		}
		res.Active = append(res.Active, d)
	}

	// Police the directives themselves.
	for i := range allows {
		al := &allows[i]
		switch {
		case al.reason == "":
			res.Active = append(res.Active, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      al.pos,
				Message:  fmt.Sprintf("suppression //quest:allow(%s) has no reason; justify it or remove it", al.analyzer),
			})
		case !knownSet[al.analyzer]:
			res.Active = append(res.Active, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      al.pos,
				Message:  fmt.Sprintf("suppression names unknown analyzer %q (known: %s)", al.analyzer, strings.Join(known, ", ")),
			})
		case ran[al.analyzer] && !al.used:
			res.Active = append(res.Active, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      al.pos,
				Message:  fmt.Sprintf("suppression //quest:allow(%s) matches no diagnostic here; remove it", al.analyzer),
			})
		}
	}

	sortDiags(res.Active)
	sort.SliceStable(res.Suppressed, func(i, j int) bool {
		return lessPos(res.Suppressed[i].Pos, res.Suppressed[j].Pos)
	})
	return res, nil
}

// collectAllows scans every comment of the package for //quest:allow
// directives. Comments that start with "quest:allow" but do not parse get a
// malformed-directive diagnostic instead of being silently inert.
func collectAllows(pkg *loader.Package, fset *token.FileSet) (allows []allow, malformed []Diagnostic) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are never directives
				}
				if !strings.HasPrefix(strings.TrimSpace(text), "quest:allow") {
					continue
				}
				m := directiveRe.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil || m[1] == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: DirectiveAnalyzer,
						Pos:      fset.Position(c.Pos()),
						Message:  "malformed suppression; use //quest:allow(<analyzer>) <reason>",
					})
					continue
				}
				allows = append(allows, allow{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      fset.Position(c.Pos()),
				})
			}
		}
	}
	return allows, malformed
}

func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool { return lessPos(ds[i].Pos, ds[j].Pos) })
}

func lessPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
