package analysis_test

import (
	"strings"
	"testing"

	"quest/internal/lint/analysis"
	"quest/internal/lint/loader"
	"quest/internal/lint/seedsrc"
)

// TestDirectivePolicing pins the driver's handling of //quest:allow
// directives: a suppression without a reason does not suppress and is itself
// a diagnostic, as are unknown-analyzer, unused, and malformed directives.
// Only a well-formed directive with a reason silences a finding.
func TestDirectivePolicing(t *testing.T) {
	root, err := loader.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.LoadDir("testdata/src/a", "a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Check(pkg, prog.Fset, []*analysis.Analyzer{seedsrc.Analyzer}, []string{"seedsrc"})
	if err != nil {
		t.Fatal(err)
	}

	want := []struct {
		line          int
		analyzer, msg string
	}{
		{6, analysis.DirectiveAnalyzer, "has no reason"},
		{7, "seedsrc", "time.Now"}, // reasonless directive must NOT suppress
		{11, analysis.DirectiveAnalyzer, "unknown analyzer"},
		{12, "seedsrc", "time.Now"}, // unknown-analyzer directive must NOT suppress
		{16, analysis.DirectiveAnalyzer, "matches no diagnostic"},
		{21, analysis.DirectiveAnalyzer, "malformed suppression"},
	}
	if len(res.Active) != len(want) {
		t.Fatalf("Check returned %d active diagnostics, want %d:\n%v", len(res.Active), len(want), res.Active)
	}
	for i, w := range want {
		d := res.Active[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.msg) {
			t.Errorf("active[%d] = %s, want line %d analyzer %s message containing %q", i, d, w.line, w.analyzer, w.msg)
		}
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Pos.Line != 27 {
		t.Fatalf("Suppressed = %v, want exactly the line-27 time.Now silenced by the well-formed directive", res.Suppressed)
	}
	if res.Suppressed[0].Reason != "wall-clock latency metric only" {
		t.Errorf("suppression reason %q not carried through", res.Suppressed[0].Reason)
	}
}
