package a

import "time"

func noReason() time.Time {
	//quest:allow(seedsrc)
	return time.Now()
}

func unknownAnalyzer() time.Time {
	//quest:allow(nosuch) the analyzer name is misspelled
	return time.Now()
}

func unusedSuppression() int {
	//quest:allow(seedsrc) nothing on the next line trips seedsrc
	return 42
}

func malformed() int {
	//quest:allow missing the parenthesized analyzer
	return 0
}

func properlySuppressed() time.Time {
	//quest:allow(seedsrc) wall-clock latency metric only
	return time.Now()
}
