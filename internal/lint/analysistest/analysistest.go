// Package analysistest runs questvet analyzers over small testdata packages
// and checks their findings against expectation comments, mirroring (a small
// subset of) golang.org/x/tools/go/analysis/analysistest without the
// dependency.
//
// Expectations are written in the testdata source itself:
//
//	for k, v := range m { // want "range over map"
//
// A `// want "re"` comment expects an *active* diagnostic on its line whose
// message matches the regexp; several patterns may follow one want. A
// `// suppressed "re"` comment expects a finding on its line that was
// silenced by a //quest:allow directive — use it to prove the suppression
// engaged rather than the analyzer simply not firing. Lines without
// expectation comments must produce nothing. Directive-policing diagnostics
// (analyzer "quest:allow") are matched by `// want` like any other finding.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"quest/internal/lint/analysis"
	"quest/internal/lint/callgraph"
	"quest/internal/lint/loader"
)

var expectRe = regexp.MustCompile(`//\s*(want|suppressed)((?:\s+"[^"]*")+)\s*$`)
var patRe = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	kind string // "want" or "suppressed"
	re   *regexp.Regexp
	file string
	line int
	hit  bool
}

// Run loads dir (relative to the calling test's working directory) as one
// package — module-internal imports resolve against the enclosing module —
// runs the analyzers through analysis.Check, and reports every mismatch
// between the result and the package's want/suppressed comments as a test
// error.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	root, err := loader.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.LoadDir(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	res, err := analysis.Check(pkg, prog.Fset, analyzers, known)
	if err != nil {
		t.Fatal(err)
	}

	expects := collect(t, prog, pkg)
	verify(t, expects, res)
}

// RunTree loads dir as its own module — the fixture carries a go.mod, and
// its packages import each other through the fixture module path — builds
// the whole-fixture call graph when cfg is non-nil, runs the analyzers
// over every package through analysis.CheckGraph, and matches the combined
// result against want/suppressed comments across all packages. This is the
// harness for interprocedural analyzers, where the caller sits in package
// a and the callee (and its expectation comment) in package b.
//
// cfg's Roots/ClosureRoots/ObserverPkgs are suffix-matched, so fixture
// packages named like the real ones ("fix/internal/tracing") satisfy the
// production specs.
func RunTree(t *testing.T, dir string, cfg *callgraph.Config, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := loader.NewProgram(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	var g *callgraph.Graph
	if cfg != nil {
		g = callgraph.Build(prog, pkgs, *cfg)
		for _, spec := range g.UnresolvedRoots() {
			t.Errorf("fixture %s: root %q matches no function", dir, spec)
		}
	}
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	var combined analysis.Result
	var expects []*expectation
	for _, pkg := range pkgs {
		res, err := analysis.CheckGraph(pkg, prog.Fset, g, analyzers, known)
		if err != nil {
			t.Fatal(err)
		}
		combined.Active = append(combined.Active, res.Active...)
		combined.Suppressed = append(combined.Suppressed, res.Suppressed...)
		expects = append(expects, collect(t, prog, pkg)...)
	}
	verify(t, expects, combined)
}

// verify matches a result against the collected expectations, reporting
// every unexpected finding and every unmet expectation.
func verify(t *testing.T, expects []*expectation, res analysis.Result) {
	t.Helper()
	match := func(kind, file string, line int, msg string) bool {
		for _, e := range expects {
			if e.kind == kind && e.file == file && e.line == line && !e.hit && e.re.MatchString(msg) {
				e.hit = true
				return true
			}
		}
		return false
	}
	for _, d := range res.Active {
		if !match("want", d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, s := range res.Suppressed {
		if !match("suppressed", s.Pos.Filename, s.Pos.Line, s.Message) {
			t.Errorf("unexpected suppressed finding %s (reason: %s)", s.Diagnostic, s.Reason)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", e.file, e.line, e.kind, e.re)
		}
	}
}

// collect parses the want/suppressed comments out of the package's files.
func collect(t *testing.T, prog *loader.Program, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := expectRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") || strings.Contains(c.Text, "// suppressed") {
						t.Fatalf("%s: unparseable expectation comment %q", prog.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				for _, pm := range patRe.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad expectation regexp %q: %v", pos, pm[1], err)
					}
					out = append(out, &expectation{kind: m[1], re: re, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	if len(out) == 0 {
		t.Log("analysistest: package declares no expectations; asserting a clean result")
	}
	return out
}
