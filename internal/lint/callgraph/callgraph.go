// Package callgraph builds a whole-module static call graph over the
// loader's type information, so the questvet analyzers can reason
// *interprocedurally* about the repository's hot-path contract: the pinned
// allocation budgets (mc.RunWith ≤ 8 allocs/call, the decoder's exact-match
// path ≤ 6 allocs/op) and the nil-gated-observability invariant hold along
// every call chain rooted at a hot entry point, not just inside the function
// that happens to contain the call. Like the rest of internal/lint it is
// stdlib-only — no golang.org/x/tools — and deliberately scoped to what the
// analyzers need:
//
//   - Static call edges: direct calls to module functions and methods,
//     resolved through go/types.
//   - Interface dispatch bounded by the module: a call through an interface
//     method adds an edge to every in-module concrete type that implements
//     the interface. (The simulator never receives implementations from
//     outside the module, so this bound is exact for the hot paths.)
//   - Function literals: a literal defined inside F is assumed callable from
//     F (an over-approximation that covers the worker-goroutine and observer
//     closures the engine is built from). Literals passed at a call site
//     named by Config.ClosureRoots — the Monte-Carlo engines' trial-function
//     parameters — additionally become hot roots themselves.
//   - Gating: an edge, allocation site, or tracked observer call that is
//     dominated by a nil guard on an observer-class expression (a tracer,
//     collector, sampler, recorder, metrics registry, a func-typed hook, or
//     an error) is marked Gated. The hot-path pins are defined with
//     observers off and errors absent, so reachability for budget auditing
//     follows only ungated edges; what hides behind `if tr != nil` is the
//     observers-on path the pins deliberately exclude.
//
// Soundness envelope: calls through plain func-typed values (not literals,
// not named functions) produce no edge — the repository's hot paths receive
// such values only at the engine boundary, where Config.ClosureRoots roots
// the closures directly. Dynamic dispatch outside the module (stdlib
// callbacks) is likewise invisible. The graph over-approximates everywhere
// else, which is the right failure mode for a lint: a reported path exists
// syntactically even if runtime configuration never takes it, and the
// //quest:allow + budget-file machinery absorbs the deliberate cases.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"quest/internal/lint/loader"
)

// HotDirective marks a function declaration as a hot-path root in source:
// a comment line `//quest:hotpath` in the doc comment of a FuncDecl. The
// built-in root table in internal/lint/questvet covers the real entry
// points; the directive exists for testdata fixtures and for new hot entry
// points that want the contract before they earn a budget-file row.
const HotDirective = "quest:hotpath"

// Config selects the roots and the observer vocabulary of a build.
type Config struct {
	// Roots are function specs (see Lookup) naming hot entry points:
	// "internal/mce.(*MCE).StepCycle", "internal/mc.RunWith". Package paths
	// are suffix-matched so the same spec works on the real module and on
	// analysistest fixture modules.
	Roots []string
	// ClosureRoots are function specs of callees whose function-literal (or
	// named-function) arguments are hot roots: the trial closures handed to
	// mc.Run/RunWith/RunTraced/RunObserved/RunBatch run once per trial and
	// carry the per-trial hot path even though the engine calls them through
	// a func value the graph cannot see.
	ClosureRoots []string
	// ObserverPkgs are package-path suffixes whose named types gate hot
	// paths ("internal/tracing", "internal/metrics", ...). A nil guard on an
	// expression of (a pointer/slice/map of) such a type — or of func or
	// error type — marks the guarded region Gated.
	ObserverPkgs []string
	// TrackedTypes maps observer package suffixes to the type names whose
	// method calls are recorded per node (for gateflow): e.g.
	// "internal/tracing" -> {"Tracer"}.
	TrackedTypes map[string][]string
}

// A Node is one function in the graph: a declared function or method
// (Fn != nil) or a function literal (Lit != nil).
type Node struct {
	Fn  *types.Func
	Lit *ast.FuncLit
	Pkg *loader.Package
	Pos token.Pos
	// Name is the canonical spec-style name: "quest/internal/mc.RunWith",
	// "quest/internal/mce.(*MCE).StepCycle"; literals append ".funcN" to
	// their enclosing function's name in syntax order.
	Name string
	// Edges are the outgoing calls, in syntax order.
	Edges []Edge
	// Allocs are the allocation sites in this function's body, in syntax
	// order.
	Allocs []AllocSite
	// Tracked are the calls to tracked observer-type methods in this
	// function's body, in syntax order.
	Tracked []TrackedCall
	// root records why this node is a hot root ("" if it is not one).
	root string
}

// An Edge is one static call.
type Edge struct {
	To  *Node
	Pos token.Pos
	// Gated marks calls dominated by an observer nil guard: the target runs
	// only on the observers-on (or error) path the hot-path pins exclude.
	Gated bool
}

// An AllocSite is one syntactic allocation in a function body.
type AllocSite struct {
	Pos token.Pos
	// What names the allocation kind: "make", "new", "append", "&composite",
	// "slice literal", "map literal", "closure", "go", "string concat",
	// "string conversion", "interface boxing".
	What  string
	Gated bool
}

// A TrackedCall is one call to a method of a tracked observer type.
type TrackedCall struct {
	Pos token.Pos
	// PkgSuffix/TypeName/Method identify the callee: "internal/tracing",
	// "Tracer", "Span".
	PkgSuffix, TypeName, Method string
	// Recv is the printed receiver expression ("m.tr", "ctx.Heat").
	Recv string
	// Gated: dominated by some observer nil guard. GatedOnRecv: dominated by
	// a nil guard naming exactly Recv — the form the nogate invariant
	// requires, because only it proves the receiver itself is non-nil.
	Gated, GatedOnRecv bool
}

// Graph is the built call graph with hot-path reachability.
type Graph struct {
	Fset   *token.FileSet
	Module string

	nodes  []*Node
	byFunc map[*types.Func]*Node
	roots  []*Node
	// pred maps each hot node to its predecessor on a shortest root path
	// (roots map to themselves).
	pred       map[*Node]*Node
	unresolved []string
}

// Build constructs the graph over pkgs (typically prog.LoadModule()).
func Build(prog *loader.Program, pkgs []*loader.Package, cfg Config) *Graph {
	g := &Graph{
		Fset:   prog.Fset,
		Module: prog.Module,
		byFunc: make(map[*types.Func]*Node),
	}
	b := &builder{
		g: g, cfg: &cfg,
		methodIndex: buildMethodIndex(pkgs),
		litNodes:    make(map[*ast.FuncLit]*Node),
	}

	// Pass 1: a node per function declaration, so forward references
	// resolve regardless of package order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Pkg: pkg, Pos: fd.Pos(), Name: funcName(fn)}
				if hasHotDirective(fd) {
					n.root = "//" + HotDirective
				}
				g.nodes = append(g.nodes, n)
				g.byFunc[fn] = n
			}
		}
	}

	// Pass 2: walk every body — edges, literals, allocation sites, tracked
	// calls, closure roots.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.byFunc[fn]
				if node == nil {
					continue
				}
				nlits := 0
				w := &walker{b: b, pkg: pkg, node: node, top: node, nlits: &nlits}
				w.walkBlock(fd.Body.List)
			}
		}
	}

	// Resolve configured roots, remembering specs that match nothing so the
	// driver can refuse a silently-disabled audit.
	seen := map[*Node]bool{}
	addRoot := func(n *Node, why string) {
		if !seen[n] {
			seen[n] = true
			if n.root == "" {
				n.root = why
			}
			g.roots = append(g.roots, n)
		}
	}
	for _, spec := range cfg.Roots {
		ns := g.Lookup(spec)
		if len(ns) == 0 {
			g.unresolved = append(g.unresolved, spec)
			continue
		}
		for _, n := range ns {
			addRoot(n, spec)
		}
	}
	for _, n := range g.nodes {
		if n.root != "" && !seen[n] {
			addRoot(n, n.root)
		}
	}
	for _, n := range b.closureRoots {
		addRoot(n, "trial closure")
	}

	// Hot reachability: BFS over ungated edges from every root.
	g.pred = bfs(g.roots, false)
	return g
}

// builder carries the shared per-build state.
type builder struct {
	g            *Graph
	cfg          *Config
	methodIndex  *methodIndex
	litNodes     map[*ast.FuncLit]*Node
	closureRoots []*Node
}

// Nodes returns every node, in package/file/syntax order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodesIn returns the nodes declared in pkg, in syntax order.
func (g *Graph) NodesIn(pkg *loader.Package) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// Roots returns the resolved hot roots in resolution order.
func (g *Graph) Roots() []*Node { return g.roots }

// RootReason reports why n is a hot root ("" when it is not one).
func (g *Graph) RootReason(n *Node) string { return n.root }

// UnresolvedRoots lists Config.Roots specs that matched no function — a
// renamed entry point must fail loudly, or the audit silently turns off.
func (g *Graph) UnresolvedRoots() []string { return g.unresolved }

// Hot reports whether n is reachable from a hot root over ungated edges.
func (g *Graph) Hot(n *Node) bool { _, ok := g.pred[n]; return ok }

// HotPath returns the call chain from a root to n (inclusive), nil when n
// is not hot.
func (g *Graph) HotPath(n *Node) []*Node {
	if !g.Hot(n) {
		return nil
	}
	var rev []*Node
	for cur := n; ; cur = g.pred[cur] {
		rev = append(rev, cur)
		if g.pred[cur] == cur {
			break
		}
	}
	out := make([]*Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// ReachableFrom returns every node reachable from roots over ungated edges
// (roots included), in deterministic BFS order.
func (g *Graph) ReachableFrom(roots ...*Node) []*Node {
	pred := bfs(roots, false)
	var out []*Node
	for _, n := range g.nodes { // node order, not map order
		if _, ok := pred[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// bfs computes predecessor links from roots; gated edges are followed only
// when followGated is set.
func bfs(roots []*Node, followGated bool) map[*Node]*Node {
	pred := make(map[*Node]*Node)
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if _, ok := pred[r]; !ok {
			pred[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if e.Gated && !followGated {
				continue
			}
			if _, ok := pred[e.To]; !ok {
				pred[e.To] = n
				queue = append(queue, e.To)
			}
		}
	}
	return pred
}

// Lookup resolves a function spec to nodes. Specs name a package path (or a
// path suffix) and a function: "internal/mc.RunWith",
// "quest/internal/mce.(*MCE).StepCycle", "internal/decoder.Lattice.Index".
// Pointerness of the receiver is ignored when matching.
func (g *Graph) Lookup(spec string) []*Node {
	pkgPath, recv, name, ok := parseSpec(spec)
	if !ok {
		return nil
	}
	var out []*Node
	for _, n := range g.nodes {
		if n.Fn == nil || n.Fn.Name() != name {
			continue
		}
		p := n.Fn.Pkg()
		if p == nil || !pathMatches(p.Path(), pkgPath) {
			continue
		}
		if recvTypeName(n.Fn) != recv {
			continue
		}
		out = append(out, n)
	}
	return out
}

// DisplayName renders a node name for diagnostics: the module prefix is
// trimmed so messages read "internal/mc.RunWith" regardless of module name.
func (g *Graph) DisplayName(n *Node) string {
	return strings.TrimPrefix(strings.TrimPrefix(n.Name, g.Module), "/")
}

// PathString renders a hot path as "a → b → c" with display names.
func (g *Graph) PathString(path []*Node) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = g.DisplayName(n)
	}
	return strings.Join(parts, " → ")
}

// parseSpec splits "path/pkg.(*T).M" into (path/pkg, T, M). For plain
// functions recv is "".
func parseSpec(spec string) (pkgPath, recv, name string, ok bool) {
	slash := strings.LastIndex(spec, "/")
	tail := spec[slash+1:]
	dot := strings.Index(tail, ".")
	if dot < 0 {
		return "", "", "", false
	}
	pkgPath = spec[:slash+1] + tail[:dot]
	rest := tail[dot+1:]
	if t, ok2 := strings.CutPrefix(rest, "(*"); ok2 {
		tn, m, found := strings.Cut(t, ").")
		if !found {
			return "", "", "", false
		}
		return pkgPath, tn, m, true
	}
	if tn, m, found := strings.Cut(rest, "."); found {
		return pkgPath, tn, m, true
	}
	return pkgPath, "", rest, true
}

func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// recvTypeName returns the name of fn's receiver type (pointer stripped),
// or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // abstract method; not a graph node anyway
	}
	return ""
}

// funcName builds the canonical node name for a declared function.
func funcName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if r := recvTypeName(fn); r != "" {
		sig := fn.Type().(*types.Signature)
		if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
			return fmt.Sprintf("%s.(*%s).%s", pkg, r, fn.Name())
		}
		return fmt.Sprintf("%s.%s.%s", pkg, r, fn.Name())
	}
	return pkg + "." + fn.Name()
}

func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == HotDirective {
			return true
		}
	}
	return false
}

// methodIndex supports bounded interface dispatch: every in-module named
// type with methods, and the method set of its pointer type.
type methodIndex struct {
	types []*types.Named
}

func buildMethodIndex(pkgs []*loader.Package) *methodIndex {
	idx := &methodIndex{}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.NumMethods() == 0 {
				continue
			}
			idx.types = append(idx.types, named)
		}
	}
	return idx
}

// implementors resolves an interface-method call to the concrete in-module
// methods that can satisfy it.
func (idx *methodIndex) implementors(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range idx.types {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				out = append(out, m)
			}
		}
	}
	return out
}
