package callgraph

import (
	"strings"
	"testing"

	"quest/internal/lint/loader"
)

// fixtureConfig mirrors the production GraphConfig shape against the
// testdata/prog module (specs are suffix-matched, so "internal/mc.RunWith"
// resolves inside module fix too).
func fixtureConfig() Config {
	return Config{
		Roots:        []string{"app.Drive", "internal/nope.Missing"},
		ClosureRoots: []string{"internal/mc.RunWith"},
		ObserverPkgs: []string{"internal/tracing"},
		TrackedTypes: map[string][]string{"internal/tracing": {"Tracer"}},
	}
}

func buildFixture(t *testing.T) *Graph {
	t.Helper()
	prog, err := loader.NewProgram("testdata/prog")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog, pkgs, fixtureConfig())
}

// node finds a fixture function by display name, failing the test when it
// does not exist.
func node(t *testing.T, g *Graph, display string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if g.DisplayName(n) == display {
			return n
		}
	}
	t.Fatalf("no node %q in fixture graph", display)
	return nil
}

func TestBuildRootsAndUnresolved(t *testing.T) {
	g := buildFixture(t)

	if got := g.UnresolvedRoots(); len(got) != 1 || got[0] != "internal/nope.Missing" {
		t.Errorf("UnresolvedRoots = %v, want [internal/nope.Missing]", got)
	}

	wantRoots := map[string]string{
		"app.Drive":       "app.Drive",         // from Config.Roots
		"app.Marked":      "//" + HotDirective, // from the doc directive
		"app.GateDemo":    "//" + HotDirective,
		"app.Drive.func1": "trial closure", // literal handed to RunWith
		"app.trialFn":     "trial closure", // named function handed to RunWith
	}
	got := map[string]string{}
	for _, r := range g.Roots() {
		got[g.DisplayName(r)] = g.RootReason(r)
	}
	for name, why := range wantRoots {
		if got[name] != why {
			t.Errorf("root %s reason = %q, want %q", name, got[name], why)
		}
	}
	if len(got) != len(wantRoots) {
		t.Errorf("roots = %v, want exactly %v", got, wantRoots)
	}
}

func TestHotReachability(t *testing.T) {
	g := buildFixture(t)
	hot := []string{
		"app.Drive", "app.Drive.func1", "app.Marked", "app.GateDemo", "app.trialFn",
		"internal/mc.RunWith", "internal/mc.Helper", "internal/mc.Dispatch",
		// Interface dispatch bounds s.Put(1) to both in-module impls.
		"internal/mc.Fast.Put", "internal/mc.(*Slow).Put",
		// Emit is hot through Helper's *ungated* second call.
		"internal/tracing.(*Tracer).Emit",
	}
	for _, name := range hot {
		if !g.Hot(node(t, g, name)) {
			t.Errorf("%s should be hot", name)
		}
	}
	cold := []string{
		"internal/mc.Cold",
		// onlyGated is called only inside `if tr != nil`: gated edges do not
		// extend hot reachability.
		"app.onlyGated",
		"app.driveNamed", "app.earlyReturn", "app.wrongGuard", "app.allocZoo",
	}
	for _, name := range cold {
		if g.Hot(node(t, g, name)) {
			t.Errorf("%s should not be hot", name)
		}
	}
}

func TestHotPathAndPathString(t *testing.T) {
	g := buildFixture(t)
	helper := node(t, g, "internal/mc.Helper")
	path := g.HotPath(helper)
	if len(path) == 0 || path[len(path)-1] != helper {
		t.Fatalf("HotPath(Helper) = %v", path)
	}
	if g.RootReason(path[0]) == "" {
		t.Errorf("path start %s is not a root", g.DisplayName(path[0]))
	}
	ps := g.PathString(path)
	if !strings.Contains(ps, " → internal/mc.Helper") {
		t.Errorf("PathString = %q", ps)
	}
	if g.HotPath(node(t, g, "internal/mc.Cold")) != nil {
		t.Error("HotPath of a cold node should be nil")
	}
}

func TestLookupSpecs(t *testing.T) {
	g := buildFixture(t)
	cases := []struct {
		spec string
		want int
	}{
		{"internal/mc.RunWith", 1},
		{"mc.RunWith", 1}, // shorter suffix still matches
		{"fix/internal/mc.RunWith", 1},
		{"internal/mc.(*Slow).Put", 1},
		{"internal/mc.Slow.Put", 1}, // receiver pointerness ignored
		{"internal/mc.(*Fast).Put", 1},
		{"internal/tracing.(*Tracer).Emit", 1},
		{"app.Missing", 0},
		{"other/mc.RunWith", 0}, // suffix must match whole path elements
		{"", 0},
	}
	for _, c := range cases {
		if got := len(g.Lookup(c.spec)); got != c.want {
			t.Errorf("Lookup(%q) found %d nodes, want %d", c.spec, got, c.want)
		}
	}
}

func allocKinds(n *Node) []string {
	var out []string
	for _, s := range n.Allocs {
		k := s.What
		if s.Gated {
			k += "(gated)"
		}
		out = append(out, k)
	}
	return out
}

func TestAllocSiteKinds(t *testing.T) {
	g := buildFixture(t)
	cases := []struct {
		node string
		want string
	}{
		{"app.Drive", "make closure"},
		// &composite for the pair, boxing Fast{} into the Sink parameter,
		// append on the return path.
		{"app.Marked", "&composite interface boxing append"},
		{"app.allocZoo", "map literal slice literal string conversion string concat go closure make(gated)"},
		{"internal/mc.Fast.Put", "make"},
		{"internal/mc.Cold", "new"},
		{"internal/mc.RunWith", ""},
	}
	for _, c := range cases {
		got := strings.Join(allocKinds(node(t, g, c.node)), " ")
		if got != c.want {
			t.Errorf("%s alloc sites = %q, want %q", c.node, got, c.want)
		}
	}
}

func TestTrackedCallGating(t *testing.T) {
	g := buildFixture(t)
	cases := []struct {
		node  string
		want  []TrackedCall // Pos ignored
		paths []string
	}{
		{node: "internal/mc.Helper", want: []TrackedCall{
			{PkgSuffix: "internal/tracing", TypeName: "Tracer", Method: "Emit", Recv: "tr", Gated: true, GatedOnRecv: true},
			{PkgSuffix: "internal/tracing", TypeName: "Tracer", Method: "Emit", Recv: "tr"},
		}},
		// `if tr == nil { return }` gates the remainder of the block.
		{node: "app.earlyReturn", want: []TrackedCall{
			{PkgSuffix: "internal/tracing", TypeName: "Tracer", Method: "Emit", Recv: "tr", Gated: true, GatedOnRecv: true},
		}},
		// A guard on a different tracer gates the region but not the receiver.
		{node: "app.wrongGuard", want: []TrackedCall{
			{PkgSuffix: "internal/tracing", TypeName: "Tracer", Method: "Emit", Recv: "b", Gated: true, GatedOnRecv: false},
		}},
	}
	for _, c := range cases {
		n := node(t, g, c.node)
		if len(n.Tracked) != len(c.want) {
			t.Errorf("%s has %d tracked calls, want %d", c.node, len(n.Tracked), len(c.want))
			continue
		}
		for i, w := range c.want {
			got := n.Tracked[i]
			got.Pos = 0
			if got != w {
				t.Errorf("%s tracked[%d] = %+v, want %+v", c.node, i, got, w)
			}
		}
	}
}

func TestReachableFromSubgraph(t *testing.T) {
	g := buildFixture(t)
	marked := node(t, g, "app.Marked")
	var names []string
	for _, n := range g.ReachableFrom(marked) {
		names = append(names, g.DisplayName(n))
	}
	want := "app.Marked internal/mc.Fast.Put internal/mc.(*Slow).Put internal/mc.Dispatch"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("ReachableFrom(Marked) = %q, want %q", got, want)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec, pkg, recv, name string
		ok                    bool
	}{
		{"internal/mc.RunWith", "internal/mc", "", "RunWith", true},
		{"quest/internal/mce.(*MCE).StepCycle", "quest/internal/mce", "MCE", "StepCycle", true},
		{"internal/decoder.Lattice.Index", "internal/decoder", "Lattice", "Index", true},
		{"mc.F", "mc", "", "F", true},
		{"nodot", "", "", "", false},
		{"internal/mc.(*Broken.F", "", "", "", false},
	}
	for _, c := range cases {
		pkg, recv, name, ok := parseSpec(c.spec)
		if ok != c.ok || pkg != c.pkg || recv != c.recv || name != c.name {
			t.Errorf("parseSpec(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				c.spec, pkg, recv, name, ok, c.pkg, c.recv, c.name, c.ok)
		}
	}
}
