// Package app drives the fixture engine: configured roots, directive
// roots, closure roots, and one function of every allocation kind.
package app

import (
	"fix/internal/mc"
	"fix/internal/tracing"
)

func Drive(tr *tracing.Tracer) int {
	buf := make([]byte, 8)
	_ = buf
	return mc.RunWith(3, func() bool {
		mc.Helper(tr)
		return true
	})
}

//quest:hotpath
func Marked(s []int) []int {
	t := &pair{}
	_ = t
	mc.Dispatch(mc.Fast{})
	return append(s, 1)
}

type pair struct{ a, b int }

//quest:hotpath
func GateDemo(tr *tracing.Tracer) {
	if tr != nil {
		onlyGated()
	}
}

func onlyGated() *int { return new(int) }

func trialFn() bool { return false }

func driveNamed() int { return mc.RunWith(1, trialFn) }

func earlyReturn(tr *tracing.Tracer) {
	if tr == nil {
		return
	}
	tr.Emit("after guard")
}

func wrongGuard(a, b *tracing.Tracer) {
	if a != nil {
		b.Emit("x")
	}
}

func allocZoo(tr *tracing.Tracer, s string) {
	m := map[string]int{}
	_ = m
	v := []int{1, 2}
	_ = v
	bs := []byte(s)
	_ = bs
	s2 := s + "x"
	_ = s2
	go func() {}()
	if tr != nil {
		_ = make([]int, 1)
	}
}
