// Package mc is the fixture's engine package: a closure-root entry point,
// an interface dispatched inside the module, and helpers with gated and
// ungated observer calls.
package mc

import "fix/internal/tracing"

// Sink is dispatched through an interface; both implementations live in
// the module, so the graph bounds the dynamic call exactly.
type Sink interface{ Put(x int) }

type Fast struct{}

func (Fast) Put(x int) { _ = make([]int, x) }

type Slow struct{}

func (*Slow) Put(x int) {}

// RunWith is the closure-root callee: function literals (and named
// functions) handed to it become hot roots themselves.
func RunWith(n int, fn func() bool) int {
	c := 0
	for i := 0; i < n; i++ {
		if fn() {
			c++
		}
	}
	return c
}

func Helper(tr *tracing.Tracer) {
	if tr != nil {
		tr.Emit("gated")
	}
	tr.Emit("ungated")
}

func Dispatch(s Sink) { s.Put(1) }

// Cold is not reachable from any root.
func Cold() *int { return new(int) }
