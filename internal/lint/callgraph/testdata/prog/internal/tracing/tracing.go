// Package tracing is the fixture's observer package: Tracer stands in for
// the real module's tracked observability types.
package tracing

type Tracer struct{ n int }

func (t *Tracer) Emit(s string) { t.n++ }
