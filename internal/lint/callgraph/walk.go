package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"quest/internal/lint/loader"
)

// walker traverses one function body, recording call edges, allocation
// sites, and tracked observer calls on its node, while maintaining the set
// of observer-class expressions proven non-nil by dominating guards.
type walker struct {
	b    *builder
	pkg  *loader.Package
	node *Node
	// top is the enclosing declared function (for literal naming); nlits
	// counts literals under it in syntax order.
	top   *Node
	nlits *int
	// guards holds the printed form of observer-class expressions that are
	// non-nil on every execution reaching the current statement: pushed
	// entering `if x != nil` bodies and after early-return `if x == nil`
	// guards, popped leaving the dominated region.
	guards []string
}

func (w *walker) gated() bool { return len(w.guards) > 0 }

func (w *walker) guardedExact(expr string) bool {
	for _, g := range w.guards {
		if g == expr {
			return true
		}
	}
	return false
}

// walkBlock walks a statement list, accumulating early-return guards: after
// `if x == nil { return }` the rest of the block has x non-nil.
func (w *walker) walkBlock(list []ast.Stmt) {
	save := len(w.guards)
	for _, s := range list {
		w.walkStmt(s)
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil && terminates(ifs.Body) {
			w.guards = append(w.guards, w.nonNil(ifs.Cond, false)...)
		}
	}
	w.guards = w.guards[:save]
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkBlock(s.List)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		save := len(w.guards)
		w.guards = append(w.guards, w.nonNil(s.Cond, true)...)
		w.walkBlock(s.Body.List)
		w.guards = w.guards[:save]
		if s.Else != nil {
			w.guards = append(w.guards, w.nonNil(s.Cond, false)...)
			w.walkStmt(s.Else)
			w.guards = w.guards[:save]
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmt(s.Post)
		w.walkBlock(s.Body.List)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkBlock(s.Body.List)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			w.walkBlock(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		for _, c := range s.Body.List {
			w.walkBlock(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.walkStmt(cc.Comm)
			w.walkBlock(cc.Body)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && w.isString(s.Lhs[0]) {
			w.site(s.TokPos, "string concat")
		}
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.GoStmt:
		// A go statement allocates its goroutine (and any captured frame)
		// even when the callee itself is clean.
		w.site(s.Go, "go")
		w.walkCall(s.Call)
	case *ast.DeferStmt:
		w.walkCall(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

func (w *walker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.FuncLit:
		w.walkLit(e)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && w.isString(e) {
			w.site(e.OpPos, "string concat")
		}
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.site(e.Pos(), "&composite")
			w.walkCompositeElts(cl)
			return
		}
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		switch w.typeOf(e).(type) {
		case *types.Slice:
			w.site(e.Pos(), "slice literal")
		case *types.Map:
			w.site(e.Pos(), "map literal")
		}
		w.walkCompositeElts(e)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.IndexListExpr:
		w.walkExpr(e.X)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	}
}

func (w *walker) walkCompositeElts(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		w.walkExpr(el)
	}
}

// walkLit creates the node for a function literal, links it from the
// enclosing function, and walks its body with an empty guard stack (the
// graph assumes a literal is callable whenever its enclosing function runs;
// enclosing guards gate only the parent→literal edge).
func (w *walker) walkLit(lit *ast.FuncLit) {
	*w.nlits++
	n := &Node{
		Lit: lit, Pkg: w.pkg, Pos: lit.Pos(),
		Name: fmt.Sprintf("%s.func%d", w.top.Name, *w.nlits),
	}
	w.b.g.nodes = append(w.b.g.nodes, n)
	w.b.litNodes[lit] = n
	w.node.Edges = append(w.node.Edges, Edge{To: n, Pos: lit.Pos(), Gated: w.gated()})
	w.site(lit.Pos(), "closure")
	child := &walker{b: w.b, pkg: w.pkg, node: n, top: w.top, nlits: w.nlits}
	child.walkBlock(lit.Body.List)
}

func (w *walker) walkCall(call *ast.CallExpr) {
	if call == nil {
		return
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: step through the index expression to the
	// underlying function.
	switch f := fun.(type) {
	case *ast.IndexExpr:
		if _, isFn := w.typeOf(f.X).(*types.Signature); isFn {
			fun = ast.Unparen(f.X)
		}
	case *ast.IndexListExpr:
		if _, isFn := w.typeOf(f.X).(*types.Signature); isFn {
			fun = ast.Unparen(f.X)
		}
	}

	// Type conversion, not a call.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringSliceConversion(tv.Type, w.typeOf(call.Args[0])) {
			w.site(call.Pos(), "string conversion")
		}
		for _, a := range call.Args {
			w.walkExpr(a)
		}
		return
	}

	var callee *types.Func
	var recvExpr ast.Expr
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := w.pkg.Info.Uses[f].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				w.site(call.Pos(), "make")
			case "new":
				w.site(call.Pos(), "new")
			case "append":
				w.site(call.Pos(), "append")
			}
			for _, a := range call.Args {
				w.walkExpr(a)
			}
			return
		case *types.Func:
			callee = obj
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[f]; ok {
			callee, _ = sel.Obj().(*types.Func)
			recvExpr = f.X
		} else if obj, ok := w.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			callee = obj // qualified pkg.Func
		}
		w.walkExpr(f.X)
	case *ast.FuncLit:
		// Immediately-invoked literal: walkLit links and walks it.
		w.walkLit(f)
	default:
		w.walkExpr(fun)
	}

	if callee != nil {
		w.recordCall(call, callee, recvExpr)
	}
	for _, a := range call.Args {
		w.walkExpr(a)
	}
	if callee != nil {
		w.checkClosureRoots(call, callee)
		w.checkBoxing(call, callee)
	}
}

// recordCall adds edges (resolving interface dispatch to in-module
// implementors) and tracked-observer calls for a resolved static callee.
func (w *walker) recordCall(call *ast.CallExpr, callee *types.Func, recvExpr ast.Expr) {
	gated := w.gated()
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, impl := range w.b.methodIndex.implementors(iface, callee.Name()) {
				if to := w.b.g.byFunc[impl]; to != nil {
					w.node.Edges = append(w.node.Edges, Edge{To: to, Pos: call.Pos(), Gated: gated})
				}
			}
		} else if to := w.b.g.byFunc[callee]; to != nil {
			w.node.Edges = append(w.node.Edges, Edge{To: to, Pos: call.Pos(), Gated: gated})
		}
	} else if to := w.b.g.byFunc[callee]; to != nil {
		w.node.Edges = append(w.node.Edges, Edge{To: to, Pos: call.Pos(), Gated: gated})
	}

	if recvExpr == nil {
		return
	}
	pkgSuffix, typeName := w.trackedType(w.typeOf(recvExpr))
	if pkgSuffix == "" {
		return
	}
	recv := types.ExprString(recvExpr)
	w.node.Tracked = append(w.node.Tracked, TrackedCall{
		Pos: call.Pos(), PkgSuffix: pkgSuffix, TypeName: typeName,
		Method: callee.Name(), Recv: recv,
		Gated: gated, GatedOnRecv: w.guardedExact(recv),
	})
}

// trackedType reports the (package suffix, type name) of t when it is a
// tracked observer type per Config.TrackedTypes, after stripping one
// pointer level.
func (w *walker) trackedType(t types.Type) (pkgSuffix, typeName string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	for suffix, names := range w.b.cfg.TrackedTypes {
		if !pathMatches(path, suffix) {
			continue
		}
		for _, n := range names {
			if n == name {
				return suffix, name
			}
		}
	}
	return "", ""
}

// checkClosureRoots roots function-valued arguments of configured engine
// entry points (the per-trial closures the engines call through func
// values the graph cannot follow).
func (w *walker) checkClosureRoots(call *ast.CallExpr, callee *types.Func) {
	if !w.b.matchesClosureRoot(callee) {
		return
	}
	for _, a := range call.Args {
		switch a := ast.Unparen(a).(type) {
		case *ast.FuncLit:
			if n := w.b.litNodes[a]; n != nil {
				w.b.closureRoots = append(w.b.closureRoots, n)
			}
		case *ast.Ident:
			if fn, ok := w.pkg.Info.Uses[a].(*types.Func); ok {
				if n := w.b.g.byFunc[fn]; n != nil {
					w.b.closureRoots = append(w.b.closureRoots, n)
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := w.pkg.Info.Uses[a.Sel].(*types.Func); ok {
				if n := w.b.g.byFunc[fn]; n != nil {
					w.b.closureRoots = append(w.b.closureRoots, n)
				}
			}
		}
	}
}

func (b *builder) matchesClosureRoot(callee *types.Func) bool {
	for _, spec := range b.cfg.ClosureRoots {
		p, recv, fn, ok := parseSpec(spec)
		if !ok || fn != callee.Name() || recv != recvTypeName(callee) {
			continue
		}
		if callee.Pkg() != nil && pathMatches(callee.Pkg().Path(), p) {
			return true
		}
	}
	return false
}

// checkBoxing records interface-boxing sites: a concrete non-pointer value
// passed where the parameter type is an interface heap-allocates the boxed
// copy. Pointer(-shaped) values and nil do not.
func (w *walker) checkBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := w.typeOf(a)
		if at == nil || boxingFree(at) {
			continue
		}
		w.site(a.Pos(), "interface boxing")
	}
}

// boxingFree reports types whose conversion to interface does not allocate:
// pointers, interfaces, funcs, chans, maps, unsafe pointers, and nil.
func boxingFree(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (w *walker) site(pos token.Pos, what string) {
	w.node.Allocs = append(w.node.Allocs, AllocSite{Pos: pos, What: what, Gated: w.gated()})
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := w.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *walker) isString(e ast.Expr) bool {
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// nonNil returns the printed observer-class expressions proven non-nil when
// cond evaluates to `when`: `x != nil && y != nil` (when=true) yields both;
// `x == nil || y == nil` (when=false, i.e. the else branch or the block
// after an early return) likewise.
func (w *walker) nonNil(cond ast.Expr, when bool) []string {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return w.nonNil(c.X, when)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return w.nonNil(c.X, !when)
		}
	case *ast.BinaryExpr:
		switch {
		case (c.Op == token.LAND && when) || (c.Op == token.LOR && !when):
			return append(w.nonNil(c.X, when), w.nonNil(c.Y, when)...)
		case (c.Op == token.NEQ && when) || (c.Op == token.EQL && !when):
			if x := w.nilComparand(c); x != nil && w.observerClass(x) {
				return []string{types.ExprString(x)}
			}
		}
	}
	return nil
}

// nilComparand returns the non-nil operand of a `x OP nil` comparison.
func (w *walker) nilComparand(c *ast.BinaryExpr) ast.Expr {
	if tv, ok := w.pkg.Info.Types[c.Y]; ok && tv.IsNil() {
		return c.X
	}
	if tv, ok := w.pkg.Info.Types[c.X]; ok && tv.IsNil() {
		return c.Y
	}
	return nil
}

// observerClass reports whether e's type is one whose nil guard gates a
// cold path: an observer-package named type (possibly behind a pointer or
// slice), a func value, or an error.
func (w *walker) observerClass(e ast.Expr) bool {
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return true
	}
strip:
	for {
		switch u := t.Underlying().(type) {
		case *types.Signature:
			return true
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			break strip
		}
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	for _, suffix := range w.b.cfg.ObserverPkgs {
		if pathMatches(path, suffix) {
			return true
		}
	}
	return false
}

// terminates reports whether every path through the block ends control
// flow (return, branch, panic, os.Exit-style call is not modeled — return
// and branch cover the guard idiom).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	}
	return false
}

// stringSliceConversion reports string <-> []byte/[]rune conversions, which
// copy and allocate.
func stringSliceConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringT(to) && isByteRuneSlice(from)) || (isByteRuneSlice(to) && isStringT(from))
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
