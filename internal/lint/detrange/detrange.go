// Package detrange flags map iteration whose order can reach output in
// determinism-critical packages.
//
// The repository's headline invariant is that results, ledgers, traces and
// heatmaps are byte-identical for any worker count (see the determinism
// pins in internal/mc and internal/core). Go map iteration order is
// deliberately randomized, so a single `for k := range m` feeding a report
// row, a serialized record, or a merged shard silently breaks that — and
// only shows up as a flaky CI diff. detrange therefore treats every range
// over a map in a determinism-critical package as a finding unless the
// loop provably cannot leak order:
//
//   - `for range m` (no variables) only counts; order cannot escape.
//   - A loop whose entire body appends keys/values to slices that are
//     later passed to sort or slices functions in the same function body
//     is the canonical collect-then-sort idiom and is allowed.
//   - A loop whose single statement is `delete(m, k)` on the ranged map
//     (map clearing) is order-independent and is allowed.
//
// Anything else — including genuinely commutative folds the analyzer
// cannot prove commutative — needs a //quest:allow(detrange) directive
// with a reason, which CI counts.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"quest/internal/lint/analysis"
)

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration whose order can reach output in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		// Visit every function body; the sort-idiom search needs the
		// enclosing body, so track it while walking.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkBody(pass, info, body)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately with its own body scope
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rangeIsOrderSafe(info, body, rs) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"range over map %s: iteration order is randomized and can reach output; collect and sort keys first, or justify with //quest:allow(detrange) <reason>",
			types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		return true
	})
}

// rangeIsOrderSafe reports whether the map range statement matches one of
// the allowed order-independent idioms.
func rangeIsOrderSafe(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	// `for range m` — nothing bound, order cannot escape.
	if isBlank(rs.Key) && isBlank(rs.Value) {
		return true
	}
	if rs.Body == nil || len(rs.Body.List) == 0 {
		return true
	}
	// Map clearing: the single statement `delete(m, k)` on the ranged map.
	if len(rs.Body.List) == 1 {
		if es, ok := rs.Body.List[0].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "delete") &&
				len(call.Args) == 2 && sameObjectExpr(info, call.Args[0], rs.X) {
				return true
			}
		}
	}
	// Collect-then-sort: every statement appends to a slice, and each such
	// slice is sorted later in the same function body.
	targets := appendTargets(info, rs.Body)
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(info, funcBody, rs.End(), obj) {
			return false
		}
	}
	return true
}

// appendTargets returns the objects assigned by `x = append(x, ...)`
// statements if the whole body consists of such statements (nil otherwise).
func appendTargets(info *types.Info, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(info, call.Fun, "append") || len(call.Args) < 1 {
			return nil
		}
		if first, ok := call.Args[0].(*ast.Ident); !ok || info.Uses[first] != info.ObjectOf(lhs) {
			return nil
		}
		out = append(out, info.ObjectOf(lhs))
	}
	return out
}

// sortedAfter reports whether obj is passed to a sort or slices call at a
// position after pos within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func sameObjectExpr(info *types.Info, a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	if aok && bok {
		ao, bo := info.ObjectOf(ai), info.ObjectOf(bi)
		return ao != nil && ao == bo
	}
	return false
}
