package detrange_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", detrange.Analyzer)
}
