package a

import (
	"fmt"
	"sort"
)

func flagged(m map[string]int) {
	for k, v := range m { // want "range over map"
		fmt.Println(k, v)
	}
}

func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func deleteClearing(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

func suppressed(m map[string]int) int {
	n := 0
	//quest:allow(detrange) summing values is order-independent
	for _, v := range m { // suppressed "range over map"
		n += v
	}
	return n
}
