// Package errsink defines the errsink analyzer: ignored error results on
// the artifact-writing paths. The byte-identity contract (ledgers merge
// and resume to identical bytes; events and bandwidth profiles validate
// against their schemas) only holds if a failed write fails the run — an
// error dropped on the floor turns a full disk or closed pipe into a
// silently-truncated artifact that downstream checkers then "validate".
//
// A call is flagged when its callee lives in a sink package
// (internal/ledger, internal/events, internal/bwprofile,
// tools/internal/cli), its signature returns an error, and the caller
// discards it: a bare expression statement, a deferred call, or an
// assignment that sends every error result to blank.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"quest/internal/lint/analysis"
)

// sinkPkgs are the package-path suffixes whose error results must not be
// dropped.
var sinkPkgs = []string{
	"internal/ledger",
	"internal/events",
	"internal/bwprofile",
	"tools/internal/cli",
}

// Analyzer flags discarded error results from artifact-writing packages.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc: "error result from a ledger/events/bwprofile/cli call discarded; " +
		"a dropped write error breaks the byte-identity contract",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(pass, call, nil, "")
				}
			case *ast.DeferStmt:
				check(pass, s.Call, nil, "deferred ")
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
						check(pass, call, s.Lhs, "")
					}
				}
			}
			return true
		})
	}
	return nil
}

// check reports when call's callee is a sink-package function returning an
// error and lhs (nil for statement/defer positions) discards every error
// result.
func check(pass *analysis.Pass, call *ast.CallExpr, lhs []ast.Expr, how string) {
	callee := staticCallee(pass, call)
	if callee == nil || callee.Pkg() == nil || !isSinkPkg(callee.Pkg().Path()) {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := errorResults(sig)
	if len(errIdx) == 0 {
		return
	}
	if lhs != nil {
		// Tuple assignment: flag only when every error result goes to blank.
		if len(lhs) != sig.Results().Len() {
			return
		}
		for _, i := range errIdx {
			if id, ok := lhs[i].(*ast.Ident); !ok || id.Name != "_" {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%serror result of %s.%s discarded; check it (writer errors must fail the run)",
		how, shortPkg(callee.Pkg().Path()), callee.Name())
}

func errorResults(sig *types.Signature) []int {
	var idx []int
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func isSinkPkg(path string) bool {
	for _, s := range sinkPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// staticCallee resolves the called *types.Func, or nil for builtins,
// conversions, and dynamic calls.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.Pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
