package errsink_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/errsink"
)

func TestErrsink(t *testing.T) {
	// errsink is intraprocedural: no call graph, so cfg is nil.
	analysistest.RunTree(t, "testdata/sink", nil, errsink.Analyzer)
}
