package app

import (
	"fix/internal/ledger"
	"fix/internal/other"
)

func use(w *ledger.Writer) error {
	w.WriteCell(1)    // want "error result of ledger.WriteCell discarded"
	defer w.Flush()   // want "deferred error result of ledger.Flush discarded"
	_, _ = w.Flush()  // want "error result of ledger.Flush discarded"
	n, _ := w.Flush() // want "error result of ledger.Flush discarded"
	_ = n

	if err := w.WriteCell(2); err != nil { // ok: checked
		return err
	}
	n2, err := w.Flush() // ok: the error result is captured
	_ = n2
	if err != nil {
		return err
	}
	w.Count()      // ok: no error result
	other.Emit(3)  // ok: not a sink package
	func() error { // ok: dynamic call, no static callee
		return nil
	}()

	//quest:allow(errsink) fixture: proves the suppression engages
	w.WriteCell(3) // suppressed "error result of ledger.WriteCell discarded"
	return nil
}

func open() *ledger.Writer {
	w, _ := ledger.Open("x") // want "error result of ledger.Open discarded"
	return w
}

var _ = use
