// Package ledger mirrors the real sink package's shape: methods whose
// error results the analyzer protects. The path suffix internal/ledger is
// what makes it a sink.
package ledger

type Writer struct{ n int }

func (w *Writer) WriteCell(v int) error { return nil }

func (w *Writer) Flush() (int, error) { return w.n, nil }

func (w *Writer) Count() int { return w.n }

func Open(path string) (*Writer, error) { return &Writer{}, nil }
