// Package other is not a sink package: dropping its errors is someone
// else's problem, not errsink's.
package other

func Emit(v int) error { return nil }
