// Package gateflow defines the gateflow analyzer: the interprocedural
// extension of nogate. nogate checks, function by function and only in the
// packages it is scoped to, that observer method calls sit under a nil
// check on their receiver. gateflow closes the two gaps that leaves: a
// helper called *from* a hot path but living in an unscoped package, and a
// call that is gated — just on the wrong expression (`if shards != nil {
// parent.NewShard() }` proves nothing about parent, and with observers
// half-configured the hot loop pays for a panic or an allocation the pins
// assume away).
//
// Concretely: for every function reachable from a hot root over ungated
// call-graph edges, every call to a tracked observer type's method
// (tracing.Tracer, heatmap.Collector/Set, events.Sampler,
// bwprofile.Recorder, metrics instruments) must be dominated by a nil
// check naming exactly the call's receiver expression. Packages where
// nogate already enforces the local form are excluded to keep one finding
// per defect.
package gateflow

import (
	"strings"

	"quest/internal/lint/analysis"
)

// New builds the analyzer. exclude lists module-root-relative directory
// prefixes to skip: the nogate-scoped packages (one finding per defect) and
// the observer packages themselves (their methods call each other past the
// nil boundary by design).
func New(exclude []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "gateflow",
		Doc: "observer method reachable from a hot path without a dominating " +
			"nil check on its receiver",
		Run: func(pass *analysis.Pass) error { return run(pass, exclude) },
	}
}

func run(pass *analysis.Pass, exclude []string) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pass.Pkg.Path, g.Module), "/")
	for _, d := range exclude {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return nil
		}
	}
	for _, n := range g.NodesIn(pass.Pkg) {
		if !g.Hot(n) {
			continue
		}
		for _, tc := range n.Tracked {
			if tc.GatedOnRecv {
				continue
			}
			detail := "no dominating nil check"
			if tc.Gated {
				detail = "gated, but not on the receiver itself"
			}
			pass.Reportf(tc.Pos,
				"%s.%s.%s on hot path (%s) with %s on %q; wrap in `if %s != nil`",
				tc.PkgSuffix, tc.TypeName, tc.Method,
				g.PathString(g.HotPath(n)), detail, tc.Recv, tc.Recv)
		}
	}
	return nil
}
