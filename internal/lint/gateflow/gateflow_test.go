package gateflow_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/callgraph"
	"quest/internal/lint/gateflow"
)

func TestGateflow(t *testing.T) {
	cfg := &callgraph.Config{
		ObserverPkgs: []string{"internal/tracing"},
		TrackedTypes: map[string][]string{"internal/tracing": {"Tracer"}},
	}
	analysistest.RunTree(t, "testdata/flow", cfg,
		gateflow.New([]string{"internal/excl"}))
}
