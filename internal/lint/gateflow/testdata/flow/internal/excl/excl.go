// Package excl is listed in the analyzer's exclude set: its ungated hot
// call produces no finding (a nogate-scoped package owns the local form).
package excl

import "fix/internal/tracing"

func Skipped(tr *tracing.Tracer) {
	tr.Emit("excluded")
}
