// Package mc holds the fixture's hot entry point; the observer calls it
// reaches live in package obs, which is the cross-package case nogate
// cannot see.
package mc

import (
	"fix/internal/excl"
	"fix/internal/obs"
	"fix/internal/tracing"
)

//quest:hotpath
func Step(a, b *tracing.Tracer) {
	obs.Report(a)
	obs.WrongGuard(a, b)
	excl.Skipped(a)
}
