package obs

import "fix/internal/tracing"

func Report(tr *tracing.Tracer) {
	if tr != nil {
		tr.Emit("gated") // ok: dominated by a nil check on the receiver
	}
	tr.Emit("ungated") // want "internal/tracing.Tracer.Emit on hot path .* with no dominating nil check"
}

func WrongGuard(a, b *tracing.Tracer) {
	if a != nil {
		b.Emit("x") // want "gated, but not on the receiver itself"
	}
}

// Cold is not reachable from the hot root, so its ungated call is not a
// gateflow finding (nogate owns the local form where it is scoped).
func Cold(tr *tracing.Tracer) {
	tr.Emit("cold")
}

func suppressed(tr *tracing.Tracer) {
	run(func() {
		//quest:allow(gateflow) fixture: shutdown-only path, never per cycle
		tr.Emit("allowed") // suppressed "no dominating nil check"
	})
}

func run(f func()) { f() }

//quest:hotpath
func Hot2(tr *tracing.Tracer) { suppressed(tr) }
