package tracing

type Tracer struct{ n int }

func (t *Tracer) Emit(s string) { t.n++ }
