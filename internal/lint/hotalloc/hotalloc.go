// Package hotalloc defines the hotalloc analyzer: a static, interprocedural
// audit of the repository's pinned allocation budgets. The benchmark pins
// (TestRunWithAllocs ≤ 8 allocs/call, TestMatchHeatOffAllocs ≤ 6 allocs/op)
// catch regressions only when the benchmarks run and only on the configs
// they exercise; hotalloc makes the same contract auditable at lint time by
// counting the syntactic allocation sites reachable from each budgeted hot
// entry point over the call graph, following only edges outside observer
// nil gates (the pins are defined with observers off).
//
// The count is an over-approximation of allocs/op — a site inside a
// rarely-taken branch or a pre-grown append still counts — so each entry
// point carries its own ceiling in questvet-budgets.json, set to the
// measured clean-tree count. The ceiling moving is the signal: an extracted
// helper that allocates, a closure that grows, a map literal on a new call
// path all push the static count past the committed budget and fail lint
// before any benchmark runs.
package hotalloc

import (
	"quest/internal/lint/analysis"
	"quest/internal/lint/callgraph"
)

// A Budget pins the static allocation-site ceiling for one hot entry point.
type Budget struct {
	// Root is a callgraph function spec: "internal/mc.RunWith",
	// "internal/decoder.(*GlobalDecoder).Match".
	Root string `json:"root"`
	// MaxSites is the committed ceiling on ungated allocation sites
	// reachable from Root (measured on a clean tree; bump deliberately).
	MaxSites int `json:"max_sites"`
	// BenchAllocs, when non-zero, records the runtime allocs/op pin the
	// static budget shadows (8 for RunWith, 6 for the decoder exact-match
	// path) so the two stay cross-checked in one reviewed file.
	BenchAllocs int `json:"bench_allocs,omitempty"`
	// Note documents what the entry point covers.
	Note string `json:"note,omitempty"`
}

// New builds the analyzer for a set of budgets (typically loaded from the
// module's questvet-budgets.json). With a nil Pass.Graph it reports
// nothing; unresolved budget roots are the driver's job to reject.
func New(budgets []Budget) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotalloc",
		Doc: "allocation sites reachable from a hot entry point exceed the " +
			"committed per-root budget (questvet-budgets.json)",
		Run: func(pass *analysis.Pass) error { return run(pass, budgets) },
	}
}

type siteRef struct {
	node *callgraph.Node
	site callgraph.AllocSite
}

func run(pass *analysis.Pass, budgets []Budget) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	for _, b := range budgets {
		roots := g.Lookup(b.Root)
		if len(roots) == 0 {
			continue // the driver reports unresolved budget roots
		}
		total := 0
		var sites []siteRef
		for _, n := range g.ReachableFrom(roots...) {
			for _, s := range n.Allocs {
				if s.Gated {
					continue // observers-on path; outside the pin
				}
				total++
				sites = append(sites, siteRef{node: n, site: s})
			}
		}
		if total <= b.MaxSites {
			continue
		}
		// Summary at the entry point (in its package's pass), one line per
		// site (in the site's package's pass) so the overflow is actionable
		// wherever it lives.
		for _, root := range roots {
			if root.Pkg == pass.Pkg {
				pass.Reportf(root.Pos,
					"hot path %s has %d static allocation site(s), budget %d; trim the hot path or bump questvet-budgets.json deliberately",
					b.Root, total, b.MaxSites)
			}
		}
		for _, sr := range sites {
			if sr.node.Pkg == pass.Pkg {
				pass.Reportf(sr.site.Pos, "allocation (%s) in %s on hot path %s (over budget: %d site(s) > %d)",
					sr.site.What, g.DisplayName(sr.node), b.Root, total, b.MaxSites)
			}
		}
	}
	return nil
}
