package hotalloc_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/callgraph"
	"quest/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	// ObserverPkgs makes `if tr != nil` gate GrowTraced's append, keeping it
	// off the budget; the fixture total is exactly the three ungated sites.
	cfg := &callgraph.Config{
		ObserverPkgs: []string{"internal/tracing"},
	}
	budgets := []hotalloc.Budget{
		{Root: "a.Run", MaxSites: 2},
		{Root: "a.Under", MaxSites: 1},
	}
	analysistest.RunTree(t, "testdata/budget", cfg, hotalloc.New(budgets))
}
