// Package a holds two budgeted entry points: Run overflows its budget
// through a cross-package helper; Under stays at its ceiling.
package a

import (
	"fix/b"
	"fix/internal/tracing"
)

func Run(n int, tr *tracing.Tracer) []int { // want "hot path a.Run has 3 static allocation site.s., budget 2"
	out := make([]int, n) // want "allocation .make. in a.Run on hot path a.Run .over budget: 3 site.s. > 2."
	out = b.Grow(out)
	return b.GrowTraced(out, tr)
}

func Under() *int {
	return new(int) // within budget: no finding
}
