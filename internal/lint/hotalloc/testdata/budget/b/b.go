// Package b is the helper package whose allocations count against the
// caller's budget — the interprocedural case the benchmarks' pins cannot
// localize.
package b

import "fix/internal/tracing"

func Grow(s []int) []int {
	s = append(s, 1) // want "allocation .append. in b.Grow on hot path a.Run"
	t := &node{}     // want "allocation .&composite. in b.Grow on hot path a.Run"
	_ = t
	return s
}

// GrowTraced allocates only behind an observer gate; gated sites sit on
// the observers-on path the pins exclude, so nothing counts.
func GrowTraced(s []int, tr *tracing.Tracer) []int {
	if tr != nil {
		s = append(s, len(s))
	}
	return s
}

type node struct{ v int }
