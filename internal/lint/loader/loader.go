// Package loader type-checks the module's packages using only the standard
// library, so the questvet analyzers (internal/lint/...) can run without a
// golang.org/x/tools dependency. It is a deliberately small subset of what
// go/packages provides: non-test files only, no build tags (the tree has
// none), no cgo — enough for whole-module static analysis with full type
// information.
//
// Packages inside the module are resolved straight from the source tree and
// type-checked on demand (imports recurse through Load, which doubles as the
// topological ordering); everything else — the standard library — goes
// through go/importer's source importer so no compiled export data is
// required.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module (or an extra directory
// loaded by LoadDir, e.g. an analysistest testdata tree).
type Package struct {
	// Path is the import path ("quest/internal/mc"), or the synthetic path
	// given to LoadDir.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Program owns a shared FileSet and the set of loaded packages. It
// implements types.ImporterFrom: module-internal import paths resolve to
// packages loaded from Root, all others fall through to the stdlib source
// importer.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // absolute module root directory

	pkgs    map[string]*Package
	loading map[string]bool // cycle guard for Load
	std     types.ImporterFrom
}

// NewProgram reads go.mod under root and prepares an empty program.
func NewProgram(root string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer does not implement types.ImporterFrom")
	}
	return &Program{
		Fset:    fset,
		Module:  mod,
		Root:    abs,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     std,
	}, nil
}

// FindRoot walks up from dir to the nearest directory containing go.mod.
func FindRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// LoadModule loads and type-checks every package under the module root,
// returning them sorted by import path. Directories named "testdata" and
// hidden/underscore directories are skipped, matching the go tool.
func (pr *Program) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(pr.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != pr.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if fs, err := goFiles(path); err == nil && len(fs) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := pr.Load(pr.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (pr *Program) pathForDir(dir string) string {
	rel, err := filepath.Rel(pr.Root, dir)
	if err != nil || rel == "." {
		return pr.Module
	}
	return pr.Module + "/" + filepath.ToSlash(rel)
}

func (pr *Program) dirForPath(path string) string {
	if path == pr.Module {
		return pr.Root
	}
	return filepath.Join(pr.Root, filepath.FromSlash(strings.TrimPrefix(path, pr.Module+"/")))
}

// Load type-checks the module package with the given import path (loading
// its module-internal dependencies first) and caches the result.
func (pr *Program) Load(path string) (*Package, error) {
	if p, ok := pr.pkgs[path]; ok {
		return p, nil
	}
	if pr.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	pr.loading[path] = true
	defer delete(pr.loading, path)

	p, err := pr.loadDir(path, pr.dirForPath(path))
	if err != nil {
		return nil, err
	}
	pr.pkgs[path] = p
	return p, nil
}

// LoadDir loads the .go files of an arbitrary directory (outside the module
// walk, e.g. an analysistest testdata tree) as a package with the given
// synthetic import path. Imports of module packages resolve against the
// program's root.
func (pr *Program) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return pr.loadDir(asPath, abs)
}

func (pr *Program) loadDir(path, dir string) (*Package, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(pr.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: pr}
	tpkg, err := conf.Check(path, pr.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// goFiles lists the buildable non-test Go file names of dir, sorted.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Import implements types.Importer.
func (pr *Program) Import(path string) (*types.Package, error) {
	return pr.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module paths load from source,
// the rest (stdlib) goes through the source importer.
func (pr *Program) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == pr.Module || strings.HasPrefix(path, pr.Module+"/") {
		p, err := pr.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return pr.std.ImportFrom(path, dir, mode)
}
