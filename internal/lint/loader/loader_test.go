package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindRoot(t *testing.T) {
	got, err := FindRoot("testdata/mod/a")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := filepath.Abs("testdata/mod")
	if got != want {
		t.Errorf("FindRoot(testdata/mod/a) = %s, want %s", got, want)
	}
	// From the package directory itself the nearest go.mod is the real
	// module's.
	got, err = FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(got, "go.mod")); err != nil {
		t.Errorf("FindRoot(.) = %s, which has no go.mod", got)
	}
	if _, err := FindRoot(t.TempDir()); err == nil {
		t.Error("FindRoot above a bare temp dir should fail")
	}
}

func TestLoadModuleRecursiveImports(t *testing.T) {
	prog, err := NewProgram("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Module != "demo" {
		t.Fatalf("module = %q", prog.Module)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	// Sorted by import path; _skip is excluded (it would not type-check).
	if got := strings.Join(paths, " "); got != "demo demo/a demo/b demo/c" {
		t.Fatalf("paths = %q", got)
	}
	// demo/a type-checked against demo/b, which loaded demo/c and stdlib
	// strconv recursively: the exported function's signature is complete.
	a := pkgs[1]
	twice := a.Types.Scope().Lookup("Twice")
	if twice == nil {
		t.Fatal("demo/a has no Twice")
	}
	if got := twice.Type().String(); got != "func(x int) int" {
		t.Errorf("Twice type = %s", got)
	}
	// Loading again returns the cached package, not a re-check.
	again, err := prog.Load("demo/a")
	if err != nil {
		t.Fatal(err)
	}
	if again != a {
		t.Error("Load(demo/a) did not return the cached package")
	}
}

func TestLoadDirSyntheticPath(t *testing.T) {
	prog, err := NewProgram("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.LoadDir("testdata/mod/a", "x/a")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "x/a" || len(pkg.Files) != 1 {
		t.Fatalf("pkg = %+v", pkg)
	}
	if pkg.Types.Scope().Lookup("Twice") == nil {
		t.Error("synthetic package lost its declarations")
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	prog, err := NewProgram("testdata/cycle")
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.LoadModule()
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadModule = %v, want import-cycle error", err)
	}
}

func TestBrokenFileFails(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module broken\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"), "package p\n\nfunc {\n")
	prog, err := NewProgram(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.LoadModule()
	if err == nil || !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("LoadModule = %v, want a parse error naming bad.go", err)
	}
}

func TestTypeErrorFails(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module broken\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"), "package p\n\nvar X int = \"not an int\"\n")
	prog, err := NewProgram(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.LoadModule()
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("LoadModule = %v, want a type-checking error", err)
	}
}

func TestNewProgramRequiresGoMod(t *testing.T) {
	if _, err := NewProgram(t.TempDir()); err == nil {
		t.Error("NewProgram on a dir without go.mod should fail")
	}
}

func TestLoadDirNoGoFiles(t *testing.T) {
	prog, err := NewProgram("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.LoadDir(t.TempDir(), "empty"); err == nil ||
		!strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("LoadDir(empty) = %v, want no-Go-files error", err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
