module cyc

go 1.22
