package p

import "cyc/q"

var V = q.W
