package q

import "cyc/p"

var W = p.V
