// Package skip lives in an underscore directory; LoadModule must not see
// it (it would not even type-check in isolation).
package skip

var X = Undefined
