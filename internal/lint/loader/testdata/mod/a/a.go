package a

import "demo/b"

func Twice(x int) int { return b.Double(x) }
