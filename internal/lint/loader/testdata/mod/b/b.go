package b

import (
	"strconv"

	"demo/c"
)

func Double(x int) int { return x * c.Two }

func Format(x int) string { return strconv.Itoa(x) }
