package c

const Two = 2
