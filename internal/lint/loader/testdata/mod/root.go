// Package demo sits at the module root: its import path is the module
// path itself.
package demo

const Name = "demo"
