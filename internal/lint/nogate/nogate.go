// Package nogate flags observability calls on hot paths that are not
// nil-gated (tracing and heatmap hooks) or whose arguments could allocate
// (metrics instruments).
//
// The pinned allocation budgets — mc.RunWith ≤ 8 allocs/call with
// observers off, the decoder's exact-match path ≤ 6 allocs/op with heat
// off (TestRunWithAllocs, TestMatchHeatOffAllocs) — hold only because
// every observability hook on a hot path costs exactly one predictable
// branch when disabled. The recorder methods of *tracing.Tracer,
// *heatmap.Collector and the telemetry *events.Sampler are no-ops on a nil
// receiver, but an un-gated call still evaluates its arguments: today those
// are integer conversions,
// tomorrow someone passes fmt.Sprintf and the off path allocates. nogate
// therefore requires every call to a tracing/heatmap method in a hot-path
// package to be dominated by a nil check of the same receiver expression —
// either an enclosing `if recv != nil { ... }` or an earlier
// `if recv == nil { return }` guard in an enclosing block.
//
// Metrics instruments (*metrics.Counter, *metrics.Gauge,
// *metrics.Histogram) are registry-backed and never nil, so they cannot be
// receiver-gated; for them nogate instead requires allocation-free
// arguments: identifiers, selectors, literals, numeric arithmetic,
// conversions, len/cap/min/max, and time.Since. Anything that could
// allocate (other calls, composite or function literals, string
// concatenation) is a finding — hoist it behind an explicit enable check
// or simplify the argument.
package nogate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"quest/internal/lint/analysis"
)

// Analyzer is the nogate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nogate",
	Doc:  "flags un-nil-gated tracing/heatmap calls and allocation-risky metrics arguments on hot paths",
	Run:  run,
}

// gatedTypes need a dominating nil check of the receiver; instrumentTypes
// need allocation-free arguments. Matching is by package-path suffix so the
// analyzer works both on the real packages and on testdata stubs.
var (
	gatedTypes = map[string][]string{
		"internal/tracing":   {"Tracer"},
		"internal/heatmap":   {"Collector", "Set"},
		"internal/events":    {"Sampler"},
		"internal/bwprofile": {"Recorder"},
	}
	instrumentTypes = map[string][]string{
		"internal/metrics": {"Counter", "Gauge", "Histogram"},
	}
)

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		v := &visitor{pass: pass, info: info}
		ast.Walk(v, f)
	}
	return nil
}

type visitor struct {
	pass  *analysis.Pass
	info  *types.Info
	stack []ast.Node
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	v.stack = append(v.stack, n)
	if call, ok := n.(*ast.CallExpr); ok {
		v.check(call)
	}
	return v
}

func (v *visitor) check(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only method calls (not package-qualified function calls).
	if v.info.Selections[sel] == nil {
		return
	}
	recv := sel.X
	rt := v.info.TypeOf(recv)
	if rt == nil {
		return
	}
	pkgSuffix, typeName := namedTypeKey(rt)
	if pkgSuffix == "" {
		return
	}
	if contains(gatedTypes[pkgSuffix], typeName) {
		if !v.nilGated(recv, call) {
			v.pass.Reportf(call.Pos(),
				"call to (*%s.%s).%s is not nil-gated: wrap it in `if %s != nil { ... }` so the observers-off hot path stays allocation-free",
				lastSegment(pkgSuffix), typeName, sel.Sel.Name, types.ExprString(recv))
		}
		return
	}
	if contains(instrumentTypes[pkgSuffix], typeName) {
		for _, arg := range call.Args {
			if risky := allocRisky(v.info, arg); risky != nil {
				v.pass.Reportf(risky.Pos(),
					"argument %s to (*metrics.%s).%s may allocate on the hot path even when metrics are unused; hoist or simplify it",
					types.ExprString(risky), typeName, sel.Sel.Name)
			}
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedTypeKey resolves t to a named (possibly pointer) type declared in a
// package whose import path ends in one of the watched suffixes.
func namedTypeKey(t types.Type) (pkgSuffix, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	path := n.Obj().Pkg().Path()
	for suffix := range gatedTypes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return suffix, n.Obj().Name()
		}
	}
	for suffix := range instrumentTypes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return suffix, n.Obj().Name()
		}
	}
	return "", ""
}

// nilGated reports whether call is dominated by a nil check of recv: an
// enclosing `if <recv> != nil` whose then-branch contains the call, or a
// preceding `if <recv> == nil { return/continue/break/panic }` in an
// enclosing block. Receiver identity is syntactic (the printed expression),
// which matches how the guards are written in this repository.
func (v *visitor) nilGated(recv ast.Expr, call *ast.CallExpr) bool {
	want := types.ExprString(recv)
	// v.stack ends at the CallExpr itself; walk outward.
	for i := len(v.stack) - 1; i > 0; i-- {
		n := v.stack[i]
		parent := v.stack[i-1]
		if ifs, ok := parent.(*ast.IfStmt); ok && n == ifs.Body {
			if condImpliesNonNil(ifs.Cond, want) {
				return true
			}
		}
		// Early-return guard: a previous sibling statement in an enclosing
		// block of the form `if recv == nil { <terminal> }`.
		if blk, ok := parent.(*ast.BlockStmt); ok {
			for _, st := range blk.List {
				if st == n {
					break
				}
				if guardReturnsOnNil(st, want) {
					return true
				}
			}
		}
	}
	return false
}

// condImpliesNonNil reports whether cond, taken true, implies `want != nil`
// (as a conjunct of &&-chains).
func condImpliesNonNil(cond ast.Expr, want string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condImpliesNonNil(e.X, want) || condImpliesNonNil(e.Y, want)
		case token.NEQ:
			return isNilCompare(e, want)
		}
	}
	return false
}

// guardReturnsOnNil matches `if want == nil { ... <terminal> }` with no
// else, where the body ends in return, continue, break, goto, or panic.
func guardReturnsOnNil(st ast.Stmt, want string) bool {
	ifs, ok := st.(*ast.IfStmt)
	if !ok || ifs.Else != nil || ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL || !isNilCompare(be, want) {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isNilCompare reports whether the comparison has `want` on one side and
// the nil identifier on the other.
func isNilCompare(be *ast.BinaryExpr, want string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(be.Y) && types.ExprString(ast.Unparen(be.X)) == want {
		return true
	}
	if isNil(be.X) && types.ExprString(ast.Unparen(be.Y)) == want {
		return true
	}
	return false
}

// allocRisky returns the first sub-expression of e that could allocate, or
// nil if e is provably allocation-free at evaluation time.
func allocRisky(info *types.Info, e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.BasicLit, *ast.Ident:
		return nil
	case *ast.SelectorExpr:
		return nil // field or package selector; no evaluation cost
	case *ast.ParenExpr:
		return allocRisky(info, x.X)
	case *ast.IndexExpr:
		if r := allocRisky(info, x.X); r != nil {
			return r
		}
		return allocRisky(info, x.Index)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return x // taking an address can escape and allocate
		}
		return allocRisky(info, x.X)
	case *ast.BinaryExpr:
		if t := info.TypeOf(x); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return x // string concatenation allocates
			}
		}
		if r := allocRisky(info, x.X); r != nil {
			return r
		}
		return allocRisky(info, x.Y)
	case *ast.CallExpr:
		// Type conversions of safe operands are safe.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return allocRisky(info, x.Args[0])
			}
			return nil
		}
		// Builtins len/cap/min/max of safe operands are safe.
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max":
					for _, a := range x.Args {
						if r := allocRisky(info, a); r != nil {
							return r
						}
					}
					return nil
				}
			}
		}
		// time.Since is the one whitelisted function call: allocation-free
		// and ubiquitous in latency instruments.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Since" {
				return nil
			}
		}
		return x
	}
	return e // composite literals, func literals, anything unrecognized
}
