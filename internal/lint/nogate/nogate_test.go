package nogate_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/nogate"
)

func TestNogate(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", nogate.Analyzer)
}
