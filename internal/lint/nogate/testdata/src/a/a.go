package a

import (
	"fmt"
	"time"

	"quest/internal/bwprofile"
	"quest/internal/events"
	"quest/internal/heatmap"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

type engine struct {
	tr   *tracing.Tracer
	heat *heatmap.Collector
	smp  *events.Sampler
	bw   *bwprofile.Recorder
	ops  *metrics.Counter
	ns   *metrics.Histogram
}

func (e *engine) ungatedTracer(cycle int64) {
	e.tr.Instant("mce", 0, "tick", cycle) // want "not nil-gated"
}

func (e *engine) gatedTracer(cycle int64) {
	if e.tr != nil {
		e.tr.Instant("mce", 0, "tick", cycle)
	}
}

func (e *engine) gatedConjunct(cycle int64, busy bool) {
	if busy && e.tr != nil {
		e.tr.Span("mce", 0, "busy", cycle, 1)
	}
}

func (e *engine) guardReturn(cycle int64) {
	if e.tr == nil {
		return
	}
	e.tr.Instant("mce", 0, "tick", cycle)
}

func (e *engine) ungatedHeat(r, c int) {
	e.heat.Defect(r, c) // want "not nil-gated"
}

func (e *engine) gatedHeat(r, c int) {
	if e.heat != nil {
		e.heat.Defect(r, c)
	}
}

func (e *engine) ungatedSampler(p mc.Progress) {
	e.smp.ObserveCell("cell", p) // want "not nil-gated"
}

func (e *engine) gatedSampler(p mc.Progress) {
	if e.smp != nil {
		e.smp.ObserveCell("cell", p)
	}
}

func (e *engine) ungatedRecorder(cycle int) {
	e.bw.Observe(cycle, bwprofile.BusLogical, bwprofile.ClassPauli, 1, 2) // want "not nil-gated"
}

func (e *engine) gatedRecorder(cycle int) {
	if e.bw != nil {
		e.bw.Observe(cycle, bwprofile.BusLogical, bwprofile.ClassPauli, 1, 2)
	}
}

func (e *engine) riskyMetricArg(names []string) {
	e.ns.Observe(float64(len(fmt.Sprint(names)))) // want "may allocate"
}

func (e *engine) fineMetricArgs(start time.Time, n int) {
	e.ops.Add(uint64(n))
	e.ns.Observe(float64(time.Since(start)))
}

func (e *engine) suppressedTracer(cycle int64) {
	//quest:allow(nogate) cold path: runs once at shutdown, never per cycle
	e.tr.Instant("mce", 0, "flush", cycle) // suppressed "not nil-gated"
}
