package questvet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BaselineSchema identifies the committed findings-baseline artifact
// (questvet-baseline.json).
const BaselineSchema = "quest-lint-baseline/1"

// A Baseline pins the lint state CI accepts: the exact //quest:allow
// suppression count and any accepted findings (normally none — the tree is
// kept clean). CI diffs every run against it, so adding a suppression or a
// finding requires regenerating this reviewed file
// (`make questvet-baseline`).
type Baseline struct {
	Schema string `json:"schema"`
	// Suppressions is the exact number of //quest:allow directives in
	// force. Exact, not a maximum: a *dropped* suppression should also
	// surface in review, since it usually means the code it justified
	// changed.
	Suppressions int `json:"suppressions"`
	// Findings are accepted active findings, keyed without line numbers so
	// unrelated edits do not churn the file.
	Findings []BaselineEntry `json:"findings"`
}

// A BaselineEntry accepts Count findings with the same analyzer, file, and
// message text.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineKey struct {
	Analyzer, File, Message string
}

// MakeBaseline captures the report as a baseline.
func (r Report) MakeBaseline() Baseline {
	counts := map[baselineKey]int{}
	for _, d := range r.Active {
		counts[baselineKey{d.Analyzer, r.relPath(d.Pos.Filename), d.Message}]++
	}
	b := Baseline{Schema: BaselineSchema, Suppressions: len(r.Suppressed), Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{Analyzer: k.Analyzer, File: k.File, Message: k.Message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline serializes a baseline.
func (b Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBaseline reads and validates a baseline document.
func ParseBaseline(data []byte) (Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing baseline: %w", err)
	}
	if b.Schema != BaselineSchema {
		return Baseline{}, fmt.Errorf("baseline schema %q, want %q", b.Schema, BaselineSchema)
	}
	return b, nil
}

// Diff compares the report against a committed baseline and returns the
// problems: new findings the baseline does not accept, stale baseline
// entries no longer observed (the file must stay honest), and suppression-
// count drift in either direction. An empty slice means CI passes.
func (r Report) Diff(base Baseline) []string {
	var problems []string
	accepted := map[baselineKey]int{}
	for _, e := range base.Findings {
		accepted[baselineKey{e.Analyzer, e.File, e.Message}] = e.Count
	}
	seen := map[baselineKey]int{}
	for _, d := range r.Active {
		k := baselineKey{d.Analyzer, r.relPath(d.Pos.Filename), d.Message}
		seen[k]++
		if seen[k] > accepted[k] {
			problems = append(problems, fmt.Sprintf("new finding: %s", d))
		}
	}
	for _, e := range base.Findings {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if seen[k] < e.Count {
			problems = append(problems, fmt.Sprintf(
				"stale baseline entry (%d accepted, %d observed): [%s] %s: %s — regenerate with `make questvet-baseline`",
				e.Count, seen[k], e.Analyzer, e.File, e.Message))
		}
	}
	if len(r.Suppressed) != base.Suppressions {
		problems = append(problems, fmt.Sprintf(
			"suppression count %d, baseline pins %d; if the new //quest:allow is justified, regenerate with `make questvet-baseline` and explain it in the PR",
			len(r.Suppressed), base.Suppressions))
	}
	return problems
}
