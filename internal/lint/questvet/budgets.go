package questvet

import (
	"encoding/json"
	"fmt"

	"quest/internal/lint/hotalloc"
)

// BudgetSchema identifies the committed hot-path allocation-budget artifact
// (questvet-budgets.json).
const BudgetSchema = "quest-lint-budget/1"

// BudgetFile is the questvet-budgets.json document: per-entry-point static
// allocation ceilings, with the runtime bench pins they shadow recorded
// alongside so the two stay reviewed together.
type BudgetFile struct {
	Schema  string            `json:"schema"`
	Budgets []hotalloc.Budget `json:"budgets"`
}

// ParseBudgets reads and validates a budget document.
func ParseBudgets(data []byte) ([]hotalloc.Budget, error) {
	var f BudgetFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parsing budgets: %w", err)
	}
	if f.Schema != BudgetSchema {
		return nil, fmt.Errorf("budget schema %q, want %q", f.Schema, BudgetSchema)
	}
	for _, b := range f.Budgets {
		if b.Root == "" || b.MaxSites <= 0 {
			return nil, fmt.Errorf("budget entry %+v: root and a positive max_sites are required", b)
		}
	}
	return f.Budgets, nil
}
