package questvet

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"quest/internal/lint/analysis"
)

// ReportSchema identifies the machine-readable questvet report artifact
// (-json).
const ReportSchema = "quest-lint/1"

// relPath renders a diagnostic's file path relative to the module root
// with forward slashes, so reports and baselines are machine-independent.
func (r Report) relPath(file string) string {
	if file == "" {
		return ""
	}
	if rel, err := filepath.Rel(r.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Column   int    `json:"column,omitempty"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"`
}

type jsonReport struct {
	Schema       string     `json:"schema"`
	Module       string     `json:"module"`
	Diagnostics  []jsonDiag `json:"diagnostics"`
	Suppressions []jsonDiag `json:"suppressions"`
}

// WriteJSON emits the report as one quest-lint/1 JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Schema:       ReportSchema,
		Module:       r.Module,
		Diagnostics:  []jsonDiag{},
		Suppressions: []jsonDiag{},
	}
	for _, d := range r.Active {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Analyzer: d.Analyzer, File: r.relPath(d.Pos.Filename),
			Line: d.Pos.Line, Column: d.Pos.Column, Message: d.Message,
		})
	}
	for _, s := range r.Suppressed {
		out.Suppressions = append(out.Suppressions, jsonDiag{
			Analyzer: s.Analyzer, File: r.relPath(s.Pos.Filename),
			Line: s.Pos.Line, Column: s.Pos.Column, Message: s.Message,
			Reason: s.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton: the minimal subset GitHub code scanning and other
// SARIF consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the active diagnostics as a SARIF 2.1.0 log, one rule
// per analyzer (suppressed findings are questvet's own bookkeeping and are
// not replayed into code-scanning UIs).
func (r Report) WriteSARIF(w io.Writer) error {
	ruleDocs := map[string]string{}
	for _, sa := range Suite(nil) {
		ruleDocs[sa.Analyzer.Name] = sa.Analyzer.Doc
	}
	ruleDocs[analysis.DirectiveAnalyzer] = "problems with //quest:allow suppression directives themselves"

	used := map[string]bool{}
	results := []sarifResult{}
	for _, d := range r.Active {
		used[d.Analyzer] = true
		res := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
		}
		if d.Pos.Filename != "" {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: r.relPath(d.Pos.Filename)},
					Region:           &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}}
		}
		results = append(results, res)
	}

	var rules []sarifRule
	var names []string
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rules = append(rules, sarifRule{ID: n, ShortDescription: sarifText{Text: ruleDocs[n]}})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "questvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
