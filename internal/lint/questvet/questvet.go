// Package questvet assembles the repository's analyzer suite — the four
// machine-checked invariants behind the paper reproduction's determinism
// and zero-overhead-observability claims — and scopes each analyzer to the
// packages where its invariant is load-bearing:
//
//   - detrange (determinism-critical packages): no map iteration whose
//     order can reach results, ledgers, traces, heatmaps, or reports.
//   - nogate (hot-path packages): every tracing/heatmap hook nil-gated,
//     every metrics argument allocation-free, protecting the pinned alloc
//     budgets (mc.RunWith ≤ 8 allocs/call, decoder exact-match ≤ 6
//     allocs/op with observers off).
//   - seedsrc (simulation/MC packages): no wall clock, pid, or global
//     math/rand source; all entropy flows from the experiment seed through
//     the SplitMix64 mixers.
//   - schemaver (everywhere): serialized-artifact schema strings
//     ("quest-ledger/1", ...) defined once, as exported constants.
//
// The tools/questvet binary drives this suite over the module; the Run
// helper here is shared with its tests.
package questvet

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"quest/internal/lint/analysis"
	"quest/internal/lint/detrange"
	"quest/internal/lint/loader"
	"quest/internal/lint/nogate"
	"quest/internal/lint/schemaver"
	"quest/internal/lint/seedsrc"
)

// A ScopedAnalyzer pairs an analyzer with the internal package directories
// it applies to. An empty Dirs list means every package in the module.
type ScopedAnalyzer struct {
	Analyzer *analysis.Analyzer
	// Dirs are base names under internal/ (subpackages included).
	Dirs []string
}

// Suite returns the four analyzers with their package scopes.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		// Packages whose map-iteration order can reach serialized output or
		// report rows.
		{detrange.Analyzer, []string{"mc", "core", "decoder", "noc", "ledger", "heatmap", "tracing", "metrics", "chart", "events"}},
		// Hot-path packages covered by the pinned alloc budgets, plus the
		// telemetry sampler whose events-off calls must stay free
		// (TestObserveCellNilAllocs pins 0 allocs/op).
		{nogate.Analyzer, []string{"mce", "master", "decoder", "noc", "dram", "events"}},
		// Simulation/Monte-Carlo packages where ambient entropy would break
		// (config, seed) replayability. events is included so its wall-clock
		// reads (telemetry timestamps, the one sanctioned use) stay visibly
		// suppressed rather than silently unpoliced.
		{seedsrc.Analyzer, []string{"mc", "core", "mce", "master", "decoder", "noc", "dram", "noise", "clifford", "surface", "distill", "concat", "events"}},
		// Schema constants are a whole-module concern.
		{schemaver.Analyzer, nil},
	}
}

// Names returns the analyzer names of the suite, sorted.
func Names() []string {
	var out []string
	for _, sa := range Suite() {
		out = append(out, sa.Analyzer.Name)
	}
	sort.Strings(out)
	return out
}

// Applies reports whether the scoped analyzer runs on importPath.
func (sa ScopedAnalyzer) Applies(importPath string) bool {
	if len(sa.Dirs) == 0 {
		return true
	}
	_, rest, ok := strings.Cut(importPath+"/", "/internal/")
	if !ok {
		return false
	}
	first, _, _ := strings.Cut(rest, "/")
	for _, d := range sa.Dirs {
		if first == d {
			return true
		}
	}
	return false
}

// Report aggregates a run over many packages.
type Report struct {
	Active     []analysis.Diagnostic
	Suppressed []analysis.Suppressed
}

// Run checks every package with its applicable analyzers, then runs the
// cross-package schema-duplication check. pkgs is typically the result of
// prog.LoadModule(), optionally filtered.
func Run(prog *loader.Program, pkgs []*loader.Package) (Report, error) {
	var rep Report
	suite := Suite()
	known := Names()
	for _, pkg := range pkgs {
		var sel []*analysis.Analyzer
		for _, sa := range suite {
			if sa.Applies(pkg.Path) {
				sel = append(sel, sa.Analyzer)
			}
		}
		res, err := analysis.Check(pkg, prog.Fset, sel, known)
		if err != nil {
			return Report{}, err
		}
		rep.Active = append(rep.Active, res.Active...)
		rep.Suppressed = append(rep.Suppressed, res.Suppressed...)
	}
	rep.Active = append(rep.Active, schemaver.Duplicates(prog.Fset, pkgs)...)
	return rep, nil
}

// Write prints the report: active diagnostics (if any), then a one-line
// suppression summary; with verbose, each suppression and its reason.
// It returns the number of active diagnostics.
func (r Report) Write(w io.Writer, verbose bool) int {
	for _, d := range r.Active {
		fmt.Fprintln(w, d)
	}
	if verbose {
		for _, s := range r.Suppressed {
			fmt.Fprintf(w, "%s: [%s] suppressed: %s (reason: %s)\n", s.Pos, s.Analyzer, s.Message, s.Reason)
		}
	}
	fmt.Fprintf(w, "questvet: %d diagnostic(s), %d suppression(s) in force\n", len(r.Active), len(r.Suppressed))
	return len(r.Active)
}
