// Package questvet assembles the repository's analyzer suite — the
// machine-checked invariants behind the paper reproduction's determinism
// and zero-overhead-observability claims — and scopes each analyzer to the
// packages where its invariant is load-bearing:
//
//   - detrange (determinism-critical packages, checker tools, commands): no
//     map iteration whose order can reach results, ledgers, traces,
//     heatmaps, or reports.
//   - nogate (hot-path packages): every tracing/heatmap hook nil-gated,
//     every metrics argument allocation-free, protecting the pinned alloc
//     budgets (mc.RunWith ≤ 8 allocs/call, decoder exact-match ≤ 6
//     allocs/op with observers off).
//   - seedsrc (simulation/MC packages): no wall clock, pid, or global
//     math/rand source; all entropy flows from the experiment seed through
//     the SplitMix64 mixers.
//   - schemaver (everywhere): serialized-artifact schema strings
//     ("quest-ledger/1", ...) defined once, as exported constants.
//   - hotalloc (everywhere, interprocedural): static allocation sites
//     reachable from each budgeted hot entry point stay within the
//     committed ceilings in questvet-budgets.json.
//   - gateflow (everywhere outside nogate's scope, interprocedural):
//     observer method calls reachable from a hot root are nil-gated on
//     their receiver on every call path.
//   - errsink (everywhere): error results from ledger/events/bwprofile/cli
//     calls are never discarded.
//
// The interprocedural analyzers share one whole-module call graph
// (internal/lint/callgraph) built per run; its hot roots are the Monte-
// Carlo engines' entry points and trial closures, the global decoder's
// match path, and the MCE/master cycle loops.
//
// The tools/questvet binary drives this suite over the module; the Run
// helper here is shared with its tests.
package questvet

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"quest/internal/lint/analysis"
	"quest/internal/lint/callgraph"
	"quest/internal/lint/detrange"
	"quest/internal/lint/errsink"
	"quest/internal/lint/gateflow"
	"quest/internal/lint/hotalloc"
	"quest/internal/lint/loader"
	"quest/internal/lint/nogate"
	"quest/internal/lint/schemaver"
	"quest/internal/lint/seedsrc"
)

// A ScopedAnalyzer pairs an analyzer with the module-root-relative
// directory prefixes it applies to (subpackages included). An empty Dirs
// list means every package in the module.
type ScopedAnalyzer struct {
	Analyzer *analysis.Analyzer
	Dirs     []string
}

// nogateDirs are the hot-path packages where nogate enforces the local
// (single-function) nil-gating form; gateflow skips them so one defect
// yields one finding.
var nogateDirs = []string{
	"internal/mce", "internal/master", "internal/decoder",
	"internal/noc", "internal/dram", "internal/events",
}

// observerDirs are the observer packages themselves: their methods run
// past the nil boundary by design, so gateflow has nothing to check there.
var observerDirs = []string{
	"internal/tracing", "internal/heatmap", "internal/metrics",
	"internal/bwprofile",
}

// Suite returns the analyzers with their package scopes. budgets feeds the
// hotalloc analyzer (typically loaded from questvet-budgets.json; nil
// disables the budget audit but keeps the analyzer registered so
// //quest:allow(hotalloc) directives stay known).
func Suite(budgets []hotalloc.Budget) []ScopedAnalyzer {
	return []ScopedAnalyzer{
		// Packages whose map-iteration order can reach serialized output or
		// report rows — including every checker tool and command, whose
		// stdout is diffed by CI smoke jobs.
		{detrange.Analyzer, []string{
			"internal/mc", "internal/core", "internal/decoder", "internal/noc",
			"internal/ledger", "internal/heatmap", "internal/tracing",
			"internal/metrics", "internal/chart", "internal/events",
			"tools", "cmd",
		}},
		// Hot-path packages covered by the pinned alloc budgets, plus the
		// telemetry sampler whose events-off calls must stay free
		// (TestObserveCellNilAllocs pins 0 allocs/op).
		{nogate.Analyzer, nogateDirs},
		// Simulation/Monte-Carlo packages where ambient entropy would break
		// (config, seed) replayability. events is included so its wall-clock
		// reads (telemetry timestamps, the one sanctioned use) stay visibly
		// suppressed rather than silently unpoliced.
		{seedsrc.Analyzer, []string{
			"internal/mc", "internal/core", "internal/mce", "internal/master",
			"internal/decoder", "internal/noc", "internal/dram",
			"internal/noise", "internal/clifford", "internal/surface",
			"internal/distill", "internal/concat", "internal/events",
		}},
		// Schema constants are a whole-module concern.
		{schemaver.Analyzer, nil},
		// Interprocedural hot-path contract: alloc budgets and gate flow.
		{hotalloc.New(budgets), nil},
		{gateflow.New(append(append([]string{}, nogateDirs...), observerDirs...)), nil},
		// Dropped writer errors break byte identity wherever they happen.
		{errsink.Analyzer, nil},
	}
}

// Names returns the analyzer names of the suite, sorted.
func Names() []string {
	var out []string
	for _, sa := range Suite(nil) {
		out = append(out, sa.Analyzer.Name)
	}
	sort.Strings(out)
	return out
}

// GraphConfig declares the hot roots and observer vocabulary of the
// module's call graph: the Monte-Carlo engines (and the per-trial closures
// handed to them), the global decoder's match path, and the MCE/master
// cycle loops.
func GraphConfig() callgraph.Config {
	mcEntry := []string{
		"internal/mc.Run", "internal/mc.RunWith", "internal/mc.RunTraced",
		"internal/mc.RunObserved", "internal/mc.RunBatch",
	}
	return callgraph.Config{
		Roots: append(append([]string{}, mcEntry...),
			"internal/decoder.(*GlobalDecoder).Match",
			"internal/mce.(*MCE).StepCycle",
			"internal/master.(*Master).StepCycle",
		),
		ClosureRoots: mcEntry,
		ObserverPkgs: []string{
			"internal/tracing", "internal/heatmap", "internal/events",
			"internal/bwprofile", "internal/metrics", "internal/ledger",
		},
		TrackedTypes: map[string][]string{
			"internal/tracing":   {"Tracer"},
			"internal/heatmap":   {"Collector", "Set"},
			"internal/events":    {"Sampler"},
			"internal/bwprofile": {"Recorder"},
		},
	}
}

// Applies reports whether the scoped analyzer runs on importPath within
// module.
func (sa ScopedAnalyzer) Applies(module, importPath string) bool {
	if len(sa.Dirs) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, module), "/")
	if rel == importPath && importPath != module {
		return false // not under this module at all
	}
	for _, d := range sa.Dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// Options configures a Run.
type Options struct {
	// Budgets are the hotalloc entry-point budgets, normally loaded from
	// questvet-budgets.json at the module root.
	Budgets []hotalloc.Budget
}

// Report aggregates a run over many packages.
type Report struct {
	// Root is the module root directory; emitters relativize file paths
	// against it.
	Root string
	// Module is the module import path.
	Module     string
	Active     []analysis.Diagnostic
	Suppressed []analysis.Suppressed
}

// Run checks every package in pkgs with its applicable analyzers over a
// whole-module call graph, then runs the cross-package schema-duplication
// check. pkgs is typically the result of prog.LoadModule(); the graph is
// always built over the full module so interprocedural reachability does
// not depend on the package selection.
func Run(prog *loader.Program, pkgs []*loader.Package, opts Options) (Report, error) {
	rep := Report{Root: prog.Root, Module: prog.Module}
	suite := Suite(opts.Budgets)
	known := Names()

	all, err := prog.LoadModule()
	if err != nil {
		return Report{}, fmt.Errorf("loading module for call graph: %w", err)
	}
	g := callgraph.Build(prog, all, GraphConfig())
	// A renamed entry point or budget root must fail loudly: a spec that
	// resolves to nothing silently disables its audit.
	for _, spec := range g.UnresolvedRoots() {
		rep.Active = append(rep.Active, analysis.Diagnostic{
			Analyzer: "gateflow",
			Message:  fmt.Sprintf("hot-path root %q matches no function; update questvet.GraphConfig", spec),
		})
	}
	for _, b := range opts.Budgets {
		if len(g.Lookup(b.Root)) == 0 {
			rep.Active = append(rep.Active, analysis.Diagnostic{
				Analyzer: "hotalloc",
				Message:  fmt.Sprintf("budget root %q matches no function; update questvet-budgets.json", b.Root),
			})
		}
	}

	for _, pkg := range pkgs {
		var sel []*analysis.Analyzer
		for _, sa := range suite {
			if sa.Applies(prog.Module, pkg.Path) {
				sel = append(sel, sa.Analyzer)
			}
		}
		res, err := analysis.CheckGraph(pkg, prog.Fset, g, sel, known)
		if err != nil {
			return Report{}, err
		}
		rep.Active = append(rep.Active, res.Active...)
		rep.Suppressed = append(rep.Suppressed, res.Suppressed...)
	}
	rep.Active = append(rep.Active, schemaver.Duplicates(prog.Fset, pkgs)...)
	return rep, nil
}

// Write prints the report: active diagnostics (if any), then a one-line
// suppression summary; with verbose, each suppression and its reason.
// It returns the number of active diagnostics.
func (r Report) Write(w io.Writer, verbose bool) int {
	for _, d := range r.Active {
		fmt.Fprintln(w, d)
	}
	if verbose {
		for _, s := range r.Suppressed {
			fmt.Fprintf(w, "%s: [%s] suppressed: %s (reason: %s)\n", s.Pos, s.Analyzer, s.Message, s.Reason)
		}
	}
	fmt.Fprintf(w, "questvet: %d diagnostic(s), %d suppression(s) in force\n", len(r.Active), len(r.Suppressed))
	return len(r.Active)
}
