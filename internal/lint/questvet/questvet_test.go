package questvet

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/lint/analysis"
	"quest/internal/lint/loader"
)

func TestSuiteNamesAndScopes(t *testing.T) {
	suite := Suite(nil)
	if len(suite) != 7 {
		t.Fatalf("suite has %d analyzers, want 7", len(suite))
	}
	got := strings.Join(Names(), ",")
	if got != "detrange,errsink,gateflow,hotalloc,nogate,schemaver,seedsrc" {
		t.Fatalf("Names() = %s", got)
	}
	for _, sa := range suite {
		if sa.Analyzer.Doc == "" {
			t.Errorf("%s has no doc", sa.Analyzer.Name)
		}
	}
}

func TestAppliesScoping(t *testing.T) {
	byName := map[string]ScopedAnalyzer{}
	for _, sa := range Suite(nil) {
		byName[sa.Analyzer.Name] = sa
	}
	cases := []struct {
		analyzer, path string
		want           bool
	}{
		{"detrange", "quest/internal/mc", true},
		{"detrange", "quest/internal/noc", true},
		{"detrange", "quest/internal/mce", false},
		// Checker tools and commands emit CI-diffed output, so detrange
		// covers them now.
		{"detrange", "quest/tools/benchdiff", true},
		{"detrange", "quest/cmd/questsim", true},
		{"nogate", "quest/internal/mce", true},
		{"nogate", "quest/internal/decoder", true},
		{"nogate", "quest/internal/ledger", false},
		{"seedsrc", "quest/internal/noise", true},
		{"seedsrc", "quest/internal/chart", false},
		// Subpackages inherit their parent directory's scope.
		{"nogate", "quest/internal/decoder/sub", true},
		// Whole-module analyzers apply everywhere, tools included.
		{"schemaver", "quest/tools/ledgercheck", true},
		{"schemaver", "quest", true},
		{"errsink", "quest/internal/core", true},
		{"gateflow", "quest/internal/mc", true},
		{"hotalloc", "quest/internal/decoder", true},
	}
	for _, c := range cases {
		sa, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("no analyzer %s", c.analyzer)
		}
		if got := sa.Applies("quest", c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

func TestReportWriteCounts(t *testing.T) {
	rep := Report{
		Active: []analysis.Diagnostic{{Analyzer: "detrange", Message: "x"}},
		Suppressed: []analysis.Suppressed{
			{Diagnostic: analysis.Diagnostic{Analyzer: "seedsrc", Message: "y"}, Reason: "z"},
		},
	}
	var b strings.Builder
	if n := rep.Write(&b, true); n != 1 {
		t.Fatalf("Write returned %d, want 1", n)
	}
	out := b.String()
	for _, want := range []string{"questvet: 1 diagnostic(s), 1 suppression(s) in force", "suppressed: y (reason: z)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func testReport() Report {
	return Report{
		Root:   "/mod",
		Module: "quest",
		Active: []analysis.Diagnostic{
			{Analyzer: "errsink", Pos: token.Position{Filename: "/mod/a/a.go", Line: 10, Column: 2}, Message: "dropped"},
		},
		Suppressed: []analysis.Suppressed{
			{Diagnostic: analysis.Diagnostic{Analyzer: "seedsrc"}, Reason: "ok"},
		},
	}
}

func TestBaselineDiff(t *testing.T) {
	rep := testReport()
	base := rep.MakeBaseline()
	if base.Suppressions != 1 || len(base.Findings) != 1 {
		t.Fatalf("baseline = %+v", base)
	}
	if base.Findings[0].File != "a/a.go" {
		t.Fatalf("baseline file %q, want module-relative a/a.go", base.Findings[0].File)
	}

	// A report matching its own baseline diffs clean.
	if probs := rep.Diff(base); len(probs) != 0 {
		t.Fatalf("self-diff problems: %v", probs)
	}

	// A new finding (not in the baseline) is a problem even when the old
	// one still matches.
	grown := rep
	grown.Active = append(grown.Active, analysis.Diagnostic{
		Analyzer: "gateflow", Pos: token.Position{Filename: "/mod/b/b.go", Line: 3}, Message: "ungated",
	})
	probs := grown.Diff(base)
	if len(probs) != 1 || !strings.Contains(probs[0], "new finding") {
		t.Fatalf("grown diff = %v, want one new-finding problem", probs)
	}

	// Line moves do not churn the diff: the key has no line number.
	moved := testReport()
	moved.Active[0].Pos.Line = 99
	if probs := moved.Diff(base); len(probs) != 0 {
		t.Fatalf("moved-line diff problems: %v", probs)
	}

	// A fixed finding leaves a stale baseline entry, which must also fail
	// (the file stays honest).
	fixed := testReport()
	fixed.Active = nil
	probs = fixed.Diff(base)
	if len(probs) != 1 || !strings.Contains(probs[0], "stale baseline entry") {
		t.Fatalf("fixed diff = %v, want one stale-entry problem", probs)
	}

	// Suppression drift in either direction is a problem: the count is an
	// exact pin, not a maximum.
	for _, n := range []int{0, 2} {
		drift := testReport()
		drift.Suppressed = make([]analysis.Suppressed, n)
		probs := drift.Diff(base)
		if len(probs) != 1 || !strings.Contains(probs[0], "suppression count") {
			t.Fatalf("suppressions=%d diff = %v, want one count problem", n, probs)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base := testReport().MakeBaseline()
	var b strings.Builder
	if err := base.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBaseline([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Suppressions != base.Suppressions || len(got.Findings) != len(base.Findings) {
		t.Fatalf("round trip %+v != %+v", got, base)
	}
	if _, err := ParseBaseline([]byte(`{"schema":"quest-lint-baseline/999"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestParseBudgets(t *testing.T) {
	good := `{"schema":"quest-lint-budget/1","budgets":[{"root":"internal/mc.RunWith","max_sites":8,"bench_allocs":8}]}`
	budgets, err := ParseBudgets([]byte(good))
	if err != nil || len(budgets) != 1 || budgets[0].MaxSites != 8 {
		t.Fatalf("ParseBudgets = %+v, %v", budgets, err)
	}
	for _, bad := range []string{
		`{"schema":"quest-bench/1","budgets":[]}`,
		`{"schema":"quest-lint-budget/1","budgets":[{"root":"","max_sites":8}]}`,
		`{"schema":"quest-lint-budget/1","budgets":[{"root":"x.F","max_sites":0}]}`,
	} {
		if _, err := ParseBudgets([]byte(bad)); err == nil {
			t.Errorf("accepted bad budgets %s", bad)
		}
	}
}

func TestWriteJSONShape(t *testing.T) {
	var b strings.Builder
	if err := testReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		Diagnostics []struct {
			Analyzer, File, Message string
			Line                    int
		} `json:"diagnostics"`
		Suppressions []struct{ Reason string } `json:"suppressions"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ReportSchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Diagnostics) != 1 || doc.Diagnostics[0].File != "a/a.go" || doc.Diagnostics[0].Line != 10 {
		t.Fatalf("diagnostics %+v", doc.Diagnostics)
	}
	if len(doc.Suppressions) != 1 || doc.Suppressions[0].Reason != "ok" {
		t.Fatalf("suppressions %+v", doc.Suppressions)
	}
}

func TestWriteSARIFShape(t *testing.T) {
	var b strings.Builder
	if err := testReport().WriteSARIF(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct{ ID string }
				}
			}
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
					}
				}
			}
		}
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("sarif shape: %s", b.String())
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "questvet" || len(run.Results) != 1 {
		t.Fatalf("sarif run: %+v", run)
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "a/a.go" {
		t.Fatalf("sarif uri %q", got)
	}
}

// TestModuleCleanAgainstBaseline is the tier-1 pin for the ISSUE's
// acceptance bullet: the full suite over the real module, diffed against
// the committed baseline, reports zero problems; and the committed budget
// file cross-checks the runtime bench pins (RunWith ≤ 8 allocs/call,
// decoder exact-match ≤ 6 allocs/op).
func TestModuleCleanAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := loader.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	budgetData, err := os.ReadFile(filepath.Join(root, "questvet-budgets.json"))
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := ParseBudgets(budgetData)
	if err != nil {
		t.Fatal(err)
	}
	// The budget file must carry the two bench-pinned entry points with the
	// pins' exact values (TestRunWithAllocs in internal/mc,
	// TestMatchHeatOffAllocs in internal/decoder). If a pin changes, both
	// files change together, in review.
	pins := map[string]int{
		"internal/mc.RunWith":                     8,
		"internal/decoder.(*GlobalDecoder).Match": 6,
	}
	for root, want := range pins {
		found := false
		for _, b := range budgets {
			if b.Root == root {
				found = true
				if b.BenchAllocs != want {
					t.Errorf("budget %s bench_allocs = %d, want %d (the runtime pin)", root, b.BenchAllocs, want)
				}
			}
		}
		if !found {
			t.Errorf("questvet-budgets.json has no entry for bench-pinned root %s", root)
		}
	}

	baseData, err := os.ReadFile(filepath.Join(root, "questvet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(baseData)
	if err != nil {
		t.Fatal(err)
	}

	prog, err := loader.NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(prog, pkgs, Options{Budgets: budgets})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Diff(base) {
		t.Errorf("baseline drift: %s", p)
	}
}
