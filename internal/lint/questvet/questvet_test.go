package questvet

import (
	"strings"
	"testing"

	"quest/internal/lint/analysis"
)

func TestSuiteNamesAndScopes(t *testing.T) {
	suite := Suite()
	if len(suite) != 4 {
		t.Fatalf("suite has %d analyzers, want 4", len(suite))
	}
	got := strings.Join(Names(), ",")
	if got != "detrange,nogate,schemaver,seedsrc" {
		t.Fatalf("Names() = %s", got)
	}
	for _, sa := range suite {
		if sa.Analyzer.Doc == "" {
			t.Errorf("%s has no doc", sa.Analyzer.Name)
		}
	}
}

func TestAppliesScoping(t *testing.T) {
	byName := map[string]ScopedAnalyzer{}
	for _, sa := range Suite() {
		byName[sa.Analyzer.Name] = sa
	}
	cases := []struct {
		analyzer, path string
		want           bool
	}{
		{"detrange", "quest/internal/mc", true},
		{"detrange", "quest/internal/noc", true},
		{"detrange", "quest/internal/mce", false},
		{"detrange", "quest/tools/benchdiff", false},
		{"nogate", "quest/internal/mce", true},
		{"nogate", "quest/internal/decoder", true},
		{"nogate", "quest/internal/ledger", false},
		{"seedsrc", "quest/internal/noise", true},
		{"seedsrc", "quest/internal/chart", false},
		// Subpackages inherit their parent directory's scope.
		{"nogate", "quest/internal/decoder/sub", true},
		// Whole-module analyzers apply everywhere, tools included.
		{"schemaver", "quest/tools/ledgercheck", true},
		{"schemaver", "quest/tools/ledgermerge", true},
		{"schemaver", "quest", true},
	}
	for _, c := range cases {
		sa, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("no analyzer %s", c.analyzer)
		}
		if got := sa.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

func TestReportWriteCounts(t *testing.T) {
	rep := Report{
		Active: []analysis.Diagnostic{{Analyzer: "detrange", Message: "x"}},
		Suppressed: []analysis.Suppressed{
			{Diagnostic: analysis.Diagnostic{Analyzer: "seedsrc", Message: "y"}, Reason: "z"},
		},
	}
	var b strings.Builder
	if n := rep.Write(&b, true); n != 1 {
		t.Fatalf("Write returned %d, want 1", n)
	}
	out := b.String()
	for _, want := range []string{"questvet: 1 diagnostic(s), 1 suppression(s) in force", "suppressed: y (reason: z)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
