// Package schemaver enforces single-sourced, exported schema version
// constants for the repository's serialized artifact formats
// ("quest-bench/1", "quest-ledger/1", "quest-heatmap/1", ...).
//
// Validators (tools/benchdiff, tools/ledgercheck, tools/tracecheck), CI
// smoke jobs and external replay tooling all dispatch on these strings; a
// duplicated literal lets a format change in one place silently desynchronize
// from the checker in another. schemaver requires every schema-shaped string
// literal (`quest-<name>/<version>`) to appear exactly once, as the value of
// an exported const; all other code must reference that constant. Within a
// package it additionally flags a second exported const carrying the same
// literal; across packages the questvet driver repeats the check globally
// (Duplicates).
package schemaver

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"quest/internal/lint/analysis"
	"quest/internal/lint/loader"
)

// Analyzer is the schemaver analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "schemaver",
	Doc:  "requires schema version strings to be exported constants defined in exactly one place",
	Run:  run,
}

// Pattern matches the schema identifiers this repository uses:
// quest-<artifact>/<version>.
var Pattern = regexp.MustCompile(`^quest-[a-z0-9-]+/[0-9]+$`)

func run(pass *analysis.Pass) error {
	defined := map[string][]token.Pos{} // literal -> exported const positions in this package
	for _, f := range pass.Files {
		constLits := map[*ast.BasicLit]string{} // schema literals in allowed positions -> const name
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil || !Pattern.MatchString(s) {
						continue
					}
					constLits[lit] = name.Name
					if !name.IsExported() {
						pass.Reportf(name.Pos(),
							"schema string %q is declared by unexported const %s; export it so validators and writers share one definition", s, name.Name)
						continue
					}
					defined[s] = append(defined[s], name.Pos())
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if _, inConst := constLits[lit]; inConst {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil || !Pattern.MatchString(s) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"inline schema string %q duplicates the exported schema constant; reference the constant instead", s)
			return true
		})
	}
	for s, positions := range defined {
		if len(positions) > 1 {
			for _, pos := range positions[1:] {
				pass.Reportf(pos, "schema string %q is defined by more than one exported const in this package; keep a single source of truth", s)
			}
		}
	}
	return nil
}

// Duplicates is the cross-package companion check the questvet driver runs
// after the per-package analyzers: it reports every exported schema const
// whose literal is also defined in another package. pkgs must be the whole
// module, fset the program's file set.
func Duplicates(fset *token.FileSet, pkgs []*loader.Package) []analysis.Diagnostic {
	type site struct {
		pkg  string
		name string
		pos  token.Pos
	}
	byLiteral := map[string][]site{}
	var order []string
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i >= len(vs.Values) || !name.IsExported() {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						s, err := strconv.Unquote(lit.Value)
						if err != nil || !Pattern.MatchString(s) {
							continue
						}
						if len(byLiteral[s]) == 0 {
							order = append(order, s)
						}
						byLiteral[s] = append(byLiteral[s], site{p.Path, name.Name, name.Pos()})
					}
				}
			}
		}
	}
	var out []analysis.Diagnostic
	for _, s := range order {
		sites := byLiteral[s]
		if len(sites) < 2 {
			continue
		}
		for _, st := range sites[1:] {
			out = append(out, analysis.Diagnostic{
				Analyzer: Analyzer.Name,
				Pos:      fset.Position(st.pos),
				Message: "schema string " + strconv.Quote(s) + " is also defined as " +
					sites[0].pkg + "." + sites[0].name + "; schema versions must have a single defining constant",
			})
		}
	}
	return out
}
