package schemaver_test

import (
	"strings"
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/loader"
	"quest/internal/lint/schemaver"
)

func TestSchemaver(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", schemaver.Analyzer)
}

// TestDuplicatesAcrossPackages pins the module-wide companion check: an
// exported schema const whose literal is already defined in another package
// is a diagnostic naming the first definition.
func TestDuplicatesAcrossPackages(t *testing.T) {
	root, err := loader.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.LoadDir("testdata/src/a", "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.LoadDir("testdata/src/b", "b")
	if err != nil {
		t.Fatal(err)
	}
	diags := schemaver.Duplicates(prog.Fset, []*loader.Package{a, b})
	var crossPkg, samePkg bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, `"quest-alpha/1"`) && strings.Contains(d.Message, "a.SchemaA"):
			crossPkg = true
		case strings.Contains(d.Message, `"quest-dup/1"`):
			samePkg = true
		}
	}
	if len(diags) != 2 || !crossPkg || !samePkg {
		t.Fatalf("Duplicates returned %d diagnostics %v; want the quest-alpha/1 cross-package dup (naming a.SchemaA) and the quest-dup/1 dup", len(diags), diags)
	}
}
