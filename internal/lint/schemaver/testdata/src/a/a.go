package a

// SchemaA is the blessed single definition for the alpha artifact format.
const SchemaA = "quest-alpha/1"

const schemaHidden = "quest-hidden/2" // want "unexported const"

const (
	SchemaDup    = "quest-dup/1"
	SchemaDupTwo = "quest-dup/1" // want "more than one exported const"
)

func headerLine() string {
	return `{"schema":"` + SchemaA + `"}`
}

func inline() string {
	return "quest-alpha/1" // want "inline schema string"
}

func notSchema() string {
	return "plain string, not a schema id"
}

func suppressedInline() string {
	//quest:allow(schemaver) golden fixture exercises the raw literal deliberately
	return "quest-alpha/1" // suppressed "inline schema string"
}
