package b

// SchemaAlphaCopy re-defines a literal owned by package a; the cross-package
// Duplicates check must flag it.
const SchemaAlphaCopy = "quest-alpha/1"
