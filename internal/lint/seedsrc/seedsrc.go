// Package seedsrc forbids ambient entropy in simulation and Monte-Carlo
// packages: wall-clock time, process identity, and the global math/rand
// source.
//
// Every random draw in a simulation must flow from the experiment seed
// through the SplitMix64 mixers (mc.Derive and friends), so that a (config,
// seed) pair replays to the identical trajectory on any machine and any
// worker count. A single `time.Now().UnixNano()` seed, `os.Getpid()` mix-in,
// or call to a top-level math/rand function (which consults the global,
// process-seeded source) silently re-introduces ambient entropy and breaks
// replayability. seedsrc flags:
//
//   - calls to time.Now (wall-clock latency measurements that feed only
//     metrics histograms are legitimate; suppress those sites with
//     //quest:allow(seedsrc) and a reason saying the value never reaches
//     simulation state),
//   - calls to os.Getpid,
//   - any use of a top-level math/rand or math/rand/v2 function that draws
//     from the global source (rand.Int, rand.Float64, rand.Seed, ...).
//     Constructors that build an explicitly seeded generator (rand.New,
//     rand.NewSource, rand.NewPCG, rand.NewChaCha8, rand.NewZipf) and
//     methods on *rand.Rand values stay legal.
package seedsrc

import (
	"go/ast"
	"go/types"

	"quest/internal/lint/analysis"
)

// Analyzer is the seedsrc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seedsrc",
	Doc:  "forbids time.Now, os.Getpid, and the global math/rand source in simulation/MC packages",
	Run:  run,
}

// allowedRandFuncs are top-level math/rand functions that do not touch the
// global source: they construct explicitly seeded generators.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on *rand.Rand) are seed-disciplined
			}
			switch path, name := fn.Pkg().Path(), fn.Name(); {
			case path == "time" && name == "Now":
				pass.Reportf(sel.Pos(),
					"time.Now in a simulation/MC package: seeds and simulated time must derive from the experiment seed (SplitMix64 mixers), not the wall clock; if this only feeds a latency metric, add //quest:allow(seedsrc) with that reason")
			case path == "os" && name == "Getpid":
				pass.Reportf(sel.Pos(),
					"os.Getpid in a simulation/MC package: process identity is ambient entropy; derive per-worker streams from the experiment seed instead")
			case (path == "math/rand" || path == "math/rand/v2") && !allowedRandFuncs[name]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand flowing from the SplitMix64 seed mixers", path, name)
			}
			return true
		})
	}
	return nil
}
