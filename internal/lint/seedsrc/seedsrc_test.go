package seedsrc_test

import (
	"testing"

	"quest/internal/lint/analysistest"
	"quest/internal/lint/seedsrc"
)

func TestSeedsrc(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", seedsrc.Analyzer)
}
