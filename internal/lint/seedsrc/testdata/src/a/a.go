package a

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a simulation/MC package"
}

func pid() int {
	return os.Getpid() // want "os.Getpid in a simulation/MC package"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func latency() time.Duration {
	//quest:allow(seedsrc) wall-clock latency metric only; never reaches simulation state
	start := time.Now() // suppressed "time.Now"
	return time.Since(start)
}
