// Package master implements the master controller of §4.2: the CMOS-domain
// (77K) orchestrator that dispatches logical instructions to MCEs over a
// packet-switched network, runs the global error decoder on defect patterns
// the MCEs' local lookup tables cannot resolve, issues synchronization
// tokens, stages logical-instruction cache loads, and feeds distilled magic
// states from the T-factory tiles to the compute tiles.
//
// All global-bus traffic is metered here, split by class (logical
// instructions, sync tokens, cache loads, syndrome returns), which is what
// the Figure 14/15 experiments read out.
package master

import (
	"fmt"
	"time"

	"quest/internal/bandwidth"
	"quest/internal/bwprofile"
	"quest/internal/decoder"
	"quest/internal/distill"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/mce"
	"quest/internal/metrics"
	"quest/internal/noc"
	"quest/internal/tracing"
)

// packet is one logical instruction in flight to an MCE.
type packet struct {
	tile  int
	instr isa.LogicalInstr
}

// Config sets the network and factory parameters.
type Config struct {
	// PacketsPerCycle bounds deliveries per tile per QECC cycle (the
	// packet-switched network's per-link throughput).
	PacketsPerCycle int
	// FactoryLatency is the QECC-round latency of one distillation round;
	// zero disables the built-in factory feed.
	FactoryLatency int
	// Factories is the number of T-factory pipelines feeding the tiles.
	Factories int
	// DecodeWindow batches escalated defects over this many rounds before
	// global matching (Appendix A.2's space-time window). Values ≤ 1 decode
	// every round.
	DecodeWindow int
	// UseUnionFind selects the near-linear union-find matcher for the
	// global decoder instead of exact minimum-weight matching — the
	// latency/accuracy trade the master's decode budget may force at scale.
	UseUnionFind bool
	// UseNoC routes packets through a 2-D mesh network-on-chip model (one
	// hop per network cycle, dimension-ordered) instead of the ideal
	// per-tile queues. Latency becomes load-dependent — harmless for
	// logical traffic, which is the §3.4 point.
	UseNoC bool
	// Metrics selects the registry the controller's instruments and bus
	// meters record into (nil = metrics.Default).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records cycle-correlated dispatch/sync/cache
	// instants, global-decode spans and NoC delivery events for Perfetto
	// export; it is also handed to the per-tile window decoders and the mesh.
	// Nil falls back to tracing.Default (nil = tracing off).
	Tracer *tracing.Tracer
	// Heat, when non-nil, records every global matching's spatial footprint
	// (matched-chain endpoints and lengths) into a per-lattice-shape
	// collector, complementing the defect births the MCE histories record.
	// Nil (the default) keeps the decode path allocation-free.
	Heat *heatmap.Set
	// BW, when non-nil, buckets every bus observation into cycle windows
	// with per-µop-class attribution for the quest-bw/1 bandwidth profile.
	// Nil (the default) keeps the dispatch paths allocation-free.
	BW *bwprofile.Recorder
}

// masterInstr bundles the controller's instruments.
type masterInstr struct {
	dispatched    *metrics.Counter
	syncsSent     *metrics.Counter
	cacheBodies   *metrics.Counter
	cycles        *metrics.Counter
	escalated     *metrics.Counter
	globalDecodes *metrics.Counter
	decodeNs      *metrics.Histogram
}

func newMasterInstr(r *metrics.Registry) *masterInstr {
	return &masterInstr{
		dispatched:    r.Counter("master.dispatched"),
		syncsSent:     r.Counter("master.syncs"),
		cacheBodies:   r.Counter("master.cache.bodies"),
		cycles:        r.Counter("master.cycles"),
		escalated:     r.Counter("master.escalated"),
		globalDecodes: r.Counter("master.global.decodes"),
		decodeNs:      r.Histogram("master.decode.ns", nil),
	}
}

// Master is the controller instance.
type Master struct {
	cfg     Config
	tiles   []*mce.MCE
	global  []decoder.Matcher
	windows []*decoder.WindowDecoder

	queues [][]packet
	mesh   *noc.Mesh
	// overflow holds NoC-delivered instructions an MCE's full buffer
	// rejected; they retry ahead of fresh ejections next cycle.
	overflow [][]isa.LogicalInstr

	factories []*distill.Factory

	// Traffic meters by class.
	Logical  bandwidth.Counter
	Sync     bandwidth.Counter
	Cache    bandwidth.Counter
	Syndrome bandwidth.Counter

	in *masterInstr
	tr *tracing.Tracer
	bw *bwprofile.Recorder

	cycle          int
	escalatedTotal uint64
	globalCorr     uint64
}

// New builds a master over the given MCE tiles.
func New(cfg Config, tiles []*mce.MCE) *Master {
	if len(tiles) == 0 {
		panic("master: no tiles")
	}
	if cfg.PacketsPerCycle <= 0 {
		cfg.PacketsPerCycle = 16
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = tracing.Default
	}
	m := &Master{
		cfg:    cfg,
		tiles:  tiles,
		queues: make([][]packet, len(tiles)),
		in:     newMasterInstr(reg),
		tr:     tr,
		bw:     cfg.BW,
	}
	// Mirror the per-class bus meters into the registry so -metrics reports
	// bus traffic alongside latencies without a second accounting path.
	m.Logical.Bridge(reg.Counter("master.bus.logical.instr"), reg.Counter("master.bus.logical.bytes"))
	m.Sync.Bridge(reg.Counter("master.bus.sync.instr"), reg.Counter("master.bus.sync.bytes"))
	m.Cache.Bridge(reg.Counter("master.bus.cache.instr"), reg.Counter("master.bus.cache.bytes"))
	m.Syndrome.Bridge(reg.Counter("master.bus.syndrome.records"), reg.Counter("master.bus.syndrome.bytes"))
	for _, t := range tiles {
		var g decoder.Matcher
		if cfg.UseUnionFind {
			g = decoder.NewUnionFindDecoder(t.Layout().Lat)
		} else {
			g = decoder.NewGlobalDecoder(t.Layout().Lat)
		}
		if cfg.Heat != nil {
			lat := t.Layout().Lat
			if hs, ok := g.(interface{ SetHeat(*heatmap.Collector) }); ok {
				hs.SetHeat(cfg.Heat.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols))
			}
		}
		m.global = append(m.global, g)
		if cfg.DecodeWindow > 1 {
			w := decoder.NewWindowDecoder(g, cfg.DecodeWindow)
			w.SetTracer(tr, len(m.windows))
			m.windows = append(m.windows, w)
		} else {
			m.windows = append(m.windows, nil)
		}
	}
	for i := 0; i < cfg.Factories; i++ {
		m.factories = append(m.factories, &distill.Factory{LatencyRounds: cfg.FactoryLatency})
	}
	if cfg.UseNoC {
		// Square-ish mesh covering the tile count.
		w := 1
		for w*w < len(tiles) {
			w++
		}
		h := (len(tiles) + w - 1) / w
		m.mesh = noc.NewMesh(w, h)
		m.mesh.SetTracer(tr)
	}
	return m
}

// Tiles returns the managed MCEs.
func (m *Master) Tiles() []*mce.MCE { return m.tiles }

// Reset rewinds the controller to the state New built, rebinding the
// per-trial observation hooks (metrics shard, tracer, heat set, bandwidth
// recorder). The tiles
// are reset separately (they carry their own seeds); the decoders' lookup
// tables are trial-independent and kept. The NoC mesh carries in-flight
// packet state that no drain guarantees empty, so pooled resets are only
// supported for the ideal-queue network model.
func (m *Master) Reset(reg *metrics.Registry, tr *tracing.Tracer, heat *heatmap.Set, bw *bwprofile.Recorder) {
	if m.mesh != nil {
		panic("master: Reset with a NoC mesh is not supported; build a fresh machine")
	}
	if reg == nil {
		reg = metrics.Default
	}
	if tr == nil {
		tr = tracing.Default
	}
	for i := range m.queues {
		m.queues[i] = m.queues[i][:0]
	}
	m.overflow = nil
	for _, f := range m.factories {
		f.Reset()
	}
	m.Logical.Reset()
	m.Sync.Reset()
	m.Cache.Reset()
	m.Syndrome.Reset()
	m.Logical.Bridge(reg.Counter("master.bus.logical.instr"), reg.Counter("master.bus.logical.bytes"))
	m.Sync.Bridge(reg.Counter("master.bus.sync.instr"), reg.Counter("master.bus.sync.bytes"))
	m.Cache.Bridge(reg.Counter("master.bus.cache.instr"), reg.Counter("master.bus.cache.bytes"))
	m.Syndrome.Bridge(reg.Counter("master.bus.syndrome.records"), reg.Counter("master.bus.syndrome.bytes"))
	for i, g := range m.global {
		if hs, ok := g.(interface{ SetHeat(*heatmap.Collector) }); ok {
			var c *heatmap.Collector
			if heat != nil {
				lat := m.tiles[i].Layout().Lat
				c = heat.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols)
			}
			hs.SetHeat(c)
		}
	}
	for i, w := range m.windows {
		if w != nil {
			w.Reset()
			w.SetTracer(tr, i)
		}
	}
	m.in = newMasterInstr(reg)
	m.tr = tr
	m.bw = bw
	m.cycle = 0
	m.escalatedTotal = 0
	m.globalCorr = 0
}

// Dispatch queues one logical instruction for a tile. Bus bytes are metered
// immediately (the packet crosses the global bus when sent).
func (m *Master) Dispatch(tile int, in isa.LogicalInstr) error {
	if tile < 0 || tile >= len(m.tiles) {
		return fmt.Errorf("master: tile %d outside [0,%d)", tile, len(m.tiles))
	}
	if m.mesh != nil {
		if err := m.mesh.Inject(noc.Packet{Dst: tile, Payload: in.Encode()}); err != nil {
			return err
		}
	} else {
		m.queues[tile] = append(m.queues[tile], packet{tile: tile, instr: in})
	}
	m.Logical.Add(1, isa.LogicalInstrBytes)
	if m.bw != nil {
		m.bw.Observe(m.cycle, bwprofile.BusLogical, bwprofile.ClassOf(in.Op), 1, isa.LogicalInstrBytes)
	}
	m.in.dispatched.Inc()
	if m.tr != nil {
		m.tr.InstantArg("master", 0, "dispatch", int64(m.cycle), "tile", int64(tile))
	}
	return nil
}

// SendSync broadcasts a synchronization token to a tile (sequencing for
// cache refills and cross-MCE operations).
func (m *Master) SendSync(tile int, id uint16) error {
	in := isa.LogicalInstr{Op: isa.LSyncToken, Target: uint8(id >> 8), Arg: uint8(id & 0x3f)}
	if tile < 0 || tile >= len(m.tiles) {
		return fmt.Errorf("master: tile %d outside [0,%d)", tile, len(m.tiles))
	}
	if m.mesh != nil {
		if err := m.mesh.Inject(noc.Packet{Dst: tile, Payload: in.Encode()}); err != nil {
			return err
		}
	} else {
		m.queues[tile] = append(m.queues[tile], packet{tile: tile, instr: in})
	}
	m.Sync.Add(1, isa.LogicalInstrBytes)
	if m.bw != nil {
		m.bw.Observe(m.cycle, bwprofile.BusSync, bwprofile.ClassSync, 1, isa.LogicalInstrBytes)
	}
	m.in.syncsSent.Inc()
	if m.tr != nil {
		m.tr.InstantArg("master", 0, "sync", int64(m.cycle), "tile", int64(tile))
	}
	return nil
}

// LoadCache ships a loop body to a tile's instruction cache, metering its
// bytes once — afterwards LCacheRun tokens replay it for free.
func (m *Master) LoadCache(tile, slot int, body []isa.LogicalInstr) error {
	if tile < 0 || tile >= len(m.tiles) {
		return fmt.Errorf("master: tile %d outside [0,%d)", tile, len(m.tiles))
	}
	if err := m.tiles[tile].LoadCacheSlot(slot, body); err != nil {
		return err
	}
	m.Cache.Add(uint64(len(body)), uint64(len(body)*isa.LogicalInstrBytes))
	if m.bw != nil {
		m.bw.Observe(m.cycle, bwprofile.BusCache, bwprofile.ClassCache,
			uint64(len(body)), uint64(len(body)*isa.LogicalInstrBytes))
	}
	m.in.cacheBodies.Inc()
	if m.tr != nil {
		m.tr.InstantArg("master", 0, "cache.load", int64(m.cycle), "bytes", int64(len(body)*isa.LogicalInstrBytes))
	}
	return nil
}

// RunCached dispatches a batched cache-replay token.
func (m *Master) RunCached(tile, slot, times int) error {
	if times < 1 || times > 63 {
		return fmt.Errorf("master: cache replay count %d outside [1,63]", times)
	}
	return m.Dispatch(tile, isa.LogicalInstr{Op: isa.LCacheRun, Target: uint8(slot), Arg: uint8(times)})
}

// MoveLogical coordinates a logical-qubit move between two MCE tiles — the
// "logical qubit movement ... across MCEs" that the paper's synchronization
// tokens exist for (§7, footnote 9: the paper defines but does not evaluate
// cross-MCE logical operations; we implement the token protocol and its
// instruction traffic). The sequence: a paired sync token fences both tiles,
// the destination patch is prepared, both tiles step their masks
// (LMaskMove), and the source patch is measured out. Traffic: 2 sync tokens
// + 4 logical instructions = 12 bytes per move, independent of code
// distance.
func (m *Master) MoveLogical(srcTile, srcPatch, dstTile, dstPatch int, token uint16) error {
	if srcTile == dstTile {
		return fmt.Errorf("master: MoveLogical within tile %d (use a braid instead)", srcTile)
	}
	if err := m.SendSync(srcTile, token); err != nil {
		return err
	}
	if err := m.SendSync(dstTile, token); err != nil {
		return err
	}
	steps := []struct {
		tile int
		in   isa.LogicalInstr
	}{
		{dstTile, isa.LogicalInstr{Op: isa.LPrep0, Target: uint8(dstPatch)}},
		{srcTile, isa.LogicalInstr{Op: isa.LMaskMove, Target: uint8(srcPatch)}},
		{dstTile, isa.LogicalInstr{Op: isa.LMaskMove, Target: uint8(dstPatch)}},
		{srcTile, isa.LogicalInstr{Op: isa.LMeasX, Target: uint8(srcPatch)}},
	}
	for _, s := range steps {
		if err := m.Dispatch(s.tile, s.in); err != nil {
			return err
		}
	}
	return nil
}

// CycleReport aggregates one machine cycle.
type CycleReport struct {
	Cycle          int
	MicroOps       int
	LogicalRetired int
	Escalated      int
	GlobalMatches  int
	MagicProduced  int
	Results        []mce.LogicalResult
}

// StepCycle advances the whole machine one QECC cycle: deliver queued
// packets within the network budget, tick the factories, step every MCE, and
// globally decode escalated defects.
func (m *Master) StepCycle() CycleReport {
	rep := CycleReport{Cycle: m.cycle}

	// Network delivery.
	if m.mesh != nil {
		if m.overflow == nil {
			m.overflow = make([][]isa.LogicalInstr, len(m.tiles))
		}
		deliver := func(tile int, in isa.LogicalInstr) {
			if m.tiles[tile].FreeBufferSlots() == 0 {
				m.overflow[tile] = append(m.overflow[tile], in)
				return
			}
			if err := m.tiles[tile].Enqueue(in); err != nil {
				// A race between FreeBufferSlots and non-buffered ops is
				// impossible (control-plane ops never fill the buffer), so
				// any error here is a programming bug.
				panic(fmt.Sprintf("master: delivery failed: %v", err))
			}
		}
		for tile := range m.tiles {
			pending := m.overflow[tile]
			m.overflow[tile] = nil
			for _, in := range pending {
				deliver(tile, in)
			}
		}
		for tile, pkts := range m.mesh.Step() {
			for _, p := range pkts {
				in, err := isa.DecodeLogical(p.Payload)
				if err != nil {
					panic(fmt.Sprintf("master: corrupt packet: %v", err))
				}
				deliver(tile, in)
			}
		}
	} else {
		for tile, q := range m.queues {
			n := m.cfg.PacketsPerCycle
			// Flow control: never overrun the MCE's instruction buffer.
			if free := m.tiles[tile].FreeBufferSlots(); n > free {
				n = free
			}
			if n > len(q) {
				n = len(q)
			}
			for _, p := range q[:n] {
				if err := m.tiles[tile].Enqueue(p.instr); err != nil {
					panic(fmt.Sprintf("master: delivery failed: %v", err))
				}
			}
			if n > 0 && m.tr != nil {
				m.tr.SpanArg("noc", tile, "deliver", int64(m.cycle), 1, "pkts", int64(n))
			}
			m.queues[tile] = q[n:]
		}
	}

	// Factory feed: produced states go to the hungriest tile (smallest
	// local pool), so a tile stalled on T gates is replenished first.
	for _, f := range m.factories {
		if out := f.Tick(); out > 0 {
			hungriest := 0
			for i, t := range m.tiles {
				if t.MagicStates() < m.tiles[hungriest].MagicStates() {
					hungriest = i
				}
			}
			m.tiles[hungriest].SupplyMagicStates(out)
			rep.MagicProduced += out
			if m.tr != nil {
				m.tr.InstantArg("master", 0, "magic", int64(m.cycle), "n", int64(out))
			}
		}
	}

	// Step tiles and decode escalations.
	for i, t := range m.tiles {
		r := t.StepCycle()
		rep.MicroOps += r.MicroOpsIssued
		rep.LogicalRetired += r.LogicalRetired
		rep.Results = append(rep.Results, r.LogicalResults...)
		if len(r.DefectsEscalated) > 0 {
			rep.Escalated += len(r.DefectsEscalated)
			m.escalatedTotal += uint64(len(r.DefectsEscalated))
			m.in.escalated.Add(uint64(len(r.DefectsEscalated)))
			// Syndrome data returns over the global bus: one byte per
			// escalated defect record (position+round packed).
			m.Syndrome.Add(uint64(len(r.DefectsEscalated)), uint64(len(r.DefectsEscalated)))
			if m.bw != nil {
				m.bw.Observe(m.cycle, bwprofile.BusSyndrome, bwprofile.ClassSyndrome,
					uint64(len(r.DefectsEscalated)), uint64(len(r.DefectsEscalated)))
			}
			if m.tr != nil {
				m.tr.InstantArg("decoder", i, "escalate", int64(m.cycle), "defects", int64(len(r.DefectsEscalated)))
			}
		}
		if w := m.windows[i]; w != nil {
			if applied := w.Absorb(r.DefectsEscalated, t.Frame()); applied > 0 {
				rep.GlobalMatches += applied
				m.globalCorr++
				m.in.globalDecodes.Inc()
			}
			continue
		}
		if len(r.DefectsEscalated) > 0 {
			decodeStart := time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
			xs, zs := decoder.SplitByType(r.DefectsEscalated)
			for _, group := range [2][]decoder.Defect{xs, zs} {
				if len(group) == 0 {
					continue
				}
				match := m.global[i].Match(group)
				rep.GlobalMatches += len(match.Pairs) + len(match.ToBoundary)
				for _, c := range m.global[i].Corrections(group, match) {
					t.Frame().Apply(c)
				}
				m.globalCorr++
				m.in.globalDecodes.Inc()
			}
			m.in.decodeNs.Observe(float64(time.Since(decodeStart)))
			if m.tr != nil {
				m.tr.SpanArg("decoder", i, "global", int64(m.cycle), 1, "defects", int64(len(r.DefectsEscalated)))
			}
		}
	}
	m.cycle++
	m.in.cycles.Inc()
	return rep
}

// FlushDecodeWindows force-decodes any buffered window defects (call before
// reading out final logical results when DecodeWindow > 1).
func (m *Master) FlushDecodeWindows() {
	for i, w := range m.windows {
		if w != nil {
			if w.Flush(m.tiles[i].Frame()) > 0 {
				m.globalCorr++
			}
		}
	}
}

// RunUntilDrained steps cycles until every tile's logical backlog is empty,
// up to maxCycles. It returns the reports and whether the drain completed.
// Open decode windows are flushed on successful drain.
func (m *Master) RunUntilDrained(maxCycles int) ([]CycleReport, bool) {
	var reps []CycleReport
	for c := 0; c < maxCycles; c++ {
		reps = append(reps, m.StepCycle())
		done := m.mesh == nil || m.mesh.Pending() == 0
		if done {
			for tile, q := range m.queues {
				if len(q) > 0 || m.tiles[tile].PendingLogical() > 0 {
					done = false
					break
				}
				if m.overflow != nil && len(m.overflow[tile]) > 0 {
					done = false
					break
				}
			}
		}
		if done {
			m.FlushDecodeWindows()
			return reps, true
		}
	}
	return reps, false
}

// InstructionBusBytes returns the downstream instruction traffic (logical +
// sync + cache loads) — the quantity QuEST is designed to minimize.
func (m *Master) InstructionBusBytes() uint64 {
	return m.Logical.Bytes() + m.Sync.Bytes() + m.Cache.Bytes()
}

// Stats returns (total escalated defects, global decode invocations).
func (m *Master) Stats() (escalated, globalDecodes uint64) {
	return m.escalatedTotal, m.globalCorr
}
