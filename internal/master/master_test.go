package master

import (
	"testing"

	"quest/internal/awg"
	"quest/internal/compiler"
	"quest/internal/isa"
	"quest/internal/mce"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
)

func newMachine(t *testing.T, tiles, patches int, nm *noise.Model) *Master {
	t.Helper()
	var ms []*mce.MCE
	for i := 0; i < tiles; i++ {
		ms = append(ms, mce.New(mce.Config{
			Design:     microcode.DesignUnitCell,
			Schedule:   surface.Steane,
			Layout:     compiler.NewLayout(3, patches),
			Noise:      nm,
			Seed:       int64(i + 1),
			CacheSlots: 4,
		}))
	}
	return New(Config{PacketsPerCycle: 4, FactoryLatency: 3, Factories: 2}, ms)
}

func TestDispatchAndRetire(t *testing.T) {
	m := newMachine(t, 2, 2, nil)
	m.StepCycle() // settle
	if err := m.Dispatch(0, isa.LogicalInstr{Op: isa.LPrep0, Target: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.Dispatch(1, isa.LogicalInstr{Op: isa.LPrep0, Target: 1}); err != nil {
		t.Fatal(err)
	}
	reps, drained := m.RunUntilDrained(20)
	if !drained {
		t.Fatal("machine did not drain")
	}
	total := 0
	for _, r := range reps {
		total += r.LogicalRetired
	}
	if total != 2 {
		t.Errorf("retired %d, want 2", total)
	}
	if m.Logical.Bytes() != 4 {
		t.Errorf("logical bus bytes = %d, want 4 (2 instrs × 2B)", m.Logical.Bytes())
	}
}

func TestDispatchValidation(t *testing.T) {
	m := newMachine(t, 1, 2, nil)
	if err := m.Dispatch(5, isa.LogicalInstr{Op: isa.LH}); err == nil {
		t.Error("bad tile accepted")
	}
	if err := m.SendSync(9, 1); err == nil {
		t.Error("bad sync tile accepted")
	}
	if err := m.LoadCache(9, 0, []isa.LogicalInstr{{Op: isa.LH}}); err == nil {
		t.Error("bad cache tile accepted")
	}
	if err := m.RunCached(0, 0, 99); err == nil {
		t.Error("oversized replay count accepted")
	}
}

func TestNetworkThrottlesDeliveries(t *testing.T) {
	m := newMachine(t, 1, 2, nil)
	m.StepCycle()
	// Queue 12 frame-level Paulis; at 4 packets/cycle delivery takes 3
	// cycles even though the MCE could retire 4/cycle.
	for i := 0; i < 12; i++ {
		if err := m.Dispatch(0, isa.LogicalInstr{Op: isa.LX, Target: uint8(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	_, drained := m.RunUntilDrained(40)
	if !drained {
		t.Fatal("did not drain")
	}
	// All 12 must have retired (two patches: 2 issue slots per cycle, but
	// the per-patch serialization stretches it; correctness is drain+count).
	_, retired, _, _, _ := m.Tiles()[0].Stats()
	if retired != 12 {
		t.Errorf("retired %d, want 12", retired)
	}
}

func TestSyncTokensAreMeteredSeparately(t *testing.T) {
	m := newMachine(t, 1, 2, nil)
	if err := m.SendSync(0, 7); err != nil {
		t.Fatal(err)
	}
	if m.Sync.Bytes() != 2 || m.Logical.Bytes() != 0 {
		t.Errorf("sync/logical bytes = %d/%d", m.Sync.Bytes(), m.Logical.Bytes())
	}
	m.StepCycle()
	if m.InstructionBusBytes() != 2 {
		t.Errorf("instruction bus = %d", m.InstructionBusBytes())
	}
}

func TestCacheLoadCountsOnceReplaysAreFree(t *testing.T) {
	m := newMachine(t, 1, 2, nil)
	m.StepCycle()
	body := []isa.LogicalInstr{
		{Op: isa.LX, Target: 0}, {Op: isa.LZ, Target: 1},
		{Op: isa.LX, Target: 1}, {Op: isa.LZ, Target: 0},
	}
	if err := m.LoadCache(0, 0, body); err != nil {
		t.Fatal(err)
	}
	loadBytes := m.Cache.Bytes()
	if loadBytes != uint64(len(body)*2) {
		t.Fatalf("cache load bytes = %d", loadBytes)
	}
	if err := m.RunCached(0, 0, 10); err != nil {
		t.Fatal(err)
	}
	_, drained := m.RunUntilDrained(200)
	if !drained {
		t.Fatal("did not drain")
	}
	_, retired, hits, _, _ := m.Tiles()[0].Stats()
	if retired != uint64(10*len(body)) {
		t.Errorf("retired %d, want %d", retired, 10*len(body))
	}
	if hits != 10 {
		t.Errorf("cache hits = %d", hits)
	}
	// The 40 replayed instructions cost one 2-byte run token on the bus.
	if got := m.Logical.Bytes(); got != 2 {
		t.Errorf("bus bytes for replays = %d, want 2", got)
	}
	if m.Cache.Bytes() != loadBytes {
		t.Error("replays re-charged the cache meter")
	}
}

func TestFactoriesFeedMagicStates(t *testing.T) {
	m := newMachine(t, 1, 2, nil)
	m.StepCycle()
	if err := m.Dispatch(0, isa.LogicalInstr{Op: isa.LT, Target: 0}); err != nil {
		t.Fatal(err)
	}
	reps, drained := m.RunUntilDrained(30)
	if !drained {
		t.Fatal("T gate never satisfied")
	}
	produced := 0
	for _, r := range reps {
		produced += r.MagicProduced
	}
	if produced == 0 {
		t.Error("factories produced nothing")
	}
}

func TestGlobalDecoderEngagesUnderNoise(t *testing.T) {
	nm := noise.Uniform(2e-3)
	m := newMachine(t, 2, 2, &nm)
	for c := 0; c < 150; c++ {
		m.StepCycle()
	}
	escalated, decodes := m.Stats()
	if escalated == 0 || decodes == 0 {
		t.Errorf("global decoder idle under noise: escalated=%d decodes=%d", escalated, decodes)
	}
	if m.Syndrome.Bytes() == 0 {
		t.Error("no syndrome return traffic metered")
	}
	// Syndrome traffic is not instruction traffic.
	if m.InstructionBusBytes() != 0 {
		t.Errorf("noise generated instruction-bus traffic: %d", m.InstructionBusBytes())
	}
}

func TestDeterministicCadenceAcrossTiles(t *testing.T) {
	m := newMachine(t, 3, 2, nil)
	want := 0
	for _, tile := range m.Tiles() {
		want += tile.Layout().Lat.NumQubits() * surface.Steane.Depth
	}
	for c := 0; c < 5; c++ {
		rep := m.StepCycle()
		if rep.MicroOps != want {
			t.Fatalf("cycle %d: %d µops, want %d", c, rep.MicroOps, want)
		}
	}
}

func TestNewPanicsWithoutTiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty tile list")
		}
	}()
	New(Config{}, nil)
}

func TestWindowedDecodeMode(t *testing.T) {
	nm := noise.Uniform(2e-3)
	var ms []*mce.MCE
	for i := 0; i < 2; i++ {
		ms = append(ms, mce.New(mce.Config{
			Design:   microcode.DesignUnitCell,
			Schedule: surface.Steane,
			Layout:   compiler.NewLayout(3, 2),
			Noise:    &nm,
			Seed:     int64(i + 7),
		}))
	}
	m := New(Config{PacketsPerCycle: 4, DecodeWindow: 3}, ms)
	for c := 0; c < 90; c++ {
		m.StepCycle()
	}
	escalated, decodes := m.Stats()
	if escalated == 0 {
		t.Fatal("no escalations under noise")
	}
	if decodes == 0 {
		t.Error("windowed mode never decoded")
	}
	// Window batches: decode invocations well below escalation count.
	if decodes >= escalated {
		t.Errorf("decodes (%d) not batched below escalations (%d)", decodes, escalated)
	}
	// Flush clears any open windows.
	m.FlushDecodeWindows()
	for _, w := range m.windows {
		if w != nil && w.Pending() != 0 {
			t.Error("window still pending after flush")
		}
	}
}

func TestMoveLogicalCrossTile(t *testing.T) {
	m := newMachine(t, 2, 2, nil)
	m.StepCycle()
	before := m.InstructionBusBytes()
	if err := m.MoveLogical(0, 1, 1, 0, 42); err != nil {
		t.Fatal(err)
	}
	// 2 sync tokens + 4 instructions = 12 bytes.
	if got := m.InstructionBusBytes() - before; got != 12 {
		t.Errorf("move traffic = %d bytes, want 12", got)
	}
	reps, drained := m.RunUntilDrained(30)
	if !drained {
		t.Fatal("move did not drain")
	}
	retired := 0
	measured := 0
	for _, r := range reps {
		retired += r.LogicalRetired
		measured += len(r.Results)
	}
	if retired != 4 {
		t.Errorf("retired %d instructions, want 4", retired)
	}
	if measured != 1 {
		t.Errorf("source measure-out results = %d, want 1", measured)
	}
	if err := m.MoveLogical(0, 0, 0, 1, 1); err == nil {
		t.Error("same-tile move accepted")
	}
	if err := m.MoveLogical(0, 0, 9, 0, 1); err == nil {
		t.Error("bad destination tile accepted")
	}
}

func TestTimingAccountsRuntime(t *testing.T) {
	tm := awg.Timing{PrepNs: 40, Gate1Ns: 5, MeasNs: 35, CNOTNs: 20, IdleNs: 5}
	eng := mce.New(mce.Config{
		Design:   microcode.DesignUnitCell,
		Schedule: surface.Steane,
		Layout:   compiler.NewLayout(3, 2),
		Seed:     1,
		Timing:   &tm,
	})
	eng.StepCycle()
	// One Steane cycle: prep(40) + 4 CNOT rounds(80) + meas(35) + 3 idle
	// pads(15) = 170ns.
	if got := eng.ElapsedNs(); got != 170 {
		t.Errorf("one QECC cycle = %v ns, want 170", got)
	}
	eng.StepCycle()
	if got := eng.ElapsedNs(); got != 340 {
		t.Errorf("two cycles = %v ns", got)
	}
}

func TestUnionFindDecoderMode(t *testing.T) {
	nm := noise.Uniform(2e-3)
	var ms []*mce.MCE
	for i := 0; i < 1; i++ {
		ms = append(ms, mce.New(mce.Config{
			Design:   microcode.DesignUnitCell,
			Schedule: surface.Steane,
			Layout:   compiler.NewLayout(3, 2),
			Noise:    &nm,
			Seed:     11,
		}))
	}
	m := New(Config{PacketsPerCycle: 4, UseUnionFind: true, DecodeWindow: 3}, ms)
	for c := 0; c < 120; c++ {
		m.StepCycle()
	}
	escalated, decodes := m.Stats()
	if escalated == 0 || decodes == 0 {
		t.Errorf("union-find mode idle: escalated=%d decodes=%d", escalated, decodes)
	}
}

func TestNoCDeliveryMode(t *testing.T) {
	var ms []*mce.MCE
	for i := 0; i < 4; i++ {
		ms = append(ms, mce.New(mce.Config{
			Design:   microcode.DesignUnitCell,
			Schedule: surface.Steane,
			Layout:   compiler.NewLayout(3, 2),
			Seed:     int64(i + 1),
		}))
	}
	m := New(Config{UseNoC: true}, ms)
	m.StepCycle()
	// Dispatch work to every tile; far tiles take more network cycles but
	// everything retires.
	for tile := 0; tile < 4; tile++ {
		if err := m.Dispatch(tile, isa.LogicalInstr{Op: isa.LX, Target: 0}); err != nil {
			t.Fatal(err)
		}
		if err := m.SendSync(tile, uint16(tile)); err != nil {
			t.Fatal(err)
		}
	}
	reps, drained := m.RunUntilDrained(50)
	if !drained {
		t.Fatal("NoC machine did not drain")
	}
	retired := 0
	for _, r := range reps {
		retired += r.LogicalRetired
	}
	if retired != 4 {
		t.Errorf("retired %d, want 4", retired)
	}
	if m.InstructionBusBytes() != 16 {
		t.Errorf("bus bytes = %d, want 16 (8 packets × 2B)", m.InstructionBusBytes())
	}
	// The mesh must be fully drained.
	if m.mesh.Pending() != 0 {
		t.Error("packets stranded in the mesh")
	}
	_, delivered, mean, _ := m.mesh.Stats()
	if delivered != 8 || mean < 1 {
		t.Errorf("mesh stats: delivered=%d mean=%v", delivered, mean)
	}
}

func TestFlowControlRespectsSmallBuffers(t *testing.T) {
	eng := mce.New(mce.Config{
		Design:         microcode.DesignUnitCell,
		Schedule:       surface.Steane,
		Layout:         compiler.NewLayout(3, 2),
		Seed:           1,
		BufferCapacity: 2,
	})
	m := New(Config{PacketsPerCycle: 16}, []*mce.MCE{eng})
	m.StepCycle()
	// Flood 30 instructions; the master may only trickle 2 at a time, and
	// must never panic on a full buffer.
	for i := 0; i < 30; i++ {
		if err := m.Dispatch(0, isa.LogicalInstr{Op: isa.LX, Target: uint8(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	_, drained := m.RunUntilDrained(200)
	if !drained {
		t.Fatal("backpressured machine did not drain")
	}
	_, retired, _, _, _ := eng.Stats()
	if retired != 30 {
		t.Errorf("retired %d, want 30", retired)
	}
}

func TestMagicStatesRoutedToHungriestTile(t *testing.T) {
	m := newMachine(t, 2, 2, nil)
	m.StepCycle()
	// Pre-load tile 0 with a surplus; new production must flow to tile 1.
	m.Tiles()[0].SupplyMagicStates(10)
	for c := 0; c < 12; c++ {
		m.StepCycle()
	}
	if m.Tiles()[1].MagicStates() == 0 {
		t.Error("hungry tile received nothing")
	}
	if m.Tiles()[0].MagicStates() != 10 {
		t.Errorf("sated tile over-supplied: %d", m.Tiles()[0].MagicStates())
	}
}

func TestNoCWithBoundedBuffersDrains(t *testing.T) {
	eng := mce.New(mce.Config{
		Design:         microcode.DesignUnitCell,
		Schedule:       surface.Steane,
		Layout:         compiler.NewLayout(3, 2),
		Seed:           3,
		BufferCapacity: 2,
	})
	m := New(Config{UseNoC: true}, []*mce.MCE{eng})
	m.StepCycle()
	// Flood 25 instructions through the mesh into a 2-slot buffer: the
	// overflow queue must absorb ejections, never panic, and drain fully.
	for i := 0; i < 25; i++ {
		if err := m.Dispatch(0, isa.LogicalInstr{Op: isa.LX, Target: uint8(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	_, drained := m.RunUntilDrained(300)
	if !drained {
		t.Fatal("NoC + bounded buffer did not drain")
	}
	_, retired, _, _, _ := eng.Stats()
	if retired != 25 {
		t.Errorf("retired %d, want 25", retired)
	}
}
