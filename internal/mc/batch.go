package mc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quest/internal/heatmap"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// LaneWidth is the number of trials a batched engine packs per uint64 lane —
// one trial per bit, so noise masks and syndrome lanes combine with single
// word ops.
const LaneWidth = 64

// BatchCtx carries the per-lane observation hooks into a batched trial
// function. Shard and Trace are worker-private (like TrialCtx); Heat holds
// one trial-private shard per trial in the lane, indexed like the lane's
// seeds, so the merged heatmap stays worker-count independent under CI early
// stop exactly as in the scalar engine.
type BatchCtx struct {
	Shard *metrics.Registry
	Trace *tracing.Tracer
	// Heat is nil when heatmaps are off; otherwise Heat[i] is the private
	// shard of trial start+i.
	Heat []*heatmap.Collector
}

// BatchFn executes one lane of up to LaneWidth consecutive trials. start is
// the first trial index; seeds[i] is TrialSeed(cellSeed, start+i); out[i]
// must be filled with trial start+i's outcome. The same determinism rules as
// Run's fn apply: all randomness from the per-trial seeds, no shared mutable
// state across lanes beyond read-only tables and worker-private scratch.
type BatchFn func(start int, seeds []uint64, ctx BatchCtx, out []Outcome)

// RunBatch is RunObserved for lane-batched trial functions: workers claim
// lanes of LaneWidth consecutive trials instead of single trials, letting fn
// amortize per-trial setup (schedule compiles, decoder scratch) and bit-slice
// per-trial state across a lane. Everything derived from outcomes — Result,
// CI early stop, heat merge, the trial-order Sink — follows the scalar
// engine's semantics exactly, so a deterministic fn yields byte-identical
// ledgers for any worker count and for either engine (pinned by the core
// scalar-vs-batched equivalence tests).
//
// Observational differences from the scalar engine are confined to wall-clock
// instruments: the mc.trial.ns histogram observes the lane duration amortized
// per trial, and under CI early stop whole in-flight lanes (up to LaneWidth-1
// overrun trials per worker, rather than one) may execute past the stop point
// before workers observe it; the overrun is discarded from the Result either
// way.
func RunBatch(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer,
	obs Observers, fn BatchFn) Result {
	if trials <= 0 {
		return Result{}
	}
	lanes := (trials + LaneWidth - 1) / LaneWidth
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > lanes {
		workers = lanes
	}
	outcomes := make([]Outcome, trials)
	var nextLane atomic.Int64
	var wg sync.WaitGroup
	shards := make([]*metrics.Registry, workers)
	traces := makeTraceShards(tr, workers)
	st := newStopState(obs.CIWidth, obs.MinTrials, trials)
	prog := newProgressState(obs.Progress, obs.ProgressEvery, trials, st)
	heatParent := obs.Heat
	heatShards := makeHeatShards(heatParent, trials)
	busyNs := make([]int64, workers)
	start := wallClock()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		if reg != nil {
			shards[w] = metrics.New()
		}
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			var trace *tracing.Tracer
			if traces != nil {
				trace = traces[w]
			}
			var trialNs *metrics.Histogram
			var nTrials, nFails *metrics.Counter
			if shard != nil {
				trialNs = shard.Histogram("mc.trial.ns", metrics.LatencyBounds())
				nTrials = shard.Counter("mc.trials")
				nFails = shard.Counter("mc.failures")
			}
			var seeds [LaneWidth]uint64
			var heats []*heatmap.Collector
			for {
				l := int(nextLane.Add(1)) - 1
				if l >= lanes {
					return
				}
				lo := l * LaneWidth
				if st != nil && lo >= int(st.stopAt.Load()) {
					return
				}
				n := LaneWidth
				if lo+n > trials {
					n = trials - lo
				}
				for i := 0; i < n; i++ {
					seeds[i] = TrialSeed(cellSeed, lo+i)
				}
				// Gate on the parent, not the shard slice: they are non-nil
				// together, and the receiver gate is the form the nil-gating
				// contract (gateflow) can prove.
				if heatParent != nil {
					if heats == nil {
						heats = make([]*heatmap.Collector, LaneWidth)
					}
					heats = heats[:n]
					for i := range heats {
						heats[i] = heatParent.NewShard()
						heatShards[lo+i] = heats[i]
					}
				}
				out := outcomes[lo : lo+n]
				t0 := wallClock()
				fn(lo, seeds[:n], BatchCtx{Shard: shard, Trace: trace, Heat: heats}, out)
				dur := time.Since(t0)
				busyNs[w] += int64(dur)
				if shard != nil {
					perTrial := float64(dur) / float64(n)
					for i := 0; i < n; i++ {
						trialNs.Observe(perTrial)
					}
					nTrials.Add(uint64(n))
				}
				for i, o := range out {
					if shard != nil && o.Fail {
						nFails.Inc()
					}
					if st != nil {
						st.observe(lo+i, o.Fail)
					}
					if prog != nil {
						prog.observe(o.Fail)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if tr != nil {
		for _, shard := range traces {
			tr.Merge(shard)
		}
	}
	// The reduction below mirrors the scalar engine's tail exactly (see
	// run): effective is the trial-order prefix the Result covers, and the
	// CI-stop frontier only fires once every trial before it is done, so
	// every outcome and heat shard below the cut was executed even though
	// lanes complete out of order.
	effective := trials
	if st != nil && st.stopped {
		effective = st.stopN
	}
	if reg != nil {
		for _, shard := range shards {
			reg.Merge(shard)
		}
		var busy int64
		for _, b := range busyNs {
			busy += b
		}
		reg.Gauge("mc.worker_busy_ns").Set(float64(busy))
		if elapsed > 0 {
			reg.Gauge("mc.trials_per_sec").Set(float64(effective) / elapsed.Seconds())
			reg.Gauge("mc.worker_utilization").Set(
				float64(busy) / (float64(elapsed) * float64(workers)))
		}
		reg.Gauge("mc.workers").Set(float64(workers))
	}
	res := Result{Trials: effective}
	for _, out := range outcomes[:effective] {
		if out.Fail {
			res.Failures++
		}
		if out.Err != nil && res.Err == nil { // trial order: first error wins
			res.Err = out.Err
		}
	}
	res.Rate = float64(res.Failures) / float64(effective)
	res.WilsonLo, res.WilsonHi = Wilson(res.Failures, effective, 1.96)
	if heatParent != nil {
		for _, hs := range heatShards[:effective] {
			heatParent.Merge(hs)
		}
	}
	if obs.Sink != nil {
		for t, out := range outcomes[:effective] {
			obs.Sink(t, TrialSeed(cellSeed, t), out)
		}
	}
	if prog != nil {
		prog.mu.Lock() // pairs with worker emits; also makes -race happy
		// Budget mirrors the scalar engine's terminal snapshot (mc.go): a
		// live display keys completion bars on Completed/Budget.
		prog.fn(Progress{Completed: effective, Failures: res.Failures, Budget: prog.budget,
			WilsonLo: res.WilsonLo, WilsonHi: res.WilsonHi, Done: true})
		prog.mu.Unlock()
	}
	return res
}
