package mc

import (
	"math/rand"
	"sync"
	"testing"

	"quest/internal/metrics"
)

// batchRate is observedRate in lane-batched form: the per-trial outcome is
// the same pure function of the trial seed, so RunBatch and RunObserved must
// agree exactly.
func batchRate(rate float64) BatchFn {
	return func(start int, seeds []uint64, ctx BatchCtx, out []Outcome) {
		for i, seed := range seeds {
			rng := rand.New(rand.NewSource(int64(seed)))
			out[i] = Outcome{Fail: rng.Float64() < rate}
		}
	}
}

// TestRunBatchMatchesRunObserved pins the engine-level equivalence: for an
// outcome that is a pure function of the trial seed, RunBatch returns the
// identical Result and trial-ordered sink stream as RunObserved — across
// worker counts, ragged final lanes, sub-lane trial counts and CI early
// stop.
func TestRunBatchMatchesRunObserved(t *testing.T) {
	cell := Seed(91, F64(3e-3), 7)
	for _, tc := range []struct {
		name    string
		trials  int
		ciWidth float64
	}{
		{"sub-lane", 17, 0},
		{"exact-lanes", 128, 0},
		{"ragged", 1000, 0},
		{"ci-stop", 4000, 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			type rec struct {
				trial int
				seed  uint64
				out   Outcome
			}
			var wantSink []rec
			want := RunObserved(tc.trials, 1, cell, nil, nil, Observers{
				CIWidth: tc.ciWidth,
				Sink:    func(trial int, seed uint64, out Outcome) { wantSink = append(wantSink, rec{trial, seed, out}) },
			}, observedRate(0.3))
			for _, workers := range []int{1, 4} {
				var gotSink []rec
				got := RunBatch(tc.trials, workers, cell, nil, nil, Observers{
					CIWidth: tc.ciWidth,
					Sink:    func(trial int, seed uint64, out Outcome) { gotSink = append(gotSink, rec{trial, seed, out}) },
				}, batchRate(0.3))
				if got != want {
					t.Errorf("workers=%d: RunBatch %+v != RunObserved %+v", workers, got, want)
				}
				if len(gotSink) != len(wantSink) {
					t.Fatalf("workers=%d: sink saw %d records, want %d", workers, len(gotSink), len(wantSink))
				}
				for i := range gotSink {
					if gotSink[i] != wantSink[i] {
						t.Fatalf("workers=%d: sink record %d = %+v, want %+v", workers, i, gotSink[i], wantSink[i])
					}
				}
			}
		})
	}
}

// TestRunBatchLaneGeometry pins the lane protocol: every trial index is
// handed to fn exactly once, lanes start at LaneWidth multiples, only the
// final lane is short, and seeds[i] is TrialSeed(cell, start+i).
func TestRunBatchLaneGeometry(t *testing.T) {
	const trials = 3*LaneWidth + 11
	cell := Seed(7)
	var mu sync.Mutex
	covered := make([]int, trials)
	RunBatch(trials, 4, cell, nil, nil, Observers{},
		func(start int, seeds []uint64, ctx BatchCtx, out []Outcome) {
			mu.Lock()
			defer mu.Unlock()
			if start%LaneWidth != 0 {
				t.Errorf("lane starts at %d, not a LaneWidth multiple", start)
			}
			if len(seeds) != len(out) {
				t.Errorf("lane at %d: %d seeds but %d outcome slots", start, len(seeds), len(out))
			}
			if len(seeds) != LaneWidth && start+len(seeds) != trials {
				t.Errorf("short lane [%d,%d) is not the final lane", start, start+len(seeds))
			}
			for i, seed := range seeds {
				covered[start+i]++
				if want := TrialSeed(cell, start+i); seed != want {
					t.Errorf("trial %d seed = %#x, want %#x", start+i, seed, want)
				}
			}
		})
	for tr, n := range covered {
		if n != 1 {
			t.Errorf("trial %d executed %d times, want exactly once", tr, n)
		}
	}
}

// TestTrialNsSumMatchesBusyGauge is the regression test for the double
// time.Since bug: the engine used to read the clock once for the busy-time
// accounting and again for the mc.trial.ns observation, so the histogram's
// sum could never reconcile with the worker-utilization numbers. With one
// worker there is no cross-worker rounding, so the histogram sum must equal
// the busy gauge exactly.
func TestTrialNsSumMatchesBusyGauge(t *testing.T) {
	reg := metrics.New()
	RunObserved(200, 1, Seed(23), reg, nil, Observers{}, observedRate(0.2))
	sum := reg.Histogram("mc.trial.ns", metrics.LatencyBounds()).Summary().Sum
	busy := reg.Gauge("mc.worker_busy_ns").Value()
	if sum != busy {
		t.Errorf("mc.trial.ns sum = %v, mc.worker_busy_ns = %v; the engine read the clock twice", sum, busy)
	}

	// Same contract for the batched engine: lane durations are amortized per
	// trial, so the per-trial observations must still sum to the busy time
	// (up to float division; with one worker and exact lane sums the
	// reconstruction is n*(dur/n) per lane).
	regB := metrics.New()
	RunBatch(200, 1, Seed(23), regB, nil, Observers{}, batchRate(0.2))
	sumB := regB.Histogram("mc.trial.ns", metrics.LatencyBounds()).Summary().Sum
	busyB := regB.Gauge("mc.worker_busy_ns").Value()
	if busyB == 0 {
		t.Fatal("batched run recorded no busy time")
	}
	if rel := (sumB - busyB) / busyB; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("batched mc.trial.ns sum = %v vs busy %v (rel err %v)", sumB, busyB, rel)
	}
}

// TestProgressMonotonicUnderCIStop is the regression test for the overrun
// progress bug: with CI early stop and many workers, in-flight trials past
// the stop point used to inflate the completion-ordered counts, so a
// mid-run snapshot could exceed the final Done snapshot and the stream ran
// backwards. Snapshots must now report the trial-ordered frontier: strictly
// nondecreasing and never above the effective trial count.
func TestProgressMonotonicUnderCIStop(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	res := RunObserved(5000, 8, Seed(61, F64(0.4)), nil, nil, Observers{
		CIWidth:       0.2,
		ProgressEvery: 1, // maximal pressure: every completion emits
		Progress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	}, observedRate(0.4))
	if res.Trials >= 5000 {
		t.Fatalf("CI stop never fired (trials = %d); the test needs overrun pressure", res.Trials)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Completed != res.Trials {
		t.Fatalf("final snapshot %+v does not carry the Result count %d", last, res.Trials)
	}
	prev := 0
	for i, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Errorf("snapshot %d marked Done mid-run", i)
		}
		if p.Completed < prev {
			t.Errorf("progress ran backwards: snapshot %d reports %d after %d", i, p.Completed, prev)
		}
		prev = p.Completed
		if p.Completed > res.Trials {
			t.Errorf("snapshot %d reports %d completed trials, beyond the effective %d",
				i, p.Completed, res.Trials)
		}
	}
}
