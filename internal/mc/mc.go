// Package mc is the repository's parallel Monte-Carlo trial engine. Every
// statistical experiment — the threshold sweep, the machine-level memory
// experiment, the windowed-decoder validation — is "run N independent noisy
// trials, count failures", and decode throughput is exactly what gates
// statistical confidence (cf. the decoder micro-architectures of Das et al.
// and the feedback system of Liu et al.). Run fans trials across a bounded
// worker pool while keeping the statistics bit-identical for any worker
// count:
//
//   - each trial's randomness comes only from a per-trial seed derived with
//     a SplitMix64-style mix of (experiment seed, cell parameters, trial
//     index), never from shared RNG state or scheduling order;
//   - outcomes are recorded per trial index and reduced in trial order, so
//     the returned counts, error and confidence interval do not depend on
//     which goroutine finished first.
//
// Sweep-style experiments mix their cell parameters (error rate, distance,
// rounds, ...) into the cell seed with Seed/F64 so that no two sweep cells
// replay correlated fault patterns — the seed-reuse bug this package was
// built to kill.
package mc

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quest/internal/metrics"
	"quest/internal/tracing"
)

// Outcome is the result of a single trial.
type Outcome struct {
	// Fail marks the trial as a failure (a logical error, a wrong readout).
	Fail bool
	// Err is a trial-level execution error (machine did not drain, bad
	// config). The first error in trial order is surfaced on the Result.
	Err error
}

// Result aggregates a run. Rate carries a Wilson score interval: with a
// handful of failures out of a few hundred trials the normal approximation
// is badly miscalibrated, while Wilson stays valid down to zero failures.
type Result struct {
	Trials   int
	Failures int
	// Rate is Failures/Trials (0 for an empty run).
	Rate float64
	// WilsonLo and WilsonHi bound Rate at 95% confidence.
	WilsonLo, WilsonHi float64
	// Err is the first trial error in trial order, nil if all trials ran.
	Err error
}

// splitmix64 is the SplitMix64 output permutation (Steele, Lea & Flood) —
// a cheap, well-mixed finalizer whose increment constant is the golden
// ratio. Used both to combine seed words and to derive sub-streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed folds any number of 64-bit words (experiment seed, cell parameters,
// indices) into one well-mixed seed. Word order matters, so Seed(a, b) and
// Seed(b, a) name different streams.
func Seed(words ...uint64) uint64 {
	s := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		s = splitmix64(s ^ w)
	}
	return s
}

// F64 maps a float parameter (an error rate, a duration) to a seed word via
// its IEEE-754 bits, so distinct sweep values give distinct streams.
func F64(p float64) uint64 { return math.Float64bits(p) }

// TrialSeed derives the seed for one trial of a cell.
func TrialSeed(cellSeed uint64, trial int) uint64 {
	return Seed(cellSeed, uint64(trial))
}

// Derive splits a trial seed into independent sub-streams (tableau RNG,
// injector RNG, ...) by lane index.
func Derive(seed uint64, lane uint64) uint64 {
	return Seed(seed, lane)
}

// Wilson returns the Wilson score interval for k failures in n trials at
// normal quantile z (1.96 for 95%).
func Wilson(failures, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 0
	}
	n := float64(trials)
	p := float64(failures) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Run executes trials over a worker pool and reduces the outcomes.
//
// workers <= 0 uses GOMAXPROCS; the pool never exceeds the trial count.
// fn is called once per trial index with a seed derived from
// TrialSeed(cellSeed, trial); it must take all randomness from that seed
// and must not touch shared mutable state (shared read-only tables — a
// compiled lattice, a syndrome schedule — are fine). Under those rules the
// Result is bit-identical for every worker count.
//
// A streaming failure counter is kept while trials complete (completed
// trials are monotonic, and addition commutes), but the error, if any, is
// selected by trial order, not completion order.
func Run(trials, workers int, cellSeed uint64, fn func(trial int, seed uint64) Outcome) Result {
	return RunWith(trials, workers, cellSeed, nil,
		func(trial int, seed uint64, _ *metrics.Registry) Outcome {
			return fn(trial, seed)
		})
}

// RunWith is Run with per-worker metrics shards. Each worker goroutine owns a
// private Registry so trial instrumentation (decoder latencies, machine
// counters) is recorded without any cross-worker contention; when the pool
// drains, every shard is merged into reg in worker order. Because fixed-bucket
// histograms and counters merge by addition, the merged totals are independent
// of how trials were distributed across workers — only wall-clock gauges
// ("mc.trials_per_sec", "mc.worker_utilization") reflect this particular run.
//
// reg == nil disables aggregation: fn receives a nil shard and must not record
// (core's drivers skip SetInstr wiring in that case, keeping the metrics-off
// path allocation-free). Determinism of the simulation Result is unchanged —
// instruments observe the computation, they never feed back into it.
func RunWith(trials, workers int, cellSeed uint64, reg *metrics.Registry,
	fn func(trial int, seed uint64, shard *metrics.Registry) Outcome) Result {
	return run(trials, workers, cellSeed, reg, nil, fn, nil)
}

// RunTraced is RunWith with per-worker *tracing* shards as well: when tr is
// non-nil each worker goroutine owns a private Tracer (sized like tr) that fn
// may record trial events into without cross-worker lock contention; after
// the pool drains every shard is merged into tr in worker order. The merged
// event *multiset* is independent of how trials were distributed across
// workers, and because the exporter canonically sorts, WriteJSON output is
// byte-identical for every worker count (pinned by TestRunTracedDeterminism).
//
// tr == nil disables tracing: fn receives a nil trace shard, which every
// tracing method treats as off.
func RunTraced(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer,
	fn func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome) Result {
	return run(trials, workers, cellSeed, reg, tr, nil, fn)
}

// run is the single pool implementation behind Run/RunWith/RunTraced. Exactly
// one of fn (metrics-only) and tfn (metrics+tracing) is non-nil; taking both
// callback shapes as plain parameters — instead of adapting one into the
// other — keeps the untraced RunWith path free of wrapper-closure
// allocations, which the committed benchmark baseline counts exactly
// (threshold-cell-d3 allocs/op).
func run(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer,
	fn func(trial int, seed uint64, shard *metrics.Registry) Outcome,
	tfn func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome) Result {
	if trials <= 0 {
		return Result{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	outcomes := make([]Outcome, trials)
	var next atomic.Int64
	var failures atomic.Int64 // streaming counter; final value == trial-order count
	var wg sync.WaitGroup
	shards := make([]*metrics.Registry, workers)
	// nil when tracing is off, and assigned exactly once so the goroutine
	// closure captures the header by value: the untraced RunWith path stays
	// allocation-identical to the pre-tracing engine, which the committed
	// benchmark baseline counts exactly (threshold-cell-d3 allocs/op).
	traces := makeTraceShards(tr, workers)
	busyNs := make([]int64, workers) // per-worker time spent inside fn
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		if reg != nil {
			shards[w] = metrics.New()
		}
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			var trace *tracing.Tracer
			if traces != nil {
				trace = traces[w]
			}
			var trialNs *metrics.Histogram
			var nTrials, nFails *metrics.Counter
			if shard != nil {
				trialNs = shard.Histogram("mc.trial.ns", metrics.LatencyBounds())
				nTrials = shard.Counter("mc.trials")
				nFails = shard.Counter("mc.failures")
			}
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				t0 := time.Now()
				var out Outcome
				if tfn != nil {
					out = tfn(t, TrialSeed(cellSeed, t), shard, trace)
				} else {
					out = fn(t, TrialSeed(cellSeed, t), shard)
				}
				busyNs[w] += int64(time.Since(t0))
				if shard != nil {
					trialNs.Observe(float64(time.Since(t0)))
					nTrials.Inc()
					if out.Fail {
						nFails.Inc()
					}
				}
				outcomes[t] = out
				if out.Fail {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if tr != nil {
		for _, shard := range traces {
			tr.Merge(shard)
		}
	}
	if reg != nil {
		for _, shard := range shards {
			reg.Merge(shard)
		}
		if elapsed > 0 {
			reg.Gauge("mc.trials_per_sec").Set(float64(trials) / elapsed.Seconds())
			var busy int64
			for _, b := range busyNs {
				busy += b
			}
			reg.Gauge("mc.worker_utilization").Set(
				float64(busy) / (float64(elapsed) * float64(workers)))
		}
		reg.Gauge("mc.workers").Set(float64(workers))
	}
	res := Result{Trials: trials, Failures: int(failures.Load())}
	for _, out := range outcomes { // trial order: first error wins
		if out.Err != nil {
			res.Err = out.Err
			break
		}
	}
	res.Rate = float64(res.Failures) / float64(trials)
	res.WilsonLo, res.WilsonHi = Wilson(res.Failures, trials, 1.96)
	return res
}

// makeTraceShards builds one private Tracer per worker, each sized like the
// merge target, or returns nil when tracing is off.
func makeTraceShards(tr *tracing.Tracer, workers int) []*tracing.Tracer {
	if tr == nil {
		return nil
	}
	traces := make([]*tracing.Tracer, workers)
	for w := range traces {
		traces[w] = tracing.New(tr.Capacity())
	}
	return traces
}
