// Package mc is the repository's parallel Monte-Carlo trial engine. Every
// statistical experiment — the threshold sweep, the machine-level memory
// experiment, the windowed-decoder validation — is "run N independent noisy
// trials, count failures", and decode throughput is exactly what gates
// statistical confidence (cf. the decoder micro-architectures of Das et al.
// and the feedback system of Liu et al.). Run fans trials across a bounded
// worker pool while keeping the statistics bit-identical for any worker
// count:
//
//   - each trial's randomness comes only from a per-trial seed derived with
//     a SplitMix64-style mix of (experiment seed, cell parameters, trial
//     index), never from shared RNG state or scheduling order;
//   - outcomes are recorded per trial index and reduced in trial order, so
//     the returned counts, error and confidence interval do not depend on
//     which goroutine finished first.
//
// Sweep-style experiments mix their cell parameters (error rate, distance,
// rounds, ...) into the cell seed with Seed/F64 so that no two sweep cells
// replay correlated fault patterns — the seed-reuse bug this package was
// built to kill.
package mc

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quest/internal/bwprofile"
	"quest/internal/heatmap"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// Outcome is the result of a single trial.
type Outcome struct {
	// Fail marks the trial as a failure (a logical error, a wrong readout).
	Fail bool
	// Err is a trial-level execution error (machine did not drain, bad
	// config). The first error in trial order is surfaced on the Result.
	Err error
}

// Result aggregates a run. Rate carries a Wilson score interval: with a
// handful of failures out of a few hundred trials the normal approximation
// is badly miscalibrated, while Wilson stays valid down to zero failures.
type Result struct {
	Trials   int
	Failures int
	// Rate is Failures/Trials (0 for an empty run).
	Rate float64
	// WilsonLo and WilsonHi bound Rate at 95% confidence.
	WilsonLo, WilsonHi float64
	// Err is the first trial error in trial order, nil if all trials ran.
	Err error
}

// splitmix64 is the SplitMix64 output permutation (Steele, Lea & Flood) —
// a cheap, well-mixed finalizer whose increment constant is the golden
// ratio. Used both to combine seed words and to derive sub-streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed folds any number of 64-bit words (experiment seed, cell parameters,
// indices) into one well-mixed seed. Word order matters, so Seed(a, b) and
// Seed(b, a) name different streams.
func Seed(words ...uint64) uint64 {
	s := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		s = splitmix64(s ^ w)
	}
	return s
}

// F64 maps a float parameter (an error rate, a duration) to a seed word via
// its IEEE-754 bits, so distinct sweep values give distinct streams.
func F64(p float64) uint64 { return math.Float64bits(p) }

// TrialSeed derives the seed for one trial of a cell.
func TrialSeed(cellSeed uint64, trial int) uint64 {
	return Seed(cellSeed, uint64(trial))
}

// Derive splits a trial seed into independent sub-streams (tableau RNG,
// injector RNG, ...) by lane index.
func Derive(seed uint64, lane uint64) uint64 {
	return Seed(seed, lane)
}

// wallClock is the engine's single wall-clock read, shared by the scalar
// and batched run loops. It feeds only the mc.worker_busy_ns gauge and the
// mc.trial.ns latency histogram; seeds and simulated time derive from the
// experiment seed via the SplitMix64 mixers, never from here.
func wallClock() time.Time {
	return time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
}

// Wilson returns the Wilson score interval for k failures in n trials at
// normal quantile z (1.96 for 95%).
func Wilson(failures, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 0
	}
	n := float64(trials)
	p := float64(failures) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Run executes trials over a worker pool and reduces the outcomes.
//
// workers <= 0 uses GOMAXPROCS; the pool never exceeds the trial count.
// fn is called once per trial index with a seed derived from
// TrialSeed(cellSeed, trial); it must take all randomness from that seed
// and must not touch shared mutable state (shared read-only tables — a
// compiled lattice, a syndrome schedule — are fine). Under those rules the
// Result is bit-identical for every worker count.
//
// Failure counts and the error, if any, are reduced over the trial-indexed
// outcome store in trial order after the pool drains, never in completion
// order.
func Run(trials, workers int, cellSeed uint64, fn func(trial int, seed uint64) Outcome) Result {
	return RunWith(trials, workers, cellSeed, nil,
		func(trial int, seed uint64, _ *metrics.Registry) Outcome {
			return fn(trial, seed)
		})
}

// RunWith is Run with per-worker metrics shards. Each worker goroutine owns a
// private Registry so trial instrumentation (decoder latencies, machine
// counters) is recorded without any cross-worker contention; when the pool
// drains, every shard is merged into reg in worker order. Because fixed-bucket
// histograms and counters merge by addition, the merged totals are independent
// of how trials were distributed across workers — only wall-clock gauges
// ("mc.trials_per_sec", "mc.worker_utilization") reflect this particular run.
//
// reg == nil disables aggregation: fn receives a nil shard and must not record
// (core's drivers skip SetInstr wiring in that case, keeping the metrics-off
// path allocation-free). Determinism of the simulation Result is unchanged —
// instruments observe the computation, they never feed back into it.
func RunWith(trials, workers int, cellSeed uint64, reg *metrics.Registry,
	fn func(trial int, seed uint64, shard *metrics.Registry) Outcome) Result {
	return run(trials, workers, cellSeed, reg, nil, Observers{}, fn, nil, nil)
}

// Progress is a snapshot handed to a progress sink while a run is in
// flight. Completed and Failures count in completion order (display only —
// they may differ between runs with different worker counts until the pool
// drains); the Wilson interval is computed over exactly those counts. Under
// CI early stop the snapshots instead report the trial-ordered frontier of
// consecutive completed trials, so Completed never exceeds the effective
// trial count even when in-flight workers execute overrun trials. The
// final call of a run carries Done=true and the trial-order-exact Result
// numbers.
type Progress struct {
	Completed int
	Failures  int
	// Budget is the run's requested trial count — the denominator a live
	// display needs for percent-complete and ETA. Under CI early stop the
	// run may finish below it.
	Budget             int
	WilsonLo, WilsonHi float64
	Done               bool
}

// TrialCtx carries the per-trial observation hooks into an observed trial
// function. Any field may be nil when the corresponding observer is off;
// all three are nil-gated, so fn records unconditionally.
type TrialCtx struct {
	// Shard is the worker-private metrics registry (nil when metrics off).
	Shard *metrics.Registry
	// Trace is the worker-private tracer shard (nil when tracing off).
	Trace *tracing.Tracer
	// Heat is the trial-private heatmap shard (nil when heatmaps off).
	// Trial-private rather than worker-private so the merged heatmap stays
	// byte-identical for any worker count even under CI early stop, where
	// different worker counts execute different overrun trials.
	Heat *heatmap.Collector
	// BW is the trial-private bandwidth-profile shard (nil when profiling
	// off), trial-private for the same worker-count-invariance reason as
	// Heat.
	BW *bwprofile.Recorder
}

// Observers bundles the optional observation hooks of RunObserved. The zero
// value observes nothing and adds nothing to the hot path.
type Observers struct {
	// Progress, when non-nil, is called every ProgressEvery completed
	// trials (default trials/100, min 1) and once more with Done=true
	// after the pool drains. Calls are serialized but may come from worker
	// goroutines; keep the sink fast.
	Progress      func(Progress)
	ProgressEvery int

	// CIWidth > 0 enables adaptive early stop: the run ends at the first
	// trial count n ≥ MinTrials (default 10) whose prefix of trial-ordered
	// outcomes has a 95% Wilson interval no wider than CIWidth. The stop
	// decision is a pure function of trial-ordered outcomes — a frontier
	// over consecutive completed trials, never completion order — so the
	// effective trial count, Result and ledger are identical for any
	// worker count. Workers may execute a few trials beyond the stop
	// point before observing it; those outcomes are discarded from the
	// Result (but metrics/tracing shards, which observe execution, still
	// see them).
	CIWidth   float64
	MinTrials int

	// Heat, when non-nil, gives every trial a private shard (Heat.NewShard)
	// via TrialCtx; shards of the effective trials are merged into Heat in
	// trial order after the pool drains.
	Heat *heatmap.Collector

	// BW, when non-nil, gives every trial a private bandwidth-profile shard
	// (BW.NewShard) via TrialCtx; shards of the effective trials are merged
	// into BW in trial order after the pool drains, so the quest-bw/1
	// waveform bytes are identical for any worker count.
	BW *bwprofile.Recorder

	// Sink, when non-nil, receives every effective trial's outcome in
	// trial order after the pool drains — the ledger writer's feed. It
	// runs on the caller's goroutine.
	Sink func(trial int, seed uint64, out Outcome)

	// Prior replays previously-recorded outcomes for the run's leading
	// trials — the checkpoint/resume hook. Trial t < len(Prior) is never
	// executed: its outcome is taken verbatim from Prior[t] and fed to the
	// reduction, the CI-stop frontier and the Sink exactly as if it had
	// just run. Because outcomes are pure functions of (cellSeed, trial),
	// a Prior prefix recorded by an earlier run leaves the Result and the
	// ledger bytes identical to a full re-run — it only skips the work.
	// Prefixes longer than the trial budget are truncated. Replayed trials
	// are invisible to the wall-clock instruments (mc.trials counts only
	// executed trials) and contribute empty heat shards; RunBatch ignores
	// Prior entirely (its callers re-execute whole cells instead, which is
	// slower but byte-identical).
	Prior []Outcome
}

// defaultMinStopTrials floors the CI-stop rule: Wilson intervals over a
// handful of trials are wide but not infinitely so, and stopping a cell on
// three lucky trials would be statistics malpractice.
const defaultMinStopTrials = 10

// RunObserved is RunTraced plus the Observers hooks: live progress,
// adaptive CI early stop, per-trial heatmap shards and a trial-order
// outcome sink. A zero Observers makes it equivalent to RunTraced.
func RunObserved(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer,
	obs Observers, fn func(trial int, seed uint64, ctx TrialCtx) Outcome) Result {
	return run(trials, workers, cellSeed, reg, tr, obs, nil, nil, fn)
}

// RunTraced is RunWith with per-worker *tracing* shards as well: when tr is
// non-nil each worker goroutine owns a private Tracer (sized like tr) that fn
// may record trial events into without cross-worker lock contention; after
// the pool drains every shard is merged into tr in worker order. The merged
// event *multiset* is independent of how trials were distributed across
// workers, and because the exporter canonically sorts, WriteJSON output is
// byte-identical for every worker count (pinned by TestRunTracedDeterminism).
//
// tr == nil disables tracing: fn receives a nil trace shard, which every
// tracing method treats as off.
func RunTraced(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer,
	fn func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome) Result {
	return run(trials, workers, cellSeed, reg, tr, Observers{}, nil, fn, nil)
}

// stopState is the CI-convergence early-stop tracker. Workers report each
// finished trial; under the mutex a frontier advances over *consecutive*
// completed trials in trial order, maintaining the prefix failure count, and
// the stop rule fires at the first frontier position n ≥ minTrials whose
// Wilson interval is narrower than width. Because the frontier only ever
// consumes trial-ordered prefixes, the decision is a pure function of
// trial-ordered outcomes — completion order and worker count cannot change
// it.
type stopState struct {
	// stopAt bounds trial claiming: the trial budget until the frontier
	// fires, then the effective trial count. Read lock-free by workers.
	stopAt      atomic.Int64
	mu          sync.Mutex
	width       float64
	minTrials   int
	done        []bool
	fails       []bool
	frontier    int
	prefixFails int
	stopped     bool
	stopN       int
}

// newStopState builds the tracker, or returns nil when CI-stop is off.
func newStopState(width float64, minTrials, trials int) *stopState {
	if width <= 0 {
		return nil
	}
	if minTrials <= 0 {
		minTrials = defaultMinStopTrials
	}
	st := &stopState{
		width: width, minTrials: minTrials,
		done: make([]bool, trials), fails: make([]bool, trials),
	}
	st.stopAt.Store(int64(trials))
	return st
}

// observe records trial t's outcome and advances the frontier; on stop it
// publishes the bound through stopAt so workers cease claiming new trials.
func (st *stopState) observe(t int, fail bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stopped {
		return
	}
	st.done[t] = true
	st.fails[t] = fail
	for st.frontier < len(st.done) && st.done[st.frontier] {
		if st.fails[st.frontier] {
			st.prefixFails++
		}
		st.frontier++
		if n := st.frontier; n >= st.minTrials {
			lo, hi := Wilson(st.prefixFails, n, 1.96)
			if hi-lo <= st.width {
				st.stopped = true
				st.stopN = n
				st.stopAt.Store(int64(n))
				return
			}
		}
	}
}

// snapshot returns the trial-ordered frontier and its prefix failure count.
// The frontier is monotone and, once the stop rule fires, frozen at the
// effective trial count — which is what makes it safe to publish as live
// progress: it can never exceed the final Done snapshot.
func (st *stopState) snapshot() (completed, failures int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.frontier, st.prefixFails
}

// progressState throttles and serializes the live-progress sink.
type progressState struct {
	mu        sync.Mutex
	fn        func(Progress)
	every     int
	budget    int
	completed int
	failures  int
	// st is the CI-stop tracker when early stop is active, nil otherwise.
	// With it set, emitted snapshots report the trial-ordered frontier
	// instead of raw completion counts: workers keep executing a few
	// overrun trials after the stop point, and counting those would let an
	// intermediate Completed exceed the final Done count (the stream would
	// run backwards).
	st *stopState
}

// newProgressState builds the throttle, or returns nil when the sink is off.
func newProgressState(fn func(Progress), every, trials int, st *stopState) *progressState {
	if fn == nil {
		return nil
	}
	if every <= 0 {
		every = trials / 100
		if every < 1 {
			every = 1
		}
	}
	return &progressState{fn: fn, every: every, budget: trials, st: st}
}

func (ps *progressState) observe(fail bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.completed++
	if fail {
		ps.failures++
	}
	if ps.completed%ps.every != 0 {
		return
	}
	completed, failures := ps.completed, ps.failures
	if ps.st != nil {
		completed, failures = ps.st.snapshot()
		if completed == 0 {
			return // nothing trial-ordered to report yet
		}
	}
	lo, hi := Wilson(failures, completed, 1.96)
	ps.fn(Progress{Completed: completed, Failures: failures, Budget: ps.budget, WilsonLo: lo, WilsonHi: hi})
}

// run is the single pool implementation behind Run/RunWith/RunTraced/
// RunObserved. Exactly one of fn (metrics-only), tfn (metrics+tracing) and
// ofn (fully observed) is non-nil; taking the callback shapes as plain
// parameters — instead of adapting one into the other — keeps the untraced
// RunWith path free of wrapper-closure allocations, which the committed
// benchmark baseline and TestRunWithAllocs count exactly.
func run(trials, workers int, cellSeed uint64, reg *metrics.Registry, tr *tracing.Tracer, obs Observers,
	fn func(trial int, seed uint64, shard *metrics.Registry) Outcome,
	tfn func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome,
	ofn func(trial int, seed uint64, ctx TrialCtx) Outcome) Result {
	if trials <= 0 {
		return Result{}
	}
	// Replayed prior outcomes occupy the leading trial slots without being
	// executed: workers start claiming at the first live trial, and the
	// CI-stop frontier consumes the replayed prefix first so a resumed run
	// stops exactly where the uninterrupted run would have.
	prior := len(obs.Prior)
	if prior > trials {
		prior = trials
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials-prior {
		workers = trials - prior
	}
	outcomes := make([]Outcome, trials)
	copy(outcomes, obs.Prior[:prior])
	var next atomic.Int64
	if prior > 0 {
		next.Store(int64(prior))
	}
	var wg sync.WaitGroup
	shards := make([]*metrics.Registry, workers)
	// nil when tracing is off, and assigned exactly once so the goroutine
	// closure captures the header by value: the untraced RunWith path stays
	// allocation-identical to the pre-tracing engine, which the committed
	// benchmark baseline counts exactly (threshold-cell-d3 allocs/op).
	traces := makeTraceShards(tr, workers)
	// Observer state is nil when the corresponding Observers field is off,
	// and every local here is assigned exactly once so the goroutine
	// closure captures plain values, not heap cells: the unobserved paths
	// allocate nothing extra (pinned by TestRunWithAllocs).
	st := newStopState(obs.CIWidth, obs.MinTrials, trials)
	if st != nil {
		// Feed the replayed prefix to the stop frontier before any worker
		// starts: if the checkpointed run had already converged, stopAt
		// drops below the first live trial and no worker claims anything.
		for t := 0; t < prior; t++ {
			st.observe(t, outcomes[t].Fail)
		}
	}
	prog := newProgressState(obs.Progress, obs.ProgressEvery, trials, st)
	heatParent := obs.Heat
	heatShards := makeHeatShards(heatParent, trials)
	bwParent := obs.BW
	bwShards := makeBWShards(bwParent, trials)
	busyNs := make([]int64, workers) // per-worker time spent inside fn
	start := wallClock()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		if reg != nil {
			shards[w] = metrics.New()
		}
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			var trace *tracing.Tracer
			if traces != nil {
				trace = traces[w]
			}
			var trialNs *metrics.Histogram
			var nTrials, nFails *metrics.Counter
			if shard != nil {
				trialNs = shard.Histogram("mc.trial.ns", metrics.LatencyBounds())
				nTrials = shard.Counter("mc.trials")
				nFails = shard.Counter("mc.failures")
			}
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				if st != nil && t >= int(st.stopAt.Load()) {
					return
				}
				t0 := wallClock()
				var out Outcome
				switch {
				case ofn != nil:
					// Gate on the parents, not the shard slices: the slices
					// are non-nil exactly when the parents are, and the
					// receiver gate is the form the nil-gating contract
					// (gateflow) can prove.
					var heat *heatmap.Collector
					if heatParent != nil {
						heat = heatParent.NewShard()
						heatShards[t] = heat
					}
					var bw *bwprofile.Recorder
					if bwParent != nil {
						bw = bwParent.NewShard()
						bwShards[t] = bw
					}
					out = ofn(t, TrialSeed(cellSeed, t), TrialCtx{Shard: shard, Trace: trace, Heat: heat, BW: bw})
				case tfn != nil:
					out = tfn(t, TrialSeed(cellSeed, t), shard, trace)
				default:
					out = fn(t, TrialSeed(cellSeed, t), shard)
				}
				// Capture the duration once: busyNs (worker utilization)
				// and the mc.trial.ns histogram must observe the same
				// value, or the two can never reconcile.
				dur := time.Since(t0)
				busyNs[w] += int64(dur)
				if shard != nil {
					trialNs.Observe(float64(dur))
					nTrials.Inc()
					if out.Fail {
						nFails.Inc()
					}
				}
				outcomes[t] = out
				if st != nil {
					st.observe(t, out.Fail)
				}
				if prog != nil {
					prog.observe(out.Fail)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if tr != nil {
		for _, shard := range traces {
			tr.Merge(shard)
		}
	}
	// effective is the trial-order prefix the Result covers: the whole
	// budget, or the CI-stop point. Trials executed past the stop point by
	// in-flight workers are discarded from the Result (and from the heat
	// merge and sink below), which is what keeps everything derived from
	// outcomes worker-count independent.
	effective := trials
	if st != nil && st.stopped {
		effective = st.stopN
	}
	if reg != nil {
		for _, shard := range shards {
			reg.Merge(shard)
		}
		var busy int64
		for _, b := range busyNs {
			busy += b
		}
		reg.Gauge("mc.worker_busy_ns").Set(float64(busy))
		if elapsed > 0 {
			reg.Gauge("mc.trials_per_sec").Set(float64(effective) / elapsed.Seconds())
			reg.Gauge("mc.worker_utilization").Set(
				float64(busy) / (float64(elapsed) * float64(workers)))
		}
		reg.Gauge("mc.workers").Set(float64(workers))
	}
	res := Result{Trials: effective}
	for _, out := range outcomes[:effective] {
		if out.Fail {
			res.Failures++
		}
		if out.Err != nil && res.Err == nil { // trial order: first error wins
			res.Err = out.Err
		}
	}
	res.Rate = float64(res.Failures) / float64(effective)
	res.WilsonLo, res.WilsonHi = Wilson(res.Failures, effective, 1.96)
	if heatParent != nil {
		for _, hs := range heatShards[:effective] {
			heatParent.Merge(hs)
		}
	}
	if bwParent != nil {
		for _, bs := range bwShards[:effective] {
			bwParent.Merge(bs)
		}
	}
	if obs.Sink != nil {
		for t, out := range outcomes[:effective] {
			obs.Sink(t, TrialSeed(cellSeed, t), out)
		}
	}
	if prog != nil {
		prog.mu.Lock() // pairs with worker emits; also makes -race happy
		prog.fn(Progress{Completed: effective, Failures: res.Failures, Budget: prog.budget,
			WilsonLo: res.WilsonLo, WilsonHi: res.WilsonHi, Done: true})
		prog.mu.Unlock()
	}
	return res
}

// makeHeatShards builds the per-trial heat shard store, or returns nil when
// heatmaps are off. Shards are per *trial*, not per worker: under CI early
// stop different worker counts execute different overrun trials, and only a
// trial-indexed store lets the merge discard exactly the overrun.
func makeHeatShards(heat *heatmap.Collector, trials int) []*heatmap.Collector {
	if heat == nil {
		return nil
	}
	return make([]*heatmap.Collector, trials)
}

// makeBWShards builds the per-trial bandwidth-profile shard store, or
// returns nil when profiling is off. Per-trial for the same CI-early-stop
// reason as makeHeatShards: the merge must discard exactly the overrun
// trials.
func makeBWShards(bw *bwprofile.Recorder, trials int) []*bwprofile.Recorder {
	if bw == nil {
		return nil
	}
	return make([]*bwprofile.Recorder, trials)
}

// makeTraceShards builds one private Tracer per worker, each sized like the
// merge target, or returns nil when tracing is off.
func makeTraceShards(tr *tracing.Tracer, workers int) []*tracing.Tracer {
	if tr == nil {
		return nil
	}
	traces := make([]*tracing.Tracer, workers)
	for w := range traces {
		traces[w] = tracing.New(tr.Capacity())
	}
	return traces
}
