package mc

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"quest/internal/bandwidth"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// trialRate is a deterministic pseudo-experiment: fail iff the trial's own
// seeded RNG says so. Any dependence on scheduling would break the
// worker-count invariance asserted below.
func trialRate(trial int, seed uint64) Outcome {
	rng := rand.New(rand.NewSource(int64(seed)))
	return Outcome{Fail: rng.Float64() < 0.3}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	cell := Seed(42, F64(1e-3), 3)
	base := Run(500, 1, cell, trialRate)
	for _, w := range []int{2, 4, 8, 0} {
		got := Run(500, w, cell, trialRate)
		if got != base {
			t.Errorf("workers=%d result %+v != workers=1 result %+v", w, got, base)
		}
	}
	if base.Failures == 0 || base.Failures == 500 {
		t.Fatalf("degenerate failure count %d", base.Failures)
	}
	if base.Rate != float64(base.Failures)/500 {
		t.Errorf("rate %v inconsistent with %d/500", base.Rate, base.Failures)
	}
}

func TestSeedsUncorrelatedAcrossCellsAndTrials(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range []float64{1e-3, 5e-4, 1e-4} {
		for _, d := range []int{3, 5, 7} {
			cell := Seed(1, F64(p), uint64(d))
			for trial := 0; trial < 50; trial++ {
				s := TrialSeed(cell, trial)
				id := fmt.Sprintf("p=%v d=%d t=%d", p, d, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %#x", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
	// The historical bug: trial seeds identical for every (p, d) cell.
	a := TrialSeed(Seed(1, F64(1e-3), 3), 7)
	b := TrialSeed(Seed(1, F64(5e-4), 3), 7)
	if a == b {
		t.Error("same trial in different cells drew the same seed")
	}
}

func TestDeriveLanesDiffer(t *testing.T) {
	s := TrialSeed(Seed(9), 0)
	if Derive(s, 0) == Derive(s, 1) {
		t.Error("derived lanes collide")
	}
	if Derive(s, 0) == s {
		t.Error("lane 0 equals parent seed")
	}
}

func TestWilson(t *testing.T) {
	cases := []struct {
		k, n   int
		lo, hi float64
	}{
		{0, 100, 0, 0.0370},
		{5, 100, 0.0215, 0.1118},
		{100, 100, 0.9630, 1},
		{50, 100, 0.4038, 0.5962},
	}
	for _, c := range cases {
		lo, hi := Wilson(c.k, c.n, 1.96)
		if math.Abs(lo-c.lo) > 5e-4 || math.Abs(hi-c.hi) > 5e-4 {
			t.Errorf("Wilson(%d,%d) = [%.4f, %.4f], want [%.4f, %.4f]", c.k, c.n, lo, hi, c.lo, c.hi)
		}
	}
	if lo, hi := Wilson(1, 0, 1.96); lo != 0 || hi != 0 {
		t.Errorf("Wilson with n=0 = [%v, %v]", lo, hi)
	}
}

func TestRunEmptyAndError(t *testing.T) {
	if res := Run(0, 4, 1, trialRate); res != (Result{}) {
		t.Errorf("empty run = %+v", res)
	}
	errA, errB := errors.New("a"), errors.New("b")
	res := Run(10, 4, 1, func(trial int, seed uint64) Outcome {
		switch trial {
		case 7:
			return Outcome{Err: errB}
		case 3:
			return Outcome{Err: errA}
		}
		return Outcome{}
	})
	if res.Err != errA {
		t.Errorf("Err = %v, want first error in trial order (a)", res.Err)
	}
}

// TestRunSharedCounterUnderRace drives the pool with a shared
// bandwidth.Counter — the concurrent use the Counter's atomics were built
// for — so `go test -race` exercises the engine + counter combination.
func TestRunSharedCounterUnderRace(t *testing.T) {
	var ctr bandwidth.Counter
	workers := runtime.GOMAXPROCS(0) * 4
	res := Run(400, workers, Seed(7), func(trial int, seed uint64) Outcome {
		ctr.Add(3, uint64(trial))
		return Outcome{Fail: trial%5 == 0}
	})
	if res.Failures != 80 {
		t.Errorf("failures = %d, want 80", res.Failures)
	}
	if got := ctr.Instructions(); got != 1200 {
		t.Errorf("instructions = %d, want 1200", got)
	}
	if got := ctr.Bytes(); got != 400*399/2 {
		t.Errorf("bytes = %d, want %d", got, 400*399/2)
	}
}

func TestWilsonAttachedToResult(t *testing.T) {
	res := Run(200, 4, Seed(3), trialRate)
	lo, hi := Wilson(res.Failures, res.Trials, 1.96)
	if res.WilsonLo != lo || res.WilsonHi != hi {
		t.Errorf("result CI [%v, %v] != Wilson [%v, %v]", res.WilsonLo, res.WilsonHi, lo, hi)
	}
	if !(res.WilsonLo <= res.Rate && res.Rate <= res.WilsonHi) {
		t.Errorf("rate %v outside its own CI [%v, %v]", res.Rate, res.WilsonLo, res.WilsonHi)
	}
}

// TestRunWithShardMergeInvariant pins the per-worker shard contract: the
// merged counters and histograms must reflect every trial exactly once, and
// both the simulation Result and the merged totals must be identical for any
// worker count (shards partition the trials; counters and fixed-bucket
// histograms merge by addition, which commutes).
func TestRunWithShardMergeInvariant(t *testing.T) {
	run := func(workers int) (Result, uint64, uint64, uint64) {
		reg := metrics.New()
		res := RunWith(300, workers, Seed(11), reg,
			func(trial int, seed uint64, shard *metrics.Registry) Outcome {
				if shard == nil {
					t.Fatal("nil shard despite non-nil registry")
				}
				shard.Counter("test.work").Add(uint64(trial))
				return Outcome{Fail: trial%3 == 0}
			})
		return res,
			reg.Counter("mc.trials").Value(),
			reg.Counter("mc.failures").Value(),
			reg.Counter("test.work").Value()
	}
	baseRes, baseTrials, baseFails, baseWork := run(1)
	if baseTrials != 300 {
		t.Errorf("merged mc.trials = %d, want 300", baseTrials)
	}
	if baseFails != 100 {
		t.Errorf("merged mc.failures = %d, want 100", baseFails)
	}
	if want := uint64(300 * 299 / 2); baseWork != want {
		t.Errorf("merged test.work = %d, want %d", baseWork, want)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		res, trials, fails, work := run(workers)
		if res != baseRes {
			t.Errorf("workers=%d: Result %+v != single-worker %+v", workers, res, baseRes)
		}
		if trials != baseTrials || fails != baseFails || work != baseWork {
			t.Errorf("workers=%d: merged totals (%d,%d,%d) != (%d,%d,%d)",
				workers, trials, fails, work, baseTrials, baseFails, baseWork)
		}
	}
}

// TestRunWithHistogramMerge checks that per-worker trial histograms merge
// into one histogram counting every trial.
func TestRunWithHistogramMerge(t *testing.T) {
	reg := metrics.New()
	RunWith(64, 4, Seed(13), reg, func(trial int, seed uint64, shard *metrics.Registry) Outcome {
		return Outcome{}
	})
	h := reg.Histogram("mc.trial.ns", metrics.LatencyBounds())
	if got := h.Count(); got != 64 {
		t.Errorf("merged mc.trial.ns count = %d, want 64", got)
	}
	if reg.Gauge("mc.workers").Value() != 4 {
		t.Errorf("mc.workers gauge = %v, want 4", reg.Gauge("mc.workers").Value())
	}
	u := reg.Gauge("mc.worker_utilization").Value()
	if u < 0 || u > 1 {
		t.Errorf("worker utilization %v outside [0,1]", u)
	}
}

// TestRunWithNilRegistry pins that a nil target registry disables sharding:
// fn sees a nil shard and the Result still matches the instrumented run.
func TestRunWithNilRegistry(t *testing.T) {
	res := RunWith(50, 4, Seed(11), nil,
		func(trial int, seed uint64, shard *metrics.Registry) Outcome {
			if shard != nil {
				t.Error("expected nil shard with nil registry")
			}
			return Outcome{Fail: trial%3 == 0}
		})
	if res.Failures != 17 {
		t.Errorf("failures = %d, want 17", res.Failures)
	}
}

// TestRunTracedDeterminism pins the tracing determinism contract: the merged
// trace of a run is the same event multiset regardless of worker count, and
// the canonical-sorting exporter therefore produces byte-identical JSON for
// workers=1 and workers=8. Runs under -race via make race, which also pins
// shard isolation (each worker records only into its private tracer).
func TestRunTracedDeterminism(t *testing.T) {
	runOnce := func(workers int) []byte {
		tr := tracing.New(1 << 12)
		res := RunTraced(40, workers, Seed(7), nil, tr,
			func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome {
				if trace == nil {
					t.Error("expected per-worker trace shard")
					return Outcome{}
				}
				// Synthetic per-trial events: cycle timebase derived from the
				// trial index only, never from scheduling.
				trace.SpanArg("mce", trial%4, "busy", int64(trial), 1, "uops", int64(seed%97))
				trace.Instant("master", 0, "dispatch", int64(trial))
				return Outcome{Fail: trial%5 == 0}
			})
		if res.Failures != 8 {
			t.Fatalf("workers=%d: failures = %d, want 8", workers, res.Failures)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, eight := runOnce(1), runOnce(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("merged trace depends on worker count:\nworkers=1: %d bytes\nworkers=8: %d bytes", len(one), len(eight))
	}
	rep, err := tracing.Validate(one)
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if rep.Events != 80 {
		t.Errorf("events = %d, want 80", rep.Events)
	}
}

// TestRunTracedNilTracer pins that a nil tracer disables trace sharding
// without disturbing metrics sharding or the Result.
func TestRunTracedNilTracer(t *testing.T) {
	reg := metrics.New()
	res := RunTraced(30, 4, Seed(9), reg, nil,
		func(trial int, seed uint64, shard *metrics.Registry, trace *tracing.Tracer) Outcome {
			if trace != nil {
				t.Error("expected nil trace shard with nil tracer")
			}
			if shard == nil {
				t.Error("expected metrics shard")
			}
			trace.Span("mce", 0, "busy", int64(trial), 1) // must be a safe no-op
			return Outcome{Fail: trial%2 == 0}
		})
	if res.Failures != 15 {
		t.Errorf("failures = %d, want 15", res.Failures)
	}
	if got := reg.Counter("mc.trials").Value(); got != 30 {
		t.Errorf("mc.trials = %d, want 30", got)
	}
}
