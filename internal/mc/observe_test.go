package mc

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"quest/internal/heatmap"
	"quest/internal/metrics"
)

// observedRate mirrors trialRate for the RunObserved callback shape.
func observedRate(rate float64) func(trial int, seed uint64, ctx TrialCtx) Outcome {
	return func(trial int, seed uint64, ctx TrialCtx) Outcome {
		rng := rand.New(rand.NewSource(int64(seed)))
		return Outcome{Fail: rng.Float64() < rate}
	}
}

// TestWilsonEdgeCases pins the boundary behavior the CI-convergence stop
// rule depends on: degenerate counts stay inside [0,1], zero-failure and
// all-failure intervals stay strictly informative, and the interval narrows
// monotonically as trials grow at a fixed rate.
func TestWilsonEdgeCases(t *testing.T) {
	// failures = 0: lo must be exactly 0, hi strictly inside (0, 1).
	lo, hi := Wilson(0, 50, 1.96)
	if lo != 0 {
		t.Errorf("Wilson(0,50) lo = %v, want 0", lo)
	}
	if hi <= 0 || hi >= 1 {
		t.Errorf("Wilson(0,50) hi = %v, want in (0,1)", hi)
	}
	// failures = trials: hi must be exactly 1, lo strictly inside (0, 1).
	lo, hi = Wilson(50, 50, 1.96)
	if hi != 1 {
		t.Errorf("Wilson(50,50) hi = %v, want 1", hi)
	}
	if lo <= 0 || lo >= 1 {
		t.Errorf("Wilson(50,50) lo = %v, want in (0,1)", lo)
	}
	// trials = 1: both outcomes give a very wide but valid interval.
	for k := 0; k <= 1; k++ {
		lo, hi = Wilson(k, 1, 1.96)
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson(%d,1) = [%v, %v] not a valid interval", k, lo, hi)
		}
		if hi-lo < 0.5 {
			t.Errorf("Wilson(%d,1) width %v implausibly narrow for one trial", k, hi-lo)
		}
	}
	// Monotonic narrowing: at a fixed failure rate, more trials must never
	// widen the interval — otherwise the CI-stop rule could stop on a
	// prefix whose successor is wider than the target.
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		prev := 2.0
		for _, n := range []int{10, 40, 160, 640, 2560} {
			k := int(rate * float64(n))
			lo, hi := Wilson(k, n, 1.96)
			if w := hi - lo; w > prev {
				t.Errorf("rate %v: width widened from %v to %v at n=%d", rate, prev, w, n)
			} else {
				prev = w
			}
		}
	}
}

// TestRunWithAllocs pins the metrics-off hot path at its committed
// allocation count. The Observers plumbing added for progress/CI-stop/
// heatmaps/ledgers must cost the unobserved path nothing: all observer
// locals are single-assigned nil pointers the worker closure captures by
// value, never heap cells. 7 allocs at workers=1 (outcomes, shard slice,
// busyNs, next, wg, one closure, one runtime cell) — one *below* the
// engine's historical 8, since trial-order reduction over the outcome
// store replaced the streaming failure atomic.
func TestRunWithAllocs(t *testing.T) {
	fn := func(trial int, seed uint64, shard *metrics.Registry) Outcome {
		return Outcome{Fail: seed&1 == 0}
	}
	allocs := testing.AllocsPerRun(100, func() {
		RunWith(100, 1, Seed(5), nil, fn)
	})
	if allocs > 8 {
		t.Errorf("RunWith metrics-off allocs/call = %v, budget 8 (currently 7)", allocs)
	}
	if allocs != 7 {
		t.Logf("note: RunWith metrics-off allocs/call = %v (was 7 when pinned)", allocs)
	}
}

// TestRunObservedZeroValueMatchesRun pins that RunObserved with a zero
// Observers is the same engine: identical Result to Run on the same cell.
func TestRunObservedZeroValueMatchesRun(t *testing.T) {
	cell := Seed(42, F64(1e-3), 3)
	base := Run(300, 4, cell, trialRate)
	got := RunObserved(300, 4, cell, nil, nil, Observers{}, func(trial int, seed uint64, ctx TrialCtx) Outcome {
		if ctx.Shard != nil || ctx.Trace != nil || ctx.Heat != nil {
			t.Error("zero Observers handed out live observation hooks")
		}
		return trialRate(trial, seed)
	})
	if got != base {
		t.Errorf("RunObserved %+v != Run %+v", got, base)
	}
}

// TestCIStopDeterministicAcrossWorkers pins the acceptance criterion: the
// early-stop decision (effective trials, failures, interval) is byte-for-
// byte identical for workers=1 and workers=8, because it is a pure function
// of trial-ordered outcomes.
func TestCIStopDeterministicAcrossWorkers(t *testing.T) {
	cell := Seed(17, F64(2e-3), 5)
	runOnce := func(workers int) Result {
		return RunObserved(5000, workers, cell, nil, nil,
			Observers{CIWidth: 0.05}, observedRate(0.3))
	}
	base := runOnce(1)
	for _, w := range []int{2, 4, 8} {
		if got := runOnce(w); got != base {
			t.Errorf("workers=%d ci-stop result %+v != workers=1 %+v", w, got, base)
		}
	}
	if base.Trials >= 5000 {
		t.Fatalf("cell did not stop early (trials=%d)", base.Trials)
	}
	if w := base.WilsonHi - base.WilsonLo; w > 0.05 {
		t.Errorf("stopped at width %v > requested 0.05", w)
	}
}

// TestCIStopSavesTrials pins the wall-clock claim: an easy cell (low
// failure rate, tight interval quickly) converges in a fraction of its
// budget, and the estimate agrees with the fixed-budget run within the
// requested width.
func TestCIStopSavesTrials(t *testing.T) {
	cell := Seed(23, F64(1e-4), 3)
	budget := 20000
	fixed := RunObserved(budget, 4, cell, nil, nil, Observers{}, observedRate(0.02))
	stopped := RunObserved(budget, 4, cell, nil, nil, Observers{CIWidth: 0.04}, observedRate(0.02))
	if stopped.Trials >= budget/2 {
		t.Errorf("easy cell used %d of %d trials, expected a large saving", stopped.Trials, budget)
	}
	if diff := stopped.Rate - fixed.Rate; diff > 0.04 || diff < -0.04 {
		t.Errorf("stopped estimate %v vs fixed %v differ by more than the requested width", stopped.Rate, fixed.Rate)
	}
	// The stop point is the FIRST prefix length satisfying the rule: the
	// prefix one trial shorter must still be wider than the target.
	n := stopped.Trials
	fails := 0
	for trial := 0; trial < n-1; trial++ {
		rng := rand.New(rand.NewSource(int64(TrialSeed(cell, trial))))
		if rng.Float64() < 0.02 {
			fails++
		}
		if trial+1 >= defaultMinStopTrials {
			lo, hi := Wilson(fails, trial+1, 1.96)
			if hi-lo <= 0.04 {
				t.Fatalf("prefix %d already satisfied the stop rule, but run stopped at %d", trial+1, n)
			}
		}
	}
}

// TestCIStopMinTrialsFloor pins that the stop rule never fires before
// MinTrials even when the interval is trivially narrow.
func TestCIStopMinTrialsFloor(t *testing.T) {
	res := RunObserved(1000, 8, Seed(3), nil, nil,
		Observers{CIWidth: 0.9, MinTrials: 64}, observedRate(0))
	if res.Trials < 64 {
		t.Errorf("stopped at %d trials, before MinTrials=64", res.Trials)
	}
}

// TestObservedSinkTrialOrder pins the ledger feed contract: the sink sees
// exactly the effective trials, in trial order, with the engine's own
// derived seeds, on the caller's goroutine after the pool drains.
func TestObservedSinkTrialOrder(t *testing.T) {
	cell := Seed(29)
	var got []string
	res := RunObserved(100, 8, cell, nil, nil, Observers{
		Sink: func(trial int, seed uint64, out Outcome) {
			got = append(got, fmt.Sprintf("%d:%x:%v", trial, seed, out.Fail))
		},
	}, observedRate(0.25))
	if len(got) != res.Trials {
		t.Fatalf("sink saw %d trials, Result has %d", len(got), res.Trials)
	}
	for trial := range got {
		rng := rand.New(rand.NewSource(int64(TrialSeed(cell, trial))))
		want := fmt.Sprintf("%d:%x:%v", trial, TrialSeed(cell, trial), rng.Float64() < 0.25)
		if got[trial] != want {
			t.Fatalf("sink record %d = %q, want %q", trial, got[trial], want)
		}
	}
}

// TestObservedHeatDeterministicAcrossWorkers pins that the merged heatmap
// is identical for any worker count — including under CI early stop, where
// different worker counts execute different overrun trials (the per-trial
// shards of discarded trials must not leak into the merge).
func TestObservedHeatDeterministicAcrossWorkers(t *testing.T) {
	cell := Seed(31, F64(5e-3), 3)
	runOnce := func(workers int, ciWidth float64) ([][]int64, []int64, Result) {
		heat := heatmap.New(5, 5)
		res := RunObserved(3000, workers, cell, nil, nil,
			Observers{Heat: heat, CIWidth: ciWidth},
			func(trial int, seed uint64, ctx TrialCtx) Outcome {
				if ctx.Heat == nil {
					t.Error("expected per-trial heat shard")
					return Outcome{}
				}
				rng := rand.New(rand.NewSource(int64(seed)))
				ctx.Heat.Defect(rng.Intn(5), rng.Intn(5))
				ctx.Heat.MatchedPair(rng.Intn(5), rng.Intn(5), rng.Intn(5), rng.Intn(5), rng.Intn(8))
				return Outcome{Fail: rng.Float64() < 0.3}
			})
		return heat.Defects(), heat.ChainLengths(), res
	}
	for _, ciWidth := range []float64{0, 0.05} {
		baseD, baseH, baseRes := runOnce(1, ciWidth)
		for _, w := range []int{2, 8} {
			d, h, res := runOnce(w, ciWidth)
			if res != baseRes {
				t.Errorf("ciWidth=%v workers=%d: Result %+v != %+v", ciWidth, w, res, baseRes)
			}
			if fmt.Sprint(d) != fmt.Sprint(baseD) || fmt.Sprint(h) != fmt.Sprint(baseH) {
				t.Errorf("ciWidth=%v workers=%d: merged heatmap differs from workers=1", ciWidth, w)
			}
		}
		var total int64
		for _, row := range baseD {
			for _, v := range row {
				total += v
			}
		}
		if total != int64(baseRes.Trials) {
			t.Errorf("ciWidth=%v: %d defects merged, want one per effective trial (%d)", ciWidth, total, baseRes.Trials)
		}
	}
}

// TestObservedProgress pins the progress contract: throttled monotonic
// snapshots, a final Done snapshot matching the Result, and no calls at all
// when the sink is nil.
func TestObservedProgress(t *testing.T) {
	var snaps []Progress
	res := RunObserved(200, 4, Seed(37), nil, nil, Observers{
		Progress:      func(p Progress) { snaps = append(snaps, p) },
		ProgressEvery: 50,
	}, observedRate(0.2))
	if len(snaps) < 2 {
		t.Fatalf("got %d progress snapshots, want throttled stream + final", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Done {
		t.Error("final snapshot not marked Done")
	}
	if last.Completed != res.Trials || last.Failures != res.Failures ||
		last.WilsonLo != res.WilsonLo || last.WilsonHi != res.WilsonHi {
		t.Errorf("final snapshot %+v disagrees with Result %+v", last, res)
	}
	prev := 0
	for _, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Error("mid-run snapshot marked Done")
		}
		if p.Completed <= prev {
			t.Errorf("progress not monotonic: %d after %d", p.Completed, prev)
		}
		prev = p.Completed
		if p.Completed%50 != 0 {
			t.Errorf("snapshot at %d trials violates ProgressEvery=50", p.Completed)
		}
		if !(p.WilsonLo <= float64(p.Failures)/float64(p.Completed) &&
			float64(p.Failures)/float64(p.Completed) <= p.WilsonHi) {
			t.Errorf("snapshot %+v: rate outside its interval", p)
		}
	}
}

// TestObservedMetricsShardsStillMerge pins that the observed path keeps the
// RunWith metrics contract (every executed trial counted exactly once) when
// no early stop is in play.
func TestObservedMetricsShardsStillMerge(t *testing.T) {
	reg := metrics.New()
	var calls atomic.Int64
	res := RunObserved(120, 4, Seed(41), reg, nil, Observers{},
		func(trial int, seed uint64, ctx TrialCtx) Outcome {
			if ctx.Shard == nil {
				t.Error("expected metrics shard")
			}
			calls.Add(1)
			ctx.Shard.Counter("test.obs").Inc()
			return Outcome{Fail: trial%4 == 0}
		})
	if res.Failures != 30 {
		t.Errorf("failures = %d, want 30", res.Failures)
	}
	if got := reg.Counter("mc.trials").Value(); got != 120 {
		t.Errorf("mc.trials = %d, want 120", got)
	}
	if got := reg.Counter("test.obs").Value(); got != uint64(calls.Load()) {
		t.Errorf("merged test.obs = %d, executed %d", got, calls.Load())
	}
}
