package mc

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// priorFn is a deterministic trial body that also counts executions.
func priorFn(calls *atomic.Int64) func(trial int, seed uint64, ctx TrialCtx) Outcome {
	return func(trial int, seed uint64, ctx TrialCtx) Outcome {
		calls.Add(1)
		return Outcome{Fail: seed%3 == 0}
	}
}

// recordOutcomes runs a full cell and returns its trial-ordered outcomes via
// the Sink — the shape a resume checkpoint replays.
func recordOutcomes(trials int) ([]Outcome, Result) {
	outs := make([]Outcome, 0, trials)
	var calls atomic.Int64
	res := RunObserved(trials, 4, 0xc0ffee, nil, nil, Observers{
		Sink: func(trial int, seed uint64, out Outcome) { outs = append(outs, out) },
	}, priorFn(&calls))
	return outs, res
}

// TestPriorSkipsExecution pins the resume hook's core promise: trials
// covered by Prior are never executed, and the Result is identical to the
// run that executed everything.
func TestPriorSkipsExecution(t *testing.T) {
	const trials = 20
	outs, want := recordOutcomes(trials)
	for _, prior := range []int{0, 1, 7, trials} {
		var calls atomic.Int64
		var sunk []Outcome
		got := RunObserved(trials, 4, 0xc0ffee, nil, nil, Observers{
			Prior: outs[:prior],
			Sink:  func(trial int, seed uint64, out Outcome) { sunk = append(sunk, out) },
		}, priorFn(&calls))
		if got != want {
			t.Errorf("prior=%d: Result %+v != full run %+v", prior, got, want)
		}
		if int(calls.Load()) != trials-prior {
			t.Errorf("prior=%d: executed %d trials, want %d", prior, calls.Load(), trials-prior)
		}
		if !reflect.DeepEqual(sunk, outs) {
			t.Errorf("prior=%d: Sink stream differs from the full run's", prior)
		}
	}
}

// TestPriorLongerThanBudgetIsTruncated pins the edge where the checkpoint
// recorded more trials than this run's budget: the excess is ignored, no
// trial executes, and the Result covers exactly the budget.
func TestPriorLongerThanBudgetIsTruncated(t *testing.T) {
	outs, _ := recordOutcomes(20)
	var calls atomic.Int64
	_, want := recordOutcomes(12)
	got := RunObserved(12, 4, 0xc0ffee, nil, nil, Observers{Prior: outs}, priorFn(&calls))
	if calls.Load() != 0 {
		t.Errorf("executed %d trials with a full prior, want 0", calls.Load())
	}
	if got != want {
		t.Errorf("Result %+v != 12-trial run %+v", got, want)
	}
}

// TestPriorFeedsCIStop pins that prior outcomes reach the Wilson-width stop
// frontier: a resumed run stops at the same trial count as the uninterrupted
// one, whether the stop point falls inside or beyond the prior prefix.
func TestPriorFeedsCIStop(t *testing.T) {
	const budget = 300
	obs := Observers{CIWidth: 0.2}
	var calls atomic.Int64
	want := RunObserved(budget, 4, 0xc0ffee, nil, nil, obs, priorFn(&calls))
	if want.Trials >= budget {
		t.Fatalf("ci-stop never fired (%d trials); widen the test margin", want.Trials)
	}
	outs, _ := recordOutcomes(budget)
	for _, prior := range []int{want.Trials / 2, want.Trials, budget} {
		o := obs
		o.Prior = outs[:prior]
		var resumedCalls atomic.Int64
		got := RunObserved(budget, 4, 0xc0ffee, nil, nil, o, priorFn(&resumedCalls))
		if got != want {
			t.Errorf("prior=%d: Result %+v != uninterrupted %+v", prior, got, want)
		}
		if prior >= want.Trials && resumedCalls.Load() != 0 {
			t.Errorf("prior=%d covers the stop point but %d trials executed", prior, resumedCalls.Load())
		}
	}
}
