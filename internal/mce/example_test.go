package mce_test

import (
	"fmt"

	"quest/internal/compiler"
	"quest/internal/isa"
	"quest/internal/mce"
	"quest/internal/microcode"
	"quest/internal/surface"
)

// ExampleNew shows the MCE's defining behaviour: with zero instructions from
// the master controller, the engine keeps every qubit of its tile busy every
// sub-cycle, purely from microcode replay — hardware-managed error
// correction.
func ExampleNew() {
	eng := mce.New(mce.Config{
		Design:   microcode.DesignUnitCell,
		Schedule: surface.Steane,
		Layout:   compiler.NewLayout(3, 2),
		Seed:     1,
	})
	n := eng.Layout().Lat.NumQubits()
	rep := eng.StepCycle()
	fmt.Println("tile qubits:", n)
	fmt.Println("µops issued this cycle:", rep.MicroOpsIssued)
	fmt.Println("instructions received from the master: 0")
	fmt.Println("every qubit serviced every sub-cycle:", rep.MicroOpsIssued == n*surface.Steane.Depth)
	// Output:
	// tile qubits: 55
	// µops issued this cycle: 495
	// instructions received from the master: 0
	// every qubit serviced every sub-cycle: true
}

// ExampleMCE_Enqueue runs one logical instruction through the instruction
// pipeline while QECC continues underneath.
func ExampleMCE_Enqueue() {
	eng := mce.New(mce.Config{
		Design:   microcode.DesignUnitCell,
		Schedule: surface.Steane,
		Layout:   compiler.NewLayout(3, 1),
		Seed:     1,
	})
	eng.StepCycle() // settle the lattice
	eng.Enqueue(isa.LogicalInstr{Op: isa.LPrep0, Target: 0})
	eng.Enqueue(isa.LogicalInstr{Op: isa.LMeasZ, Target: 0})
	for c := 0; c < 4; c++ {
		for _, r := range eng.StepCycle().LogicalResults {
			fmt.Println("logical measurement:", r.Bit)
		}
	}
	// Output:
	// logical measurement: 0
}
