// Package mce implements the Micro-coded Control Engine of §4: the per-tile
// hardware unit that replays QECC microcode autonomously, executes logical
// instructions delivered by the master controller through its instruction
// pipeline, arbitrates between the two via the mask table, performs local
// error decoding with a lookup table, and (§5.3) replays cached logical
// instruction loops — the distillation bodies — from its software-managed
// instruction cache.
//
// The model is cycle-stepped at QECC-cycle granularity: StepCycle replays
// one complete error-correction cycle (Depth lock-step sub-cycles), overlays
// any due logical work, fires the execution unit, collects syndromes and
// decodes locally. No instruction ever reaches the quantum substrate from
// anywhere but the microcode and logical-µop pipelines, and the QECC cadence
// never stalls on logical traffic — the two invariants the paper's
// determinism argument rests on.
package mce

import (
	"fmt"
	"math/rand"
	"time"

	"quest/internal/awg"
	"quest/internal/bwprofile"
	"quest/internal/clifford"
	"quest/internal/compiler"
	"quest/internal/decoder"
	"quest/internal/heatmap"
	"quest/internal/isa"
	"quest/internal/metrics"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/tracing"
)

// instr bundles the MCE's instruments, resolved once per engine so StepCycle
// never touches the registry lock.
type instr struct {
	cycles           *metrics.Counter
	microOps         *metrics.Counter
	logicalRetired   *metrics.Counter
	logicalEnqueued  *metrics.Counter
	defectsLocal     *metrics.Counter
	defectsEscalated *metrics.Counter
	cacheHits        *metrics.Counter
	cacheLoads       *metrics.Counter
	stalledT         *metrics.Counter
	cycleNs          *metrics.Histogram
	bufferOccupancy  *metrics.Gauge
}

func newInstr(r *metrics.Registry) *instr {
	return &instr{
		cycles:           r.Counter("mce.cycles"),
		microOps:         r.Counter("mce.microops"),
		logicalRetired:   r.Counter("mce.logical.retired"),
		logicalEnqueued:  r.Counter("mce.logical.enqueued"),
		defectsLocal:     r.Counter("mce.defects.local"),
		defectsEscalated: r.Counter("mce.defects.escalated"),
		cacheHits:        r.Counter("mce.cache.hits"),
		cacheLoads:       r.Counter("mce.cache.loads"),
		stalledT:         r.Counter("mce.stalled.t"),
		cycleNs:          r.Histogram("mce.cycle.ns", nil),
		bufferOccupancy:  r.Gauge("mce.buffer.occupancy"),
	}
}

// Config assembles an MCE.
type Config struct {
	Design   microcode.Design
	Schedule surface.Schedule
	Layout   compiler.Layout
	// Noise is the substrate noise model; nil means noiseless.
	Noise *noise.Model
	// Seed drives both the substrate's measurement randomness and the noise
	// injector, making whole-machine runs reproducible.
	Seed int64
	// CacheSlots is the number of logical-instruction cache slots (0
	// disables the cache).
	CacheSlots int
	// Timing, when non-nil, enables wall-clock accounting with the given
	// per-operation latencies (Table 1).
	Timing *awg.Timing
	// BufferCapacity bounds the instruction buffer (0 = unbounded). A full
	// buffer rejects Enqueue; the master's flow control must respect
	// FreeBufferSlots. QECC replay is never affected — that is the point.
	BufferCapacity int
	// Metrics selects the registry the engine's instruments record into
	// (nil = metrics.Default). Monte-Carlo workers pass per-worker shards so
	// parallel trials never contend on shared counters.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records cycle-correlated events (per-cycle
	// busy/stall/idle spans, cache fills and replays, local decode activity)
	// for Perfetto export. Nil falls back to tracing.Default, which is itself
	// nil — tracing fully off, zero-alloc — unless a binary enabled it.
	Tracer *tracing.Tracer
	// TileID labels this engine's trace track (the master's tile index);
	// purely observational.
	TileID int
	// Heat, when non-nil, records each defect the syndrome history births at
	// its lattice site. Tiles resolve a collector per lattice shape, so
	// same-shape tiles accumulate into one grid. Nil (the default) keeps
	// defect extraction allocation-free.
	Heat *heatmap.Set
	// BW, when non-nil, records cache-replayed instructions (the traffic the
	// MCE-local cache keeps off the global bus — replayed instrs, zero bus
	// bytes) into the cycle-windowed bandwidth profile. Nil (the default)
	// keeps the replay path allocation-free.
	BW *bwprofile.Recorder
}

// CycleReport summarizes one StepCycle.
type CycleReport struct {
	Cycle            int
	MicroOpsIssued   int
	LogicalRetired   int
	Measurements     int
	DefectsLocal     int // defects resolved by the LUT decoder
	DefectsEscalated []decoder.Defect
	LogicalResults   []LogicalResult
}

// LogicalResult is a completed logical measurement.
type LogicalResult struct {
	Patch int
	Bit   int
}

// braid tracks an in-flight logical CNOT: remaining mask steps and the
// patches it occupies.
type braid struct {
	steps     []surface.BraidStep
	ctrl, tgt int
}

// MCE is one engine instance.
type MCE struct {
	cfg   Config
	store *microcode.Store
	mask  *surface.Mask
	// baseMask is the rest state: the gap sites between patches are
	// permanently masked so each patch is an isolated planar code (gap
	// stabilizers would anticommute with the per-patch logical operators).
	// Braids temporarily deviate from it and restore it.
	baseMask *surface.Mask

	tableau *clifford.Tableau
	inj     *noise.Injector
	unit    *awg.ExecutionUnit

	hist  *decoder.SyndromeHistory
	local *decoder.LocalDecoder
	frame *decoder.PauliFrame

	// Instruction pipeline.
	buffer    []isa.LogicalInstr
	cache     map[int][]isa.LogicalInstr
	replayQ   []isa.LogicalInstr
	braids    []*braid
	busyPatch map[int]bool

	magicStates int

	in  *instr
	tr  *tracing.Tracer
	bw  *bwprofile.Recorder
	tid int

	cycle          int
	microOps       uint64
	logicalRetired uint64
	cacheHits      uint64
	cacheLoads     uint64
	stalledT       uint64

	// syndrome bits of the in-flight cycle, keyed by ancilla.
	pendingSynd map[int]int
	// data-qubit measurement bits of the in-flight cycle.
	pendingData map[int]int
	// patches with an outstanding transverse measurement this cycle; the
	// value records the basis (true = X).
	measuring map[int]bool
	// regions masked for a single-cycle transverse op, restored after the
	// cycle's stream has been built.
	pendingUnmask []region
}

// New builds an MCE per the config. The microcode store is programmed once
// here; from then on QECC replays without external instruction supply.
func New(cfg Config) *MCE {
	if cfg.CacheSlots < 0 {
		panic(fmt.Sprintf("mce: negative cache slots %d", cfg.CacheSlots))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = tracing.Default
	}
	lat := cfg.Layout.Lat
	m := &MCE{
		cfg:   cfg,
		store: microcode.NewStore(cfg.Design, cfg.Schedule, lat),
		mask:  surface.NewMask(lat),

		tableau: clifford.New(lat.NumQubits(), rand.New(rand.NewSource(cfg.Seed))),

		hist:  decoder.NewHistory(lat),
		local: decoder.NewLocalDecoder(lat),
		frame: decoder.NewPauliFrame(),

		cache:     make(map[int][]isa.LogicalInstr),
		busyPatch: make(map[int]bool),

		in:  newInstr(reg),
		tr:  tr,
		bw:  cfg.BW,
		tid: cfg.TileID,

		pendingSynd: make(map[int]int),
		pendingData: make(map[int]int),
		measuring:   make(map[int]bool),
	}
	if cfg.Noise != nil {
		m.inj = noise.NewInjector(*cfg.Noise, cfg.Seed+1)
	}
	if cfg.Heat != nil {
		m.hist.SetHeat(cfg.Heat.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols))
	}
	// Mask everything outside the patches: the inter-patch gap columns are
	// not part of any code and must not run syndrome extraction.
	inPatch := make([]bool, lat.NumQubits())
	for p := 0; p < cfg.Layout.NumPatches(); p++ {
		for _, q := range cfg.Layout.PatchQubits(p) {
			inPatch[q] = true
		}
	}
	for q, in := range inPatch {
		if !in {
			m.mask.SetDisabled(q, true)
		}
	}
	m.baseMask = m.mask.Clone()
	m.unit = awg.New(m.tableau, m.inj)
	m.unit.MeasSink = m.sinkMeasurement
	if cfg.Timing != nil {
		m.unit.SetTiming(*cfg.Timing)
	}
	return m
}

// Reset returns the engine to the state New built, rebinding the per-trial
// observation hooks: a fresh seed for the substrate and the noise injector,
// a (possibly different) metrics shard, tracer and heat set. The expensive
// trial-independent structures — the programmed microcode store, the local
// decoder's lookup tables, the tableau's row storage and the rest-state mask
// — are kept; everything mutable is rewound. Monte-Carlo trial bodies pool
// MCEs (via Machine pooling) so per-trial construction cost is paid once per
// worker instead of once per trial; the pooled-vs-fresh equivalence is pinned
// by TestMachineResetMatchesFresh.
func (m *MCE) Reset(seed int64, reg *metrics.Registry, tr *tracing.Tracer, heat *heatmap.Set, bw *bwprofile.Recorder) {
	if reg == nil {
		reg = metrics.Default
	}
	if tr == nil {
		tr = tracing.Default
	}
	m.cfg.Seed = seed
	m.cfg.Metrics = reg
	m.cfg.Tracer = tr
	m.cfg.Heat = heat
	m.cfg.BW = bw
	lat := m.cfg.Layout.Lat

	m.tableau.SetRNG(rand.New(rand.NewSource(seed)))
	m.tableau.Reset()
	m.mask = m.baseMask.Clone()
	m.inj = nil
	if m.cfg.Noise != nil {
		m.inj = noise.NewInjector(*m.cfg.Noise, seed+1)
	}
	m.store.ResetStreamed()

	m.hist.Reset()
	if heat != nil {
		m.hist.SetHeat(heat.Collector(heatmap.GridName(lat.Rows, lat.Cols), lat.Rows, lat.Cols))
	} else {
		m.hist.SetHeat(nil)
	}
	m.frame.Reset()

	m.buffer = m.buffer[:0]
	clear(m.cache)
	m.replayQ = m.replayQ[:0]
	m.braids = m.braids[:0]
	clear(m.busyPatch)
	m.magicStates = 0

	m.in = newInstr(reg)
	m.tr = tr
	m.bw = bw

	m.cycle = 0
	m.microOps, m.logicalRetired = 0, 0
	m.cacheHits, m.cacheLoads, m.stalledT = 0, 0, 0

	clear(m.pendingSynd)
	clear(m.pendingData)
	clear(m.measuring)
	m.pendingUnmask = m.pendingUnmask[:0]

	m.unit = awg.New(m.tableau, m.inj)
	m.unit.MeasSink = m.sinkMeasurement
	if m.cfg.Timing != nil {
		m.unit.SetTiming(*m.cfg.Timing)
	}
}

// ElapsedNs returns the wall-clock time of all executed sub-cycles (zero
// unless the config carried a Timing).
func (m *MCE) ElapsedNs() float64 { return m.unit.ElapsedNs() }

// Layout returns the MCE's tile layout.
func (m *MCE) Layout() compiler.Layout { return m.cfg.Layout }

// Tableau exposes the substrate for verification in tests.
func (m *MCE) Tableau() *clifford.Tableau { return m.tableau }

// Frame exposes the Pauli frame for verification.
func (m *MCE) Frame() *decoder.PauliFrame { return m.frame }

// Store exposes the microcode store (for bandwidth audits).
func (m *MCE) Store() *microcode.Store { return m.store }

// SupplyMagicStates adds distilled magic states to the local pool (fed by
// the T-factory tiles).
func (m *MCE) SupplyMagicStates(n int) {
	if n < 0 {
		panic("mce: negative magic state supply")
	}
	m.magicStates += n
}

// MagicStates returns the pool level.
func (m *MCE) MagicStates() int { return m.magicStates }

// Enqueue accepts one logical instruction from the master controller. Cache
// management opcodes are interpreted here; everything else waits in the
// instruction buffer.
func (m *MCE) Enqueue(in isa.LogicalInstr) error {
	switch in.Op {
	case isa.LCacheRun:
		body, ok := m.cache[int(in.Target)]
		if !ok {
			return fmt.Errorf("mce: cache run on empty slot %d", in.Target)
		}
		reps := int(in.Arg)
		if reps == 0 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			m.replayQ = append(m.replayQ, body...)
		}
		m.cacheHits += uint64(reps)
		m.in.cacheHits.Add(uint64(reps))
		if m.bw != nil {
			// Replayed instructions are the bandwidth the cache saved: they
			// enter the pipeline here without crossing the global bus, so
			// they are metered with zero bytes.
			m.bw.Observe(m.cycle, bwprofile.BusReplay, bwprofile.ClassReplay, uint64(reps*len(body)), 0)
		}
		if m.tr != nil {
			m.tr.InstantArg("mce", m.tid, "cache.replay", int64(m.cycle), "reps", int64(reps))
		}
		return nil
	case isa.LCacheLoad:
		return fmt.Errorf("mce: LCacheLoad must arrive via LoadCacheSlot with its body")
	case isa.LSyncToken:
		return nil // sequencing only; no quantum effect
	}
	if in.Op.IsTransverse() || in.Op == isa.LCNOT {
		if int(in.Target) >= m.cfg.Layout.NumPatches() {
			return fmt.Errorf("mce: instruction %s targets patch outside tile", in)
		}
		if in.Op == isa.LCNOT && int(in.Arg) >= m.cfg.Layout.NumPatches() {
			return fmt.Errorf("mce: CNOT partner outside tile")
		}
	}
	if m.cfg.BufferCapacity > 0 && len(m.buffer) >= m.cfg.BufferCapacity {
		return fmt.Errorf("mce: instruction buffer full (%d)", m.cfg.BufferCapacity)
	}
	m.buffer = append(m.buffer, in)
	m.in.logicalEnqueued.Inc()
	m.in.bufferOccupancy.Set(float64(len(m.buffer)))
	return nil
}

// FreeBufferSlots returns how many more instructions Enqueue will accept
// (a large sentinel when unbounded); the master's flow control polls it.
func (m *MCE) FreeBufferSlots() int {
	if m.cfg.BufferCapacity <= 0 {
		return 1 << 30
	}
	free := m.cfg.BufferCapacity - len(m.buffer)
	if free < 0 {
		return 0
	}
	return free
}

// LoadCacheSlot installs a loop body into a cache slot (the arrival of the
// body's bytes is metered by the master controller).
func (m *MCE) LoadCacheSlot(slot int, body []isa.LogicalInstr) error {
	if m.cfg.CacheSlots == 0 {
		return fmt.Errorf("mce: cache disabled")
	}
	if slot < 0 || slot >= m.cfg.CacheSlots {
		return fmt.Errorf("mce: cache slot %d outside [0,%d)", slot, m.cfg.CacheSlots)
	}
	if len(body) == 0 {
		return fmt.Errorf("mce: empty cache body")
	}
	m.cache[slot] = append([]isa.LogicalInstr(nil), body...)
	m.cacheLoads++
	m.in.cacheLoads.Inc()
	if m.tr != nil {
		m.tr.InstantArg("mce", m.tid, "cache.fill", int64(m.cycle), "instrs", int64(len(body)))
	}
	return nil
}

// PendingLogical returns the backlog: buffered + replaying instructions and
// in-flight braids.
func (m *MCE) PendingLogical() int {
	return len(m.buffer) + len(m.replayQ) + len(m.braids)
}

// Stats returns cumulative counters.
func (m *MCE) Stats() (microOps, logicalRetired, cacheHits, cacheLoads, stalledT uint64) {
	return m.microOps, m.logicalRetired, m.cacheHits, m.cacheLoads, m.stalledT
}

func (m *MCE) sinkMeasurement(q, bit int) {
	if m.cfg.Layout.Lat.RoleOf(q) == surface.RoleData {
		m.pendingData[q] = bit
		return
	}
	m.pendingSynd[q] = bit
}

// issueWidth bounds how many logical instructions start per cycle,
// modelling the decoder throughput of the instruction pipeline.
const issueWidth = 4

// StepCycle advances the machine by one QECC cycle and returns the report.
func (m *MCE) StepCycle() CycleReport {
	start := time.Now() //quest:allow(seedsrc) wall-clock latency metric only; the value never reaches simulation state
	stallBefore := m.stalledT
	rep := CycleReport{Cycle: m.cycle}
	if m.inj != nil {
		m.inj.SetLocation(m.cycle, 0)
	}
	// Reuse the per-cycle measurement maps: clearing keeps the buckets a
	// steady-state cycle already paid for instead of re-growing two maps
	// every cycle.
	clear(m.pendingSynd)
	clear(m.pendingData)

	// 1. Advance in-flight braids by one mask step each.
	m.stepBraids(&rep)

	// 2. Issue new logical instructions to free patches.
	overlay := m.issueLogical(&rep)

	// 3. Replay the QECC microcode under the current mask; the first
	// sub-cycle carries the logical overlay in the slots the mask freed.
	words := m.store.ReplayCycle(m.mask)
	if len(overlay) > 0 {
		w0 := words[0]
		for _, op := range overlay {
			w0.Set(op.Qubit, op.Op)
		}
	}
	for _, w := range words {
		m.unit.ExecuteWord(w)
		rep.MicroOpsIssued += w.Len()
	}
	m.microOps += uint64(rep.MicroOpsIssued)
	rep.Measurements = len(m.pendingSynd) + len(m.pendingData)

	// 4. Complete transverse measurements: majority over the patch's
	// logical-Z (or X) support with frame parity applied.
	m.completeMeasurements(&rep)

	// 5. Difference syndromes into defects and decode locally; residuals
	// escalate to the master controller.
	defects := m.hist.Absorb(m.pendingSynd)
	resolved, residual := m.local.Decode(defects)
	for _, c := range resolved {
		m.frame.Apply(c)
	}
	rep.DefectsLocal = len(resolved)
	rep.DefectsEscalated = residual

	if m.tr != nil {
		// One span per cycle, named by what the cycle achieved: "busy" when
		// logical work progressed (issue, braid, retire), "stall" when the
		// only blocked progress was a T waiting on a magic state, "idle" when
		// nothing but the background QECC replay ran. Summarize folds these
		// into the per-tile busy/stall/idle breakdown.
		name := "idle"
		switch {
		case rep.LogicalRetired > 0 || len(overlay) > 0 || len(m.braids) > 0:
			name = "busy"
		case m.stalledT > stallBefore:
			name = "stall"
		}
		m.tr.SpanArg("mce", m.tid, name, int64(rep.Cycle), 1, "uops", int64(rep.MicroOpsIssued))
		// The local LUT decoder runs every cycle; give its track a span only
		// when it had defects to chew on (keeps idle traces readable), plus a
		// permanent idle marker so the decoder track always exists.
		if len(defects) > 0 {
			m.tr.SpanArg("decoder", m.tid, "local", int64(rep.Cycle), 1, "defects", int64(len(defects)))
		} else {
			m.tr.Span("decoder", m.tid, "idle", int64(rep.Cycle), 1)
		}
	}

	m.cycle++
	m.in.cycles.Inc()
	m.in.microOps.Add(uint64(rep.MicroOpsIssued))
	m.in.logicalRetired.Add(uint64(rep.LogicalRetired))
	m.in.defectsLocal.Add(uint64(rep.DefectsLocal))
	m.in.defectsEscalated.Add(uint64(len(residual)))
	m.in.bufferOccupancy.Set(float64(len(m.buffer)))
	m.in.cycleNs.Observe(float64(time.Since(start)))
	return rep
}

func (m *MCE) stepBraids(rep *CycleReport) {
	var active []*braid
	for _, b := range m.braids {
		s := b.steps[0]
		if !m.cfg.Layout.Lat.InBounds(s.R, s.C) {
			panic(fmt.Sprintf("mce: braid step at (%d,%d) outside tile", s.R, s.C))
		}
		idx := m.cfg.Layout.Lat.Index(s.R, s.C)
		if s.Grow {
			m.mask.SetDisabled(idx, true)
		} else {
			// Shrink restores the site's rest state (gap sites stay masked).
			m.mask.SetDisabled(idx, m.baseMask.Disabled(idx))
		}
		b.steps = b.steps[1:]
		if len(b.steps) == 0 {
			m.busyPatch[b.ctrl] = false
			m.busyPatch[b.tgt] = false
			m.logicalRetired++
			rep.LogicalRetired++
			continue
		}
		active = append(active, b)
	}
	m.braids = active
}

// issueLogical pops ready instructions (replay queue first — cached loops
// have priority so factory pipelines never starve) and returns the physical
// overlay for this cycle's first sub-cycle.
func (m *MCE) issueLogical(rep *CycleReport) []isa.MicroOp {
	var overlay []isa.MicroOp
	issued := 0
	usedPatch := map[int]bool{}
	take := func(queue *[]isa.LogicalInstr) {
		var rest []isa.LogicalInstr
		for _, in := range *queue {
			if issued >= issueWidth {
				rest = append(rest, in)
				continue
			}
			// One instruction per patch per cycle; later instructions for a
			// used patch also wait, preserving program order per patch.
			p1, p2 := int(in.Target), -1
			if in.Op == isa.LCNOT {
				p2 = int(in.Arg)
			}
			if usedPatch[p1] || (p2 >= 0 && usedPatch[p2]) {
				rest = append(rest, in)
				continue
			}
			ok, ops := m.tryIssue(in, rep)
			if !ok {
				rest = append(rest, in)
				usedPatch[p1] = true // preserve order: nothing later may jump it
				continue
			}
			usedPatch[p1] = true
			if p2 >= 0 {
				usedPatch[p2] = true
			}
			overlay = append(overlay, ops...)
			issued++
		}
		*queue = rest
	}
	take(&m.replayQ)
	take(&m.buffer)
	return overlay
}

// tryIssue attempts to start one logical instruction this cycle.
func (m *MCE) tryIssue(in isa.LogicalInstr, rep *CycleReport) (bool, []isa.MicroOp) {
	patch := int(in.Target)
	if m.busyPatch[patch] {
		return false, nil
	}
	switch {
	case in.Op == isa.LCNOT:
		tgt := int(in.Arg)
		if m.busyPatch[tgt] {
			return false, nil
		}
		steps := compiler.BraidForCNOT(m.cfg.Layout, patch, tgt)
		if len(steps) == 0 {
			m.logicalRetired++
			rep.LogicalRetired++
			return true, nil
		}
		m.busyPatch[patch] = true
		m.busyPatch[tgt] = true
		m.braids = append(m.braids, &braid{steps: steps, ctrl: patch, tgt: tgt})
		return true, nil
	case in.Op == isa.LX || in.Op == isa.LZ:
		// Logical Paulis are Pauli-frame updates along the logical operator
		// chain — zero quantum cost, as in Appendix A.2's correction log.
		support := m.cfg.Layout.PatchLogicalX(patch)
		flipX := true
		if in.Op == isa.LZ {
			support = m.cfg.Layout.PatchLogicalZ(patch)
			flipX = false
		}
		for _, q := range support {
			m.frame.Apply(decoder.Correction{Qubit: q, FlipX: flipX})
		}
		m.logicalRetired++
		rep.LogicalRetired++
		return true, nil
	case in.Op == isa.LT:
		if m.magicStates == 0 {
			m.stalledT++
			m.in.stalledT.Inc()
			return false, nil
		}
		m.magicStates--
		fallthrough
	case in.Op.IsTransverse():
		ops, err := compiler.ExpandTransverse(m.cfg.Layout, in)
		if err != nil {
			panic(fmt.Sprintf("mce: %v", err))
		}
		// Mask the patch for this cycle so QECC yields the sub-cycle slots.
		r0, c0, r1, c1 := m.cfg.Layout.PatchRegion(patch)
		m.mask.SetRegion(r0, c0, r1, c1, true)
		// Unmasking happens next cycle via deferred list: we unmask
		// immediately after replay by recording the patch.
		m.deferUnmask(r0, c0, r1, c1)
		switch in.Op {
		case isa.LMeasZ, isa.LMeasX:
			m.measuring[patch] = in.Op == isa.LMeasX
			m.forgetPatch(patch)
		case isa.LPrep0, isa.LPrepPlus:
			// A fresh patch owes nothing to past syndromes or corrections.
			m.forgetPatch(patch)
			m.frame.Clear(m.cfg.Layout.PatchQubits(patch))
		}
		m.logicalRetired++
		rep.LogicalRetired++
		return true, ops
	default:
		// Mask-manipulation opcodes arriving individually.
		switch in.Op {
		case isa.LMaskGrow, isa.LMaskShrink, isa.LMaskMove:
			m.logicalRetired++
			rep.LogicalRetired++
			return true, nil
		}
		panic(fmt.Sprintf("mce: unhandled logical instruction %s", in))
	}
}

// deferred unmask bookkeeping: patches masked for a single-cycle transverse
// op are restored right after the cycle's words are built. Because
// ReplayCycle snapshots the mask when called, restoring immediately after
// building this cycle's stream is equivalent to restoring next cycle.
type region struct{ r0, c0, r1, c1 int }

func (m *MCE) deferUnmask(r0, c0, r1, c1 int) {
	m.pendingUnmask = append(m.pendingUnmask, region{r0, c0, r1, c1})
}

// forgetPatch drops the syndrome reference of a patch's ancillas: after a
// (re)preparation or destructive measurement, old syndrome records would
// read as a wall of spurious defects.
func (m *MCE) forgetPatch(patch int) {
	var ancillas []int
	for _, q := range m.cfg.Layout.PatchQubits(patch) {
		if m.cfg.Layout.Lat.RoleOf(q) != surface.RoleData {
			ancillas = append(ancillas, q)
		}
	}
	m.hist.Forget(ancillas)
}

func (m *MCE) completeMeasurements(rep *CycleReport) {
	for patch, basisX := range m.measuring {
		// Z-basis outcome = parity over the logical-Z support, corrected by
		// pending X flips; X-basis uses the logical-X support and Z flips.
		support := m.cfg.Layout.PatchLogicalZ(patch)
		if basisX {
			support = m.cfg.Layout.PatchLogicalX(patch)
		}
		parity := 0
		complete := true
		for _, q := range support {
			bit, ok := m.pendingData[q]
			if !ok {
				complete = false
				break
			}
			parity ^= bit
		}
		if !complete {
			continue
		}
		parity ^= m.frame.ParityOn(support, !basisX)
		rep.LogicalResults = append(rep.LogicalResults, LogicalResult{Patch: patch, Bit: parity})
		delete(m.measuring, patch)
	}
	// Restore single-cycle masks.
	for _, r := range m.pendingUnmask {
		m.mask.SetRegion(r.r0, r.c0, r.r1, r.c1, false)
	}
	m.pendingUnmask = m.pendingUnmask[:0]
}
