package mce

import (
	"testing"

	"quest/internal/compiler"
	"quest/internal/distill"
	"quest/internal/isa"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
)

func newMCE(t *testing.T, patches int, opts ...func(*Config)) *MCE {
	t.Helper()
	cfg := Config{
		Design:     microcode.DesignUnitCell,
		Schedule:   surface.Steane,
		Layout:     compiler.NewLayout(3, patches),
		Seed:       1,
		CacheSlots: 4,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestAutonomousQECCReplay(t *testing.T) {
	// With no logical traffic at all, the MCE must keep every qubit busy
	// every sub-cycle, entirely from microcode.
	m := newMCE(t, 2)
	n := m.Layout().Lat.NumQubits()
	for c := 0; c < 5; c++ {
		rep := m.StepCycle()
		if rep.MicroOpsIssued != n*surface.Steane.Depth {
			t.Fatalf("cycle %d: issued %d µops, want %d (one per qubit per sub-cycle)",
				c, rep.MicroOpsIssued, n*surface.Steane.Depth)
		}
		if rep.LogicalRetired != 0 {
			t.Fatalf("cycle %d: phantom logical retirement", c)
		}
	}
	micro, logical, _, _, _ := m.Stats()
	if micro != uint64(5*n*surface.Steane.Depth) || logical != 0 {
		t.Errorf("stats = (%d,%d)", micro, logical)
	}
}

func TestNoiselessSyndromesSettle(t *testing.T) {
	// After the first cycle projects the lattice, later noiseless cycles
	// must produce zero defects — QECC replay is not itself a disturbance.
	m := newMCE(t, 2)
	m.StepCycle()
	m.StepCycle()
	for c := 2; c < 6; c++ {
		rep := m.StepCycle()
		if len(rep.DefectsEscalated) != 0 || rep.DefectsLocal != 0 {
			t.Fatalf("cycle %d: defects on a noiseless substrate (local=%d escalated=%d)",
				c, rep.DefectsLocal, len(rep.DefectsEscalated))
		}
	}
}

func TestTransverseInstructionLifecycle(t *testing.T) {
	m := newMCE(t, 2)
	m.StepCycle() // settle
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LPrep0, Target: 0}); err != nil {
		t.Fatal(err)
	}
	rep := m.StepCycle()
	if rep.LogicalRetired != 1 {
		t.Fatalf("prep not retired: %+v", rep)
	}
	// Measure the prepared patch: must read logical 0.
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LMeasZ, Target: 0}); err != nil {
		t.Fatal(err)
	}
	rep = m.StepCycle()
	if len(rep.LogicalResults) != 1 {
		t.Fatalf("no measurement result: %+v", rep)
	}
	if rep.LogicalResults[0].Patch != 0 || rep.LogicalResults[0].Bit != 0 {
		t.Errorf("measured %+v, want patch 0 bit 0", rep.LogicalResults[0])
	}
}

func TestLogicalXFlipsMeasurement(t *testing.T) {
	m := newMCE(t, 1)
	m.StepCycle()
	for _, in := range []isa.LogicalInstr{
		{Op: isa.LPrep0, Target: 0},
		{Op: isa.LX, Target: 0},
		{Op: isa.LMeasZ, Target: 0},
	} {
		if err := m.Enqueue(in); err != nil {
			t.Fatal(err)
		}
	}
	// One instruction per cycle per patch (patch busy rule serializes).
	var results []LogicalResult
	for c := 0; c < 6 && len(results) == 0; c++ {
		rep := m.StepCycle()
		results = append(results, rep.LogicalResults...)
	}
	if len(results) != 1 || results[0].Bit != 1 {
		t.Fatalf("logical X then MeasZ: results = %+v, want bit 1", results)
	}
}

func TestQECCContinuesDuringLogicalWork(t *testing.T) {
	// The determinism invariant: logical traffic must never reduce the µop
	// cadence — every qubit still gets Depth µops per cycle.
	m := newMCE(t, 3)
	n := m.Layout().Lat.NumQubits()
	m.StepCycle()
	m.Enqueue(isa.LogicalInstr{Op: isa.LPrep0, Target: 0})
	m.Enqueue(isa.LogicalInstr{Op: isa.LH, Target: 1})
	m.Enqueue(isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 2})
	for c := 0; c < 20; c++ {
		rep := m.StepCycle()
		if rep.MicroOpsIssued != n*surface.Steane.Depth {
			t.Fatalf("cycle %d: cadence broken (%d µops)", c, rep.MicroOpsIssued)
		}
	}
	if m.PendingLogical() != 0 {
		t.Errorf("logical backlog %d after 20 cycles", m.PendingLogical())
	}
}

func TestBraidOccupiesPatchesAndCompletes(t *testing.T) {
	m := newMCE(t, 2)
	m.StepCycle()
	m.Enqueue(isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 1})
	// While braiding, further work on either patch must wait.
	m.Enqueue(isa.LogicalInstr{Op: isa.LH, Target: 0})
	retired := 0
	braidCycles := 0
	for c := 0; c < 30 && retired < 2; c++ {
		rep := m.StepCycle()
		retired += rep.LogicalRetired
		if len(m.braids) > 0 {
			braidCycles++
		}
	}
	if retired != 2 {
		t.Fatalf("retired %d of 2 instructions", retired)
	}
	if braidCycles < 2 {
		t.Errorf("braid completed in %d cycles, want multi-cycle", braidCycles)
	}
}

func TestTGateStallsWithoutMagicState(t *testing.T) {
	m := newMCE(t, 1)
	m.StepCycle()
	m.Enqueue(isa.LogicalInstr{Op: isa.LT, Target: 0})
	for c := 0; c < 3; c++ {
		rep := m.StepCycle()
		if rep.LogicalRetired != 0 {
			t.Fatal("T retired without a magic state")
		}
	}
	_, _, _, _, stalled := m.Stats()
	if stalled == 0 {
		t.Error("no stall recorded")
	}
	m.SupplyMagicStates(1)
	rep := m.StepCycle()
	if rep.LogicalRetired != 1 {
		t.Fatalf("T did not retire after supply: %+v", rep)
	}
	if m.MagicStates() != 0 {
		t.Errorf("magic state not consumed: %d left", m.MagicStates())
	}
}

func TestCacheReplayOfDistillationBody(t *testing.T) {
	m := newMCE(t, 2)
	m.StepCycle()
	// Load a deterministic loop body shaped like a distillation slice
	// restricted to this tile's two patches: Pauli/H/T-free so it retires
	// cleanly without a magic-state supply.
	var body []isa.LogicalInstr
	for i := 0; i < len(distill.RoundCircuit()) && len(body) < 12; i++ {
		body = append(body,
			isa.LogicalInstr{Op: isa.LX, Target: uint8(i % 2)},
			isa.LogicalInstr{Op: isa.LZ, Target: uint8((i + 1) % 2)},
		)
	}
	if err := m.LoadCacheSlot(0, body); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LCacheRun, Target: 0, Arg: 3}); err != nil {
		t.Fatal(err)
	}
	want := 3 * len(body)
	retired := 0
	for c := 0; c < 40*len(body) && retired < want; c++ {
		rep := m.StepCycle()
		retired += rep.LogicalRetired
	}
	if retired != want {
		t.Fatalf("cache replay retired %d, want %d", retired, want)
	}
	_, _, hits, loads, _ := m.Stats()
	if hits != 3 || loads != 1 {
		t.Errorf("cache stats hits=%d loads=%d, want 3/1", hits, loads)
	}
}

func TestCacheErrors(t *testing.T) {
	m := newMCE(t, 1)
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LCacheRun, Target: 0, Arg: 1}); err == nil {
		t.Error("run on empty slot accepted")
	}
	if err := m.LoadCacheSlot(9, []isa.LogicalInstr{{Op: isa.LH}}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := m.LoadCacheSlot(0, nil); err == nil {
		t.Error("empty body accepted")
	}
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LCacheLoad, Target: 0}); err == nil {
		t.Error("bare LCacheLoad accepted")
	}
	noCache := newMCE(t, 1, func(c *Config) { c.CacheSlots = 0 })
	if err := noCache.LoadCacheSlot(0, []isa.LogicalInstr{{Op: isa.LH}}); err == nil {
		t.Error("cache-disabled load accepted")
	}
}

func TestEnqueueValidation(t *testing.T) {
	m := newMCE(t, 2)
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LH, Target: 5}); err == nil {
		t.Error("patch outside tile accepted")
	}
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 5}); err == nil {
		t.Error("CNOT partner outside tile accepted")
	}
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LSyncToken, Target: 1}); err != nil {
		t.Errorf("sync token rejected: %v", err)
	}
	if m.PendingLogical() != 0 {
		t.Error("sync token buffered")
	}
}

func TestNoisyRunLocalDecoderWorks(t *testing.T) {
	nm := noise.Uniform(5e-4)
	m := newMCE(t, 2, func(c *Config) { c.Noise = &nm; c.Seed = 42 })
	localTotal, escalatedTotal := 0, 0
	for c := 0; c < 200; c++ {
		rep := m.StepCycle()
		localTotal += rep.DefectsLocal
		escalatedTotal += len(rep.DefectsEscalated)
	}
	if localTotal == 0 {
		t.Error("local decoder never resolved anything over 200 noisy cycles")
	}
	// The LUT handles the common case: most rounds with defects should be
	// resolved locally.
	if localTotal < escalatedTotal/4 {
		t.Errorf("local decoder resolved %d vs %d escalated — LUT ineffective", localTotal, escalatedTotal)
	}
}

func TestMicrocodeTrafficIsInternal(t *testing.T) {
	// The microcode store streams bits every cycle, but that traffic never
	// appears on the global bus — it is the whole point of the architecture.
	m := newMCE(t, 2)
	m.StepCycle()
	m.StepCycle()
	if m.Store().BitsStreamed() == 0 {
		t.Error("no microcode streaming recorded")
	}
}

func TestXBasisMeasurement(t *testing.T) {
	m := newMCE(t, 1)
	m.StepCycle()
	for _, in := range []isa.LogicalInstr{
		{Op: isa.LPrepPlus, Target: 0},
		{Op: isa.LMeasX, Target: 0},
	} {
		if err := m.Enqueue(in); err != nil {
			t.Fatal(err)
		}
	}
	var results []LogicalResult
	for c := 0; c < 6 && len(results) == 0; c++ {
		rep := m.StepCycle()
		results = append(results, rep.LogicalResults...)
	}
	if len(results) != 1 || results[0].Bit != 0 {
		t.Fatalf("prep|+> then MeasX: %+v, want bit 0", results)
	}
}

func TestDesignsProduceIdenticalBehaviour(t *testing.T) {
	// RAM, FIFO and unit-cell MCEs must retire the same program with the
	// same results — the microcode organization is invisible to semantics.
	run := func(d microcode.Design) []LogicalResult {
		m := newMCE(t, 2, func(c *Config) { c.Design = d })
		m.StepCycle()
		m.Enqueue(isa.LogicalInstr{Op: isa.LPrep0, Target: 0})
		m.Enqueue(isa.LogicalInstr{Op: isa.LX, Target: 0})
		m.Enqueue(isa.LogicalInstr{Op: isa.LMeasZ, Target: 0})
		var out []LogicalResult
		for c := 0; c < 8; c++ {
			out = append(out, m.StepCycle().LogicalResults...)
		}
		return out
	}
	ram := run(microcode.DesignRAM)
	fifo := run(microcode.DesignFIFO)
	uc := run(microcode.DesignUnitCell)
	if len(ram) != 1 || len(fifo) != 1 || len(uc) != 1 {
		t.Fatalf("result counts: %d %d %d", len(ram), len(fifo), len(uc))
	}
	if ram[0] != fifo[0] || fifo[0] != uc[0] {
		t.Errorf("designs disagree: %+v %+v %+v", ram[0], fifo[0], uc[0])
	}
	if ram[0].Bit != 1 {
		t.Errorf("prep,X,meas = %d, want 1", ram[0].Bit)
	}
}

func TestBufferCapacityBackpressure(t *testing.T) {
	m := newMCE(t, 2, func(c *Config) { c.BufferCapacity = 3 })
	for i := 0; i < 3; i++ {
		if err := m.Enqueue(isa.LogicalInstr{Op: isa.LH, Target: 0}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if m.FreeBufferSlots() != 0 {
		t.Errorf("free slots = %d", m.FreeBufferSlots())
	}
	if err := m.Enqueue(isa.LogicalInstr{Op: isa.LH, Target: 0}); err == nil {
		t.Error("overfull buffer accepted an instruction")
	}
	// Draining frees slots again.
	m.StepCycle()
	if m.FreeBufferSlots() == 0 {
		t.Error("no slots freed after issue")
	}
	// Unbounded MCEs report a large sentinel.
	u := newMCE(t, 1)
	if u.FreeBufferSlots() < 1<<20 {
		t.Error("unbounded buffer reports small free count")
	}
}

func TestConcurrentBraidsOnDisjointPatches(t *testing.T) {
	m := newMCE(t, 4)
	m.StepCycle()
	// Two braids on disjoint patch pairs run concurrently.
	m.Enqueue(isa.LogicalInstr{Op: isa.LCNOT, Target: 0, Arg: 1})
	m.Enqueue(isa.LogicalInstr{Op: isa.LCNOT, Target: 2, Arg: 3})
	rep := m.StepCycle()
	if rep.LogicalRetired != 0 {
		t.Fatal("braids retired instantly")
	}
	if len(m.braids) != 2 {
		t.Fatalf("concurrent braids = %d, want 2", len(m.braids))
	}
	retired := 0
	for c := 0; c < 30 && retired < 2; c++ {
		retired += m.StepCycle().LogicalRetired
	}
	if retired != 2 {
		t.Errorf("retired %d of 2 braids", retired)
	}
}

func TestIssueWidthCapsPerCycleStarts(t *testing.T) {
	m := newMCE(t, 6)
	m.StepCycle()
	// 6 independent frame-level Paulis: only issueWidth (4) start per cycle.
	for q := 0; q < 6; q++ {
		if err := m.Enqueue(isa.LogicalInstr{Op: isa.LX, Target: uint8(q)}); err != nil {
			t.Fatal(err)
		}
	}
	r1 := m.StepCycle()
	if r1.LogicalRetired != 4 {
		t.Errorf("first cycle retired %d, want issue width 4", r1.LogicalRetired)
	}
	r2 := m.StepCycle()
	if r2.LogicalRetired != 2 {
		t.Errorf("second cycle retired %d, want 2", r2.LogicalRetired)
	}
}

func TestPerPatchProgramOrderPreserved(t *testing.T) {
	// X then MeasZ then X on one patch: the measurement must see exactly one
	// X (order preserved), and the trailing X applies to the dead patch
	// harmlessly.
	m := newMCE(t, 1)
	m.StepCycle()
	m.Enqueue(isa.LogicalInstr{Op: isa.LPrep0, Target: 0})
	m.Enqueue(isa.LogicalInstr{Op: isa.LX, Target: 0})
	m.Enqueue(isa.LogicalInstr{Op: isa.LMeasZ, Target: 0})
	m.Enqueue(isa.LogicalInstr{Op: isa.LX, Target: 0})
	var results []LogicalResult
	for c := 0; c < 10; c++ {
		results = append(results, m.StepCycle().LogicalResults...)
	}
	if len(results) != 1 || results[0].Bit != 1 {
		t.Fatalf("results = %+v, want one measurement of 1", results)
	}
}
