// Package metrics is the repository's instrumentation layer: a small,
// dependency-free, concurrency-safe registry of named counters, gauges and
// fixed-bucket latency histograms. The paper's whole evaluation is a set of
// rate and latency claims — instruction bandwidth per decoding approach,
// per-round decode latency, sustained trial throughput — and this package is
// how the running code exposes those quantities instead of asserting them.
//
// Design points:
//
//   - All mutation is lock-free (atomics); the registry lock is taken only on
//     first registration of a name, so instruments resolved once and hit in a
//     hot loop never contend on a mutex.
//   - Instruments are injectable: packages record against a *Registry they
//     are handed (defaulting to the package-level Default), so a worker pool
//     can give each goroutine a private shard registry and Merge the shards
//     after the pool drains — per-worker aggregation with zero cross-worker
//     cache-line traffic (see mc.RunWith).
//   - Histograms use fixed bucket boundaries, so merging shards is a plain
//     per-bucket add, and quantile summaries (p50/p95/p99) are deterministic
//     functions of the bucket counts.
//   - Observation never feeds back into simulation results: removing every
//     metric call changes nothing but the report. The determinism tests in
//     internal/core pin that property.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous float64 value (occupancy, utilization, rate).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates float64 values with a CAS loop.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		v := math.Float64frombits(old) + d
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) min(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if v >= cur {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if v <= cur {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; one overflow bucket catches v > bounds[last].
// Because the boundaries are fixed at construction, two histograms with the
// same bounds merge by per-bucket addition, and quantiles are deterministic.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. A nil or empty bounds slice uses LatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// LatencyBounds returns the default latency bucket boundaries in nanoseconds:
// powers of two from 64ns to ~4.3s. Wide enough for a single map lookup and
// for a full threshold sweep cell.
func LatencyBounds() []float64 {
	bounds := make([]float64, 27)
	v := 64.0
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.min(v)
	h.max.max(v)
}

// bucketIndex returns the bucket for v (binary search over the bounds).
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns a copy of the per-bucket counts (len(Bounds())+1, the
// last being the overflow bucket).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank. The estimate is clamped to the
// observed [min, max], so exact single-value distributions report exactly.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.max.load()
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			frac := (rank - cum) / n
			v := lower + frac*(upper-lower)
			return clampFloat(v, h.min.load(), h.max.load())
		}
		cum += n
	}
	return h.max.load()
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram. An empty histogram reports all zeros.
func (h *Histogram) Summary() HistogramSummary {
	n := h.count.Load()
	if n == 0 {
		return HistogramSummary{}
	}
	sum := h.sum.load()
	return HistogramSummary{
		Count: n,
		Sum:   sum,
		Min:   h.min.load(),
		Max:   h.max.load(),
		Mean:  sum / float64(n),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named collection of instruments. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry. Packages record here unless handed an
// explicit instance (worker shards, tests that must not share state).
var Default = New()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use (nil bounds = LatencyBounds). Later callers get the existing
// histogram regardless of the bounds they pass; mixing bounds under one name
// is a programming error the first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Merge folds src into r: counters and histogram buckets add, gauges take
// src's value. Histograms sharing a name must share bounds (they do when both
// sides were produced by the same instrumented code, the shard use case);
// mismatched bounds panic rather than silently mis-binning.
func (r *Registry) Merge(src *Registry) {
	src.mu.RLock()
	defer src.mu.RUnlock()
	for name, c := range src.counters { //quest:allow(detrange) destination writes are keyed by instrument name; order cannot escape
		if v := c.Value(); v != 0 {
			r.Counter(name).Add(v)
		}
	}
	for name, g := range src.gauges { //quest:allow(detrange) destination writes are keyed by instrument name; order cannot escape
		r.Gauge(name).Set(g.Value())
	}
	for name, sh := range src.hists { //quest:allow(detrange) destination writes are keyed by instrument name; order cannot escape
		if sh.Count() == 0 {
			continue
		}
		dh := r.Histogram(name, sh.bounds)
		if len(dh.bounds) != len(sh.bounds) {
			panic(fmt.Sprintf("metrics: merge of histogram %q with mismatched bounds", name))
		}
		for i := range dh.bounds {
			if dh.bounds[i] != sh.bounds[i] {
				panic(fmt.Sprintf("metrics: merge of histogram %q with mismatched bounds", name))
			}
		}
		for i := range sh.buckets {
			if n := sh.buckets[i].Load(); n != 0 {
				dh.buckets[i].Add(n)
			}
		}
		dh.count.Add(sh.count.Load())
		dh.sum.add(sh.sum.load())
		dh.min.min(sh.min.load())
		dh.max.max(sh.max.load())
	}
}

// Reset zeroes every registered instrument in place (registrations survive,
// so instruments resolved earlier keep recording).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters { //quest:allow(detrange) zeroing every instrument is order-independent
		c.n.Store(0)
	}
	for _, g := range r.gauges { //quest:allow(detrange) zeroing every instrument is order-independent
		g.bits.Store(0)
	}
	for _, h := range r.hists { //quest:allow(detrange) zeroing every instrument is order-independent
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.store(0)
		h.min.store(math.Inf(1))
		h.max.store(math.Inf(-1))
	}
}

// CounterSnapshot is one counter in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram in a Snapshot.
type HistogramSnapshot struct {
	Name    string           `json:"name"`
	Summary HistogramSummary `json:"summary"`
}

// Snapshot is a stable, name-sorted copy of a registry's state.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry. Output order is sorted by name, so two
// snapshots of identical state render identically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters { //quest:allow(detrange) append order is normalized by s.sorted() before return
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges { //quest:allow(detrange) append order is normalized by s.sorted() before return
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists { //quest:allow(detrange) append order is normalized by s.sorted() before return
		s.Histograms = append(s.Histograms, HistogramSnapshot{Name: name, Summary: h.Summary()})
	}
	return s.sorted()
}

// sorted returns the snapshot with every section ordered by name. Snapshot()
// already sorts, but WriteText/WriteJSON re-sort defensively so hand-built or
// mutated Snapshot values (and any future unsorted producer) still render
// deterministically — the property CI diffs and the golden tests rely on.
func (s Snapshot) sorted() Snapshot {
	s.Counters = append([]CounterSnapshot(nil), s.Counters...)
	s.Gauges = append([]GaugeSnapshot(nil), s.Gauges...)
	s.Histograms = append([]HistogramSnapshot(nil), s.Histograms...)
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Delta returns the change from prev to s, for periodic telemetry (the
// quest-events/1 stream emits registry deltas per sampling interval):
// counters and histogram count/sum subtract by name (an instrument absent
// from prev contributes its full value), gauges are instantaneous and carry
// s's current value, and histogram min/max/quantiles remain cumulative —
// bucket boundaries make per-interval quantiles unrecoverable from two
// summaries, and lifetime extremes are the more useful health signal
// anyway. Instruments that did not change are dropped, so an idle interval
// deltas to an empty snapshot. Both inputs and the result are name-sorted.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevCounters := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	prevGauges := make(map[string]float64, len(prev.Gauges))
	for _, g := range prev.Gauges {
		prevGauges[g.Name] = g.Value
	}
	prevHists := make(map[string]HistogramSummary, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h.Summary
	}
	var d Snapshot
	for _, c := range s.Counters {
		if dv := c.Value - prevCounters[c.Name]; dv != 0 {
			d.Counters = append(d.Counters, CounterSnapshot{Name: c.Name, Value: dv})
		}
	}
	for _, g := range s.Gauges {
		if pv, ok := prevGauges[g.Name]; !ok || pv != g.Value {
			d.Gauges = append(d.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		p := prevHists[h.Name]
		if h.Summary.Count == p.Count {
			continue
		}
		sum := h.Summary
		sum.Count -= p.Count
		sum.Sum -= p.Sum
		if sum.Count > 0 {
			sum.Mean = sum.Sum / float64(sum.Count)
		}
		d.Histograms = append(d.Histograms, HistogramSnapshot{Name: h.Name, Summary: sum})
	}
	return d.sorted()
}

// WriteText renders the snapshot as aligned text, one instrument per line,
// sorted by name regardless of the receiver's order.
func (s Snapshot) WriteText(w io.Writer) error {
	s = s.sorted()
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter   %-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge     %-40s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		sum := h.Summary
		if _, err := fmt.Fprintf(w,
			"histogram %-40s count=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
			h.Name, sum.Count, sum.Mean, sum.P50, sum.P95, sum.P99, sum.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON, sorted by name regardless
// of the receiver's order.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.sorted())
}
