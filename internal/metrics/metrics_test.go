package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the binning convention: bucket i counts
// bounds[i-1] < v <= bounds[i], with one overflow bucket above the last
// bound. Off-by-one here would silently shift every quantile.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {5, 0}, {10, 0}, // at the bound: inclusive below
		{10.0001, 1}, {20, 1},
		{20.5, 2}, {40, 2},
		{40.5, 3}, {1e9, 3}, // overflow bucket
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := h.BucketCounts()
	want := []uint64{4, 2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d, want 10", h.Count())
	}
}

func TestHistogramRejectsNonIncreasingBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-increasing bounds")
		}
	}()
	NewHistogram([]float64{10, 10, 20})
}

func TestLatencyBoundsAreIncreasing(t *testing.T) {
	b := LatencyBounds()
	if len(b) == 0 {
		t.Fatal("empty default bounds")
	}
	if b[0] != 64 {
		t.Errorf("first bound = %v, want 64", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
	if last := b[len(b)-1]; last < 4e9 {
		t.Errorf("last bound %v does not cover multi-second latencies", last)
	}
}

func TestHistogramQuantilesAndSummary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16})
	// 100 observations uniform over (0, 10].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-5.05) > 1e-9 {
		t.Errorf("mean = %v, want 5.05", s.Mean)
	}
	if s.Min != 0.1 || s.Max != 10 {
		t.Errorf("min/max = %v/%v, want 0.1/10", s.Min, s.Max)
	}
	// p50 of uniform (0,10] is ~5; bucket interpolation puts it in (4,8].
	if s.P50 < 4 || s.P50 > 8 {
		t.Errorf("p50 = %v, want within (4, 8]", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Errorf("p99 %v exceeds max %v", s.P99, s.Max)
	}
}

// TestHistogramSingleValue: a constant distribution must report that constant
// at every quantile (the clamp-to-observed-range rule).
func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for i := 0; i < 50; i++ {
		h.Observe(42)
	}
	s := h.Summary()
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q != 42 {
			t.Errorf("quantile = %v, want exactly 42 (summary %+v)", q, s)
		}
	}
}

func TestHistogramEmptySummary(t *testing.T) {
	h := NewHistogram(nil)
	if s := h.Summary(); s != (HistogramSummary{}) {
		t.Errorf("empty histogram summary = %+v, want zero", s)
	}
}

// TestRegistryMerge is the per-worker shard contract: counters and histogram
// buckets add, gauges take the source value, and the merged histogram digest
// equals the digest of observing everything in one registry.
func TestRegistryMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	combined := New()
	dst := New()
	shards := []*Registry{New(), New(), New()}
	v := 0.0
	for si, sh := range shards {
		for i := 0; i < 20; i++ {
			v = math.Mod(v*7+3, 120)
			sh.Histogram("lat", bounds).Observe(v)
			combined.Histogram("lat", bounds).Observe(v)
		}
		sh.Counter("trials").Add(uint64(10 * (si + 1)))
		sh.Gauge("util").Set(float64(si))
	}
	for _, sh := range shards {
		dst.Merge(sh)
	}
	if got := dst.Counter("trials").Value(); got != 10+20+30 {
		t.Errorf("merged counter = %d, want 60", got)
	}
	if got := dst.Gauge("util").Value(); got != 2 {
		t.Errorf("merged gauge = %v, want 2 (last shard)", got)
	}
	if got, want := dst.Histogram("lat", bounds).Summary(), combined.Histogram("lat", bounds).Summary(); got != want {
		t.Errorf("merged summary %+v != combined %+v", got, want)
	}
}

func TestRegistryMergeMismatchedBoundsPanics(t *testing.T) {
	src := New()
	src.Histogram("h", []float64{1, 2}).Observe(1)
	dst := New()
	dst.Histogram("h", []float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("merge of mismatched bounds did not panic")
		}
	}()
	dst.Merge(src)
}

func TestRegistryResetKeepsInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	c.Add(5)
	h.Observe(128)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left state: counter=%d hist=%d", c.Value(), h.Count())
	}
	// The old handle must still be live (registrations survive Reset).
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("counter handle detached by Reset")
	}
	if h.Summary() != (HistogramSummary{}) {
		t.Fatalf("reset histogram summary not zero: %+v", h.Summary())
	}
}

func TestSnapshotStableAndRenders(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("z.util").Set(0.5)
	r.Histogram("m.lat", nil).Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.count" {
		t.Fatalf("snapshot not sorted: %+v", s.Counters)
	}
	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.count", "b.count", "z.util", "m.lat", "count=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, js.String())
	}
	if len(back.Counters) != 2 || back.Counters[1].Value != 2 {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
}

// TestRegistryConcurrency exercises every mutation path under the race
// detector: concurrent get-or-create of the same names, observation, merge
// and snapshot.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	dst := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := New()
			for i := 0; i < 500; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Set(float64(i))
				r.Histogram("shared.lat", nil).Observe(float64(i%2000 + 1))
				shard.Counter("shard.count").Inc()
				shard.Histogram("shard.lat", nil).Observe(float64(i + 1))
			}
			dst.Merge(shard)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = dst.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared.count").Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
	if got := dst.Counter("shard.count").Value(); got != 8*500 {
		t.Errorf("merged shard counter = %d, want %d", got, 8*500)
	}
	if got := dst.Histogram("shard.lat", nil).Count(); got != 8*500 {
		t.Errorf("merged shard histogram = %d, want %d", got, 8*500)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&0xffff) + 1)
	}
}

// TestSnapshotDelta pins the per-interval delta semantics the quest-events/1
// stream relies on: counters and histogram count/sum subtract, gauges are
// instantaneous, unchanged instruments vanish, and instruments new since the
// previous snapshot contribute their full value.
func TestSnapshotDelta(t *testing.T) {
	r := New()
	r.Counter("trials").Add(100)
	r.Counter("idle").Add(7)
	r.Gauge("busy").Set(0.5)
	r.Gauge("steady").Set(1.0)
	h := r.Histogram("lat", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	prev := r.Snapshot()

	r.Counter("trials").Add(40)
	r.Counter("fresh").Add(3) // appears between snapshots
	r.Gauge("busy").Set(0.8)
	h.Observe(500)
	h.Observe(500)
	d := r.Snapshot().Delta(prev)

	if len(d.Counters) != 2 ||
		d.Counters[0] != (CounterSnapshot{Name: "fresh", Value: 3}) ||
		d.Counters[1] != (CounterSnapshot{Name: "trials", Value: 40}) {
		t.Fatalf("counters = %+v", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0] != (GaugeSnapshot{Name: "busy", Value: 0.8}) {
		t.Fatalf("gauges = %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("histograms = %+v", d.Histograms)
	}
	hs := d.Histograms[0].Summary
	if hs.Count != 2 || hs.Sum != 1000 || hs.Mean != 500 {
		t.Fatalf("histogram delta = %+v, want count=2 sum=1000 mean=500", hs)
	}
	// Min/max stay cumulative: lifetime extremes, not interval extremes.
	if hs.Min != 5 || hs.Max != 500 {
		t.Fatalf("histogram extremes = min %v max %v, want lifetime 5/500", hs.Min, hs.Max)
	}

	// No change at all deltas to an empty snapshot.
	empty := r.Snapshot().Delta(r.Snapshot())
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Fatalf("idle delta = %+v, want empty", empty)
	}
}
