package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version 0.0.4)
// over a Registry, so a long sim or benchmark run can be scraped live from
// the same HTTP server that serves pprof (see internal/obsflags). No client
// library is used: the format is a few lines per instrument and hand-rolling
// it keeps the repository dependency-free.
//
// Mapping: every instrument name is prefixed with "quest_" and sanitized to
// the Prometheus grammar (dots and other invalid runes become underscores).
// Counters expose as counters, gauges as gauges, and fixed-bucket histograms
// as native Prometheus histograms — cumulative `_bucket{le="..."}` series
// ending in `le="+Inf"`, plus `_sum` and `_count`. Output is sorted by
// instrument name, so two scrapes of identical state are byte-identical.

// PrometheusName sanitizes an instrument name to a valid Prometheus metric
// name with the quest_ namespace prefix: "master.decode.ns" →
// "quest_master_decode_ns".
func PrometheusName(name string) string {
	var b strings.Builder
	b.WriteString("quest_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects, including the +Inf /
// -Inf / NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus renders every registered instrument in the Prometheus text
// exposition format, sorted by name. Histograms are read bucket-by-bucket
// (not from a Summary), so the exposition carries the full distribution.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type hist struct {
		name string
		h    *Histogram
	}
	counters := make([]CounterSnapshot, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	gauges := make([]GaugeSnapshot, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	hists := make([]hist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, hist{name, h})
	}
	r.mu.RUnlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	bw := bufio.NewWriter(w)
	for _, c := range counters {
		n := PrometheusName(c.Name)
		bw.WriteString("# TYPE " + n + " counter\n")
		bw.WriteString(n + " " + strconv.FormatUint(c.Value, 10) + "\n")
	}
	for _, g := range gauges {
		n := PrometheusName(g.Name)
		bw.WriteString("# TYPE " + n + " gauge\n")
		bw.WriteString(n + " " + promFloat(g.Value) + "\n")
	}
	for _, hh := range hists {
		n := PrometheusName(hh.name)
		bw.WriteString("# TYPE " + n + " histogram\n")
		bounds := hh.h.Bounds()
		bucketCounts := hh.h.BucketCounts()
		cum := uint64(0)
		for i, b := range bounds {
			cum += bucketCounts[i]
			bw.WriteString(n + `_bucket{le="` + promFloat(b) + `"} ` +
				strconv.FormatUint(cum, 10) + "\n")
		}
		cum += bucketCounts[len(bucketCounts)-1]
		bw.WriteString(n + `_bucket{le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
		bw.WriteString(n + "_sum " + promFloat(hh.h.sum.load()) + "\n")
		bw.WriteString(n + "_count " + strconv.FormatUint(hh.h.Count(), 10) + "\n")
	}
	return bw.Flush()
}

// Handler serves the registry in the Prometheus text exposition format —
// mount it at /metrics next to the pprof handlers.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
