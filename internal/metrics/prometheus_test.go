package metrics

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"master.decode.ns":  "quest_master_decode_ns",
		"mc.trials_per_sec": "quest_mc_trials_per_sec",
		"noc.hops/max":      "quest_noc_hops_max",
		"weird-name.2":      "quest_weird_name_2",
		"UPPER.case":        "quest_UPPER_case",
		"colon:ok":          "quest_colon:ok",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusExposition pins the exposition shape: every counter,
// gauge and histogram appears with a TYPE line; histogram buckets are
// cumulative and end at +Inf; output is sorted and deterministic.
func TestWritePrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("master.dispatched").Add(7)
	r.Gauge("mc.trials_per_sec").Set(1234.5)
	h := r.Histogram("decode.ns", []float64{10, 20, 40})
	for _, v := range []float64{5, 15, 15, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE quest_master_dispatched counter\nquest_master_dispatched 7\n",
		"# TYPE quest_mc_trials_per_sec gauge\nquest_mc_trials_per_sec 1234.5\n",
		"# TYPE quest_decode_ns histogram\n",
		`quest_decode_ns_bucket{le="10"} 1`,
		`quest_decode_ns_bucket{le="20"} 3`,
		`quest_decode_ns_bucket{le="40"} 3`,
		`quest_decode_ns_bucket{le="+Inf"} 4`,
		"quest_decode_ns_sum 135\n",
		"quest_decode_ns_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two scrapes of identical state differ")
	}
}

// TestWritePrometheusCoversEveryInstrument is the acceptance-criterion check
// in miniature: every registered instrument name must appear in the scrape.
func TestWritePrometheusCoversEveryInstrument(t *testing.T) {
	r := New()
	var names []string
	for i := 0; i < 20; i++ {
		c := fmt.Sprintf("c.%d", i)
		g := fmt.Sprintf("g.%d", i)
		h := fmt.Sprintf("h.%d", i)
		r.Counter(c).Inc()
		r.Gauge(g).Set(float64(i))
		r.Histogram(h, nil).Observe(float64(i))
		names = append(names, c, g, h)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if !strings.Contains(buf.String(), PrometheusName(n)) {
			t.Errorf("scrape missing instrument %q", n)
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := New()
	r.Counter("x.y").Add(3)
	r.Gauge("nan.gauge").Set(math.NaN())
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(buf.String(), "quest_x_y 3") {
		t.Errorf("handler response missing counter:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "quest_nan_gauge NaN") {
		t.Errorf("handler response missing NaN gauge:\n%s", buf.String())
	}
}

// TestSnapshotDeterministicUnderConcurrentRegistration registers instruments
// from many goroutines (racing registration order), then pins that WriteText,
// WriteJSON and WritePrometheus all render name-sorted, identical output on
// repeated calls — the satellite-3 determinism contract.
func TestSnapshotDeterministicUnderConcurrentRegistration(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Counter(fmt.Sprintf("c.%02d", i)).Inc()
				r.Gauge(fmt.Sprintf("g.%02d", i)).Set(float64(i))
				r.Histogram(fmt.Sprintf("h.%02d", i), []float64{1, 2}).Observe(1)
			}
		}(w)
	}
	wg.Wait()
	render := func() (string, string, string) {
		var text, js, prom bytes.Buffer
		s := r.Snapshot()
		if err := s.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := r.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String(), prom.String()
	}
	t1, j1, p1 := render()
	t2, j2, p2 := render()
	if t1 != t2 || j1 != j2 || p1 != p2 {
		t.Fatal("repeated renders of identical state differ")
	}
	// Sorted order: counter c.00 precedes c.49 in every format.
	for _, out := range []string{t1, j1, p1} {
		a := strings.Index(out, "c_00")
		if a < 0 {
			a = strings.Index(out, "c.00")
		}
		b := strings.Index(out, "c_49")
		if b < 0 {
			b = strings.Index(out, "c.49")
		}
		if a < 0 || b < 0 || a > b {
			t.Errorf("output not name-sorted (c.00 at %d, c.49 at %d)", a, b)
		}
	}
}

// TestWriteTextSortsHandBuiltSnapshot pins the defensive re-sort: a Snapshot
// assembled out of order still renders sorted.
func TestWriteTextSortsHandBuiltSnapshot(t *testing.T) {
	s := Snapshot{
		Counters: []CounterSnapshot{{Name: "z.last", Value: 1}, {Name: "a.first", Value: 2}},
	}
	var text, js bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{text.String(), js.String()} {
		if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
			t.Errorf("hand-built snapshot rendered unsorted:\n%s", out)
		}
	}
	if len(s.Counters) != 2 || s.Counters[0].Name != "z.last" {
		t.Error("WriteText mutated the caller's snapshot")
	}
}

// TestQuantileAtBucketBoundariesAfterMerge pins Quantile behaviour at exact
// bucket boundaries for a histogram assembled by merging disjoint shards —
// the shape every mc.RunWith aggregation produces.
func TestQuantileAtBucketBoundariesAfterMerge(t *testing.T) {
	bounds := []float64{10, 20, 30, 40}
	a, b := New(), New()
	ha := a.Histogram("lat", bounds)
	hb := b.Histogram("lat", bounds)
	// Shard a fills only the first bucket with the boundary value itself;
	// shard b fills only the third. Disjoint buckets merge by addition.
	for i := 0; i < 50; i++ {
		ha.Observe(10) // v == bounds[0]: must land in bucket 0 (le="10")
	}
	for i := 0; i < 50; i++ {
		hb.Observe(30) // v == bounds[2]
	}
	m := New()
	m.Merge(a)
	m.Merge(b)
	h := m.Histogram("lat", bounds)
	if h.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", h.Count())
	}
	got := h.BucketCounts()
	want := []uint64{50, 0, 50, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged buckets = %v, want %v", got, want)
		}
	}
	// Quantiles are deterministic functions of the merged buckets, clamped to
	// the observed [min, max] = [10, 30].
	if q := h.Quantile(0.25); q < 10 || q > 10+1e-9 {
		t.Errorf("p25 = %v, want 10 (inside first bucket, clamped to min)", q)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want exactly 10 (rank lands on bucket-0 boundary)", q)
	}
	if q := h.Quantile(0.75); q < 20 || q > 30 {
		t.Errorf("p75 = %v, want inside (20,30]", q)
	}
	if q := h.Quantile(0.99); q > 30 {
		t.Errorf("p99 = %v, want ≤ 30 (clamped to observed max)", q)
	}
	// Merge order must not matter.
	m2 := New()
	m2.Merge(b)
	m2.Merge(a)
	h2 := m2.Histogram("lat", bounds)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.99} {
		if h.Quantile(q) != h2.Quantile(q) {
			t.Errorf("quantile %v depends on merge order: %v vs %v", q, h.Quantile(q), h2.Quantile(q))
		}
	}
}
