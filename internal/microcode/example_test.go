package microcode_test

import (
	"fmt"

	"quest/internal/jj"
	"quest/internal/microcode"
	"quest/internal/surface"
)

// ExampleQubitsServiced reproduces the Figure 11 headline: at a fixed 4 Kb
// JJ memory, the unit-cell organization services ~70× the qubits of the
// conventional RAM design.
func ExampleQubitsServiced() {
	ram := microcode.QubitsServiced(microcode.DesignRAM, surface.Steane,
		jj.FourChannel1Kb, microcode.InstructionWindowNs)
	uc := microcode.QubitsServiced(microcode.DesignUnitCell, surface.Steane,
		jj.FourChannel1Kb, microcode.InstructionWindowNs)
	fmt.Println("RAM:", ram, "qubits")
	fmt.Println("unit cell:", uc, "qubits")
	fmt.Println("improvement ≥ 50x:", uc/ram >= 50)
	// Output:
	// RAM: 45 qubits
	// unit cell: 3200 qubits
	// improvement ≥ 50x: true
}

// ExampleCapacityBits shows the three scaling laws of Figure 10.
func ExampleCapacityBits() {
	for _, n := range []int{100, 1000} {
		fmt.Printf("n=%d: RAM=%d FIFO=%d unit-cell=%d\n", n,
			microcode.CapacityBits(microcode.DesignRAM, surface.Steane, n),
			microcode.CapacityBits(microcode.DesignFIFO, surface.Steane, n),
			microcode.CapacityBits(microcode.DesignUnitCell, surface.Steane, n))
	}
	// Output:
	// n=100: RAM=9900 FIFO=3600 unit-cell=592
	// n=1000: RAM=126000 FIFO=36000 unit-cell=592
}

// ExampleNewStore demonstrates autonomous QECC replay: program once, replay
// forever, zero bus traffic.
func ExampleNewStore() {
	lat := surface.NewLattice(5, 5)
	store := microcode.NewStore(microcode.DesignUnitCell, surface.Steane, lat)
	mask := surface.NewMask(lat)
	words := store.ReplayCycle(mask)
	fmt.Println("words per cycle:", len(words))
	fmt.Println("capacity bits:", store.CapacityBits())
	fmt.Println("bits streamed internally:", store.BitsStreamed())
	// Output:
	// words per cycle: 9
	// capacity bits: 592
	// bits streamed internally: 900
}
