// Package microcode implements the MCE microcode memory of §4.4–4.5: the
// three storage organizations the paper compares (conventional RAM with
// opcode+address µops, address-free FIFO, and the constant-size unit-cell
// replay table), their capacity and bandwidth scaling laws, the solver that
// computes how many qubits one MCE can service under a memory configuration,
// and the streaming Store that actually replays QECC instruction cycles for
// the cycle-level machine simulation.
package microcode

import (
	"fmt"
	"math"

	"quest/internal/isa"
	"quest/internal/jj"
	"quest/internal/surface"
)

// Design selects the microcode memory organization.
type Design int

// The three organizations of Figures 10 and 11.
const (
	// DesignRAM is the baseline: each µop stores opcode plus a qubit
	// address, capacity O(N·log₂N).
	DesignRAM Design = iota
	// DesignFIFO drops the address bits — lock-step delivery makes the
	// qubit order implicit — so capacity scales O(N).
	DesignFIFO
	// DesignUnitCell stores only the spatially repeating unit-cell pattern
	// and regenerates the full stream with a replay state machine: O(1)
	// capacity.
	DesignUnitCell
)

// String names the design as in the paper's figures.
func (d Design) String() string {
	switch d {
	case DesignRAM:
		return "RAM"
	case DesignFIFO:
		return "FIFO"
	case DesignUnitCell:
		return "Unit-cell"
	}
	return fmt.Sprintf("design(%d)", int(d))
}

// Designs lists the organizations in presentation order.
func Designs() []Design { return []Design{DesignRAM, DesignFIFO, DesignUnitCell} }

// MicroOpBits returns the stored size of one µop for n serviced qubits.
func MicroOpBits(d Design, n int) int {
	if d == DesignRAM {
		return isa.RAMOpBits(n)
	}
	return isa.FIFOOpBits()
}

// CapacityBits returns the microcode capacity required to hold one full QECC
// cycle for n qubits under the given design and schedule — the scaling law
// of Figure 10 (RAM: O(N·log₂N); FIFO: O(N); unit cell: O(1)).
func CapacityBits(d Design, sched surface.Schedule, n int) int {
	if n < 0 {
		panic(fmt.Sprintf("microcode: negative qubit count %d", n))
	}
	switch d {
	case DesignRAM:
		return n * sched.Depth * isa.RAMOpBits(n)
	case DesignFIFO:
		return n * sched.Depth * isa.FIFOOpBits()
	case DesignUnitCell:
		return sched.UnitCellInstrs * isa.OpcodeBits
	}
	panic(fmt.Sprintf("microcode: unknown design %d", int(d)))
}

// MaxQubitsByCapacity returns the largest qubit count whose QECC cycle fits
// in capBits under the design. For the unit-cell design the capacity bound
// is infinite once the table fits; the boolean reports whether it fits at
// all.
func MaxQubitsByCapacity(d Design, sched surface.Schedule, capBits int) (n int, fits bool) {
	if d == DesignUnitCell {
		if CapacityBits(d, sched, 0) <= capBits {
			return math.MaxInt32, true
		}
		return 0, false
	}
	// CapacityBits is monotone in n: binary search.
	lo, hi := 0, 1
	for CapacityBits(d, sched, hi) <= capBits {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if CapacityBits(d, sched, mid) <= capBits {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, lo > 0
}

// RowBits is the width of one memory access: each read returns a 64-bit row
// that packs multiple µops (16 four-bit opcodes, or 6 ten-bit RAM µops).
const RowBits = 64

// InstructionWindowNs is the default sub-cycle duration: the ~10 ns physical
// instruction latency of §4.5 during which the microcode must deliver one
// µop to every serviced qubit.
const InstructionWindowNs = 10.0

// MaxQubitsByBandwidth returns how many qubits the memory configuration can
// stream one µop each within a sub-cycle window of windowNs. Smaller banks
// read faster and more channels read in parallel, which is why the unit-cell
// design converts capacity savings into throughput (§4.5).
func MaxQubitsByBandwidth(d Design, cfg jj.MemoryConfig, windowNs float64, servicedHint int) int {
	opBits := MicroOpBits(d, maxInt(servicedHint, 2))
	opsPerRow := RowBits / opBits
	cycles := windowNs * jj.ClockHz / 1e9
	return int(cfg.ReadsPerCycle() * cycles * float64(opsPerRow))
}

// QubitsServiced returns the number of qubits one MCE services under the
// given design, schedule and memory configuration: the tighter of the
// capacity and bandwidth limits (Figure 11).
func QubitsServiced(d Design, sched surface.Schedule, cfg jj.MemoryConfig, windowNs float64) int {
	byCap, fits := MaxQubitsByCapacity(d, sched, cfg.TotalBits())
	if !fits {
		return 0
	}
	// Bandwidth limit depends (for RAM) on the µop width, which depends on
	// the serviced count; one fixed-point pass with the capacity bound as
	// hint suffices because capacity binds long before address width moves.
	byBW := MaxQubitsByBandwidth(d, cfg, windowNs, byCap)
	return minInt(byCap, byBW)
}

// QubitsPerMCEInWindow returns the MCE throughput when an entire QECC cycle
// (sched.Depth sub-cycles) must stream within a total window of teccNs — the
// Figure 16 experiment, where the window is the technology's error
// correction round time T_ecc.
func QubitsPerMCEInWindow(sched surface.Schedule, cfg jj.MemoryConfig, teccNs float64) int {
	perSub := teccNs / float64(sched.Depth)
	return MaxQubitsByBandwidth(DesignUnitCell, cfg, perSub, 0)
}

// OptimalConfig picks the microcode memory configuration for a syndrome
// design from the fixed-budget candidates: the highest-bandwidth
// configuration whose per-bank capacity still holds the full unit-cell µop
// table (the replay state machine reads its whole table from one bank, so
// the table cannot straddle banks). Among feasible configurations it prefers
// more channels (more qubits per MCE), matching the paper's Table 2
// methodology.
func OptimalConfig(sched surface.Schedule) (jj.MemoryConfig, error) {
	tableBits := CapacityBits(DesignUnitCell, sched, 0)
	var best jj.MemoryConfig
	found := false
	for _, cfg := range jj.Configs4Kb() {
		if cfg.BankBits < tableBits {
			continue
		}
		if !found || cfg.Channels > best.Channels {
			best = cfg
			found = true
		}
	}
	if !found {
		return jj.MemoryConfig{}, fmt.Errorf("microcode: unit-cell table (%d bits) exceeds every 4Kb bank option", tableBits)
	}
	return best, nil
}

// Store is the MCE's microcode memory content for one tile: the QECC-µop
// program in one of the three organizations, replayable against the mask
// table every cycle. It also meters the bits streamed out of the memory so
// experiments can audit internal microcode bandwidth.
type Store struct {
	design Design
	sched  surface.Schedule
	lat    surface.Lattice

	// words is the unmasked compiled cycle (RAM and FIFO designs).
	words []isa.VLIW
	// cell is the replay table (unit-cell design).
	cell *surface.CellTable

	bitsStreamed uint64
}

// NewStore programs a microcode store for the tile. This is the one-time
// "load the microcode" operation the master controller performs; afterwards
// the MCE replays autonomously.
func NewStore(d Design, sched surface.Schedule, lat surface.Lattice) *Store {
	s := &Store{design: d, sched: sched, lat: lat}
	switch d {
	case DesignRAM, DesignFIFO:
		s.words = surface.CompileCycle(lat, sched, nil)
	case DesignUnitCell:
		s.cell = surface.BuildCellTable(sched)
	default:
		panic(fmt.Sprintf("microcode: unknown design %d", int(d)))
	}
	return s
}

// Design returns the store's organization.
func (s *Store) Design() Design { return s.design }

// Schedule returns the programmed syndrome schedule.
func (s *Store) Schedule() surface.Schedule { return s.sched }

// Lattice returns the tile the store is programmed for.
func (s *Store) Lattice() surface.Lattice { return s.lat }

// CapacityBits returns the storage the programmed content occupies.
func (s *Store) CapacityBits() int {
	return CapacityBits(s.design, s.sched, s.lat.NumQubits())
}

// BitsStreamed returns the cumulative bits read out of the microcode memory.
func (s *Store) BitsStreamed() uint64 { return s.bitsStreamed }

// ResetStreamed zeroes the streamed-bits meter. The programmed content — the
// expensive part of NewStore — is immutable, so a pooled MCE resets only this
// counter to make the store indistinguishable from a freshly programmed one.
func (s *Store) ResetStreamed() { s.bitsStreamed = 0 }

// ReplayCycle produces the QECC cycle's VLIW stream for the current mask.
// All three designs produce the identical stream (the architecture changes
// where instructions are stored, never what executes); they differ in the
// bits streamed per cycle and in capacity.
func (s *Store) ReplayCycle(mask *surface.Mask) []isa.VLIW {
	n := s.lat.NumQubits()
	opBits := MicroOpBits(s.design, n)
	s.bitsStreamed += uint64(n * s.sched.Depth * opBits)
	if s.design == DesignUnitCell {
		return s.cell.Expand(s.lat, mask)
	}
	// RAM/FIFO: gate the stored unmasked program through the mask table.
	out := make([]isa.VLIW, len(s.words))
	for i, w := range s.words {
		out[i] = gateWord(w, mask)
	}
	return out
}

// gateWord applies mask gating: masked qubits idle, and any µop paired with
// a masked qubit idles too (its partner has been silenced).
func gateWord(w isa.VLIW, mask *surface.Mask) isa.VLIW {
	g := w.Clone()
	if mask == nil {
		return g
	}
	for q, op := range g.Ops {
		if mask.Disabled(q) {
			g.Set(q, isa.OpIdle)
			continue
		}
		if op.IsTwoQubit() && mask.Disabled(g.Pairs[q]) {
			g.Set(q, isa.OpIdle)
		}
	}
	return g
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
