package microcode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/isa"
	"quest/internal/jj"
	"quest/internal/surface"
)

func TestCapacityScalingLaws(t *testing.T) {
	// RAM strictly above FIFO, FIFO linear, unit cell constant (Figure 10).
	for _, n := range []int{8, 48, 120, 1000, 10000} {
		ram := CapacityBits(DesignRAM, surface.Steane, n)
		fifo := CapacityBits(DesignFIFO, surface.Steane, n)
		uc := CapacityBits(DesignUnitCell, surface.Steane, n)
		if ram <= fifo {
			t.Errorf("n=%d: RAM %d not > FIFO %d", n, ram, fifo)
		}
		if fifo != n*surface.Steane.Depth*isa.OpcodeBits {
			t.Errorf("n=%d: FIFO capacity %d not linear", n, fifo)
		}
		if uc != surface.Steane.UnitCellInstrs*isa.OpcodeBits {
			t.Errorf("n=%d: unit cell capacity %d not constant", n, uc)
		}
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	f := func(a, b uint16) bool {
		na, nb := int(a)%5000, int(b)%5000
		if na > nb {
			na, nb = nb, na
		}
		for _, d := range []Design{DesignRAM, DesignFIFO} {
			if CapacityBits(d, surface.Steane, na) > CapacityBits(d, surface.Steane, nb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxQubitsByCapacityAnchors(t *testing.T) {
	// The paper's 4Kb anchors: RAM holds ~48 qubits, FIFO ~120 (§4.5). Our
	// integer-width model lands at 45 and 113 — same shape, and the solver
	// must be exactly inverse to CapacityBits.
	ram, ok := MaxQubitsByCapacity(DesignRAM, surface.Steane, 4096)
	if !ok || ram < 40 || ram > 55 {
		t.Errorf("RAM qubits at 4Kb = %d, want ≈48", ram)
	}
	fifo, ok := MaxQubitsByCapacity(DesignFIFO, surface.Steane, 4096)
	if !ok || fifo < 105 || fifo > 125 {
		t.Errorf("FIFO qubits at 4Kb = %d, want ≈120", fifo)
	}
	if fifo <= ram {
		t.Errorf("FIFO (%d) must beat RAM (%d)", fifo, ram)
	}
	// Solver inverse property.
	for _, d := range []Design{DesignRAM, DesignFIFO} {
		n, _ := MaxQubitsByCapacity(d, surface.Steane, 4096)
		if CapacityBits(d, surface.Steane, n) > 4096 {
			t.Errorf("%s: solver result %d does not fit", d, n)
		}
		if CapacityBits(d, surface.Steane, n+1) <= 4096 {
			t.Errorf("%s: solver result %d not maximal", d, n)
		}
	}
	// Unit cell: unbounded by capacity once the table fits.
	uc, ok := MaxQubitsByCapacity(DesignUnitCell, surface.Steane, 4096)
	if !ok || uc < 1<<30 {
		t.Errorf("unit cell capacity bound = %d, want unbounded", uc)
	}
	// Table too large for the budget.
	if _, ok := MaxQubitsByCapacity(DesignUnitCell, surface.Steane, 100); ok {
		t.Error("unit cell table fit in 100 bits")
	}
}

func TestQubitsServicedFigure11Shape(t *testing.T) {
	// Figure 11: RAM is capacity-limited and flat across channels; FIFO is
	// capacity-limited and ~2.5× RAM; unit cell is bandwidth-limited and
	// grows super-linearly with channels (6× from 1ch to 4ch).
	get := func(d Design, cfg jj.MemoryConfig) int {
		return QubitsServiced(d, surface.Steane, cfg, InstructionWindowNs)
	}
	cfgs := jj.Configs4Kb()
	ram1 := get(DesignRAM, cfgs[0])
	for _, cfg := range cfgs {
		if got := get(DesignRAM, cfg); got != ram1 {
			t.Errorf("RAM at %v = %d, want flat %d", cfg, got, ram1)
		}
	}
	fifo1 := get(DesignFIFO, cfgs[0])
	if fifo1 < 2*ram1 {
		t.Errorf("FIFO (%d) not ≥2× RAM (%d)", fifo1, ram1)
	}
	uc1 := get(DesignUnitCell, jj.OneChannel4Kb)
	uc4 := get(DesignUnitCell, jj.FourChannel1Kb)
	if r := float64(uc4) / float64(uc1); r < 5.9 || r > 6.1 {
		t.Errorf("unit cell 4ch/1ch = %d/%d = %.2f×, want ≈6×", uc4, uc1, r)
	}
	if uc1 <= fifo1 {
		t.Errorf("unit cell 1ch (%d) should already beat FIFO (%d)", uc1, fifo1)
	}
	// ~90× headline claim: unit cell at 4 channels vs RAM baseline.
	if ratio := float64(uc4) / float64(ram1); ratio < 50 || ratio > 120 {
		t.Errorf("unit-cell/RAM improvement = %.0f×, want ≈90×", ratio)
	}
}

func TestQubitsPerMCEInWindowShape(t *testing.T) {
	// Figure 16: longer T_ecc budgets service more qubits; deeper schedules
	// service fewer.
	cfg := jj.FourChannel1Kb
	steaneProjD := QubitsPerMCEInWindow(surface.Steane, cfg, 165)
	steaneExpS := QubitsPerMCEInWindow(surface.Steane, cfg, 2420)
	shorProjD := QubitsPerMCEInWindow(surface.Shor, cfg, 165)
	if steaneExpS <= steaneProjD {
		t.Errorf("slower tech should service more qubits: %d vs %d", steaneExpS, steaneProjD)
	}
	if shorProjD >= steaneProjD {
		t.Errorf("deeper Shor schedule should service fewer: %d vs %d", shorProjD, steaneProjD)
	}
	if steaneProjD <= 0 {
		t.Error("no qubits serviced at Projected_D")
	}
}

func TestOptimalConfigTable2(t *testing.T) {
	// Table 2 methodology: Steane and SC-13 → 4 channels; Shor → 2 channels
	// (its 300-instruction table needs a 2Kb bank). SC-17's table (544 bits)
	// does not fit a 512-bit bank under our no-striping rule, so it lands on
	// 4 channels where the paper reports 8 — the one documented divergence.
	want := map[string]int{"Steane": 4, "Shor": 2, "SC-13": 4, "SC-17": 4}
	for _, sched := range surface.Schedules() {
		cfg, err := OptimalConfig(sched)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name, err)
		}
		if cfg.Channels != want[sched.Name] {
			t.Errorf("%s optimal channels = %d, want %d", sched.Name, cfg.Channels, want[sched.Name])
		}
		if cfg.BankBits < CapacityBits(DesignUnitCell, sched, 0) {
			t.Errorf("%s: chosen bank %d too small for table", sched.Name, cfg.BankBits)
		}
	}
	// A table too large for any bank must error.
	huge := surface.Schedule{Name: "huge", Depth: 9, UnitCellInstrs: 5000, UnitCellQubits: 25}
	if _, err := OptimalConfig(huge); err == nil {
		t.Error("oversized table accepted")
	}
}

// TestStoreReplayEquivalence is the central architectural invariant: all
// three microcode organizations replay the byte-identical instruction stream
// that direct software compilation produces, for any mask.
func TestStoreReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sched := range []surface.Schedule{surface.Steane, surface.Shor} {
		for _, dims := range [][2]int{{5, 5}, {7, 9}, {9, 9}} {
			lat := surface.NewLattice(dims[0], dims[1])
			stores := []*Store{
				NewStore(DesignRAM, sched, lat),
				NewStore(DesignFIFO, sched, lat),
				NewStore(DesignUnitCell, sched, lat),
			}
			masks := []*surface.Mask{nil, surface.NewMask(lat)}
			rm := surface.NewMask(lat)
			for i := 0; i < lat.NumQubits(); i++ {
				if rng.Intn(5) == 0 {
					rm.SetDisabled(i, true)
				}
			}
			masks = append(masks, rm)
			for mi, mask := range masks {
				want := surface.CompileCycle(lat, sched, mask)
				for _, st := range stores {
					got := st.ReplayCycle(mask)
					if len(got) != len(want) {
						t.Fatalf("%s %s %v mask%d: depth mismatch", st.Design(), sched.Name, dims, mi)
					}
					for s := range want {
						if !want[s].Equal(got[s]) {
							t.Fatalf("%s %s %v mask%d step %d: replay diverges from compiler",
								st.Design(), sched.Name, dims, mi, s)
						}
					}
				}
			}
		}
	}
}

func TestStoreBitsStreamedAccounting(t *testing.T) {
	lat := surface.NewLattice(5, 5)
	n := lat.NumQubits()
	ram := NewStore(DesignRAM, surface.Steane, lat)
	fifo := NewStore(DesignFIFO, surface.Steane, lat)
	uc := NewStore(DesignUnitCell, surface.Steane, lat)
	for i := 0; i < 3; i++ {
		ram.ReplayCycle(nil)
		fifo.ReplayCycle(nil)
		uc.ReplayCycle(nil)
	}
	wantFIFO := uint64(3 * n * surface.Steane.Depth * isa.OpcodeBits)
	if fifo.BitsStreamed() != wantFIFO {
		t.Errorf("FIFO streamed %d bits, want %d", fifo.BitsStreamed(), wantFIFO)
	}
	if uc.BitsStreamed() != wantFIFO {
		t.Errorf("unit cell streamed %d bits, want %d (same wire traffic as FIFO)", uc.BitsStreamed(), wantFIFO)
	}
	if ram.BitsStreamed() <= wantFIFO {
		t.Errorf("RAM streamed %d bits, want > FIFO's %d (address overhead)", ram.BitsStreamed(), wantFIFO)
	}
}

func TestStoreCapacityMatchesModel(t *testing.T) {
	lat := surface.NewLattice(5, 5)
	for _, d := range Designs() {
		st := NewStore(d, surface.Steane, lat)
		if got := st.CapacityBits(); got != CapacityBits(d, surface.Steane, lat.NumQubits()) {
			t.Errorf("%s: store capacity %d disagrees with model", d, got)
		}
		if st.Schedule().Name != "Steane" || st.Lattice() != lat {
			t.Errorf("%s: accessors wrong", d)
		}
	}
}

func TestDesignStrings(t *testing.T) {
	if DesignRAM.String() != "RAM" || DesignFIFO.String() != "FIFO" || DesignUnitCell.String() != "Unit-cell" {
		t.Error("design names wrong")
	}
	if Design(9).String() == "" {
		t.Error("unknown design String empty")
	}
	if len(Designs()) != 3 {
		t.Error("Designs() incomplete")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	expect := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expect("negative n", func() { CapacityBits(DesignRAM, surface.Steane, -1) })
	expect("unknown design capacity", func() { CapacityBits(Design(7), surface.Steane, 5) })
	expect("unknown design store", func() { NewStore(Design(7), surface.Steane, surface.NewLattice(3, 3)) })
}

func BenchmarkReplayCycleUnitCell9x9(b *testing.B) {
	lat := surface.NewLattice(9, 9)
	st := NewStore(DesignUnitCell, surface.Steane, lat)
	mask := surface.NewMask(lat)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.ReplayCycle(mask)
	}
}
