package noc_test

import (
	"fmt"

	"quest/internal/noc"
)

// ExampleMesh routes packets to two tiles of a 2×2 mesh and reports the
// latency statistics: delivery time depends on distance and load, which is
// why QECC instructions can never ride this network (§3.4) while logical
// instructions happily do.
func ExampleMesh() {
	m := noc.NewMesh(2, 2)
	m.Inject(noc.Packet{Dst: 0})
	m.Inject(noc.Packet{Dst: 3}) // far corner
	all, ok := m.Drain(20)
	fmt.Println("drained:", ok)
	fmt.Println("tile 0 received:", len(all[0]))
	fmt.Println("tile 3 received:", len(all[3]))
	_, delivered, _, max := m.Stats()
	fmt.Println("delivered:", delivered, "max latency:", max)
	// Output:
	// drained: true
	// tile 0 received: 1
	// tile 3 received: 1
	// delivered: 2 max latency: 3
}
